(* mdlint: a dependency-free markdown link-and-anchor checker.

   Usage: mdlint FILE.md ...

   For every inline link [text](target) outside fenced code blocks:
   - external targets (http/https/mailto) are ignored;
   - a relative path must exist on disk (resolved against the file's
     own directory);
   - a #fragment (bare, or on a .md path) must match a heading slug of
     the target file, using GitHub's slugging rules (lowercase, drop
     punctuation, spaces to hyphens, -N suffixes for duplicates).

   Exits 1 after printing every dead link, 0 when all links resolve. *)

let errors = ref 0

let err (file : string) (line : int) (msg : string) : unit =
  incr errors;
  Printf.eprintf "%s:%d: %s\n" file line msg

let read_lines (path : string) : string list =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

(* Drop fenced code blocks (``` toggles); keeps line numbers by
   replacing fenced lines with "". *)
let mask_fences (lines : string list) : string list =
  let in_fence = ref false in
  List.map
    (fun line ->
      let fence = String.length (String.trim line) >= 3 && String.sub (String.trim line) 0 3 = "```" in
      if fence then begin
        in_fence := not !in_fence;
        ""
      end
      else if !in_fence then ""
      else line)
    lines

(* GitHub heading slug: lowercase; keep alphanumerics, hyphens and
   underscores; spaces become hyphens; everything else is dropped. *)
let slug (heading : string) : string =
  let b = Buffer.create (String.length heading) in
  String.iter
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9' | '-' | '_') as c -> Buffer.add_char b c
      | ' ' -> Buffer.add_char b '-'
      | _ -> ())
    (String.trim heading);
  Buffer.contents b

(* All heading slugs of a file, with GitHub's -1, -2 ... suffixes for
   repeated headings. *)
let slugs_of_file : string -> (string, unit) Hashtbl.t =
  let cache : (string, (string, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  fun path ->
    match Hashtbl.find_opt cache path with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 32 in
        let counts = Hashtbl.create 32 in
        List.iter
          (fun line ->
            let n = String.length line in
            let rec hashes i = if i < n && line.[i] = '#' then hashes (i + 1) else i in
            let h = hashes 0 in
            if h > 0 && h <= 6 && h < n && line.[h] = ' ' then begin
              let s = slug (String.sub line h (n - h)) in
              let seen = Option.value ~default:0 (Hashtbl.find_opt counts s) in
              Hashtbl.replace counts s (seen + 1);
              Hashtbl.replace t (if seen = 0 then s else Printf.sprintf "%s-%d" s seen) ()
            end)
          (mask_fences (read_lines path));
        Hashtbl.replace cache path t;
        t

(* Inline link targets of one line: every "](target)" occurrence, with
   an optional "title" and surrounding <> stripped. *)
let targets_of_line (line : string) : string list =
  let n = String.length line in
  let acc = ref [] in
  let i = ref 0 in
  while !i < n - 1 do
    if line.[!i] = ']' && line.[!i + 1] = '(' then begin
      match String.index_from_opt line (!i + 2) ')' with
      | None -> i := n
      | Some close ->
          let target = String.sub line (!i + 2) (close - !i - 2) in
          let target =
            match String.index_opt target ' ' with
            | Some sp -> String.sub target 0 sp (* drop "title" *)
            | None -> target
          in
          let target =
            let l = String.length target in
            if l >= 2 && target.[0] = '<' && target.[l - 1] = '>' then String.sub target 1 (l - 2)
            else target
          in
          acc := target :: !acc;
          i := close + 1
    end
    else incr i
  done;
  List.rev !acc

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let check_file (file : string) : unit =
  let lines = mask_fences (read_lines file) in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      List.iter
        (fun target ->
          if
            target = "" || starts_with "http://" target || starts_with "https://" target
            || starts_with "mailto:" target
          then ()
          else
            let path, frag =
              match String.index_opt target '#' with
              | Some h ->
                  (String.sub target 0 h, String.sub target (h + 1) (String.length target - h - 1))
              | None -> (target, "")
            in
            let resolved =
              if path = "" then file else Filename.concat (Filename.dirname file) path
            in
            if not (Sys.file_exists resolved) then
              err file lineno (Printf.sprintf "dead link: %s (no such file %s)" target resolved)
            else if frag <> "" && Filename.check_suffix resolved ".md" then begin
              if not (Hashtbl.mem (slugs_of_file resolved) frag) then
                err file lineno
                  (Printf.sprintf "dead anchor: %s (no heading #%s in %s)" target frag resolved)
            end)
        (targets_of_line line))
    lines

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: mdlint FILE.md ...";
    exit 2
  end;
  List.iter
    (fun f ->
      if Sys.file_exists f then check_file f
      else err f 0 "file does not exist")
    files;
  if !errors > 0 then begin
    Printf.eprintf "mdlint: %d dead link%s\n" !errors (if !errors = 1 then "" else "s");
    exit 1
  end
  else Printf.printf "mdlint: %d file%s clean\n" (List.length files)
         (if List.length files = 1 then "" else "s")
