(* Quickstart: create a failure-aware VM over imperfect PCM, run a
   workload, and watch the runtime allocate around the holes.

     dune exec examples/quickstart.exe

   This exercises the library's primary API end to end:
   - a failure map at 25% of 64 B lines, moved by the modeled two-page
     clustering hardware;
   - a Sticky Immix heap that skips failed lines;
   - a dynamic failure injected mid-run, handled by evacuation;
   - then the same workload on the device backend, where failures are
     not injected but *earned*: every line store wears the simulated
     PCM, and wear-outs reach the runtime through the device -> failure
     buffer -> interrupt -> VMM up-call chain. *)

let static_phase () =
  print_endline "== holes quickstart ==";
  (* 1. Configure a failure-aware Sticky Immix VM: 25% of PCM lines have
        failed, clustered by the proposed two-page hardware. *)
  let cfg =
    {
      Holes.Config.default with
      Holes.Config.failure_rate = 0.25;
      failure_dist = Holes.Config.Hw_cluster 2;
      heap_factor = 2.0;
    }
  in
  let vm = Holes.Vm.create ~cfg ~min_heap_bytes:(2 * 1024 * 1024) () in
  let stock = Holes.Vm.stock vm in
  Printf.printf "heap: %d pages granted (compensated for 25%% failures)\n"
    (Holes_heap.Page_stock.npages stock);
  Printf.printf "      %d perfect, %d imperfect pages in the free pools\n"
    (Holes_heap.Page_stock.free_perfect_count stock)
    (Holes_heap.Page_stock.free_imperfect_count stock);

  (* 2. Allocate a mix of objects; the bump allocator skips holes. *)
  let rng = Holes_stdx.Xrng.of_seed 11 in
  let live = Queue.create () in
  for i = 1 to 50_000 do
    let size =
      match Holes_stdx.Xrng.int rng 20 with
      | 0 -> 2048 (* medium: overflow allocation *)
      | 1 -> 16384 (* large: page-grained LOS, needs perfect pages *)
      | _ -> 24 + Holes_stdx.Xrng.int rng 200
    in
    let id = Holes.Vm.alloc vm ~size () in
    Queue.push id live;
    (* keep ~2000 objects alive *)
    if Queue.length live > 2000 then Holes.Vm.kill vm (Queue.pop live);
    (* 3. Inject a dynamic line failure mid-run: the runtime evacuates
          the affected objects with a copying collection (Sec. 4.2). *)
    if i = 25_000 then begin
      let victim = Queue.peek live in
      print_endline "injecting a dynamic PCM line failure under a live object...";
      Holes.Vm.dynamic_failure vm ~id:victim;
      assert (Holes_heap.Object_table.is_alive (Holes.Vm.objects vm) victim);
      print_endline "  -> object relocated, line retired, execution continues"
    end
  done;

  (* 4. Verify the core invariant and report. *)
  (match Holes.Vm.check_invariants vm with
  | Ok () -> print_endline "invariant check: no live object touches a failed line"
  | Error m -> failwith m);
  Format.printf "%a@." Holes.Vm.pp_summary vm

(* Phase 2: the full cooperative pipeline.  Low mean endurance wears
   lines out within the run; no failure is ever injected by hand. *)
let device_phase () =
  print_endline "\n== device backend: wear-driven failures ==";
  let d = Holes.Config.default_device in
  let cfg =
    {
      Holes.Config.default with
      Holes.Config.heap_factor = 2.0;
      backend =
        Holes.Config.Device
          { d with Holes.Config.wear = { d.Holes.Config.wear with Holes_pcm.Wear.mean_endurance = 18.0 } };
    }
  in
  let vm = Holes.Vm.create ~cfg ~min_heap_bytes:(2 * 1024 * 1024) () in
  let rng = Holes_stdx.Xrng.of_seed 11 in
  let live = Queue.create () in
  for _ = 1 to 50_000 do
    let size =
      match Holes_stdx.Xrng.int rng 20 with
      | 0 -> 2048
      | 1 -> 16384
      | _ -> 24 + Holes_stdx.Xrng.int rng 200
    in
    let id = Holes.Vm.alloc vm ~size () in
    Queue.push id live;
    if Queue.length live > 2000 then Holes.Vm.kill vm (Queue.pop live)
  done;
  (match Holes.Vm.check_invariants vm with
  | Ok () -> print_endline "invariant check: no live object touches a failed line"
  | Error m -> failwith m);
  Holes.Vm.sync_backend_stats vm;
  let m = Holes.Vm.metrics vm in
  assert (m.Holes.Metrics.device_writes > 0);
  Printf.printf "wear failures earned during the run: %d (all delivered via up-calls: %d)\n"
    m.Holes.Metrics.device_line_failures m.Holes.Metrics.os_upcalls;
  Format.printf "%a@." Holes.Vm.pp_summary vm

let () =
  static_phase ();
  device_phase ()
