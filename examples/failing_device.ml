(* The full hardware/OS path: a wearable PCM device, the failure buffer,
   the clustering redirection maps, and the OS interrupt handler with a
   failure-aware process.

     dune exec examples/failing_device.exe

   This example does not use the GC at all — it shows the substrate the
   runtime sits on: writes wear lines out; the device preserves in-flight
   data in the failure buffer; clustering hardware redirects failed lines
   to region ends; the OS drains the buffer, restores data, and publishes
   clustered failure maps. *)

module Pcm = Holes_pcm
module Osal = Holes_osal

let () =
  print_endline "== wearing out a clustered PCM device ==";
  let device =
    Pcm.Device.create
      ~config:
        {
          Pcm.Device.pages = 8;
          wear = { Pcm.Wear.mean_endurance = 400.0; sigma = 0.3; ecp_entries = 2; ecp_extension = 0.15 };
          clustering = Some 2;
          buffer_capacity = 16;
          caram = None;
          wear_level = None;
        }
      ~seed:5 ()
  in
  let vmm = Osal.Vmm.create ~dram_pages:4 ~pcm_pages:8 () in
  let handler = Osal.Interrupts.attach ~vmm ~device ~dram_pages:4 () in
  let proc = Osal.Vmm.spawn vmm in
  (match Osal.Vmm.mmap_imperfect vmm proc ~pages:8 with
  | Ok _ -> ()
  | Error `Out_of_memory -> failwith "mmap failed");
  let relocations = ref 0 in
  Osal.Vmm.register_failure_handler proc (fun ~virt_page:_ ~line:_ ~data:_ ->
      incr relocations);

  (* hammer the device with skewed write traffic until failures pile up *)
  let rng = Holes_stdx.Xrng.of_seed 9 in
  let zipf = Holes_stdx.Dist.zipf_sampler ~n:(Pcm.Device.nlines device) ~s:0.8 in
  let payload i = Bytes.make Pcm.Geometry.line_bytes (Char.chr (65 + (i mod 26))) in
  let writes = ref 0 and failures = ref 0 and stalls = ref 0 in
  while List.length (Pcm.Device.unusable_lines device) < 64 && !writes < 2_000_000 do
    let line = zipf rng - 1 in
    (match Pcm.Device.write device line (payload !writes) with
    | Pcm.Device.Stored -> ()
    | Pcm.Device.Write_failed -> incr failures
    | Pcm.Device.Stalled ->
        (* the buffer hit its watermark: the OS must service the interrupt *)
        incr stalls;
        ignore (Osal.Interrupts.service handler));
    if Osal.Interrupts.has_pending handler && !writes mod 64 = 0 then
      ignore (Osal.Interrupts.service handler);
    incr writes
  done;
  ignore (Osal.Interrupts.service handler);

  let stats = Pcm.Device.stats device in
  Printf.printf "writes issued:        %d\n" stats.Pcm.Device.writes;
  Printf.printf "line failures:        %d\n" stats.Pcm.Device.failures;
  Printf.printf "buffer stalls:        %d\n" !stalls;
  Printf.printf "OS data restores:     %d (clustering re-backed the address)\n"
    (Osal.Interrupts.restores handler);
  Printf.printf "runtime up-calls:     %d\n" (Osal.Interrupts.upcalls handler);
  Printf.printf "unusable lines now:   %d\n" (List.length (Pcm.Device.unusable_lines device));

  (* show the clustering: per page, how many lines the OS marked failed,
     and the failure table's RLE footprint *)
  let table = Osal.Vmm.failure_table vmm in
  print_string "failed lines per page:";
  for p = 0 to 7 do
    Printf.printf " %d" (Osal.Failure_table.failed_lines table ~page:p)
  done;
  print_newline ();
  Printf.printf "failure table: %d raw bits, %d RLE bits (%.1fx compression)\n"
    (Osal.Failure_table.raw_bits table) (Osal.Failure_table.rle_bits table)
    (float_of_int (Osal.Failure_table.raw_bits table)
    /. float_of_int (max 1 (Osal.Failure_table.rle_bits table)));
  (* clustered failure maps are contiguous runs at region ends *)
  let map = Osal.Failure_table.get table ~page:0 in
  Format.printf "page 0 failure bitmap: %a@." Holes_stdx.Bitset.pp map
