(* Hot-path microbenchmarks with a tracked JSON baseline.

   Times the kernels that dominate trial throughput (hole search, small
   allocation under failures, full collection — stop-the-world and
   incremental — and device writes) plus
   the wall-clock of the reduced `figures-quick` grid, and writes the
   results as `BENCH_hotpath.json`.  The committed copy of that file is
   the perf baseline: CI reruns the kernels and fails when any of them
   regresses by more than the tolerance.

   Usage:
     microbench.exe [--out FILE]        run kernels + grid, write JSON
                                        (default BENCH_hotpath.json)
     microbench.exe --no-grid           skip the grid wall-clock
     microbench.exe --before FILE       embed FILE's ns_per_op values as
                                        before_ns (before/after record)
     microbench.exe --check FILE        rerun kernels and compare against
                                        FILE's ns_per_op; exit 1 when any
                                        kernel is slower by more than
                                        --tolerance (default 0.25)
     microbench.exe --check FILE --retry N
                                        re-measure regressed kernels up to N
                                        extra times before failing (shared CI
                                        runners are noisy; a real regression
                                        reproduces, a scheduling hiccup does
                                        not)
     microbench.exe --check FILE --markdown FILE
                                        also write the before/after table as
                                        a markdown fragment (for CI job
                                        summaries)

   All numbers are host wall-clock (best of several repetitions), unlike
   the virtual cost-model times in the figures: this file measures the
   simulator itself, not the simulated machine. *)

let reps = 5

(* best-of-[reps] wall-clock of [f], in ns per operation *)
let time_ns_per_op ~(iters : int) (f : unit -> unit) : float =
  f ();
  (* warmup: fill caches, trigger any lazy setup *)
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best /. float_of_int iters *. 1e9

(* ------------------------------------------------------------------ *)
(* Kernels                                                             *)
(* ------------------------------------------------------------------ *)

(* hole-search: walk every hole of fragmented 64 B-line blocks — the
   line-map scan underneath every bump-cursor refill.  Four occupancy
   regimes (heavy scatter, moderate scatter, clustered survivors, nearly
   empty) crossed with small (2-line) and medium (8-line) requests, so
   the kernel covers both the overhead-bound short searches of a churning
   nursery and the long skips over dense blocks where the scan itself
   dominates. *)
let hole_search_kernel () : int * (unit -> unit) =
  let line_size = 64 in
  let lines_per_page = Holes_pcm.Geometry.lines_per_page in
  let make_block fill =
    let rng = Holes_stdx.Xrng.of_seed 42 in
    let bitmaps =
      Array.init Holes_heap.Units.pages_per_block (fun _ ->
          let b = Holes_stdx.Bitset.create lines_per_page in
          for i = 0 to lines_per_page - 1 do
            if Holes_stdx.Xrng.float rng < 0.08 then Holes_stdx.Bitset.set b i
          done;
          b)
    in
    let blk =
      Holes_heap.Block.create ~tbl:(Holes_heap.Block.table_create ()) ~index:0 ~base:0 ~line_size
        ~pages:(Array.init Holes_heap.Units.pages_per_block Fun.id)
        ~page_bitmap:(fun id -> bitmaps.(id))
    in
    let nlines = blk.Holes_heap.Block.nlines in
    for l = 0 to nlines - 1 do
      if (not (Holes_heap.Block.is_failed_line blk l)) && fill rng l then
        Holes_heap.Block.add_object_lines blk ~addr:(l * line_size) ~size:line_size
    done;
    blk
  in
  let blocks =
    [|
      (* heavy scatter: short-lived small objects everywhere *)
      make_block (fun rng _ -> Holes_stdx.Xrng.float rng < 0.45);
      (* moderate scatter *)
      make_block (fun rng _ -> Holes_stdx.Xrng.float rng < 0.20);
      (* clustered survivors: 16-line live stripes *)
      make_block (fun rng l -> ignore (Holes_stdx.Xrng.float rng); l land 31 < 16);
      (* nearly empty: holes bounded only by failed lines *)
      make_block (fun rng _ -> Holes_stdx.Xrng.float rng < 0.02);
    |]
  in
  let requests = [| 2 * line_size; 8 * line_size |] in
  let walks = 400 in
  let walk blk min_bytes =
    let from = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let enc = Holes_heap.Block.find_hole_enc blk ~from_line:!from ~min_bytes in
      if enc >= 0 then from := enc land 0x3FFFFFFF else continue_ := false
    done
  in
  let nlines = blocks.(0).Holes_heap.Block.nlines in
  ( walks * nlines * Array.length blocks * Array.length requests,
    fun () ->
      for _ = 1 to walks do
        Array.iter (fun blk -> Array.iter (fun mb -> walk blk mb) requests) blocks
      done )

(* alloc: the end-to-end small-allocation path over a 25%-failed heap —
   bump fast path, hole skips, recycled-block search, collections *)
let alloc_kernel () : int * (unit -> unit) =
  let cfg =
    {
      Holes.Config.default with
      Holes.Config.failure_rate = 0.25;
      failure_dist = Holes.Config.Uniform;
    }
  in
  let iters = 4000 in
  ( iters,
    fun () ->
      let vm = Holes.Vm.create ~cfg ~min_heap_bytes:(1 lsl 20) () in
      for _ = 1 to iters do
        let id = Holes.Vm.alloc vm ~size:48 () in
        Holes.Vm.kill vm id
      done )

(* full-gc: trace + line-map rebuild + sweep over a half-dead heap *)
let full_gc_kernel () : int * (unit -> unit) =
  ( 1,
    fun () ->
      let vm = Holes.Vm.create ~cfg:Holes.Config.default ~min_heap_bytes:(1 lsl 20) () in
      let ids = Array.init 3000 (fun _ -> Holes.Vm.alloc vm ~size:64 ()) in
      Array.iteri (fun i id -> if i mod 2 = 0 then Holes.Vm.kill vm id) ids;
      Holes.Vm.collect vm ~full:true )

(* gc-pause: the full_gc heap collected incrementally — snapshot,
   budgeted mark slices, then sweep and defrag slices driven to
   completion.  Wall-clocks the whole incremental cycle: a regression in
   the slice machinery (work-queue processing, deferred line retirement,
   per-slice rebuild accounting) lands here, while full_gc above keeps
   the stop-the-world path honest. *)
let gc_pause_kernel () : int * (unit -> unit) =
  let cfg = { Holes.Config.default with Holes.Config.gc_slice = 64 } in
  ( 1,
    fun () ->
      let vm = Holes.Vm.create ~cfg ~min_heap_bytes:(1 lsl 20) () in
      let ids = Array.init 3000 (fun _ -> Holes.Vm.alloc vm ~size:64 ()) in
      Array.iteri (fun i id -> if i mod 2 = 0 then Holes.Vm.kill vm id) ids;
      Holes.Vm.collect vm ~full:true )

(* device-write: the payload-store write path (no wear-outs: endurance is
   the production 1e8, so this isolates the arena from failure handling) *)
let device_write_kernel () : int * (unit -> unit) =
  let config =
    { Holes_pcm.Device.default_config with Holes_pcm.Device.pages = 64; wear = Holes_pcm.Wear.default_params }
  in
  let dev = Holes_pcm.Device.create ~config ~seed:7 () in
  let payload = Bytes.make Holes_pcm.Geometry.line_bytes 'w' in
  let nlines = Holes_pcm.Device.nlines dev in
  let passes = 8 in
  ( passes * nlines,
    fun () ->
      for _ = 1 to passes do
        for l = 0 to nlines - 1 do
          ignore (Holes_pcm.Device.write dev l payload)
        done
      done )

(* translate: the logical→physical pipeline walk with both stage kinds
   live — a start-gap leveling permutation over clustering redirects —
   after enough write churn that the permutation has rotated and the
   redirect maps hold recorded failures.  This is the per-access cost
   the pipeline adds on top of the arena store. *)
let translate_kernel () : int * (unit -> unit) =
  let config =
    {
      Holes_pcm.Device.default_config with
      Holes_pcm.Device.pages = 64;
      wear = { Holes_pcm.Wear.fast_params with Holes_pcm.Wear.mean_endurance = 400.0 };
      wear_level = Some (Holes_pcm.Wear_level.Start_gap { psi = 16 });
    }
  in
  let dev = Holes_pcm.Device.create ~config ~seed:7 () in
  let payload = Bytes.make Holes_pcm.Geometry.line_bytes 't' in
  let nlines = Holes_pcm.Device.nlines dev in
  (* boot failures populate the redirect maps (and freeze their pairs in
     the leveling stage); churn then rotates the gap through the rest *)
  Holes_pcm.Device.preinstall_failures dev
    (Holes_pcm.Failure_map.uniform (Holes_stdx.Xrng.of_seed 13) ~nlines ~rate:0.10);
  for _ = 1 to 4 do
    for l = 0 to nlines - 1 do
      if Holes_pcm.Device.line_usable dev l then ignore (Holes_pcm.Device.write dev l payload)
    done
  done;
  let passes = 64 in
  ( passes * nlines,
    fun () ->
      let acc = ref 0 in
      for _ = 1 to passes do
        for l = 0 to nlines - 1 do
          acc := !acc + Holes_pcm.Device.physical_of_logical dev l
        done
      done;
      ignore !acc )

(* migrate: the DRAM/PCM tiering hot path end to end — per-page heat
   tracking on every charged line write, promotion (frame grab, Vmm
   retarget, charged page copy), the DRAM-resident fast path, epoch
   decay and cold-page demotion write-backs.  A tiny epoch and a small
   frame pool force the promote/demote cycle to turn over constantly,
   so the kernel times the tiering machinery rather than a settled
   resident set.  device_write and translate above stay tier-free, so
   they keep isolating the arena and pipeline costs. *)
let migrate_kernel () : int * (unit -> unit) =
  let d = Holes.Config.default_device in
  let cfg =
    {
      Holes.Config.default with
      Holes.Config.backend = Holes.Config.Device { d with Holes.Config.dram_pages = 8 };
      hybrid = { Holes_pcm.Hybrid.migrate_epoch = Some 256; caram_ways = None };
    }
  in
  let iters = 4000 in
  ( iters,
    fun () ->
      let vm = Holes.Vm.create ~cfg ~min_heap_bytes:(1 lsl 20) () in
      for _ = 1 to iters do
        let id = Holes.Vm.alloc vm ~size:48 () in
        Holes.Vm.kill vm id
      done )

(* dedup: the content-store stage in front of the cells — FNV
   fingerprint, set lookup, dedup refcount bump, pattern compression,
   install and LRU eviction — on a write mix of shared, all-same-byte
   and unique payloads.  device_write above stays content-blind, so
   the pair separates the store's cost from the arena's. *)
let dedup_kernel () : int * (unit -> unit) =
  let config =
    {
      Holes_pcm.Device.default_config with
      Holes_pcm.Device.pages = 64;
      wear = Holes_pcm.Wear.default_params;
      caram = Some 8;
    }
  in
  let dev = Holes_pcm.Device.create ~config ~seed:7 () in
  let line_bytes = Holes_pcm.Geometry.line_bytes in
  let nlines = Holes_pcm.Device.nlines dev in
  let shared =
    Array.init 12 (fun k ->
        Bytes.init line_bytes (fun i -> Char.chr (((k * 37) + (i * 11)) land 0xff)))
  in
  let pattern = Bytes.make line_bytes '\xAB' in
  let unique = Bytes.make line_bytes 'u' in
  let passes = 8 in
  ( passes * nlines,
    fun () ->
      for p = 1 to passes do
        for l = 0 to nlines - 1 do
          let payload =
            match l land 3 with
            | 0 | 1 -> shared.(l mod 12)
            | 2 -> pattern
            | _ ->
                Bytes.set_int32_le unique 0 (Int32.of_int ((p * nlines) + l));
                unique
          in
          ignore (Holes_pcm.Device.write dev l payload)
        done
      done )

(* fleet: one small device shard end to end — open-loop Poisson
   arrivals through the virtual-clock event queue, two tenant VMs
   attached to the shared node, request service and the report merge.
   Wall-clocks the serving simulator itself (DESIGN.md §12); the
   simulated latencies inside it are virtual and deterministic. *)
let fleet_kernel () : int * (unit -> unit) =
  let p =
    {
      Holes_fleet.Sim.default with
      Holes_fleet.Sim.tenants = 2;
      devices = 1;
      arrival = Holes_fleet.Arrivals.Poisson { rate = 400.0 };
      duration_ms = 150.0;
    }
  in
  (1, fun () -> ignore (Holes_fleet.Sim.run ~jobs:1 p))

let kernels : (string * (unit -> int * (unit -> unit))) list =
  [
    ("hole_search", hole_search_kernel);
    ("alloc_small", alloc_kernel);
    ("full_gc", full_gc_kernel);
    ("gc_pause", gc_pause_kernel);
    ("device_write", device_write_kernel);
    ("translate", translate_kernel);
    ("migrate", migrate_kernel);
    ("dedup", dedup_kernel);
    ("fleet", fleet_kernel);
  ]

let run_kernels () : (string * float) list =
  List.map
    (fun (name, mk) ->
      let iters, f = mk () in
      let ns = time_ns_per_op ~iters f in
      Printf.printf "%-14s %12.1f ns/op\n%!" name ns;
      (name, ns))
    kernels

(* the fixed reduced grid (`figures-quick`), timed cold at -j 1 *)
let grid_wall_s () : float =
  Holes_exp.Runner.clear_cache ();
  let params = { Holes_exp.Runner.scale = 0.1; seeds = 2; jobs = 1 } in
  let t0 = Unix.gettimeofday () in
  ignore (Holes_exp.Figures.fig4 ~params ());
  ignore (Holes_exp.Figures.headline ~params ());
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%-14s %12.2f s (figures-quick grid, -j 1, cold cache)\n%!" "grid" dt;
  dt

(* ------------------------------------------------------------------ *)
(* The JSON snapshot (hand-rolled, like lib/engine/sink.ml)            *)
(* ------------------------------------------------------------------ *)

(* Scan [line] for `"key": <float>`; the emitter below writes one kernel
   per line, so line-oriented scanning is a complete parser for it. *)
let find_float ~(key : string) (line : string) : float option =
  let pat = Printf.sprintf "\"%s\":" key in
  match
    let plen = String.length pat and llen = String.length line in
    let rec at i =
      if i + plen > llen then None
      else if String.sub line i plen = pat then Some (i + plen)
      else at (i + 1)
    in
    at 0
  with
  | None -> None
  | Some start ->
      let stop = ref start in
      let llen = String.length line in
      while
        !stop < llen
        && (match line.[!stop] with '0' .. '9' | '.' | '-' | 'e' | '+' | ' ' -> true | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.trim (String.sub line start (!stop - start)))

let load_snapshot (path : string) : (string * (float * float option)) list =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       List.iter
         (fun (name, _) ->
           let pat = Printf.sprintf "\"%s\"" name in
           let has =
             let plen = String.length pat and llen = String.length line in
             let rec at i =
               i + plen <= llen && (String.sub line i plen = pat || at (i + 1))
             in
             at 0
           in
           if has then
             match find_float ~key:"ns_per_op" line with
             | Some ns -> entries := (name, (ns, find_float ~key:"before_ns" line)) :: !entries
             | None -> ())
         kernels
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries

let write_snapshot ~(path : string) ~(before : (string * float) list)
    ~(results : (string * float) list) ~(grid_s : float option)
    ~(grid_before_s : float option) : unit =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"holes-microbench/1\",\n";
  out "  \"note\": \"host wall-clock ns/op, best of %d; regenerate with `make bench`\",\n" reps;
  out "  \"kernels\": {\n";
  let n = List.length results in
  List.iteri
    (fun i (name, ns) ->
      let before_part =
        match List.assoc_opt name before with
        | Some b when b > 0.0 ->
            Printf.sprintf ", \"before_ns\": %.1f, \"speedup\": %.2f" b (b /. ns)
        | _ -> ""
      in
      out "    \"%s\": {\"ns_per_op\": %.1f%s}%s\n" name ns before_part
        (if i < n - 1 then "," else ""))
    results;
  out "  }%s\n" (if grid_s <> None then "," else "");
  (match grid_s with
  | Some s ->
      let before_part =
        match grid_before_s with
        | Some b when b > 0.0 ->
            Printf.sprintf ", \"before_wall_s\": %.2f, \"speedup\": %.2f" b (b /. s)
        | _ -> ""
      in
      out "  \"figures_quick\": {\"wall_s\": %.2f%s}\n" s before_part
  | None -> ());
  out "}\n";
  close_out oc;
  Printf.printf "(wrote %s)\n%!" path

let write_markdown ~(path : string) ~(tolerance : float)
    ~(rows : (string * float option * float * int) list) : unit =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "### Hot-path kernels vs committed baseline (tolerance %.0f%%)\n\n" (tolerance *. 100.0);
  out "| kernel | baseline ns/op | fresh ns/op | ratio | attempts | verdict |\n";
  out "|---|---:|---:|---:|---:|---|\n";
  List.iter
    (fun (name, base, ns, attempts) ->
      match base with
      | None -> out "| `%s` | — | %.1f | — | %d | no baseline |\n" name ns attempts
      | Some b ->
          let ratio = ns /. b in
          out "| `%s` | %.1f | %.1f | %.2fx | %d | %s |\n" name b ns ratio attempts
            (if ratio > 1.0 +. tolerance then "**REGRESSED**" else "ok"))
    rows;
  close_out oc

let check ~(path : string) ~(tolerance : float) ~(retries : int)
    ~(markdown : string option) : unit =
  let snapshot = load_snapshot path in
  if snapshot = [] then begin
    Printf.eprintf "no kernel entries found in %s\n" path;
    exit 2
  end;
  let fresh = run_kernels () in
  (* (name, baseline, best observed ns, measurement attempts) *)
  let rows =
    ref
      (List.map
         (fun (name, ns) ->
           (name, Option.map fst (List.assoc_opt name snapshot), ns, 1))
         fresh)
  in
  let regressed () =
    List.filter_map
      (fun (name, base, ns, _) ->
        match base with
        | Some b when ns /. b > 1.0 +. tolerance -> Some name
        | _ -> None)
      !rows
  in
  (* Re-measure only the regressed kernels: a genuine slowdown reproduces,
     a noisy-neighbour blip on a shared runner does not.  Keep the best
     time seen — the floor is the honest estimate of kernel cost. *)
  let attempt = ref 0 in
  while regressed () <> [] && !attempt < retries do
    incr attempt;
    let names = regressed () in
    Printf.printf "retry %d/%d for noisy kernels: %s\n%!" !attempt retries
      (String.concat ", " names);
    List.iter
      (fun kname ->
        let _, mk = List.find (fun (n, _) -> n = kname) kernels in
        let iters, f = mk () in
        let ns = time_ns_per_op ~iters f in
        Printf.printf "%-14s %12.1f ns/op (retry)\n%!" kname ns;
        rows :=
          List.map
            (fun (n, base, best, tries) ->
              if n = kname then (n, base, Float.min best ns, tries + 1)
              else (n, base, best, tries))
            !rows)
      names
  done;
  List.iter
    (fun (name, base, ns, _) ->
      match base with
      | None -> Printf.printf "%-14s (no baseline entry, skipped)\n" name
      | Some b ->
          let ratio = ns /. b in
          Printf.printf "%-14s %10.1f ns vs baseline %10.1f ns (%.2fx) %s\n" name ns b
            ratio
            (if ratio > 1.0 +. tolerance then "REGRESSED" else "ok"))
    !rows;
  (match markdown with
  | Some md -> write_markdown ~path:md ~tolerance ~rows:!rows
  | None -> ());
  if regressed () <> [] then begin
    Printf.eprintf "microbench: kernel regression beyond %.0f%% tolerance\n" (tolerance *. 100.0);
    exit 1
  end

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse (out, before, check_path, tol, grid, retries, md) = function
    | [] -> (out, before, check_path, tol, grid, retries, md)
    | "--out" :: p :: rest -> parse (p, before, check_path, tol, grid, retries, md) rest
    | "--before" :: p :: rest -> parse (out, Some p, check_path, tol, grid, retries, md) rest
    | "--check" :: p :: rest -> parse (out, before, Some p, tol, grid, retries, md) rest
    | "--tolerance" :: v :: rest ->
        parse (out, before, check_path, float_of_string v, grid, retries, md) rest
    | "--retry" :: v :: rest ->
        parse (out, before, check_path, tol, grid, int_of_string v, md) rest
    | "--markdown" :: p :: rest -> parse (out, before, check_path, tol, grid, retries, Some p) rest
    | "--no-grid" :: rest -> parse (out, before, check_path, tol, false, retries, md) rest
    | a :: _ -> failwith (Printf.sprintf "unknown argument %S" a)
  in
  let out, before_path, check_path, tolerance, grid, retries, markdown =
    parse ("BENCH_hotpath.json", None, None, 0.25, true, 0, None) args
  in
  match check_path with
  | Some path -> check ~path ~tolerance ~retries ~markdown
  | None ->
      let before, grid_before =
        match before_path with
        | None -> ([], None)
        | Some p ->
            (* a baseline that itself has before/after fields keeps its
               original "before" numbers: `make bench` refreshes the
               after side without erasing the tracked baseline *)
            let snap = load_snapshot p in
            let grid_b =
              let ic = open_in p in
              let v = ref None and v0 = ref None in
              (try
                 while true do
                   let line = input_line ic in
                   if !v = None then v := find_float ~key:"wall_s" line;
                   if !v0 = None then v0 := find_float ~key:"before_wall_s" line
                 done
               with End_of_file -> ());
              close_in ic;
              if !v0 <> None then !v0 else !v
            in
            (List.map (fun (n, (ns, b)) -> (n, Option.value b ~default:ns)) snap, grid_b)
      in
      let results = run_kernels () in
      let grid_s = if grid then Some (grid_wall_s ()) else None in
      write_snapshot ~path:out ~before ~results ~grid_s ~grid_before_s:grid_before
