(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. 6) and wall-clock-benchmarks the core operations via
   Bechamel.

   Usage:
     main.exe                 regenerate everything (quick parameters)
     main.exe --full          paper-grade trial counts / workload scale
     main.exe -j N            run trials on N worker domains (N = "max"
                              for one per spare core); tables are
                              bit-identical at any -j
     main.exe --out F.jsonl   stream one JSONL record per trial to F
     main.exe --trace F.json  write a Chrome trace_event JSON of every
                              executed trial (Perfetto-loadable; virtual
                              timestamps, bit-identical at any -j)
     main.exe --verify        run the paranoid heap verifier after every
                              GC phase of every trial (slower; changes
                              no serialized result)
     main.exe fig3 … fig10    a single figure
     main.exe pauses          the Sec. 4.2 pause-time table
     main.exe headline        the Sec. 8 headline overheads
     main.exe wearlevel       the Sec. 7.2 wear-leveling ablation
     main.exe wearlife        device-backend wear-lifetime sweep
     main.exe fleet           the fleet-serving tail-latency figure
     main.exe hybrid          the DRAM/PCM tiering absorption figure
     main.exe figures-quick   reduced CI grid (fig4 + headline +
                              wearlevel + fleet + hybrid, the last
                              three to their own sink files)
     main.exe speedup         wall-clock of the quick grid, -j 1 vs -j max
     main.exe micro           Bechamel microbenchmarks (one per
                              operation family underlying the figures) *)

open Bechamel
open Toolkit

let figures : (string * (params:Holes_exp.Runner.params -> Holes_stdx.Table.t)) list =
  [
    ("fig3", fun ~params -> Holes_exp.Figures.fig3 ~params ());
    ("fig4", fun ~params -> Holes_exp.Figures.fig4 ~params ());
    ("fig5", fun ~params -> Holes_exp.Figures.fig5 ~params ());
    ("fig6a", fun ~params -> Holes_exp.Figures.fig6a ~params ());
    ("fig6b", fun ~params -> Holes_exp.Figures.fig6b ~params ());
    ("fig7", fun ~params -> Holes_exp.Figures.fig7 ~params ());
    ("fig8", fun ~params -> Holes_exp.Figures.fig8 ~params ());
    ("fig9a", fun ~params -> Holes_exp.Figures.fig9a ~params ());
    ("fig9b", fun ~params -> Holes_exp.Figures.fig9b ~params ());
    ("fig10", fun ~params -> Holes_exp.Figures.fig10 ~params ());
    ("pauses", fun ~params -> Holes_exp.Figures.pauses ~params ());
    ("headline", fun ~params -> Holes_exp.Figures.headline ~params ());
    ("sensitivity", fun ~params -> Holes_exp.Figures.sensitivity ~params ());
    ("wearlevel", fun ~params -> Holes_exp.Wear_policies.table ~params ());
    ("wearlife", fun ~params -> Holes_exp.Wear_lifetime.table ~params ());
    ("fleet", fun ~params -> Holes_exp.Fleet_figure.table ~params ());
    ("hybrid", fun ~params -> Holes_exp.Hybrid_figure.table ~params ());
    ("ablation", fun ~params -> Holes_exp.Figures.ablation ~params ());
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: the operation families whose costs the
   figures are built from.                                             *)
(* ------------------------------------------------------------------ *)

let mk_vm ?(cfg = Holes.Config.default) () =
  Holes.Vm.create ~cfg ~min_heap_bytes:(1 lsl 20) ()

let bench_alloc_small =
  (* fig3/fig6a driver: the bump-pointer fast path *)
  Test.make ~name:"alloc-small-bump" (Staged.stage (fun () ->
      let vm = mk_vm () in
      for _ = 1 to 2000 do
        let id = Holes.Vm.alloc vm ~size:48 () in
        Holes.Vm.kill vm id
      done))

let bench_alloc_holes =
  (* fig4/fig5 driver: allocation that must skip failed lines *)
  let cfg =
    { Holes.Config.default with Holes.Config.failure_rate = 0.25; failure_dist = Holes.Config.Uniform }
  in
  Test.make ~name:"alloc-small-skip-holes" (Staged.stage (fun () ->
      let vm = mk_vm ~cfg () in
      for _ = 1 to 2000 do
        let id = Holes.Vm.alloc vm ~size:48 () in
        Holes.Vm.kill vm id
      done))

let bench_alloc_medium =
  (* fig7/fig9 driver: medium-object overflow allocation under failures *)
  let cfg =
    { Holes.Config.default with Holes.Config.failure_rate = 0.25; failure_dist = Holes.Config.Hw_cluster 2 }
  in
  Test.make ~name:"alloc-medium-overflow" (Staged.stage (fun () ->
      let vm = mk_vm ~cfg () in
      for _ = 1 to 300 do
        let id = Holes.Vm.alloc vm ~size:2048 () in
        Holes.Vm.kill vm id
      done))

let bench_full_gc =
  (* pause-table driver: a full-heap trace and sweep *)
  Test.make ~name:"full-collection" (Staged.stage (fun () ->
      let vm = mk_vm () in
      let ids = Array.init 3000 (fun _ -> Holes.Vm.alloc vm ~size:64 ()) in
      Array.iteri (fun i id -> if i mod 2 = 0 then Holes.Vm.kill vm id) ids;
      Holes.Vm.collect vm ~full:true))

let bench_cluster_transform =
  (* fig8/fig9 driver: the hardware clustering map transform *)
  let rng = Holes_stdx.Xrng.of_seed 3 in
  let map = Holes_pcm.Failure_map.uniform rng ~nlines:(256 * 64) ~rate:0.25 in
  Test.make ~name:"cluster-transform-1MB" (Staged.stage (fun () ->
      ignore (Holes_pcm.Failure_map.cluster_transform map ~region_pages:2)))

let bench_redirect =
  (* Sec. 3.1.2 hardware: redirection-map failure recording + lookups *)
  Test.make ~name:"redirect-record+translate" (Staged.stage (fun () ->
      let r = Holes_pcm.Redirect.create ~region_pages:2 ~region_index:0 () in
      for p = 0 to 63 do
        ignore (Holes_pcm.Redirect.record_failure r ~physical:(p * 2))
      done;
      let acc = ref 0 in
      for l = 0 to Holes_pcm.Redirect.nlines r - 1 do
        acc := !acc + Holes_pcm.Redirect.translate r l
      done;
      ignore !acc))

let bench_failure_buffer =
  (* Sec. 3.1.1 hardware: failure-buffer insert/forward/clear *)
  let payload = Bytes.make Holes_pcm.Geometry.line_bytes 'x' in
  Test.make ~name:"failure-buffer-cycle" (Staged.stage (fun () ->
      let fb = Holes_pcm.Failure_buffer.create ~capacity:32 () in
      for a = 0 to 19 do
        ignore (Holes_pcm.Failure_buffer.insert fb ~addr:a ~data:payload)
      done;
      for a = 0 to 19 do
        ignore (Holes_pcm.Failure_buffer.forward fb ~addr:a);
        ignore (Holes_pcm.Failure_buffer.clear fb ~addr:a)
      done))

let bench_wear =
  (* Sec. 2.2 wear model: writes to exhaustion *)
  Test.make ~name:"wear-line-to-failure" (Staged.stage (fun () ->
      let rng = Holes_stdx.Xrng.of_seed 11 in
      let p = Holes_pcm.Wear.fast_params in
      let l = Holes_pcm.Wear.fresh_line rng p in
      let rec go () =
        match Holes_pcm.Wear.write rng p l with
        | Holes_pcm.Wear.Failed -> ()
        | _ -> go ()
      in
      go ()))

let micro_tests =
  Test.make_grouped ~name:"holes" ~fmt:"%s %s"
    [
      bench_alloc_small; bench_alloc_holes; bench_alloc_medium; bench_full_gc;
      bench_cluster_transform; bench_redirect; bench_failure_buffer; bench_wear;
    ]

let run_micro () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
  let raw_results = Benchmark.all cfg instances micro_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  print_endline "== Bechamel microbenchmarks (monotonic clock) ==";
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some (est :: _) -> Printf.printf "%-34s %12.1f ns/run\n" name est
            | _ -> Printf.printf "%-34s (no estimate)\n" name)
          tbl)
    results

(* ------------------------------------------------------------------ *)
(* The reduced grid used by `figures-quick` (CI) and `speedup`: two
   substantial figures at a small scale, enough trials to exercise the
   engine without paper-grade wall-clock.                              *)

let quick_grid_params ~jobs = { Holes_exp.Runner.scale = 0.1; seeds = 2; jobs }

(* The wearlevel ablation and the fleet figure joined the CI grid later
   than the original figures; their trials stream to *separate* sink
   files (results-wearlevel.jsonl / results-fleet.jsonl next to --out)
   so the long-standing results.jsonl stream stays record-for-record
   comparable across releases. *)
let run_quick_grid ~params ~out =
  Holes_stdx.Table.print (Holes_exp.Figures.fig4 ~params ());
  Holes_stdx.Table.print (Holes_exp.Figures.headline ~params ());
  let saved = Holes_exp.Runner.current_sink () in
  let derived_path tag =
    Option.map
      (fun p ->
        let ext = Filename.extension p in
        Filename.remove_extension p ^ "-" ^ tag ^ ext)
      out
  in
  let print_to_own_sink tag table =
    let path = derived_path tag in
    let sink =
      if path <> None || params.Holes_exp.Runner.jobs > 1 then
        Some (Holes_engine.Sink.create ?path ())
      else None
    in
    Holes_exp.Runner.set_sink sink;
    Fun.protect
      ~finally:(fun () ->
        (match sink with Some s -> Holes_engine.Sink.close s | None -> ());
        Holes_exp.Runner.set_sink saved)
      (fun () -> Holes_stdx.Table.print (table ()))
  in
  print_to_own_sink "wearlevel" (fun () -> Holes_exp.Wear_policies.table ~params ());
  print_to_own_sink "fleet" (fun () -> Holes_exp.Fleet_figure.table ~params ());
  print_to_own_sink "hybrid" (fun () -> Holes_exp.Hybrid_figure.table ~params ())

(* `speedup`: measure the parallelism win instead of asserting it — the
   same reduced grid, wall-clocked at -j 1 and -j max from a cold memo
   cache each time. *)
let run_speedup () =
  let time_with jobs =
    Holes_exp.Runner.clear_cache ();
    let params = quick_grid_params ~jobs in
    let t0 = Unix.gettimeofday () in
    ignore (Holes_exp.Figures.fig4 ~params ());
    ignore (Holes_exp.Figures.headline ~params ());
    Unix.gettimeofday () -. t0
  in
  let jmax = Holes_engine.Engine.default_jobs () in
  let t1 = time_with 1 in
  let tn = time_with jmax in
  Printf.printf
    "quick figure grid wall-clock: -j 1 = %.2f s, -j %d = %.2f s, speedup %.2fx (%d cores)\n"
    t1 jmax tn (t1 /. tn)
    (Domain.recommended_domain_count ())

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse (jobs, out, trace, fullp, verify, names) = function
    | [] -> (jobs, out, trace, fullp, verify, List.rev names)
    | "--full" :: rest -> parse (jobs, out, trace, true, verify, names) rest
    | "--verify" :: rest -> parse (jobs, out, trace, fullp, true, names) rest
    | ("-j" | "--jobs") :: n :: rest ->
        let j =
          if n = "max" then Holes_engine.Engine.default_jobs ()
          else
            match int_of_string_opt n with
            | Some j when j >= 1 -> j
            | _ -> failwith (Printf.sprintf "bad -j value %S (positive integer or \"max\")" n)
        in
        parse (j, out, trace, fullp, verify, names) rest
    | "--out" :: path :: rest -> parse (jobs, Some path, trace, fullp, verify, names) rest
    | "--trace" :: path :: rest -> parse (jobs, out, Some path, fullp, verify, names) rest
    | name :: rest -> parse (jobs, out, trace, fullp, verify, name :: names) rest
  in
  let jobs, out, trace, fullp, verify, args = parse (1, None, None, false, false, []) args in
  Holes_exp.Runner.set_verify verify;
  let params =
    let p = if fullp then Holes_exp.Runner.full else Holes_exp.Runner.quick in
    { p with Holes_exp.Runner.jobs }
  in
  (* stream trials to --out; show live progress whenever domains run *)
  let sink =
    if out <> None || jobs > 1 then Some (Holes_engine.Sink.create ?path:out ())
    else None
  in
  Holes_exp.Runner.set_sink sink;
  let tracer = Option.map (fun _ -> Holes_obs.Trace.create ()) trace in
  Holes_exp.Runner.set_tracer tracer;
  let finish () =
    (match (tracer, trace) with
    | Some tr, Some path ->
        Holes_obs.Trace.write tr path;
        Printf.printf "(trace: %s, %d events%s)\n" path
          (List.length (Holes_obs.Trace.events tr))
          (let d = Holes_obs.Trace.dropped tr in
           if d = 0 then "" else Printf.sprintf ", %d dropped" d)
    | _ -> ());
    Holes_exp.Runner.set_tracer None;
    (match sink with Some s -> Holes_engine.Sink.close s | None -> ());
    Holes_exp.Runner.set_sink None
  in
  Fun.protect ~finally:finish (fun () ->
      let print_one name =
        match List.assoc_opt name figures with
        | Some f ->
            let t0 = Unix.gettimeofday () in
            Holes_stdx.Table.print (f ~params);
            Printf.printf "(%s generated in %.1f s)\n\n%!" name (Unix.gettimeofday () -. t0)
        | None -> Printf.eprintf "unknown target %s\n" name
      in
      match args with
      | [] ->
          Printf.printf "Regenerating all paper tables/figures (%s parameters, -j %d)\n\n%!"
            (if fullp then "full" else "quick")
            jobs;
          List.iter (fun (n, _) -> print_one n) figures;
          run_micro ()
      | [ "micro" ] -> run_micro ()
      | [ "figures-quick" ] -> run_quick_grid ~params:(quick_grid_params ~jobs) ~out
      | [ "speedup" ] -> run_speedup ()
      | names -> List.iter print_one names)
