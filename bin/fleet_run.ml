(* fleet-run: the fleet-scale serving simulator — N tenant VMs
   multiplexed over a shared pool of aging PCM devices, with
   request-level tail-latency reporting.

     dune exec bin/fleet_run.exe -- --tenants 8 --devices 2 --arrival poisson:200
     dune exec bin/fleet_run.exe -- --tenants 1000 --devices 64 \
       --arrival poisson:150 --duration 1000 -j 8
     dune exec bin/fleet_run.exe -- --arrival mmpp:150:8:50 --endurance 300 \
       --storm-every 100 --wear-level startgap:64 --trace fleet.json

   One engine job per device shard; any -j yields a bit-identical
   report.  --out streams one JSONL record per device; --trace writes a
   Chrome trace with one synthetic process per device and a thread lane
   per tenant (virtual timestamps). *)

open Cmdliner
module Fleet_sim = Holes_fleet.Sim
module Arrivals = Holes_fleet.Arrivals
module Report = Holes_fleet.Report

let run tenants devices arrival duration jobs endurance wear_level wear_aware hybrid
    dram_pages gc_increment req_bytes session_bytes live_kb rate heap storm_every storm_writes
    slo epochs max_replacements seed out trace epoch_table =
  let arrival =
    match Arrivals.of_cli arrival with
    | Ok a -> a
    | Error m -> failwith (Printf.sprintf "bad --arrival: %s" m)
  in
  let wear_level =
    match Holes_pcm.Translate.of_cli wear_level with
    | Ok p -> p
    | Error m -> failwith (Printf.sprintf "bad --wear-level %S: %s" wear_level m)
  in
  let hybrid =
    match Holes_pcm.Hybrid.of_cli hybrid with
    | Ok p -> p
    | Error m -> failwith (Printf.sprintf "bad --hybrid %S: %s" hybrid m)
  in
  let d = Holes.Config.default_device in
  let wear =
    match endurance with
    | None -> d.Holes.Config.wear
    | Some e -> { d.Holes.Config.wear with Holes_pcm.Wear.mean_endurance = e }
  in
  (* per-tenant baseline: Pool.create scales this by the slot count when
     migration is on, so the flag provisions frames per tenant, not per
     device *)
  let dram_pages =
    match dram_pages with None -> d.Holes.Config.dram_pages | Some n -> n
  in
  let cfg =
    {
      Fleet_sim.default.Fleet_sim.cfg with
      Holes.Config.backend =
        Holes.Config.Device
          { d with Holes.Config.wear; wear_aware_pools = wear_aware; dram_pages };
      wear_level;
      gc_slice = gc_increment;
      hybrid;
      failure_rate = rate;
      heap_factor = heap;
      seed;
    }
  in
  let tenant =
    let t = Fleet_sim.default.Fleet_sim.tenant in
    let profile =
      match live_kb with
      | None -> t.Holes_fleet.Tenant.profile
      | Some kb ->
          Holes_workload.Profile.make ~name:(Printf.sprintf "serving%dk" kb)
            ~description:"serving tenant with a scaled live set" ~live_kb:kb ~immortal_kb:8
            ~volume_mb:1 ()
    in
    {
      t with
      Holes_fleet.Tenant.profile;
      req_bytes = Option.value req_bytes ~default:t.Holes_fleet.Tenant.req_bytes;
      session_bytes =
        Option.value session_bytes ~default:t.Holes_fleet.Tenant.session_bytes;
    }
  in
  let params =
    {
      Fleet_sim.tenants;
      devices;
      arrival;
      duration_ms = duration;
      slo_ms = slo;
      epochs;
      storm_every_ms = storm_every;
      storm_writes;
      max_replacements;
      tenant;
      cfg;
    }
  in
  (match Fleet_sim.validate params with
  | Ok () -> ()
  | Error m -> failwith (Printf.sprintf "invalid fleet parameters: %s" m));
  let sink = Option.map (fun path -> Holes_engine.Sink.create ~path ()) out in
  let collector = Option.map (fun _ -> Holes_obs.Trace.create ()) trace in
  let report =
    Fun.protect
      ~finally:(fun () ->
        (match (collector, trace) with
        | Some c, Some path -> Holes_obs.Trace.write c path
        | _ -> ());
        match sink with Some s -> Holes_engine.Sink.close s | None -> ())
      (fun () -> Fleet_sim.run ~jobs ?sink ?collector params)
  in
  Format.printf "%a@." Report.pp report;
  if epoch_table then begin
    Format.printf "@.age-epoch latency (completion-time split):@.";
    Array.iteri
      (fun i h ->
        Format.printf "  epoch %d: n=%-8d p50 %8.3f ms  p99 %8.3f ms  p999 %8.3f ms@." i
          (Holes_obs.Stats.count h)
          (Holes_obs.Stats.quantile h 0.50 /. 1e6)
          (Holes_obs.Stats.quantile h 0.99 /. 1e6)
          (Holes_obs.Stats.quantile h 0.999 /. 1e6))
      report.Report.epoch
  end;
  (match trace with
  | Some path -> Printf.printf "trace: %s\n" path
  | None -> ());
  if report.Report.dead_tenants > 0 then 2 else 0

let cmd =
  let tenants =
    Arg.(value & opt int 8 & info [ "tenants"; "t" ] ~docv:"N" ~doc:"Tenant VMs in the fleet.")
  in
  let devices =
    Arg.(value & opt int 2
         & info [ "devices"; "d" ] ~docv:"N"
             ~doc:"Pooled PCM devices; tenants are spread round-robin and each device is one \
                   deterministic shard.")
  in
  let arrival =
    Arg.(value & opt string "poisson:200"
         & info [ "arrival"; "a" ] ~docv:"SPEC"
             ~doc:"Per-tenant open-loop arrival process: poisson:RATE or \
                   mmpp:RATE:BURST:DWELL_MS (rates in req/s).")
  in
  let duration =
    Arg.(value & opt float 1000.0
         & info [ "duration" ] ~docv:"MS" ~doc:"Arrival window in virtual milliseconds.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains (device shards in parallel); the report is bit-identical \
                   at any value.")
  in
  let endurance =
    Arg.(value & opt (some float) None
         & info [ "endurance" ] ~docv:"N"
             ~doc:"Mean per-line write endurance (lognormal); lower ages the fleet faster.")
  in
  let wear_level =
    Arg.(value & opt string "none"
         & info [ "wear-level" ] ~docv:"W"
             ~doc:"Device wear-leveling stage: none, startgap[:PSI], random[:PSI] or \
                   decoder[:PSI].")
  in
  let wear_aware =
    Arg.(value & flag
         & info [ "wear-aware-pools" ]
             ~doc:"OS page-allocator leveling: grant the least-worn free perfect page \
                   instead of the free-list head.")
  in
  let hybrid =
    Arg.(value & opt string "none"
         & info [ "hybrid" ] ~docv:"H"
             ~doc:"DRAM/PCM tiering policy per device: none, migrate[:EPOCH], caram[:WAYS], \
                   or migrate[:EPOCH]+caram[:WAYS].  With migration on, the node's DRAM is \
                   provisioned per tenant (--dram-pages × slots).")
  in
  let dram_pages =
    Arg.(value & opt (some int) None
         & info [ "dram-pages" ] ~docv:"N"
             ~doc:"DRAM frames per tenant in front of each device's PCM namespace (default \
                   16).")
  in
  let gc_increment =
    Arg.(value & opt int 0
         & info [ "gc-increment" ] ~docv:"BUDGET"
             ~doc:"Incremental-collection work budget per tenant GC slice (objects per mark \
                   slice; 0 = stop-the-world).  The fleet report then carries per-device GC \
                   pause p99/max fields.")
  in
  let req_bytes =
    Arg.(value & opt (some int) None
         & info [ "req-bytes" ] ~docv:"N" ~doc:"Mean bytes allocated per request.")
  in
  let session_bytes =
    Arg.(value & opt (some int) None
         & info [ "session-bytes" ] ~docv:"N"
             ~doc:"Session state allocated at session start (the tenant's retained live \
                   set; stop-the-world mark pauses scale with it).")
  in
  let live_kb =
    Arg.(value & opt (some int) None
         & info [ "live-kb" ] ~docv:"KB"
             ~doc:"Tenant live-set budget in KB (sizes the tenant heap; stop-the-world \
                   pauses scale with it).")
  in
  let rate =
    Arg.(value & opt float 0.0
         & info [ "rate"; "r" ] ~docv:"F" ~doc:"Boot-time PCM line failure rate in [0,0.95].")
  in
  let heap =
    Arg.(value & opt float 2.0
         & info [ "heap" ] ~docv:"X" ~doc:"Tenant heap as a multiple of the profile minimum.")
  in
  let storm_every =
    Arg.(value & opt float 0.0
         & info [ "storm-every" ] ~docv:"MS"
             ~doc:"Inject a failure storm on every device each MS virtual milliseconds (0 \
                   disables).")
  in
  let storm_writes =
    Arg.(value & opt int 4096
         & info [ "storm-writes" ] ~docv:"N" ~doc:"Junk line-stores per failure storm.")
  in
  let slo =
    Arg.(value & opt float 10.0
         & info [ "slo" ] ~docv:"MS" ~doc:"Goodput latency threshold in milliseconds.")
  in
  let epochs =
    Arg.(value & opt int 4
         & info [ "epochs" ] ~docv:"N" ~doc:"Age epochs for the per-epoch latency split.")
  in
  let max_replacements =
    Arg.(value & opt int 3
         & info [ "max-replacements" ] ~docv:"N"
             ~doc:"Evictions a tenant survives before its slot goes permanently dead.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.") in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Stream one JSONL record per device shard to FILE.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace_event JSON (one synthetic process per device, one \
                   thread lane per tenant; virtual timestamps).")
  in
  let epoch_table =
    Arg.(value & flag & info [ "epoch-table" ] ~doc:"Print the per-epoch latency table.")
  in
  let doc = "simulate a serving fleet of tenant VMs over shared aging PCM devices" in
  Cmd.v
    (Cmd.info "fleet-run" ~doc)
    Term.(
      const run $ tenants $ devices $ arrival $ duration $ jobs $ endurance $ wear_level
      $ wear_aware $ hybrid $ dram_pages $ gc_increment $ req_bytes $ session_bytes
      $ live_kb $ rate $ heap $ storm_every $ storm_writes $ slo $ epochs
      $ max_replacements $ seed $ out $ trace $ epoch_table)

let () = exit (Cmd.eval' cmd)
