(* holes-run: run one benchmark profile under one collector/failure
   configuration and print the full metrics.

     dune exec bin/holes_run.exe -- --bench pmd --rate 0.25 --dist 2cl
     dune exec bin/holes_run.exe -- --list
     dune exec bin/holes_run.exe -- --bench xalan --collector ms --heap 3.0

   Multi-seed mode: --trials N runs N seeds of the configuration through
   the experiment engine on --jobs domains (same outcome at any -j) and
   prints the aggregated statistics; --out streams one JSONL record per
   trial.

     dune exec bin/holes_run.exe -- -b pmd -r 0.25 --trials 8 -j 4 --out t.jsonl

   Observability: --trace FILE writes a Chrome trace_event JSON of the
   run (open in Perfetto / chrome://tracing; timestamps are modeled
   nanoseconds, so the file is identical at any -j); --stats prints the
   pause/hole-search/buffer-occupancy histograms.

     dune exec bin/holes_run.exe -- -b pmd --backend device --trace t.json --stats *)

open Cmdliner

(* aggregate statistics of a multi-seed engine run *)
let print_outcome (profile : Holes_workload.Profile.t) (cfg : Holes.Config.t) ~(heap : float)
    ~(jobs : int) (o : Holes_exp.Runner.outcome) : int =
  Printf.printf "benchmark:  %s (%s)\n" profile.Holes_workload.Profile.name
    profile.Holes_workload.Profile.description;
  Printf.printf "config:     %s, heap %.2fx min\n" (Holes.Config.name cfg) heap;
  Printf.printf "trials:     %d on %d worker domain%s, %d completed\n" o.Holes_exp.Runner.trials
    jobs
    (if jobs = 1 then "" else "s")
    o.Holes_exp.Runner.completed;
  (match o.Holes_exp.Runner.time_ms with
  | Some s ->
      Printf.printf "time:       %s ms\n" (Format.asprintf "%a" Holes_stdx.Stats.pp_summary s)
  | None -> Printf.printf "time:       DNF (no trial completed)\n");
  Printf.printf "GCs:        %.1f full, %.1f nursery (mean per trial)\n"
    o.Holes_exp.Runner.mean_full_gcs o.Holes_exp.Runner.mean_nursery_gcs;
  if o.Holes_exp.Runner.mean_full_pause_ms > 0.0 then
    Printf.printf "full pause: %.3f ms mean, %.3f ms max\n" o.Holes_exp.Runner.mean_full_pause_ms
      o.Holes_exp.Runner.max_full_pause_ms;
  Printf.printf "borrowed:   %.1f perfect (DRAM) pages per trial\n"
    o.Holes_exp.Runner.mean_borrowed;
  if o.Holes_exp.Runner.mean_device_writes > 0.0 then
    Printf.printf "device:     %.0f writes, %.1f wear failures, %.1f up-calls per trial\n"
      o.Holes_exp.Runner.mean_device_writes o.Holes_exp.Runner.mean_device_failures
      o.Holes_exp.Runner.mean_upcalls;
  if o.Holes_exp.Runner.mean_verify_passes > 0.0 then
    Printf.printf "verifier:   %.1f clean passes per trial\n"
      o.Holes_exp.Runner.mean_verify_passes;
  if o.Holes_exp.Runner.completed = o.Holes_exp.Runner.trials then 0 else 2

let run list_benches bench collector line_size rate dist model compensate arraylets backend
    endurance wear_level hybrid dram_pages heap scale seed trials jobs out trace stats verify
    gc_increment verbose =
  if list_benches then begin
    print_endline "available benchmark profiles:";
    List.iter
      (fun p ->
        Printf.printf "  %-14s %s\n" p.Holes_workload.Profile.name
          p.Holes_workload.Profile.description)
      Holes_workload.Dacapo.suite_with_buggy;
    0
  end
  else
    match Holes_workload.Dacapo.find bench with
    | None ->
        Printf.eprintf "unknown benchmark %S (try --list)\n" bench;
        1
    | Some profile -> (
        let collector =
          match String.lowercase_ascii collector with
          | "ms" -> Holes.Config.Mark_sweep
          | "ix" -> Holes.Config.Immix
          | "s-ms" | "sms" -> Holes.Config.Sticky_ms
          | "s-ix" | "six" -> Holes.Config.Sticky_immix
          | other -> failwith (Printf.sprintf "unknown collector %S (ms|ix|s-ms|s-ix)" other)
        in
        let failure_dist =
          match String.lowercase_ascii dist with
          | "uniform" -> Holes.Config.Uniform
          | "1cl" -> Holes.Config.Hw_cluster 1
          | "2cl" -> Holes.Config.Hw_cluster 2
          | g -> (
              match int_of_string_opt g with
              | Some lines when lines > 0 -> Holes.Config.Granule lines
              | _ -> failwith (Printf.sprintf "unknown distribution %S (uniform|1cl|2cl|<granule-lines>)" g))
        in
        let failure_model =
          match model with
          | None -> Holes.Config.From_dist
          | Some s -> (
              match Holes_pcm.Failure_model.of_cli s with
              | Ok spec -> Holes.Config.Model spec
              | Error m -> failwith (Printf.sprintf "bad --model %S: %s" s m))
        in
        let backend =
          match String.lowercase_ascii backend with
          | "static" -> Holes.Config.Static
          | "device" ->
              let d = Holes.Config.default_device in
              let wear =
                match endurance with
                | None -> d.Holes.Config.wear
                | Some e -> { d.Holes.Config.wear with Holes_pcm.Wear.mean_endurance = e }
              in
              let dram_pages =
                match dram_pages with None -> d.Holes.Config.dram_pages | Some n -> n
              in
              Holes.Config.Device { d with Holes.Config.wear; dram_pages }
          | other -> failwith (Printf.sprintf "unknown backend %S (static|device)" other)
        in
        let wear_level =
          match Holes_pcm.Translate.of_cli wear_level with
          | Ok p -> p
          | Error m -> failwith (Printf.sprintf "bad --wear-level %S: %s" wear_level m)
        in
        let hybrid =
          match Holes_pcm.Hybrid.of_cli hybrid with
          | Ok p -> p
          | Error m -> failwith (Printf.sprintf "bad --hybrid %S: %s" hybrid m)
        in
        let cfg =
          {
            Holes.Config.collector;
            line_size;
            failure_rate = rate;
            failure_dist;
            compensate;
            heap_factor = heap;
            defrag = true;
            defrag_occupancy = 0.30;
            nursery_copy = true;
            arraylets;
            backend;
            wear_level;
            failure_model;
            verify;
            gc_slice = gc_increment;
            hybrid;
            seed;
          }
        in
        match Holes.Config.validate cfg with
        | Error m ->
            Printf.eprintf "invalid configuration: %s\n" m;
            1
        | Ok () when trials > 1 || out <> None || trace <> None ->
            (* multi-seed (or JSONL-streaming / tracing) mode: through
               the engine, so trace pids come from job specs *)
            let sink = Option.map (fun path -> Holes_engine.Sink.create ~path ()) out in
            Holes_exp.Runner.set_sink sink;
            let tracer = Option.map (fun _ -> Holes_obs.Trace.create ()) trace in
            Holes_exp.Runner.set_tracer tracer;
            Fun.protect
              ~finally:(fun () ->
                (match (tracer, trace) with
                | Some tr, Some path ->
                    Holes_obs.Trace.write tr path;
                    Printf.printf "trace:      %s (%d events%s)\n" path
                      (List.length (Holes_obs.Trace.events tr))
                      (let d = Holes_obs.Trace.dropped tr in
                       if d = 0 then "" else Printf.sprintf ", %d dropped" d)
                | _ -> ());
                Holes_exp.Runner.set_tracer None;
                (match sink with Some s -> Holes_engine.Sink.close s | None -> ());
                Holes_exp.Runner.set_sink None)
              (fun () ->
                let params = { Holes_exp.Runner.scale; seeds = trials; jobs } in
                let o = Holes_exp.Runner.run ~params ~cfg ~profile () in
                let code = print_outcome profile cfg ~heap ~jobs o in
                if stats then
                  Printf.printf "pause hist: %s\n"
                    (Holes_obs.Stats.summary_string o.Holes_exp.Runner.pause_hist);
                code)
        | Ok () ->
            let res = Holes_workload.Generator.run_config ~cfg ~profile ~scale () in
            Printf.printf "benchmark:  %s (%s)\n" profile.Holes_workload.Profile.name
              profile.Holes_workload.Profile.description;
            Printf.printf "config:     %s, heap %.2fx min\n" (Holes.Config.name cfg) heap;
            Printf.printf "completed:  %b\n" res.Holes_workload.Generator.completed;
            Printf.printf "time:       %.3f ms (mutator %.3f, gc %.3f)\n"
              res.Holes_workload.Generator.elapsed_ms res.Holes_workload.Generator.mutator_ms
              res.Holes_workload.Generator.gc_ms;
            let m = res.Holes_workload.Generator.metrics in
            Printf.printf "allocation: %d objects, %.2f MB\n" m.Holes.Metrics.objects_allocated
              (float_of_int m.Holes.Metrics.bytes_allocated /. 1048576.0);
            Printf.printf "GCs:        %d full, %d nursery\n" m.Holes.Metrics.full_gcs
              m.Holes.Metrics.nursery_gcs;
            (match Holes.Metrics.mean_full_pause_ms m with
            | Some p ->
                Printf.printf "full pause: %.3f ms mean, %.3f ms max\n" p
                  (Option.value ~default:0.0 (Holes.Metrics.max_full_pause_ms m))
            | None -> ());
            if verbose then begin
              Printf.printf "copied:     %.2f MB in %d evacuations\n"
                (float_of_int m.Holes.Metrics.bytes_copied /. 1048576.0)
                m.Holes.Metrics.objects_evacuated;
              Printf.printf "holes:      %d skips, %d lines scanned\n" m.Holes.Metrics.hole_skips
                m.Holes.Metrics.lines_scanned;
              Printf.printf "overflow:   %d allocs, %d re-searches, %d perfect fallbacks\n"
                m.Holes.Metrics.overflow_allocs m.Holes.Metrics.overflow_searches
                m.Holes.Metrics.perfect_block_fallbacks;
              Printf.printf "LOS:        %d objects, %d pages\n" m.Holes.Metrics.los_objects
                m.Holes.Metrics.los_pages;
              if m.Holes.Metrics.device_writes > 0 then begin
                Printf.printf "device:     %d reads, %d writes, %d wear failures\n"
                  m.Holes.Metrics.device_reads m.Holes.Metrics.device_writes
                  m.Holes.Metrics.device_line_failures;
                Printf.printf "fbuf:       peak occupancy %d, %d stalls\n"
                  m.Holes.Metrics.fbuf_peak_occupancy m.Holes.Metrics.fbuf_stall_events;
                Printf.printf "OS:         %d up-calls, %d page copies, %d data restores\n"
                  m.Holes.Metrics.os_upcalls m.Holes.Metrics.os_page_copies
                  m.Holes.Metrics.os_data_restores;
                Printf.printf "VMM:        %d reverse translations, %d swap-ins\n"
                  m.Holes.Metrics.reverse_translations m.Holes.Metrics.swap_ins;
                if m.Holes.Metrics.wl_active then
                  Printf.printf
                    "leveling:   %d gap moves, %d remaps, %d copies, %d meta writes, wear \
                     CoV %.3f\n"
                    m.Holes.Metrics.wl_gap_moves m.Holes.Metrics.wl_remaps
                    m.Holes.Metrics.wl_remap_copies m.Holes.Metrics.wl_meta_writes
                    m.Holes.Metrics.wear_cov;
                if m.Holes.Metrics.hybrid_active then
                  Printf.printf
                    "hybrid:     %d promotes, %d demotes, %d DRAM writes, %d resident; \
                     caram %d dedup + %d compressed (%d meta)\n"
                    m.Holes.Metrics.hyb_promotes m.Holes.Metrics.hyb_demotes
                    m.Holes.Metrics.hyb_dram_writes m.Holes.Metrics.hyb_resident
                    m.Holes.Metrics.hyb_dedup_hits m.Holes.Metrics.hyb_compressed
                    m.Holes.Metrics.hyb_meta_writes
              end
            end;
            if stats then begin
              let h = Holes_obs.Stats.summary_string in
              Printf.printf "pause hist (ns):         %s\n" (h m.Holes.Metrics.pause_hist);
              Printf.printf "nursery pause hist (ns): %s\n"
                (h m.Holes.Metrics.nursery_pause_hist);
              Printf.printf "hole search (lines):     %s\n" (h m.Holes.Metrics.hole_search_hist);
              Printf.printf "fbuf occupancy:          %s\n"
                (h m.Holes.Metrics.fbuf_occupancy_hist)
            end;
            if res.Holes_workload.Generator.completed then 0 else 2)

let cmd =
  let list_f = Arg.(value & flag & info [ "list" ] ~doc:"List benchmark profiles and exit.") in
  let bench =
    Arg.(value & opt string "pmd" & info [ "bench"; "b" ] ~docv:"NAME" ~doc:"Benchmark profile.")
  in
  let collector =
    Arg.(value & opt string "s-ix" & info [ "collector"; "c" ] ~docv:"C" ~doc:"Collector: ms, ix, s-ms or s-ix.")
  in
  let line_size =
    Arg.(value & opt int 256 & info [ "line" ] ~docv:"BYTES" ~doc:"Immix logical line size (64/128/256).")
  in
  let rate =
    Arg.(value & opt float 0.0 & info [ "rate"; "r" ] ~docv:"F" ~doc:"PCM line failure rate in [0,0.95].")
  in
  let dist =
    Arg.(value & opt string "uniform"
         & info [ "dist"; "d" ] ~docv:"D" ~doc:"Failure distribution: uniform, 1cl, 2cl, or a granule size in 64B lines.")
  in
  let model =
    Arg.(value & opt (some string) None
         & info [ "model"; "m" ] ~docv:"M"
             ~doc:"Adversarial failure model replacing --dist: corr:CLUSTER[:REGION] \
                   (spatially-correlated map), var:COV[:lognormal|gauss] (endurance \
                   variation), storm:BURST:PERIOD (bursty dynamic failures every PERIOD \
                   allocated bytes), adv:PERIOD (worst-case placement at the bump cursor).")
  in
  let compensate =
    Arg.(value & opt bool true & info [ "compensate" ] ~docv:"BOOL" ~doc:"Heap compensation h/(1-f).")
  in
  let arraylets =
    Arg.(value & flag & info [ "arraylets" ] ~doc:"Split large arrays into discontiguous arraylets (Z-rays) instead of using the perfect-page LOS.")
  in
  let backend =
    Arg.(value & opt string "static"
         & info [ "backend" ] ~docv:"B"
             ~doc:"Memory backend: static (fault-injection map) or device (full device/OS pipeline with wear).")
  in
  let endurance =
    Arg.(value & opt (some float) None
         & info [ "endurance" ] ~docv:"N"
             ~doc:"Device backend: mean per-line write endurance (lognormal).")
  in
  let wear_level =
    Arg.(value & opt string "none"
         & info [ "wear-level" ] ~docv:"W"
             ~doc:"Device backend: wear-leveling stage in the address-translation pipeline: \
                   none, startgap[:PSI], random[:PSI] or decoder[:PSI] (PSI = writes between \
                   moves, default 100).")
  in
  let hybrid =
    Arg.(value & opt string "none"
         & info [ "hybrid" ] ~docv:"H"
             ~doc:"Device backend: DRAM/PCM tiering policy: none, migrate[:EPOCH] (hot-page \
                   promotion into DRAM frames, EPOCH = charged writes per decay round), \
                   caram[:WAYS] (content-aware dedup/compression store in front of the \
                   cells), or migrate[:EPOCH]+caram[:WAYS].")
  in
  let dram_pages =
    Arg.(value & opt (some int) None
         & info [ "dram-pages" ] ~docv:"N"
             ~doc:"Device backend: DRAM frames in front of the PCM namespace (default 16).")
  in
  let heap =
    Arg.(value & opt float 2.0 & info [ "heap" ] ~docv:"X" ~doc:"Heap size as a multiple of the minimum.")
  in
  let scale =
    Arg.(value & opt float 0.5 & info [ "scale" ] ~docv:"S" ~doc:"Workload volume scale (1.0 = full).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.") in
  let trials =
    Arg.(value & opt int 1
         & info [ "trials" ] ~docv:"N"
             ~doc:"Run N seeds of the configuration through the experiment engine and print \
                   aggregate statistics (N = 1 keeps the detailed single-run output).")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains for --trials; outcomes are identical at any value.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Stream one JSONL record per trial to FILE.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace_event JSON of the run to FILE (Perfetto-loadable; \
                   virtual timestamps, identical at any --jobs).  Forces the engine path \
                   even at --trials 1.")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print pause, hole-search and failure-buffer occupancy histograms.")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Run the paranoid heap verifier after every GC phase (expensive; results \
                   are guaranteed bit-identical either way).")
  in
  let gc_increment =
    Arg.(value & opt int 0
         & info [ "gc-increment" ] ~docv:"BUDGET"
             ~doc:"Incremental collection work budget per mutator slice, in mark-queue \
                   entries (0 = stop-the-world).  Total GC work is unchanged; only its \
                   interleaving with the mutator — and therefore the recorded pauses — \
                   differ.")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print detailed metrics.") in
  let doc = "run one DaCapo-style workload on the failure-aware runtime" in
  Cmd.v
    (Cmd.info "holes-run" ~doc)
    Term.(
      const run $ list_f $ bench $ collector $ line_size $ rate $ dist $ model $ compensate
      $ arraylets $ backend $ endurance $ wear_level $ hybrid $ dram_pages $ heap $ scale
      $ seed $ trials $ jobs $ out $ trace $ stats $ verify $ gc_increment $ verbose)

let () = exit (Cmd.eval' cmd)
