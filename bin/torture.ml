(* Torture driver: run seeded fuzz schedules from Holes_exp.Torture and
   fail loudly (with a one-line repro command) on any invariant
   violation.  OOM on the deliberately tiny torture heaps is a
   legitimate outcome and does not fail the run. *)

module T = Holes_exp.Torture

(* "0..99", "17", or a comma list mixing both: "3,5,9..12" *)
let parse_seeds (spec : string) : (int list, string) result =
  let parse_part (p : string) =
    match String.index_opt p '.' with
    | None -> (
        match int_of_string_opt p with
        | Some n -> Ok [ n ]
        | None -> Error (Printf.sprintf "bad seed %S" p))
    | Some i -> (
        let lo = String.sub p 0 i in
        let hi = String.sub p (i + 2) (String.length p - i - 2) in
        if i + 1 >= String.length p || p.[i + 1] <> '.' then
          Error (Printf.sprintf "bad range %S (use LO..HI)" p)
        else
          match (int_of_string_opt lo, int_of_string_opt hi) with
          | Some lo, Some hi when lo <= hi -> Ok (List.init (hi - lo + 1) (fun k -> lo + k))
          | _ -> Error (Printf.sprintf "bad range %S (use LO..HI)" p))
  in
  let parts = String.split_on_char ',' (String.trim spec) in
  List.fold_left
    (fun acc p ->
      match (acc, parse_part (String.trim p)) with
      | Ok seeds, Ok more -> Ok (seeds @ more)
      | (Error _ as e), _ -> e
      | _, (Error _ as e) -> e)
    (Ok []) parts

let run (seeds_spec : string) (steps : int) (quiet : bool) : int =
  match parse_seeds seeds_spec with
  | Error msg ->
      Printf.eprintf "torture: %s\n" msg;
      2
  | Ok seeds ->
      let violations = ref 0 in
      let ooms = ref 0 in
      List.iter
        (fun seed ->
          let o = T.run_one ~steps ~seed () in
          let status =
            match o.T.violation with
            | Some _ -> "VIOLATION"
            | None -> if o.T.completed then "ok" else "oom"
          in
          if not o.T.completed then incr ooms;
          if (not quiet) || o.T.violation <> None then
            Printf.printf
              "seed %3d  %-34s %-9s steps=%d allocs=%d inject=%d churn=%d hyb=%d inc=%d \
               gcs=%d verifies=%d checks=%d\n"
              o.T.seed o.T.config status o.T.steps_run o.T.allocs o.T.injections o.T.churns
              o.T.hyb_toggles o.T.inc_toggles o.T.gcs
              (o.T.explicit_verifies + o.T.verify_passes)
              o.T.verify_checks;
          match o.T.violation with
          | None -> ()
          | Some msg ->
              incr violations;
              Printf.printf "  %s\n  repro: %s\n" msg (T.repro_command ~seed ~steps))
        seeds;
      Printf.printf "torture: %d seeds, %d oom, %d violations\n" (List.length seeds) !ooms
        !violations;
      if !violations > 0 then 1 else 0

open Cmdliner

let seeds_arg =
  let doc = "Seeds to run: a number, LO..HI range, or comma list (e.g. 0..99)." in
  Arg.(value & opt string "0..19" & info [ "seeds"; "s" ] ~docv:"SPEC" ~doc)

let steps_arg =
  let doc = "Fuzz steps per seed." in
  Arg.(value & opt int T.default_steps & info [ "steps" ] ~docv:"N" ~doc)

let quiet_arg =
  let doc = "Only print violations and the final summary." in
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc)

let cmd =
  let doc = "torture the failure-aware collector with seeded fuzz schedules" in
  Cmd.v
    (Cmd.info "torture" ~doc)
    Term.(const run $ seeds_arg $ steps_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
