# Development entry points.  `make check` is the tier-1 gate: build +
# full test suite + markdown link lint, plus a formatting check when
# ocamlformat is available (the check is skipped, not failed, on
# machines without it).

.PHONY: all build test check fmt doc lint-md bench bench-check micro figures-quick fleet-quick speedup quickstart clean

MD_FILES := README.md DESIGN.md EXPERIMENTS.md CHANGES.md ROADMAP.md

all: build

build:
	dune build

test:
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

# API docs via odoc (the .mli comments in lib/heap, lib/core, lib/obs
# and lib/engine).  Gated on odoc being installed; CI installs it,
# fails on warnings, and uploads the rendered HTML as an artifact.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
		dune build @doc; \
		echo "docs: _build/default/_doc/_html/index.html"; \
	else \
		echo "odoc not installed; skipping doc build"; \
	fi

# Dead-link and dead-anchor lint over the prose (fails on any).
lint-md:
	dune exec tools/mdlint.exe -- $(MD_FILES)

check: build test lint-md fmt

# Hot-path microbenchmarks (DESIGN.md §9, §13-14): rewrites
# BENCH_hotpath.json, preserving its before/after baseline fields when
# present.  Benchmarks build with --profile release: dune's dev profile
# compiles .mli interfaces with -opaque, which blocks cross-module
# inlining into the accessor-heavy hot paths (tests still run dev).
bench:
	dune exec --profile release bench/microbench.exe -- --before BENCH_hotpath.json --out BENCH_hotpath.json

# Re-measure the kernels and fail if any regressed more than 15%
# against the committed BENCH_hotpath.json (the CI microbench gate;
# regressed kernels are re-measured before the verdict to shed
# scheduling noise).  Same release profile as `make bench` — the
# committed baseline and the gate must measure the same build.
bench-check:
	dune exec --profile release bench/microbench.exe -- --check BENCH_hotpath.json --tolerance 0.15 --retry 2

# Operf-micro style latency table over the allocator entry points.
micro:
	dune exec bench/main.exe -- micro

# Reduced figure grid on 2 worker domains, streaming one JSONL record
# per trial plus a Chrome trace of every trial: the CI perf-trajectory
# artifacts.  The trace is -j-independent (virtual timestamps).  The
# wear-leveling ablation and the fleet figure stream to their own
# derived sinks (results-wearlevel.jsonl / results-fleet.jsonl).
figures-quick:
	dune exec bench/main.exe -- figures-quick -j 2 --verify --out results.jsonl --trace trace.json

# The fleet-serving tail-latency figure alone, one JSONL record per
# device shard to results-fleet.jsonl (`figures-quick` also emits this
# file as part of the full grid).
fleet-quick:
	dune exec bench/main.exe -- fleet -j 2 --out results-fleet.jsonl

# Wall-clock of the reduced grid at -j 1 vs -j max (measures, not
# asserts, the parallelism win).
speedup:
	dune exec bench/main.exe -- speedup

quickstart:
	dune exec examples/quickstart.exe

clean:
	dune clean
