# Development entry points.  `make check` is the tier-1 gate: build +
# full test suite, plus a formatting check when ocamlformat is
# available (the check is skipped, not failed, on machines without it).

.PHONY: all build test check fmt bench figures-quick speedup quickstart clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

check: build test fmt

bench:
	dune exec bench/main.exe

# Reduced figure grid on 2 worker domains, streaming one JSONL record
# per trial: the CI perf-trajectory artifact.
figures-quick:
	dune exec bench/main.exe -- figures-quick -j 2 --out results.jsonl

# Wall-clock of the reduced grid at -j 1 vs -j max (measures, not
# asserts, the parallelism win).
speedup:
	dune exec bench/main.exe -- speedup

quickstart:
	dune exec examples/quickstart.exe

clean:
	dune clean
