(* Tests for the Immix collector family through the Vm facade: bump
   allocation, hole skipping, collection, recycling, sticky nursery
   behaviour, evacuation, and the post-GC heap invariants. *)

module Cfg = Holes.Config
module Vm = Holes.Vm
module Metrics = Holes.Metrics
module OT = Holes_heap.Object_table

let check = Alcotest.check

let mk ?(cfg = { Cfg.default with Cfg.collector = Cfg.Immix }) ?(heap = 1 lsl 20) () =
  Vm.create ~cfg ~min_heap_bytes:heap ()

let assert_invariants vm =
  Vm.collect vm ~full:true;
  match Vm.check_invariants vm with Ok () -> () | Error m -> Alcotest.fail m

let test_alloc_returns_distinct_objects () =
  let vm = mk () in
  let a = Vm.alloc vm ~size:64 () in
  let b = Vm.alloc vm ~size:64 () in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  let oa = OT.addr (Vm.objects vm) a and ob = OT.addr (Vm.objects vm) b in
  Alcotest.(check bool) "non-overlapping" true (ob >= oa + 64 || oa >= ob + 64)

let test_bump_is_contiguous () =
  let vm = mk () in
  let a = Vm.alloc vm ~size:64 () in
  let b = Vm.alloc vm ~size:64 () in
  let oa = OT.addr (Vm.objects vm) a and ob = OT.addr (Vm.objects vm) b in
  check Alcotest.int "bump pointer advances by size" (oa + 64) ob

let test_gc_reclaims_dead () =
  let vm = mk () in
  let ids = List.init 1000 (fun _ -> Vm.alloc vm ~size:128 ()) in
  List.iter (Vm.kill vm) ids;
  Vm.collect vm ~full:true;
  check Alcotest.int "nothing live" 0 (OT.live_count (Vm.objects vm));
  assert_invariants vm

let test_gc_preserves_live () =
  let vm = mk () in
  let keep = List.init 50 (fun _ -> Vm.alloc vm ~size:64 ()) in
  let dead = List.init 50 (fun _ -> Vm.alloc vm ~size:64 ()) in
  List.iter (Vm.kill vm) dead;
  Vm.collect vm ~full:true;
  List.iter
    (fun id -> Alcotest.(check bool) "survivor alive" true (OT.is_alive (Vm.objects vm) id))
    keep;
  check Alcotest.int "live count" 50 (OT.live_count (Vm.objects vm));
  assert_invariants vm

let test_heap_fills_and_collects () =
  let vm = mk ~heap:(1 lsl 19) () in
  (* allocate 4x the heap with everything dying promptly: must trigger
     collection rather than OOM *)
  let prev = ref None in
  for _ = 1 to (4 * (1 lsl 19)) / 128 do
    (match !prev with Some p -> Vm.kill vm p | None -> ());
    prev := Some (Vm.alloc vm ~size:128 ())
  done;
  Alcotest.(check bool) "collected at least once" true ((Vm.metrics vm).Metrics.full_gcs >= 1)

let test_oom_when_live_exceeds_heap () =
  let vm = mk ~heap:(1 lsl 18) () in
  Alcotest.check_raises "OOM raised" Vm.Out_of_memory (fun () ->
      (* keep everything alive: 4x heap of live data cannot fit *)
      for _ = 1 to (4 * (1 lsl 18)) / 128 do
        ignore (Vm.alloc vm ~size:128 ())
      done);
  Alcotest.(check bool) "flagged" true (Vm.metrics vm).Metrics.out_of_memory

let test_medium_overflow_allocation () =
  let vm = mk () in
  (* fill the current bump run almost to the block boundary, then ask for
     a medium: it cannot fit the remaining run and must take the overflow
     path *)
  for _ = 1 to 510 do
    ignore (Vm.alloc vm ~size:64 ())
  done;
  ignore (Vm.alloc vm ~size:2048 ());
  Alcotest.(check bool) "overflow path used" true ((Vm.metrics vm).Metrics.overflow_allocs >= 1);
  assert_invariants vm

let test_los_allocation_simple () =
  let vm = mk () in
  let big = Vm.alloc vm ~size:100_000 () in
  Alcotest.(check bool) "LOS object" true (OT.is_los (Vm.objects vm) big);
  check Alcotest.int "LOS pages = ceil(size/4096)" 25 (Vm.metrics vm).Metrics.los_pages;
  Vm.kill vm big;
  Vm.collect vm ~full:true;
  (* pages must be reusable: allocate again without growing the heap *)
  let big2 = Vm.alloc vm ~size:100_000 () in
  Alcotest.(check bool) "re-allocated" true (OT.is_alive (Vm.objects vm) big2)

let test_block_recycling () =
  let vm = mk ~heap:(1 lsl 19) () in
  (* fill some blocks, kill half the objects, collect, then allocate
     again — recycled blocks must be reused (blocks_assembled should not
     double) *)
  (* one 256B object per line so killing alternate objects frees lines *)
  let ids = Array.init 1000 (fun _ -> Vm.alloc vm ~size:256 ()) in
  Array.iteri (fun i id -> if i mod 2 = 0 then Vm.kill vm id) ids;
  Vm.collect vm ~full:true;
  let assembled_before = (Vm.metrics vm).Metrics.blocks_assembled in
  for _ = 1 to 400 do
    ignore (Vm.alloc vm ~size:256 ())
  done;
  let assembled_after = (Vm.metrics vm).Metrics.blocks_assembled in
  Alcotest.(check bool) "mostly recycled, few new blocks" true
    (assembled_after - assembled_before <= 2);
  Alcotest.(check bool) "holes skipped in recycled blocks" true
    ((Vm.metrics vm).Metrics.hole_skips > 0)

(* ------------------------- Sticky Immix ------------------------- *)

let mk_sticky ?(heap = 1 lsl 20) () =
  Vm.create ~cfg:{ Cfg.default with Cfg.collector = Cfg.Sticky_immix } ~min_heap_bytes:heap ()

let test_sticky_nursery_collection () =
  let vm = mk_sticky ~heap:(1 lsl 19) () in
  let prev = ref None in
  for _ = 1 to (4 * (1 lsl 19)) / 128 do
    (match !prev with Some p -> Vm.kill vm p | None -> ());
    prev := Some (Vm.alloc vm ~size:128 ())
  done;
  let m = Vm.metrics vm in
  Alcotest.(check bool) "nursery collections happened" true (m.Metrics.nursery_gcs >= 1);
  Alcotest.(check bool) "nursery cheaper than full"
    true
    (match (m.Metrics.nursery_pauses_ns, m.Metrics.pauses_ns) with
    | n :: _, f :: _ -> n <= f
    | _ :: _, [] -> true
    | _ -> false)

let test_sticky_survivors_become_old () =
  let vm = mk_sticky () in
  let id = Vm.alloc vm ~size:64 () in
  Alcotest.(check bool) "nursery at birth" true (OT.is_nursery (Vm.objects vm) id);
  Vm.collect vm ~full:false;
  Alcotest.(check bool) "old after nursery GC" false (OT.is_nursery (Vm.objects vm) id);
  Alcotest.(check bool) "still alive" true (OT.is_alive (Vm.objects vm) id)

let test_sticky_write_barrier_remset () =
  let vm = mk_sticky () in
  let old_obj = Vm.alloc vm ~size:64 () in
  Vm.collect vm ~full:false (* old_obj leaves the nursery *);
  let young = Vm.alloc vm ~size:64 () in
  Vm.write_ref vm ~src:old_obj ~dst:young;
  (* the barrier must have recorded the old->young edge; a nursery GC
     processes and clears it without touching old objects *)
  Vm.collect vm ~full:false;
  Alcotest.(check bool) "old survives nursery GC" true (OT.is_alive (Vm.objects vm) old_obj);
  Alcotest.(check bool) "young survives via liveness" true (OT.is_alive (Vm.objects vm) young)

let test_sticky_nursery_copy_compacts () =
  let vm = mk_sticky ~heap:(1 lsl 19) () in
  (* allocate interleaved live/dead, then nursery-collect: survivors are
     opportunistically copied, producing bytes_copied *)
  let ids = Array.init 512 (fun _ -> Vm.alloc vm ~size:128 ()) in
  Array.iteri (fun i id -> if i mod 2 = 0 then Vm.kill vm id) ids;
  Vm.collect vm ~full:false;
  Alcotest.(check bool) "survivors copied" true ((Vm.metrics vm).Metrics.bytes_copied > 0)

let test_pinned_objects_never_move () =
  let vm = mk_sticky ~heap:(1 lsl 19) () in
  let pinned = Vm.alloc vm ~pinned:true ~size:128 () in
  let addr0 = OT.addr (Vm.objects vm) pinned in
  let ids = Array.init 512 (fun _ -> Vm.alloc vm ~size:128 ()) in
  Array.iteri (fun i id -> if i mod 2 = 0 then Vm.kill vm id) ids;
  Vm.collect vm ~full:false;
  Vm.collect vm ~full:true;
  check Alcotest.int "pinned address unchanged" addr0 (OT.addr (Vm.objects vm) pinned)

let test_defrag_evacuates_sparse_blocks () =
  let cfg = { Cfg.default with Cfg.collector = Cfg.Immix; defrag = true; defrag_occupancy = 0.5 } in
  let vm = Vm.create ~cfg ~min_heap_bytes:(1 lsl 19) () in
  (* sparse population: 1 live object per ~10 dead *)
  let ids = Array.init 2000 (fun _ -> Vm.alloc vm ~size:128 ()) in
  Array.iteri (fun i id -> if i mod 10 <> 0 then Vm.kill vm id) ids;
  (* defragmentation is on-demand (as in Immix); request it explicitly *)
  Vm.request_defrag vm;
  Vm.collect vm ~full:true;
  Alcotest.(check bool) "objects evacuated" true ((Vm.metrics vm).Metrics.objects_evacuated > 0);
  (match Vm.check_invariants vm with Ok () -> () | Error m -> Alcotest.fail m)

let test_invariants_random_workload () =
  let vm = mk_sticky ~heap:(1 lsl 19) () in
  let rng = Holes_stdx.Xrng.of_seed 1234 in
  let live = ref [] and nlive = ref 0 in
  for i = 1 to 5000 do
    let size = 16 + Holes_stdx.Xrng.int rng 1500 in
    let id = Vm.alloc vm ~size () in
    live := id :: !live;
    incr nlive;
    (* cap the live set well below the heap *)
    while !nlive > 120 do
      match List.rev !live with
      | oldest :: _ ->
          Vm.kill vm oldest;
          live := List.filter (fun x -> x <> oldest) !live;
          decr nlive
      | [] -> nlive := 0
    done;
    if i mod 1000 = 0 then assert_invariants vm
  done;
  assert_invariants vm

let suite =
  [
    ("alloc distinct objects", `Quick, test_alloc_returns_distinct_objects);
    ("bump contiguity", `Quick, test_bump_is_contiguous);
    ("gc reclaims dead", `Quick, test_gc_reclaims_dead);
    ("gc preserves live", `Quick, test_gc_preserves_live);
    ("heap fills and collects", `Quick, test_heap_fills_and_collects);
    ("OOM when live exceeds heap", `Quick, test_oom_when_live_exceeds_heap);
    ("medium overflow allocation", `Quick, test_medium_overflow_allocation);
    ("LOS allocation + reuse", `Quick, test_los_allocation_simple);
    ("block recycling", `Quick, test_block_recycling);
    ("sticky nursery collection", `Quick, test_sticky_nursery_collection);
    ("sticky survivors become old", `Quick, test_sticky_survivors_become_old);
    ("sticky write barrier remset", `Quick, test_sticky_write_barrier_remset);
    ("sticky nursery copy compacts", `Quick, test_sticky_nursery_copy_compacts);
    ("pinned objects never move", `Quick, test_pinned_objects_never_move);
    ("defrag evacuates sparse blocks", `Quick, test_defrag_evacuates_sparse_blocks);
    ("invariants under random workload", `Quick, test_invariants_random_workload);
  ]
