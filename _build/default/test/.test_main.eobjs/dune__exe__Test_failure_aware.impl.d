test/test_failure_aware.ml: Alcotest Array Holes Holes_heap Holes_osal Holes_pcm Holes_stdx Holes_workload List Queue
