test/test_immix.ml: Alcotest Array Holes Holes_heap Holes_stdx List
