test/test_workload.ml: Alcotest Holes Holes_heap Holes_stdx Holes_workload List Printf
