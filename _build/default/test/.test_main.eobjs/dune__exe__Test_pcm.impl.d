test/test_pcm.ml: Alcotest Bytes Device Failure_buffer Failure_map Fmt Fun Gen Geometry Hashtbl Holes_pcm Holes_stdx List Option Printf QCheck QCheck_alcotest Redirect Wear Wear_level
