test/test_heap.ml: Alcotest Array Block Fun Holes_heap Holes_osal Holes_pcm Holes_stdx List Object_table Option Page_stock Remset Units
