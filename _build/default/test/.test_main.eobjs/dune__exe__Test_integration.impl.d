test/test_integration.ml: Alcotest Bytes Holes Holes_heap Holes_osal Holes_pcm Holes_stdx Holes_workload List Printf Queue
