test/test_mark_sweep.ml: Alcotest Holes Holes_heap List Printf
