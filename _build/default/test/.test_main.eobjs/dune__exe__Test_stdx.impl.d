test/test_stdx.ml: Alcotest Array Bitset Dist Fun Gen Heapq Holes_stdx Intvec List QCheck QCheck_alcotest Rle Stats String Table Xrng
