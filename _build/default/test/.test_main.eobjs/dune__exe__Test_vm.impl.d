test/test_vm.ml: Alcotest Format Holes Holes_heap Holes_stdx Holes_workload Option String
