test/test_exp.ml: Alcotest Holes Holes_exp Holes_pcm Holes_stdx Holes_workload String
