test/test_osal.ml: Accounting Alcotest Bytes Failure_table Holes_osal Holes_pcm Holes_stdx Interrupts List Option Page Pools Result Swap Vmm
