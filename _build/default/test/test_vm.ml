(* Tests for the Vm facade: configuration validation, heap sizing,
   metrics plumbing and the cost model. *)

module Cfg = Holes.Config
module Vm = Holes.Vm
module Cost = Holes.Cost
module Metrics = Holes.Metrics

let check = Alcotest.check

let test_config_validation () =
  (match Cfg.validate Cfg.default with Ok () -> () | Error m -> Alcotest.fail m);
  (match Cfg.validate { Cfg.default with Cfg.line_size = 100 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected invalid line size");
  (match Cfg.validate { Cfg.default with Cfg.failure_rate = 0.99 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected invalid rate");
  match Cfg.validate { Cfg.default with Cfg.heap_factor = 0.5 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected invalid heap factor"

let test_config_names () =
  check Alcotest.string "baseline name" "S-IX-L256" (Cfg.name Cfg.default);
  let pcm =
    { Cfg.default with Cfg.failure_rate = 0.25; failure_dist = Cfg.Hw_cluster 2 }
  in
  check Alcotest.string "pcm name" "S-IX-PCM-L256-2CL-25%" (Cfg.name pcm);
  check Alcotest.string "collector names" "MS" (Cfg.collector_name Cfg.Mark_sweep)

let test_heap_sizing () =
  let vm = Vm.create ~cfg:{ Cfg.default with Cfg.heap_factor = 2.0 } ~min_heap_bytes:(1 lsl 20) () in
  let pages = Holes_heap.Page_stock.npages (Vm.stock vm) in
  check Alcotest.int "2x heap in pages" (2 * 256) pages

let test_cost_model_accumulates () =
  let c = Cost.create () in
  Cost.charge c 10.0;
  Cost.begin_gc c;
  Cost.charge c 5.0;
  let pause = Cost.end_gc c in
  check (Alcotest.float 1e-9) "pause" 5.0 pause;
  check (Alcotest.float 1e-9) "mutator" 10.0 (Cost.mutator_ns c);
  check (Alcotest.float 1e-9) "gc" 5.0 (Cost.gc_ns c);
  check (Alcotest.float 1e-9) "total" 15.0 (Cost.total_ns c)

let test_metrics_wiring () =
  let vm = Vm.create ~min_heap_bytes:(1 lsl 20) () in
  ignore (Vm.alloc vm ~size:64 ());
  ignore (Vm.alloc vm ~size:10_000 ());
  let m = Vm.metrics vm in
  check Alcotest.int "objects" 2 m.Metrics.objects_allocated;
  Alcotest.(check bool) "bytes counted" true (m.Metrics.bytes_allocated >= 10_064);
  check Alcotest.int "los objects" 1 m.Metrics.los_objects;
  Alcotest.(check bool) "time advanced" true (Vm.elapsed_ms vm > 0.0)

let test_pause_recording () =
  let vm = Vm.create ~min_heap_bytes:(1 lsl 20) () in
  for _ = 1 to 100 do
    ignore (Vm.alloc vm ~size:64 ())
  done;
  Vm.collect vm ~full:true;
  let m = Vm.metrics vm in
  check Alcotest.int "one full gc" 1 m.Metrics.full_gcs;
  (match Metrics.mean_full_pause_ms m with
  | Some p -> Alcotest.(check bool) "pause positive" true (p > 0.0)
  | None -> Alcotest.fail "expected pause");
  match Metrics.max_full_pause_ms m with
  | Some p -> Alcotest.(check bool) "max >= mean" true (p >= Option.get (Metrics.mean_full_pause_ms m))
  | None -> Alcotest.fail "expected max pause"

let test_deterministic_runs () =
  let run () =
    let profile = Holes_workload.Profile.scaled Holes_workload.Dacapo.bloat 0.05 in
    let vm = Vm.create ~min_heap_bytes:(Holes_workload.Profile.min_heap profile) () in
    let res = Holes_workload.Generator.run ~rng:(Holes_stdx.Xrng.of_seed 3) vm profile in
    res.Holes_workload.Generator.elapsed_ms
  in
  check (Alcotest.float 1e-9) "bit-identical reruns" (run ()) (run ())

let test_pp_summary_renders () =
  let vm = Vm.create ~min_heap_bytes:(1 lsl 20) () in
  ignore (Vm.alloc vm ~size:64 ());
  let s = Format.asprintf "%a" Vm.pp_summary vm in
  Alcotest.(check bool) "summary non-empty" true (String.length s > 40)

let suite =
  [
    ("config validation", `Quick, test_config_validation);
    ("config names", `Quick, test_config_names);
    ("heap sizing", `Quick, test_heap_sizing);
    ("cost model accumulates", `Quick, test_cost_model_accumulates);
    ("metrics wiring", `Quick, test_metrics_wiring);
    ("pause recording", `Quick, test_pause_recording);
    ("deterministic runs", `Quick, test_deterministic_runs);
    ("pp_summary renders", `Quick, test_pp_summary_renders);
  ]
