(* Tests for the failure-aware extensions (paper Sec. 4.2): static
   failure intake, false-failure widening, hole skipping, overflow
   re-search, perfect-block fallback, dynamic failure evacuation,
   compensation, and the paper's qualitative claims. *)

module Cfg = Holes.Config
module Vm = Holes.Vm
module Metrics = Holes.Metrics
module OT = Holes_heap.Object_table
module Bitset = Holes_stdx.Bitset

let check = Alcotest.check

let mk ?(rate = 0.25) ?(dist = Cfg.Uniform) ?(line = 256) ?(heap = 1 lsl 20) ?device_map () =
  let cfg =
    { Cfg.default with Cfg.failure_rate = rate; failure_dist = dist; line_size = line }
  in
  Vm.create ~cfg ?device_map ~min_heap_bytes:heap ()

let run_churn ?(sizes = [| 64; 128; 512; 2048 |]) ?(n = 5000) vm =
  let rng = Holes_stdx.Xrng.of_seed 9 in
  let prev = ref [] in
  for _ = 1 to n do
    let size = sizes.(Holes_stdx.Xrng.int rng (Array.length sizes)) in
    let id = Vm.alloc vm ~size () in
    prev := id :: !prev;
    if List.length !prev > 50 then begin
      match List.rev !prev with
      | oldest :: _ ->
          Vm.kill vm oldest;
          prev := List.filter (fun x -> x <> oldest) !prev
      | [] -> ()
    end
  done

let assert_no_live_on_failed vm =
  Vm.collect vm ~full:true;
  match Vm.check_invariants vm with Ok () -> () | Error m -> Alcotest.fail m

let test_never_allocates_on_failed_lines () =
  let vm = mk ~rate:0.3 () in
  run_churn vm;
  (* the invariant checker rejects any live object overlapping a failed
     line *)
  assert_no_live_on_failed vm

let test_never_allocates_on_failed_lines_64 () =
  let vm = mk ~rate:0.3 ~line:64 () in
  run_churn vm;
  assert_no_live_on_failed vm

let test_zero_failures_zero_overhead () =
  (* the failure-aware collector with an all-clear failure map must
     behave identically to the baseline (paper: "no measurable
     overhead") — same cost model events, same modeled time *)
  let profile = Holes_workload.Profile.scaled Holes_workload.Dacapo.pmd 0.1 in
  let heap = Holes_workload.Profile.min_heap profile in
  let run cfg =
    let vm = Vm.create ~cfg ~min_heap_bytes:heap () in
    let res = Holes_workload.Generator.run ~rng:(Holes_stdx.Xrng.of_seed 5) vm profile in
    res.Holes_workload.Generator.elapsed_ms
  in
  let base = run Cfg.default in
  (* identical config but routed through the failure-map machinery with
     an explicitly empty map *)
  let empty_map ~npages = Bitset.create (npages * Holes_pcm.Geometry.lines_per_page) in
  let vm2 = Vm.create ~cfg:Cfg.default ~device_map:empty_map ~min_heap_bytes:heap () in
  let res2 = Holes_workload.Generator.run ~rng:(Holes_stdx.Xrng.of_seed 5) vm2 profile in
  check (Alcotest.float 1e-6) "identical modeled time" base
    res2.Holes_workload.Generator.elapsed_ms

let test_failures_add_overhead () =
  let profile = Holes_workload.Profile.scaled Holes_workload.Dacapo.pmd 0.1 in
  let heap = Holes_workload.Profile.min_heap profile in
  let run cfg =
    let vm = Vm.create ~cfg ~min_heap_bytes:heap () in
    let res = Holes_workload.Generator.run ~rng:(Holes_stdx.Xrng.of_seed 5) vm profile in
    (res.Holes_workload.Generator.completed, res.Holes_workload.Generator.elapsed_ms)
  in
  let _, base = run Cfg.default in
  let ok10, t10 = run { Cfg.default with Cfg.failure_rate = 0.10 } in
  Alcotest.(check bool) "10% uniform completes" true ok10;
  Alcotest.(check bool) "failures cost time" true (t10 > base)

let test_clustering_beats_uniform () =
  let profile = Holes_workload.Profile.scaled Holes_workload.Dacapo.pmd 0.1 in
  let heap = Holes_workload.Profile.min_heap profile in
  let run cfg =
    let vm = Vm.create ~cfg ~min_heap_bytes:heap () in
    let res = Holes_workload.Generator.run ~rng:(Holes_stdx.Xrng.of_seed 5) vm profile in
    res.Holes_workload.Generator.elapsed_ms
  in
  let uniform = run { Cfg.default with Cfg.failure_rate = 0.10 } in
  let clustered =
    run { Cfg.default with Cfg.failure_rate = 0.10; failure_dist = Cfg.Hw_cluster 2 }
  in
  Alcotest.(check bool) "2CL faster than uniform at 10%" true (clustered < uniform)

let test_compensation_grows_heap () =
  let vm_nc =
    Vm.create
      ~cfg:{ Cfg.default with Cfg.failure_rate = 0.25; compensate = false }
      ~min_heap_bytes:(1 lsl 20) ()
  in
  let vm_c =
    Vm.create ~cfg:{ Cfg.default with Cfg.failure_rate = 0.25 } ~min_heap_bytes:(1 lsl 20) ()
  in
  let pages vm = Holes_heap.Page_stock.npages (Vm.stock vm) in
  (* h/(1-f): 25% failures -> 4/3 more pages *)
  Alcotest.(check bool) "compensated heap is ~4/3 larger" true
    (float_of_int (pages vm_c) /. float_of_int (pages vm_nc) > 1.30)

let test_overflow_search_and_perfect_fallback () =
  (* at a high uniform rate with 256B lines, mediums cannot fit holes:
     the FA path must search the overflow block and then fall back to
     perfect blocks rather than failing *)
  let vm = mk ~rate:0.4 ~heap:(1 lsl 20) () in
  for _ = 1 to 200 do
    let id = Vm.alloc vm ~size:4000 () in
    Vm.kill vm id
  done;
  let m = Vm.metrics vm in
  Alcotest.(check bool) "overflow searches happened" true (m.Metrics.overflow_searches > 0);
  Alcotest.(check bool) "perfect fallbacks happened" true (m.Metrics.perfect_block_fallbacks > 0)

let test_false_failures_waste_memory () =
  (* identical 64B failure map: L256 must lose more usable memory than
     L64 (the Sec. 6.2 false-failure effect), measured by OOM behaviour
     at a heap size only L64 survives *)
  let rate = 0.35 in
  let try_line line =
    let cfg =
      { Cfg.default with Cfg.failure_rate = rate; line_size = line; compensate = true }
    in
    let vm = Vm.create ~cfg ~min_heap_bytes:(1 lsl 19) () in
    try
      (* live set ~60% of nominal heap *)
      for _ = 1 to 4900 do
        ignore (Vm.alloc vm ~size:64 ())
      done;
      true
    with Vm.Out_of_memory -> false
  in
  Alcotest.(check bool) "L64 completes" true (try_line 64);
  Alcotest.(check bool) "L256 OOMs from false failures" false (try_line 256)

let test_dynamic_failure_free_line () =
  let vm = mk ~rate:0.0 () in
  let id = Vm.alloc vm ~size:64 () in
  let addr = OT.addr (Vm.objects vm) id in
  (* fail a free line in the same block, far from the object and the
     bump cursor: no evacuation needed *)
  Vm.dynamic_failure_at vm ~addr:(addr + 16384);
  check Alcotest.int "no full GC for free-line failure" 0 (Vm.metrics vm).Metrics.full_gcs;
  check Alcotest.int "failure recorded" 1 (Vm.metrics vm).Metrics.dynamic_failures;
  assert_no_live_on_failed vm

let test_dynamic_failure_evacuates_object () =
  let vm = mk ~rate:0.0 () in
  let id = Vm.alloc vm ~size:64 () in
  let addr = OT.addr (Vm.objects vm) id in
  Vm.dynamic_failure vm ~id;
  Alcotest.(check bool) "full (copying) collection ran" true
    ((Vm.metrics vm).Metrics.full_gcs >= 1);
  Alcotest.(check bool) "object still alive" true (OT.is_alive (Vm.objects vm) id);
  Alcotest.(check bool) "object moved off the failed line" true
    (OT.addr (Vm.objects vm) id <> addr);
  assert_no_live_on_failed vm

let test_dynamic_failure_pinned_masked () =
  let vm = mk ~rate:0.0 () in
  let id = Vm.alloc vm ~pinned:true ~size:64 () in
  let addr = OT.addr (Vm.objects vm) id in
  Vm.dynamic_failure vm ~id;
  (* pinned: the OS remaps the page instead; the object must not move *)
  check Alcotest.int "pinned object did not move" addr (OT.addr (Vm.objects vm) id);
  Alcotest.(check bool) "page copy charged" true ((Vm.metrics vm).Metrics.bytes_copied > 0);
  assert_no_live_on_failed vm

let test_dynamic_failure_los_relocates () =
  let vm = mk ~rate:0.0 () in
  let id = Vm.alloc vm ~size:50_000 () in
  let addr = OT.addr (Vm.objects vm) id in
  Vm.dynamic_failure vm ~id;
  Alcotest.(check bool) "LOS object relocated" true (OT.addr (Vm.objects vm) id <> addr);
  Alcotest.(check bool) "still alive" true (OT.is_alive (Vm.objects vm) id)

let test_dynamic_failures_accumulate () =
  let vm = mk ~rate:0.0 ~heap:(1 lsl 20) () in
  let rng = Holes_stdx.Xrng.of_seed 31 in
  let live = ref [] in
  for i = 1 to 2000 do
    let id = Vm.alloc vm ~size:(32 + Holes_stdx.Xrng.int rng 400) () in
    live := id :: !live;
    if List.length !live > 40 then begin
      match !live with
      | x :: rest ->
          Vm.kill vm x;
          live := rest
      | [] -> ()
    end;
    (* inject a dynamic failure under a random live object every 200
       allocations *)
    if i mod 200 = 0 then begin
      match !live with
      | x :: _ when OT.is_alive (Vm.objects vm) x && not (OT.is_los (Vm.objects vm) x) ->
          Vm.dynamic_failure vm ~id:x
      | _ -> ()
    end
  done;
  Alcotest.(check bool) "several dynamic failures handled" true
    ((Vm.metrics vm).Metrics.dynamic_failures >= 5);
  assert_no_live_on_failed vm

let test_arraylets_avoid_perfect_pages () =
  (* Z-rays mode: large arrays split into arraylets in imperfect memory;
     no perfect pages or DRAM borrowing needed even at 25% uniform *)
  let run arraylets =
    let cfg =
      { Cfg.default with Cfg.failure_rate = 0.25; arraylets }
    in
    let vm = Vm.create ~cfg ~min_heap_bytes:(2 * 1024 * 1024) () in
    let rng = Holes_stdx.Xrng.of_seed 13 in
    let live = Queue.create () in
    for _ = 1 to 800 do
      let size = 10_000 + Holes_stdx.Xrng.int rng 40_000 in
      let id = Vm.alloc vm ~size () in
      Queue.push id live;
      if Queue.length live > 12 then Vm.kill vm (Queue.pop live)
    done;
    let acct = Holes_heap.Page_stock.accounting (Vm.stock vm) in
    (Holes_osal.Accounting.total_borrowed acct, Vm.metrics vm)
  in
  let borrowed_los, m_los = run false in
  let borrowed_zray, m_zray = run true in
  Alcotest.(check bool) "LOS borrows DRAM at 25% uniform" true (borrowed_los > 50);
  Alcotest.(check bool) "Z-rays borrow (almost) nothing" true
    (borrowed_zray < borrowed_los / 10);
  Alcotest.(check bool) "arrays were split" true (m_zray.Metrics.arraylet_arrays >= 800);
  check Alcotest.int "LOS unused in Z-rays mode" 0 m_zray.Metrics.los_objects;
  Alcotest.(check bool) "LOS used otherwise" true (m_los.Metrics.los_objects > 0)

let test_arraylets_spine_death_frees_pieces () =
  let cfg = { Cfg.default with Cfg.arraylets = true } in
  let vm = Vm.create ~cfg ~min_heap_bytes:(1 lsl 20) () in
  let id = Vm.alloc vm ~size:50_000 () in
  let live_before = OT.live_bytes (Vm.objects vm) in
  Alcotest.(check bool) "pieces + spine live" true (live_before >= 50_000);
  Vm.kill vm id;
  Vm.collect vm ~full:true;
  check Alcotest.int "everything reclaimed" 0 (OT.live_count (Vm.objects vm));
  (* heap reusable afterwards *)
  let id2 = Vm.alloc vm ~size:50_000 () in
  Alcotest.(check bool) "reallocated" true (OT.is_alive (Vm.objects vm) id2)

let test_hw_cluster_map_gives_perfect_pages () =
  (* with 2CL at 25%, the stock must include a large perfect pool *)
  let vm = mk ~rate:0.25 ~dist:(Cfg.Hw_cluster 2) () in
  let stock = Vm.stock vm in
  let perfect = Holes_heap.Page_stock.free_perfect_count stock in
  let total = Holes_heap.Page_stock.npages stock in
  Alcotest.(check bool) "~half the pages perfect" true
    (float_of_int perfect /. float_of_int total > 0.40)

let suite =
  [
    ("never allocates on failed lines (L256)", `Quick, test_never_allocates_on_failed_lines);
    ("never allocates on failed lines (L64)", `Quick, test_never_allocates_on_failed_lines_64);
    ("zero failures, zero overhead", `Quick, test_zero_failures_zero_overhead);
    ("failures add overhead", `Quick, test_failures_add_overhead);
    ("clustering beats uniform", `Quick, test_clustering_beats_uniform);
    ("compensation grows heap", `Quick, test_compensation_grows_heap);
    ("overflow search + perfect fallback", `Quick, test_overflow_search_and_perfect_fallback);
    ("false failures waste memory", `Quick, test_false_failures_waste_memory);
    ("dynamic failure on free line", `Quick, test_dynamic_failure_free_line);
    ("dynamic failure evacuates object", `Quick, test_dynamic_failure_evacuates_object);
    ("dynamic failure pinned masked", `Quick, test_dynamic_failure_pinned_masked);
    ("dynamic failure LOS relocates", `Quick, test_dynamic_failure_los_relocates);
    ("dynamic failures accumulate", `Quick, test_dynamic_failures_accumulate);
    ("2CL map yields perfect pages", `Quick, test_hw_cluster_map_gives_perfect_pages);
    ("arraylets avoid perfect pages", `Quick, test_arraylets_avoid_perfect_pages);
    ("arraylet spine death frees pieces", `Quick, test_arraylets_spine_death_frees_pieces);
  ]
