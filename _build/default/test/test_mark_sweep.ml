(* Tests for the Mark-Sweep / Sticky Mark-Sweep baselines. *)

module Cfg = Holes.Config
module Vm = Holes.Vm
module Metrics = Holes.Metrics
module OT = Holes_heap.Object_table
module MS = Holes.Mark_sweep

let check = Alcotest.check

let mk ?(collector = Cfg.Mark_sweep) ?(heap = 1 lsl 20) () =
  Vm.create ~cfg:{ Cfg.default with Cfg.collector } ~min_heap_bytes:heap ()

let test_size_classes () =
  check (Alcotest.option Alcotest.int) "16B -> class 0" (Some 0) (MS.class_of_size 16);
  check (Alcotest.option Alcotest.int) "17B -> class 1" (Some 1) (MS.class_of_size 17);
  check (Alcotest.option Alcotest.int) "8KB -> last" (Some 18) (MS.class_of_size 8192);
  check (Alcotest.option Alcotest.int) "LOS above classes" None (MS.class_of_size 8193)

let test_rejects_failures () =
  Alcotest.check_raises "free-list baselines need perfect memory"
    (Invalid_argument "Mark_sweep.create: the free-list baselines run only without failures")
    (fun () ->
      ignore
        (Vm.create
           ~cfg:{ Cfg.default with Cfg.collector = Cfg.Mark_sweep; failure_rate = 0.1 }
           ~min_heap_bytes:(1 lsl 20) ()))

let test_alloc_and_collect () =
  let vm = mk () in
  let keep = List.init 100 (fun _ -> Vm.alloc vm ~size:48 ()) in
  let dead = List.init 100 (fun _ -> Vm.alloc vm ~size:48 ()) in
  List.iter (Vm.kill vm) dead;
  Vm.collect vm ~full:true;
  List.iter
    (fun id -> Alcotest.(check bool) "survivor" true (OT.is_alive (Vm.objects vm) id))
    keep;
  check Alcotest.int "live count" 100 (OT.live_count (Vm.objects vm))

let test_cells_recycled () =
  let vm = mk ~heap:(1 lsl 19) () in
  (* dead cells must be recycled so the heap never grows past budget *)
  let prev = ref None in
  for _ = 1 to 20_000 do
    (match !prev with Some p -> Vm.kill vm p | None -> ());
    prev := Some (Vm.alloc vm ~size:100 ())
  done;
  Alcotest.(check bool) "collections bounded the heap" true
    ((Vm.metrics vm).Metrics.full_gcs >= 1)

let test_distinct_cells () =
  let vm = mk () in
  let a = Vm.alloc vm ~size:100 () in
  let b = Vm.alloc vm ~size:100 () in
  let oa = OT.addr (Vm.objects vm) a and ob = OT.addr (Vm.objects vm) b in
  Alcotest.(check bool) "cells do not overlap" true (abs (oa - ob) >= 128)

let test_mixed_size_classes () =
  let vm = mk () in
  let ids = List.map (fun s -> (s, Vm.alloc vm ~size:s ())) [ 16; 100; 1000; 4000; 8000 ] in
  Vm.collect vm ~full:true;
  List.iter
    (fun (s, id) ->
      Alcotest.(check bool)
        (Printf.sprintf "size %d survives" s)
        true
        (OT.is_alive (Vm.objects vm) id))
    ids

let test_los_via_ms () =
  let vm = mk () in
  let big = Vm.alloc vm ~size:50_000 () in
  Alcotest.(check bool) "LOS object" true (OT.is_los (Vm.objects vm) big);
  Vm.kill vm big;
  Vm.collect vm ~full:true;
  let big2 = Vm.alloc vm ~size:50_000 () in
  Alcotest.(check bool) "LOS pages reused" true (OT.is_alive (Vm.objects vm) big2)

let test_sticky_ms_nursery () =
  let vm = mk ~collector:Cfg.Sticky_ms ~heap:(1 lsl 19) () in
  let prev = ref None in
  for _ = 1 to 20_000 do
    (match !prev with Some p -> Vm.kill vm p | None -> ());
    prev := Some (Vm.alloc vm ~size:100 ())
  done;
  let m = Vm.metrics vm in
  Alcotest.(check bool) "nursery collections" true (m.Metrics.nursery_gcs >= 1)

let test_sticky_ms_survivors () =
  let vm = mk ~collector:Cfg.Sticky_ms () in
  let id = Vm.alloc vm ~size:64 () in
  Vm.collect vm ~full:false;
  Alcotest.(check bool) "old after nursery" false (OT.is_nursery (Vm.objects vm) id);
  Alcotest.(check bool) "alive" true (OT.is_alive (Vm.objects vm) id)

let test_oom () =
  let vm = mk ~heap:(1 lsl 18) () in
  Alcotest.check_raises "OOM" Vm.Out_of_memory (fun () ->
      for _ = 1 to (4 * (1 lsl 18)) / 128 do
        ignore (Vm.alloc vm ~size:128 ())
      done)

let suite =
  [
    ("size classes", `Quick, test_size_classes);
    ("rejects failure configs", `Quick, test_rejects_failures);
    ("alloc and collect", `Quick, test_alloc_and_collect);
    ("cells recycled", `Quick, test_cells_recycled);
    ("distinct cells", `Quick, test_distinct_cells);
    ("mixed size classes", `Quick, test_mixed_size_classes);
    ("LOS via MS", `Quick, test_los_via_ms);
    ("sticky MS nursery", `Quick, test_sticky_ms_nursery);
    ("sticky MS survivors become old", `Quick, test_sticky_ms_survivors);
    ("MS OOM", `Quick, test_oom);
  ]
