(* Tests for the workload substrate: profiles, the generator's
   statistical targets, and trace record/replay. *)

module P = Holes_workload.Profile
module D = Holes_workload.Dacapo
module G = Holes_workload.Generator
module T = Holes_workload.Trace
module Cfg = Holes.Config
module Vm = Holes.Vm
module Metrics = Holes.Metrics

let check = Alcotest.check

let test_suite_composition () =
  check Alcotest.int "16 analysis benchmarks" 16 (List.length D.suite);
  check Alcotest.int "17 with buggy lusearch" 17 (List.length D.suite_with_buggy);
  Alcotest.(check bool) "buggy excluded from analysis suite" true
    (not (List.exists (fun p -> p.P.name = "lusearch") D.suite));
  Alcotest.(check bool) "find works" true (D.find "pmd" <> None);
  Alcotest.(check bool) "find unknown" true (D.find "nope" = None)

let test_buggy_lusearch_is_3x () =
  (* the paper: the lusearch bug causes an allocation rate "a factor of
     three higher than any other benchmark" — encoded as 3x volume *)
  check Alcotest.int "3x volume" (3 * D.lusearch_fix.P.volume) D.lusearch_buggy.P.volume

let test_scaling () =
  let p = P.scaled D.pmd 0.5 in
  check Alcotest.int "volume halved" (D.pmd.P.volume / 2) p.P.volume;
  check Alcotest.int "live halved" (D.pmd.P.live_target / 2) p.P.live_target;
  Alcotest.check_raises "bad scale" (Invalid_argument "Profile.scaled: scale must be positive")
    (fun () -> ignore (P.scaled D.pmd 0.0))

let test_min_heap_exceeds_live () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (p.P.name ^ " min heap > live")
        true
        (P.min_heap p > p.P.live_target + p.P.immortal))
    D.suite_with_buggy

let run_scaled ?(scale = 0.1) profile =
  let profile = P.scaled profile scale in
  let vm = Vm.create ~min_heap_bytes:(P.min_heap profile) () in
  (G.run ~rng:(Holes_stdx.Xrng.of_seed 1) vm profile, vm, profile)

let test_generator_reaches_volume () =
  let res, _, profile = run_scaled D.bloat in
  Alcotest.(check bool) "completed" true res.G.completed;
  Alcotest.(check bool) "allocated at least the volume" true
    (res.G.metrics.Metrics.bytes_allocated >= profile.P.volume)

let test_generator_live_near_target () =
  let res, vm, profile = run_scaled ~scale:0.2 D.eclipse in
  Alcotest.(check bool) "completed" true res.G.completed;
  let live = Holes_heap.Object_table.live_bytes (Vm.objects vm) in
  let target = profile.P.live_target + profile.P.immortal in
  (* steady-state live should be within a factor ~2.5 of the target *)
  Alcotest.(check bool)
    (Printf.sprintf "live %d within range of target %d" live target)
    true
    (live > target / 3 && live < target * 5 / 2)

let test_all_profiles_complete_at_2x () =
  List.iter
    (fun p ->
      let res, _, _ = run_scaled ~scale:0.08 p in
      Alcotest.(check bool) (p.P.name ^ " completes at 2x heap") true res.G.completed)
    D.suite_with_buggy

let test_all_profiles_complete_at_1_33x () =
  (* the smallest heap the Fig. 3 sweep uses *)
  List.iter
    (fun p ->
      let profile = P.scaled p 0.08 in
      let vm =
        Vm.create ~cfg:{ Cfg.default with Cfg.heap_factor = 1.33 }
          ~min_heap_bytes:(P.min_heap profile) ()
      in
      let res = G.run ~rng:(Holes_stdx.Xrng.of_seed 1) vm profile in
      Alcotest.(check bool) (p.P.name ^ " completes at 1.33x heap") true res.G.completed)
    D.suite

let test_xalan_uses_los_heavily () =
  let res, _, _ = run_scaled ~scale:0.2 D.xalan in
  let res2, _, _ = run_scaled ~scale:0.2 D.sunflow in
  Alcotest.(check bool) "xalan allocates many more LOS pages" true
    (res.G.metrics.Metrics.los_pages > 4 * res2.G.metrics.Metrics.los_pages)

let test_trace_record () =
  let profile = P.scaled D.luindex 0.05 in
  let tr = T.record ~seed:3 profile in
  Alcotest.(check bool) "events recorded" true (T.length tr > 100);
  Alcotest.(check bool) "covers volume" true (T.total_bytes tr >= profile.P.volume)

let test_trace_replay_deterministic () =
  let profile = P.scaled D.luindex 0.05 in
  let tr = T.record ~seed:3 profile in
  let run () =
    let vm = Vm.create ~min_heap_bytes:(P.min_heap profile) () in
    (T.replay vm tr).G.elapsed_ms
  in
  check (Alcotest.float 1e-9) "replay bit-identical" (run ()) (run ())

let test_trace_replay_across_collectors () =
  (* the same trace must be runnable under every collector *)
  let profile = P.scaled D.luindex 0.05 in
  let tr = T.record ~seed:4 profile in
  List.iter
    (fun coll ->
      let vm =
        Vm.create ~cfg:{ Cfg.default with Cfg.collector = coll }
          ~min_heap_bytes:(P.min_heap profile) ()
      in
      let res = T.replay vm tr in
      Alcotest.(check bool)
        (Cfg.collector_name coll ^ " replays trace")
        true res.G.completed)
    [ Cfg.Mark_sweep; Cfg.Immix; Cfg.Sticky_ms; Cfg.Sticky_immix ]

let suite =
  [
    ("suite composition", `Quick, test_suite_composition);
    ("buggy lusearch 3x", `Quick, test_buggy_lusearch_is_3x);
    ("profile scaling", `Quick, test_scaling);
    ("min heap exceeds live", `Quick, test_min_heap_exceeds_live);
    ("generator reaches volume", `Quick, test_generator_reaches_volume);
    ("generator live near target", `Quick, test_generator_live_near_target);
    ("all profiles complete at 2x", `Slow, test_all_profiles_complete_at_2x);
    ("all profiles complete at 1.33x", `Slow, test_all_profiles_complete_at_1_33x);
    ("xalan uses LOS heavily", `Quick, test_xalan_uses_los_heavily);
    ("trace record", `Quick, test_trace_record);
    ("trace replay deterministic", `Quick, test_trace_replay_deterministic);
    ("trace replay across collectors", `Quick, test_trace_replay_across_collectors);
  ]
