(* A domain scenario: an in-memory key-value cache running on cheap,
   badly worn PCM.

     dune exec examples/kvstore.exe

   The paper's Sec. 7.4 argues that failure-aware software lets
   manufacturers *bin* chips by failure rate instead of discarding them.
   This example runs the same cache workload on bins of increasing
   damage (0%..50% failed lines, two-page clustering) and prints the
   throughput cost of using each cheaper bin — the "who wins, by how
   much" economics that motivate the system. *)

let run_cache ~(failure_rate : float) : float * bool =
  let cfg =
    {
      Holes.Config.default with
      Holes.Config.failure_rate;
      failure_dist = Holes.Config.Hw_cluster 2;
      heap_factor = 2.0;
    }
  in
  let vm = Holes.Vm.create ~cfg ~min_heap_bytes:(7 * 1024 * 1024) () in
  let rng = Holes_stdx.Xrng.of_seed 2024 in
  (* the cache: string keys -> heap objects, LRU-ish eviction *)
  let capacity = 4000 in
  let table : (int, int) Hashtbl.t = Hashtbl.create capacity in
  let order = Queue.create () in
  let zipf = Holes_stdx.Dist.zipf_sampler ~n:20_000 ~s:0.95 in
  let ops = 200_000 in
  let completed = ref true in
  (try
     for _ = 1 to ops do
       let key = zipf rng in
       match Hashtbl.find_opt table key with
       | Some _id -> () (* cache hit: read *)
       | None ->
           (* miss: allocate a value object (values are small documents,
              occasionally large blobs) *)
           let size =
             if Holes_stdx.Xrng.int rng 64 = 0 then 10_000 + Holes_stdx.Xrng.int rng 20_000
             else 64 + Holes_stdx.Xrng.int rng 800
           in
           let id = Holes.Vm.alloc vm ~size () in
           Hashtbl.replace table key id;
           Queue.push key order;
           if Hashtbl.length table > capacity then begin
             (* evict the oldest entry *)
             let victim = Queue.pop order in
             match Hashtbl.find_opt table victim with
             | Some vid ->
                 Holes.Vm.kill vm vid;
                 Hashtbl.remove table victim
             | None -> ()
           end
     done
   with Holes.Vm.Out_of_memory -> completed := false);
  (if not !completed then
     Printf.eprintf "[debug] oom_size=%d full=%d nur=%d live=%d freeP=%d freeI=%d dead=%d borrowed=%d debt=%d los_pages=%d fb=%d\n%!"
       (Holes.Vm.metrics vm).Holes.Metrics.oom_request
       (Holes.Vm.metrics vm).Holes.Metrics.full_gcs
       (Holes.Vm.metrics vm).Holes.Metrics.nursery_gcs
       (Holes_heap.Object_table.live_bytes (Holes.Vm.objects vm))
       (Holes_heap.Page_stock.free_perfect_count (Holes.Vm.stock vm))
       (Holes_heap.Page_stock.free_imperfect_count (Holes.Vm.stock vm))
       (Holes_heap.Page_stock.dead_count (Holes.Vm.stock vm))
       (Holes_heap.Page_stock.borrowed_in_use (Holes.Vm.stock vm))
       (Holes_osal.Accounting.debt (Holes_heap.Page_stock.accounting (Holes.Vm.stock vm)))
       (Holes.Vm.metrics vm).Holes.Metrics.los_pages
       (Holes.Vm.metrics vm).Holes.Metrics.perfect_block_fallbacks);
  (Holes.Vm.elapsed_ms vm, !completed)

let () =
  print_endline "== kvstore on binned wearable memory ==";
  print_endline "bin   failed-lines  modeled time     cost vs pristine";
  let base = ref None in
  List.iter
    (fun rate ->
      let t, ok = run_cache ~failure_rate:rate in
      if not ok then Printf.printf "%3.0f%%  %12s  %12s     (out of memory)\n" (rate *. 100.) "-" "-"
      else begin
        (match !base with None -> base := Some t | Some _ -> ());
        let b = Option.get !base in
        Printf.printf "%3.0f%%  %11.0f%%  %9.2f ms     %+.1f%%\n" (rate *. 100.) (rate *. 100.)
          t
          ((t /. b -. 1.0) *. 100.0)
      end)
    [ 0.0; 0.10; 0.25; 0.40; 0.50 ];
  print_endline "\nA chip with half its lines burned out still serves the cache at a";
  print_endline "modest throughput cost: bin it cheaper, don't scrap it."
