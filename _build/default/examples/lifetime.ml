(* Lifetime extension: how long does a PCM module remain useful?

     dune exec examples/lifetime.exe

   The paper's headline motivation: discarding a 4 KB page on its first
   line failure wastes 98% of the page, so a conventional system dies
   when ~2% of lines have failed; a failure-aware runtime keeps going to
   50% and beyond.  This example ages a memory with the wear model and
   compares three policies as failures accumulate:

     - page-discard (DRAM-style): a page dies with its first line;
     - failure-aware, uniform failures (wear leveling on);
     - failure-aware + unleveled wear (failures concentrate, Sec. 7.2).

   For each aging step we report usable memory and whether the workload
   still completes at a 2x heap. *)

module Cfg = Holes.Config
module FM = Holes_pcm.Failure_map
module Bitset = Holes_stdx.Bitset

let profile = Holes_workload.Profile.scaled Holes_workload.Dacapo.bloat 0.2

let completes ~(device_map : npages:int -> Bitset.t) : bool =
  let cfg = { Cfg.default with Cfg.failure_rate = 0.0 } in
  (* failure_rate 0 disables compensation: we want to see the raw loss *)
  let vm =
    Holes.Vm.create ~cfg ~device_map
      ~min_heap_bytes:(Holes_workload.Profile.min_heap profile)
      ()
  in
  let res = Holes_workload.Generator.run ~rng:(Holes_stdx.Xrng.of_seed 4) vm profile in
  res.Holes_workload.Generator.completed

let () =
  print_endline "== memory lifetime under three policies ==";
  print_endline
    "failed  page-discard        failure-aware        failure-aware+concentrated";
  print_endline
    "lines   usable  survives?   usable  survives?    usable  survives?";
  let rng = Holes_stdx.Xrng.of_seed 31 in
  List.iter
    (fun rate ->
      (* one shared wear-out level, three views of it *)
      let uniform ~npages =
        FM.uniform rng ~nlines:(npages * Holes_pcm.Geometry.lines_per_page) ~rate
      in
      let concentrated ~npages =
        Holes_exp.Wear_ablation.wear_map (Holes_stdx.Xrng.of_seed 7)
          ~nlines:(npages * Holes_pcm.Geometry.lines_per_page) ~rate ~leveled:false
      in
      (* page-discard: any page with >= 1 failed line is entirely lost *)
      let page_discard ~npages =
        let m = uniform ~npages in
        let out = Bitset.create (Bitset.length m) in
        let lpp = Holes_pcm.Geometry.lines_per_page in
        for p = 0 to npages - 1 do
          let any = ref false in
          for i = 0 to lpp - 1 do
            if Bitset.get m ((p * lpp) + i) then any := true
          done;
          if !any then
            for i = 0 to lpp - 1 do
              Bitset.set out ((p * lpp) + i)
            done
        done;
        out
      in
      let usable map_fn =
        let npages = 512 in
        let m = map_fn ~npages in
        100.0 *. (1.0 -. FM.rate m)
      in
      let survive_str f = if f then "yes" else "NO " in
      Printf.printf "%5.1f%%  %4.0f%%   %s        %4.0f%%   %s         %4.0f%%   %s\n%!"
        (rate *. 100.0) (usable page_discard)
        (survive_str (completes ~device_map:page_discard))
        (usable (fun ~npages -> uniform ~npages))
        (survive_str (completes ~device_map:(fun ~npages -> uniform ~npages)))
        (usable (fun ~npages -> concentrated ~npages))
        (survive_str (completes ~device_map:(fun ~npages -> concentrated ~npages))))
    [ 0.005; 0.01; 0.02; 0.05; 0.10; 0.20 ];
  print_endline "\nThe page-discard policy loses ~98% of memory by the time 2% of";
  print_endline "lines fail; the failure-aware runtime barely notices, and";
  print_endline "concentrated (unleveled) wear preserves even more usable memory."
