lib/osal/accounting.ml:
