lib/osal/vmm.ml: Bitset Bytes Failure_table Hashtbl Holes_stdx List Option Page Pools Result
