lib/osal/page.ml: Bitset Format Holes_pcm Holes_stdx
