lib/osal/interrupts.ml: Bytes Failure_table Holes_pcm List Option Pools Vmm
