lib/osal/swap.ml: Bitset Failure_table Holes_stdx List Pools
