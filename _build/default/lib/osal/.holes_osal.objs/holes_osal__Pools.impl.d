lib/osal/pools.ml: Array Fun Hashtbl List Page
