lib/osal/failure_table.ml: Array Bitset Buffer Holes_pcm Holes_stdx List Page Printf Rle Scanf String
