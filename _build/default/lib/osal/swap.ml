(** Swapping imperfect pages (paper Sec. 3.2.3).

    When data from an imperfect page (possibly on disk) must move to
    another physical page, the OS has three options:
    1. swap into a perfect page;
    2. swap into an imperfect page with *different* failures, informing
       the runtime of the new failure map via an up-call (the runtime may
       veto, e.g. when pinned objects sit on now-failed lines);
    3. with failure clustering, map onto any page with the same number or
       fewer failures — clustered failure maps make "failures are a
       subset" reduce to a count comparison. *)

open Holes_stdx

type policy =
  | To_perfect
  | Compatible_imperfect  (** destination failures ⊆ source failures *)
  | Clustered_count  (** clustering: destination failure count <= source *)

type outcome = {
  dest : int;  (** physical page id chosen *)
  upcall_needed : bool;  (** runtime must be told about a new failure map *)
}

(* Are [dest_map] failures compatible with [src_map] under [policy]?  A
   destination is trivially compatible when its failures are a subset of
   the source's: every hole the runtime already avoids stays a hole. *)
let compatible ~(policy : policy) ~(src_map : Bitset.t) ~(dest_map : Bitset.t) : bool =
  match policy with
  | To_perfect -> Bitset.count dest_map = 0
  | Compatible_imperfect -> Bitset.subset dest_map src_map
  | Clustered_count ->
      (* valid only when both maps are clustered at the same end; the
         count comparison then implies the subset relation *)
      Bitset.count dest_map <= Bitset.count src_map

(** [swap_in t ~policy ~src_map] chooses a free physical destination page
    for data whose source page had failure map [src_map].  Falls back to
    a perfect page when no compatible imperfect page exists (option 2's
    "the OS can try another imperfect page or fall back to a perfect
    page").  Returns [None] when memory is exhausted. *)
let swap_in (pools : Pools.t) ~(table : Failure_table.t) ~(dram_pages : int) ~(policy : policy)
    ~(src_map : Bitset.t) : outcome option =
  let try_imperfect () =
    (* scan the imperfect free list for a compatible page *)
    let rec pick tried =
      match Pools.alloc_imperfect pools with
      | None ->
          (* restore pages we rejected *)
          List.iter (Pools.free pools) tried;
          None
      | Some phys ->
          let dest_map = Failure_table.get table ~page:(phys - dram_pages) in
          if compatible ~policy ~src_map ~dest_map then begin
            List.iter (Pools.free pools) tried;
            let upcall_needed = not (Bitset.equal dest_map src_map) in
            Some { dest = phys; upcall_needed }
          end
          else pick (phys :: tried)
    in
    pick []
  in
  match policy with
  | To_perfect -> (
      match Pools.alloc_perfect pools with
      | Some phys -> Some { dest = phys; upcall_needed = false }
      | None -> None)
  | Compatible_imperfect | Clustered_count -> (
      match try_imperfect () with
      | Some o -> Some o
      | None -> (
          match Pools.alloc_perfect pools with
          | Some phys -> Some { dest = phys; upcall_needed = false }
          | None -> None))
