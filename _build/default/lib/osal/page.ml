(** Physical page descriptors (paper Sec. 3.2.1).

    The OS manages DRAM, perfect PCM and imperfect PCM pages in separate
    pools.  Each PCM page carries a failure bitmap with one bit per 64 B
    line — 64 bits for a 4 KB page. *)

open Holes_stdx

type kind = Dram | Pcm_perfect | Pcm_imperfect

type t = {
  id : int;  (** physical page number *)
  mutable kind : kind;
  failures : Bitset.t;  (** one bit per line; all clear for DRAM *)
}

let lines_per_page = Holes_pcm.Geometry.lines_per_page

let create ~(id : int) ~(kind : kind) : t =
  { id; kind; failures = Bitset.create lines_per_page }

let failed_lines (t : t) : int = Bitset.count t.failures

let usable_lines (t : t) : int = lines_per_page - failed_lines t

let is_perfect (t : t) : bool = failed_lines t = 0

(** Record that line [line] of this page has failed.  Promotes a perfect
    PCM page to the imperfect kind.  Returns [true] if the line was not
    already marked. *)
let mark_line_failed (t : t) ~(line : int) : bool =
  if t.kind = Dram then invalid_arg "Page.mark_line_failed: DRAM pages do not fail";
  if Bitset.get t.failures line then false
  else begin
    Bitset.set t.failures line;
    if t.kind = Pcm_perfect then t.kind <- Pcm_imperfect;
    true
  end

let pp_kind (ppf : Format.formatter) (k : kind) : unit =
  Format.pp_print_string ppf
    (match k with Dram -> "dram" | Pcm_perfect -> "pcm-perfect" | Pcm_imperfect -> "pcm-imperfect")

let pp (ppf : Format.formatter) (t : t) : unit =
  Format.fprintf ppf "page %d (%a, %d/%d lines usable)" t.id pp_kind t.kind (usable_lines t)
    lines_per_page
