(** The OS failure table (paper Sec. 3.2.1): a DRAM-resident table with a
    per-PCM-page failure bitmap.  Uncompressed it is ~1.6% of the PCM pool
    (64 bits per 4 KB page); run-length encoding compresses it well while
    failures are few.  The table can be saved and restored across
    shutdowns, or rebuilt by scanning (modeled by [rebuild_from]). *)

open Holes_stdx

type t = {
  mutable bitmaps : Bitset.t array;  (** indexed by physical PCM page id *)
}

let create ~(pcm_pages : int) : t =
  { bitmaps = Array.init pcm_pages (fun _ -> Bitset.create Page.lines_per_page) }

let npages (t : t) : int = Array.length t.bitmaps

let get (t : t) ~(page : int) : Bitset.t = t.bitmaps.(page)

let mark_failed (t : t) ~(page : int) ~(line : int) : unit = Bitset.set t.bitmaps.(page) line

let is_failed (t : t) ~(page : int) ~(line : int) : bool = Bitset.get t.bitmaps.(page) line

let failed_lines (t : t) ~(page : int) : int = Bitset.count t.bitmaps.(page)

let total_failed_lines (t : t) : int =
  Array.fold_left (fun acc b -> acc + Bitset.count b) 0 t.bitmaps

(** Install a whole-page bitmap (used when ingesting a generated failure
    map, or when rebuilding after an abnormal shutdown). *)
let install (t : t) ~(page : int) (bits : Bitset.t) : unit =
  if Bitset.length bits <> Page.lines_per_page then
    invalid_arg "Failure_table.install: bitmap must cover one page";
  t.bitmaps.(page) <- Bitset.copy bits

(** Rebuild the table from a device-wide line failure map (the "eagerly
    scanning memory" recovery path of Sec. 3.2.1). *)
let rebuild_from (t : t) (device_map : Bitset.t) : unit =
  let lpp = Page.lines_per_page in
  if Bitset.length device_map <> npages t * lpp then
    invalid_arg "Failure_table.rebuild_from: size mismatch";
  Array.iteri
    (fun p _ ->
      let bits = Bitset.create lpp in
      for i = 0 to lpp - 1 do
        if Bitset.get device_map ((p * lpp) + i) then Bitset.set bits i
      done;
      t.bitmaps.(p) <- bits)
    t.bitmaps

(** Serialize the table for persistent storage across shutdowns
    (Sec. 3.2.1: "the OS may save the failed line map to persistent
    storage and restore it on system initialization").  The format is a
    simple run-length encoding of the concatenated bitmaps. *)
let save (t : t) : string =
  let lpp = Page.lines_per_page in
  let bits = Array.make (npages t * lpp) false in
  Array.iteri
    (fun p b ->
      for i = 0 to lpp - 1 do
        bits.((p * lpp) + i) <- Bitset.get b i
      done)
    t.bitmaps;
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "holes-ft1 %d\n" (npages t));
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%c%d " (if r.Rle.value then 'F' else 'o') r.Rle.length))
    (Rle.encode bits);
  Buffer.contents buf

(** Restore a table previously written by {!save}.  Returns [Error] on a
    corrupt image (the OS then falls back to rebuilding by scanning,
    Sec. 3.2.1). *)
let load (s : string) : (t, string) result =
  try
    Scanf.sscanf s "holes-ft1 %d\n %s@!" (fun npages rest ->
        let t = create ~pcm_pages:npages in
        let lpp = Page.lines_per_page in
        let pos = ref 0 in
        String.split_on_char ' ' rest
        |> List.iter (fun tok ->
               if tok <> "" then begin
                 let value = tok.[0] = 'F' in
                 let len = int_of_string (String.sub tok 1 (String.length tok - 1)) in
                 if value then
                   for i = !pos to !pos + len - 1 do
                     mark_failed t ~page:(i / lpp) ~line:(i mod lpp)
                   done;
                 pos := !pos + len
               end);
        if !pos <> npages * lpp then Error "truncated failure-table image" else Ok t)
  with _ -> Error "corrupt failure-table image"

(** Raw (uncompressed) size in bits: 64 bits per page. *)
let raw_bits (t : t) : int = npages t * Page.lines_per_page

(** Size in bits under the RLE encoding of {!Holes_stdx.Rle} over the
    concatenated bitmaps — the compression statistic the paper alludes
    to. *)
let rle_bits (t : t) : int =
  let lpp = Page.lines_per_page in
  let all = Array.make (raw_bits t) false in
  Array.iteri
    (fun p b ->
      for i = 0 to lpp - 1 do
        all.((p * lpp) + i) <- Bitset.get b i
      done)
    t.bitmaps;
  Rle.encoded_bits (Rle.encode all)

(** Fraction of the PCM pool the raw table occupies (the paper's ~1.6%:
    64 bits per 4 KB page = 8 B / 4096 B ≈ 0.2% per bitmap; with entry
    overheads the paper quotes 1.6% — we report the pure bitmap ratio). *)
let overhead_ratio (t : t) : float =
  let pool_bits = npages t * Holes_pcm.Geometry.page_bytes * 8 in
  if pool_bits = 0 then 0.0 else float_of_int (raw_bits t) /. float_of_int pool_bits
