(** Immix blocks: 32 KB regions divided into logical lines
    (paper Sec. 4.1, Fig. 2).

    Line states follow failure-aware Immix (Sec. 4.2): lines are free,
    live, or — the added fourth category — *failed*.  Line marks are a
    byte each in Immix; the failed state reuses one of the spare values,
    so failure awareness needs no extra metadata.  A failed 64 B PCM line
    widens to its enclosing logical line (a *false failure* when the
    logical line is larger, Sec. 6.2). *)

open Holes_stdx

type line_state = Free | Live | Failed

(* line state encoding in the byte map *)
let st_free = '\000'
let st_live = '\001'
let st_failed = '\002'

type t = {
  index : int;
  base : int;  (** first byte address of the block *)
  pages : int array;  (** page-stock ids backing the block, in order *)
  line_size : int;
  nlines : int;
  state : Bytes.t;  (** one byte per logical line *)
  live : int array;  (** per-line count of live objects touching the line *)
  objs : Intvec.t;  (** ids of objects allocated in this block (may be stale) *)
  mutable free_lines : int;
  mutable failed_lines : int;
  mutable recyclable : bool;  (** queued on the allocator's recycled list *)
  mutable evacuate : bool;  (** selected for defragmentation / dynamic failure *)
}

let pcm_line = Holes_pcm.Geometry.line_bytes
let pcm_lines_per_page = Holes_pcm.Geometry.lines_per_page

(** Create a block over [pages] (backing page-stock ids), importing each
    page's 64 B failure bitmap into logical-line failed marks. *)
let create ~(index : int) ~(base : int) ~(line_size : int) ~(pages : int array)
    ~(page_bitmap : int -> Bitset.t) : t =
  if not (Units.valid_line_size line_size) then invalid_arg "Block.create: bad line size";
  if Array.length pages <> Units.pages_per_block then
    invalid_arg "Block.create: wrong page count";
  let nlines = Units.lines_per_block ~line_size in
  let state = Bytes.make nlines st_free in
  let live = Array.make nlines 0 in
  (* false-failure widening: any failed 64 B PCM line inside a logical
     line fails the whole logical line *)
  let pcm_per_logical = line_size / pcm_line in
  let failed = ref 0 in
  for l = 0 to nlines - 1 do
    let first_pcm = l * pcm_per_logical in
    let rec any i =
      if i >= pcm_per_logical then false
      else
        let pcm_idx = first_pcm + i in
        let pg = pcm_idx / pcm_lines_per_page in
        let off = pcm_idx mod pcm_lines_per_page in
        if Bitset.get (page_bitmap pages.(pg)) off then true else any (i + 1)
    in
    if any 0 then begin
      Bytes.set state l st_failed;
      incr failed
    end
  done;
  {
    index;
    base;
    pages;
    line_size;
    nlines;
    state;
    live;
    objs = Intvec.create ();
    free_lines = nlines - !failed;
    failed_lines = !failed;
    recyclable = false;
    evacuate = false;
  }

let line_state (t : t) (l : int) : line_state =
  match Bytes.get t.state l with
  | c when c = st_free -> Free
  | c when c = st_live -> Live
  | _ -> Failed

let is_failed_line (t : t) (l : int) : bool = Bytes.get t.state l = st_failed

(** Is the block free of any live data? *)
let is_empty (t : t) : bool = t.free_lines = t.nlines - t.failed_lines

(** Is the block perfect (no failed lines)? *)
let is_perfect (t : t) : bool = t.failed_lines = 0

(** Usable bytes remaining (free lines × line size). *)
let free_bytes (t : t) : int = t.free_lines * t.line_size

let line_of_offset (t : t) (offset : int) : int = offset / t.line_size

(** Lines spanned by an object at [addr] (block-relative) of [size]
    bytes: inclusive line index range. *)
let lines_of_object (t : t) ~(addr : int) ~(size : int) : int * int =
  let off = addr - t.base in
  (off / t.line_size, (off + size - 1) / t.line_size)

(** Account a newly placed object: bump per-line live counts, flip free
    lines to live. *)
let add_object_lines (t : t) ~(addr : int) ~(size : int) : unit =
  let lo, hi = lines_of_object t ~addr ~size in
  for l = lo to hi do
    if Bytes.get t.state l = st_failed then
      invalid_arg "Block.add_object_lines: allocation overlaps a failed line";
    if t.live.(l) = 0 then begin
      Bytes.set t.state l st_live;
      t.free_lines <- t.free_lines - 1
    end;
    t.live.(l) <- t.live.(l) + 1
  done

(** Account a reclaimed object: drop per-line live counts, freeing lines
    whose count reaches zero. *)
let remove_object_lines (t : t) ~(addr : int) ~(size : int) : unit =
  let lo, hi = lines_of_object t ~addr ~size in
  for l = lo to hi do
    if t.live.(l) <= 0 then invalid_arg "Block.remove_object_lines: line not live";
    t.live.(l) <- t.live.(l) - 1;
    if t.live.(l) = 0 then begin
      Bytes.set t.state l st_free;
      t.free_lines <- t.free_lines + 1
    end
  done

(** Reset all line marks to free (preserving failed lines) ahead of a
    full-collection rebuild. *)
let clear_marks (t : t) : unit =
  for l = 0 to t.nlines - 1 do
    if Bytes.get t.state l <> st_failed then Bytes.set t.state l st_free;
    t.live.(l) <- 0
  done;
  t.free_lines <- t.nlines - t.failed_lines;
  Intvec.clear t.objs

(** [find_hole t ~from_line ~min_bytes] scans the line map for the next
    maximal run of free lines, at or after [from_line], spanning at
    least [min_bytes].  Returns [(start_line, limit_line, lines_examined)]
    where the hole is lines [start_line .. limit_line - 1];
    [lines_examined] feeds the cost model.  [None] if no such hole
    remains in the block. *)
let find_hole (t : t) ~(from_line : int) ~(min_bytes : int) : (int * int * int) option =
  let needed_lines = (min_bytes + t.line_size - 1) / t.line_size in
  let examined = ref 0 in
  let rec scan l =
    if l >= t.nlines then None
    else begin
      incr examined;
      if Bytes.get t.state l <> st_free then scan (l + 1)
      else begin
        (* extend the run *)
        let e = ref (l + 1) in
        while !e < t.nlines && Bytes.get t.state !e = st_free do
          incr examined;
          incr e
        done;
        if !e - l >= needed_lines then Some (l, !e, !examined) else scan !e
      end
    end
  in
  scan (max 0 from_line)

(** Number of holes (maximal free runs) — the fragmentation statistic. *)
let count_holes (t : t) : int =
  let holes = ref 0 in
  let in_hole = ref false in
  for l = 0 to t.nlines - 1 do
    if Bytes.get t.state l = st_free then begin
      if not !in_hole then incr holes;
      in_hole := true
    end
    else in_hole := false
  done;
  !holes

(** Record a dynamic line failure discovered at runtime: the logical line
    containing block-relative [offset] becomes failed.  Returns the
    object-displacing information: whether the line previously held live
    data. *)
let fail_line (t : t) ~(line : int) : [ `Was_free | `Was_live | `Already_failed ] =
  match Bytes.get t.state line with
  | c when c = st_failed -> `Already_failed
  | c when c = st_free ->
      Bytes.set t.state line st_failed;
      t.failed_lines <- t.failed_lines + 1;
      t.free_lines <- t.free_lines - 1;
      `Was_free
  | _ ->
      Bytes.set t.state line st_failed;
      t.failed_lines <- t.failed_lines + 1;
      t.live.(line) <- 0;
      `Was_live
