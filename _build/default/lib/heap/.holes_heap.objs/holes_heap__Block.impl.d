lib/heap/block.ml: Array Bitset Bytes Holes_pcm Holes_stdx Intvec Units
