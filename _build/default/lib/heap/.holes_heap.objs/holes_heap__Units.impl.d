lib/heap/units.ml: Holes_pcm
