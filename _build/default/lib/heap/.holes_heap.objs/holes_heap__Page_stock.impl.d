lib/heap/page_stock.ml: Array Bitset Holes_osal Holes_pcm Holes_stdx List
