lib/heap/object_table.ml: Array Holes_stdx Intvec List
