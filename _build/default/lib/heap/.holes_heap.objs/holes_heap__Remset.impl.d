lib/heap/remset.ml: Array Holes_stdx Intvec
