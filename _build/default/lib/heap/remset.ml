(** The remembered set for generational (sticky mark bits) collection.

    The write barrier logs stores that create old→young references; a
    nursery collection treats the logged sources as additional roots.
    Duplicate-filtering is approximated with a coarse hash filter, as
    production barriers do. *)

open Holes_stdx

type t = {
  entries : Intvec.t;  (** source object ids *)
  mutable filter : int array;  (** coarse duplicate filter *)
  mutable barrier_hits : int;  (** total barrier slow-path executions *)
}

let filter_size = 4096

let create () : t =
  { entries = Intvec.create (); filter = Array.make filter_size (-1); barrier_hits = 0 }

(** Log a store of a reference to nursery object into [src].  Returns
    [true] when a new entry was recorded (slow path taken). *)
let record (t : t) ~(src : int) : bool =
  t.barrier_hits <- t.barrier_hits + 1;
  let slot = src land (filter_size - 1) in
  if t.filter.(slot) = src then false
  else begin
    t.filter.(slot) <- src;
    Intvec.push t.entries src;
    true
  end

let size (t : t) : int = Intvec.length t.entries

let iter (t : t) (f : int -> unit) : unit = Intvec.iter t.entries f

let clear (t : t) : unit =
  Intvec.clear t.entries;
  Array.fill t.filter 0 filter_size (-1)

let barrier_hits (t : t) : int = t.barrier_hits
