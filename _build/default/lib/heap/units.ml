(** Heap geometry shared by every collector.

    The paper's configuration (Sec. 5): Immix blocks of 32 KB, logical
    lines of 64–256 B (256 B default), 4 KB OS pages, 64 B PCM lines. *)

(** Immix block size in bytes (paper default 32 KB). *)
let block_bytes = 32768

(** OS pages per Immix block: 8. *)
let pages_per_block = block_bytes / Holes_pcm.Geometry.page_bytes

(** Object alignment in bytes. *)
let align = 8

(** Objects strictly larger than this go to the large object space.
    Immix delegates objects above 8 KB to the page-grained LOS. *)
let los_threshold = 8192

(** Default Immix logical line size (bytes); the paper also evaluates 64
    and 128. *)
let default_line_size = 256

(** Valid Immix line sizes: multiples of the 64 B PCM line that divide
    the block size. *)
let valid_line_size (l : int) : bool =
  l >= Holes_pcm.Geometry.line_bytes && l mod Holes_pcm.Geometry.line_bytes = 0
  && block_bytes mod l = 0

let lines_per_block ~(line_size : int) : int = block_bytes / line_size

let round_up (n : int) (to_ : int) : int = (n + to_ - 1) / to_ * to_

(** Size of an allocation request after alignment. *)
let aligned_size (n : int) : int = max align (round_up n align)
