lib/core/cost.ml:
