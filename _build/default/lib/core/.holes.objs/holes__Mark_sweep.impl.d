lib/core/mark_sweep.ml: Array Config Cost Hashtbl Holes_heap Holes_pcm Holes_stdx Immix Intvec List Los Metrics Object_table Option Page_stock Remset Units
