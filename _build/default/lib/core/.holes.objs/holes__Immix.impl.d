lib/core/immix.ml: Array Bitset Block Config Cost Float Hashtbl Holes_heap Holes_pcm Holes_stdx Intvec List Los Metrics Object_table Oom Page_stock Printf Remset Sys Units
