lib/core/oom.ml:
