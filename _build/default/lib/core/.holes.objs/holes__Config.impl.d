lib/core/config.ml: Holes_heap Holes_pcm Printf
