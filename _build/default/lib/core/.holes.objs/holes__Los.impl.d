lib/core/los.ml: Cost Hashtbl Holes_heap Holes_pcm List Metrics Page_stock
