lib/core/vm.ml: Bitset Config Cost Format Hashtbl Holes_heap Holes_osal Holes_pcm Holes_stdx Immix List Los Mark_sweep Metrics Object_table Page_stock Units Xrng
