lib/core/metrics.ml: Holes_stdx
