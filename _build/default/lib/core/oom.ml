(** Raised when the heap (plus the bounded DRAM borrow budget) cannot
    hold the live set — the paper's "some configurations cannot execute
    some of the benchmarks" (Sec. 5). *)
exception Out_of_memory
