(** Plain-text aligned tables for the benchmark harness output.

    Every figure/table reproduction prints through this module so the
    bench output is uniform and easy to diff against EXPERIMENTS.md. *)

type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ~(title : string) ~(headers : string list) ?(aligns : align list option) () : t =
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> List.length headers then
          invalid_arg "Table.create: aligns/headers length mismatch";
        a
    | None -> List.map (fun _ -> Right) headers
  in
  { title; headers; aligns; rows = [] }

let add_row (t : t) (cells : string list) : unit =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- cells :: t.rows

let addf (t : t) (cells : [ `S of string | `F of float | `I of int | `Pct of float ] list) : unit =
  add_row t
    (List.map
       (function
         | `S s -> s
         | `F f -> Printf.sprintf "%.3f" f
         | `I i -> string_of_int i
         | `Pct f -> Printf.sprintf "%.1f%%" (f *. 100.0))
       cells)

let render (t : t) : string =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    all;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let pad align w s =
    let n = w - String.length s in
    if n <= 0 then s
    else match align with Left -> s ^ String.make n ' ' | Right -> String.make n ' ' ^ s
  in
  let emit_row row =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth t.aligns i) widths.(i) c))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  Buffer.add_string buf (rule ^ "\n");
  List.iter emit_row rows;
  Buffer.contents buf

let print (t : t) : unit = print_string (render t)
