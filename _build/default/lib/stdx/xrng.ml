(** Deterministic, splittable pseudo-random number generation.

    Every stochastic component in the reproduction (failure-map generation,
    workload object sizes and lifetimes, wear process variation) draws from
    one of these generators so that experiments are exactly reproducible
    from a seed.  The implementation is SplitMix64 (Steele et al., OOPSLA
    2014) for stream derivation plus xoshiro256** (Blackman & Vigna, 2018)
    for the bulk stream.  Both are implemented over OCaml's 63-bit-safe
    [Int64] operations. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let golden = 0x9E3779B97F4A7C15L

(* SplitMix64 step: used for seeding and for [split]. *)
let splitmix_next (state : int64 ref) : int64 =
  state := Int64.add !state golden;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed (seed : int) : t =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  (* xoshiro must not be seeded with all zeros; seed 0 through splitmix is
     fine, but guard anyway. *)
  let s3 = if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then 1L else s3 in
  { s0; s1; s2; s3 }

let rotl (x : int64) (k : int) : int64 =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next. *)
let next_int64 (t : t) : int64 =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each benchmark trial / page / component its own stream. *)
let split (t : t) : t =
  let st = ref (next_int64 t) in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  let s3 = if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then 1L else s3 in
  { s0; s1; s2; s3 }

(** [bits53 t] returns a non-negative int uniform in [0, 2^53). *)
let bits53 (t : t) : int =
  Int64.to_int (Int64.shift_right_logical (next_int64 t) 11)

(** [float t] is uniform in [0, 1). *)
let float (t : t) : float =
  Stdlib.float_of_int (bits53 t) *. 0x1p-53

(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] on a
    non-positive bound. *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Xrng.int: bound must be positive";
  (* Rejection-free for our purposes: bias is negligible for bound << 2^53. *)
  bits53 t mod bound

(** [bool t] is a fair coin flip. *)
let bool (t : t) : bool = Int64.logand (next_int64 t) 1L = 1L

(** [range t lo hi] is uniform in [lo, hi] inclusive. *)
let range (t : t) (lo : int) (hi : int) : int =
  if hi < lo then invalid_arg "Xrng.range: hi < lo";
  lo + int t (hi - lo + 1)

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
let shuffle (t : t) (a : 'a array) : unit =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
