(** Run-length encoding of boolean sequences.

    The paper (Sec. 3.2.1) notes the OS failure table is ~1.6% of PCM and
    that "run-length encoding or other simple encoding techniques may
    provide high compression rates", especially while failure counts are
    low.  We implement RLE so the OS failure table can report its
    compressed footprint, and so tests can validate the claim. *)

type run = { value : bool; length : int }

type t = run list

(** [encode bits] produces maximal runs, in order. *)
let encode (bits : bool array) : t =
  let n = Array.length bits in
  if n = 0 then []
  else begin
    let runs = ref [] in
    let cur = ref bits.(0) in
    let len = ref 1 in
    for i = 1 to n - 1 do
      if bits.(i) = !cur then incr len
      else begin
        runs := { value = !cur; length = !len } :: !runs;
        cur := bits.(i);
        len := 1
      end
    done;
    runs := { value = !cur; length = !len } :: !runs;
    List.rev !runs
  end

let decode (t : t) : bool array =
  let total = List.fold_left (fun acc r -> acc + r.length) 0 t in
  let out = Array.make total false in
  let i = ref 0 in
  List.iter
    (fun r ->
      for _ = 1 to r.length do
        out.(!i) <- r.value;
        incr i
      done)
    t;
  out

(** Size in bits of a simple serialization: each run is 1 value bit plus a
    varint-style length (7 bits per group).  Used only for the compression
    statistic the paper alludes to. *)
let encoded_bits (t : t) : int =
  List.fold_left
    (fun acc r ->
      let rec varint_groups n = if n < 128 then 1 else 1 + varint_groups (n lsr 7) in
      acc + 1 + (8 * varint_groups r.length))
    0 t

(** Compression ratio vs. a raw bitmap: [raw_bits / encoded_bits]; > 1
    means RLE wins. *)
let compression_ratio (bits : bool array) : float =
  let raw = Array.length bits in
  if raw = 0 then 1.0
  else
    let enc = encoded_bits (encode bits) in
    float_of_int raw /. float_of_int (max 1 enc)
