(** Compact fixed-size bitsets.

    Used for per-page failure bitmaps (one bit per 64 B PCM line: a 4 KB
    page needs 64 bits, cf. paper Sec. 3.2.1) and for line-level masks in
    the failure-map generator. *)

type t = { len : int; words : Bytes.t }

let bits_per_word = 8

let create (len : int) : t =
  if len < 0 then invalid_arg "Bitset.create: negative length";
  { len; words = Bytes.make ((len + bits_per_word - 1) / bits_per_word) '\000' }

let length (t : t) : int = t.len

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Bitset: index out of bounds"

let get (t : t) (i : int) : bool =
  check t i;
  Char.code (Bytes.get t.words (i / 8)) land (1 lsl (i mod 8)) <> 0

let set (t : t) (i : int) : unit =
  check t i;
  let w = i / 8 in
  Bytes.set t.words w (Char.chr (Char.code (Bytes.get t.words w) lor (1 lsl (i mod 8))))

let clear (t : t) (i : int) : unit =
  check t i;
  let w = i / 8 in
  Bytes.set t.words w (Char.chr (Char.code (Bytes.get t.words w) land lnot (1 lsl (i mod 8)) land 0xFF))

let assign (t : t) (i : int) (v : bool) : unit = if v then set t i else clear t i

(* popcount of a byte, precomputed *)
let popc =
  Array.init 256 (fun i ->
      let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
      go i 0)

(** Number of set bits. *)
let count (t : t) : int =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popc.(Char.code c)) t.words;
  !n

let copy (t : t) : t = { len = t.len; words = Bytes.copy t.words }

let fill (t : t) (v : bool) : unit =
  Bytes.fill t.words 0 (Bytes.length t.words) (if v then '\255' else '\000');
  (* clear trailing bits beyond len so [count] stays exact *)
  if v then
    for i = t.len to (Bytes.length t.words * 8) - 1 do
      let w = i / 8 in
      Bytes.set t.words w (Char.chr (Char.code (Bytes.get t.words w) land lnot (1 lsl (i mod 8)) land 0xFF))
    done

(** [iter_set t f] calls [f i] for every set bit index, ascending. *)
let iter_set (t : t) (f : int -> unit) : unit =
  for i = 0 to t.len - 1 do
    if get t i then f i
  done

(** [subset a b] is true when every bit set in [a] is also set in [b].
    The OS swap policy (paper Sec. 3.2.3) uses this to test whether a
    destination page's failures are a subset of the source page's. *)
let subset (a : t) (b : t) : bool =
  if a.len <> b.len then invalid_arg "Bitset.subset: length mismatch";
  let ok = ref true in
  for w = 0 to Bytes.length a.words - 1 do
    let aw = Char.code (Bytes.get a.words w) and bw = Char.code (Bytes.get b.words w) in
    if aw land lnot bw <> 0 then ok := false
  done;
  !ok

let equal (a : t) (b : t) : bool =
  a.len = b.len && Bytes.equal a.words b.words

(** First index >= [from] whose bit is clear; [None] if none. *)
let next_clear (t : t) (from : int) : int option =
  let rec go i = if i >= t.len then None else if not (get t i) then Some i else go (i + 1) in
  go (max 0 from)

(** First index >= [from] whose bit is set; [None] if none. *)
let next_set (t : t) (from : int) : int option =
  let rec go i = if i >= t.len then None else if get t i then Some i else go (i + 1) in
  go (max 0 from)

let to_bool_array (t : t) : bool array = Array.init t.len (get t)

let of_bool_array (a : bool array) : t =
  let t = create (Array.length a) in
  Array.iteri (fun i v -> if v then set t i) a;
  t

let pp (ppf : Format.formatter) (t : t) : unit =
  for i = 0 to t.len - 1 do
    Format.pp_print_char ppf (if get t i then '1' else '.')
  done
