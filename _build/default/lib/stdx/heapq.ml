(** A classic array-backed binary min-heap keyed by [int].

    The workload executor keeps a death clock — objects ordered by the
    bytes-allocated time at which they become unreachable — and this heap
    serves that priority queue. *)

type 'a t = {
  mutable keys : int array;
  mutable vals : 'a array;
  mutable size : int;
  dummy : 'a;
}

let create ~(dummy : 'a) : 'a t =
  { keys = Array.make 16 0; vals = Array.make 16 dummy; size = 0; dummy }

let length (t : 'a t) : int = t.size

let is_empty (t : 'a t) : bool = t.size = 0

let grow (t : 'a t) : unit =
  let cap = Array.length t.keys in
  let keys = Array.make (cap * 2) 0 in
  let vals = Array.make (cap * 2) t.dummy in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.vals 0 vals 0 t.size;
  t.keys <- keys;
  t.vals <- vals

let swap t i j =
  let k = t.keys.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.keys.(i) < t.keys.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.keys.(l) < t.keys.(!smallest) then smallest := l;
  if r < t.size && t.keys.(r) < t.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push (t : 'a t) ~(key : int) (v : 'a) : unit =
  if t.size = Array.length t.keys then grow t;
  t.keys.(t.size) <- key;
  t.vals.(t.size) <- v;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(** Key of the minimum element, if any. *)
let min_key (t : 'a t) : int option = if t.size = 0 then None else Some t.keys.(0)

(** Remove and return the minimum (key, value). *)
let pop (t : 'a t) : (int * 'a) option =
  if t.size = 0 then None
  else begin
    let k = t.keys.(0) and v = t.vals.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.vals.(0) <- t.vals.(t.size);
      sift_down t 0
    end;
    t.vals.(t.size) <- t.dummy;
    Some (k, v)
  end
