(** Descriptive statistics used by the experiment harness.

    The paper reports means of 20 invocations with 95% confidence
    intervals and aggregates across benchmarks with geometric means
    (Sec. 5); this module provides exactly those reductions. *)

let mean (xs : float list) : float =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean (xs : float list) : float =
  match xs with
  | [] -> invalid_arg "Stats.geomean: empty"
  | _ ->
      List.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean: non-positive") xs;
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int (List.length xs))

let variance (xs : float list) : float =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs /. (n -. 1.0)

let stddev (xs : float list) : float = sqrt (variance xs)

(** Two-sided 95% confidence half-interval for the mean, using the normal
    approximation (1.96 * s / sqrt n); adequate for the trial counts the
    harness uses and matching the paper's reporting style. *)
let ci95 (xs : float list) : float =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ -> 1.96 *. stddev xs /. sqrt (float_of_int (List.length xs))

let minimum (xs : float list) : float =
  match xs with [] -> invalid_arg "Stats.minimum: empty" | x :: r -> List.fold_left min x r

let maximum (xs : float list) : float =
  match xs with [] -> invalid_arg "Stats.maximum: empty" | x :: r -> List.fold_left max x r

(** [percentile p xs] with linear interpolation, p in [0,100]. *)
let percentile (p : float) (xs : float list) : float =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | _ ->
      if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      if n = 1 then a.(0)
      else
        let rank = p /. 100.0 *. float_of_int (n - 1) in
        let lo = int_of_float (floor rank) in
        let hi = min (n - 1) (lo + 1) in
        let frac = rank -. float_of_int lo in
        a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

(** Summary of a sample: mean, 95% CI, min, max. *)
type summary = { mean : float; ci95 : float; min : float; max : float; n : int }

let summarize (xs : float list) : summary =
  { mean = mean xs; ci95 = ci95 xs; min = minimum xs; max = maximum xs; n = List.length xs }

let pp_summary (ppf : Format.formatter) (s : summary) : unit =
  Format.fprintf ppf "%.4f ±%.4f [%.4f, %.4f] (n=%d)" s.mean s.ci95 s.min s.max s.n
