(** Probability distributions used by the workload generator and the PCM
    wear model.  All samplers take an explicit {!Xrng.t} so results are
    reproducible. *)

(** Standard normal via Box–Muller (one value per call; we do not cache the
    second value to keep the sampler stateless w.r.t. the distribution). *)
let normal (rng : Xrng.t) ~(mu : float) ~(sigma : float) : float =
  let u1 = max 1e-300 (Xrng.float rng) in
  let u2 = Xrng.float rng in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

(** Lognormal: [exp (normal mu sigma)].  Used for PCM cell endurance
    process variation (the paper cites ~1e8 writes per cell average). *)
let lognormal (rng : Xrng.t) ~(mu : float) ~(sigma : float) : float =
  exp (normal rng ~mu ~sigma)

(** Exponential with mean [mean]. *)
let exponential (rng : Xrng.t) ~(mean : float) : float =
  let u = max 1e-300 (Xrng.float rng) in
  -.mean *. log u

(** Geometric on {1, 2, ...} with success probability [p]. *)
let geometric (rng : Xrng.t) ~(p : float) : int =
  if p <= 0.0 || p > 1.0 then invalid_arg "Dist.geometric: p out of (0,1]";
  if p >= 1.0 then 1
  else
    let u = max 1e-300 (Xrng.float rng) in
    1 + int_of_float (log u /. log (1.0 -. p))

(** Bounded Pareto on [lo, hi] with shape [alpha].  Heavy-tailed object
    lifetimes (the weak generational hypothesis: most objects die young,
    a few live very long) are modeled with this. *)
let bounded_pareto (rng : Xrng.t) ~(alpha : float) ~(lo : float) ~(hi : float) : float =
  if lo <= 0.0 || hi <= lo then invalid_arg "Dist.bounded_pareto: need 0 < lo < hi";
  let u = Xrng.float rng in
  let la = lo ** alpha and ha = hi ** alpha in
  let x = -.((u *. ha) -. (u *. la) -. ha) /. (ha *. la) in
  x ** (-1.0 /. alpha)

(** Zipf over {1..n} with exponent [s], via inverse-CDF on a precomputed
    table.  Returns a sampler function to amortize the table. *)
let zipf_sampler ~(n : int) ~(s : float) : Xrng.t -> int =
  if n <= 0 then invalid_arg "Dist.zipf_sampler: n must be positive";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (i + 1) ** s));
    cdf.(i) <- !acc
  done;
  let total = !acc in
  fun rng ->
    let u = Xrng.float rng *. total in
    (* binary search for first cdf.(i) >= u *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo + 1

(** A discrete distribution over weighted choices.  [make] normalizes the
    weights; [sample] is O(log n) by binary search. *)
module Discrete = struct
  type 'a t = { items : 'a array; cum : float array }

  let make (pairs : (float * 'a) list) : 'a t =
    if pairs = [] then invalid_arg "Dist.Discrete.make: empty";
    List.iter (fun (w, _) -> if w < 0.0 then invalid_arg "Dist.Discrete.make: negative weight") pairs;
    let items = Array.of_list (List.map snd pairs) in
    let cum = Array.make (Array.length items) 0.0 in
    let acc = ref 0.0 in
    List.iteri
      (fun i (w, _) ->
        acc := !acc +. w;
        cum.(i) <- !acc)
      pairs;
    if !acc <= 0.0 then invalid_arg "Dist.Discrete.make: total weight zero";
    { items; cum }

  let sample (t : 'a t) (rng : Xrng.t) : 'a =
    let total = t.cum.(Array.length t.cum - 1) in
    let u = Xrng.float rng *. total in
    let lo = ref 0 and hi = ref (Array.length t.cum - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cum.(mid) < u then lo := mid + 1 else hi := mid
    done;
    t.items.(!lo)
end
