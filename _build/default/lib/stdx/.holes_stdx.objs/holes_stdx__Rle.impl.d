lib/stdx/rle.ml: Array List
