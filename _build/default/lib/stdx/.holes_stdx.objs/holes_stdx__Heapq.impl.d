lib/stdx/heapq.ml: Array
