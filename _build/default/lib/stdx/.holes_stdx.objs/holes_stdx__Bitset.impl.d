lib/stdx/bitset.ml: Array Bytes Char Format
