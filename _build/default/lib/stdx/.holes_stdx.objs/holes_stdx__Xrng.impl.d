lib/stdx/xrng.ml: Array Int64 Stdlib
