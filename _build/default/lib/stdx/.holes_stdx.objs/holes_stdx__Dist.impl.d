lib/stdx/dist.ml: Array Float List Xrng
