lib/stdx/intvec.ml: Array
