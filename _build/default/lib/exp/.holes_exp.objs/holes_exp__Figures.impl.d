lib/exp/figures.ml: Holes Holes_pcm Holes_stdx Holes_workload List Printf Runner Stats Table
