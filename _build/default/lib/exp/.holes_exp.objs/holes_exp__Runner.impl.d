lib/exp/runner.ml: Hashtbl Holes Holes_heap Holes_osal Holes_stdx Holes_workload List Option Printf Stats Xrng
