lib/exp/wear_ablation.ml: Array Bitset Dist Figures Float Fun Holes Holes_pcm Holes_stdx Holes_workload List Option Printf Runner Stats Table Xrng
