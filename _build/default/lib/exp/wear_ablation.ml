(** The Sec. 7.2 ablation: "Wear Leveling Considered Harmful".

    Start-gap-style wear leveling spreads writes uniformly, so once
    cells start failing the failures are uniformly scattered —
    maximizing fragmentation.  Without leveling, write traffic has
    spatial locality (hot pages), so the same *number* of failures
    concentrates in hot regions and the failure-aware runtime barely
    notices.  This module synthesizes both failure maps from a common
    wear model and compares the runtime overhead they induce.

    Model: per-line endurance is lognormal (process variation); write
    traffic is Zipf-distributed over 4 KB pages (unleveled) or uniform
    (leveled).  A line fails when its accumulated writes exceed its
    endurance, so for a target failure count k the k lines with the
    smallest endurance/traffic ratio fail — no time-stepping needed. *)

open Holes_stdx
module Cfg = Holes.Config

(** Build a wear-out failure map with exactly [round (rate*nlines)]
    failures.  [leveled] selects uniform (wear-leveled) vs Zipf
    page-local (unleveled) write traffic. *)
let wear_map (rng : Xrng.t) ~(nlines : int) ~(rate : float) ~(leveled : bool) : Bitset.t =
  let lpp = Holes_pcm.Geometry.lines_per_page in
  let npages = (nlines + lpp - 1) / lpp in
  let page_weight =
    if leveled then fun _ -> 1.0
    else begin
      (* Zipf traffic over pages, shuffled so hot pages are scattered *)
      let order = Array.init npages Fun.id in
      Xrng.shuffle rng order;
      let w = Array.make npages 0.0 in
      Array.iteri (fun rank page -> w.(page) <- 1.0 /. ((float_of_int rank +. 1.0) ** 0.9)) order;
      fun p -> w.(p)
    end
  in
  (* failure order: ascending endurance / traffic *)
  let score =
    Array.init nlines (fun i ->
        let endurance = Dist.lognormal rng ~mu:0.0 ~sigma:0.25 in
        let traffic = page_weight (i / lpp) in
        (endurance /. traffic, i))
  in
  Array.sort compare score;
  let k = int_of_float (Float.round (rate *. float_of_int nlines)) in
  let map = Bitset.create nlines in
  for j = 0 to k - 1 do
    Bitset.set map (snd score.(j))
  done;
  map

(** Fragmentation statistic of a map: mean run length of failed lines
    (clustered wear → long runs) and the fraction of pages left
    perfect. *)
let describe (map : Bitset.t) : string =
  let n = Bitset.length map in
  let runs = ref 0 and failed = ref 0 in
  let in_run = ref false in
  for i = 0 to n - 1 do
    if Bitset.get map i then begin
      incr failed;
      if not !in_run then incr runs;
      in_run := true
    end
    else in_run := false
  done;
  let mean_run = if !runs = 0 then 0.0 else float_of_int !failed /. float_of_int !runs in
  Printf.sprintf "mean failed-run %.2f lines, %d perfect pages"
    mean_run
    (Holes_pcm.Failure_map.perfect_pages map)

(** Run the ablation: geomean overhead of the failure-aware runtime on
    wear-leveled vs unleveled failure maps at the same failure rates. *)
let table ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create ~title:"Sec. 7.2 — wear leveling considered harmful (S-IX^PCM L256, 2x heap)"
      ~headers:[ "failures"; "leveled (uniform wear)"; "unleveled (concentrated wear)" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ] ()
  in
  let profiles = Holes_workload.Dacapo.suite in
  let run_with ~leveled ~ratef profile =
    let cfg = { Figures.base_six with Cfg.failure_rate = ratef; failure_dist = Cfg.Uniform } in
    let profile = Holes_workload.Profile.scaled profile params.Runner.scale in
    let device_map ~npages =
      wear_map (Xrng.of_seed 2718) ~nlines:(npages * Holes_pcm.Geometry.lines_per_page)
        ~rate:ratef ~leveled
    in
    let vm =
      Holes.Vm.create ~cfg ~device_map
        ~min_heap_bytes:(Holes_workload.Profile.min_heap profile)
        ()
    in
    let res = Holes_workload.Generator.run ~rng:(Xrng.of_seed 99) vm profile in
    if res.Holes_workload.Generator.completed then Some res.Holes_workload.Generator.elapsed_ms
    else None
  in
  let base_time profile =
    let o = Runner.run ~params ~cfg:Figures.base_six ~profile () in
    Runner.time_if_all_completed o
  in
  List.iter
    (fun ratef ->
      let cell ~leveled =
        let ratios =
          List.map
            (fun p ->
              match (run_with ~leveled ~ratef p, base_time p) with
              | Some t, Some b when b > 0.0 -> Some (t /. b)
              | _ -> None)
            profiles
        in
        if List.exists (( = ) None) ratios then "DNF"
        else Printf.sprintf "%.3f" (Stats.geomean (List.map Option.get ratios))
      in
      Table.add_row t
        [ Printf.sprintf "%.0f%%" (ratef *. 100.0); cell ~leveled:true; cell ~leveled:false ])
    [ 0.10; 0.25; 0.50 ];
  t
