(** Allocation trace record/replay.

    A trace captures a profile's allocation stream as data, so different
    collector configurations can be driven by *byte-identical* workloads
    (the moral equivalent of the paper's replay-compilation methodology,
    which removes nondeterminism between compared configurations). *)

open Holes_stdx

type event = {
  size : int;
  pinned : bool;
  lifetime : int;  (** bytes of subsequent allocation until death *)
  mutate : bool;  (** store a reference from a random older object *)
}

type t = { profile : Profile.t; events : event array }

(** Record the allocation stream [profile] would produce with [seed]. *)
let record ?(seed = 7) (profile : Profile.t) : t =
  let rng = Xrng.of_seed seed in
  let dist = Generator.category_dist profile in
  let events = ref [] in
  let clock = ref 0 in
  while !clock < profile.Profile.volume do
    let size = Generator.sample_size rng profile dist in
    let lifetime = Generator.sample_lifetime rng profile in
    let pinned = Xrng.float rng < profile.Profile.pin_rate in
    let mutate = Xrng.float rng < profile.Profile.mutation_rate in
    events := { size; pinned; lifetime; mutate } :: !events;
    clock := !clock + size
  done;
  { profile; events = Array.of_list (List.rev !events) }

let length (t : t) : int = Array.length t.events

let total_bytes (t : t) : int =
  Array.fold_left (fun acc e -> acc + e.size) 0 t.events

(** Replay a recorded trace against [vm].  Returns a {!Generator.result}
    with the replayed metrics. *)
let replay (vm : Holes.Vm.t) (t : t) : Generator.result =
  let deaths : int Heapq.t = Heapq.create ~dummy:(-1) in
  let pool_size = 1024 in
  let pool = Array.make pool_size (-1) in
  let pool_rng = Xrng.of_seed 17 in
  let completed = ref true in
  (try
     let clock = ref 0 in
     Array.iter
       (fun e ->
         let id = Holes.Vm.alloc vm ~pinned:e.pinned ~size:e.size () in
         Heapq.push deaths ~key:(!clock + e.lifetime) id;
         pool.(Xrng.int pool_rng pool_size) <- id;
         if e.mutate then begin
           let src = pool.(Xrng.int pool_rng pool_size) in
           if src >= 0 && src <> id
              && Holes_heap.Object_table.is_alive (Holes.Vm.objects vm) src
           then Holes.Vm.write_ref vm ~src ~dst:id
         end;
         clock := !clock + e.size;
         let rec reap () =
           match Heapq.min_key deaths with
           | Some k when k <= !clock -> (
               match Heapq.pop deaths with
               | Some (_, dead) ->
                   Holes.Vm.kill vm dead;
                   reap ()
               | None -> ())
           | _ -> ()
         in
         reap ())
       t.events
   with Holes.Vm.Out_of_memory -> completed := false);
  let cost = Holes.Vm.cost vm in
  {
    Generator.completed = !completed;
    profile = t.profile;
    elapsed_ms = Holes.Cost.total_ms cost;
    metrics = Holes.Vm.metrics vm;
    mutator_ms = Holes.Cost.mutator_ns cost /. 1e6;
    gc_ms = Holes.Cost.gc_ns cost /. 1e6;
  }
