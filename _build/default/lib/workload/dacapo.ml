(** The DaCapo-inspired benchmark profiles (see {!Profile} for the
    modeling rationale).  The suite mirrors the paper's: the superset of
    DaCapo 9.12-bach and 2006-10 benchmarks runnable on Jikes RVM, plus
    lusearch-fix (the patched lucene) and the buggy lusearch, which is
    reported for completeness but excluded from aggregate analysis
    (Sec. 5). *)

let avrora =
  Profile.make ~name:"avrora" ~description:"AVR microcontroller simulation: small live set, modest allocation"
    ~live_kb:400 ~immortal_kb:96 ~volume_mb:9 ~small_mean:48.0 ~medium_frac:0.08
    ~large_frac:0.03 ~mutation_rate:0.30 ()

let bloat =
  Profile.make ~name:"bloat" ~description:"Java bytecode optimizer: mixed sizes, moderate churn"
    ~live_kb:900 ~immortal_kb:160 ~volume_mb:26 ~small_mean:60.0 ~medium_frac:0.20
    ~large_frac:0.06 ()

let eclipse =
  Profile.make ~name:"eclipse" ~description:"IDE workload: large live set, heavy allocation"
    ~live_kb:3000 ~immortal_kb:700 ~volume_mb:52 ~small_mean:64.0 ~medium_frac:0.22
    ~large_frac:0.10 ~mutation_rate:0.25 ()

let fop =
  Profile.make ~name:"fop" ~description:"XSL-FO to PDF: sizable live document tree"
    ~live_kb:2600 ~immortal_kb:400 ~volume_mb:32 ~small_mean:64.0 ~medium_frac:0.30
    ~large_frac:0.12 ~short_frac:0.85 ()

let hsqldb =
  Profile.make ~name:"hsqldb" ~description:"In-memory SQL database: the largest live set (worst full-heap pause)"
    ~live_kb:4600 ~immortal_kb:900 ~volume_mb:55 ~small_mean:72.0 ~medium_frac:0.24
    ~large_frac:0.08 ~mutation_rate:0.35 ~short_frac:0.75 ()

let jython =
  Profile.make ~name:"jython" ~description:"Python interpreter: many medium objects (frames, dicts)"
    ~live_kb:1600 ~immortal_kb:300 ~volume_mb:38 ~small_mean:56.0 ~medium_frac:0.45
    ~large_frac:0.04 ()

let luindex =
  Profile.make ~name:"luindex" ~description:"Lucene indexing: small live set, small objects"
    ~live_kb:520 ~immortal_kb:100 ~volume_mb:10 ~small_mean:52.0 ~medium_frac:0.10
    ~large_frac:0.05 ()

let lusearch_fix =
  Profile.make ~name:"lusearch-fix" ~description:"Lucene search with the allocation bug patched"
    ~live_kb:700 ~immortal_kb:120 ~volume_mb:28 ~small_mean:52.0 ~medium_frac:0.10
    ~large_frac:0.06 ~short_frac:0.96 ()

(** The buggy lusearch: "needlessly allocating a large data structure in
    a hot loop ... an allocation rate a factor of three higher than any
    other benchmark".  Reported for completeness, excluded from
    aggregates. *)
let lusearch_buggy =
  Profile.make ~name:"lusearch" ~description:"Buggy lucene: pathological page-grained allocation in a hot loop"
    ~live_kb:700 ~immortal_kb:120 ~volume_mb:84 ~small_mean:52.0 ~medium_frac:0.06
    ~large_frac:0.55 ~large_max:32768 ~short_frac:0.985 ()

let antlr =
  Profile.make ~name:"antlr" ~description:"Parser generator: modest live set, small-object churn"
    ~live_kb:650 ~immortal_kb:140 ~volume_mb:12 ~small_mean:52.0 ~medium_frac:0.14
    ~large_frac:0.04 ()

let batik =
  Profile.make ~name:"batik" ~description:"SVG rasterizer: image buffers (large objects) over a small graph"
    ~live_kb:1100 ~immortal_kb:250 ~volume_mb:16 ~small_mean:60.0 ~medium_frac:0.12
    ~large_frac:0.35 ~large_max:98304 ()

let chart =
  Profile.make ~name:"chart" ~description:"JFreeChart rendering: mixed mediums and buffers"
    ~live_kb:1300 ~immortal_kb:220 ~volume_mb:22 ~small_mean:58.0 ~medium_frac:0.28
    ~large_frac:0.14 ()

let h2 =
  Profile.make ~name:"h2" ~description:"SQL database: large mutable live set, high mutation"
    ~live_kb:3800 ~immortal_kb:700 ~volume_mb:48 ~small_mean:68.0 ~medium_frac:0.22
    ~large_frac:0.07 ~mutation_rate:0.40 ~short_frac:0.78 ()

let tomcat =
  Profile.make ~name:"tomcat" ~description:"Servlet container: request/response churn, small objects"
    ~live_kb:1000 ~immortal_kb:260 ~volume_mb:24 ~small_mean:56.0 ~medium_frac:0.16
    ~large_frac:0.06 ~short_frac:0.95 ()

let pmd =
  Profile.make ~name:"pmd" ~description:"Source analysis: many medium objects (AST nodes, rule contexts)"
    ~live_kb:2200 ~immortal_kb:350 ~volume_mb:30 ~small_mean:60.0 ~medium_frac:0.50
    ~large_frac:0.05 ~short_frac:0.88 ()

let sunflow =
  Profile.make ~name:"sunflow" ~description:"Ray tracer: very high rate of small short-lived objects"
    ~live_kb:900 ~immortal_kb:180 ~volume_mb:40 ~small_mean:44.0 ~medium_frac:0.05
    ~large_frac:0.04 ~short_frac:0.97 ()

let xalan =
  Profile.make ~name:"xalan" ~description:"XSLT transform: predominantly very large objects (buffers)"
    ~live_kb:2000 ~immortal_kb:350 ~volume_mb:36 ~small_mean:60.0 ~medium_frac:0.10
    ~large_frac:0.50 ~large_max:131072 ~short_frac:0.93 ()

(** The analysis suite (buggy lusearch excluded, as in the paper). *)
let suite : Profile.t list =
  [ antlr; avrora; batik; bloat; chart; eclipse; fop; h2; hsqldb; jython; luindex;
    lusearch_fix; pmd; sunflow; tomcat; xalan ]

(** The reporting suite for Fig. 4 (includes the buggy lusearch). *)
let suite_with_buggy : Profile.t list =
  [ antlr; avrora; batik; bloat; chart; eclipse; fop; h2; hsqldb; jython; luindex;
    lusearch_fix; lusearch_buggy; pmd; sunflow; tomcat; xalan ]

let find (name : string) : Profile.t option =
  List.find_opt (fun p -> p.Profile.name = name) suite_with_buggy
