lib/workload/generator.ml: Array Dist Heapq Holes Holes_heap Holes_stdx Profile Xrng
