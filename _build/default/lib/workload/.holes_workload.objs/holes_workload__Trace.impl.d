lib/workload/trace.ml: Array Generator Heapq Holes Holes_heap Holes_stdx List Profile Xrng
