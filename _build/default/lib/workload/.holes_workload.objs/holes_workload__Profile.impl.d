lib/workload/profile.ml: Holes_heap
