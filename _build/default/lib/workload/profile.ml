(** Synthetic workload profiles.

    The paper evaluates DaCapo benchmarks on Jikes RVM; running Java is
    out of scope for an OCaml reproduction, so each benchmark is modeled
    by an allocation profile: total allocation volume, steady-state live
    size, an immortal base, the object size mix (small / medium / large
    by bytes), lifetime skew (the weak generational hypothesis), pointer
    mutation rate and pinning rate.  These are exactly the quantities the
    paper's effects flow through: fragmentation and false failures are
    driven by the size mix, perfect-page demand by the large-object
    fraction, pause times by the live set, and generational behaviour by
    the lifetime skew.  Per-benchmark parameters follow the paper's
    remarks (Sec. 6.1): pmd and jython allocate many medium objects,
    xalan predominantly allocates very large objects, hsqldb has the
    largest live set (worst-case 44 ms full-heap pause), and the buggy
    lusearch allocates "a factor of three higher than any other
    benchmark" due to a large structure allocated in a hot loop. *)

type t = {
  name : string;
  description : string;
  live_target : int;  (** steady-state reachable bytes (excluding immortals) *)
  immortal : int;  (** bytes allocated at startup that never die *)
  volume : int;  (** total bytes allocated by the run *)
  small_mean : float;  (** mean small-object size, bytes *)
  medium_frac : float;  (** fraction of allocated bytes in medium objects *)
  large_frac : float;  (** fraction of allocated bytes in large (LOS) objects *)
  large_max : int;  (** largest LOS object, bytes *)
  mutation_rate : float;  (** reference stores per allocation *)
  pin_rate : float;  (** fraction of objects pinned *)
  short_frac : float;  (** fraction of objects that are short-lived *)
}

(** Minimum heap the profile needs to complete: the live set plus
    collector slack (metadata, LOS page rounding, block quantization). *)
let min_heap (p : t) : int =
  let live = p.live_target + p.immortal in
  int_of_float (1.55 *. float_of_int live) + (16 * Holes_heap.Units.block_bytes)

(** Scale a profile's volume and footprint (sizes are unchanged); used
    to trade fidelity for experiment wall-clock. *)
let scaled (p : t) (s : float) : t =
  if s <= 0.0 then invalid_arg "Profile.scaled: scale must be positive";
  let f x = max 1 (int_of_float (float_of_int x *. s)) in
  { p with live_target = f p.live_target; immortal = f p.immortal; volume = f p.volume }

let kb n = n * 1024
let mb n = n * 1024 * 1024

let make ~name ~description ~live_kb ~immortal_kb ~volume_mb ?(small_mean = 56.0)
    ?(medium_frac = 0.15) ?(large_frac = 0.08) ?(large_max = 65536) ?(mutation_rate = 0.20)
    ?(pin_rate = 0.0005) ?(short_frac = 0.92) () : t =
  {
    name;
    description;
    live_target = kb live_kb;
    immortal = kb immortal_kb;
    volume = mb volume_mb;
    small_mean;
    medium_frac;
    large_frac;
    large_max;
    mutation_rate;
    pin_rate;
    short_frac;
  }
