(** PCM geometry constants, matching the paper's assumptions
    (Sec. 1, Sec. 3): 64 B lines, 4 KB pages, so 64 lines per page;
    clustering regions of one or more pages (two pages = 128 lines is the
    paper's default, "128 by default in our experiments"). *)

(** Bytes per PCM line — the hardware write granularity and the finest
    failure granularity. *)
let line_bytes = 64

(** Bytes per physical page. *)
let page_bytes = 4096

(** Lines per page: 64. *)
let lines_per_page = page_bytes / line_bytes

(** Default clustering region size in pages (paper default: two-page
    regions, 128 lines). *)
let default_region_pages = 2

let lines_per_region ~(region_pages : int) : int = region_pages * lines_per_page

(** Bits required by a redirection map for a region of [region_pages]
    pages: one entry of ceil(log2 n) bits per line, plus one boundary
    pointer field of the same width.  For the 2-page default this is the
    paper's 889 bits ("126 7-bit fields ... and one 7-bit field"), which
    fits in two 64 B lines. *)
let redirection_map_bits ~(region_pages : int) : int =
  let n = lines_per_region ~region_pages in
  let entry_bits =
    let rec log2_ceil v acc = if v <= 1 then acc else log2_ceil ((v + 1) / 2) (acc + 1) in
    log2_ceil n 0
  in
  (* n - 2 data entries: the paper stores the map in-line, consuming the
     metadata lines themselves (126 entries for a 128-line region), plus
     the boundary pointer. *)
  let meta_lines = ((n * entry_bits) + (line_bytes * 8) - 1) / (line_bytes * 8) in
  (((n - meta_lines) * entry_bits) + entry_bits) |> fun bits -> bits

(** Number of 64 B lines consumed by the redirection map metadata for a
    region (2 lines for the 2-page default). *)
let redirection_meta_lines ~(region_pages : int) : int =
  let bits = redirection_map_bits ~region_pages in
  (bits + (line_bytes * 8) - 1) / (line_bytes * 8)
