(** The failure buffer (paper Sec. 3.1.1).

    When a PCM write fails, the module copies the written data and its
    physical address into a small FIFO buffer (SRAM/DRAM on the DIMM or
    memory controller) and interrupts the processor.  Reads check the
    buffer in parallel with the array and the buffer's entry wins, so the
    failed write's data survives until the OS drains it.  An earlier entry
    with the same address is invalidated.  When occupancy crosses a high
    watermark (enough slots reserved to drain outstanding writes), a
    second interrupt fires and the device stops accepting writes until the
    OS clears at least one entry — preventing deadlock and data loss. *)

type entry = { addr : int;  (** physical line index *) data : Bytes.t }

type interrupt =
  | Failure_pending  (** at least one failure awaits OS handling *)
  | Buffer_pressure  (** occupancy crossed the watermark; writes stalled *)

type t = {
  capacity : int;
  watermark : int;
  mutable entries : entry list;  (** oldest first *)
  mutable stalled : bool;
  mutable raise_interrupt : interrupt -> unit;
  (* statistics *)
  mutable total_insertions : int;
  mutable total_invalidations : int;
  mutable max_occupancy : int;
  mutable stall_events : int;
}

let create ?(capacity = 32) ?(watermark : int option) () : t =
  if capacity <= 0 then invalid_arg "Failure_buffer.create: capacity must be positive";
  let watermark = match watermark with Some w -> w | None -> max 1 (capacity - 4) in
  if watermark > capacity then invalid_arg "Failure_buffer.create: watermark > capacity";
  {
    capacity;
    watermark;
    entries = [];
    stalled = false;
    raise_interrupt = (fun _ -> ());
    total_insertions = 0;
    total_invalidations = 0;
    max_occupancy = 0;
    stall_events = 0;
  }

(** Register the processor-side interrupt line. *)
let on_interrupt (t : t) (f : interrupt -> unit) : unit = t.raise_interrupt <- f

let occupancy (t : t) : int = List.length t.entries

let is_stalled (t : t) : bool = t.stalled

(** [insert t ~addr ~data] records a failed write.  Returns [false] when
    the buffer is completely full (the device must not have issued the
    write in that state; callers treat it as a fatal model error). *)
let insert (t : t) ~(addr : int) ~(data : Bytes.t) : bool =
  if occupancy t >= t.capacity then false
  else begin
    (* invalidate an earlier entry with the same address *)
    let before = List.length t.entries in
    t.entries <- List.filter (fun e -> e.addr <> addr) t.entries;
    if List.length t.entries < before then
      t.total_invalidations <- t.total_invalidations + 1;
    t.entries <- t.entries @ [ { addr; data = Bytes.copy data } ];
    t.total_insertions <- t.total_insertions + 1;
    let occ = occupancy t in
    if occ > t.max_occupancy then t.max_occupancy <- occ;
    t.raise_interrupt Failure_pending;
    if occ >= t.watermark && not t.stalled then begin
      t.stalled <- true;
      t.stall_events <- t.stall_events + 1;
      t.raise_interrupt Buffer_pressure
    end;
    true
  end

(** Read-path check: the most recent value written to [addr], if the
    buffer holds one.  Performed "in parallel with the actual access" in
    hardware, so it costs nothing extra on the modeled read path. *)
let forward (t : t) ~(addr : int) : Bytes.t option =
  (* latest entry wins; insert keeps at most one entry per address *)
  List.find_opt (fun e -> e.addr = addr) t.entries |> Option.map (fun e -> e.data)

(** Oldest pending entry, without removing it. *)
let peek (t : t) : entry option =
  match t.entries with [] -> None | e :: _ -> Some e

(** OS-side: remove the entry for [addr] once handled.  Clearing an entry
    may un-stall the device. *)
let clear (t : t) ~(addr : int) : bool =
  let before = List.length t.entries in
  t.entries <- List.filter (fun e -> e.addr <> addr) t.entries;
  let removed = List.length t.entries < before in
  if removed && t.stalled && occupancy t < t.watermark then t.stalled <- false;
  removed

(** All pending entries, oldest first (the OS drains in FIFO order). *)
let pending (t : t) : entry list = t.entries

type stats = {
  insertions : int;
  invalidations : int;
  max_occupancy : int;
  stall_events : int;
}

let stats (t : t) : stats =
  {
    insertions = t.total_insertions;
    invalidations = t.total_invalidations;
    max_occupancy = t.max_occupancy;
    stall_events = t.stall_events;
  }
