lib/pcm/device.ml: Array Bitset Bytes Failure_buffer Geometry Hashtbl Holes_stdx List Redirect Wear Xrng
