lib/pcm/wear.ml: Holes_stdx
