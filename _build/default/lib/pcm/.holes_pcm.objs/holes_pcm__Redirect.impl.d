lib/pcm/redirect.ml: Array Fun Geometry List
