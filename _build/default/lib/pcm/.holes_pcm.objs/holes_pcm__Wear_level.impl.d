lib/pcm/wear_level.ml: Array Fun
