lib/pcm/geometry.ml:
