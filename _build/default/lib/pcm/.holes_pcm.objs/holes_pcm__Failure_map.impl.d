lib/pcm/failure_map.ml: Array Bitset Float Fun Geometry Holes_stdx Xrng
