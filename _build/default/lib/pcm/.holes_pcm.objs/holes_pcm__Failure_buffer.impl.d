lib/pcm/failure_buffer.ml: Bytes List Option
