(** Start-gap wear leveling (Qureshi et al., MICRO 2009 — cited as [17]).

    The paper argues (Sec. 7.2, "Wear Leveling Considered Harmful") that
    uniformly wearing memory spreads failures out, fragmenting it, while
    concentrated wear keeps failures clustered and is more transparent to
    failure-aware software.  We implement start-gap so the ablation in
    [bench wearlevel] can compare leveled and unleveled wear-out under the
    failure-aware runtime.

    Start-gap maps N logical lines onto N+1 physical slots.  One slot — the
    gap — holds no data.  Every [psi] writes, the line adjacent to the gap
    moves into it and the gap advances by one; after the gap traverses the
    whole region, every line has shifted by one slot.  We maintain the
    permutation explicitly (swapping into the gap), which keeps the model
    honest (it is a permutation by construction) at O(1) per move. *)

type t = {
  n : int;  (** logical lines *)
  psi : int;  (** writes between gap movements *)
  map : int array;  (** logical line -> physical slot, size n *)
  slot_of : int array;  (** physical slot -> logical line or -1 for the gap *)
  mutable gap : int;  (** physical slot currently empty *)
  mutable writes_since_move : int;
  mutable gap_moves : int;  (** total gap movements (each costs one line copy) *)
}

let create ?(psi = 100) ~(nlines : int) () : t =
  if nlines <= 0 then invalid_arg "Wear_level.create: nlines must be positive";
  if psi <= 0 then invalid_arg "Wear_level.create: psi must be positive";
  {
    n = nlines;
    psi;
    map = Array.init nlines Fun.id;
    slot_of = Array.init (nlines + 1) (fun s -> if s = nlines then -1 else s);
    gap = nlines;
    writes_since_move = 0;
    gap_moves = 0;
  }

(** Physical slot currently holding logical line [l]. *)
let translate (t : t) (l : int) : int =
  if l < 0 || l >= t.n then invalid_arg "Wear_level.translate: out of range";
  t.map.(l)

let move_gap (t : t) : unit =
  (* the line in the slot "before" the gap (cyclically) moves into the gap *)
  let prev = (t.gap + t.n) mod (t.n + 1) in
  let l = t.slot_of.(prev) in
  if l >= 0 then begin
    t.map.(l) <- t.gap;
    t.slot_of.(t.gap) <- l
  end
  else t.slot_of.(t.gap) <- -1;
  t.slot_of.(prev) <- -1;
  t.gap <- prev;
  t.gap_moves <- t.gap_moves + 1

(** Account one write to logical line [l]; returns the physical slot that
    absorbed the write.  Triggers a gap move every [psi] writes. *)
let write (t : t) (l : int) : int =
  let slot = translate t l in
  t.writes_since_move <- t.writes_since_move + 1;
  if t.writes_since_move >= t.psi then begin
    t.writes_since_move <- 0;
    move_gap t
  end;
  slot

let gap_moves (t : t) : int = t.gap_moves

(** Invariant check for property tests: [map]/[slot_of] are mutually
    inverse and exactly one slot is the gap. *)
let is_consistent (t : t) : bool =
  let gap_count = ref 0 in
  Array.iter (fun l -> if l = -1 then incr gap_count) t.slot_of;
  !gap_count = 1
  && t.slot_of.(t.gap) = -1
  && Array.for_all Fun.id (Array.init t.n (fun l -> t.slot_of.(t.map.(l)) = l))
