(* Observability tests: histogram bucket math, Chrome-trace shape from
   a real device-backend trial (balanced spans, monotone lanes, events
   from all pipeline layers), and the zero-overhead guarantee — the same
   trial with tracing disabled yields bit-identical metrics. *)

module Stats = Holes_obs.Stats
module Trace = Holes_obs.Trace
module Cfg = Holes.Config
module Pcm = Holes_pcm
module Runner = Holes_exp.Runner
module Job = Holes_engine.Job

let check = Alcotest.check

let device_cfg ?(endurance = 5.0) () : Cfg.t =
  let d = Cfg.default_device in
  let wear = { d.Cfg.wear with Pcm.Wear.mean_endurance = endurance } in
  { Cfg.default with Cfg.backend = Cfg.Device { d with Cfg.wear } }

let traced_spec () : Job.spec =
  { Job.cfg = device_cfg (); profile = Holes_workload.Dacapo.pmd; scale = 0.2; seed_index = 0 }

(* ------------------------------------------------------------------ *)
(* Stats: counters and log2-bucket histograms                          *)
(* ------------------------------------------------------------------ *)

let test_counter () =
  let c = Stats.counter () in
  check Alcotest.int "fresh counter" 0 (Stats.value c);
  Stats.incr c;
  Stats.add c 41;
  check Alcotest.int "incr + add" 42 (Stats.value c)

(* Bucket b (for b >= 1) covers [2^(b-1), 2^b); bucket 0 is v < 1. *)
let test_hist_buckets () =
  check Alcotest.int "b(0)" 0 (Stats.bucket_of 0.0);
  check Alcotest.int "b(0.5)" 0 (Stats.bucket_of 0.5);
  check Alcotest.int "b(1)" 1 (Stats.bucket_of 1.0);
  check Alcotest.int "b(1.99)" 1 (Stats.bucket_of 1.99);
  check Alcotest.int "b(2)" 2 (Stats.bucket_of 2.0);
  check Alcotest.int "b(3.99)" 2 (Stats.bucket_of 3.99);
  check Alcotest.int "b(1024)" 11 (Stats.bucket_of 1024.0);
  check Alcotest.bool "huge value stays in range" true
    (Stats.bucket_of 1.0e300 < Stats.nbuckets)

let test_hist_observe () =
  let h = Stats.hist () in
  check Alcotest.int "empty count" 0 (Stats.count h);
  List.iter (Stats.observe h) [ 0.0; 0.5; 1.0; 1.5; 2.0; 3.9; 4.0; 1000.0 ];
  check Alcotest.int "count" 8 (Stats.count h);
  check (Alcotest.float 1e-9) "total" 1012.9 (Stats.total h);
  check (Alcotest.float 1e-9) "mean" (1012.9 /. 8.0) (Stats.mean h);
  check (Alcotest.float 1e-9) "min" 0.0 (Stats.min_value h);
  check (Alcotest.float 1e-9) "max" 1000.0 (Stats.max_value h)

let test_hist_quantile () =
  let h = Stats.hist () in
  for i = 1 to 100 do
    Stats.observe h (float_of_int i)
  done;
  (* quantiles are bucket-resolution estimates, clamped to [min, max] *)
  let q0 = Stats.quantile h 0.0 and q50 = Stats.quantile h 0.5 and q100 = Stats.quantile h 1.0 in
  check Alcotest.bool "q0 >= min" true (q0 >= Stats.min_value h);
  check Alcotest.bool "q100 <= max" true (q100 <= Stats.max_value h);
  check Alcotest.bool "quantile monotone" true (q0 <= q50 && q50 <= q100);
  (* p50 of 1..100 must land within the enclosing power-of-two bucket *)
  check Alcotest.bool "p50 plausible" true (q50 >= 32.0 && q50 <= 128.0)

(* Sub-bucket interpolation against a sorted-array reference: the
   rank-based reference quantile is sorted.(ceil(q*n) - 1); the
   interpolated estimate must stay inside the reference value's log2
   bucket (error < one bucket width), be monotone in q, and hit the
   exact max at q = 1. *)
let test_hist_quantile_interp () =
  let reference (xs : float array) (q : float) : float =
    let n = Array.length xs in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
    xs.(rank - 1)
  in
  let check_against (name : string) (xs : float array) : unit =
    Array.sort compare xs;
    let h = Stats.hist () in
    Array.iter (Stats.observe h) xs;
    check (Alcotest.float 1e-9)
      (name ^ ": q=1 is the exact max")
      (Stats.max_value h)
      (Stats.quantile ~interp:true h 1.0);
    List.iter
      (fun q ->
        let est = Stats.quantile ~interp:true h q in
        let ref_v = reference xs q in
        check Alcotest.bool
          (Printf.sprintf "%s: q=%.3f within observed range" name q)
          true
          (est >= Stats.min_value h && est <= Stats.max_value h);
        (* same bucket as the reference rank => error < one bucket width *)
        let b = Stats.bucket_of ref_v in
        let lo = if b = 0 then 0.0 else Float.ldexp 1.0 (b - 1) in
        let hi = Float.ldexp 1.0 b in
        check Alcotest.bool
          (Printf.sprintf "%s: q=%.3f within reference bucket [%g,%g)" name q lo hi)
          true
          (est >= lo && est <= hi))
      [ 0.0; 0.25; 0.5; 0.9; 0.99; 0.999 ];
    (* monotone in q *)
    let prev = ref neg_infinity in
    List.iter
      (fun q ->
        let est = Stats.quantile ~interp:true h q in
        check Alcotest.bool (name ^ ": monotone in q") true (est >= !prev);
        prev := est)
      [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.95; 0.99; 1.0 ]
  in
  check_against "uniform 1..1000" (Array.init 1000 (fun i -> float_of_int (i + 1)));
  check_against "powers-ish"
    (Array.init 500 (fun i -> Float.ldexp 1.0 (i mod 12) *. (1.0 +. (float_of_int i /. 997.0))));
  check_against "heavy tail"
    (Array.init 300 (fun i ->
         let x = float_of_int (i + 1) /. 300.0 in
         1.0 /. ((1.0 -. (0.999 *. x)) ** 2.0)));
  check_against "single value" (Array.make 10 42.0);
  (* interpolation strictly refines: the estimate never exceeds the
     historical bucket-upper-bound estimator *)
  let h = Stats.hist () in
  for i = 1 to 100 do
    Stats.observe h (float_of_int i)
  done;
  List.iter
    (fun q ->
      check Alcotest.bool "interp <= bucket upper bound" true
        (Stats.quantile ~interp:true h q <= Stats.quantile h q))
    [ 0.1; 0.5; 0.9; 0.99; 1.0 ]

let test_hist_merge () =
  let a = Stats.hist () and b = Stats.hist () in
  List.iter (Stats.observe a) [ 1.0; 2.0 ];
  List.iter (Stats.observe b) [ 100.0; 200.0 ];
  let m = Stats.merged [ a; b ] in
  check Alcotest.int "merged count" 4 (Stats.count m);
  check (Alcotest.float 1e-9) "merged total" 303.0 (Stats.total m);
  check (Alcotest.float 1e-9) "merged min" 1.0 (Stats.min_value m);
  check (Alcotest.float 1e-9) "merged max" 200.0 (Stats.max_value m);
  (* merged built its own hist: the sources are untouched *)
  check Alcotest.int "source a intact" 2 (Stats.count a);
  let c = Stats.copy a in
  Stats.observe c 7.0;
  check Alcotest.int "copy is independent" 2 (Stats.count a)

let test_hist_fields () =
  let h = Stats.hist () in
  List.iter (Stats.observe h) [ 2.0; 4.0; 8.0 ];
  let fields = Stats.to_fields ~prefix:"pause_ns" h in
  List.iter
    (fun k ->
      check Alcotest.bool (k ^ " present") true (List.mem_assoc k fields))
    [ "pause_ns_count"; "pause_ns_mean"; "pause_ns_p50"; "pause_ns_p99"; "pause_ns_max" ];
  check (Alcotest.float 1e-9) "count field" 3.0 (List.assoc "pause_ns_count" fields);
  check Alcotest.bool "summary non-empty" true (String.length (Stats.summary_string h) > 0)

(* ------------------------------------------------------------------ *)
(* A minimal JSON reader, enough to validate [Trace.render] output     *)
(* ------------------------------------------------------------------ *)

exception Bad_json of string

let validate_json (s : string) : unit =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let string_lit () =
    expect '"';
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            pos := !pos + 2;
            go ()
        | _ ->
            incr pos;
            go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "expected number"
  in
  let literal w =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then pos := !pos + l else fail ("expected " ^ w)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then incr pos
        else
          let rec members () =
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | Some '}' -> incr pos
            | _ -> fail "expected , or } in object"
          in
          members ()
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then incr pos
        else
          let rec elements () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected , or ] in array"
          in
          elements ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

(* ------------------------------------------------------------------ *)
(* Trace shape from a real traced device trial                         *)
(* ------------------------------------------------------------------ *)

(* One low-endurance device trial through the engine job body, exactly
   as [holes_run --trace] drives it. *)
let traced_events () : Trace.t * Trace.event list =
  let tr = Trace.create () in
  Runner.set_tracer (Some tr);
  Runner.clear_cache ();
  Fun.protect
    ~finally:(fun () ->
      Runner.set_tracer None;
      Runner.clear_cache ())
    (fun () ->
      let spec = traced_spec () in
      let (_ : Runner.raw_trial) = Runner.trial_of_spec spec ~seed:(Job.seed spec) in
      (tr, Trace.events tr))

let test_trace_layers () =
  let tr, evs = traced_events () in
  check Alcotest.bool "trace non-empty" true (evs <> []);
  check Alcotest.int "nothing dropped" 0 (Trace.dropped tr);
  let has tid = List.exists (fun (e : Trace.event) -> e.Trace.tid = tid) evs in
  (* the acceptance bar: spans/instants from >= 4 pipeline layers *)
  check Alcotest.bool "engine lane" true (has Trace.tid_engine);
  check Alcotest.bool "core GC lane" true (has Trace.tid_gc);
  check Alcotest.bool "osal lane" true (has Trace.tid_osal);
  check Alcotest.bool "pcm lane" true (has Trace.tid_pcm)

(* Per (pid, tid) lane: B/E properly nested with matching names, and
   timestamps non-decreasing in emission order. *)
let test_trace_well_formed () =
  let _, evs = traced_events () in
  let lanes : (int * int, Trace.event list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      let key = (e.Trace.pid, e.Trace.tid) in
      match Hashtbl.find_opt lanes key with
      | Some l -> l := e :: !l
      | None -> Hashtbl.replace lanes key (ref [ e ]))
    evs;
  Hashtbl.iter
    (fun (pid, tid) l ->
      let lane = List.rev !l in
      let where = Printf.sprintf "pid=%d tid=%d" pid tid in
      let stack = ref [] in
      let last_ts = ref neg_infinity in
      List.iter
        (fun (e : Trace.event) ->
          check Alcotest.bool (where ^ " ts monotone") true (e.Trace.ts >= !last_ts);
          last_ts := e.Trace.ts;
          match e.Trace.ph with
          | Trace.Begin -> stack := e.Trace.name :: !stack
          | Trace.End -> (
              match !stack with
              | top :: rest ->
                  check Alcotest.string (where ^ " E matches B") top e.Trace.name;
                  stack := rest
              | [] -> Alcotest.fail (where ^ ": E without matching B: " ^ e.Trace.name))
          | Trace.Instant | Trace.Counter -> ())
        lane;
      check Alcotest.int (where ^ " spans all closed") 0 (List.length !stack))
    lanes

let test_trace_render_json () =
  let tr, _ = traced_events () in
  let json = Trace.render tr in
  (match validate_json json with
  | () -> ()
  | exception Bad_json msg -> Alcotest.fail ("render is not valid JSON: " ^ msg));
  (* the JSON-array flavour of the trace_event format *)
  check Alcotest.bool "trace_event array" true
    (String.length json >= 2 && json.[0] = '[');
  (* the Perfetto-facing fields must appear somewhere in the payload *)
  List.iter
    (fun needle ->
      let present =
        let nl = String.length needle and jl = String.length json in
        let rec at i = i + nl <= jl && (String.sub json i nl = needle || at (i + 1)) in
        at 0
      in
      check Alcotest.bool (needle ^ " in payload") true present)
    [ "\"ph\""; "\"process_name\""; "\"thread_name\""; "full_gc" ]

let test_trace_ring_drops_oldest () =
  let tr = Trace.create ~capacity:8 () in
  let v = Trace.view tr ~pid:1 in
  for i = 1 to 20 do
    Trace.instant v ~tid:0 (Printf.sprintf "i%d" i)
  done;
  check Alcotest.int "dropped count" 12 (Trace.dropped tr);
  let evs = Trace.events tr in
  check Alcotest.int "ring keeps capacity" 8 (List.length evs);
  check Alcotest.string "oldest evicted first" "i13"
    (match evs with e :: _ -> e.Trace.name | [] -> "")

(* ------------------------------------------------------------------ *)
(* Zero overhead: tracing off is bit-identical to tracing on           *)
(* ------------------------------------------------------------------ *)

let test_disabled_tracing_bit_identical () =
  let spec = traced_spec () in
  let seed = Job.seed spec in
  let plain =
    Runner.set_tracer None;
    Runner.clear_cache ();
    Runner.trial_of_spec spec ~seed
  in
  let traced =
    let tr = Trace.create () in
    Runner.set_tracer (Some tr);
    Runner.clear_cache ();
    Fun.protect
      ~finally:(fun () ->
        Runner.set_tracer None;
        Runner.clear_cache ())
      (fun () -> Runner.trial_of_spec spec ~seed)
  in
  check Alcotest.bool "completion agrees" plain.Runner.r_completed traced.Runner.r_completed;
  check Alcotest.bool "metrics bit-identical" true
    (plain.Runner.r_metrics = traced.Runner.r_metrics);
  check Alcotest.int "borrowed identical" plain.Runner.r_borrowed traced.Runner.r_borrowed;
  (* and therefore the JSONL payload is identical field for field *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.0)))
    "sink fields identical"
    (Runner.sink_metrics plain) (Runner.sink_metrics traced)

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter;
    Alcotest.test_case "hist bucket boundaries" `Quick test_hist_buckets;
    Alcotest.test_case "hist observe/count/mean" `Quick test_hist_observe;
    Alcotest.test_case "hist quantile clamps" `Quick test_hist_quantile;
    Alcotest.test_case "hist quantile interpolation vs reference" `Quick
      test_hist_quantile_interp;
    Alcotest.test_case "hist merge and copy" `Quick test_hist_merge;
    Alcotest.test_case "hist to_fields" `Quick test_hist_fields;
    Alcotest.test_case "trace covers 4+ layers" `Quick test_trace_layers;
    Alcotest.test_case "trace lanes well-formed" `Quick test_trace_well_formed;
    Alcotest.test_case "trace renders valid JSON" `Quick test_trace_render_json;
    Alcotest.test_case "trace ring drops oldest" `Quick test_trace_ring_drops_oldest;
    Alcotest.test_case "tracing off is bit-identical" `Quick test_disabled_tracing_bit_identical;
  ]
