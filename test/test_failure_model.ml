(* Statistical tests for the adversarial failure models: generated maps
   and event streams must match their configured parameters, and the
   paranoid verifier must be observationally free (identical Metrics
   with the verifier on and off). *)

open Holes_stdx
module Fm = Holes_pcm.Failure_model
module Wear = Holes_pcm.Wear
module Cfg = Holes.Config

let check = Alcotest.check

let within ~(tol : float) (msg : string) (expected : float) (actual : float) =
  if Float.abs (actual -. expected) > tol *. expected then
    Alcotest.failf "%s: expected %.3f within %.0f%%, got %.3f" msg expected (100.0 *. tol)
      actual

(* -- spatial correlation ------------------------------------------- *)

let test_correlated_mean_cluster () =
  let nlines = 1 lsl 17 in
  let rate = 0.10 in
  List.iter
    (fun mean_cluster ->
      let rng = Xrng.of_seed 11 in
      let map =
        Fm.correlated_map rng ~nlines ~rate ~mean_cluster ~region_lines:64
      in
      (* exact failure count, independent of clustering *)
      check Alcotest.int "failed lines"
        (int_of_float (Float.round (rate *. float_of_int nlines)))
        (Bitset.count map);
      (* clusters are geometric with the configured mean, clipped at
         aligned region boundaries, and adjacent clusters can merge —
         clipping pushes the observed mean down, merging up.  ±25%
         brackets both effects at 10% occupancy. *)
      within ~tol:0.25 "mean cluster size" mean_cluster (Fm.mean_cluster_size map))
    [ 2.0; 4.0; 8.0 ]

let test_correlated_is_clustered () =
  (* the whole point: at equal rates, the correlated map must have far
     fewer, larger clusters than the uniform map *)
  let nlines = 1 lsl 16 in
  let rng = Xrng.of_seed 3 in
  let corr = Fm.correlated_map rng ~nlines ~rate:0.2 ~mean_cluster:8.0 ~region_lines:64 in
  let uni = Holes_pcm.Failure_map.uniform (Xrng.of_seed 3) ~nlines ~rate:0.2 in
  check Alcotest.int "same count" (Bitset.count uni) (Bitset.count corr);
  let mc = Fm.mean_cluster_size corr and mu = Fm.mean_cluster_size uni in
  if mc < 2.0 *. mu then
    Alcotest.failf "correlated map not clustered: corr mean %.2f vs uniform %.2f" mc mu

(* -- endurance variation ------------------------------------------- *)

let test_variation_cov () =
  List.iter
    (fun (shape, cov) ->
      let rng = Xrng.of_seed 5 in
      let fs = Fm.draw_factors rng ~shape ~cov ~n:200_000 in
      within ~tol:0.05 "endurance CoV" cov (Fm.cov_of fs);
      (* mean-1 factors: scaling endurance, not shifting it *)
      within ~tol:0.05 "factor mean" 1.0
        (Array.fold_left ( +. ) 0.0 fs /. float_of_int (Array.length fs)))
    [ (Wear.Lognormal, 0.2); (Wear.Lognormal, 0.4); (Wear.Gaussian, 0.3) ]

let test_variation_map_is_weakest_k () =
  let nlines = 4096 and rate = 0.25 in
  let rng = Xrng.of_seed 7 in
  let map = Fm.variation_map rng ~nlines ~rate ~cov:0.3 ~shape:Wear.Lognormal in
  check Alcotest.int "failed lines"
    (int_of_float (Float.round (rate *. float_of_int nlines)))
    (Bitset.count map)

(* -- storms and adversarial timing --------------------------------- *)

let test_storm_statistics () =
  let spec = Fm.Storm { mean_burst = 6.0; period_bytes = 50_000 } in
  let rng = Xrng.of_seed 13 in
  let n = 20_000 in
  let sum_i = ref 0 and sum_b = ref 0 in
  for _ = 1 to n do
    sum_i := !sum_i + Fm.next_interval spec rng;
    sum_b := !sum_b + Fm.burst_size spec rng
  done;
  within ~tol:0.05 "mean storm interval" 50_000.0 (float_of_int !sum_i /. float_of_int n);
  within ~tol:0.05 "mean burst size" 6.0 (float_of_int !sum_b /. float_of_int n)

let test_adversarial_is_exact () =
  let spec = Fm.Adversarial { period_bytes = 4096 } in
  let rng = Xrng.of_seed 17 in
  for _ = 1 to 100 do
    check Alcotest.int "exact period" 4096 (Fm.next_interval spec rng);
    check Alcotest.int "single strike" 1 (Fm.burst_size spec rng)
  done

(* -- CLI round-trip ------------------------------------------------ *)

let test_cli_roundtrip () =
  List.iter
    (fun spec ->
      match Fm.of_cli (Fm.to_cli spec) with
      | Ok s -> check Alcotest.string "round trip" (Fm.name spec) (Fm.name s)
      | Error m -> Alcotest.failf "of_cli (to_cli %s) failed: %s" (Fm.name spec) m)
    [
      Fm.Correlated { mean_cluster = 4.0; region_lines = 64 };
      Fm.Variation { cov = 0.3; shape = Wear.Lognormal };
      Fm.Variation { cov = 0.25; shape = Wear.Gaussian };
      Fm.Storm { mean_burst = 8.0; period_bytes = 65536 };
      Fm.Adversarial { period_bytes = 32768 };
    ];
  match Fm.of_cli "corr:0" with
  | Ok _ -> Alcotest.fail "expected rejection of corr:0"
  | Error _ -> ()

(* -- verifier transparency ----------------------------------------- *)

(* verifier-on and verifier-off runs of the same configuration must
   produce bit-identical Metrics (the verify counters themselves are
   excluded from [to_fields]) *)
let test_verifier_observationally_free () =
  List.iter
    (fun model ->
      let base =
        {
          Cfg.default with
          Cfg.failure_rate = 0.25;
          failure_model = model;
          seed = 91;
        }
      in
      let run verify =
        let cfg = { base with Cfg.verify } in
        let vm = Holes.Vm.create ~cfg ~min_heap_bytes:(384 * 1024) () in
        let profile =
          Holes_workload.Profile.scaled Holes_workload.Dacapo.avrora 0.02
        in
        let res = Holes_workload.Generator.run ~rng:(Xrng.of_seed 23) vm profile in
        Holes.Metrics.to_fields res.Holes_workload.Generator.metrics
      in
      let off = run false and on = run true in
      check
        Alcotest.(list (pair string (float 0.0)))
        "metrics identical" off on)
    [
      Cfg.From_dist;
      Cfg.Model (Fm.Correlated { mean_cluster = 4.0; region_lines = 64 });
      Cfg.Model (Fm.Storm { mean_burst = 4.0; period_bytes = 65536 });
    ]

let suite =
  [
    ("correlated: mean cluster size", `Quick, test_correlated_mean_cluster);
    ("correlated: beats uniform clustering", `Quick, test_correlated_is_clustered);
    ("variation: CoV matches parameter", `Quick, test_variation_cov);
    ("variation: weakest-k count", `Quick, test_variation_map_is_weakest_k);
    ("storm: interval and burst statistics", `Quick, test_storm_statistics);
    ("adversarial: exact cadence", `Quick, test_adversarial_is_exact);
    ("cli round-trip", `Quick, test_cli_roundtrip);
    ("verifier on/off: identical metrics", `Quick, test_verifier_observationally_free);
  ]
