(* End-to-end integration tests across the whole stack: device → OS →
   runtime, workloads under combined static + dynamic failures, and
   cross-configuration consistency properties. *)

module Cfg = Holes.Config
module Vm = Holes.Vm
module Metrics = Holes.Metrics
module OT = Holes_heap.Object_table
module Pcm = Holes_pcm
module Osal = Holes_osal
module Bitset = Holes_stdx.Bitset
module Xrng = Holes_stdx.Xrng

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Device -> OS -> failure map -> runtime pipeline                     *)
(* ------------------------------------------------------------------ *)

(* Age a clustered device with skewed traffic, export the OS failure
   table as a VM failure map, and run a workload on it: the full
   "memory got old, software adapts" story. *)
let test_aged_device_feeds_runtime () =
  let pages = 64 in
  let device =
    Pcm.Device.create
      ~config:
        {
          Pcm.Device.pages;
          wear = { Pcm.Wear.mean_endurance = 300.0; sigma = 0.3; ecp_entries = 1; ecp_extension = 0.1 };
          clustering = Some 2;
          buffer_capacity = 16;
          caram = None;
          wear_level = None;
        }
      ~seed:3 ()
  in
  let vmm = Osal.Vmm.create ~dram_pages:2 ~pcm_pages:pages () in
  let handler = Osal.Interrupts.attach ~vmm ~device ~dram_pages:2 () in
  let rng = Xrng.of_seed 17 in
  let zipf = Holes_stdx.Dist.zipf_sampler ~n:(Pcm.Device.nlines device) ~s:0.9 in
  let payload = Bytes.make Pcm.Geometry.line_bytes 'w' in
  let writes = ref 0 in
  while List.length (Pcm.Device.unusable_lines device) < 256 && !writes < 3_000_000 do
    (match Pcm.Device.write device (zipf rng - 1) payload with
    | Pcm.Device.Stalled -> ignore (Osal.Interrupts.service handler)
    | _ -> ());
    incr writes
  done;
  ignore (Osal.Interrupts.service handler);
  (* export the OS failure table into a device-wide map *)
  let table = Osal.Vmm.failure_table vmm in
  let nlines = pages * Pcm.Geometry.lines_per_page in
  let exported = Bitset.create nlines in
  for p = 0 to pages - 1 do
    let bm = Osal.Failure_table.get table ~page:p in
    for i = 0 to Pcm.Geometry.lines_per_page - 1 do
      if Bitset.get bm i then Bitset.set exported ((p * Pcm.Geometry.lines_per_page) + i)
    done
  done;
  let failed = Bitset.count exported in
  Alcotest.(check bool) "device accumulated failures" true (failed >= 200);
  (* clustering means the exported map still leaves whole perfect pages *)
  Alcotest.(check bool) "clustered map preserves perfect pages" true
    (Pcm.Failure_map.perfect_pages exported > 0);
  (* run a real workload on the aged memory *)
  let profile = Holes_workload.Profile.scaled Holes_workload.Dacapo.luindex 0.1 in
  let device_map ~npages =
    (* tile the aged map across the heap *)
    let out = Bitset.create (npages * Pcm.Geometry.lines_per_page) in
    for i = 0 to (npages * Pcm.Geometry.lines_per_page) - 1 do
      if Bitset.get exported (i mod nlines) then Bitset.set out i
    done;
    out
  in
  let vm =
    Vm.create
      ~cfg:{ Cfg.default with Cfg.failure_rate = Pcm.Failure_map.rate exported }
      ~device_map
      ~min_heap_bytes:(Holes_workload.Profile.min_heap profile)
      ()
  in
  let res = Holes_workload.Generator.run ~rng:(Xrng.of_seed 5) vm profile in
  Alcotest.(check bool) "workload completes on aged memory" true
    res.Holes_workload.Generator.completed;
  match Vm.check_invariants vm with Ok () -> () | Error m -> Alcotest.fail m

(* static failures + a stream of dynamic failures during execution *)
let test_static_plus_dynamic_failures () =
  let cfg = { Cfg.default with Cfg.failure_rate = 0.15; failure_dist = Cfg.Hw_cluster 2 } in
  let profile = Holes_workload.Profile.scaled Holes_workload.Dacapo.bloat 0.08 in
  let vm = Vm.create ~cfg ~min_heap_bytes:(Holes_workload.Profile.min_heap profile) () in
  let rng = Xrng.of_seed 77 in
  let live = Queue.create () in
  let injected = ref 0 in
  for i = 1 to 30_000 do
    let size = 16 + Xrng.int rng 600 in
    let id = Vm.alloc vm ~size () in
    Queue.push id live;
    if Queue.length live > 300 then Vm.kill vm (Queue.pop live);
    if i mod 3000 = 0 then begin
      (* a line fails under a random live object *)
      let victim = Queue.peek live in
      if OT.is_alive (Vm.objects vm) victim && not (OT.is_los (Vm.objects vm) victim) then begin
        Vm.dynamic_failure vm ~id:victim;
        incr injected;
        Alcotest.(check bool) "victim survived relocation" true
          (OT.is_alive (Vm.objects vm) victim)
      end
    end
  done;
  Alcotest.(check bool) "several dynamic failures injected" true (!injected >= 5);
  match Vm.check_invariants vm with Ok () -> () | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Cross-configuration consistency                                     *)
(* ------------------------------------------------------------------ *)

(* compensation keeps usable memory constant (Sec. 6.2) at the PCM-line
   granularity *)
let test_compensation_preserves_usable_bytes () =
  let usable cfg =
    let vm = Vm.create ~cfg ~min_heap_bytes:(2 * 1024 * 1024) () in
    let stock = Vm.stock vm in
    Holes_heap.Page_stock.free_usable_bytes stock
  in
  let base = usable { Cfg.default with Cfg.line_size = 64 } in
  let at_30 = usable { Cfg.default with Cfg.line_size = 64; failure_rate = 0.30 } in
  let ratio = float_of_int at_30 /. float_of_int base in
  Alcotest.(check bool)
    (Printf.sprintf "usable bytes preserved within 2%% (ratio %.4f)" ratio)
    true
    (ratio > 0.98 && ratio < 1.02)

(* identical traces, increasing failure rates: modeled time must be
   monotone non-decreasing (within a small tolerance) under clustering *)
let test_overhead_monotone_in_failures () =
  let profile = Holes_workload.Profile.scaled Holes_workload.Dacapo.jython 0.08 in
  let tr = Holes_workload.Trace.record ~seed:9 profile in
  let time rate =
    let cfg =
      if rate = 0.0 then Cfg.default
      else { Cfg.default with Cfg.failure_rate = rate; failure_dist = Cfg.Hw_cluster 2 }
    in
    let vm = Vm.create ~cfg ~min_heap_bytes:(Holes_workload.Profile.min_heap profile) () in
    let res = Holes_workload.Trace.replay vm tr in
    Alcotest.(check bool) "completes" true res.Holes_workload.Generator.completed;
    res.Holes_workload.Generator.elapsed_ms
  in
  let t0 = time 0.0 and t25 = time 0.25 and t50 = time 0.50 in
  Alcotest.(check bool) "failures never speed things up materially" true
    (t25 >= t0 *. 0.97 && t50 >= t0 *. 0.97)

(* the four collectors produce the same *semantics* on one trace: same
   completion, same survivor set *)
let test_collectors_agree_on_semantics () =
  let profile = Holes_workload.Profile.scaled Holes_workload.Dacapo.avrora 0.05 in
  let tr = Holes_workload.Trace.record ~seed:12 profile in
  let survivors coll =
    let vm =
      Vm.create ~cfg:{ Cfg.default with Cfg.collector = coll }
        ~min_heap_bytes:(Holes_workload.Profile.min_heap profile) ()
    in
    let res = Holes_workload.Trace.replay vm tr in
    Alcotest.(check bool) "completed" true res.Holes_workload.Generator.completed;
    OT.live_count (Vm.objects vm)
  in
  let s_ms = survivors Cfg.Mark_sweep in
  let s_ix = survivors Cfg.Immix in
  let s_sms = survivors Cfg.Sticky_ms in
  let s_six = survivors Cfg.Sticky_immix in
  check Alcotest.int "MS = IX survivors" s_ms s_ix;
  check Alcotest.int "IX = S-MS survivors" s_ix s_sms;
  check Alcotest.int "S-MS = S-IX survivors" s_sms s_six

(* line-size sweep at fixed failures: identical *usable* line budgets
   must shrink as lines grow (false failures, Sec. 6.2) *)
let test_false_failures_grow_with_line_size () =
  let usable line_size =
    let cfg =
      { Cfg.default with Cfg.line_size; failure_rate = 0.20; compensate = false }
    in
    let vm = Vm.create ~cfg ~min_heap_bytes:(2 * 1024 * 1024) () in
    let stock = Vm.stock vm in
    (* count usable logical lines over all pages *)
    let total = ref 0 in
    for p = 0 to Holes_heap.Page_stock.npages stock - 1 do
      let page = Holes_heap.Page_stock.page stock p in
      total := !total + page.Holes_heap.Page_stock.usable_logical
    done;
    !total * line_size
  in
  let u64 = usable 64 and u128 = usable 128 and u256 = usable 256 in
  Alcotest.(check bool)
    (Printf.sprintf "usable bytes shrink with line size (%d >= %d >= %d)" u64 u128 u256)
    true
    (u64 >= u128 && u128 >= u256);
  (* at 20% uniform the false-failure loss for 256B lines is severe *)
  Alcotest.(check bool) "L256 loses over 2x more than L64" true
    (float_of_int u64 /. float_of_int u256 > 1.5)

(* clustering removes the false-failure loss *)
let test_clustering_removes_false_failures () =
  let usable dist =
    let cfg =
      { Cfg.default with Cfg.failure_rate = 0.20; failure_dist = dist; compensate = false }
    in
    let vm = Vm.create ~cfg ~min_heap_bytes:(2 * 1024 * 1024) () in
    let stock = Vm.stock vm in
    let total = ref 0 in
    for p = 0 to Holes_heap.Page_stock.npages stock - 1 do
      total := !total + (Holes_heap.Page_stock.page stock p).Holes_heap.Page_stock.usable_logical
    done;
    !total
  in
  Alcotest.(check bool) "2CL preserves many more usable lines" true
    (usable (Cfg.Hw_cluster 2) > usable Cfg.Uniform * 5 / 4)

(* pause ordering: the benchmark with the largest live set has the
   largest full-heap pause (the paper's hsqldb observation, Sec. 4.2) *)
let test_pause_ordering () =
  let pause profile =
    let profile = Holes_workload.Profile.scaled profile 0.15 in
    let vm = Vm.create ~min_heap_bytes:(Holes_workload.Profile.min_heap profile) () in
    let res = Holes_workload.Generator.run ~rng:(Xrng.of_seed 3) vm profile in
    Alcotest.(check bool) "completed" true res.Holes_workload.Generator.completed;
    (* force a full collection at peak live to measure the pause *)
    Vm.collect vm ~full:true;
    match (Vm.metrics vm).Metrics.pauses_ns with
    | [] -> 0.0
    | ps -> Holes_stdx.Stats.maximum ps
  in
  let hsqldb = pause Holes_workload.Dacapo.hsqldb in
  let luindex = pause Holes_workload.Dacapo.luindex in
  Alcotest.(check bool) "hsqldb pause dominates luindex" true (hsqldb > 2.0 *. luindex)

let suite =
  [
    ("aged device feeds runtime", `Slow, test_aged_device_feeds_runtime);
    ("static + dynamic failures", `Quick, test_static_plus_dynamic_failures);
    ("compensation preserves usable bytes", `Quick, test_compensation_preserves_usable_bytes);
    ("overhead monotone in failures", `Quick, test_overhead_monotone_in_failures);
    ("collectors agree on semantics", `Quick, test_collectors_agree_on_semantics);
    ("false failures grow with line size", `Quick, test_false_failures_grow_with_line_size);
    ("clustering removes false failures", `Quick, test_clustering_removes_false_failures);
    ("pause ordering", `Slow, test_pause_ordering);
  ]
