(* Tests for the parallel experiment engine: domain pool scheduling and
   exception isolation, deterministic job seeds, the JSONL sink, and the
   -j-independence contract (parallel outcomes bit-identical to
   sequential ones). *)

module Pool = Holes_engine.Pool
module Job = Holes_engine.Job
module Sink = Holes_engine.Sink
module Engine = Holes_engine.Engine
module R = Holes_exp.Runner
module Cfg = Holes.Config

let check = Alcotest.check

let contains (haystack : string) (needle : string) : bool =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---- pool ------------------------------------------------------------ *)

let test_pool_runs_all () =
  let pool = Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      check Alcotest.int "pool size" 3 (Pool.domains pool);
      let n = 25 in
      let results = Pool.run_all pool ~n ~f:(fun i -> i * i) in
      check Alcotest.int "one result per job" n (Array.length results);
      Array.iteri
        (fun i r ->
          match r.Pool.value with
          | Pool.Done v -> check Alcotest.int "result indexed by job" (i * i) v
          | Pool.Failed { exn; _ } -> Alcotest.failf "job %d failed: %s" i exn)
        results;
      Array.iter
        (fun r ->
          Alcotest.(check bool) "worker id in range" true (r.Pool.worker >= 0 && r.Pool.worker < 3))
        results)

let test_pool_captures_exceptions () =
  let pool = Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let results =
        Pool.run_all pool ~n:8 ~f:(fun i -> if i = 5 then failwith "trial crashed" else i)
      in
      Array.iteri
        (fun i r ->
          match (i, r.Pool.value) with
          | 5, Pool.Failed { exn; _ } ->
              Alcotest.(check bool) "exception text captured" true (contains exn "trial crashed")
          | 5, Pool.Done _ -> Alcotest.fail "job 5 should have failed"
          | _, Pool.Done v -> check Alcotest.int "other jobs unaffected" i v
          | _, Pool.Failed { exn; _ } -> Alcotest.failf "job %d failed: %s" i exn)
        results;
      (* the failure must not poison the pool for later batches *)
      let again = Pool.run_all pool ~n:4 ~f:(fun i -> i + 100) in
      Array.iteri
        (fun i r ->
          match r.Pool.value with
          | Pool.Done v -> check Alcotest.int "pool usable after failure" (i + 100) v
          | Pool.Failed { exn; _ } -> Alcotest.failf "post-failure job failed: %s" exn)
        again)

(* ---- job seeds ------------------------------------------------------- *)

let test_job_seeds_deterministic () =
  let spec i = { Job.cfg = Cfg.default; profile = Holes_workload.Dacapo.luindex; scale = 0.1; seed_index = i } in
  check Alcotest.int "seed is a pure function of the spec" (Job.seed (spec 0)) (Job.seed (spec 0));
  Alcotest.(check bool) "seed indices decorrelate" true (Job.seed (spec 0) <> Job.seed (spec 1));
  let other = { (spec 0) with Job.cfg = { Cfg.default with Cfg.failure_rate = 0.25 } } in
  Alcotest.(check bool) "configs decorrelate" true (Job.seed (spec 0) <> Job.seed other);
  Alcotest.(check bool) "seed non-negative" true (Job.seed (spec 0) >= 0)

(* ---- sink ------------------------------------------------------------ *)

let test_sink_jsonl_roundtrip () =
  let path = Filename.temp_file "holes_engine" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Sink.create ~path ~progress:false () in
      let seeds = 4 in
      let specs =
        Engine.plan ~cfgs:[ Cfg.default ] ~profiles:[ Holes_workload.Dacapo.luindex ]
          ~scale:0.05 ~seeds
      in
      let trials =
        Engine.run ~jobs:2 ~sink
          ~metrics:(fun v -> [ ("value", float_of_int v); ("pi", 3.25) ])
          ~f:(fun spec ~seed:_ -> 10 + spec.Job.seed_index)
          specs
      in
      Sink.close sink;
      check Alcotest.int "all jobs ran" seeds (Array.length trials);
      check Alcotest.int "sink counted every job" seeds (Sink.completed sink);
      let lines =
        let ic = open_in path in
        let rec go acc = match input_line ic with
          | l -> go (l :: acc)
          | exception End_of_file -> close_in ic; List.rev acc
        in
        go []
      in
      check Alcotest.int "one JSONL line per job" seeds (List.length lines);
      List.iter
        (fun l ->
          Alcotest.(check bool) "line is a JSON object" true
            (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}');
          Alcotest.(check bool) "records the config" true (contains l "\"config\":\"S-IX-L256\"");
          Alcotest.(check bool) "records the outcome" true (contains l "\"outcome\":\"ok\"");
          Alcotest.(check bool) "records the metrics" true (contains l "\"pi\":3.25"))
        lines;
      (* every trial appears exactly once, whatever the completion order *)
      List.iter
        (fun i ->
          let tag = Printf.sprintf "\"seed_index\":%d," i in
          check Alcotest.int (Printf.sprintf "seed index %d appears once" i) 1
            (List.length (List.filter (fun l -> contains l tag) lines)))
        [ 0; 1; 2; 3 ])

(* ---- engine failure isolation --------------------------------------- *)

let test_engine_failed_job_reported () =
  let specs =
    Engine.plan ~cfgs:[ Cfg.default ] ~profiles:[ Holes_workload.Dacapo.luindex ] ~scale:0.05
      ~seeds:4
  in
  let trials =
    Engine.run ~jobs:2
      ~f:(fun spec ~seed:_ ->
        if spec.Job.seed_index = 2 then failwith "boom" else spec.Job.seed_index)
      specs
  in
  Array.iteri
    (fun i t ->
      match (i, t.Engine.outcome) with
      | 2, Pool.Failed { exn; _ } ->
          Alcotest.(check bool) "failure captured" true (contains exn "boom")
      | 2, Pool.Done _ -> Alcotest.fail "job 2 should have failed"
      | i, Pool.Done v -> check Alcotest.int "other jobs fine" i v
      | i, Pool.Failed { exn; _ } -> Alcotest.failf "job %d failed: %s" i exn)
    trials

(* ---- -j independence ------------------------------------------------- *)

(* Outcomes contain only plain data (floats, ints, strings, Config.t),
   so structural equality is the bit-identity the contract promises. *)
let test_parallel_equals_sequential () =
  let profiles = [ Holes_workload.Dacapo.luindex; Holes_workload.Dacapo.avrora ] in
  let cfgs = [ Cfg.default; { Cfg.default with Cfg.failure_rate = 0.25 } ] in
  let outcomes jobs =
    R.clear_cache ();
    let params = { R.scale = 0.05; seeds = 2; jobs } in
    R.prefetch ~params ~cfgs ~profiles ();
    List.concat_map
      (fun cfg -> List.map (fun profile -> R.run ~params ~cfg ~profile ()) profiles)
      cfgs
  in
  let seq = outcomes 1 in
  let par = outcomes 4 in
  R.clear_cache ();
  List.iter2
    (fun (a : R.outcome) (b : R.outcome) ->
      Alcotest.(check bool)
        (Printf.sprintf "-j 1 = -j 4 for %s/%s" (Cfg.name a.R.cfg) a.R.profile)
        true (a = b))
    seq par

let suite =
  [
    ("pool runs all jobs", `Quick, test_pool_runs_all);
    ("pool captures exceptions", `Quick, test_pool_captures_exceptions);
    ("job seeds deterministic", `Quick, test_job_seeds_deterministic);
    ("sink JSONL roundtrip", `Quick, test_sink_jsonl_roundtrip);
    ("engine reports failed jobs", `Quick, test_engine_failed_job_reported);
    ("-j 1 equals -j 4", `Slow, test_parallel_equals_sequential);
  ]
