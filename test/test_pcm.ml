(* Tests for the PCM device substrate: wear/ECP model, failure buffer,
   redirection-map clustering, start-gap wear leveling, and failure-map
   generation. *)

open Holes_pcm
module Bitset = Holes_stdx.Bitset
module Xrng = Holes_stdx.Xrng

let check = Alcotest.check

(* ------------------------- Geometry ------------------------- *)

let test_geometry () =
  check Alcotest.int "64 lines per page" 64 Geometry.lines_per_page;
  check Alcotest.int "2-page region meta = 2 lines" 2
    (Geometry.redirection_meta_lines ~region_pages:2);
  check Alcotest.int "1-page region meta = 1 line" 1
    (Geometry.redirection_meta_lines ~region_pages:1)

let test_redirection_map_889_bits () =
  (* the paper, Sec. 3.1.2: "Assuming a 4 KB page, 64 B lines, and a
     2-page region size, the redirection map requires 889 bits ...
     126 7-bit fields for redirection entries, and one 7-bit field for
     the boundary pointer" *)
  check Alcotest.int "exactly the paper's 889 bits" 889
    (Geometry.redirection_map_bits ~region_pages:2)

let test_failure_map_page_stats () =
  let map = Bitset.create (64 * 4) in
  Bitset.set map 0;
  Bitset.set map 3;
  Bitset.set map 130 (* page 2 *);
  check (Alcotest.array Alcotest.int) "per-page counts" [| 2; 0; 1; 0 |]
    (Failure_map.per_page_counts map);
  check Alcotest.int "perfect pages" 2 (Failure_map.perfect_pages map);
  Alcotest.(check bool) "rate" true (abs_float (Failure_map.rate map -. (3.0 /. 256.0)) < 1e-9)

let test_wear_level_translate_identity () =
  let t =
    Wear_level.create ~policy:(Wear_level.Start_gap { psi = 1000 }) ~nlines:8 ~seed:7 ()
  in
  for l = 0 to 7 do
    check Alcotest.int "identity before any gap move" l (Wear_level.translate t l)
  done;
  Alcotest.check_raises "bounds" (Invalid_argument "Wear_level.translate: out of range")
    (fun () -> ignore (Wear_level.translate t 8))

(* ------------------------- Wear ------------------------- *)

let test_wear_exhaustion () =
  let rng = Xrng.of_seed 1 in
  let p = { Wear.mean_endurance = 50.0; sigma = 0.1; ecp_entries = 2; ecp_extension = 0.1 } in
  let l = Wear.fresh_line rng p in
  let rec drive n =
    if n > 100_000 then Alcotest.fail "line never failed"
    else
      match Wear.write rng p l with
      | Wear.Failed -> n
      | Wear.Ok | Wear.Corrected -> drive (n + 1)
  in
  let writes = drive 1 in
  Alcotest.(check bool) "took multiple writes" true (writes > 10);
  (* once failed, stays failed *)
  check
    (Alcotest.testable
       (fun ppf -> function
         | Wear.Ok -> Fmt.string ppf "Ok"
         | Wear.Corrected -> Fmt.string ppf "Corrected"
         | Wear.Failed -> Fmt.string ppf "Failed")
       ( = ))
    "failed stays failed" Wear.Failed (Wear.write rng p l)

let test_wear_ecp_extends_life () =
  (* with ECP entries a line must survive at least its base endurance *)
  let rng = Xrng.of_seed 2 in
  let base = { Wear.mean_endurance = 100.0; sigma = 0.01; ecp_entries = 0; ecp_extension = 0.5 } in
  let with_ecp = { base with Wear.ecp_entries = 6 } in
  let count params seed =
    let rng2 = Xrng.of_seed seed in
    let l = Wear.fresh_line rng2 params in
    let rec go n =
      match Wear.write rng params l with Wear.Failed -> n | _ -> go (n + 1)
    in
    go 0
  in
  let no_ecp = count base 7 and ecp = count with_ecp 7 in
  Alcotest.(check bool) "ECP extends lifetime" true (ecp > no_ecp)

let test_wear_utilization () =
  let rng = Xrng.of_seed 3 in
  let p = Wear.fast_params in
  let l = Wear.fresh_line rng p in
  check (Alcotest.float 1e-9) "fresh line unused ECP" 0.0 (Wear.ecp_utilization p l)

(* ------------------------- Failure buffer ------------------------- *)

let payload c = Bytes.make Geometry.line_bytes c

let test_buffer_forward_and_clear () =
  let fb = Failure_buffer.create ~capacity:8 () in
  ignore (Failure_buffer.insert fb ~addr:5 ~data:(payload 'a'));
  (match Failure_buffer.forward fb ~addr:5 with
  | Some d -> check Alcotest.char "forwards latest data" 'a' (Bytes.get d 0)
  | None -> Alcotest.fail "expected forwarding");
  Alcotest.(check bool) "clear removes" true (Failure_buffer.clear fb ~addr:5);
  check (Alcotest.option Alcotest.reject) "gone after clear" None
    (Option.map ignore (Failure_buffer.forward fb ~addr:5))

let test_buffer_dedup () =
  let fb = Failure_buffer.create ~capacity:8 () in
  ignore (Failure_buffer.insert fb ~addr:5 ~data:(payload 'a'));
  ignore (Failure_buffer.insert fb ~addr:5 ~data:(payload 'b'));
  check Alcotest.int "one entry per address" 1 (Failure_buffer.occupancy fb);
  match Failure_buffer.forward fb ~addr:5 with
  | Some d -> check Alcotest.char "latest wins" 'b' (Bytes.get d 0)
  | None -> Alcotest.fail "expected forwarding"

let test_buffer_fifo_order () =
  let fb = Failure_buffer.create ~capacity:8 () in
  ignore (Failure_buffer.insert fb ~addr:1 ~data:(payload 'x'));
  ignore (Failure_buffer.insert fb ~addr:2 ~data:(payload 'y'));
  match Failure_buffer.peek fb with
  | Some e -> check Alcotest.int "oldest first" 1 e.Failure_buffer.addr
  | None -> Alcotest.fail "expected entry"

let test_buffer_watermark_stall () =
  let fb = Failure_buffer.create ~capacity:4 ~watermark:2 () in
  let interrupts = ref [] in
  Failure_buffer.on_interrupt fb (fun i -> interrupts := i :: !interrupts);
  ignore (Failure_buffer.insert fb ~addr:1 ~data:(payload 'a'));
  Alcotest.(check bool) "not yet stalled" false (Failure_buffer.is_stalled fb);
  ignore (Failure_buffer.insert fb ~addr:2 ~data:(payload 'b'));
  Alcotest.(check bool) "stalled at watermark" true (Failure_buffer.is_stalled fb);
  Alcotest.(check bool) "pressure interrupt raised" true
    (List.mem Failure_buffer.Buffer_pressure !interrupts);
  ignore (Failure_buffer.clear fb ~addr:1);
  Alcotest.(check bool) "unstalled after drain" false (Failure_buffer.is_stalled fb)

let test_buffer_capacity () =
  let fb = Failure_buffer.create ~capacity:2 ~watermark:2 () in
  ignore (Failure_buffer.insert fb ~addr:1 ~data:(payload 'a'));
  ignore (Failure_buffer.insert fb ~addr:2 ~data:(payload 'b'));
  Alcotest.(check bool) "full buffer rejects" false
    (Failure_buffer.insert fb ~addr:3 ~data:(payload 'c'))

(* ------------------------- Redirect ------------------------- *)

let test_redirect_identity_before_failures () =
  let r = Redirect.create ~region_pages:2 ~region_index:0 () in
  for l = 0 to Redirect.nlines r - 1 do
    if Redirect.translate r l <> l then Alcotest.fail "not identity"
  done;
  Alcotest.(check bool) "no map installed" false (Redirect.is_installed r)

let test_redirect_clusters_failures () =
  let r = Redirect.create ~region_pages:2 ~region_index:0 () in
  (* fail scattered physical lines *)
  List.iter (fun p -> ignore (Redirect.record_failure r ~physical:p)) [ 37; 99; 64; 11 ];
  let unusable = Redirect.unusable_logical r in
  (* Top clustering: unusable must be a contiguous prefix *)
  check (Alcotest.list Alcotest.int) "contiguous prefix"
    (List.init (List.length unusable) Fun.id)
    unusable;
  check Alcotest.int "4 failures" 4 (Redirect.failed_count r);
  check Alcotest.int "meta + failures" (4 + 2) (Redirect.unusable_count r)

let test_redirect_bottom_direction () =
  let r = Redirect.create ~region_pages:2 ~region_index:1 () in
  ignore (Redirect.record_failure r ~physical:5);
  let n = Redirect.nlines r in
  let unusable = Redirect.unusable_logical r in
  check (Alcotest.list Alcotest.int) "contiguous suffix"
    (List.init 3 (fun i -> n - 3 + i))
    unusable

let test_redirect_permutation_invariant () =
  let r = Redirect.create ~region_pages:2 ~region_index:0 () in
  let rng = Xrng.of_seed 8 in
  for _ = 1 to 60 do
    ignore (Redirect.record_failure r ~physical:(Xrng.int rng (Redirect.nlines r)))
  done;
  Alcotest.(check bool) "map stays a permutation" true (Redirect.is_permutation r)

let test_redirect_duplicate_failure () =
  let r = Redirect.create ~region_pages:1 ~region_index:0 () in
  let first = Redirect.record_failure r ~physical:9 in
  Alcotest.(check bool) "first failure reports lines" true (first <> []);
  check (Alcotest.list Alcotest.int) "duplicate is no-op" []
    (Redirect.record_failure r ~physical:9)

let test_redirect_translated_data_lines_live () =
  (* after clustering, every usable logical line maps to a non-dead
     physical line *)
  let r = Redirect.create ~region_pages:2 ~region_index:0 () in
  List.iter (fun p -> ignore (Redirect.record_failure r ~physical:p)) [ 3; 60; 120; 77 ];
  let unusable = Redirect.unusable_logical r in
  for l = 0 to Redirect.nlines r - 1 do
    if not (List.mem l unusable) then begin
      let p = Redirect.translate r l in
      if List.mem p [ 3; 60; 120; 77 ] then
        Alcotest.fail (Printf.sprintf "usable logical %d maps to failed physical %d" l p)
    end
  done

let prop_redirect_cluster_contiguous =
  QCheck.Test.make ~name:"redirect: unusable lines always contiguous at one end" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 100) (int_bound 127))
    (fun physicals ->
      let r = Redirect.create ~region_pages:2 ~region_index:0 () in
      List.iter (fun p -> ignore (Redirect.record_failure r ~physical:p)) physicals;
      let u = Redirect.unusable_logical r in
      Redirect.is_permutation r && u = List.init (List.length u) Fun.id)

(* ------------------------- Wear leveling ------------------------- *)

(* a leveling core wired like the device does it: reserve the gap, then
   account data writes on usable lines only *)
let start_gap_core ~psi ~nlines =
  let t = Wear_level.create ~policy:(Wear_level.Start_gap { psi }) ~nlines ~seed:11 () in
  let reserved = match Wear_level.ensure_gap t with Some r -> r | None -> Alcotest.fail "no gap" in
  (t, reserved)

let test_start_gap_consistent () =
  let t, reserved = start_gap_core ~psi:3 ~nlines:16 in
  for i = 0 to 499 do
    let l = i mod 16 in
    if l <> reserved then Wear_level.on_data_write t l
  done;
  Alcotest.(check bool) "permutation invariant holds" true (Wear_level.is_consistent t);
  Alcotest.(check bool) "gap moved" true (Wear_level.gap_moves t > 0);
  Alcotest.(check bool) "copies charged" true (Wear_level.copies t = Wear_level.gap_moves t)

let test_start_gap_spreads_writes () =
  (* hammering one logical line must hit many physical slots over time *)
  let t, reserved = start_gap_core ~psi:1 ~nlines:8 in
  let hot = if reserved = 0 then 1 else 0 in
  let slots = Hashtbl.create 16 in
  for _ = 1 to 100 do
    Wear_level.on_data_write t hot;
    Hashtbl.replace slots (Wear_level.translate t hot) ()
  done;
  Alcotest.(check bool) "single hot line spread over >=4 slots" true (Hashtbl.length slots >= 4)

let test_random_decoder_consistent () =
  List.iter
    (fun policy ->
      let t = Wear_level.create ~policy ~nlines:32 ~seed:23 () in
      for i = 0 to 999 do
        Wear_level.on_data_write t (i mod 32)
      done;
      Alcotest.(check bool) "permutation invariant holds" true (Wear_level.is_consistent t);
      Alcotest.(check bool) "remaps happened" true (Wear_level.remaps t > 0);
      Alcotest.(check int) "two copies per remap" (2 * Wear_level.remaps t) (Wear_level.copies t);
      Alcotest.(check int) "one meta write per remap" (Wear_level.remaps t)
        (Wear_level.meta_writes t))
    [ Wear_level.Random_remap { psi = 4 }; Wear_level.Decoder_swap { psi = 4 } ]

let test_frozen_pairs_pinned () =
  (* a slot reported unusable never moves again, under any mover *)
  let t = Wear_level.create ~policy:(Wear_level.Random_remap { psi = 1 }) ~nlines:16 ~seed:3 () in
  (match Wear_level.on_slot_unusable t ~slot:5 with
  | Some l -> Alcotest.(check int) "identity map: slot 5 holds logical 5" 5 l
  | None -> Alcotest.fail "fresh slot must report a newly unusable logical line");
  Alcotest.(check (option int)) "re-reporting is absorbed" None (Wear_level.on_slot_unusable t ~slot:5);
  for i = 0 to 499 do
    Wear_level.on_data_write t (i mod 16)
  done;
  Alcotest.(check int) "frozen logical line never remapped" 5 (Wear_level.translate t 5);
  Alcotest.(check bool) "permutation invariant holds" true (Wear_level.is_consistent t)

(* ------------------------- Failure maps ------------------------- *)

let test_uniform_exact_count () =
  let rng = Xrng.of_seed 4 in
  let map = Failure_map.uniform rng ~nlines:1000 ~rate:0.25 in
  check Alcotest.int "exact failure count" 250 (Bitset.count map)

let test_clustered_granule () =
  let rng = Xrng.of_seed 5 in
  let map = Failure_map.clustered rng ~nlines:1024 ~rate:0.25 ~granule_lines:8 in
  check Alcotest.int "rate preserved" 256 (Bitset.count map);
  (* every failed run is a whole aligned granule *)
  for g = 0 to 127 do
    let first = Bitset.get map (g * 8) in
    for i = 1 to 7 do
      if Bitset.get map ((g * 8) + i) <> first then Alcotest.fail "granule not uniform"
    done
  done

let test_cluster_transform_preserves_count () =
  let rng = Xrng.of_seed 6 in
  let map = Failure_map.uniform rng ~nlines:(64 * 16) ~rate:0.3 in
  let t = Failure_map.cluster_transform map ~region_pages:2 in
  check Alcotest.int "same failures" (Bitset.count map) (Bitset.count t)

let test_cluster_transform_clusters () =
  let rng = Xrng.of_seed 7 in
  let map = Failure_map.uniform rng ~nlines:(64 * 4) ~rate:0.2 in
  let t = Failure_map.cluster_transform map ~region_pages:2 in
  (* region 0 (even): failures at start; region 1 (odd): at end *)
  let rl = 128 in
  let count_region r =
    let c = ref 0 in
    for i = 0 to rl - 1 do
      if Bitset.get t ((r * rl) + i) then incr c
    done;
    !c
  in
  let k0 = count_region 0 in
  for i = 0 to k0 - 1 do
    if not (Bitset.get t i) then Alcotest.fail "even region not prefix-clustered"
  done;
  let k1 = count_region 1 in
  for i = 0 to k1 - 1 do
    if not (Bitset.get t (rl + rl - 1 - i)) then Alcotest.fail "odd region not suffix-clustered"
  done

let test_cluster_transform_perfect_pages () =
  (* 2-page clustering at <50% failures yields >= one perfect page per
     two-page region (the paper's key property, Sec. 6.4) *)
  let rng = Xrng.of_seed 8 in
  let npages = 64 in
  let map = Failure_map.uniform rng ~nlines:(64 * npages) ~rate:0.4 in
  let t = Failure_map.cluster_transform map ~region_pages:2 in
  Alcotest.(check bool) "at least half the pages perfect" true
    (Failure_map.perfect_pages t >= npages / 2)

let prop_cluster_transform_preserves =
  QCheck.Test.make ~name:"cluster transform preserves failure count" ~count:100
    QCheck.(pair (int_bound 1000) (map (fun x -> 0.6 *. x) (float_range 0.0 1.0)))
    (fun (seed, rate) ->
      let rng = Xrng.of_seed seed in
      let map = Failure_map.uniform rng ~nlines:(64 * 8) ~rate in
      let t1 = Failure_map.cluster_transform map ~region_pages:1 in
      let t2 = Failure_map.cluster_transform map ~region_pages:2 in
      Bitset.count t1 = Bitset.count map && Bitset.count t2 = Bitset.count map)

(* ------------------------- Device ------------------------- *)

let test_device_write_read () =
  let d = Device.create ~seed:1 () in
  let data = payload 'z' in
  (match Device.write d 10 data with
  | Device.Stored -> ()
  | _ -> Alcotest.fail "expected Stored");
  check Alcotest.char "read back" 'z' (Bytes.get (Device.read d 10) 0)

let test_device_wear_out_and_notify () =
  let cfg =
    {
      Device.default_config with
      Device.pages = 2;
      wear = { Wear.mean_endurance = 30.0; sigma = 0.05; ecp_entries = 1; ecp_extension = 0.1 };
    }
  in
  let d = Device.create ~config:cfg ~seed:2 () in
  let notified = ref [] in
  let failed_addr = ref (-1) in
  Device.on_line_failed d (fun ~addr ~unusable ->
      failed_addr := addr;
      notified := unusable @ !notified);
  (* hammer line 40 until it fails *)
  let rec hammer n =
    if n > 100_000 then Alcotest.fail "no failure"
    else
      match Device.write d 40 (payload 'q') with
      | Device.Write_failed -> ()
      | Device.Stored -> hammer (n + 1)
      | Device.Stalled ->
          (* drain via OS path *)
          List.iter (fun l -> ignore (Device.drain_failure d l)) !notified;
          hammer (n + 1)
  in
  hammer 0;
  Alcotest.(check bool) "OS notified of unusable lines" true (!notified <> []);
  check Alcotest.int "failing address reported" 40 !failed_addr;
  (* data preserved in the failure buffer and forwarded on reads of the
     issuing address until the OS drains it *)
  check Alcotest.char "failed write forwarded" 'q' (Bytes.get (Device.read d 40) 0)

let test_device_unusable_accounting () =
  let d = Device.create ~seed:3 () in
  check (Alcotest.list Alcotest.int) "fresh device fully usable" [] (Device.unusable_lines d)

let suite =
  [
    ("geometry constants", `Quick, test_geometry);
    ("redirection map is the paper's 889 bits", `Quick, test_redirection_map_889_bits);
    ("failure map page stats", `Quick, test_failure_map_page_stats);
    ("wear-level identity translate", `Quick, test_wear_level_translate_identity);
    ("wear exhaustion", `Quick, test_wear_exhaustion);
    ("wear ECP extends life", `Quick, test_wear_ecp_extends_life);
    ("wear utilization", `Quick, test_wear_utilization);
    ("buffer forward+clear", `Quick, test_buffer_forward_and_clear);
    ("buffer dedup", `Quick, test_buffer_dedup);
    ("buffer FIFO order", `Quick, test_buffer_fifo_order);
    ("buffer watermark stall", `Quick, test_buffer_watermark_stall);
    ("buffer capacity", `Quick, test_buffer_capacity);
    ("redirect identity", `Quick, test_redirect_identity_before_failures);
    ("redirect clusters failures", `Quick, test_redirect_clusters_failures);
    ("redirect bottom direction", `Quick, test_redirect_bottom_direction);
    ("redirect permutation invariant", `Quick, test_redirect_permutation_invariant);
    ("redirect duplicate failure", `Quick, test_redirect_duplicate_failure);
    ("redirect usable lines map to live physical", `Quick, test_redirect_translated_data_lines_live);
    ("start-gap consistent", `Quick, test_start_gap_consistent);
    ("start-gap spreads writes", `Quick, test_start_gap_spreads_writes);
    ("random/decoder movers consistent", `Quick, test_random_decoder_consistent);
    ("frozen pairs pinned", `Quick, test_frozen_pairs_pinned);
    ("uniform map exact count", `Quick, test_uniform_exact_count);
    ("clustered map granules", `Quick, test_clustered_granule);
    ("cluster transform count", `Quick, test_cluster_transform_preserves_count);
    ("cluster transform geometry", `Quick, test_cluster_transform_clusters);
    ("cluster transform perfect pages", `Quick, test_cluster_transform_perfect_pages);
    ("device write/read", `Quick, test_device_write_read);
    ("device wear-out notify + forward", `Quick, test_device_wear_out_and_notify);
    ("device unusable accounting", `Quick, test_device_unusable_accounting);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_redirect_cluster_contiguous; prop_cluster_transform_preserves ]
