(* Unit and property tests for the stdx utility substrate. *)

open Holes_stdx

let check = Alcotest.check
let fl = Alcotest.float 1e-9

(* ------------------------- Xrng ------------------------- *)

let test_rng_deterministic () =
  let a = Xrng.of_seed 42 and b = Xrng.of_seed 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Xrng.bits53 a) (Xrng.bits53 b)
  done

let test_rng_seed_sensitivity () =
  let a = Xrng.of_seed 1 and b = Xrng.of_seed 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Xrng.bits53 a = Xrng.bits53 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_split_independent () =
  let a = Xrng.of_seed 9 in
  let b = Xrng.split a in
  let xs = List.init 50 (fun _ -> Xrng.bits53 a) in
  let ys = List.init 50 (fun _ -> Xrng.bits53 b) in
  Alcotest.(check bool) "split stream differs" true (xs <> ys)

let test_rng_float_range () =
  let r = Xrng.of_seed 5 in
  for _ = 1 to 1000 do
    let f = Xrng.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_int_bounds () =
  let r = Xrng.of_seed 6 in
  for _ = 1 to 1000 do
    let v = Xrng.int r 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "non-positive bound" (Invalid_argument "Xrng.int: bound must be positive")
    (fun () -> ignore (Xrng.int r 0))

let test_rng_range () =
  let r = Xrng.of_seed 10 in
  for _ = 1 to 200 do
    let v = Xrng.range r 3 9 in
    Alcotest.(check bool) "in [3,9]" true (v >= 3 && v <= 9)
  done

let test_rng_mean () =
  let r = Xrng.of_seed 3 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Xrng.float r
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_shuffle_permutation () =
  let r = Xrng.of_seed 12 in
  let a = Array.init 100 Fun.id in
  Xrng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "still a permutation" (Array.init 100 Fun.id) sorted

(* ------------------------- Dist ------------------------- *)

let test_lognormal_mean () =
  let r = Xrng.of_seed 21 in
  (* mean of lognormal(mu, sigma) = exp(mu + sigma^2/2) *)
  let mu = 1.0 and sigma = 0.5 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Dist.lognormal r ~mu ~sigma
  done;
  let mean = !sum /. float_of_int n in
  let expect = exp (mu +. (sigma *. sigma /. 2.0)) in
  Alcotest.(check bool) "lognormal mean" true (abs_float (mean -. expect) /. expect < 0.05)

let test_exponential_mean () =
  let r = Xrng.of_seed 22 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Dist.exponential r ~mean:42.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "exponential mean" true (abs_float (mean -. 42.0) < 1.5)

let test_geometric_support () =
  let r = Xrng.of_seed 23 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "geometric >= 1" true (Dist.geometric r ~p:0.3 >= 1)
  done;
  check Alcotest.int "p=1 degenerate" 1 (Dist.geometric r ~p:1.0)

let test_zipf_skew () =
  let r = Xrng.of_seed 24 in
  let sample = Dist.zipf_sampler ~n:100 ~s:1.1 in
  let counts = Array.make 101 0 in
  for _ = 1 to 20_000 do
    let k = sample r in
    Alcotest.(check bool) "in support" true (k >= 1 && k <= 100);
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 1 beats rank 50" true (counts.(1) > counts.(50))

let test_discrete_weights () =
  let r = Xrng.of_seed 25 in
  let d = Dist.Discrete.make [ (0.9, `A); (0.1, `B) ] in
  let a = ref 0 in
  for _ = 1 to 10_000 do
    if Dist.Discrete.sample d r = `A then incr a
  done;
  Alcotest.(check bool) "A dominates per weight" true (!a > 8500 && !a < 9500)

let test_discrete_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Dist.Discrete.make: empty") (fun () ->
      ignore (Dist.Discrete.make []))

(* The generator pinned against a plain-Int64 reference implementation
   of SplitMix64 seeding + xoshiro256**.  [Xrng] runs the same
   algorithm over 32-bit native-int halves to stay allocation-free on
   the hot path; any drift in the bit-twiddling would silently change
   every failure map and workload in the repo, so the equivalence is
   asserted draw by draw, across seeds and through [split]. *)
module Rng_ref = struct
  type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

  let golden = 0x9E3779B97F4A7C15L

  let splitmix_next (s : int64 ref) : int64 =
    s := Int64.add !s golden;
    let z = !s in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let of_seed (seed : int) : t =
    let s = ref (Int64.of_int seed) in
    let s0 = splitmix_next s in
    let s1 = splitmix_next s in
    let s2 = splitmix_next s in
    let s3 = splitmix_next s in
    let s3 = if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then 1L else s3 in
    { s0; s1; s2; s3 }

  let rotl (x : int64) (k : int) : int64 =
    Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

  let next (t : t) : int64 =
    let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
    let tt = Int64.shift_left t.s1 17 in
    t.s2 <- Int64.logxor t.s2 t.s0;
    t.s3 <- Int64.logxor t.s3 t.s1;
    t.s1 <- Int64.logxor t.s1 t.s2;
    t.s0 <- Int64.logxor t.s0 t.s3;
    t.s2 <- Int64.logxor t.s2 tt;
    t.s3 <- rotl t.s3 45;
    result

  let bits53 (t : t) : int = Int64.to_int (Int64.shift_right_logical (next t) 11)
  let bool (t : t) : bool = Int64.logand (next t) 1L = 1L

  let split (t : t) : t =
    let s = ref (next t) in
    let s0 = splitmix_next s in
    let s1 = splitmix_next s in
    let s2 = splitmix_next s in
    let s3 = splitmix_next s in
    let s3 = if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then 1L else s3 in
    { s0; s1; s2; s3 }
end

let test_rng_matches_int64_reference () =
  List.iter
    (fun seed ->
      let x = Xrng.of_seed seed in
      let r = Rng_ref.of_seed seed in
      for _ = 1 to 2000 do
        check Alcotest.int "bits53" (Rng_ref.bits53 r) (Xrng.bits53 x);
        Alcotest.(check bool) "bool" (Rng_ref.bool r) (Xrng.bool x)
      done;
      let x' = Xrng.split x in
      let r' = Rng_ref.split r in
      for _ = 1 to 200 do
        check Alcotest.int "bits53 after split (child)" (Rng_ref.bits53 r') (Xrng.bits53 x');
        check Alcotest.int "bits53 after split (parent)" (Rng_ref.bits53 r) (Xrng.bits53 x)
      done)
    [ 0; 1; 42; 7; 123456789; -3 ]

(* ------------------------- Bitset ------------------------- *)

let test_bitset_basic () =
  let b = Bitset.create 130 in
  check Alcotest.int "initially empty" 0 (Bitset.count b);
  Bitset.set b 0;
  Bitset.set b 64;
  Bitset.set b 129;
  check Alcotest.int "three set" 3 (Bitset.count b);
  Alcotest.(check bool) "get 64" true (Bitset.get b 64);
  Bitset.clear b 64;
  Alcotest.(check bool) "cleared" false (Bitset.get b 64);
  check Alcotest.int "two left" 2 (Bitset.count b)

let test_bitset_fill () =
  let b = Bitset.create 10 in
  Bitset.fill b true;
  check Alcotest.int "all set" 10 (Bitset.count b);
  Bitset.fill b false;
  check Alcotest.int "all clear" 0 (Bitset.count b)

let test_bitset_subset () =
  let a = Bitset.create 64 and b = Bitset.create 64 in
  Bitset.set a 3;
  Bitset.set b 3;
  Bitset.set b 9;
  Alcotest.(check bool) "a subset b" true (Bitset.subset a b);
  Alcotest.(check bool) "b not subset a" false (Bitset.subset b a)

let test_bitset_next () =
  let b = Bitset.create 16 in
  Bitset.set b 5;
  check (Alcotest.option Alcotest.int) "next_set" (Some 5) (Bitset.next_set b 0);
  check (Alcotest.option Alcotest.int) "next_clear skips" (Some 6) (Bitset.next_clear b 5);
  check (Alcotest.option Alcotest.int) "none past end" None (Bitset.next_set b 6)

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset of_bool_array/to_bool_array roundtrip" ~count:200
    QCheck.(array_of_size (Gen.int_range 0 200) bool)
    (fun a -> Bitset.to_bool_array (Bitset.of_bool_array a) = a)

let prop_bitset_count =
  QCheck.Test.make ~name:"bitset count matches bool array" ~count:200
    QCheck.(array_of_size (Gen.int_range 0 200) bool)
    (fun a ->
      Bitset.count (Bitset.of_bool_array a)
      = Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 a)

(* Word-level Bitset primitives added for the hot-path work, each
   checked against a naive bool-array reference over lengths straddling
   the 63-bit word boundary. *)

let naive_longest_run (a : bool array) : int =
  let best = ref 0 and cur = ref 0 in
  Array.iter
    (fun v ->
      if v then begin
        incr cur;
        if !cur > !best then best := !cur
      end
      else cur := 0)
    a;
  !best

let random_bools (rng : Xrng.t) (n : int) ~(density : int) : bool array =
  Array.init n (fun _ -> Xrng.int rng 100 < density)

let boundary_lengths = [ 0; 1; 5; 62; 63; 64; 125; 126; 127; 189; 200 ]

let test_bitset_longest_run_vs_naive () =
  let rng = Xrng.of_seed 2024 in
  List.iter
    (fun n ->
      List.iter
        (fun density ->
          for _ = 1 to 20 do
            let a = random_bools rng n ~density in
            check Alcotest.int
              (Printf.sprintf "longest_run n=%d d=%d" n density)
              (naive_longest_run a)
              (Bitset.longest_run (Bitset.of_bool_array a))
          done)
        [ 0; 30; 70; 100 ])
    boundary_lengths

let test_bitset_sub_vs_naive () =
  let rng = Xrng.of_seed 7 in
  for _ = 1 to 400 do
    let n = 1 + Xrng.int rng 200 in
    let a = random_bools rng n ~density:50 in
    let pos = Xrng.int rng (n + 1) in
    let len = Xrng.int rng (n - pos + 1) in
    let got = Bitset.to_bool_array (Bitset.sub (Bitset.of_bool_array a) ~pos ~len) in
    if got <> Array.sub a pos len then
      Alcotest.failf "sub mismatch n=%d pos=%d len=%d" n pos len
  done;
  Alcotest.check_raises "out of bounds" (Invalid_argument "Bitset.sub: range out of bounds")
    (fun () -> ignore (Bitset.sub (Bitset.create 10) ~pos:5 ~len:6))

let test_bitset_group_mask_vs_naive () =
  let rng = Xrng.of_seed 99 in
  List.iter
    (fun shift ->
      for _ = 1 to 100 do
        let n = 1 + Xrng.int rng (63 lsl shift) in
        let a = random_bools rng n ~density:20 in
        let expect = ref 0 in
        Array.iteri (fun i v -> if v then expect := !expect lor (1 lsl (i lsr shift))) a;
        check Alcotest.int
          (Printf.sprintf "group_mask n=%d shift=%d" n shift)
          !expect
          (Bitset.group_mask (Bitset.of_bool_array a) ~shift)
      done)
    [ 1; 2; 3 ];
  Alcotest.check_raises "groups too wide"
    (Invalid_argument "Bitset.group_mask: groups do not fit one word") (fun () ->
      ignore (Bitset.group_mask (Bitset.create 200) ~shift:1))

(* ------------------------- Rle ------------------------- *)

let prop_rle_roundtrip =
  QCheck.Test.make ~name:"rle encode/decode roundtrip" ~count:300
    QCheck.(array_of_size (Gen.int_range 0 300) bool)
    (fun a -> Rle.decode (Rle.encode a) = a)

let test_rle_compression_sparse () =
  (* sparse failure maps compress well *)
  let bits = Array.make 4096 false in
  bits.(17) <- true;
  bits.(900) <- true;
  Alcotest.(check bool) "sparse compresses > 10x" true (Rle.compression_ratio bits > 10.0)

let test_rle_runs () =
  let runs = Rle.encode [| true; true; false; true |] in
  check Alcotest.int "three runs" 3 (List.length runs)

(* ------------------------- Stats ------------------------- *)

let test_stats_mean_geomean () =
  check fl "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check fl "geomean of equal" 5.0 (Stats.geomean [ 5.0; 5.0; 5.0 ]);
  let g = Stats.geomean [ 1.0; 4.0 ] in
  Alcotest.(check bool) "geomean 1,4 = 2" true (abs_float (g -. 2.0) < 1e-9)

let test_stats_percentile () =
  check fl "median" 2.0 (Stats.percentile 50.0 [ 1.0; 2.0; 3.0 ]);
  check fl "p0" 1.0 (Stats.percentile 0.0 [ 3.0; 1.0; 2.0 ]);
  check fl "p100" 3.0 (Stats.percentile 100.0 [ 3.0; 1.0; 2.0 ])

let test_stats_ci () =
  check fl "ci of singleton" 0.0 (Stats.ci95 [ 1.0 ]);
  Alcotest.(check bool) "ci positive" true (Stats.ci95 [ 1.0; 2.0; 3.0 ] > 0.0)

let test_stats_errors () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (Stats.mean []));
  Alcotest.check_raises "geomean non-positive"
    (Invalid_argument "Stats.geomean: non-positive") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

(* ------------------------- Heapq ------------------------- *)

let test_heapq_order () =
  let h = Heapq.create ~dummy:(-1) in
  List.iter (fun k -> Heapq.push h ~key:k k) [ 5; 1; 4; 1; 3; 9; 2 ];
  let out = ref [] in
  let rec drain () =
    match Heapq.pop h with
    | Some (k, _) ->
        out := k :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list Alcotest.int) "sorted ascending" [ 1; 1; 2; 3; 4; 5; 9 ] (List.rev !out)

let prop_heapq_sorts =
  QCheck.Test.make ~name:"heapq drains in sorted order" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 100) small_int)
    (fun keys ->
      let h = Heapq.create ~dummy:0 in
      List.iter (fun k -> Heapq.push h ~key:k k) keys;
      let rec drain acc =
        match Heapq.pop h with Some (k, _) -> drain (k :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare keys)

(* ------------------------- Intvec ------------------------- *)

let test_intvec_push_get () =
  let v = Intvec.create () in
  for i = 0 to 99 do
    Intvec.push v (i * i)
  done;
  check Alcotest.int "length" 100 (Intvec.length v);
  check Alcotest.int "get 7" 49 (Intvec.get v 7)

let test_intvec_filter () =
  let v = Intvec.create () in
  for i = 0 to 9 do
    Intvec.push v i
  done;
  Intvec.filter_in_place v (fun x -> x mod 2 = 0);
  check (Alcotest.list Alcotest.int) "evens kept" [ 0; 2; 4; 6; 8 ] (Intvec.to_list v)

let test_intvec_pop_or () =
  let v = Intvec.create ~capacity:2 () in
  check Alcotest.int "empty yields default" (-7) (Intvec.pop_or v ~default:(-7));
  for i = 1 to 5 do
    Intvec.push v i
  done;
  (* LIFO, same order [pop] would give, but without the option box *)
  check Alcotest.int "pop 5" 5 (Intvec.pop_or v ~default:(-1));
  check Alcotest.int "pop 4" 4 (Intvec.pop_or v ~default:(-1));
  check Alcotest.int "unsafe_get" 3 (Intvec.unsafe_get v 2);
  check Alcotest.int "length shrank" 3 (Intvec.length v);
  Intvec.clear v;
  check Alcotest.int "default after clear" 0 (Intvec.pop_or v ~default:0)

(* ------------------------- Table ------------------------- *)

let test_table_render () =
  let t = Table.create ~title:"T" ~headers:[ "a"; "b" ] () in
  Table.add_row t [ "1"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 4 = "== T");
  Alcotest.check_raises "wrong arity" (Invalid_argument "Table.add_row: wrong number of cells")
    (fun () -> Table.add_row t [ "only-one" ])

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng range", `Quick, test_rng_range);
    ("rng mean", `Quick, test_rng_mean);
    ("shuffle permutation", `Quick, test_shuffle_permutation);
    ("lognormal mean", `Quick, test_lognormal_mean);
    ("exponential mean", `Quick, test_exponential_mean);
    ("geometric support", `Quick, test_geometric_support);
    ("zipf skew", `Quick, test_zipf_skew);
    ("discrete weights", `Quick, test_discrete_weights);
    ("discrete invalid", `Quick, test_discrete_invalid);
    ("rng matches int64 reference", `Quick, test_rng_matches_int64_reference);
    ("bitset basic", `Quick, test_bitset_basic);
    ("bitset fill", `Quick, test_bitset_fill);
    ("bitset subset", `Quick, test_bitset_subset);
    ("bitset next", `Quick, test_bitset_next);
    ("bitset longest_run vs naive", `Quick, test_bitset_longest_run_vs_naive);
    ("bitset sub vs naive", `Quick, test_bitset_sub_vs_naive);
    ("bitset group_mask vs naive", `Quick, test_bitset_group_mask_vs_naive);
    ("rle sparse compression", `Quick, test_rle_compression_sparse);
    ("rle runs", `Quick, test_rle_runs);
    ("stats mean/geomean", `Quick, test_stats_mean_geomean);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats ci", `Quick, test_stats_ci);
    ("stats errors", `Quick, test_stats_errors);
    ("heapq order", `Quick, test_heapq_order);
    ("intvec push/get", `Quick, test_intvec_push_get);
    ("intvec filter", `Quick, test_intvec_filter);
    ("intvec pop_or", `Quick, test_intvec_pop_or);
    ("table render", `Quick, test_table_render);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_bitset_roundtrip; prop_bitset_count; prop_rle_roundtrip; prop_heapq_sorts ]
