(* Tests for the OS abstraction layer: pools, failure table, VMM,
   interrupt handling, swap policies and debit-credit accounting. *)

open Holes_osal
module Pcm = Holes_pcm
module Bitset = Holes_stdx.Bitset

let check = Alcotest.check

(* ------------------------- Page / Pools ------------------------- *)

let test_page_kinds () =
  let p = Page.create ~id:3 ~kind:Page.Pcm_perfect in
  Alcotest.(check bool) "perfect" true (Page.is_perfect p);
  Alcotest.(check bool) "first failure marks" true (Page.mark_line_failed p ~line:7);
  Alcotest.(check bool) "kind degrades" true (p.Page.kind = Page.Pcm_imperfect);
  Alcotest.(check bool) "duplicate is no-op" false (Page.mark_line_failed p ~line:7);
  check Alcotest.int "usable lines" 63 (Page.usable_lines p)

let test_page_dram_never_fails () =
  let p = Page.create ~id:0 ~kind:Page.Dram in
  Alcotest.check_raises "DRAM cannot fail"
    (Invalid_argument "Page.mark_line_failed: DRAM pages do not fail") (fun () ->
      ignore (Page.mark_line_failed p ~line:0))

let test_pools_alloc_free () =
  let t = Pools.create ~dram_pages:2 ~pcm_pages:4 in
  check Alcotest.int "dram" 2 (Pools.free_dram_count t);
  check Alcotest.int "perfect" 4 (Pools.free_perfect_count t);
  let d = Option.get (Pools.alloc_dram t) in
  let p = Option.get (Pools.alloc_perfect t) in
  check Alcotest.int "dram taken" 1 (Pools.free_dram_count t);
  Pools.free t d;
  Pools.free t p;
  check Alcotest.int "dram back" 2 (Pools.free_dram_count t);
  check Alcotest.int "perfect back" 4 (Pools.free_perfect_count t)

let test_pools_imperfect_migration () =
  let t = Pools.create ~dram_pages:0 ~pcm_pages:3 in
  ignore (Pools.mark_line_failed t ~page:1 ~line:5);
  check Alcotest.int "perfect shrinks" 2 (Pools.free_perfect_count t);
  check Alcotest.int "imperfect grows" 1 (Pools.free_imperfect_count t);
  (* imperfect alloc prefers most-usable page *)
  ignore (Pools.mark_line_failed t ~page:1 ~line:6);
  let got = Option.get (Pools.alloc_imperfect t) in
  check Alcotest.int "degraded page served" 1 got

let test_pools_pcm_any_prefers_imperfect () =
  let t = Pools.create ~dram_pages:0 ~pcm_pages:2 in
  ignore (Pools.mark_line_failed t ~page:0 ~line:0);
  check Alcotest.int "imperfect first" 0 (Option.get (Pools.alloc_pcm_any t))

(* ------------------------- Failure table ------------------------- *)

let test_failure_table () =
  let t = Failure_table.create ~pcm_pages:4 in
  Failure_table.mark_failed t ~page:2 ~line:9;
  Alcotest.(check bool) "marked" true (Failure_table.is_failed t ~page:2 ~line:9);
  check Alcotest.int "count" 1 (Failure_table.failed_lines t ~page:2);
  check Alcotest.int "total" 1 (Failure_table.total_failed_lines t);
  check Alcotest.int "raw bits = 64/page" 256 (Failure_table.raw_bits t)

let test_failure_table_rebuild () =
  let t = Failure_table.create ~pcm_pages:2 in
  let map = Bitset.create 128 in
  Bitset.set map 3;
  Bitset.set map 100;
  Failure_table.rebuild_from t map;
  Alcotest.(check bool) "page0 line3" true (Failure_table.is_failed t ~page:0 ~line:3);
  Alcotest.(check bool) "page1 line36" true (Failure_table.is_failed t ~page:1 ~line:36)

let test_failure_table_compression () =
  let t = Failure_table.create ~pcm_pages:64 in
  Failure_table.mark_failed t ~page:5 ~line:1;
  Alcotest.(check bool) "sparse table compresses" true
    (Failure_table.rle_bits t < Failure_table.raw_bits t);
  Alcotest.(check bool) "overhead ratio matches bitmap" true
    (abs_float (Failure_table.overhead_ratio t -. (64.0 /. (4096.0 *. 8.0))) < 1e-9)

let test_failure_table_save_load () =
  let t = Failure_table.create ~pcm_pages:8 in
  Failure_table.mark_failed t ~page:1 ~line:5;
  Failure_table.mark_failed t ~page:1 ~line:6;
  Failure_table.mark_failed t ~page:7 ~line:63;
  let img = Failure_table.save t in
  match Failure_table.load img with
  | Error m -> Alcotest.fail m
  | Ok t2 ->
      check Alcotest.int "same page count" 8 (Failure_table.npages t2);
      check Alcotest.int "same failures" 3 (Failure_table.total_failed_lines t2);
      Alcotest.(check bool) "same positions" true
        (Failure_table.is_failed t2 ~page:1 ~line:5
        && Failure_table.is_failed t2 ~page:1 ~line:6
        && Failure_table.is_failed t2 ~page:7 ~line:63)

let test_failure_table_load_corrupt () =
  (match Failure_table.load "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  match Failure_table.load "holes-ft1 8\no100 " with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated image"

(* ------------------------- Accounting ------------------------- *)

let test_accounting_debit_credit () =
  let a = Accounting.create () in
  Accounting.fussy_request a ~pages:3 ~available:1;
  check Alcotest.int "debt = shortfall" 2 (Accounting.debt a);
  check Alcotest.int "borrowed" 2 (Accounting.total_borrowed a);
  check Alcotest.int "satisfied" 1 (Accounting.perfect_satisfied a);
  Alcotest.(check bool) "relaxed declines while in debt" true
    (Accounting.relaxed_offer_perfect a = `Decline);
  check Alcotest.int "debt repaid" 1 (Accounting.debt a);
  Alcotest.(check bool) "second decline" true (Accounting.relaxed_offer_perfect a = `Decline);
  Alcotest.(check bool) "keeps when debt-free" true (Accounting.relaxed_offer_perfect a = `Keep)

let test_accounting_loan_closed () =
  let a = Accounting.create () in
  Accounting.fussy_request a ~pages:1 ~available:0;
  Accounting.loan_closed a;
  check Alcotest.int "loan closure clears debt" 0 (Accounting.debt a);
  Accounting.loan_closed a;
  check Alcotest.int "never negative" 0 (Accounting.debt a)

(* ------------------------- VMM ------------------------- *)

let test_vmm_mmap () =
  let vmm = Vmm.create ~dram_pages:2 ~pcm_pages:4 () in
  let p = Vmm.spawn vmm in
  match Vmm.mmap vmm p ~pages:3 with
  | Error `Out_of_memory -> Alcotest.fail "should fit"
  | Ok virts ->
      check Alcotest.int "three pages" 3 (List.length virts);
      List.iter
        (fun v ->
          Alcotest.(check bool) "mapped" true (Vmm.translate p ~virt:v <> None);
          Alcotest.(check bool) "rw" true (Vmm.protection p ~virt:v = Vmm.Read_write))
        virts

let test_vmm_mmap_oom_rolls_back () =
  let vmm = Vmm.create ~dram_pages:1 ~pcm_pages:1 () in
  let p = Vmm.spawn vmm in
  (match Vmm.mmap vmm p ~pages:5 with
  | Error `Out_of_memory -> ()
  | Ok _ -> Alcotest.fail "expected OOM");
  (* all pages must have been returned *)
  match Vmm.mmap vmm p ~pages:2 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "rollback leaked pages"

let test_vmm_mmap_imperfect_and_failures () =
  let vmm = Vmm.create ~dram_pages:0 ~pcm_pages:2 () in
  (* page 1 (device page 1) is imperfect *)
  Failure_table.mark_failed (Vmm.failure_table vmm) ~page:1 ~line:4;
  ignore (Pools.mark_line_failed (Vmm.pools vmm) ~page:1 ~line:4);
  let p = Vmm.spawn vmm in
  let virts = Result.get_ok (Vmm.mmap_imperfect vmm p ~pages:2) in
  let maps = List.map (fun v -> Vmm.map_failures vmm p ~virt:v) virts in
  let counts = List.map Bitset.count maps |> List.sort compare in
  check (Alcotest.list Alcotest.int) "one perfect, one imperfect" [ 0; 1 ] counts

let test_vmm_reverse_translate () =
  let vmm = Vmm.create ~dram_pages:0 ~pcm_pages:2 () in
  let p = Vmm.spawn vmm in
  let v = List.hd (Result.get_ok (Vmm.mmap vmm p ~pages:1)) in
  let phys = Option.get (Vmm.translate p ~virt:v) in
  (match Vmm.reverse_translate vmm ~phys with
  | Some (pid, virt) ->
      check Alcotest.int "pid" p.Vmm.pid pid;
      check Alcotest.int "virt" v virt
  | None -> Alcotest.fail "reverse translation failed");
  Alcotest.(check bool) "counted" true (Vmm.reverse_translations vmm > 0)

let test_vmm_munmap () =
  let vmm = Vmm.create ~dram_pages:0 ~pcm_pages:1 () in
  let p = Vmm.spawn vmm in
  let v = List.hd (Result.get_ok (Vmm.mmap vmm p ~pages:1)) in
  Vmm.munmap vmm p ~virt:v;
  check Alcotest.int "page freed" 1 (Pools.free_perfect_count (Vmm.pools vmm))

(* ------------------------- Interrupts ------------------------- *)

let wear_quick = { Pcm.Wear.mean_endurance = 25.0; sigma = 0.05; ecp_entries = 1; ecp_extension = 0.1 }

let make_failing_device () =
  Pcm.Device.create
    ~config:{ Pcm.Device.default_config with Pcm.Device.pages = 4; wear = wear_quick; clustering = None }
    ~seed:5 ()

let hammer_until_failure device line =
  let rec go n =
    if n > 1_000_000 then Alcotest.fail "device never failed"
    else
      match Pcm.Device.write device line (Bytes.make Pcm.Geometry.line_bytes 'd') with
      | Pcm.Device.Write_failed -> ()
      | _ -> go (n + 1)
  in
  go 0

let test_interrupt_upcall () =
  let vmm = Vmm.create ~dram_pages:2 ~pcm_pages:4 () in
  let device = make_failing_device () in
  let h = Interrupts.attach ~vmm ~device ~dram_pages:2 () in
  let p = Vmm.spawn vmm in
  ignore (Result.get_ok (Vmm.mmap_imperfect vmm p ~pages:4));
  let upcalls = ref [] in
  Vmm.register_failure_handler p (fun ~virt_page ~line ~data ->
      upcalls := (virt_page, line, data) :: !upcalls);
  hammer_until_failure device (Pcm.Geometry.lines_per_page + 3) (* page 1, line 3 *);
  Alcotest.(check bool) "interrupt pending" true (Interrupts.has_pending h);
  let res = Interrupts.service h in
  Alcotest.(check bool) "upcalled" true
    (List.exists (function Interrupts.Upcalled _ -> true | _ -> false) res);
  (match !upcalls with
  | (virt, line, data) :: _ ->
      check Alcotest.int "line in page" 3 line;
      Alcotest.(check bool) "virt page valid" true (virt >= 0);
      (match data with
      | Some d -> check Alcotest.char "data recovered" 'd' (Bytes.get d 0)
      | None -> Alcotest.fail "expected preserved data")
  | [] -> Alcotest.fail "no upcall recorded");
  (* OS bookkeeping updated *)
  check Alcotest.int "failure table updated" 1
    (Failure_table.total_failed_lines (Vmm.failure_table vmm))

let test_interrupt_page_copy_fallback () =
  let vmm = Vmm.create ~dram_pages:2 ~pcm_pages:8 () in
  let device = make_failing_device () in
  let h = Interrupts.attach ~vmm ~device ~dram_pages:2 () in
  let p = Vmm.spawn vmm in
  (* failure-unaware process: no handler registered; map pages 0..3 *)
  let virts = Result.get_ok (Vmm.mmap_imperfect vmm p ~pages:4) in
  let v0 = List.hd virts in
  let phys_before = Option.get (Vmm.translate p ~virt:v0) in
  hammer_until_failure device 0 (* device page 0, mapped at v0 *);
  let res = Interrupts.service h in
  Alcotest.(check bool) "page copied" true
    (List.exists (function Interrupts.Page_copied _ -> true | _ -> false) res);
  let phys_after = Option.get (Vmm.translate p ~virt:v0) in
  Alcotest.(check bool) "remapped to a different physical page" true (phys_before <> phys_after);
  Alcotest.(check bool) "access restored" true (Vmm.protection p ~virt:v0 = Vmm.Read_write)

(* ------------------------- Swap ------------------------- *)

let test_swap_policies () =
  let pools = Pools.create ~dram_pages:0 ~pcm_pages:4 in
  let table = Failure_table.create ~pcm_pages:4 in
  (* page 1: failure at line 2; page 2: failures at lines 2 and 3 *)
  Failure_table.mark_failed table ~page:1 ~line:2;
  ignore (Pools.mark_line_failed pools ~page:1 ~line:2);
  Failure_table.mark_failed table ~page:2 ~line:2;
  Failure_table.mark_failed table ~page:2 ~line:3;
  ignore (Pools.mark_line_failed pools ~page:2 ~line:2);
  ignore (Pools.mark_line_failed pools ~page:2 ~line:3);
  let src_map = Bitset.create Page.lines_per_page in
  Bitset.set src_map 2;
  Bitset.set src_map 3;
  (* compatible-imperfect: page 1 ({2}) or page 2 ({2,3}) are subsets of src *)
  (match Swap.swap_in pools ~table ~dram_pages:0 ~policy:Swap.Compatible_imperfect ~src_map with
  | Some o -> Alcotest.(check bool) "imperfect dest chosen" true (o.Swap.dest = 1 || o.Swap.dest = 2)
  | None -> Alcotest.fail "no destination");
  (* to-perfect always takes a perfect page *)
  match Swap.swap_in pools ~table ~dram_pages:0 ~policy:Swap.To_perfect ~src_map with
  | Some o ->
      Alcotest.(check bool) "perfect dest" true
        (Page.is_perfect (Pools.page pools o.Swap.dest))
  | None -> Alcotest.fail "no perfect destination"

let test_swap_clustered_count () =
  let a = Bitset.create 64 and b = Bitset.create 64 in
  Bitset.set a 0;
  Bitset.set a 1;
  Bitset.set b 0;
  Alcotest.(check bool) "fewer failures compatible" true
    (Swap.compatible ~policy:Swap.Clustered_count ~src_map:a ~dest_map:b);
  Alcotest.(check bool) "more failures incompatible" false
    (Swap.compatible ~policy:Swap.Clustered_count ~src_map:b ~dest_map:a)

let suite =
  [
    ("page kinds", `Quick, test_page_kinds);
    ("dram never fails", `Quick, test_page_dram_never_fails);
    ("pools alloc/free", `Quick, test_pools_alloc_free);
    ("pools imperfect migration", `Quick, test_pools_imperfect_migration);
    ("pools pcm-any prefers imperfect", `Quick, test_pools_pcm_any_prefers_imperfect);
    ("failure table", `Quick, test_failure_table);
    ("failure table rebuild", `Quick, test_failure_table_rebuild);
    ("failure table compression", `Quick, test_failure_table_compression);
    ("failure table save/load", `Quick, test_failure_table_save_load);
    ("failure table rejects corrupt image", `Quick, test_failure_table_load_corrupt);
    ("accounting debit-credit", `Quick, test_accounting_debit_credit);
    ("accounting loan closed", `Quick, test_accounting_loan_closed);
    ("vmm mmap", `Quick, test_vmm_mmap);
    ("vmm mmap OOM rollback", `Quick, test_vmm_mmap_oom_rolls_back);
    ("vmm mmap_imperfect + map_failures", `Quick, test_vmm_mmap_imperfect_and_failures);
    ("vmm reverse translate", `Quick, test_vmm_reverse_translate);
    ("vmm munmap", `Quick, test_vmm_munmap);
    ("interrupt upcall path", `Quick, test_interrupt_upcall);
    ("interrupt page-copy fallback", `Quick, test_interrupt_page_copy_fallback);
    ("swap policies", `Quick, test_swap_policies);
    ("swap clustered count", `Quick, test_swap_clustered_count);
  ]
