(* Hybrid DRAM/PCM tiering tests (lib/osal/tier.ml + lib/pcm/caram.ml +
   the backend wiring, DESIGN.md §17):

   - tiering-policy CLI round-trips and rejections;
   - content-store round-trip: deduplicated and pattern-compressed
     lines read back bit-exact, survive a flush through the cells, and
     keep the store internally consistent;
   - the hybrid figure cells are bit-identical at -j 1 and -j 4
     (engine determinism through the tier and the content store);
   - the paranoid verifier catches a corrupted residency map
     ([Tier.unsafe_poke]) and a corrupted content-store refcount
     ([Caram.unsafe_poke]);
   - [hybrid = none] leaves the serialized record shape untouched: no
     hyb_* metric fields, no -hyb name tag.  (The committed goldens —
     test/golden/determinism.jsonl and test/golden/fleet.jsonl — are
     all hybrid-off configs, so the golden suites in test_hotpath.ml
     and test_fleet.ml gate the none path bit-for-bit.) *)

open Alcotest
module Pcm = Holes_pcm
module Hy = Pcm.Hybrid
module Cfg = Holes.Config
module Vm = Holes.Vm

(* ---- CLI ------------------------------------------------------------- *)

let test_cli_roundtrip () =
  List.iter
    (fun p ->
      match Hy.of_cli (Hy.to_cli p) with
      | Ok p' -> check bool (Hy.to_cli p) true (p = p')
      | Error e -> fail e)
    [
      Hy.none;
      { Hy.migrate_epoch = Some 512; caram_ways = None };
      { Hy.migrate_epoch = None; caram_ways = Some 4 };
      { Hy.migrate_epoch = Some 512; caram_ways = Some 4 };
    ];
  (match Hy.of_cli "MIGRATE" with
  | Ok { Hy.migrate_epoch = Some e; caram_ways = None } ->
      check int "default epoch" Hy.default_epoch e
  | _ -> fail "case-insensitive migrate with default epoch");
  (match Hy.of_cli "caram:4+migrate:512" with
  | Ok { Hy.migrate_epoch = Some 512; caram_ways = Some 4 } -> ()
  | _ -> fail "combined form is order-insensitive");
  check string "short names" "none,mig512,car4,mig512car4"
    (String.concat ","
       (List.map Hy.short_name
          [
            Hy.none;
            { Hy.migrate_epoch = Some 512; caram_ways = None };
            { Hy.migrate_epoch = None; caram_ways = Some 4 };
            { Hy.migrate_epoch = Some 512; caram_ways = Some 4 };
          ]))

let test_cli_rejects () =
  List.iter
    (fun s ->
      match Hy.of_cli s with
      | Error _ -> ()
      | Ok _ -> fail (Printf.sprintf "%S should not parse" s))
    [
      "bogus"; "migrate:0"; "migrate:-3"; "caram:x"; "migrate:2:3"; "none:5";
      "migrate+migrate"; "caram:4+caram:4"; "";
    ]

(* ---- content-store round-trip ----------------------------------------- *)

(* Write a mix of duplicated, all-same-byte and unique payloads through
   a content-aware device: every line must read back bit-exact, the
   store must report dedup hits and compressions, its internal
   consistency check must stay clean, and tearing the store down must
   flush the bound lines through the cells without losing data. *)
let test_caram_roundtrip () =
  let config =
    { Pcm.Device.default_config with Pcm.Device.pages = 4; caram = Some 4 }
  in
  let dev = Pcm.Device.create ~config ~seed:42 () in
  let line_bytes = Pcm.Geometry.line_bytes in
  let shared = Bytes.init line_bytes (fun i -> Char.chr ((i * 7) land 0xff)) in
  let pattern = Bytes.make line_bytes '\xAB' in
  let expect = Hashtbl.create 64 in
  let put l payload =
    (match Pcm.Device.write dev l payload with
    | Pcm.Device.Stored -> ()
    | _ -> fail (Printf.sprintf "write to line %d did not store" l));
    Hashtbl.replace expect l (Bytes.copy payload)
  in
  (* lines 0..7 share one payload, 8..11 are the pattern, 12..19 unique *)
  for l = 0 to 7 do put l shared done;
  for l = 8 to 11 do put l pattern done;
  for l = 12 to 19 do
    put l (Bytes.init line_bytes (fun i -> Char.chr ((l + (i * 13)) land 0xff)))
  done;
  let check_contents tag =
    Hashtbl.iter
      (fun l payload ->
        check bool
          (Printf.sprintf "%s: line %d reads back bit-exact" tag l)
          true
          (Bytes.equal (Pcm.Device.read dev l) payload))
      expect
  in
  check_contents "store live";
  (match Pcm.Device.caram dev with
  | None -> fail "content store should be live"
  | Some c ->
      let s = Pcm.Caram.stats c in
      check bool "dedup hits recorded" true (s.Pcm.Caram.s_dedup_hits >= 7);
      check bool "compressions recorded" true (s.Pcm.Caram.s_compressed >= 3));
  check (list string) "store internally consistent" [] (Pcm.Device.caram_check dev);
  (* overwrite a deduplicated line with fresh content: the old binding's
     refcount must drop, and the new content must win *)
  let fresh = Bytes.make line_bytes 'f' in
  put 3 fresh;
  check_contents "after overwrite";
  check (list string) "consistent after overwrite" [] (Pcm.Device.caram_check dev);
  (* teardown flushes every bound line through the cells *)
  Pcm.Device.set_caram dev None;
  check bool "store torn down" true (Pcm.Device.caram dev = None);
  check_contents "after flush"

(* ---- engine determinism ----------------------------------------------- *)

(* Every hybrid-figure policy at the 8-frame provisioning, run through
   the engine at -j 1 and -j 4: the serialized outcome (including the
   hyb_* metric fields) must be bit-identical. *)
let test_engine_determinism () =
  let cells =
    List.map
      (fun (_, hybrid) -> Holes_exp.Hybrid_figure.cell_cfg ~hybrid ~dram_pages:8)
      Holes_exp.Hybrid_figure.policies
  in
  let profile = Holes_workload.Dacapo.pmd in
  let specs =
    Array.of_list
      (List.map
         (fun cfg -> { Holes_engine.Job.cfg; profile; scale = 0.04; seed_index = 0 })
         cells)
  in
  let run ~jobs =
    let results =
      Holes_engine.Engine.run ~jobs
        ~f:(fun spec ~seed:_ ->
          Holes_exp.Wear_policies.lifetime_run ~cfg:spec.Holes_engine.Job.cfg
            ~profile:spec.Holes_engine.Job.profile ~scale:spec.Holes_engine.Job.scale
            ~max_rounds:2)
        specs
    in
    Array.to_list results
    |> List.map (fun r ->
           match r.Holes_engine.Engine.outcome with
           | Holes_engine.Pool.Done (o : Holes_exp.Wear_policies.outcome) ->
               Printf.sprintf "%d|%d|%.6f|%s" o.Holes_exp.Wear_policies.rounds
                 o.Holes_exp.Wear_policies.dead_lines o.Holes_exp.Wear_policies.elapsed_ms
                 (String.concat ";"
                    (List.map
                       (fun (k, v) -> Printf.sprintf "%s=%h" k v)
                       (Holes.Metrics.to_fields o.Holes_exp.Wear_policies.m)))
           | Holes_engine.Pool.Failed { exn; _ } -> "failed: " ^ exn)
  in
  check (list string) "-j 4 bit-identical to -j 1" (run ~jobs:1) (run ~jobs:4)

(* ---- verifier mutation ------------------------------------------------ *)

let device_vm ~(hybrid : Hy.policy) : Vm.t =
  let d = Cfg.default_device in
  let cfg =
    {
      Cfg.default with
      Cfg.collector = Cfg.Sticky_immix;
      backend = Cfg.Device { d with Cfg.dram_pages = 8 };
      failure_rate = 0.0;
      hybrid;
    }
  in
  let vm = Vm.create ~cfg ~min_heap_bytes:(256 * 1024) () in
  for _ = 1 to 256 do
    let id = Vm.alloc vm ~size:64 () in
    Vm.kill vm id
  done;
  vm

(* Corrupt the residency map underneath a running VM: the per-phase
   residency check must report it. *)
let test_verifier_catches_tier_poke () =
  let vm = device_vm ~hybrid:{ Hy.migrate_epoch = Some 64; caram_ways = None } in
  let r = Vm.verify vm in
  check (list string) "clean before the poke" [] r.Holes.Verify.errors;
  let st = Option.get (Vm.device_state vm) in
  (match st.Holes.Memory_backend.node.Holes.Memory_backend.n_tier with
  | None -> fail "migration should bring up the tier"
  | Some tier -> Holes_osal.Tier.unsafe_poke tier);
  let r = Vm.verify vm in
  check bool "verifier reports the corrupted residency map" true
    (r.Holes.Verify.errors <> [])

(* Corrupt a content-store refcount: the verifier's caram consistency
   check must report it. *)
let test_verifier_catches_caram_poke () =
  let vm = device_vm ~hybrid:{ Hy.migrate_epoch = None; caram_ways = Some 4 } in
  let r = Vm.verify vm in
  check (list string) "clean before the poke" [] r.Holes.Verify.errors;
  let st = Option.get (Vm.device_state vm) in
  (match Pcm.Device.caram st.Holes.Memory_backend.device with
  | None -> fail "content store should be live"
  | Some c -> Pcm.Caram.unsafe_poke c);
  let r = Vm.verify vm in
  check bool "verifier reports the corrupted content store" true
    (r.Holes.Verify.errors <> [])

(* ---- hybrid=none leaves the record shape untouched -------------------- *)

(* The none policy must be invisible in every serialized surface: no
   hyb_* metric fields, no -hyb tag in the config name — so the
   committed goldens and the cross-PR JSONL trajectory stay comparable.
   With tiering on, the fields appear and the absorption accounting is
   a sane fraction. *)
let test_none_invisible () =
  let run ~hybrid =
    let cfg = Holes_exp.Hybrid_figure.cell_cfg ~hybrid ~dram_pages:8 in
    Holes_exp.Wear_policies.lifetime_run ~cfg ~profile:Holes_workload.Dacapo.pmd
      ~scale:0.04 ~max_rounds:1
  in
  let has_hyb m =
    List.exists
      (fun (k, _) -> String.length k >= 4 && String.sub k 0 4 = "hyb_")
      (Holes.Metrics.to_fields m)
  in
  let off = run ~hybrid:Hy.none in
  check bool "no hyb_* fields when off" false (has_hyb off.Holes_exp.Wear_policies.m);
  let name_off =
    Cfg.name (Holes_exp.Hybrid_figure.cell_cfg ~hybrid:Hy.none ~dram_pages:8)
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check bool "no -hyb tag when off" false (contains name_off "hyb");
  let hybrid = { Hy.migrate_epoch = Some 512; caram_ways = Some 8 } in
  let on = run ~hybrid in
  check bool "hyb_* fields when on" true (has_hyb on.Holes_exp.Wear_policies.m);
  check bool "-hyb tag when on" true
    (contains (Cfg.name (Holes_exp.Hybrid_figure.cell_cfg ~hybrid ~dram_pages:8)) "hybmig512car8");
  let a = Holes_exp.Hybrid_figure.absorption on.Holes_exp.Wear_policies.m in
  check bool "absorption in (0,1]" true (a > 0.0 && a <= 1.0)

let suite =
  [
    ("hybrid policy CLI round-trips", `Quick, test_cli_roundtrip);
    ("hybrid policy CLI rejections", `Quick, test_cli_rejects);
    ("content store round-trips dedup/compressed lines", `Quick, test_caram_roundtrip);
    ("hybrid figure cells bit-identical at -j 1/-j 4", `Quick, test_engine_determinism);
    ("verifier catches a corrupted residency map", `Quick, test_verifier_catches_tier_poke);
    ("verifier catches a corrupted content store", `Quick, test_verifier_catches_caram_poke);
    ("hybrid=none leaves record shape and names untouched", `Quick, test_none_invisible);
  ]
