(* Translation-pipeline tests (lib/pcm/translate.ml + the device's
   composable write path):

   - wear-level policy CLI round-trips and rejections;
   - the composed pipeline stays a bijection under seeded write churn
     with live failures, for every leveling policy;
   - a device + leveling experiment cell is bit-identical at -j 1 and
     -j 4 (engine determinism through the new stage);
   - the paranoid verifier catches a corrupted leveling map
     ([Wear_level.unsafe_poke]);
   - the live start-gap stage reproduces the uniform-scatter failure
     pattern of the retired synthetic model
     ([Wear_ablation.wear_map ~leveled:true]) under hot-spot traffic,
     while the unleveled device concentrates failures in the hot set. *)

open Alcotest
module Pcm = Holes_pcm
module Wl = Pcm.Wear_level
module Tr = Pcm.Translate
module Cfg = Holes.Config
module Vm = Holes.Vm

(* ---- CLI ------------------------------------------------------------- *)

let test_cli_roundtrip () =
  List.iter
    (fun p ->
      match Tr.of_cli (Tr.to_cli p) with
      | Ok p' -> check bool (Tr.to_cli p) true (p = p')
      | Error e -> fail e)
    [
      None;
      Some (Wl.Start_gap { psi = 100 });
      Some (Wl.Random_remap { psi = 7 });
      Some (Wl.Decoder_swap { psi = 250 });
    ];
  (match Tr.of_cli "STARTGAP" with
  | Ok (Some (Wl.Start_gap { psi })) -> check int "default psi" Tr.default_psi psi
  | _ -> fail "case-insensitive startgap with default psi");
  check string "short names" "none,sg100,rr7,ds250"
    (String.concat ","
       (List.map Tr.short_name
          [
            None;
            Some (Wl.Start_gap { psi = 100 });
            Some (Wl.Random_remap { psi = 7 });
            Some (Wl.Decoder_swap { psi = 250 });
          ]))

let test_cli_rejects () =
  List.iter
    (fun s ->
      match Tr.of_cli s with
      | Error _ -> ()
      | Ok _ -> fail (Printf.sprintf "%S should not parse" s))
    [ "bogus"; "startgap:0"; "startgap:-3"; "random:x"; "decoder:1:2"; "none:5" ]

(* ---- permutation under churn ------------------------------------------ *)

(* Hammer a clustered, low-endurance device with random writes (draining
   each failure like the OS would) and assert the composed pipeline is
   still a bijection every 512 writes.  Exercises gap moves, remaps,
   redirect swaps and frozen pairs together. *)
let churn_policy (policy : Wl.policy) () =
  let config =
    {
      Pcm.Device.default_config with
      Pcm.Device.pages = 16;
      wear = { Pcm.Wear.fast_params with Pcm.Wear.mean_endurance = 12.0 };
      wear_level = Some policy;
    }
  in
  let dev = Pcm.Device.create ~config ~seed:42 () in
  Pcm.Device.on_line_failed dev (fun ~addr ~unusable:_ ->
      ignore (Pcm.Device.drain_failure dev addr));
  let nlines = Pcm.Device.nlines dev in
  let payload = Bytes.make Pcm.Geometry.line_bytes 'c' in
  let rng = Holes_stdx.Xrng.of_seed 7 in
  for i = 1 to 16384 do
    let l = Holes_stdx.Xrng.int rng nlines in
    if Pcm.Device.line_usable dev l then ignore (Pcm.Device.write dev l payload);
    if i mod 512 = 0 then
      match Pcm.Device.check_translation dev with
      | Ok () -> ()
      | Error e -> fail (Printf.sprintf "after %d writes: %s" i e)
  done;
  let s = Pcm.Device.stats dev in
  check bool "wear failures occurred" true (s.Pcm.Device.failures > 0);
  match Pcm.Device.wear_stage dev with
  | None -> fail "no wear stage installed"
  | Some w -> check bool "leveling stage active" true (Wl.gap_moves w + Wl.remaps w > 0)

(* ---- engine determinism ----------------------------------------------- *)

(* One experiment cell per policy (uniform boot failures, device
   backend), run through the engine at -j 1 and -j 4: the serialized
   outcome must be bit-identical. *)
let test_engine_determinism () =
  let cells =
    List.map
      (fun (_, policy) -> Holes_exp.Wear_policies.cell_cfg ~model:Cfg.From_dist ~policy)
      Holes_exp.Wear_policies.policies
  in
  let profile = Holes_workload.Dacapo.pmd in
  let specs =
    Array.of_list
      (List.map
         (fun cfg -> { Holes_engine.Job.cfg; profile; scale = 0.04; seed_index = 0 })
         cells)
  in
  let run ~jobs =
    let results =
      Holes_engine.Engine.run ~jobs
        ~f:(fun spec ~seed:_ ->
          Holes_exp.Wear_policies.lifetime_run ~cfg:spec.Holes_engine.Job.cfg
            ~profile:spec.Holes_engine.Job.profile ~scale:spec.Holes_engine.Job.scale
            ~max_rounds:2)
        specs
    in
    Array.to_list results
    |> List.map (fun r ->
           match r.Holes_engine.Engine.outcome with
           | Holes_engine.Pool.Done (o : Holes_exp.Wear_policies.outcome) ->
               Printf.sprintf "%d|%d|%d|%.6f|%s" o.Holes_exp.Wear_policies.rounds
                 o.Holes_exp.Wear_policies.dead_lines o.Holes_exp.Wear_policies.dead_runs
                 o.Holes_exp.Wear_policies.elapsed_ms
                 (String.concat ";"
                    (List.map
                       (fun (k, v) -> Printf.sprintf "%s=%h" k v)
                       (Holes.Metrics.to_fields o.Holes_exp.Wear_policies.m)))
           | Holes_engine.Pool.Failed { exn; _ } -> "failed: " ^ exn)
  in
  check (list string) "-j 4 bit-identical to -j 1" (run ~jobs:1) (run ~jobs:4)

(* ---- verifier mutation ------------------------------------------------ *)

(* Corrupt the live leveling permutation underneath a running VM: the
   per-phase translation-consistency check must report it. *)
let test_verifier_catches_poke () =
  let d = Cfg.default_device in
  let cfg =
    {
      Cfg.default with
      Cfg.collector = Cfg.Sticky_immix;
      backend = Cfg.Device d;
      failure_rate = 0.0;
      wear_level = Some (Wl.Start_gap { psi = 1000 });
    }
  in
  let vm = Vm.create ~cfg ~min_heap_bytes:(256 * 1024) () in
  for _ = 1 to 64 do
    ignore (Vm.alloc vm ~size:64 ())
  done;
  let r = Vm.verify vm in
  check (list string) "clean before the poke" [] r.Holes.Verify.errors;
  let st = Option.get (Vm.device_state vm) in
  let w = Option.get (Pcm.Device.wear_stage st.Holes.Memory_backend.device) in
  (* map two logical lines onto one slot: no longer a permutation *)
  Wl.unsafe_poke w ~logical:3 ~slot:(Wl.translate w 4);
  let r = Vm.verify vm in
  check bool "verifier reports the corrupted pipeline" true
    (r.Holes.Verify.errors <> [])

(* ---- live start-gap vs the synthetic leveled wear map ----------------- *)

(* Drive an unclustered, low-endurance device with hot-spot traffic (90%
   of writes to the first quarter of the lines) until 20% of the device
   has failed, and record where the failed *cells* are — the slot domain
   below the leveler, which is what the synthetic wear model predicts.
   The device is small and psi is 1 so the start-gap rotation cycles the
   whole mapping several times within the device lifetime (as the real
   technique does over its much longer timescale): each cell spends time
   under hot and cold logical lines alike, wear equalizes, and the dying
   cells scatter uniformly.  Without leveling the mapping is pinned and
   only the hot cells die. *)
let live_failure_map ~(policy : Wl.policy option) : Holes_stdx.Bitset.t * int =
  let config =
    {
      Pcm.Device.default_config with
      Pcm.Device.pages = 2;
      clustering = None;
      wear = { Pcm.Wear.fast_params with Pcm.Wear.mean_endurance = 400.0 };
      wear_level = policy;
    }
  in
  let dev = Pcm.Device.create ~config ~seed:11 () in
  let nlines = Pcm.Device.nlines dev in
  let failures = Holes_stdx.Bitset.create nlines in
  let nfail = ref 0 in
  Pcm.Device.on_line_failed dev (fun ~addr ~unusable:_ ->
      (* [addr] is the logical line whose write died; the frozen pair
         pins it to its slot, so translating it now names the dead cell.
         Leveling re-reservations only ride along in [unusable]. *)
      let cell = Pcm.Device.physical_of_logical dev addr in
      if not (Holes_stdx.Bitset.get failures cell) then begin
        Holes_stdx.Bitset.set failures cell;
        incr nfail
      end;
      ignore (Pcm.Device.drain_failure dev addr));
  let payload = Bytes.make Pcm.Geometry.line_bytes 'h' in
  let rng = Holes_stdx.Xrng.of_seed 23 in
  let hot = nlines / 4 in
  let target = nlines / 5 in
  let writes = ref 0 in
  while !nfail < target && !writes < 2_000_000 do
    incr writes;
    let l =
      if Holes_stdx.Xrng.int rng 10 < 9 then Holes_stdx.Xrng.int rng hot
      else Holes_stdx.Xrng.int rng nlines
    in
    if Pcm.Device.line_usable dev l then ignore (Pcm.Device.write dev l payload)
  done;
  check int "reached the target failure count" target !nfail;
  (failures, hot)

let test_startgap_scatters_like_synthetic () =
  let frac_outside_hot (map, hot) =
    let inside = ref 0 and total = ref 0 in
    Holes_stdx.Bitset.iter_set map (fun l ->
        incr total;
        if l < hot then incr inside);
    float_of_int (!total - !inside) /. float_of_int !total
  in
  let unleveled = live_failure_map ~policy:None in
  let leveled = live_failure_map ~policy:(Some (Wl.Start_gap { psi = 1 })) in
  (* without leveling, hot-spot traffic concentrates the deaths *)
  check bool "unleveled failures stay in the hot set" true
    (frac_outside_hot unleveled < 0.25);
  (* start-gap spreads the same wear budget across the whole device *)
  check bool "start-gap scatters failures device-wide" true
    (frac_outside_hot leveled > 0.45);
  (* dispersion statistically matches the synthetic leveled map at the
     same rate: mean contiguous failed-run length within 2.5x *)
  let synthetic =
    Holes_exp.Wear_ablation.wear_map
      (Holes_stdx.Xrng.of_seed 2718)
      ~nlines:(Holes_stdx.Bitset.length (fst leveled))
      ~rate:0.20 ~leveled:true
  in
  let live_run = Holes_exp.Wear_ablation.mean_failed_run (fst leveled) in
  let synth_run = Holes_exp.Wear_ablation.mean_failed_run synthetic in
  let ratio = live_run /. synth_run in
  check bool
    (Printf.sprintf "failed-run dispersion matches (live %.2f vs synthetic %.2f)" live_run
       synth_run)
    true
    (ratio > 0.4 && ratio < 2.5);
  (* and the unleveled live map is the more clustered of the two *)
  check bool "leveling reduces clustering" true
    (Holes_exp.Wear_ablation.mean_failed_run (fst unleveled) >= live_run)

let suite =
  [
    ("wear-level CLI round-trips", `Quick, test_cli_roundtrip);
    ("wear-level CLI rejects malformed specs", `Quick, test_cli_rejects);
    ("pipeline stays a bijection under churn (start-gap)", `Quick,
      churn_policy (Wl.Start_gap { psi = 32 }));
    ("pipeline stays a bijection under churn (random remap)", `Quick,
      churn_policy (Wl.Random_remap { psi = 32 }));
    ("pipeline stays a bijection under churn (decoder swap)", `Quick,
      churn_policy (Wl.Decoder_swap { psi = 32 }));
    ("leveling experiment cells bit-identical at -j 1 / -j 4", `Slow,
      test_engine_determinism);
    ("verifier catches a corrupted leveling map", `Quick, test_verifier_catches_poke);
    ("live start-gap matches the synthetic leveled wear map", `Slow,
      test_startgap_scatters_like_synthetic);
  ]
