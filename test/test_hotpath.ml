(* Property tests for the word-level hot paths (DESIGN.md §9): every
   packed-word operation is replayed against a naive per-bit reference
   on thousands of seeded random states, and the experiment pipeline is
   pinned to a committed golden snapshot — the representation change
   must be invisible in both results and the charged cost model.

   To regenerate the golden after an intentional results change:

     HOLES_UPDATE_GOLDEN=test/golden/determinism.jsonl \
       dune exec test/test_main.exe -- test hotpath *)

module B = Holes_stdx.Bitset
module Rng = Holes_stdx.Xrng
module Block = Holes_heap.Block
module R = Holes_exp.Runner
module Sink = Holes_engine.Sink
module Cfg = Holes.Config

let check = Alcotest.check

(* ---- naive per-bit reference ----------------------------------------- *)

let naive_next_set (a : bool array) (from : int) : int option =
  let n = Array.length a in
  let rec go i = if i >= n then None else if a.(i) then Some i else go (i + 1) in
  go (max 0 from)

let naive_next_clear (a : bool array) (from : int) : int option =
  let n = Array.length a in
  let rec go i = if i >= n then None else if a.(i) then go (i + 1) else Some i in
  go (max 0 from)

(* end (exclusive) of the run of set bits starting at [i] *)
let run_end (a : bool array) (i : int) : int =
  let n = Array.length a in
  let rec go i = if i < n && a.(i) then go (i + 1) else i in
  go i

let naive_next_set_run (a : bool array) (from : int) : (int * int) option =
  match naive_next_set a from with
  | None -> None
  | Some s -> Some (s, run_end a (s + 1))

let naive_find_set_run (a : bool array) ~(from : int) ~(min_len : int) :
    (int * int) option =
  let n = Array.length a in
  let rec go i =
    if i >= n then None
    else if a.(i) then
      let e = run_end a i in
      if e - i >= min_len then Some (i, e) else go e
    else go (i + 1)
  in
  go (max 0 from)

let naive_count (a : bool array) : int =
  Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 a

let naive_count_runs (a : bool array) : int =
  let runs = ref 0 in
  Array.iteri (fun i v -> if v && (i = 0 || not a.(i - 1)) then incr runs) a;
  !runs

let naive_subset (a : bool array) (b : bool array) : bool =
  let ok = ref true in
  Array.iteri (fun i v -> if v && not b.(i) then ok := false) a;
  !ok

(* ---- bitset primitives vs reference ---------------------------------- *)

let opt_pair = Alcotest.(option (pair int int))

let test_bitset_vs_naive () =
  let rng = Rng.of_seed 0xb175 in
  (* word-boundary lengths get extra weight: that is where packed-word
     code goes wrong *)
  let edge_lens = [| 1; 2; 62; 63; 64; 65; 125; 126; 127; 189; 252; 315 |] in
  for case = 1 to 12_000 do
    let len =
      if case land 3 = 0 then edge_lens.(Rng.int rng (Array.length edge_lens))
      else 1 + Rng.int rng 320
    in
    let density = Rng.float rng in
    let a = Array.init len (fun _ -> Rng.float rng < density) in
    let t = B.of_bool_array a in
    (* point mutations exercise set/clear, not just of_bool_array *)
    for _ = 1 to 3 do
      let i = Rng.int rng len in
      let v = Rng.bool rng in
      a.(i) <- v;
      B.assign t i v
    done;
    let from = Rng.int rng (len + 3) - 1 in
    let min_len = 1 + Rng.int rng 130 in
    check Alcotest.(option int) "next_set" (naive_next_set a from) (B.next_set t from);
    check Alcotest.(option int) "next_clear" (naive_next_clear a from) (B.next_clear t from);
    check opt_pair "next_set_run" (naive_next_set_run a from) (B.next_set_run t from);
    check opt_pair "find_set_run"
      (naive_find_set_run a ~from ~min_len)
      (B.find_set_run t ~from ~min_len);
    check Alcotest.int "count" (naive_count a) (B.count t);
    check Alcotest.int "count_runs" (naive_count_runs a) (B.count_runs t);
    (* subset/equal: a perturbed copy is a superset half the time *)
    let b_arr = Array.copy a in
    if Rng.bool rng then
      for _ = 1 to 2 do b_arr.(Rng.int rng len) <- true done
    else begin
      let i = Rng.int rng len in
      b_arr.(i) <- not b_arr.(i)
    end;
    let b = B.of_bool_array b_arr in
    check Alcotest.bool "subset" (naive_subset a b_arr) (B.subset t b);
    check Alcotest.bool "equal" (a = b_arr) (B.equal t b)
  done

(* ---- block hole search vs reference ---------------------------------- *)

(* Random blocks with random failure bitmaps and churning single-line
   objects; [find_hole] (including the charged [lines_examined]) must
   match a per-bit scan of a mirrored free map at every step — in
   particular the [hole_bound] fast path may never reject a request a
   real scan would satisfy. *)
let test_find_hole_vs_naive () =
  let rng = Rng.of_seed 0x401e in
  let line_sizes = [| 64; 128; 256 |] in
  for _case = 1 to 400 do
    let line_size = line_sizes.(Rng.int rng (Array.length line_sizes)) in
    let fail_p = Rng.float rng *. 0.15 in
    let lines_per_page = Holes_pcm.Geometry.lines_per_page in
    let bitmaps =
      Array.init Holes_heap.Units.pages_per_block (fun _ ->
          let b = B.create lines_per_page in
          for i = 0 to lines_per_page - 1 do
            if Rng.float rng < fail_p then B.set b i
          done;
          b)
    in
    let blk =
      Block.create ~tbl:(Block.table_create ()) ~index:0 ~base:0 ~line_size
        ~pages:(Array.init Holes_heap.Units.pages_per_block Fun.id)
        ~page_bitmap:(fun id -> bitmaps.(id))
    in
    let nlines = blk.Block.nlines in
    let free = Array.init nlines (fun l -> Block.line_state blk l = Block.Free) in
    let placed = ref [] in
    for _q = 1 to 30 do
      (* churn: place an object on a free line, reclaim one, or fail a
         free line — keeping the mirror in lockstep *)
      (match Rng.int rng 4 with
      | 0 -> (
          match naive_next_set free (Rng.int rng nlines) with
          | Some l ->
              Block.add_object_lines blk ~addr:(l * line_size) ~size:line_size;
              free.(l) <- false;
              placed := l :: !placed
          | None -> ())
      | 1 -> (
          match !placed with
          | l :: rest ->
              Block.remove_object_lines blk ~addr:(l * line_size) ~size:line_size;
              free.(l) <- true;
              placed := rest
          | [] -> ())
      | 2 -> (
          match naive_next_set free (Rng.int rng nlines) with
          | Some l ->
              (match Block.fail_line blk ~line:l with
              | `Was_free -> ()
              | r ->
                  Alcotest.failf "fail_line on free line %d reported %s" l
                    (match r with `Was_live -> "live" | _ -> "failed"));
              free.(l) <- false
          | None -> ())
      | _ -> ());
      let from_line = Rng.int rng (nlines + 3) - 1 in
      let min_bytes = 1 + Rng.int rng (12 * line_size) in
      let needed = (min_bytes + line_size - 1) / line_size in
      let expect =
        match naive_find_set_run free ~from:(max 0 from_line) ~min_len:needed with
        | None -> None
        | Some (s, e) -> Some (s, e, e - max 0 from_line)
      in
      check
        Alcotest.(option (triple int int int))
        "find_hole" expect
        (Block.find_hole blk ~from_line ~min_bytes);
      check Alcotest.int "count_holes" (naive_count_runs free) (Block.count_holes blk)
    done
  done

(* ---- bump fast path vs scan-per-refill reference ---------------------- *)

let naive_longest_free_run (a : bool array) : int =
  let best = ref 0 and cur = ref 0 in
  Array.iter
    (fun v ->
      if v then begin
        incr cur;
        if !cur > !best then best := !cur
      end
      else cur := 0)
    a;
  !best

let make_failed_block (rng : Rng.t) ~(line_size : int) ~(fail_p : float) : Block.t =
  let lines_per_page = Holes_pcm.Geometry.lines_per_page in
  let bitmaps =
    Array.init Holes_heap.Units.pages_per_block (fun _ ->
        let b = B.create lines_per_page in
        for i = 0 to lines_per_page - 1 do
          if Rng.float rng < fail_p then B.set b i
        done;
        b)
  in
  Block.create ~tbl:(Block.table_create ()) ~index:0 ~base:0 ~line_size
    ~pages:(Array.init Holes_heap.Units.pages_per_block Fun.id)
    ~page_bitmap:(fun id -> bitmaps.(id))

(* The allocation fast path bumps a cursor through a previously found
   hole and re-enters [find_hole] only on exhaustion (DESIGN.md §13).
   The reference allocator below follows the identical refill policy —
   scan from the spent hole's limit, wrap to the block start — but
   performs every search as a naive per-bit scan over a mirrored free
   map.  A packed-word scan bug, mis-maintained line accounting, or a
   [hole_bound] cache that decays below the true longest run (rejecting
   a satisfiable refill) all diverge the address sequences.  Churn
   between allocations — object death anywhere, dynamic line failures
   outside the active hole — is what ages the cached bound. *)
let test_bump_vs_reference () =
  let rng = Rng.of_seed 0xb04d in
  let line_sizes = [| 64; 128; 256 |] in
  for _case = 1 to 60 do
    let ls = line_sizes.(Rng.int rng (Array.length line_sizes)) in
    let blk = make_failed_block rng ~line_size:ls ~fail_p:(Rng.float rng *. 0.2) in
    let nlines = blk.Block.nlines in
    let free = Array.init nlines (fun l -> Block.line_state blk l = Block.Free) in
    let flty = Array.init nlines (fun l -> Block.line_state blk l = Block.Failed) in
    let live = Array.make nlines 0 in
    let m_add addr size =
      let lo = addr / ls and hi = (addr + size - 1) / ls in
      for l = lo to hi do
        if flty.(l) then Alcotest.failf "placement covers failed line %d" l;
        if live.(l) = 0 then free.(l) <- false;
        live.(l) <- live.(l) + 1
      done
    in
    let m_remove addr size =
      let lo = addr / ls and hi = (addr + size - 1) / ls in
      for l = lo to hi do
        live.(l) <- live.(l) - 1;
        if live.(l) = 0 then free.(l) <- true
      done
    in
    (* real side: Immix's cursor policy over the packed block *)
    let cursor = ref 0 and limit = ref 0 in
    let real_alloc size =
      if !cursor + size <= !limit then begin
        let a = !cursor in
        cursor := a + size;
        Block.add_object_lines blk ~addr:a ~size;
        Some a
      end
      else
        let refill from_line =
          match Block.find_hole blk ~from_line ~min_bytes:size with
          | Some (s, e, _) ->
              cursor := s * ls;
              limit := e * ls;
              true
          | None -> false
        in
        if refill (!limit / ls) || refill 0 then begin
          let a = !cursor in
          cursor := a + size;
          Block.add_object_lines blk ~addr:a ~size;
          Some a
        end
        else None
    in
    (* reference side: the same policy, every search a per-bit scan *)
    let mcursor = ref 0 and mlimit = ref 0 in
    let mirror_alloc size =
      let needed = (size + ls - 1) / ls in
      if !mcursor + size <= !mlimit then begin
        let a = !mcursor in
        mcursor := a + size;
        m_add a size;
        Some a
      end
      else
        let refill from =
          match naive_find_set_run free ~from ~min_len:needed with
          | Some (s, e) ->
              mcursor := s * ls;
              mlimit := e * ls;
              true
          | None -> false
        in
        if refill (!mlimit / ls) || refill 0 then begin
          let a = !mcursor in
          mcursor := a + size;
          m_add a size;
          Some a
        end
        else None
    in
    let placed = ref [] in
    for _op = 1 to 300 do
      (match Rng.int rng 8 with
      | 0 | 1 -> (
          (* object death: reclaim a placed object *)
          match !placed with
          | (a, sz) :: rest ->
              Block.remove_object_lines blk ~addr:a ~size:sz;
              m_remove a sz;
              placed := rest
          | [] -> ())
      | 2 -> (
          (* dynamic failure on a free line outside the active hole *)
          match naive_next_set free (Rng.int rng nlines) with
          | Some l when l < !cursor / ls || l >= !limit / ls ->
              (match Block.fail_line blk ~line:l with
              | `Was_free -> ()
              | _ -> Alcotest.fail "fail_line on mirrored-free line not `Was_free");
              free.(l) <- false;
              flty.(l) <- true
          | _ -> ())
      | _ ->
          let size = 1 + Rng.int rng (4 * ls) in
          let got = real_alloc size and want = mirror_alloc size in
          check Alcotest.(option int) "bump address" want got;
          (match got with Some a -> placed := (a, size) :: !placed | None -> ()));
      check Alcotest.int "free_lines" (naive_count free) (Block.free_lines blk);
      Alcotest.(check bool) "hole_bound is an upper bound" true
        (naive_longest_free_run free <= Block.hole_bound blk)
    done
  done

(* ---- mark deque vs oracle reference ----------------------------------- *)

(* The flat batched mark deque replaced a per-slot recursive walk; the
   observable contract is unchanged: after a full collection exactly the
   oracle-live objects survive, every dead slot is released for reuse,
   and the rebuilt block line accounting matches a naive recomputation
   from the survivors — which is precisely what [Vm.verify] replays
   (per-line live maps, counts, hole bounds, charge conservation). *)
let test_mark_deque_vs_reference () =
  let rng = Rng.of_seed 0x6c01 in
  for _case = 1 to 6 do
    let cfg = { Cfg.default with Cfg.failure_rate = 0.1 } in
    let vm = Holes.Vm.create ~cfg ~min_heap_bytes:(2 * 1024 * 1024) () in
    let objects = Holes.Vm.objects vm in
    let ids = Array.init 800 (fun _ -> Holes.Vm.alloc vm ~size:(16 + Rng.int rng 240) ()) in
    (* random edges, including from and into objects about to die: edge
       charges are per-survivor, dead sources must not resurrect dsts *)
    for _ = 1 to 1200 do
      let s = ids.(Rng.int rng (Array.length ids)) in
      let d = ids.(Rng.int rng (Array.length ids)) in
      if s <> d then Holes.Vm.write_ref vm ~src:s ~dst:d
    done;
    Array.iter (fun id -> if Rng.bool rng then Holes.Vm.kill vm id) ids;
    let expected_alive =
      Array.to_list ids |> List.filter (Holes_heap.Object_table.is_alive objects)
    in
    Holes.Vm.collect vm ~full:true;
    List.iter
      (fun id ->
        Alcotest.(check bool) "survivor alive" true
          (Holes_heap.Object_table.is_alive objects id))
      expected_alive;
    Array.iter
      (fun id ->
        if not (Holes_heap.Object_table.is_alive objects id) then
          check Alcotest.int "dead slot released" (-1)
            (Holes_heap.Object_table.addr objects id))
      ids;
    check Alcotest.int "live_count" (List.length expected_alive)
      (Holes_heap.Object_table.live_count objects);
    match (Holes.Vm.verify vm).Holes.Verify.errors with
    | [] -> ()
    | e :: _ -> Alcotest.failf "verify after collect: %s" e
  done

(* ---- fused sweep vs naive per-line sweep ------------------------------ *)

(* [Block.sweep] recomputes the hole bound in one word-level pass over
   the packed free map.  The reference recomputes it per line from a
   mirror rebuilt the way the mark loop rebuilds the block: clear, then
   re-add the survivors. *)
let test_fused_sweep_vs_naive () =
  let rng = Rng.of_seed 0x53ee in
  let line_sizes = [| 64; 128; 256 |] in
  for _case = 1 to 200 do
    let ls = line_sizes.(Rng.int rng (Array.length line_sizes)) in
    let blk = make_failed_block rng ~line_size:ls ~fail_p:(Rng.float rng *. 0.3) in
    let nlines = blk.Block.nlines in
    Block.clear_marks blk;
    let free = Array.init nlines (fun l -> Block.line_state blk l = Block.Free) in
    (* re-add surviving objects, as the mark loop does *)
    for _ = 1 to 40 do
      let needed = 1 + Rng.int rng 4 in
      match naive_find_set_run free ~from:(Rng.int rng nlines) ~min_len:needed with
      | Some (s, _) ->
          Block.add_object_lines blk ~addr:(s * ls) ~size:(needed * ls);
          for l = s to s + needed - 1 do
            free.(l) <- false
          done
      | None -> ()
    done;
    Block.set_recyclable blk true;
    let freec = Block.sweep blk in
    check Alcotest.int "sweep free count" (naive_count free) freec;
    check Alcotest.int "sweep free_lines" (naive_count free) (Block.free_lines blk);
    check Alcotest.int "sweep exact hole bound" (naive_longest_free_run free)
      (Block.hole_bound blk);
    Alcotest.(check bool) "sweep clears recyclable" false (Block.recyclable blk)
  done

(* ---- experiment-pipeline determinism golden --------------------------- *)


let grid_cfgs = [ Cfg.default; { Cfg.default with Cfg.failure_rate = 0.25 } ]
let grid_profiles = [ Holes_workload.Dacapo.luindex; Holes_workload.Dacapo.avrora ]

let find_sub (haystack : string) (needle : string) : int option =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub haystack i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* drop ["worker":N,"duration_s":F,] — scheduling noise, everything else
   is the deterministic trial outcome *)
let strip_schedule (l : string) : string =
  match find_sub l "\"worker\":" with
  | None -> l
  | Some i ->
      let rec nth_comma j k =
        if l.[j] = ',' then if k = 1 then j else nth_comma (j + 1) (k - 1)
        else nth_comma (j + 1) k
      in
      let j = nth_comma i 2 in
      String.sub l 0 i ^ String.sub l (j + 1) (String.length l - j - 1)

let read_lines (path : string) : string list =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let grid_lines ~(jobs : int) : string list =
  let path = Filename.temp_file "holes_golden" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      R.clear_cache ();
      let sink = Sink.create ~path ~progress:false () in
      R.set_sink (Some sink);
      Fun.protect
        ~finally:(fun () ->
          R.set_sink None;
          Sink.close sink;
          R.clear_cache ())
        (fun () ->
          let params = { R.scale = 0.05; seeds = 2; jobs } in
          R.prefetch ~params ~cfgs:grid_cfgs ~profiles:grid_profiles ();
          List.iter
            (fun cfg ->
              List.iter
                (fun profile -> ignore (R.run ~params ~cfg ~profile ()))
                grid_profiles)
            grid_cfgs);
      read_lines path |> List.map strip_schedule |> List.sort compare)

let golden_path = "golden/determinism.jsonl"

let test_golden_determinism () =
  let j1 = grid_lines ~jobs:1 in
  let j4 = grid_lines ~jobs:4 in
  check Alcotest.(list string) "-j 4 bit-identical to -j 1" j1 j4;
  match Sys.getenv_opt "HOLES_UPDATE_GOLDEN" with
  | Some out ->
      let oc = open_out out in
      List.iter (fun l -> output_string oc (l ^ "\n")) j1;
      close_out oc;
      Printf.printf "(wrote %s)\n" out
  | None ->
      check
        Alcotest.(list string)
        "matches committed golden" (read_lines golden_path) j1

let suite =
  [
    ("bitset ops vs per-bit reference (12k cases)", `Quick, test_bitset_vs_naive);
    ("find_hole vs per-bit reference (12k queries)", `Quick, test_find_hole_vs_naive);
    ("bump fast path vs scan-per-refill reference", `Quick, test_bump_vs_reference);
    ("mark deque vs oracle reference", `Quick, test_mark_deque_vs_reference);
    ("fused sweep vs naive per-line sweep", `Quick, test_fused_sweep_vs_naive);
    ("experiment grid matches golden, -j independent", `Quick, test_golden_determinism);
  ]
