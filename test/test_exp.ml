(* Tests for the experiment harness: runner memoization, normalization,
   DNF handling, wear-ablation map synthesis, and one end-to-end figure
   smoke test. *)

module R = Holes_exp.Runner
module Cfg = Holes.Config
module Bitset = Holes_stdx.Bitset

let check = Alcotest.check

let tiny = { R.scale = 0.05; seeds = 2; jobs = 1 }

let test_runner_basic () =
  let o = R.run ~params:tiny ~cfg:Cfg.default ~profile:Holes_workload.Dacapo.luindex () in
  check Alcotest.int "all trials ran" 2 o.R.trials;
  check Alcotest.int "all completed" 2 o.R.completed;
  match R.time_if_all_completed o with
  | Some t -> Alcotest.(check bool) "positive time" true (t > 0.0)
  | None -> Alcotest.fail "expected time"

let test_runner_memoizes () =
  let o1 = R.run ~params:tiny ~cfg:Cfg.default ~profile:Holes_workload.Dacapo.luindex () in
  let o2 = R.run ~params:tiny ~cfg:Cfg.default ~profile:Holes_workload.Dacapo.luindex () in
  Alcotest.(check bool) "same cached outcome" true (o1 == o2)

let test_runner_seed_variation () =
  (* different seeds produce (at least slightly) different times *)
  let o = R.run ~params:{ R.scale = 0.05; seeds = 3; jobs = 1 } ~cfg:Cfg.default
      ~profile:Holes_workload.Dacapo.bloat () in
  match o.R.time_ms with
  | Some s -> Alcotest.(check bool) "variance across seeds" true (s.Holes_stdx.Stats.max > s.Holes_stdx.Stats.min)
  | None -> Alcotest.fail "expected summary"

let test_geomean_normalized_baseline_is_one () =
  let profiles = [ Holes_workload.Dacapo.luindex; Holes_workload.Dacapo.avrora ] in
  match
    R.geomean_normalized ~params:tiny ~cfg:Cfg.default ~base:Cfg.default ~profiles ()
  with
  | Some g -> check (Alcotest.float 1e-9) "self-normalization = 1" 1.0 g
  | None -> Alcotest.fail "expected geomean"

let test_wear_map_properties () =
  let rng = Holes_stdx.Xrng.of_seed 1 in
  let nlines = 64 * 64 in
  let leveled = Holes_exp.Wear_ablation.wear_map rng ~nlines ~rate:0.2 ~leveled:true in
  let rng2 = Holes_stdx.Xrng.of_seed 1 in
  let unleveled = Holes_exp.Wear_ablation.wear_map rng2 ~nlines ~rate:0.2 ~leveled:false in
  check Alcotest.int "leveled exact count" (nlines / 5) (Bitset.count leveled);
  check Alcotest.int "unleveled exact count" (nlines / 5) (Bitset.count unleveled);
  (* concentrated wear leaves more perfect pages *)
  Alcotest.(check bool) "unleveled concentrates failures" true
    (Holes_pcm.Failure_map.perfect_pages unleveled > Holes_pcm.Failure_map.perfect_pages leveled)

let contains (haystack : string) (needle : string) : bool =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_headline_figure_smoke () =
  (* end-to-end: the headline table renders with plausible content *)
  let t = Holes_exp.Figures.headline ~params:tiny () in
  let s = Holes_stdx.Table.render t in
  Alcotest.(check bool) "mentions clustering" true (contains s "2-page clustering");
  Alcotest.(check bool) "has overhead or DNF cells" true
    (contains s "%" || contains s "DNF")

let test_pauses_figure_smoke () =
  let t = Holes_exp.Figures.pauses ~params:tiny () in
  let s = Holes_stdx.Table.render t in
  Alcotest.(check bool) "row per benchmark" true (contains s "hsqldb" && contains s "xalan")

let suite =
  [
    ("runner basic", `Quick, test_runner_basic);
    ("runner memoizes", `Quick, test_runner_memoizes);
    ("runner seed variation", `Quick, test_runner_seed_variation);
    ("geomean self-normalization", `Quick, test_geomean_normalized_baseline_is_one);
    ("wear map properties", `Quick, test_wear_map_properties);
    ("headline figure smoke", `Slow, test_headline_figure_smoke);
    ("pauses figure smoke", `Slow, test_pauses_figure_smoke);
  ]
