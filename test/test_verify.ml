(* Mutation tests for the paranoid heap verifier: a healthy heap passes,
   and each deliberately corrupted invariant is caught — with a usable
   one-line repro command from the torture driver. *)

module Cfg = Holes.Config
module Vm = Holes.Vm
module Verify = Holes.Verify
module Metrics = Holes.Metrics
module Immix = Holes.Immix
module Block = Holes_heap.Block
module Page_stock = Holes_heap.Page_stock
module Bitset = Holes_stdx.Bitset
module Torture = Holes_exp.Torture

let check = Alcotest.check

(* a small failure-ridden heap with a few dozen live objects *)
let make_vm () =
  let cfg = { Cfg.default with Cfg.failure_rate = 0.25; seed = 7 } in
  let vm = Vm.create ~cfg ~min_heap_bytes:(256 * 1024) () in
  for i = 0 to 63 do
    ignore (Vm.alloc vm ~size:(48 + (8 * (i mod 13))) ())
  done;
  Vm.collect vm ~full:true;
  vm

let expect_clean (vm : Vm.t) =
  let r = Vm.verify vm in
  (match r.Verify.errors with
  | [] -> ()
  | e :: _ -> Alcotest.failf "healthy heap flagged: %s" e);
  if r.Verify.checks < 100 then
    Alcotest.failf "suspiciously few checks on a live heap: %d" r.Verify.checks

let expect_violation (vm : Vm.t) (what : string) =
  let r = Vm.verify vm in
  match r.Verify.errors with
  | [] -> Alcotest.failf "verifier missed corrupted %s" what
  | _ -> (
      (* raise_on_errors must turn the report into the exception the
         torture driver catches *)
      try
        Verify.raise_on_errors r;
        Alcotest.fail "raise_on_errors did not raise"
      with Verify.Violation _ -> ())

let test_healthy_heap_passes () =
  let vm = make_vm () in
  expect_clean vm;
  let m = Vm.metrics vm in
  if m.Metrics.verify_checks = 0 then Alcotest.fail "verify_checks not accumulated"

let with_immix (vm : Vm.t) (f : Immix.t -> unit) =
  match vm.Vm.space with
  | Vm.Ix s -> f s
  | Vm.Ms _ -> Alcotest.fail "expected an Immix space"

let test_catches_live_count_corruption () =
  let vm = make_vm () in
  expect_clean vm;
  with_immix vm (fun s ->
      let poked = ref false in
      Immix.iter_blocks s (fun b ->
          if (not !poked) && b.Block.nlines > 0 then begin
            b.Block.live.(0) <- b.Block.live.(0) + 1;
            poked := true
          end);
      if not !poked then Alcotest.fail "no block to corrupt");
  expect_violation vm "per-line live count"

let test_catches_free_count_corruption () =
  let vm = make_vm () in
  expect_clean vm;
  with_immix vm (fun s ->
      let poked = ref false in
      Immix.iter_blocks s (fun b ->
          if not !poked then begin
            Block.set_free_lines b (Block.free_lines b + 1);
            poked := true
          end));
  expect_violation vm "free-line count"

let test_catches_bitmap_divergence () =
  let vm = make_vm () in
  expect_clean vm;
  (* fail a PCM line on a stock page behind the verifier's back: the
     widened block state no longer agrees with the page bitmap *)
  let stock = Vm.stock vm in
  let p = stock.Page_stock.pages.(0) in
  let line = ref (-1) in
  (try
     for l = 0 to Holes_pcm.Geometry.lines_per_page - 1 do
       if not (Bitset.get p.Page_stock.bitmap l) then begin
         line := l;
         raise Exit
       end
     done
   with Exit -> ());
  if !line < 0 then Alcotest.fail "page 0 fully failed?";
  Bitset.set p.Page_stock.bitmap !line;
  expect_violation vm "device-map / line-state agreement"

let test_catches_pool_double_claim () =
  let vm = make_vm () in
  expect_clean vm;
  let stock = Vm.stock vm in
  (match stock.Page_stock.free_imperfect with
  | p :: _ -> stock.Page_stock.free_imperfect <- p :: stock.Page_stock.free_imperfect
  | [] -> (
      match stock.Page_stock.free_perfect with
      | p :: _ -> stock.Page_stock.free_perfect <- p :: stock.Page_stock.free_perfect
      | [] -> Alcotest.fail "no free pages to duplicate"));
  expect_violation vm "page ownership"

let test_catches_accounting_imbalance () =
  let vm = make_vm () in
  expect_clean vm;
  let acct = Page_stock.accounting (Vm.stock vm) in
  acct.Holes_osal.Accounting.total_repaid <- acct.Holes_osal.Accounting.total_repaid + 1;
  expect_violation vm "debit-credit balance"

(* -- torture driver ------------------------------------------------ *)

let test_repro_command_shape () =
  check Alcotest.string "default steps elided" "dune exec bin/torture.exe -- --seeds 42"
    (Torture.repro_command ~seed:42 ~steps:Torture.default_steps);
  check Alcotest.string "explicit steps kept"
    "dune exec bin/torture.exe -- --seeds 7 --steps 50"
    (Torture.repro_command ~seed:7 ~steps:50)

let test_torture_seeds_clean () =
  for seed = 0 to 3 do
    let o = Torture.run_one ~steps:200 ~seed () in
    (match o.Torture.violation with
    | Some v ->
        Alcotest.failf "seed %d violated: %s (repro: %s)" seed v
          (Torture.repro_command ~seed ~steps:200)
    | None -> ());
    if o.Torture.verify_passes + o.Torture.explicit_verifies = 0 then
      Alcotest.failf "seed %d never ran the verifier" seed
  done

let suite =
  [
    ("healthy heap passes", `Quick, test_healthy_heap_passes);
    ("catches live-count corruption", `Quick, test_catches_live_count_corruption);
    ("catches free-count corruption", `Quick, test_catches_free_count_corruption);
    ("catches bitmap divergence", `Quick, test_catches_bitmap_divergence);
    ("catches pool double-claim", `Quick, test_catches_pool_double_claim);
    ("catches accounting imbalance", `Quick, test_catches_accounting_imbalance);
    ("torture repro command", `Quick, test_repro_command_shape);
    ("torture seeds 0..3 clean", `Quick, test_torture_seeds_clean);
  ]
