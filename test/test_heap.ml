(* Tests for the heap substrate: object table, blocks/line marks, page
   stock and remembered set. *)

open Holes_heap
module Bitset = Holes_stdx.Bitset
module Xrng = Holes_stdx.Xrng

let check = Alcotest.check

(* ------------------------- Units ------------------------- *)

let test_units () =
  check Alcotest.int "block = 8 pages" 8 Units.pages_per_block;
  Alcotest.(check bool) "256 valid line size" true (Units.valid_line_size 256);
  Alcotest.(check bool) "100 invalid line size" false (Units.valid_line_size 100);
  check Alcotest.int "lines per block at 256B" 128 (Units.lines_per_block ~line_size:256);
  check Alcotest.int "alignment" 64 (Units.aligned_size 57);
  check Alcotest.int "minimum size" 8 (Units.aligned_size 1)

(* ------------------------- Object table ------------------------- *)

let test_object_lifecycle () =
  let t = Object_table.create () in
  let id = Object_table.alloc t ~addr:100 ~size:64 ~pinned:false ~los:false in
  Alcotest.(check bool) "alive" true (Object_table.is_alive t id);
  Alcotest.(check bool) "nursery" true (Object_table.is_nursery t id);
  check Alcotest.int "live bytes" 64 (Object_table.live_bytes t);
  Object_table.kill t id;
  Alcotest.(check bool) "dead" false (Object_table.is_alive t id);
  check Alcotest.int "live bytes zero" 0 (Object_table.live_bytes t);
  Object_table.release t id;
  (* id gets recycled *)
  let id2 = Object_table.alloc t ~addr:200 ~size:32 ~pinned:true ~los:false in
  check Alcotest.int "slot recycled" id id2;
  Alcotest.(check bool) "pinned" true (Object_table.is_pinned t id2)

let test_object_refs_capped () =
  let t = Object_table.create () in
  let a = Object_table.alloc t ~addr:0 ~size:8 ~pinned:false ~los:false in
  let b = Object_table.alloc t ~addr:8 ~size:8 ~pinned:false ~los:false in
  for _ = 1 to 20 do
    Object_table.add_ref t ~src:a ~dst:b
  done;
  Alcotest.(check bool) "fan-out capped" true (List.length (Object_table.refs t a) <= 8)

let test_object_release_alive_rejected () =
  let t = Object_table.create () in
  let id = Object_table.alloc t ~addr:0 ~size:8 ~pinned:false ~los:false in
  Alcotest.check_raises "cannot release live"
    (Invalid_argument "Object_table.release: object still alive") (fun () ->
      Object_table.release t id)

let test_object_growth () =
  let t = Object_table.create () in
  for i = 0 to 5000 do
    ignore (Object_table.alloc t ~addr:(i * 8) ~size:8 ~pinned:false ~los:false)
  done;
  check Alcotest.int "all live" 5001 (Object_table.live_count t)

(* ------------------------- Block ------------------------- *)

let empty_bitmap = Bitset.create Holes_pcm.Geometry.lines_per_page

let make_block ?(line_size = 256) ?(bitmaps : Bitset.t array option) () =
  let bitmaps =
    match bitmaps with Some b -> b | None -> Array.make Units.pages_per_block empty_bitmap
  in
  Block.create ~tbl:(Block.table_create ()) ~index:0 ~base:0 ~line_size
    ~pages:(Array.init Units.pages_per_block Fun.id)
    ~page_bitmap:(fun id -> bitmaps.(id))

let test_block_fresh () =
  let b = make_block () in
  check Alcotest.int "all lines free" 128 (Block.free_lines b);
  Alcotest.(check bool) "empty" true (Block.is_empty b);
  Alcotest.(check bool) "perfect" true (Block.is_perfect b);
  check Alcotest.int "one big hole" 1 (Block.count_holes b)

let test_block_false_failure_widening () =
  (* one failed 64B PCM line must fail the whole 256B logical line *)
  let bm = Bitset.create Holes_pcm.Geometry.lines_per_page in
  Bitset.set bm 1 (* second 64B line of page 0 *);
  let bitmaps = Array.make Units.pages_per_block empty_bitmap in
  bitmaps.(0) <- bm;
  let b = make_block ~bitmaps () in
  check Alcotest.int "one logical line failed" 1 (Block.failed_lines b);
  Alcotest.(check bool) "line 0 failed (widened)" true (Block.is_failed_line b 0);
  (* with 64B logical lines there is no widening *)
  let b64 = make_block ~line_size:64 ~bitmaps () in
  check Alcotest.int "exactly one 64B line failed" 1 (Block.failed_lines b64);
  Alcotest.(check bool) "line 1 failed" true (Block.is_failed_line b64 1);
  Alcotest.(check bool) "line 0 fine" false (Block.is_failed_line b64 0)

let test_block_object_lines () =
  let b = make_block () in
  Block.add_object_lines b ~addr:0 ~size:300 (* spans lines 0-1 *);
  check Alcotest.int "two lines live" (128 - 2) (Block.free_lines b);
  Block.add_object_lines b ~addr:300 ~size:100 (* within line 1 *);
  check Alcotest.int "shared line" (128 - 2) (Block.free_lines b);
  Block.remove_object_lines b ~addr:0 ~size:300;
  check Alcotest.int "line 1 still live" (128 - 1) (Block.free_lines b);
  Block.remove_object_lines b ~addr:300 ~size:100;
  Alcotest.(check bool) "empty again" true (Block.is_empty b)

let test_block_alloc_over_failed_rejected () =
  let bm = Bitset.create Holes_pcm.Geometry.lines_per_page in
  Bitset.set bm 0;
  let bitmaps = Array.make Units.pages_per_block empty_bitmap in
  bitmaps.(0) <- bm;
  let b = make_block ~bitmaps () in
  Alcotest.check_raises "allocation over failed line rejected"
    (Invalid_argument "Block.add_object_lines: allocation overlaps a failed line") (fun () ->
      Block.add_object_lines b ~addr:0 ~size:64)

let test_block_find_hole_skips_failed () =
  let bm = Bitset.create Holes_pcm.Geometry.lines_per_page in
  (* fail PCM lines covering logical lines 0 and 1 (256B logical = 4 PCM) *)
  for i = 0 to 7 do
    Bitset.set bm i
  done;
  let bitmaps = Array.make Units.pages_per_block empty_bitmap in
  bitmaps.(0) <- bm;
  let b = make_block ~bitmaps () in
  match Block.find_hole b ~from_line:0 ~min_bytes:256 with
  | Some (s, e, _) ->
      check Alcotest.int "hole starts after failures" 2 s;
      check Alcotest.int "hole extends to block end" 128 e
  | None -> Alcotest.fail "expected a hole"

let test_block_find_hole_min_bytes () =
  let b = make_block () in
  (* occupy lines 1-2, leaving a 1-line hole at 0 and a tail from 3 *)
  Block.add_object_lines b ~addr:256 ~size:512;
  (match Block.find_hole b ~from_line:0 ~min_bytes:512 with
  | Some (s, _, _) -> check Alcotest.int "skips small hole" 3 s
  | None -> Alcotest.fail "expected hole");
  match Block.find_hole b ~from_line:0 ~min_bytes:256 with
  | Some (s, e, _) ->
      check Alcotest.int "first small hole" 0 s;
      check Alcotest.int "hole is single line" 1 e
  | None -> Alcotest.fail "expected hole"

let test_block_dynamic_fail_line () =
  let b = make_block () in
  Alcotest.(check bool) "was free" true (Block.fail_line b ~line:5 = `Was_free);
  Alcotest.(check bool) "already failed" true (Block.fail_line b ~line:5 = `Already_failed);
  check Alcotest.int "failed count" 1 (Block.failed_lines b);
  check Alcotest.int "free shrank" 127 (Block.free_lines b)

let test_block_clear_marks_preserves_failed () =
  let b = make_block () in
  ignore (Block.fail_line b ~line:7);
  Block.add_object_lines b ~addr:0 ~size:256;
  Block.clear_marks b;
  Alcotest.(check bool) "failed preserved" true (Block.is_failed_line b 7);
  check Alcotest.int "others free" 127 (Block.free_lines b)

(* ------------------------- Page stock ------------------------- *)

let stock_with_rate rate npages =
  let rng = Xrng.of_seed 77 in
  let map =
    Holes_pcm.Failure_map.uniform rng ~nlines:(npages * Holes_pcm.Geometry.lines_per_page) ~rate
  in
  Page_stock.create ~device_map:map ~npages ()

let test_stock_pools () =
  let s = stock_with_rate 0.0 8 in
  check Alcotest.int "all perfect" 8 (Page_stock.free_perfect_count s);
  let s2 = stock_with_rate 0.5 64 in
  Alcotest.(check bool) "most imperfect at 50%" true (Page_stock.free_imperfect_count s2 > 56)

let test_stock_relaxed_prefers_imperfect () =
  let rng = Xrng.of_seed 3 in
  let npages = 4 in
  let map = Bitset.create (npages * 64) in
  Bitset.set map (64 * 2) (* page 2 imperfect *);
  ignore rng;
  let s = Page_stock.create ~device_map:map ~npages () in
  check (Alcotest.option Alcotest.int) "imperfect page first" (Some 2) (Page_stock.take_relaxed s)

let test_stock_debit_credit_flow () =
  let npages = 4 in
  let map = Bitset.create (npages * 64) in
  let s = Page_stock.create ~device_map:map ~npages () in
  (* exhaust perfect pool: 4 takes *)
  for _ = 1 to 4 do
    match Page_stock.take_perfect s with
    | Page_stock.Perfect _ -> ()
    | _ -> Alcotest.fail "expected perfect"
  done;
  (* next perfect request borrows (budget: extra_free default 0 => free_pages 0 => exhausted!) *)
  (match Page_stock.take_perfect s with
  | Page_stock.Exhausted -> ()
  | _ -> Alcotest.fail "expected exhausted with empty stock");
  (* return a page; now borrowing is within budget *)
  Page_stock.return_page s 0;
  (match Page_stock.take_perfect s with
  | Page_stock.Perfect 0 -> ()
  | _ -> Alcotest.fail "returned page served");
  Page_stock.return_page s 0;
  Page_stock.return_page s 1;
  (match Page_stock.take_perfect s with
  | Page_stock.Perfect _ -> ()
  | _ -> Alcotest.fail "perfect available");
  (match Page_stock.take_perfect s with
  | Page_stock.Perfect _ -> ()
  | _ -> Alcotest.fail "perfect available 2");
  ()

let test_stock_borrow_and_repay () =
  let npages = 8 in
  let map = Bitset.create (npages * 64) in
  (* make half the pages imperfect so relaxed has a supply *)
  for p = 0 to 3 do
    Bitset.set map (p * 64)
  done;
  let s = Page_stock.create ~device_map:map ~npages () in
  (* drain perfect pool (pages 4..7) *)
  for _ = 1 to 4 do
    ignore (Page_stock.take_perfect s)
  done;
  (* borrow one page (4 imperfect still free → budget ok) *)
  (match Page_stock.take_perfect s with
  | Page_stock.Borrowed -> ()
  | _ -> Alcotest.fail "expected borrow");
  check Alcotest.int "borrowed in use" 1 (Page_stock.borrowed_in_use s);
  check Alcotest.int "debt" 1 (Holes_osal.Accounting.debt (Page_stock.accounting s));
  (* return a perfect page; relaxed must decline it to repay the debt *)
  Page_stock.return_page s 7;
  for p = 0 to 3 do
    ignore (Page_stock.take_relaxed s |> Option.get);
    ignore p
  done;
  (* the next relaxed take sees the perfect page, declines it (repaying),
     and comes up empty *)
  (match Page_stock.take_relaxed s with
  | None -> ()
  | Some _ -> Alcotest.fail "expected decline-then-empty");
  check Alcotest.int "debt repaid" 0 (Holes_osal.Accounting.debt (Page_stock.accounting s));
  check Alcotest.int "repaid page recorded" 1 (Page_stock.repaid_pages s)

let test_stock_dynamic_failure_migration () =
  let npages = 2 in
  let map = Bitset.create (npages * 64) in
  let s = Page_stock.create ~device_map:map ~npages () in
  Page_stock.mark_line_failed s ~id:0 ~line:5;
  check Alcotest.int "perfect shrank" 1 (Page_stock.free_perfect_count s);
  check Alcotest.int "imperfect grew" 1 (Page_stock.free_imperfect_count s);
  check Alcotest.int "failed lines recorded" 1 (Page_stock.page s 0).Page_stock.failed_lines

(* ------------------------- Remset ------------------------- *)

let test_remset () =
  let r = Remset.create () in
  Alcotest.(check bool) "first record" true (Remset.record r ~src:5);
  Alcotest.(check bool) "duplicate filtered" false (Remset.record r ~src:5);
  check Alcotest.int "one entry" 1 (Remset.size r);
  check Alcotest.int "two barrier hits" 2 (Remset.barrier_hits r);
  Remset.clear r;
  check Alcotest.int "cleared" 0 (Remset.size r);
  Alcotest.(check bool) "records again after clear" true (Remset.record r ~src:5)

let suite =
  [
    ("units", `Quick, test_units);
    ("object lifecycle", `Quick, test_object_lifecycle);
    ("object refs capped", `Quick, test_object_refs_capped);
    ("object release-alive rejected", `Quick, test_object_release_alive_rejected);
    ("object table growth", `Quick, test_object_growth);
    ("block fresh", `Quick, test_block_fresh);
    ("block false-failure widening", `Quick, test_block_false_failure_widening);
    ("block object line accounting", `Quick, test_block_object_lines);
    ("block rejects alloc over failed", `Quick, test_block_alloc_over_failed_rejected);
    ("block find_hole skips failed", `Quick, test_block_find_hole_skips_failed);
    ("block find_hole min bytes", `Quick, test_block_find_hole_min_bytes);
    ("block dynamic fail_line", `Quick, test_block_dynamic_fail_line);
    ("block clear_marks preserves failed", `Quick, test_block_clear_marks_preserves_failed);
    ("stock pools", `Quick, test_stock_pools);
    ("stock relaxed prefers imperfect", `Quick, test_stock_relaxed_prefers_imperfect);
    ("stock perfect exhaustion", `Quick, test_stock_debit_credit_flow);
    ("stock borrow and repay", `Quick, test_stock_borrow_and_repay);
    ("stock dynamic failure migration", `Quick, test_stock_dynamic_failure_migration);
    ("remset", `Quick, test_remset);
  ]
