(* Test entry point: every suite, one alcotest binary (`dune runtest`). *)

let () =
  Alcotest.run "holes"
    [
      ("stdx", Test_stdx.suite);
      ("pcm", Test_pcm.suite);
      ("osal", Test_osal.suite);
      ("heap", Test_heap.suite);
      ("immix", Test_immix.suite);
      ("mark-sweep", Test_mark_sweep.suite);
      ("failure-aware", Test_failure_aware.suite);
      ("vm", Test_vm.suite);
      ("workload", Test_workload.suite);
      ("exp", Test_exp.suite);
      ("engine", Test_engine.suite);
      ("obs", Test_obs.suite);
      ("hotpath", Test_hotpath.suite);
      ("failure_model", Test_failure_model.suite);
      ("translate", Test_translate.suite);
      ("verify", Test_verify.suite);
      ("integration", Test_integration.suite);
      ("backend", Test_backend.suite);
      ("fleet", Test_fleet.suite);
      ("hybrid", Test_hybrid.suite);
    ]
