(* Memory-backend seam tests: the device backend's cooperative pipeline
   (wear -> failure buffer -> interrupt -> VMM up-call -> runtime
   retirement), failure-buffer overflow behavior, clustering boundary
   redirection as seen through [Vmm.map_failures], and static/device
   backend agreement on the heap invariants. *)

module Cfg = Holes.Config
module Vm = Holes.Vm
module Metrics = Holes.Metrics
module Pcm = Holes_pcm
module Osal = Holes_osal
module Bitset = Holes_stdx.Bitset
module Xrng = Holes_stdx.Xrng

let check = Alcotest.check

let device_cfg ?(endurance = 2000.0) ?(base = Cfg.default) () : Cfg.t =
  let d = Cfg.default_device in
  let wear = { d.Cfg.wear with Pcm.Wear.mean_endurance = endurance } in
  { base with Cfg.backend = Cfg.Device { d with Cfg.wear } }

(* ------------------------------------------------------------------ *)
(* Wear-driven dynamic failures reach the runtime through the chain    *)
(* ------------------------------------------------------------------ *)

(* A low-endurance device run: line stores wear PCM out mid-allocation,
   and every failure must arrive at [Immix.dynamic_failure] through the
   genuine interrupt up-call — no injection anywhere. *)
let test_upcall_reaches_runtime () =
  let cfg = device_cfg ~endurance:5.0 () in
  let profile = Holes_workload.Profile.scaled Holes_workload.Dacapo.pmd 0.2 in
  let vm = Vm.create ~cfg ~min_heap_bytes:(Holes_workload.Profile.min_heap profile) () in
  let res = Holes_workload.Generator.run ~rng:(Xrng.of_seed (42 lxor 0x5eed)) vm profile in
  check Alcotest.bool "workload completed despite wear" true
    res.Holes_workload.Generator.completed;
  let m = Vm.metrics vm in
  check Alcotest.bool "device accrued wear failures" true (m.Metrics.device_line_failures > 0);
  check Alcotest.bool "failures arrived as OS up-calls" true (m.Metrics.os_upcalls > 0);
  check Alcotest.bool "runtime retired lines dynamically" true (m.Metrics.dynamic_failures > 0);
  check Alcotest.bool "device writes were charged" true (m.Metrics.device_writes > 0);
  Vm.collect vm ~full:true;
  (match Vm.check_invariants vm with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants after wear failures: %s" e);
  (* the side channel must be closed on this backend *)
  check Alcotest.bool "dynamic_failure_at rejected" true
    (try
       Vm.dynamic_failure_at vm ~addr:0;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Failure-buffer overflow: stall, drain, no data loss                 *)
(* ------------------------------------------------------------------ *)

let payload_for (line : int) : Bytes.t =
  Bytes.make Pcm.Geometry.line_bytes (Char.chr (Char.code 'a' + (line mod 26)))

(* Every write fails instantly (endurance 1, no ECP): the buffer fills
   to its watermark, the device stalls, and draining both releases the
   stall and returns each failed write's payload intact. *)
let test_fbuf_overflow_drains () =
  let device =
    Pcm.Device.create
      ~config:
        {
          Pcm.Device.pages = 1;
          wear = { Pcm.Wear.mean_endurance = 1.0; sigma = 0.01; ecp_entries = 0; ecp_extension = 0.0 };
          clustering = None;
          buffer_capacity = 8 (* watermark = capacity - 4 = 4 *);
          caram = None;
          wear_level = None;
        }
      ~seed:7 ()
  in
  for l = 0 to 3 do
    match Pcm.Device.write device l (payload_for l) with
    | Pcm.Device.Write_failed -> ()
    | _ -> Alcotest.failf "write %d should have failed the line" l
  done;
  check Alcotest.int "buffer at watermark" 4 (Pcm.Device.buffer_occupancy device);
  (match Pcm.Device.write device 4 (payload_for 4) with
  | Pcm.Device.Stalled -> ()
  | _ -> Alcotest.fail "device should stall at watermark");
  (* OS drain: each failed line's payload is preserved verbatim *)
  for l = 0 to 3 do
    match Pcm.Device.drain_failure device l with
    | None -> Alcotest.failf "line %d lost its buffered payload" l
    | Some data ->
        check Alcotest.bytes (Printf.sprintf "payload of line %d" l) (payload_for l) data
  done;
  check Alcotest.int "buffer drained" 0 (Pcm.Device.buffer_occupancy device);
  (* the stall lifts: the rejected write can now be retried and is
     accepted (and promptly fails the fresh line, buffering its data) *)
  (match Pcm.Device.write device 4 (payload_for 4) with
  | Pcm.Device.Write_failed -> ()
  | _ -> Alcotest.fail "retried write should be accepted after the drain");
  check Alcotest.bytes "retried payload preserved" (payload_for 4)
    (Option.get (Pcm.Device.drain_failure device 4));
  let s = Pcm.Device.stats device in
  check Alcotest.bool "stall recorded" true (s.Pcm.Device.buffer.Pcm.Failure_buffer.stall_events >= 1);
  check Alcotest.int "no insertion lost" 5 s.Pcm.Device.buffer.Pcm.Failure_buffer.insertions

(* ------------------------------------------------------------------ *)
(* Clustering: map_failures reports the redirected boundary line       *)
(* ------------------------------------------------------------------ *)

(* With one-page clustering, a failure in the middle of a region is
   remapped by the device's redirection hardware: the OS (and thus the
   runtime, via [Vmm.map_failures]) must see the hole at the region
   boundary, never at the original physical position. *)
let test_clustering_boundary_in_map_failures () =
  let lpp = Pcm.Geometry.lines_per_page in
  let device =
    Pcm.Device.create
      ~config:
        { Pcm.Device.pages = 4; wear = Pcm.Wear.default_params; clustering = Some 1; buffer_capacity = 16; caram = None; wear_level = None }
      ~seed:5 ()
  in
  let mid = 10 in
  let map = Bitset.create (4 * lpp) in
  Bitset.set map mid;
  Pcm.Device.preinstall_failures device map;
  let unusable = List.sort compare (Pcm.Device.unusable_lines device) in
  (* first failure also installs the redirection-map metadata lines *)
  let meta = Pcm.Geometry.redirection_meta_lines ~region_pages:1 in
  check Alcotest.int "metadata lines + the clustered failure" (meta + 1)
    (List.length unusable);
  (* page 0 is an even region: the cluster forms a contiguous prefix *)
  check Alcotest.(list int) "contiguous cluster at the region top"
    (List.init (meta + 1) Fun.id) unusable;
  check Alcotest.bool "not at the physical position" true (not (List.mem mid unusable));
  (* OS boot scan + mapping: the process-visible bitmap agrees *)
  let dram = 2 in
  let vmm = Osal.Vmm.create ~dram_pages:dram ~pcm_pages:4 () in
  List.iter
    (fun l ->
      Osal.Failure_table.mark_failed (Osal.Vmm.failure_table vmm) ~page:(l / lpp)
        ~line:(l mod lpp);
      ignore
        (Osal.Page.mark_line_failed
           (Osal.Pools.page (Osal.Vmm.pools vmm) (dram + (l / lpp)))
           ~line:(l mod lpp)))
    unusable;
  Osal.Pools.renormalize (Osal.Vmm.pools vmm);
  let proc = Osal.Vmm.spawn vmm in
  match Osal.Vmm.mmap_imperfect vmm proc ~pages:4 with
  | Error `Out_of_memory -> Alcotest.fail "mmap_imperfect should succeed"
  | Ok virts ->
      let seen = ref [] in
      List.iter
        (fun virt ->
          let bm = Osal.Vmm.map_failures vmm proc ~virt in
          Bitset.iter_set bm (fun line -> seen := line :: !seen))
        virts;
      (* grants may be reordered, so compare in-page offsets: the holes
         the process sees are exactly the clustered boundary lines *)
      check Alcotest.(list int) "mapped holes are the boundary cluster"
        (List.map (fun l -> l mod lpp) unusable)
        (List.sort compare !seen)

(* ------------------------------------------------------------------ *)
(* Backend agreement: identical invariants on the same workloads       *)
(* ------------------------------------------------------------------ *)

(* Same workload stream on both backends (device endurance high enough
   that no wear failure occurs): both complete and both satisfy the
   post-collection line-accounting invariants. *)
let test_backends_agree_on_invariants () =
  List.iter
    (fun (profile, rate) ->
      let base =
        { Cfg.default with Cfg.failure_rate = rate; failure_dist = Cfg.Uniform; seed = 9 }
      in
      let run cfg =
        let profile = Holes_workload.Profile.scaled profile 0.15 in
        let vm = Vm.create ~cfg ~min_heap_bytes:(Holes_workload.Profile.min_heap profile) () in
        let res = Holes_workload.Generator.run ~rng:(Xrng.of_seed 123) vm profile in
        Vm.collect vm ~full:true;
        (vm, res)
      in
      let vm_s, res_s = run base in
      let vm_d, res_d = run (device_cfg ~endurance:1.0e8 ~base ()) in
      check Alcotest.bool "static completed" true res_s.Holes_workload.Generator.completed;
      check Alcotest.bool "device completed" true res_d.Holes_workload.Generator.completed;
      (match (Vm.check_invariants vm_s, Vm.check_invariants vm_d) with
      | Ok (), Ok () -> ()
      | Error e, _ -> Alcotest.failf "static invariants: %s" e
      | _, Error e -> Alcotest.failf "device invariants: %s" e);
      (* the workload stream is backend-independent *)
      check Alcotest.int "same allocation stream"
        (Vm.metrics vm_s).Metrics.objects_allocated
        (Vm.metrics vm_d).Metrics.objects_allocated)
    [ (Holes_workload.Dacapo.pmd, 0.25); (Holes_workload.Dacapo.xalan, 0.10) ]

let suite =
  [
    Alcotest.test_case "wear up-call reaches runtime" `Quick test_upcall_reaches_runtime;
    Alcotest.test_case "failure-buffer overflow drains" `Quick test_fbuf_overflow_drains;
    Alcotest.test_case "clustering boundary in map_failures" `Quick
      test_clustering_boundary_in_map_failures;
    Alcotest.test_case "backends agree on invariants" `Quick test_backends_agree_on_invariants;
  ]
