(* lib/fleet: arrival-process statistics, event-loop determinism across
   -j, eviction versus the heap verifier, and a golden snapshot of the
   fleet grid's sink records.

   To regenerate the golden after an intentional results change:

     HOLES_UPDATE_GOLDEN_FLEET=test/golden/fleet.jsonl \
       dune runtest --force *)

open Holes_stdx
module Arrivals = Holes_fleet.Arrivals
module Tenant = Holes_fleet.Tenant
module Pool = Holes_fleet.Pool
module Sim = Holes_fleet.Sim
module Report = Holes_fleet.Report
module Sink = Holes_engine.Sink

let check = Alcotest.check

(* ---- arrival processes ---------------------------------------------- *)

(* empirical arrival rate over [n] sampled gaps, req/s *)
let sampled_rate (proc : Arrivals.process) ~(seed : int) ~(n : int) : float =
  let a = Arrivals.make proc (Xrng.of_seed seed) in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Arrivals.next_gap_ns a
  done;
  float_of_int n /. (!total /. 1e9)

let test_arrival_stats () =
  (* Poisson: empirical rate matches the parameter *)
  let poisson = Arrivals.Poisson { rate = 500.0 } in
  let r = sampled_rate poisson ~seed:11 ~n:40_000 in
  if Float.abs (r -. 500.0) > 15.0 then
    Alcotest.failf "poisson rate %.1f not within 3%% of 500" r;
  (* MMPP: empirical rate matches the analytic time-averaged rate, and
     is strictly above calm and below burst *)
  let mmpp = Arrivals.Mmpp { rate = 200.0; burst = 5.0; dwell_ms = 20.0 } in
  let want = Arrivals.mean_rate mmpp in
  let r = sampled_rate mmpp ~seed:12 ~n:120_000 in
  if Float.abs (r -. want) /. want > 0.05 then
    Alcotest.failf "mmpp rate %.1f not within 5%% of analytic %.1f" r want;
  if not (r > 200.0 && r < 1000.0) then
    Alcotest.failf "mmpp rate %.1f outside (calm, burst) band" r;
  (* the same seed replays the same schedule *)
  let gaps seed =
    let a = Arrivals.make mmpp (Xrng.of_seed seed) in
    List.init 100 (fun _ -> Arrivals.next_gap_ns a)
  in
  check Alcotest.(list (float 0.0)) "same seed, same schedule" (gaps 7) (gaps 7)

let test_arrival_cli () =
  List.iter
    (fun p ->
      match Arrivals.of_cli (Arrivals.to_cli p) with
      | Ok p' -> check Alcotest.bool "cli round-trip" true (p = p')
      | Error e -> Alcotest.failf "round-trip failed: %s" e)
    [
      Arrivals.Poisson { rate = 123.5 };
      Arrivals.Mmpp { rate = 150.0; burst = 6.0; dwell_ms = 40.0 };
    ];
  (match Arrivals.of_cli "250" with
  | Ok (Arrivals.Poisson { rate }) -> check (Alcotest.float 0.0) "bare number" 250.0 rate
  | _ -> Alcotest.fail "bare number should parse as Poisson");
  List.iter
    (fun bad ->
      match Arrivals.of_cli bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error _ -> ())
    [ "poisson:-5"; "mmpp:100:0.5:20"; "mmpp:100:2:0"; "nonsense"; "mmpp:100" ]

(* ---- the simulator -------------------------------------------------- *)

(* A fleet small enough for the test suite but aging fast enough that
   storms retire lines and force evictions. *)
let aging_params ?(wear_level = None) () : Sim.params =
  let d = Holes.Config.default_device in
  let wear = { d.Holes.Config.wear with Holes_pcm.Wear.mean_endurance = 25.0 } in
  let cfg =
    {
      Sim.default.Sim.cfg with
      Holes.Config.backend = Holes.Config.Device { d with Holes.Config.wear };
      wear_level;
    }
  in
  {
    Sim.default with
    Sim.tenants = 4;
    devices = 2;
    arrival = Arrivals.Mmpp { rate = 150.0; burst = 6.0; dwell_ms = 40.0 };
    duration_ms = 400.0;
    storm_every_ms = 50.0;
    storm_writes = 16384;
    cfg;
  }

let test_jobs_bit_identical () =
  let fields jobs = Report.fields (Sim.run ~jobs (aging_params ())) in
  let f1 = fields 1 and f4 = fields 4 in
  check
    Alcotest.(list (pair string (float 0.0)))
    "-j 4 report bit-identical to -j 1" f1 f4

let test_report_accounting () =
  let p = aging_params () in
  let r = Sim.run ~jobs:2 p in
  if r.Report.arrived <= 0 then Alcotest.fail "no arrivals";
  (* every arrival ends as a completion, a failed request, or a queue
     drop at tenant death ([dropped] additionally counts arrivals to
     already-dead tenants, which never enter [arrived]) *)
  let unaccounted = r.Report.arrived - r.Report.completed - r.Report.failed in
  if unaccounted < 0 then Alcotest.fail "more completions than arrivals";
  if unaccounted > r.Report.dropped then
    Alcotest.failf "%d arrivals vanished without completing, failing or dropping"
      (unaccounted - r.Report.dropped);
  (* completions = sum of the epoch split *)
  let epoch_total =
    Array.fold_left (fun n h -> n + Holes_obs.Stats.count h) 0 r.Report.epoch
  in
  check Alcotest.int "epoch split covers every completion" r.Report.completed epoch_total;
  if not (r.Report.good <= r.Report.completed) then
    Alcotest.fail "goodput exceeds throughput";
  if not (r.Report.device_failures > 0) then
    Alcotest.fail "aging operating point produced no wear failures"

let test_eviction_preserves_invariants () =
  let cfg =
    {
      Sim.default.Sim.cfg with
      Holes.Config.backend =
        Holes.Config.Device
          {
            Holes.Config.default_device with
            Holes.Config.wear =
              {
                Holes.Config.default_device.Holes.Config.wear with
                Holes_pcm.Wear.mean_endurance = 25.0;
              };
          };
      (* tight heaps: retirement evacuations and request bursts reach
         OOM — the eviction trigger — within a few storm rounds *)
      heap_factor = 1.3;
    }
  in
  let rng = Xrng.of_seed 99 in
  let pool =
    Pool.create ~cfg ~tenant:Tenant.default ~slots:3 ~max_replacements:2 ~rng ()
  in
  (* storm until the device damage evicts someone (or prove stability) *)
  let rounds = ref 0 in
  while Pool.evictions pool = 0 && !rounds < 60 do
    incr rounds;
    Pool.storm pool ~writes:32768;
    for i = 0 to 2 do
      for _ = 1 to 4 do
        match Pool.serve pool i with Ok _ | Error (`Evicted | `Dead) -> ()
      done
    done
  done;
  if Pool.evictions pool = 0 then Alcotest.fail "storms never forced an eviction";
  (* every surviving VM still satisfies the heap verifier *)
  let checked = ref 0 in
  for i = 0 to 2 do
    match Pool.vm pool i with
    | None -> ()
    | Some vm ->
        incr checked;
        Holes.Verify.raise_on_errors (Holes.Vm.verify vm)
  done;
  if !checked = 0 then Alcotest.fail "no survivors left to verify"

(* ---- incremental collection: gated pause reporting -------------------- *)

let test_incremental_pause_report () =
  (* stop-the-world: the pause fields stay out of the report, so the
     committed sink golden keeps its record shape *)
  let stw = Sim.run ~jobs:2 (aging_params ()) in
  if stw.Report.inc_active then Alcotest.fail "STW fleet flagged as incremental";
  if List.mem_assoc "gc_pause_max_ms" (Report.fields stw) then
    Alcotest.fail "STW report leaked the gated pause fields";
  (* incremental: the fields appear, pauses were recorded, and the worst
     stall respects the figure's pause-time SLO *)
  let p = aging_params () in
  let p = { p with Sim.cfg = { p.Sim.cfg with Holes.Config.gc_slice = 256 } } in
  let r = Sim.run ~jobs:2 p in
  if not r.Report.inc_active then Alcotest.fail "incremental fleet not flagged";
  if not (List.mem_assoc "gc_pause_max_ms" (Report.fields r)) then
    Alcotest.fail "incremental report missing the pause fields";
  if Holes_obs.Stats.count r.Report.gc_pause = 0 then
    Alcotest.fail "incremental fleet recorded no GC pauses";
  if r.Report.gc_pause_max_ms > Holes_exp.Fleet_figure.pause_slo_ms then
    Alcotest.failf "max GC pause %.3f ms exceeds the %.1f ms pause SLO"
      r.Report.gc_pause_max_ms Holes_exp.Fleet_figure.pause_slo_ms

(* ---- golden snapshot of the sink records ----------------------------- *)

let find_sub (haystack : string) (needle : string) : int option =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub haystack i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* drop ["worker":N,"duration_s":F,] — scheduling noise, everything else
   is the deterministic trial outcome *)
let strip_schedule (l : string) : string =
  match find_sub l "\"worker\":" with
  | None -> l
  | Some i ->
      let rec nth_comma j k =
        if l.[j] = ',' then if k = 1 then j else nth_comma (j + 1) (k - 1)
        else nth_comma (j + 1) k
      in
      let j = nth_comma i 2 in
      String.sub l 0 i ^ String.sub l (j + 1) (String.length l - j - 1)

let read_lines (path : string) : string list =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let grid_lines ~(jobs : int) : string list =
  let path = Filename.temp_file "holes_fleet_golden" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Sink.create ~path ~progress:false () in
      Fun.protect
        ~finally:(fun () -> Sink.close sink)
        (fun () ->
          ignore (Sim.run ~jobs ~sink (aging_params ()));
          ignore
            (Sim.run ~jobs ~sink
               (aging_params
                  ~wear_level:(Some (Holes_pcm.Wear_level.Random_remap { psi = 64 }))
                  ())));
      read_lines path |> List.map strip_schedule |> List.sort compare)

let golden_path = "golden/fleet.jsonl"

let test_golden () =
  let j1 = grid_lines ~jobs:1 in
  let j4 = grid_lines ~jobs:4 in
  check Alcotest.(list string) "-j 4 sink bit-identical to -j 1" j1 j4;
  match Sys.getenv_opt "HOLES_UPDATE_GOLDEN_FLEET" with
  | Some out ->
      let oc = open_out out in
      List.iter (fun l -> output_string oc (l ^ "\n")) j1;
      close_out oc;
      Printf.printf "(wrote %s)\n" out
  | None ->
      check
        Alcotest.(list string)
        "matches committed golden" (read_lines golden_path) j1

let suite =
  [
    ("arrival processes match their parameters", `Quick, test_arrival_stats);
    ("arrival CLI round-trips and rejects junk", `Quick, test_arrival_cli);
    ("fleet report bit-identical at -j 1 / -j 4", `Quick, test_jobs_bit_identical);
    ("report accounting is conserved", `Quick, test_report_accounting);
    ("eviction preserves verifier invariants", `Quick, test_eviction_preserves_invariants);
    ("incremental pause report is gated and SLO-bounded", `Quick, test_incremental_pause_report);
    ("fleet sink records match golden, -j independent", `Quick, test_golden);
  ]
