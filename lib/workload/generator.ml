(** The workload executor: drives a {!Holes.Vm} with the allocation,
    lifetime and mutation behaviour described by a {!Profile}.

    Lifetimes are measured in bytes of subsequent allocation (the
    standard GC-literature clock); the executor maintains a death queue
    and kills objects as the clock passes their death time, so the live
    set follows the profile's steady-state target by Little's law.
    Mutation stores references from random older live objects to fresh
    ones, exercising the write barrier and remembered set. *)

open Holes_stdx

type result = {
  completed : bool;  (** false when the VM ran out of memory *)
  profile : Profile.t;
  elapsed_ms : float;
  metrics : Holes.Metrics.t;
  mutator_ms : float;
  gc_ms : float;
}

(* Sampled object size categories.  Medium bounds are fixed (they model
   the workload, not the collector configuration). *)
let medium_lo = 320
let medium_hi = Holes_heap.Units.los_threshold (* 8 KB *)

let sample_log_uniform (rng : Xrng.t) ~(lo : int) ~(hi : int) : int =
  let llo = log (float_of_int lo) and lhi = log (float_of_int hi) in
  int_of_float (exp (llo +. (Xrng.float rng *. (lhi -. llo))))

(* mean of a log-uniform distribution on [lo, hi] *)
let log_uniform_mean ~(lo : int) ~(hi : int) : float =
  let a = float_of_int lo and b = float_of_int hi in
  (b -. a) /. (log b -. log a)

type category = Small | Medium | Large

let category_dist (p : Profile.t) : category Dist.Discrete.t =
  let small_frac = max 0.0 (1.0 -. p.Profile.medium_frac -. p.Profile.large_frac) in
  let mean_small = p.Profile.small_mean in
  let mean_medium = log_uniform_mean ~lo:medium_lo ~hi:medium_hi in
  let mean_large = log_uniform_mean ~lo:(medium_hi + 64) ~hi:p.Profile.large_max in
  (* category weights proportional to bytes / mean-size = object counts *)
  Dist.Discrete.make
    [
      (small_frac /. mean_small, Small);
      (p.Profile.medium_frac /. mean_medium, Medium);
      (p.Profile.large_frac /. mean_large, Large);
    ]

let sample_size (rng : Xrng.t) (p : Profile.t) (dist : category Dist.Discrete.t) : int =
  match Dist.Discrete.sample dist rng with
  | Small ->
      (* geometric-ish around the mean, clamped to the small range *)
      let s = int_of_float (Dist.exponential rng ~mean:(p.Profile.small_mean -. 16.0)) + 16 in
      min 304 (max 16 s)
  | Medium -> sample_log_uniform rng ~lo:medium_lo ~hi:medium_hi
  | Large -> sample_log_uniform rng ~lo:(medium_hi + 64) ~hi:p.Profile.large_max

(* Lifetime in bytes-of-allocation: a short/long mixture whose mean is
   the live target (Little's law). *)
let sample_lifetime (rng : Xrng.t) (p : Profile.t) : int =
  let lt = float_of_int p.Profile.live_target in
  let s = p.Profile.short_frac in
  let mean_short = 0.06 *. lt in
  let mean_long = max mean_short ((lt -. (s *. mean_short)) /. (1.0 -. s)) in
  let mean = if Xrng.float rng < s then mean_short else mean_long in
  1 + int_of_float (Dist.exponential rng ~mean)

(** Run [profile] against [vm].  [rng] drives all sampling.  Returns the
    run's metrics; an out-of-memory VM yields [completed = false] (the
    paper's "some configurations cannot execute some of the
    benchmarks"). *)
let run ?(rng : Xrng.t option) (vm : Holes.Vm.t) (profile : Profile.t) : result =
  let rng = match rng with Some r -> r | None -> Xrng.of_seed 7 in
  let dist = category_dist profile in
  let deaths : int Heapq.t = Heapq.create ~dummy:(-1) in
  (* pool of recent allocations for mutation sources *)
  let pool_size = 1024 in
  let pool = Array.make pool_size (-1) in
  let completed = ref true in
  (try
     (* immortal base: plain small/medium objects that never die *)
     let imm = ref 0 in
     while !imm < profile.Profile.immortal do
       let size = min 2048 (max 32 (sample_size rng profile dist)) in
       ignore (Holes.Vm.alloc vm ~size ());
       imm := !imm + size
     done;
     let clock = ref 0 in
     while !clock < profile.Profile.volume do
       let size = sample_size rng profile dist in
       let pinned = Xrng.float rng < profile.Profile.pin_rate in
       let id = Holes.Vm.alloc vm ~pinned ~size () in
       let lifetime = sample_lifetime rng profile in
       Heapq.push deaths ~key:(!clock + lifetime) id;
       pool.(Xrng.int rng pool_size) <- id;
       (* mutation: a random older object references the new one *)
       if Xrng.float rng < profile.Profile.mutation_rate then begin
         let src = pool.(Xrng.int rng pool_size) in
         if src >= 0 && src <> id && Holes_heap.Object_table.is_alive (Holes.Vm.objects vm) src
         then Holes.Vm.write_ref vm ~src ~dst:id
       end;
       clock := !clock + size;
       (* process deaths due by now *)
       let rec reap () =
         match Heapq.min_key deaths with
         | Some k when k <= !clock -> (
             match Heapq.pop deaths with
             | Some (_, dead) ->
                 Holes.Vm.kill vm dead;
                 reap ()
             | None -> ())
         | _ -> ()
       in
       reap ()
     done
   with Holes.Vm.Out_of_memory -> completed := false);
  Holes.Vm.sync_backend_stats vm;
  let cost = Holes.Vm.cost vm in
  {
    completed = !completed;
    profile;
    elapsed_ms = Holes.Cost.total_ms cost;
    metrics = Holes.Vm.metrics vm;
    mutator_ms = Holes.Cost.mutator_ns cost /. 1e6;
    gc_ms = Holes.Cost.gc_ns cost /. 1e6;
  }

(** Convenience: build a VM for [profile] under [cfg] (heap sized from
    the profile's minimum) and run it. *)
let run_config ~(cfg : Holes.Config.t) ~(profile : Profile.t) ?(scale = 1.0) () : result =
  let profile = Profile.scaled profile scale in
  let vm = Holes.Vm.create ~cfg ~min_heap_bytes:(Profile.min_heap profile) () in
  let rng = Xrng.of_seed (cfg.Holes.Config.seed lxor 0x5eed) in
  run ~rng vm profile
