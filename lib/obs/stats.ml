(* Cheap counters and log2-bucket histograms.  See stats.mli. *)

type counter = { mutable n : int }

let counter () : counter = { n = 0 }
let incr (c : counter) : unit = c.n <- c.n + 1
let add (c : counter) (k : int) : unit = c.n <- c.n + k
let value (c : counter) : int = c.n

let nbuckets = 64

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;  (* buckets.(b) counts values in [2^(b-1), 2^b); b=0 holds v < 1 *)
}

let hist () : hist =
  { count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity; buckets = Array.make nbuckets 0 }

(* Bucket of a non-negative value: frexp gives v = m * 2^e with
   m in [0.5, 1), so 2^(e-1) <= v < 2^e and the bucket is e (clamped).
   Values below 1 (including 0) land in bucket 0. *)
let bucket_of (v : float) : int =
  if not (v >= 1.0) then 0
  else
    let _, e = Float.frexp v in
    if e >= nbuckets then nbuckets - 1 else e

let observe (h : hist) (v : float) : unit =
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let count (h : hist) : int = h.count
let total (h : hist) : float = h.sum
let mean (h : hist) : float = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count
let max_value (h : hist) : float = if h.count = 0 then 0.0 else h.max_v
let min_value (h : hist) : float = if h.count = 0 then 0.0 else h.min_v

(* Upper bound of bucket [b]: 2^b (bucket 0 covers [0, 1)). *)
let bucket_upper (b : int) : float = Float.ldexp 1.0 b

let quantile ?(interp = false) (h : hist) (q : float) : float =
  if h.count = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let target = max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
    (* bucket holding the target rank, plus the rank count before it *)
    let rec find b acc =
      if b >= nbuckets - 1 then (b, acc)
      else
        let acc' = acc + h.buckets.(b) in
        if acc' >= target then (b, acc) else find (b + 1) acc'
    in
    let b, before = find 0 0 in
    if not interp then
      (* clamp the bucket bound by the actually observed extremes *)
      Float.max h.min_v (Float.min (bucket_upper b) h.max_v)
    else begin
      (* sub-bucket linear interpolation: place the target rank
         proportionally between the bucket's edges, with the edges
         themselves anchored by the exact observed extremes — so
         [quantile ~interp:true h 1.0] is the exact maximum *)
      let inb = max 1 h.buckets.(b) in
      let lo = if b = 0 then 0.0 else Float.ldexp 1.0 (b - 1) in
      let hi = bucket_upper b in
      let lo = Float.max lo h.min_v in
      let hi = Float.max lo (Float.min hi h.max_v) in
      let frac = float_of_int (target - before) /. float_of_int inb in
      lo +. (frac *. (hi -. lo))
    end
  end

let merge (into : hist) (src : hist) : unit =
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.count > 0 then begin
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v
  end;
  Array.iteri (fun i n -> into.buckets.(i) <- into.buckets.(i) + n) src.buckets

let merged (hs : hist list) : hist =
  let h = hist () in
  List.iter (merge h) hs;
  h

let copy (h : hist) : hist =
  {
    count = h.count;
    sum = h.sum;
    min_v = h.min_v;
    max_v = h.max_v;
    buckets = Array.copy h.buckets;
  }

let to_fields ~(prefix : string) (h : hist) : (string * float) list =
  [
    (prefix ^ "_count", float_of_int h.count);
    (prefix ^ "_mean", mean h);
    (prefix ^ "_p50", quantile h 0.50);
    (prefix ^ "_p99", quantile h 0.99);
    (prefix ^ "_max", max_value h);
  ]

let summary_string (h : hist) : string =
  Printf.sprintf "n=%d mean=%.1f p50=%.0f p99=%.0f max=%.1f" h.count (mean h) (quantile h 0.5)
    (quantile h 0.99) (max_value h)

(* running moments: count / sum / sum of squares *)

type moments = { mutable m_count : int; mutable m_sum : float; mutable m_sumsq : float }

let moments () : moments = { m_count = 0; m_sum = 0.0; m_sumsq = 0.0 }

let accumulate (m : moments) (v : float) : unit =
  m.m_count <- m.m_count + 1;
  m.m_sum <- m.m_sum +. v;
  m.m_sumsq <- m.m_sumsq +. (v *. v)

let moments_mean (m : moments) : float =
  if m.m_count = 0 then 0.0 else m.m_sum /. float_of_int m.m_count

let moments_stddev (m : moments) : float =
  if m.m_count = 0 then 0.0
  else
    let n = float_of_int m.m_count in
    let mean = m.m_sum /. n in
    sqrt (Float.max 0.0 ((m.m_sumsq /. n) -. (mean *. mean)))

let cov (m : moments) : float =
  let mean = moments_mean m in
  if mean <= 0.0 then 0.0 else moments_stddev m /. mean
