(** Cheap counters and log{_2}-bucket histograms.

    The observability layer needs distribution summaries (pause times,
    lines examined per hole search, failure-buffer occupancy) that are
    deterministic, mergeable across trials, and cheap enough to update on
    allocator hot paths.  A histogram here is 64 power-of-two buckets
    plus exact count/sum/min/max: [observe] is a handful of arithmetic
    operations and one array increment, with no allocation.

    Histograms are plain mutable records (no closures), so structural
    equality — used by the engine's [-j 1] = [-j N] determinism tests —
    works on any record embedding them. *)

(** {1 Counters} *)

(** A mutable event counter. *)
type counter

val counter : unit -> counter
(** A fresh counter at zero. *)

val incr : counter -> unit
(** Add one. *)

val add : counter -> int -> unit
(** Add [k]. *)

val value : counter -> int
(** Current count. *)

(** {1 Histograms} *)

val nbuckets : int
(** Number of buckets (64). *)

(** A log{_2}-bucket histogram.  Bucket [b] counts observations in
    [\[2{^b-1}, 2{^b})]; bucket 0 holds everything below 1 (including
    zero and negatives).  The fields are exposed so consumers can fold
    histograms into structurally comparable records. *)
type hist = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;  (** [infinity] while empty *)
  mutable max_v : float;  (** [neg_infinity] while empty *)
  buckets : int array;
}

val hist : unit -> hist
(** A fresh, empty histogram. *)

val bucket_of : float -> int
(** The bucket index a value falls into. *)

val observe : hist -> float -> unit
(** Record one observation.  O(1), allocation-free. *)

val count : hist -> int
(** Number of observations. *)

val total : hist -> float
(** Sum of all observations. *)

val mean : hist -> float
(** Mean observation (0 when empty). *)

val min_value : hist -> float
(** Smallest observation (0 when empty). *)

val max_value : hist -> float
(** Largest observation (0 when empty). *)

val quantile : ?interp:bool -> hist -> float -> float
(** [quantile h q] estimates the [q]-quantile ([q] clamped to [\[0,1\]])
    as the upper bound of the bucket holding the [q]-th observation,
    clamped to the observed [min]/[max].  Precision is one power of two
    — adequate for pause-time p50/p99 reporting.

    With [~interp:true] the estimate is refined by sub-bucket linear
    interpolation: the target rank is placed proportionally between the
    bucket's edges, which are themselves anchored by the exact observed
    extremes, so [quantile ~interp:true h 1.0] returns the exact
    maximum.  Log{_2} buckets alone are too coarse to state a
    pause-time SLO (a p999 answer of "somewhere below 2{^21} ns" spans
    a factor of two); interpolation brings the error well under one
    bucket width for smooth distributions.  The default ([false])
    preserves the historical estimator bit-for-bit. *)

val merge : hist -> hist -> unit
(** [merge into src] folds [src]'s observations into [into]. *)

val merged : hist list -> hist
(** A fresh histogram holding the union of the inputs. *)

val copy : hist -> hist
(** An independent copy. *)

val to_fields : prefix:string -> hist -> (string * float) list
(** Flat key/value summary ([_count], [_mean], [_p50], [_p99], [_max]),
    ready for the engine's JSONL sink. *)

val summary_string : hist -> string
(** One-line human-readable summary. *)

(** {2 Running moments}

    A constant-space accumulator for dispersion statistics — used for
    the wear coefficient-of-variation over a device's per-line write
    counts, where a histogram's power-of-two quantiles are too coarse. *)

type moments

val moments : unit -> moments
(** A fresh, empty accumulator. *)

val accumulate : moments -> float -> unit
(** Fold one observation in. *)

val moments_mean : moments -> float
(** Mean observation (0 when empty). *)

val moments_stddev : moments -> float
(** Population standard deviation (0 when empty). *)

val cov : moments -> float
(** Coefficient of variation: stddev / mean, 0 when the mean is 0 —
    the "how level is the wear" scalar of the Sec. 7.2 ablation. *)
