(** Ring-buffered structured tracing for the device→OS→runtime pipeline,
    emitted as Chrome [trace_event] JSON (loadable in Perfetto or
    [chrome://tracing]).

    One {!t} collects events from every trial of a run; each trial holds
    a {!view} carrying its synthetic process id and a {e virtual} clock —
    the simulator's deterministic cost model, not wall time — so traces
    are bit-identical at any [-j].  Each simulated layer gets a synthetic
    thread lane per trial: {!tid_engine} (job lifecycle), {!tid_gc}
    (collection phases), {!tid_alloc} (allocation slow paths),
    {!tid_osal} (interrupt servicing, VMM calls) and {!tid_pcm} (device
    wear-outs, failure-buffer traffic).

    {b Overhead guarantee}: every emission point branches on
    {!armed}/the disabled flag first and the disabled path touches
    neither the cost model nor the metrics, so a run without tracing is
    bit-identical to a run that never linked this module (asserted by
    [test/test_obs.ml]).

    {b Determinism}: events carry a per-(pid, tid) sequence number
    assigned at emission.  A trial's events are produced by exactly one
    worker domain in program order, so sorting by (pid, tid, seq) — done
    by {!events} and {!write} — yields identical output regardless of
    how trials interleaved.  Only ring {e overflow} is
    scheduling-sensitive; {!dropped} reports it. *)

(** {1 Layer thread ids}

    The repository-wide lane convention; {!view} pre-registers these
    names so every trace opens with labeled lanes. *)

val tid_engine : int
(** Engine job lifecycle (one [trial] span per job). *)

val tid_gc : int
(** Collector phases: [full_gc]/[mark]/[sweep]/[defrag], [nursery_gc],
    dynamic failures, line retirements. *)

val tid_alloc : int
(** Allocation slow paths: hole skips, overflow searches, perfect-block
    fallbacks. *)

val tid_osal : int
(** OS layer: [irq_service] spans, up-calls, page copies, VMM calls. *)

val tid_pcm : int
(** Device layer: wear-outs, failure-buffer fill/drain/occupancy. *)

(** {1 Events} *)

type phase = Begin | End | Instant | Counter

val phase_string : phase -> string
(** The Chrome [ph] letter: ["B"], ["E"], ["i"] or ["C"]. *)

type event = {
  pid : int;
  tid : int;
  seq : int;  (** per-(pid, tid) emission index — the scheduling-free sort key *)
  ts : float;  (** virtual nanoseconds from the trial's cost model *)
  ph : phase;
  name : string;
  args : (string * float) list;
}

(** {1 The collector} *)

type t
(** A shared, mutex-guarded event ring. *)

val default_capacity : int
(** Ring capacity when not overridden (2{^18} events). *)

val create : ?capacity:int -> unit -> t
(** A fresh, enabled collector.  Once the ring fills, the oldest events
    are overwritten ({!dropped} counts them). *)

val enabled : t -> bool

val dropped : t -> int
(** Events lost to ring overwrite so far. *)

(** {1 Per-trial views} *)

type view
(** A trial's handle: the collector, the trial's synthetic process id
    and its virtual clock. *)

val null : view
(** The inert view: every operation is a single branch and a return.
    Used as the default wherever a tracer parameter is optional. *)

val view : t -> pid:int -> view
(** A view for process lane [pid], with the standard layer thread names
    pre-registered and a zero clock (see {!set_clock}). *)

val armed : view -> bool
(** Whether emissions through this view are recorded.  Instrumentation
    sites with non-trivial argument preparation should branch on this. *)

val set_clock : view -> (unit -> float) -> unit
(** Install the virtual-time source (nanoseconds).  The VM points this
    at its cost accumulator at creation. *)

val name_process : view -> string -> unit
(** Label the view's process lane (e.g. the engine job label). *)

val name_thread : view -> tid:int -> string -> unit
(** Override a thread-lane label. *)

(** {1 Emission} *)

val begin_span : view -> tid:int -> ?args:(string * float) list -> string -> unit
val end_span : view -> tid:int -> ?args:(string * float) list -> string -> unit

val with_span : view -> tid:int -> ?args:(string * float) list -> string -> (unit -> 'a) -> 'a
(** [with_span v ~tid name f] brackets [f] in a [B]/[E] pair; when the
    view is disarmed it is exactly [f ()]. *)

val instant : view -> tid:int -> ?args:(string * float) list -> string -> unit
(** A point event ([ph:"i"]). *)

val counter : view -> tid:int -> string -> (string * float) list -> unit
(** A counter sample ([ph:"C"]), rendered as a stacked chart lane. *)

(** {1 Output} *)

val events : t -> event list
(** The ring's events, sorted by (pid, tid, seq) and repaired to strict
    stack discipline: [End]s whose [Begin] was overwritten are dropped,
    unfinished spans are closed at their lane's last timestamp.  This is
    exactly the event sequence {!write} serializes. *)

val render : t -> string
(** The Chrome [trace_event] JSON array: [process_name]/[thread_name]
    metadata first, then {!events}. *)

val write : t -> string -> unit
(** [write t path] saves {!render} to [path]. *)
