(* Ring-buffered structured tracing with virtual timestamps.  See
   trace.mli for the contract. *)

(* ---- layer thread ids ------------------------------------------------ *)

let tid_engine = 0
let tid_gc = 1
let tid_alloc = 2
let tid_osal = 3
let tid_pcm = 4

let default_thread_names =
  [
    (tid_engine, "engine");
    (tid_gc, "core.gc");
    (tid_alloc, "core.alloc");
    (tid_osal, "osal");
    (tid_pcm, "pcm");
  ]

(* ---- events ---------------------------------------------------------- *)

type phase = Begin | End | Instant | Counter

let phase_string = function Begin -> "B" | End -> "E" | Instant -> "i" | Counter -> "C"

type event = {
  pid : int;
  tid : int;
  seq : int;  (** per-(pid,tid) emission index: the scheduling-free sort key *)
  ts : float;  (** virtual nanoseconds *)
  ph : phase;
  name : string;
  args : (string * float) list;
}

let dummy_event = { pid = 0; tid = 0; seq = 0; ts = 0.0; ph = Instant; name = ""; args = [] }

(* ---- the shared collector ------------------------------------------- *)

type t = {
  enabled : bool;
  capacity : int;
  mutex : Mutex.t;
  ring : event array;
  mutable size : int;  (** valid events in the ring *)
  mutable next : int;  (** next write slot *)
  mutable dropped : int;  (** events overwritten after the ring filled *)
  seqs : (int * int, int) Hashtbl.t;  (** (pid, tid) -> next sequence number *)
  threads : (int * int, string) Hashtbl.t;
  processes : (int, string) Hashtbl.t;
}

let default_capacity = 1 lsl 18

let create ?(capacity = default_capacity) () : t =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  {
    enabled = true;
    capacity;
    mutex = Mutex.create ();
    ring = Array.make capacity dummy_event;
    size = 0;
    next = 0;
    dropped = 0;
    seqs = Hashtbl.create 64;
    threads = Hashtbl.create 64;
    processes = Hashtbl.create 64;
  }

let disabled : t =
  {
    enabled = false;
    capacity = 0;
    mutex = Mutex.create ();
    ring = [||];
    size = 0;
    next = 0;
    dropped = 0;
    seqs = Hashtbl.create 1;
    threads = Hashtbl.create 1;
    processes = Hashtbl.create 1;
  }

let enabled (t : t) : bool = t.enabled
let dropped (t : t) : int = t.dropped

(* ---- per-trial views ------------------------------------------------- *)

type view = { t : t; pid : int; mutable clock : unit -> float }

let null : view = { t = disabled; pid = 0; clock = (fun () -> 0.0) }

let view (t : t) ~(pid : int) : view =
  let v = { t; pid; clock = (fun () -> 0.0) } in
  if t.enabled then begin
    Mutex.lock t.mutex;
    List.iter
      (fun (tid, name) ->
        if not (Hashtbl.mem t.threads (pid, tid)) then Hashtbl.replace t.threads (pid, tid) name)
      default_thread_names;
    Mutex.unlock t.mutex
  end;
  v

let armed (v : view) : bool = v.t.enabled

let set_clock (v : view) (clock : unit -> float) : unit = if v.t.enabled then v.clock <- clock

let name_process (v : view) (name : string) : unit =
  if v.t.enabled then begin
    Mutex.lock v.t.mutex;
    Hashtbl.replace v.t.processes v.pid name;
    Mutex.unlock v.t.mutex
  end

let name_thread (v : view) ~(tid : int) (name : string) : unit =
  if v.t.enabled then begin
    Mutex.lock v.t.mutex;
    Hashtbl.replace v.t.threads (v.pid, tid) name;
    Mutex.unlock v.t.mutex
  end

(* ---- emission -------------------------------------------------------- *)

let record (v : view) ~(tid : int) ~(ph : phase) ~(args : (string * float) list)
    (name : string) : unit =
  let t = v.t in
  let ts = v.clock () in
  Mutex.lock t.mutex;
  let key = (v.pid, tid) in
  let seq = match Hashtbl.find_opt t.seqs key with Some s -> s | None -> 0 in
  Hashtbl.replace t.seqs key (seq + 1);
  t.ring.(t.next) <- { pid = v.pid; tid; seq; ts; ph; name; args };
  t.next <- (t.next + 1) mod t.capacity;
  if t.size < t.capacity then t.size <- t.size + 1 else t.dropped <- t.dropped + 1;
  Mutex.unlock t.mutex

let begin_span (v : view) ~(tid : int) ?(args = []) (name : string) : unit =
  if v.t.enabled then record v ~tid ~ph:Begin ~args name

let end_span (v : view) ~(tid : int) ?(args = []) (name : string) : unit =
  if v.t.enabled then record v ~tid ~ph:End ~args name

let with_span (v : view) ~(tid : int) ?(args = []) (name : string) (f : unit -> 'a) : 'a =
  if not v.t.enabled then f ()
  else begin
    record v ~tid ~ph:Begin ~args name;
    Fun.protect ~finally:(fun () -> record v ~tid ~ph:End ~args:[] name) f
  end

let instant (v : view) ~(tid : int) ?(args = []) (name : string) : unit =
  if v.t.enabled then record v ~tid ~ph:Instant ~args name

let counter (v : view) ~(tid : int) (name : string) (args : (string * float) list) : unit =
  if v.t.enabled then record v ~tid ~ph:Counter ~args name

(* ---- repair + ordering ----------------------------------------------- *)

(* Snapshot the ring, oldest first.  Caller holds the mutex. *)
let snapshot (t : t) : event list =
  List.init t.size (fun i ->
      let idx = if t.size < t.capacity then i else (t.next + i) mod t.capacity in
      t.ring.(idx))

let compare_events (a : event) (b : event) : int =
  match compare a.pid b.pid with
  | 0 -> ( match compare a.tid b.tid with 0 -> compare a.seq b.seq | c -> c)
  | c -> c

(* Enforce stack discipline per (pid, tid): ring overwrite can truncate a
   group's head, leaving End events whose Begin was dropped (discarded
   here) and — when a trace is written mid-span — Begin events with no
   End (closed here with a synthetic End at the group's last timestamp).
   The result is loadable by Perfetto/chrome://tracing without "unmatched
   event" degradation. *)
let repair_group (evs : event list) : event list =
  let out = ref [] and stack = ref [] and last_ts = ref 0.0 and last_seq = ref 0 in
  List.iter
    (fun e ->
      if e.ts > !last_ts then last_ts := e.ts;
      if e.seq > !last_seq then last_seq := e.seq;
      match e.ph with
      | Begin ->
          stack := e :: !stack;
          out := e :: !out
      | End -> (
          match !stack with
          | top :: rest when top.name = e.name ->
              stack := rest;
              out := e :: !out
          | _ -> (* orphan End: its Begin was overwritten *) ())
      | Instant | Counter -> out := e :: !out)
    evs;
  (* close unfinished spans, innermost first *)
  let closes =
    List.mapi
      (fun i b ->
        { b with ph = End; ts = !last_ts; seq = !last_seq + 1 + i; args = [] })
      !stack
  in
  List.rev !out @ closes

let events (t : t) : event list =
  Mutex.lock t.mutex;
  let evs = snapshot t in
  Mutex.unlock t.mutex;
  let sorted = List.stable_sort compare_events evs in
  (* group by (pid, tid) and repair each group *)
  let groups = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (e : event) ->
      let key = (e.pid, e.tid) in
      match Hashtbl.find_opt groups key with
      | Some l -> l := e :: !l
      | None ->
          Hashtbl.replace groups key (ref [ e ]);
          order := key :: !order)
    sorted;
  List.rev !order
  |> List.concat_map (fun key -> repair_group (List.rev !(Hashtbl.find groups key)))

(* ---- Chrome trace_event JSON ----------------------------------------- *)

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float (f : float) : string =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let add_args (b : Buffer.t) (args : (string * float) list) : unit =
  Buffer.add_string b ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%s" (escape k) (json_float v)))
    args;
  Buffer.add_char b '}'

(* Metadata naming a process or thread lane in the viewer. *)
let add_metadata (b : Buffer.t) ~(what : string) ~(pid : int) ~(tid : int) (name : string) :
    unit =
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
       what pid tid (escape name))

let render (t : t) : string =
  let evs = events t in
  Mutex.lock t.mutex;
  let processes = Hashtbl.fold (fun pid name acc -> (pid, name) :: acc) t.processes [] in
  let threads = Hashtbl.fold (fun key name acc -> (key, name) :: acc) t.threads [] in
  Mutex.unlock t.mutex;
  let b = Buffer.create 65536 in
  Buffer.add_string b "[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n"
  in
  List.iter
    (fun (pid, name) ->
      sep ();
      add_metadata b ~what:"process_name" ~pid ~tid:0 name)
    (List.sort compare processes);
  List.iter
    (fun ((pid, tid), name) ->
      sep ();
      add_metadata b ~what:"thread_name" ~pid ~tid name)
    (List.sort compare threads);
  List.iter
    (fun e ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"holes\",\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%s"
           (escape e.name) (phase_string e.ph) e.pid e.tid
           (json_float (e.ts /. 1000.0)));
      if e.args <> [] || e.ph = Counter then add_args b e.args;
      Buffer.add_char b '}')
    evs;
  Buffer.add_string b "]\n";
  Buffer.contents b

let write (t : t) (path : string) : unit =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (render t))
