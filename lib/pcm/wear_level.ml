(** Pluggable wear-leveling policies over one shared permutation core.

    The paper argues (Sec. 7.2, "Wear Leveling Considered Harmful") that
    uniformly wearing memory spreads failures out, fragmenting it, while
    concentrated wear keeps failures clustered and is more transparent to
    failure-aware software.  This module provides the leveling stage of
    the device's address-translation pipeline ({!Translate}): a live
    logical→slot permutation plus a *mover* that perturbs it as writes
    accrue.  Three movers are modeled:

    - {e start-gap} (Qureshi et al., MICRO 2009 — cited as [17]): one
      slot is reserved as the gap; every [psi] writes the line adjacent
      to the gap moves into it and the gap advances (1 data copy).
    - {e random remap} (SoftWear-style, software-only): every [psi]
      writes, the written line swaps slots with a uniformly random
      partner (2 data copies + a map update).
    - {e decoder swap} (WoLFRaM-style programmable decoders): every
      [psi] writes, the written line swaps slots with a round-robin
      cursor partner (2 data copies + a decoder reprogram).

    All three maintain the permutation explicitly by swapping entries,
    which keeps the model honest — it is a permutation by construction —
    at O(1) per move.  Slots that become unusable downstream (wear-outs,
    clustering metadata) are {e frozen}: the mover never relocates data
    onto or off them again, so the logical view of a failure stays
    stable once the OS has published it. *)

open Holes_stdx

type policy =
  | Start_gap of { psi : int }
  | Random_remap of { psi : int }
  | Decoder_swap of { psi : int }

let psi_of = function
  | Start_gap { psi } | Random_remap { psi } | Decoder_swap { psi } -> psi

let validate_policy = function
  | Start_gap { psi } | Random_remap { psi } | Decoder_swap { psi } ->
      if psi <= 0 then invalid_arg "Wear_level: psi must be positive"

(** Data-movement callbacks supplied by the device: [copy] moves one
    line's payload between slots (charging wear at the destination),
    [swap] exchanges two slots' payloads (charging wear at both).  Slot
    indices are in this stage's {e output} domain; the device composes
    the downstream stages to reach physical lines. *)
type io = { copy : src:int -> dst:int -> unit; swap : a:int -> b:int -> unit }

let null_io = { copy = (fun ~src:_ ~dst:_ -> ()); swap = (fun ~a:_ ~b:_ -> ()) }

type t = {
  n : int;  (** lines (logical and slot domains have the same size) *)
  map : int array;  (** logical line -> slot; a permutation *)
  inverse : int array;  (** slot -> logical line *)
  frozen_slot : Bitset.t;  (** slots pinned by downstream unusability *)
  frozen_logical : Bitset.t;  (** logical ends of pinned pairs + the gap owner *)
  rng : Xrng.t;  (** partner draws for [Random_remap] *)
  mutable policy : policy option;  (** [None] = paused: permutation kept, no moves *)
  mutable io : io;
  mutable gap_owner : int;
      (** logical line reserved to own the gap slot (start-gap), or -1.
          Its slot is the gap: it holds no software data, so moving data
          into it and re-pointing the owner is safe.  Reserved lines are
          reported unusable to the OS exactly like failures. *)
  mutable cursor : int;  (** round-robin partner for [Decoder_swap] *)
  mutable writes_since_move : int;
  mutable gap_moves : int;  (** start-gap movements (1 copy each) *)
  mutable remaps : int;  (** pair swaps performed (2 copies each) *)
  mutable copies : int;  (** total overhead line copies *)
  mutable meta_writes : int;  (** map-table / decoder reprogram writes *)
}

let create ?(policy : policy option) ~(nlines : int) ~(seed : int) () : t =
  if nlines <= 1 then invalid_arg "Wear_level.create: nlines must exceed 1";
  Option.iter validate_policy policy;
  {
    n = nlines;
    map = Array.init nlines Fun.id;
    inverse = Array.init nlines Fun.id;
    frozen_slot = Bitset.create nlines;
    frozen_logical = Bitset.create nlines;
    rng = Xrng.of_seed seed;
    policy;
    io = null_io;
    gap_owner = -1;
    cursor = 0;
    writes_since_move = 0;
    gap_moves = 0;
    remaps = 0;
    copies = 0;
    meta_writes = 0;
  }

let set_io (t : t) (io : io) : unit = t.io <- io

let policy (t : t) : policy option = t.policy

(** Slot currently holding logical line [l]. *)
let translate (t : t) (l : int) : int =
  if l < 0 || l >= t.n then invalid_arg "Wear_level.translate: out of range";
  t.map.(l)

(** Logical line currently held by slot [s]. *)
let inverse (t : t) (s : int) : int =
  if s < 0 || s >= t.n then invalid_arg "Wear_level.inverse: out of range";
  t.inverse.(s)

let gap_owner (t : t) : int = t.gap_owner

(** Logical lines the stage has reserved for itself (unusable to
    software): the gap owner, when one exists. *)
let reserved (t : t) : int list = if t.gap_owner >= 0 then [ t.gap_owner ] else []

let swap_entries (t : t) (a : int) (b : int) : unit =
  if a <> b then begin
    let sa = t.map.(a) and sb = t.map.(b) in
    t.map.(a) <- sb;
    t.map.(b) <- sa;
    t.inverse.(sa) <- b;
    t.inverse.(sb) <- a
  end

let movable (t : t) (l : int) : bool =
  (not (Bitset.get t.frozen_logical l)) && not (Bitset.get t.frozen_slot t.map.(l))

(** Pin logical line [l] and its current slot: used when the stage is
    installed mid-run over lines the OS already knows are unusable. *)
let freeze_pair (t : t) (l : int) : unit =
  Bitset.set t.frozen_logical l;
  Bitset.set t.frozen_slot t.map.(l)

(** Downstream reports slot [slot] unusable.  Pins the (logical, slot)
    pair so no future move touches it and returns the logical line that
    just became unusable — or [None] when the pair was already pinned,
    or when the slot was the gap (the reserved owner was already
    published unusable at reservation time; losing the gap merely pauses
    start-gap until it is re-enabled). *)
let on_slot_unusable (t : t) ~(slot : int) : int option =
  if slot < 0 || slot >= t.n then invalid_arg "Wear_level.on_slot_unusable: out of range";
  if Bitset.get t.frozen_slot slot then None
  else begin
    Bitset.set t.frozen_slot slot;
    let l = t.inverse.(slot) in
    if l = t.gap_owner then begin
      Bitset.set t.frozen_logical l;
      t.gap_owner <- -1;
      None
    end
    else if Bitset.get t.frozen_logical l then None
    else begin
      Bitset.set t.frozen_logical l;
      Some l
    end
  end

(** Reserve a gap line for start-gap if the policy needs one and none
    exists.  Picks a movable line nearest mid-device — away from the
    region-end clustering metadata, which would otherwise freeze the gap
    at boot.  Returns the newly reserved logical line (the caller must
    publish it unusable, evacuating it first on a live device). *)
let ensure_gap (t : t) : int option =
  match t.policy with
  | Some (Start_gap _) when t.gap_owner < 0 ->
      let mid = t.n / 2 in
      let rec pick d =
        if d > t.n then None
        else begin
          let lo = mid - d and hi = mid + d in
          if lo >= 0 && movable t lo then Some lo
          else if hi < t.n && movable t hi then Some hi
          else pick (d + 1)
        end
      in
      let r = if movable t mid then Some mid else pick 1 in
      Option.iter
        (fun r ->
          t.gap_owner <- r;
          Bitset.set t.frozen_logical r)
        r;
      r
  | _ -> None

(* one start-gap step: the nearest movable line "before" the gap
   (cyclically) moves into it and the gap advances to its old slot *)
let move_gap (t : t) : unit =
  if t.gap_owner >= 0 then begin
    let gap = t.map.(t.gap_owner) in
    let rec find prev tries =
      if tries = 0 then -1
      else if
        (not (Bitset.get t.frozen_slot prev)) && not (Bitset.get t.frozen_logical t.inverse.(prev))
      then prev
      else find ((prev + t.n - 1) mod t.n) (tries - 1)
    in
    let prev = find ((gap + t.n - 1) mod t.n) (t.n - 1) in
    if prev >= 0 then begin
      t.io.copy ~src:prev ~dst:gap;
      swap_entries t t.gap_owner t.inverse.(prev);
      t.copies <- t.copies + 1;
      t.gap_moves <- t.gap_moves + 1
    end
  end

let swap_pair (t : t) (a : int) (b : int) : unit =
  t.io.swap ~a:t.map.(a) ~b:t.map.(b);
  swap_entries t a b;
  t.remaps <- t.remaps + 1;
  t.copies <- t.copies + 2;
  t.meta_writes <- t.meta_writes + 1

let random_remap (t : t) (l : int) : unit =
  if movable t l then begin
    let rec draw tries =
      if tries = 0 then ()
      else
        let b = Xrng.int t.rng t.n in
        if b <> l && movable t b then swap_pair t l b else draw (tries - 1)
    in
    draw 8
  end

let decoder_swap (t : t) (l : int) : unit =
  if movable t l then begin
    let rec advance tries =
      if tries = 0 then -1
      else begin
        let c = t.cursor in
        t.cursor <- (t.cursor + 1) mod t.n;
        if c <> l && movable t c then c else advance (tries - 1)
      end
    in
    let b = advance (t.n + 1) in
    if b >= 0 then swap_pair t l b
  end

(** Account one data write to logical line [l] (called {e before} the
    write translates, so a triggered move relocates the old payload and
    the incoming write lands at the post-move slot). *)
let on_data_write (t : t) (l : int) : unit =
  match t.policy with
  | None -> ()
  | Some p ->
      t.writes_since_move <- t.writes_since_move + 1;
      if t.writes_since_move >= psi_of p then begin
        t.writes_since_move <- 0;
        match p with
        | Start_gap _ -> move_gap t
        | Random_remap _ -> random_remap t l
        | Decoder_swap _ -> decoder_swap t l
      end

(** Switch the mover ([None] pauses: the permutation and frozen pairs
    are kept, so data and published failures stay where they are).
    Switching to start-gap may need a new gap — call {!ensure_gap}. *)
let set_policy (t : t) (p : policy option) : unit =
  Option.iter validate_policy p;
  t.policy <- p

let gap_moves (t : t) : int = t.gap_moves
let remaps (t : t) : int = t.remaps
let copies (t : t) : int = t.copies
let meta_writes (t : t) : int = t.meta_writes

(** Invariant check for property tests: [map]/[inverse] are mutually
    inverse permutations and frozen pairs line up. *)
let is_consistent (t : t) : bool =
  let seen = Array.make t.n false in
  let ok = ref true in
  Array.iter
    (fun s -> if s < 0 || s >= t.n || seen.(s) then ok := false else seen.(s) <- true)
    t.map;
  !ok
  && Array.for_all Fun.id (Array.init t.n (fun l -> t.inverse.(t.map.(l)) = l))
  && Array.for_all Fun.id
       (Array.init t.n (fun l ->
            (not (Bitset.get t.frozen_logical l))
            || l = t.gap_owner
            || Bitset.get t.frozen_slot t.map.(l)))

let check (t : t) : (unit, string) result =
  if is_consistent t then Ok ()
  else Error "wear-level stage: map/inverse permutation invariant violated"

(** Test-only: corrupt the map without updating [inverse], to prove the
    verifier catches translation-consistency violations. *)
let unsafe_poke (t : t) ~(logical : int) ~(slot : int) : unit = t.map.(logical) <- slot
