(** Failure-map generation — the paper's fault-injection methodology
    (Sec. 5 "Failure map generation", Sec. 6.3, Sec. 6.4).

    A failure map has one bit per 64 B PCM line.  Three generators:

    - {!uniform}: failures uniformly distributed over lines — the model of
      wear-leveled PCM the paper evaluates by default.
    - {!clustered}: the Sec. 6.4 limit study — step through aligned
      granules of [2^N] lines and fail whole granules, keeping the
      line-failure probability at [rate] but guaranteeing gaps of at least
      the granule size.
    - {!cluster_transform}: the proposed clustering hardware — take a
      uniform map and move each region's failures to the start (even
      regions) or end (odd regions), exactly as the paper evaluates its
      one- and two-page clustering ("these experiments use a failure map
      with uniformly distributed 64-byte line failures, and then move
      those failures according to our one- and two-page clustering
      algorithm").

    To reduce run-to-run variance we fail an exact count of
    [round (rate * n)] lines/granules (sampled without replacement)
    rather than flipping a coin per granule; expected rates match the
    paper's generator and confidence intervals shrink. *)

open Holes_stdx

(* Sample [k] distinct ints in [0, n) without replacement (partial
   Fisher-Yates over an index array). *)
let sample_without_replacement (rng : Xrng.t) ~(n : int) ~(k : int) : int array =
  if k < 0 || k > n then invalid_arg "Failure_map: sample count out of range";
  if k = 0 then [||]
  else begin
    (* identity fill by hand: [Array.init n Fun.id] pays a closure call
       per element, and heap-map generation runs this over every PCM
       line of every simulated device *)
    let idx = Array.make n 0 in
    for i = 1 to n - 1 do
      Array.unsafe_set idx i i
    done;
    (* partial Fisher-Yates; [j] lies in [i, n), so the swaps are in
       bounds by construction *)
    for i = 0 to k - 1 do
      let j = i + Xrng.int rng (n - i) in
      let tmp = Array.unsafe_get idx i in
      Array.unsafe_set idx i (Array.unsafe_get idx j);
      Array.unsafe_set idx j tmp
    done;
    Array.sub idx 0 k
  end

(** [uniform rng ~nlines ~rate] fails exactly [round (rate * nlines)]
    lines chosen uniformly. *)
let uniform (rng : Xrng.t) ~(nlines : int) ~(rate : float) : Bitset.t =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Failure_map.uniform: rate out of [0,1]";
  let k = int_of_float (Float.round (rate *. float_of_int nlines)) in
  let map = Bitset.create nlines in
  Array.iter (Bitset.set map) (sample_without_replacement rng ~n:nlines ~k);
  map

(** [clustered rng ~nlines ~rate ~granule_lines] fails whole aligned
    granules of [granule_lines] lines; the overall line-failure rate stays
    [rate] but failures arrive in contiguous chunks — the Sec. 6.4 limit
    study at granularities 64 B ([granule_lines]=1) through 16 KB (256). *)
let clustered (rng : Xrng.t) ~(nlines : int) ~(rate : float) ~(granule_lines : int) : Bitset.t =
  if granule_lines <= 0 then invalid_arg "Failure_map.clustered: granule must be positive";
  if nlines mod granule_lines <> 0 then
    invalid_arg "Failure_map.clustered: nlines must be a multiple of the granule";
  let ngran = nlines / granule_lines in
  let k = int_of_float (Float.round (rate *. float_of_int ngran)) in
  let map = Bitset.create nlines in
  sample_without_replacement rng ~n:ngran ~k
  |> Array.iter (fun g ->
         for i = 0 to granule_lines - 1 do
           Bitset.set map ((g * granule_lines) + i)
         done);
  map

(** [cluster_transform map ~region_pages] models the proposed clustering
    hardware: within each region of [region_pages] pages, the same number
    of lines fail, but they are moved to the start of even-indexed regions
    and the end of odd-indexed regions.  [include_metadata] additionally
    charges the redirection-map metadata lines in any region that has at
    least one failure (the figure harness follows the paper and leaves it
    off; the full-hardware examples turn it on). *)
let cluster_transform ?(include_metadata = false) (map : Bitset.t) ~(region_pages : int) :
    Bitset.t =
  let nlines = Bitset.length map in
  let rl = Geometry.lines_per_region ~region_pages in
  if nlines mod rl <> 0 then
    invalid_arg "Failure_map.cluster_transform: map not a whole number of regions";
  let nregions = nlines / rl in
  let meta = if include_metadata then Geometry.redirection_meta_lines ~region_pages else 0 in
  let out = Bitset.create nlines in
  for r = 0 to nregions - 1 do
    let base = r * rl in
    let failures = ref 0 in
    for i = 0 to rl - 1 do
      if Bitset.get map (base + i) then incr failures
    done;
    let unusable = if !failures > 0 then min rl (!failures + meta) else 0 in
    if r mod 2 = 0 then
      for i = 0 to unusable - 1 do
        Bitset.set out (base + i)
      done
    else
      for i = 0 to unusable - 1 do
        Bitset.set out (base + rl - 1 - i)
      done
  done;
  out

(** Count of failed lines in [map] — preserved by {!cluster_transform}
    when [include_metadata] is false (a property test checks this). *)
let failed_lines (map : Bitset.t) : int = Bitset.count map

(** Failure rate of [map]. *)
let rate (map : Bitset.t) : float =
  if Bitset.length map = 0 then 0.0
  else float_of_int (Bitset.count map) /. float_of_int (Bitset.length map)

(** Per-page failed-line counts (64 lines per page), used by the OS pools
    and by the perfect-page statistics of Fig. 9(b). *)
let per_page_counts (map : Bitset.t) : int array =
  let nlines = Bitset.length map in
  let lpp = Geometry.lines_per_page in
  let npages = (nlines + lpp - 1) / lpp in
  let counts = Array.make npages 0 in
  Bitset.iter_set map (fun i -> counts.(i / lpp) <- counts.(i / lpp) + 1);
  counts

(** Number of perfect (failure-free) pages described by [map]. *)
let perfect_pages (map : Bitset.t) : int =
  Array.fold_left (fun acc c -> if c = 0 then acc + 1 else acc) 0 (per_page_counts map)
