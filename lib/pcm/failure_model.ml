(** Adversarial failure models (beyond the paper's uniform maps).

    The paper's fault-injection methodology (Sec. 5) distributes line
    failures uniformly — the behavior of ideally wear-leveled PCM.
    Related work on wear management (WoLFRaM, SoftWear) shows the
    realistic adversary is *spatially correlated* and *variation-driven*
    wear, and a failure-buffer-based device (Sec. 3.1) additionally has a
    worst case in *time*: bursts that fill the buffer faster than the OS
    drains it.  This module packages those adversaries behind one spec
    type so `Config` can select them per trial:

    - {!Correlated}: static maps whose failures arrive in clusters with a
      geometric size distribution (configurable mean, in 64 B lines),
      each cluster confined to an aligned region (a page by default) —
      the spatial-correlation regime between the paper's uniform maps and
      its Sec. 6.4 whole-granule limit study.
    - {!Variation}: static maps from per-line endurance variation with a
      configurable coefficient of variation — every line draws a mean-1
      endurance factor (lognormal, the paper's model generalized; or the
      Gaussian weak-cell option) and the weakest [rate] fraction fail.
    - {!Storm}: dynamic bursts of line failures at exponentially
      distributed intervals of allocation work; burst sizes are geometric
      with a configurable mean, sized to stress the device failure buffer
      to overflow (insert → stall → drain).
    - {!Adversarial}: worst-case placement — periodically fail exactly
      the line the allocator's bump cursor is about to cross, forcing a
      dynamic failure in freshly allocated memory every time.

    All draws take an explicit {!Holes_stdx.Xrng.t} seeded from the trial
    seed, so `-j 1` and `-j N` runs stay bit-identical. *)

open Holes_stdx

type spec =
  | Correlated of {
      mean_cluster : float;  (** mean cluster size in 64 B lines (geometric) *)
      region_lines : int;  (** clusters never span an aligned region boundary *)
    }
  | Variation of {
      cov : float;  (** coefficient of variation of per-line endurance *)
      shape : Wear.shape;
    }
  | Storm of {
      mean_burst : float;  (** mean lines failed per storm (geometric) *)
      period_bytes : int;  (** mean allocation bytes between storms (exponential) *)
    }
  | Adversarial of { period_bytes : int  (** exact allocation bytes between strikes *) }

(** Compact, name-safe rendering used in [Config.name] (and therefore in
    the deterministic trial-seed derivation): distinct specs must render
    distinctly. *)
let name (s : spec) : string =
  match s with
  | Correlated { mean_cluster; region_lines } ->
      if region_lines = Geometry.lines_per_page then Printf.sprintf "corr%g" mean_cluster
      else Printf.sprintf "corr%g/%d" mean_cluster region_lines
  | Variation { cov; shape } ->
      Printf.sprintf "var%g%s" cov (match shape with Wear.Lognormal -> "" | Wear.Gaussian -> "g")
  | Storm { mean_burst; period_bytes } -> Printf.sprintf "storm%gx%d" mean_burst period_bytes
  | Adversarial { period_bytes } -> Printf.sprintf "adv%d" period_bytes

let validate (s : spec) : (unit, string) result =
  match s with
  | Correlated { mean_cluster; region_lines } ->
      if mean_cluster < 1.0 then Error "Correlated: mean cluster size must be >= 1 line"
      else if region_lines < 1 then Error "Correlated: region must be >= 1 line"
      else Ok ()
  | Variation { cov; _ } ->
      if cov <= 0.0 then Error "Variation: CoV must be positive" else Ok ()
  | Storm { mean_burst; period_bytes } ->
      if mean_burst < 1.0 then Error "Storm: mean burst must be >= 1 line"
      else if period_bytes <= 0 then Error "Storm: period must be positive"
      else Ok ()
  | Adversarial { period_bytes } ->
      if period_bytes <= 0 then Error "Adversarial: period must be positive" else Ok ()

(** Dynamic models inject failures while the mutator runs (via the VM's
    injector); static models only shape the initial map. *)
let is_dynamic (s : spec) : bool =
  match s with Storm _ | Adversarial _ -> true | Correlated _ | Variation _ -> false

(* ------------------------------------------------------------------ *)
(* Static map generation                                               *)

(* Exact-count clustered map: place geometric-size clusters at uniform
   starts, clipped to their aligned region, until round(rate*nlines)
   lines are failed.  A bounded number of random attempts keeps the
   count exact even at high rates; any shortfall (vanishingly rare) is
   filled by a deterministic scan. *)
let correlated_map (rng : Xrng.t) ~(nlines : int) ~(rate : float) ~(mean_cluster : float)
    ~(region_lines : int) : Bitset.t =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Failure_model: rate out of [0,1]";
  let k = int_of_float (Float.round (rate *. float_of_int nlines)) in
  let map = Bitset.create nlines in
  let placed = ref 0 in
  let p = 1.0 /. Float.max 1.0 mean_cluster in
  let attempts = ref 0 in
  let max_attempts = 16 * (nlines + 64) in
  while !placed < k && !attempts < max_attempts do
    incr attempts;
    let size = min (Dist.geometric rng ~p) (k - !placed) in
    let start = Xrng.int rng nlines in
    let region_end = ((start / region_lines) + 1) * region_lines in
    let stop = min nlines (min region_end (start + size)) in
    for i = start to stop - 1 do
      if not (Bitset.get map i) then begin
        Bitset.set map i;
        incr placed
      end
    done
  done;
  (* Deterministic fill if random placement could not reach the count. *)
  let i = ref 0 in
  while !placed < k && !i < nlines do
    if not (Bitset.get map !i) then begin
      Bitset.set map !i;
      incr placed
    end;
    incr i
  done;
  map

(** Per-line endurance factors (mean 1, coefficient of variation [cov])
    for [n] lines — exposed for the statistical tests. *)
let draw_factors (rng : Xrng.t) ~(shape : Wear.shape) ~(cov : float) ~(n : int) : float array =
  Array.init n (fun _ -> Wear.draw_factor rng ~shape ~cov)

(* Variation map: fail the round(rate*nlines) weakest lines.  Ties break
   by line index so the map is a deterministic function of the draws. *)
let variation_map (rng : Xrng.t) ~(nlines : int) ~(rate : float) ~(cov : float)
    ~(shape : Wear.shape) : Bitset.t =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Failure_model: rate out of [0,1]";
  let k = int_of_float (Float.round (rate *. float_of_int nlines)) in
  let factors = draw_factors rng ~shape ~cov ~n:nlines in
  let order = Array.init nlines Fun.id in
  Array.sort
    (fun a b ->
      let c = Float.compare factors.(a) factors.(b) in
      if c <> 0 then c else Int.compare a b)
    order;
  let map = Bitset.create nlines in
  for i = 0 to k - 1 do
    Bitset.set map order.(i)
  done;
  map

(** [static_map s rng ~nlines ~rate] generates the initial failure map
    for spec [s].  Dynamic specs (Storm/Adversarial) start from the
    paper's uniform map at [rate] (usually 0) and inject the rest at
    run time. *)
let static_map (s : spec) (rng : Xrng.t) ~(nlines : int) ~(rate : float) : Bitset.t =
  match s with
  | Correlated { mean_cluster; region_lines } ->
      correlated_map rng ~nlines ~rate ~mean_cluster ~region_lines
  | Variation { cov; shape } -> variation_map rng ~nlines ~rate ~cov ~shape
  | Storm _ | Adversarial _ -> Failure_map.uniform rng ~nlines ~rate

(* ------------------------------------------------------------------ *)
(* Dynamic schedules (driven by the VM's injector)                     *)

(** Allocation bytes until the next injection event.  Storms arrive at
    exponentially distributed intervals; the adversary strikes on an
    exact period (worst case needs no luck). *)
let next_interval (s : spec) (rng : Xrng.t) : int =
  match s with
  | Storm { period_bytes; _ } ->
      max 1 (int_of_float (Dist.exponential rng ~mean:(float_of_int period_bytes)))
  | Adversarial { period_bytes } -> period_bytes
  | Correlated _ | Variation _ -> invalid_arg "Failure_model.next_interval: static model"

(** Lines failed by one event. *)
let burst_size (s : spec) (rng : Xrng.t) : int =
  match s with
  | Storm { mean_burst; _ } -> Dist.geometric rng ~p:(1.0 /. Float.max 1.0 mean_burst)
  | Adversarial _ -> 1
  | Correlated _ | Variation _ -> invalid_arg "Failure_model.burst_size: static model"

(* ------------------------------------------------------------------ *)
(* Measurement helpers (statistical tests, EXPERIMENTS tables)         *)

(** Sizes of the maximal runs of consecutive failed lines in [map]. *)
let cluster_sizes (map : Bitset.t) : int list =
  let n = Bitset.length map in
  let out = ref [] in
  let run = ref 0 in
  for i = 0 to n - 1 do
    if Bitset.get map i then incr run
    else if !run > 0 then begin
      out := !run :: !out;
      run := 0
    end
  done;
  if !run > 0 then out := !run :: !out;
  List.rev !out

(** Mean failed-cluster size of [map] (0 when no line failed). *)
let mean_cluster_size (map : Bitset.t) : float =
  match cluster_sizes map with
  | [] -> 0.0
  | cs -> float_of_int (List.fold_left ( + ) 0 cs) /. float_of_int (List.length cs)

(** Sample coefficient of variation of [xs]. *)
let cov_of (xs : float array) : float =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 xs
      /. float_of_int (n - 1)
    in
    if mean = 0.0 then 0.0 else sqrt var /. mean
  end

(* ------------------------------------------------------------------ *)
(* CLI syntax: a compact round-trippable form for --model flags and     *)
(* torture repro commands.                                             *)

(** [to_cli s] renders [s] in the syntax {!of_cli} parses. *)
let to_cli (s : spec) : string =
  match s with
  | Correlated { mean_cluster; region_lines } ->
      Printf.sprintf "corr:%g:%d" mean_cluster region_lines
  | Variation { cov; shape } ->
      Printf.sprintf "var:%g:%s" cov
        (match shape with Wear.Lognormal -> "lognormal" | Wear.Gaussian -> "gauss")
  | Storm { mean_burst; period_bytes } -> Printf.sprintf "storm:%g:%d" mean_burst period_bytes
  | Adversarial { period_bytes } -> Printf.sprintf "adv:%d" period_bytes

(** Parse the compact CLI form:
    ["corr:MEAN[:REGION_LINES]"], ["var:COV[:lognormal|gauss]"],
    ["storm:BURST:PERIOD_BYTES"], ["adv:PERIOD_BYTES"]. *)
let of_cli (s : string) : (spec, string) result =
  let bad () = Error (Printf.sprintf "unknown failure model %S" s) in
  let float_of s = float_of_string_opt s and int_of s = int_of_string_opt s in
  let spec =
    match String.split_on_char ':' s with
    | [ "corr"; m ] ->
        Option.map
          (fun m -> Correlated { mean_cluster = m; region_lines = Geometry.lines_per_page })
          (float_of m)
    | [ "corr"; m; r ] ->
        Option.bind (float_of m) (fun m ->
            Option.map (fun r -> Correlated { mean_cluster = m; region_lines = r }) (int_of r))
    | [ "var"; c ] -> Option.map (fun cov -> Variation { cov; shape = Wear.Lognormal }) (float_of c)
    | [ "var"; c; sh ] ->
        Option.bind (float_of c) (fun cov ->
            match sh with
            | "lognormal" -> Some (Variation { cov; shape = Wear.Lognormal })
            | "gauss" | "gaussian" -> Some (Variation { cov; shape = Wear.Gaussian })
            | _ -> None)
    | [ "storm"; b; p ] ->
        Option.bind (float_of b) (fun mean_burst ->
            Option.map (fun period_bytes -> Storm { mean_burst; period_bytes }) (int_of p))
    | [ "adv"; p ] -> Option.map (fun period_bytes -> Adversarial { period_bytes }) (int_of p)
    | _ -> None
  in
  match spec with
  | None -> bad ()
  | Some sp -> ( match validate sp with Ok () -> Ok sp | Error e -> Error e)
