(** CARAM-style content-aware line store.

    A small [ways]-way set-associative cache of line {e contents},
    keyed by fingerprint, sitting in front of the PCM cells.  A write
    whose exact content is already present anywhere in the matching
    set is {e deduplicated}: the logical line is bound to the cached
    entry and the PCM cells never see the write.  A write whose 64
    bytes are a single repeated byte is {e compressed}: the pattern
    byte is recorded in the line's metadata and again no cell is
    written.  Every absorbed write costs one metadata write (counted,
    not charged to wear — metadata lives in DRAM/NVM controller
    state).  Everything else falls through to the normal
    translate→wear→arena path, which remains the authoritative store
    for unbound lines.

    Reads of a bound line are served from the cache (bit-exact
    round-trip); reads of unbound lines fall through to the arena.
    Entries are reference-counted by the logical lines bound to them
    and only evicted at zero references, so a bound line can always be
    served.  The entry's content copy is authoritative for its
    referents even after the original (master) line is overwritten in
    PCM. *)

type entry = {
  mutable fp : int;
  mutable data : Bytes.t;  (** authoritative content for [refs] bound lines *)
  mutable refs : int;  (** bound logical lines pointing here *)
  mutable valid : bool;
}

type binding =
  | Slot of int  (** index into [table]: deduplicated against that entry *)
  | Pattern of char  (** single-byte-pattern compressed line *)

type t = {
  ways : int;
  sets : int;
  table : entry array;  (** [sets * ways] entries, set-major *)
  bound : (int, binding) Hashtbl.t;  (** logical line -> current binding *)
  mutable dedup_hits : int;
  mutable compressed : int;
  mutable installs : int;
  mutable evictions : int;
  mutable meta_writes : int;
}

type stats = {
  s_dedup_hits : int;
  s_compressed : int;
  s_installs : int;
  s_evictions : int;
  s_meta_writes : int;
  s_bound : int;
}

let create ~(ways : int) ~(nlines : int) () : t =
  if ways <= 0 then invalid_arg "Caram.create: ways must be positive";
  (* a quarter of the device's lines worth of fingerprint slots: big
     enough to catch recurring content, small enough to force churn *)
  let sets = max 1 (nlines / (ways * 4)) in
  {
    ways;
    sets;
    table =
      Array.init (sets * ways) (fun _ ->
          { fp = 0; data = Bytes.empty; refs = 0; valid = false });
    bound = Hashtbl.create 64;
    dedup_hits = 0;
    compressed = 0;
    installs = 0;
    evictions = 0;
    meta_writes = 0;
  }

(* FNV-1a folded into a non-negative OCaml int (offset basis truncated
   to the native 63-bit int range) *)
let fingerprint (b : Bytes.t) : int =
  let h = ref 0x3bf29ce484222325 in
  for i = 0 to Bytes.length b - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x100000001b3
  done;
  !h land max_int

let pattern_of (b : Bytes.t) : char option =
  let n = Bytes.length b in
  if n = 0 then None
  else begin
    let c = Bytes.unsafe_get b 0 in
    let i = ref 1 in
    while !i < n && Bytes.unsafe_get b !i = c do incr i done;
    if !i = n then Some c else None
  end

let release (t : t) (logical : int) : unit =
  match Hashtbl.find_opt t.bound logical with
  | None -> ()
  | Some (Pattern _) -> Hashtbl.remove t.bound logical
  | Some (Slot i) ->
      t.table.(i).refs <- t.table.(i).refs - 1;
      Hashtbl.remove t.bound logical

type write_outcome =
  | Absorbed  (** dedup or compression: the PCM cells must not be written *)
  | Store  (** no content match: proceed down the normal write path *)

(** [write t logical payload] consults the content store before the
    cell write.  On [Absorbed] the caller must skip the wear/arena
    path entirely; on [Store] it proceeds normally (the payload may
    have been installed as a fresh fingerprint entry for future
    dedup). *)
let write (t : t) (logical : int) (payload : Bytes.t) : write_outcome =
  match pattern_of payload with
  | Some c ->
      release t logical;
      Hashtbl.replace t.bound logical (Pattern c);
      t.compressed <- t.compressed + 1;
      t.meta_writes <- t.meta_writes + 1;
      Absorbed
  | None -> (
      let fp = fingerprint payload in
      let set = fp mod t.sets in
      let base = set * t.ways in
      let hit = ref (-1) in
      for w = 0 to t.ways - 1 do
        let e = t.table.(base + w) in
        if !hit < 0 && e.valid && e.fp = fp && Bytes.equal e.data payload then
          hit := base + w
      done;
      match !hit with
      | i when i >= 0 ->
          (match Hashtbl.find_opt t.bound logical with
          | Some (Slot j) when j = i -> ()  (* rewrite of identical content *)
          | _ ->
              release t logical;
              t.table.(i).refs <- t.table.(i).refs + 1;
              Hashtbl.replace t.bound logical (Slot i));
          t.dedup_hits <- t.dedup_hits + 1;
          t.meta_writes <- t.meta_writes + 1;
          Absorbed
      | _ ->
          release t logical;
          (* install into an unreferenced way so future identical
             writes dedup against this (master) copy *)
          let victim = ref (-1) in
          for w = t.ways - 1 downto 0 do
            let e = t.table.(base + w) in
            if e.refs = 0 then victim := base + w
          done;
          if !victim >= 0 then begin
            let e = t.table.(!victim) in
            if e.valid then t.evictions <- t.evictions + 1;
            e.fp <- fp;
            e.data <- Bytes.copy payload;
            e.refs <- 0;
            e.valid <- true;
            t.installs <- t.installs + 1
          end;
          Store)

(** [read t logical] is the bound content of [logical], if any; [None]
    means the arena holds the line. *)
let read (t : t) (logical : int) ~(line_bytes : int) : Bytes.t option =
  match Hashtbl.find_opt t.bound logical with
  | None -> None
  | Some (Pattern c) -> Some (Bytes.make line_bytes c)
  | Some (Slot i) -> Some (Bytes.copy t.table.(i).data)

(** All current bindings as [(logical, content)], sorted by logical
    line — the write-through list for disabling caram mid-run. *)
let flush (t : t) ~(line_bytes : int) : (int * Bytes.t) list =
  let all =
    Hashtbl.fold
      (fun logical b acc ->
        let data =
          match b with
          | Pattern c -> Bytes.make line_bytes c
          | Slot i -> Bytes.copy t.table.(i).data
        in
        (logical, data) :: acc)
      t.bound []
  in
  Hashtbl.reset t.bound;
  Array.iter
    (fun e ->
      e.refs <- 0;
      e.valid <- false;
      e.data <- Bytes.empty)
    t.table;
  List.sort (fun (a, _) (b, _) -> compare a b) all

let bound_count (t : t) : int = Hashtbl.length t.bound

let stats (t : t) : stats =
  {
    s_dedup_hits = t.dedup_hits;
    s_compressed = t.compressed;
    s_installs = t.installs;
    s_evictions = t.evictions;
    s_meta_writes = t.meta_writes;
    s_bound = Hashtbl.length t.bound;
  }

(** Internal-consistency errors, for the paranoid verifier: recount
    references from the binding map and compare against each entry's
    refcount; every [Slot] binding must name a valid entry. *)
let check (t : t) : string list =
  let errs = ref [] in
  let counted = Array.make (Array.length t.table) 0 in
  Hashtbl.iter
    (fun logical b ->
      match b with
      | Pattern _ -> ()
      | Slot i ->
          if i < 0 || i >= Array.length t.table then
            errs := Printf.sprintf "caram: line %d bound to slot %d out of range" logical i :: !errs
          else begin
            if not t.table.(i).valid then
              errs := Printf.sprintf "caram: line %d bound to invalid slot %d" logical i :: !errs;
            counted.(i) <- counted.(i) + 1
          end)
    t.bound;
  Array.iteri
    (fun i n ->
      if t.table.(i).refs <> n then
        errs :=
          Printf.sprintf "caram: slot %d refcount %d but %d bound lines" i t.table.(i).refs n
          :: !errs)
    counted;
  List.rev !errs

(** Corrupt a refcount (tests only: the verifier must catch it). *)
let unsafe_poke (t : t) : unit =
  if Array.length t.table > 0 then begin
    let e = t.table.(0) in
    e.valid <- true;
    e.refs <- e.refs + 1
  end
