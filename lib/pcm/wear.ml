(** Per-line wear and error-correction exhaustion model.

    PCM cells wear out after ~1e8 writes on average (paper Sec. 2.2),
    with process variation making endurance non-uniform across cells.
    Tracking all 512 cells of a 64 B line is needlessly expensive; we
    model wear at line granularity: each line draws an endurance budget
    from a lognormal distribution (the accepted model for process
    variation), and an ECP-style corrector (Schechter et al., ISCA 2010 —
    cited as [22]) provides [ecp_entries] additional correction events,
    each extending the line's life by a further endurance draw scaled by
    [ecp_extension].  When the budget and all ECP entries are exhausted,
    the next write fails permanently: the line has a hole. *)

type params = {
  mean_endurance : float;  (** mean writes to first uncorrectable cell failure *)
  sigma : float;  (** lognormal shape parameter for process variation *)
  ecp_entries : int;  (** correction entries per line (ECP-6 by default) *)
  ecp_extension : float;  (** life extension fraction granted per ECP entry *)
}

let default_params =
  { mean_endurance = 1.0e8; sigma = 0.25; ecp_entries = 6; ecp_extension = 0.12 }

(** Scaled-down parameters for simulations that must wear memory out
    within a test run. *)
let fast_params = { default_params with mean_endurance = 2000.0 }

type line = {
  mutable writes : int;  (** total writes performed on this line *)
  mutable budget : int;  (** writes remaining before the next cell failure *)
  mutable ecp_used : int;  (** correction entries consumed *)
  mutable failed : bool;
}

(* lognormal with the requested arithmetic mean: mean = exp(mu + sigma^2/2) *)
let draw_endurance (rng : Holes_stdx.Xrng.t) (p : params) : int =
  let mu = log p.mean_endurance -. (p.sigma *. p.sigma /. 2.0) in
  let e = Holes_stdx.Dist.lognormal rng ~mu ~sigma:p.sigma in
  max 1 (int_of_float e)

let fresh_line (rng : Holes_stdx.Xrng.t) (p : params) : line =
  { writes = 0; budget = draw_endurance rng p; ecp_used = 0; failed = false }

type write_outcome =
  | Ok  (** the write stored correctly *)
  | Corrected  (** a cell failed but an ECP entry absorbed it *)
  | Failed  (** correction exhausted: the line has permanently failed *)

(** [write rng p l] performs one write on line [l], advancing the wear
    process.  Writes to an already-failed line report [Failed] without
    further state change (real hardware would never see them: the OS
    unmaps failed lines). *)
let write (rng : Holes_stdx.Xrng.t) (p : params) (l : line) : write_outcome =
  if l.failed then Failed
  else begin
    l.writes <- l.writes + 1;
    l.budget <- l.budget - 1;
    if l.budget > 0 then Ok
    else if l.ecp_used < p.ecp_entries then begin
      l.ecp_used <- l.ecp_used + 1;
      l.budget <- max 1 (int_of_float (float_of_int (draw_endurance rng p) *. p.ecp_extension));
      Corrected
    end
    else begin
      l.failed <- true;
      Failed
    end
  end

(** Fraction of the line's correction resources consumed, in [0, 1]. *)
let ecp_utilization (p : params) (l : line) : float =
  if p.ecp_entries = 0 then if l.failed then 1.0 else 0.0
  else float_of_int l.ecp_used /. float_of_int p.ecp_entries

(** {2 Endurance variation shapes}

    The paper models process variation as lognormal endurance; SoftWear-style
    weak-cell studies use a (truncated) Gaussian instead.  Both are exposed
    here parameterized by the coefficient of variation (CoV = sigma/mean) so
    failure models can be specified in distribution-independent terms. *)

type shape =
  | Lognormal  (** the paper's model: multiplicative process variation *)
  | Gaussian  (** additive weak-cell variation, truncated at (almost) zero *)

(** Lognormal shape parameter whose distribution has the given CoV:
    CoV² = exp(sigma²) − 1, so sigma = sqrt(log(1 + CoV²)). *)
let lognormal_sigma ~(cov : float) : float =
  if cov < 0.0 then invalid_arg "Wear.lognormal_sigma: negative CoV";
  sqrt (log (1.0 +. (cov *. cov)))

(** [draw_factor rng ~shape ~cov] draws a mean-1 endurance scale factor
    with coefficient of variation [cov].  Lognormal uses
    mu = −sigma²/2 so the arithmetic mean is exactly 1; Gaussian draws
    N(1, cov) truncated just above zero (a cell cannot have negative
    endurance — the truncation is negligible for CoV ≲ 0.3). *)
let draw_factor (rng : Holes_stdx.Xrng.t) ~(shape : shape) ~(cov : float) : float =
  match shape with
  | Lognormal ->
      let sigma = lognormal_sigma ~cov in
      Holes_stdx.Dist.lognormal rng ~mu:(-.(sigma *. sigma) /. 2.0) ~sigma
  | Gaussian -> Float.max 1e-6 (Holes_stdx.Dist.normal rng ~mu:1.0 ~sigma:cov)

(** Wear parameters whose lognormal endurance draw has the given CoV
    (keeps [base]'s mean and ECP settings). *)
let params_of_cov ?(base = default_params) ~(cov : float) () : params =
  { base with sigma = lognormal_sigma ~cov }
