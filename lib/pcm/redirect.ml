(** Hardware failure clustering via per-region redirection maps
    (paper Sec. 3.1.2, Fig. 1).

    A region is one or more pages.  When its first line fails, the
    hardware installs a redirection map (one entry per line, log2(n) bits
    each, plus a boundary pointer) in fixed metadata lines at the cluster
    end.  On every subsequent failure it swaps the failed line's logical
    offset with the offset at the boundary and advances the boundary, so
    the logical addresses of failed lines form a contiguous cluster at one
    end of the region.  Even-indexed regions cluster at the top (offset 0
    upward), odd-indexed regions at the bottom, maximizing contiguous
    usable space across adjacent regions (Fig. 1(e)); multi-page regions
    concentrate all failures into one page, leaving the other logically
    perfect while fewer than half the lines have failed (Fig. 1(f)). *)

type direction = Top | Bottom

type t = {
  nlines : int;
  direction : direction;
  meta_lines : int;  (** metadata lines sacrificed when the map is installed *)
  mutable installed : bool;
  map : int array;  (** logical offset -> physical line; a permutation *)
  inverse : int array;  (** physical line -> logical offset *)
  phys_dead : bool array;  (** physical lines failed or holding metadata *)
  mutable failed_count : int;  (** physical data lines failed (excl. metadata) *)
  mutable redirections : int;  (** swaps performed, for statistics *)
}

let create ?(region_pages = Geometry.default_region_pages) ~(region_index : int) () : t =
  let nlines = Geometry.lines_per_region ~region_pages in
  {
    nlines;
    direction = (if region_index mod 2 = 0 then Top else Bottom);
    meta_lines = Geometry.redirection_meta_lines ~region_pages;
    installed = false;
    map = Array.init nlines Fun.id;
    inverse = Array.init nlines Fun.id;
    phys_dead = Array.make nlines false;
    failed_count = 0;
    redirections = 0;
  }

let nlines (t : t) : int = t.nlines

let is_installed (t : t) : bool = t.installed

let failed_count (t : t) : int = t.failed_count

(** Logical lines unusable by software: failures plus (once installed)
    the metadata lines. *)
let unusable_count (t : t) : int =
  t.failed_count + if t.installed then t.meta_lines else 0

(** Translate a logical line offset to the physical line it addresses.
    In the no-failure common case this is the identity and costs a single
    memory access; with a map installed, real hardware needs up to three
    accesses, mitigated by caching recent maps (Sec. 3.1.2). *)
let translate (t : t) (logical : int) : int =
  if logical < 0 || logical >= t.nlines then invalid_arg "Redirect.translate: offset out of range";
  t.map.(logical)

(** Logical offset currently mapped to physical line [physical] — the
    exact inverse of {!translate}, maintained incrementally. *)
let inverse (t : t) (physical : int) : int =
  if physical < 0 || physical >= t.nlines then invalid_arg "Redirect.inverse: line out of range";
  t.inverse.(physical)

let swap_logical (t : t) (a : int) (b : int) : unit =
  if a <> b then begin
    let pa = t.map.(a) and pb = t.map.(b) in
    t.map.(a) <- pb;
    t.map.(b) <- pa;
    t.inverse.(pa) <- b;
    t.inverse.(pb) <- a;
    t.redirections <- t.redirections + 1
  end

(* Logical slot that the next failure should occupy: just past the current
   cluster (failures + metadata) at the chosen end. *)
let next_cluster_slot (t : t) : int =
  let k = unusable_count t in
  match t.direction with Top -> k | Bottom -> t.nlines - 1 - k

(** [record_failure t ~physical] tells the clustering hardware that
    physical line [physical] has permanently failed.  Installs the
    redirection map on the first failure.  Returns the logical offsets
    that became unusable as a result — the metadata lines (first failure
    only) followed by the clustered slot of the failure itself; the OS
    publishes exactly these offsets in its failure map.  Reporting an
    already-dead physical line is a no-op returning []. *)
let record_failure (t : t) ~(physical : int) : int list =
  if physical < 0 || physical >= t.nlines then
    invalid_arg "Redirect.record_failure: line out of range";
  if t.phys_dead.(physical) then []
  else begin
    let newly_unusable = ref [] in
    if not t.installed then begin
      (* The paper: "the memory module first places a fake failure at the
         location in which it intends to install the redirection map".
         The metadata occupies physically fixed lines at the cluster end;
         at install time the map is still the identity, so the logical
         slots coincide with the physical lines.  Failures within the map
         itself are absorbed by ECC and never reported. *)
      t.installed <- true;
      for i = 0 to t.meta_lines - 1 do
        let slot = match t.direction with Top -> i | Bottom -> t.nlines - 1 - i in
        t.phys_dead.(t.map.(slot)) <- true;
        newly_unusable := slot :: !newly_unusable
      done
    end;
    if not t.phys_dead.(physical) then begin
      let logical = t.inverse.(physical) in
      let slot = next_cluster_slot t in
      if slot >= 0 && slot < t.nlines then begin
        swap_logical t logical slot;
        t.phys_dead.(physical) <- true;
        t.failed_count <- t.failed_count + 1;
        newly_unusable := slot :: !newly_unusable
      end
      else begin
        (* region exhausted: every line already unusable *)
        t.phys_dead.(physical) <- true;
        t.failed_count <- t.failed_count + 1;
        newly_unusable := logical :: !newly_unusable
      end
    end;
    List.rev !newly_unusable
  end

(** The set of unusable logical offsets (metadata + clustered failures),
    ascending.  With clustering working correctly this is always a
    contiguous prefix (Top) or suffix (Bottom) of the region. *)
let unusable_logical (t : t) : int list =
  let k = unusable_count t in
  match t.direction with
  | Top -> List.init k Fun.id
  | Bottom -> List.init k (fun i -> t.nlines - k + i)

(** Check the permutation invariant (exposed for property tests). *)
let is_permutation (t : t) : bool =
  let seen = Array.make t.nlines false in
  let ok = ref true in
  Array.iter
    (fun p -> if p < 0 || p >= t.nlines || seen.(p) then ok := false else seen.(p) <- true)
    t.map;
  !ok
  && Array.for_all (fun l -> l >= 0 && l < t.nlines) t.inverse
  && Array.for_all Fun.id (Array.init t.nlines (fun l -> t.inverse.(t.map.(l)) = l))

let redirections (t : t) : int = t.redirections
