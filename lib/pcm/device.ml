(** A whole PCM module: an array of pages of wearable lines, the write
    path with failure detection, the failure buffer, and (optionally) the
    failure-clustering engine (paper Sec. 3.1).

    Reads and writes address *logical* line indices; the device applies
    the per-region redirection maps internally, exactly as the memory
    module would below the physical address the cache hierarchy issues.
    Data payloads are stored per line so the failure-buffer forwarding
    and OS copy-out paths are real, not mocked. *)

open Holes_stdx
module Trace = Holes_obs.Trace

type config = {
  pages : int;
  wear : Wear.params;
  clustering : int option;  (** region size in pages; [None] disables clustering *)
  buffer_capacity : int;
}

let default_config =
  {
    pages = 64;
    wear = Wear.fast_params;
    clustering = Some Geometry.default_region_pages;
    buffer_capacity = 32;
  }

(* lines per arena chunk: 1024 × 64 B = 64 KB, so a device that only
   ever touches a few pages commits a few chunks, not the whole module *)
let chunk_lines = 1024

type t = {
  config : config;
  nlines : int;
  rng : Xrng.t;
  lines : Wear.line array;  (** indexed by physical line *)
  arena : Bytes.t option array;
      (** payload store: a flat arena of 64 KB chunks indexed by
          [physical / chunk_lines], committed lazily on first write.  A
          read of a never-written line sees zeros, exactly as the old
          per-line hash table reported for an absent key — but reads and
          writes are now an index computation and a blit, with no
          hashing on the device hot path. *)
  buffer : Failure_buffer.t;
  regions : Redirect.t array;  (** empty when clustering is off *)
  region_lines : int;  (** lines per region (or whole device when off) *)
  mutable failed_unclustered : Bitset.t;  (** logical failures when clustering is off *)
  mutable on_line_failed : addr:int -> unusable:int list -> unit;
      (** OS callback: the logical address whose write failed, and the
          logical line indices newly unusable (with clustering these
          differ: the failed physical line is redirected to the cluster
          end, so the *boundary* slot becomes unusable while [addr]
          is re-backed by a working line) *)
  mutable reads : int;
  mutable writes : int;
  mutable failures : int;
  tracer : Trace.view;  (** pcm-lane events: wear-outs, buffer traffic *)
}

let create ?(config = default_config) ?(tracer = Trace.null) ~(seed : int) () : t =
  let nlines = config.pages * Geometry.lines_per_page in
  let rng = Xrng.of_seed seed in
  let lines = Array.init nlines (fun _ -> Wear.fresh_line rng config.wear) in
  let regions, region_lines =
    match config.clustering with
    | None -> ([||], nlines)
    | Some region_pages ->
        if config.pages mod region_pages <> 0 then
          invalid_arg "Device.create: pages must be a multiple of the region size";
        let rl = Geometry.lines_per_region ~region_pages in
        ( Array.init (config.pages / region_pages) (fun i ->
              Redirect.create ~region_pages ~region_index:i ()),
          rl )
  in
  {
    config;
    nlines;
    rng;
    lines;
    arena = Array.make ((nlines + chunk_lines - 1) / chunk_lines) None;
    buffer = Failure_buffer.create ~capacity:config.buffer_capacity ();
    regions;
    region_lines;
    failed_unclustered = Bitset.create nlines;
    on_line_failed = (fun ~addr:_ ~unusable:_ -> ());
    reads = 0;
    writes = 0;
    failures = 0;
    tracer;
  }

let nlines (t : t) : int = t.nlines

let npages (t : t) : int = t.config.pages

let buffer (t : t) : Failure_buffer.t = t.buffer

(** Failures currently awaiting an OS drain. *)
let buffer_occupancy (t : t) : int = Failure_buffer.occupancy t.buffer

(** Pre-install manufacturing-time failures from a bitmap over *physical*
    lines — the boot-time state an OS scan would find.  With clustering
    enabled each failure goes through the region redirection maps, so the
    logically unusable lines land at cluster ends exactly as if the wear
    process had produced them.  No data is buffered and no interrupt
    fires: these lines failed before the machine booted. *)
let preinstall_failures (t : t) (map : Bitset.t) : unit =
  if Bitset.length map > t.nlines then
    invalid_arg "Device.preinstall_failures: map larger than the device";
  Bitset.iter_set map (fun physical ->
      t.lines.(physical).Wear.failed <- true;
      if Array.length t.regions = 0 then Bitset.set t.failed_unclustered physical
      else begin
        let r = physical / t.region_lines in
        ignore (Redirect.record_failure t.regions.(r) ~physical:(physical - (r * t.region_lines)))
      end)

(** Register the OS notification callback, called after a write failure
    with the failing logical address and the logical lines that became
    unusable (the clustered slot plus, on a region's first failure, the
    redirection-map metadata). *)
let on_line_failed (t : t) (f : addr:int -> unusable:int list -> unit) : unit =
  t.on_line_failed <- f

let check_line t l =
  if l < 0 || l >= t.nlines then invalid_arg "Device: line index out of range"

(* logical -> physical through the region redirection map *)
let physical_of_logical (t : t) (logical : int) : int =
  if Array.length t.regions = 0 then logical
  else
    let r = logical / t.region_lines in
    let off = logical mod t.region_lines in
    (r * t.region_lines) + Redirect.translate t.regions.(r) off

(** Is the logical line currently usable (not failed, not metadata)? *)
let line_usable (t : t) (logical : int) : bool =
  check_line t logical;
  if Array.length t.regions = 0 then not (Bitset.get t.failed_unclustered logical)
  else
    let r = logical / t.region_lines in
    let off = logical mod t.region_lines in
    not (List.mem off (Redirect.unusable_logical t.regions.(r)))

(** Read the 64 B payload of logical line [l].  The failure buffer is
    checked in parallel and forwards the latest value for a line whose
    failure the OS has not yet drained. *)
let read (t : t) (logical : int) : Bytes.t =
  check_line t logical;
  t.reads <- t.reads + 1;
  let physical = physical_of_logical t logical in
  match Failure_buffer.forward t.buffer ~addr:logical with
  | Some data -> Bytes.copy data
  | None -> (
      match t.arena.(physical / chunk_lines) with
      | Some chunk ->
          Bytes.sub chunk (physical mod chunk_lines * Geometry.line_bytes) Geometry.line_bytes
      | None -> Bytes.make Geometry.line_bytes '\000')

type write_result =
  | Stored  (** write succeeded (possibly via an ECP correction) *)
  | Write_failed  (** line permanently failed; data preserved in the buffer *)
  | Stalled  (** device is refusing writes until the OS drains the buffer *)

(** Write a 64 B payload to logical line [l], advancing the wear model.
    On a permanent failure the data goes to the failure buffer, the OS
    callback fires with the newly unusable logical lines, and the result
    is [Write_failed]. *)
let write (t : t) (logical : int) (payload : Bytes.t) : write_result =
  check_line t logical;
  if Bytes.length payload <> Geometry.line_bytes then
    invalid_arg "Device.write: payload must be exactly one line";
  if Failure_buffer.is_stalled t.buffer then Stalled
  else begin
    t.writes <- t.writes + 1;
    let physical = physical_of_logical t logical in
    match Wear.write t.rng t.config.wear t.lines.(physical) with
    | Wear.Ok | Wear.Corrected ->
        let chunk =
          match t.arena.(physical / chunk_lines) with
          | Some c -> c
          | None ->
              let c = Bytes.make (chunk_lines * Geometry.line_bytes) '\000' in
              t.arena.(physical / chunk_lines) <- Some c;
              c
        in
        Bytes.blit payload 0 chunk (physical mod chunk_lines * Geometry.line_bytes)
          Geometry.line_bytes;
        Stored
    | Wear.Failed ->
        t.failures <- t.failures + 1;
        if Trace.armed t.tracer then
          Trace.instant t.tracer ~tid:Trace.tid_pcm "wear_out"
            ~args:[ ("line", float_of_int logical) ];
        let inserted = Failure_buffer.insert t.buffer ~addr:logical ~data:payload in
        if not inserted then failwith "Device.write: failure buffer overflow (model error)";
        if Trace.armed t.tracer then begin
          Trace.counter t.tracer ~tid:Trace.tid_pcm "fbuf"
            [ ("occupancy", float_of_int (Failure_buffer.occupancy t.buffer)) ];
          if Failure_buffer.is_stalled t.buffer then
            Trace.instant t.tracer ~tid:Trace.tid_pcm "fbuf_stall"
        end;
        let newly_unusable =
          if Array.length t.regions = 0 then begin
            Bitset.set t.failed_unclustered logical;
            [ logical ]
          end
          else begin
            let r = logical / t.region_lines in
            let base = r * t.region_lines in
            Redirect.record_failure t.regions.(r) ~physical:(physical - base)
            |> List.map (fun off -> base + off)
          end
        in
        t.on_line_failed ~addr:logical ~unusable:newly_unusable;
        Write_failed
  end

(** OS drain path: acknowledge (and drop) the buffered failure for the
    failing logical address, after the OS has relocated (or restored)
    the data.  Returns the preserved payload. *)
let drain_failure (t : t) (logical : int) : Bytes.t option =
  check_line t logical;
  match Failure_buffer.forward t.buffer ~addr:logical with
  | None -> None
  | Some data ->
      ignore (Failure_buffer.clear t.buffer ~addr:logical);
      if Trace.armed t.tracer then begin
        Trace.instant t.tracer ~tid:Trace.tid_pcm "fbuf_drain"
          ~args:[ ("line", float_of_int logical) ];
        Trace.counter t.tracer ~tid:Trace.tid_pcm "fbuf"
          [ ("occupancy", float_of_int (Failure_buffer.occupancy t.buffer)) ]
      end;
      Some data

(** Logical indices of all currently unusable lines. *)
let unusable_lines (t : t) : int list =
  if Array.length t.regions = 0 then begin
    let acc = ref [] in
    Bitset.iter_set t.failed_unclustered (fun i -> acc := i :: !acc);
    List.rev !acc
  end
  else
    Array.to_list t.regions
    |> List.mapi (fun r reg ->
           Redirect.unusable_logical reg |> List.map (fun off -> (r * t.region_lines) + off))
    |> List.concat

type stats = { reads : int; writes : int; failures : int; buffer : Failure_buffer.stats }

let stats (t : t) : stats =
  { reads = t.reads; writes = t.writes; failures = t.failures; buffer = Failure_buffer.stats t.buffer }
