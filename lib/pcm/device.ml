(** A whole PCM module: an array of pages of wearable lines, the write
    path with failure detection, the failure buffer, and the composable
    address-translation pipeline (paper Sec. 3.1; DESIGN.md §11).

    Reads and writes address *logical* line indices; the device folds
    them through an ordered list of {!Translate.stage}s — the optional
    wear-leveling permutation ({!Wear_level}) on the logical side, then
    the per-region failure-clustering redirection maps ({!Redirect}) on
    the physical side — exactly as the memory controller and module
    would below the physical address the cache hierarchy issues.  When a
    line wears out, the failure walks the same pipeline in reverse: each
    stage maps the unusable output-domain line back to the input-domain
    lines the OS must publish.  Data payloads are stored per line so the
    failure-buffer forwarding and OS copy-out paths are real, not
    mocked. *)

open Holes_stdx
module Trace = Holes_obs.Trace

type config = {
  pages : int;
  wear : Wear.params;
  clustering : int option;  (** region size in pages; [None] disables clustering *)
  buffer_capacity : int;
  wear_level : Wear_level.policy option;
      (** leveling stage installed at boot; [None] leaves the pipeline
          identity-above-redirect, byte-identical to the unleveled path *)
  caram : int option;
      (** CARAM content-store associativity installed at boot; [None]
          leaves the write path byte-identical to the content-blind
          device (DESIGN.md §16) *)
}

let default_config =
  {
    pages = 64;
    wear = Wear.fast_params;
    clustering = Some Geometry.default_region_pages;
    buffer_capacity = 32;
    wear_level = None;
    caram = None;
  }

(* lines per arena chunk: 1024 × 64 B = 64 KB, so a device that only
   ever touches a few pages commits a few chunks, not the whole module *)
let chunk_lines = 1024

type t = {
  config : config;
  nlines : int;
  seed : int;
  rng : Xrng.t;
  lines : Wear.line array;  (** indexed by physical line *)
  arena : Bytes.t option array;
      (** payload store: a flat arena of 64 KB chunks indexed by
          [physical / chunk_lines], committed lazily on first write *)
  buffer : Failure_buffer.t;
  regions : Redirect.t array;  (** empty when clustering is off *)
  region_lines : int;  (** lines per region (or whole device when off) *)
  mutable stages : Translate.stage array;
      (** the translation pipeline, logical side first; empty when both
          clustering and leveling are off (identity translation) *)
  mutable wear_stage : Wear_level.t option;  (** the leveling stage, once installed *)
  mutable write_path : int -> int;
      (** memoized partial evaluation of the write-path pipeline walk
          (hooks then translation, stage by stage); rebuilt whenever
          [stages] changes so the per-write cost of an identity or
          redirect-only pipeline matches the pre-pipeline direct path *)
  unusable : Bitset.t;
      (** logical lines currently unusable (failures, clustering
          metadata, leveling-reserved lines) — maintained incrementally
          by the pipeline so [line_usable] is O(1) on the write path *)
  mutable on_line_failed : addr:int -> unusable:int list -> unit;
      (** OS callback: the logical address whose write failed, and the
          logical line indices newly unusable (with clustering these
          differ: the failed physical line is redirected to the cluster
          end, so the *boundary* slot becomes unusable while [addr]
          is re-backed by a working line) *)
  mutable reads : int;
  mutable writes : int;
  mutable failures : int;
  mutable caram : Caram.t option;
      (** content-aware store consulted before the cell write; not a
          {!Translate} stage because dedup is many-to-one, while the
          pipeline stages must stay bijections *)
  tracer : Trace.view;  (** pcm-lane events: wear-outs, buffer traffic, remaps *)
}

let nlines (t : t) : int = t.nlines

let npages (t : t) : int = t.config.pages

let buffer (t : t) : Failure_buffer.t = t.buffer

(** Failures currently awaiting an OS drain. *)
let buffer_occupancy (t : t) : int = Failure_buffer.occupancy t.buffer

let check_line t l =
  if l < 0 || l >= t.nlines then invalid_arg "Device: line index out of range"

(* logical -> physical through the whole pipeline *)
let physical_of_logical (t : t) (logical : int) : int = Translate.translate t.stages logical

(* like [physical_of_logical], but fires each stage's write hook first:
   a triggered remap relocates the old payload before we translate, so
   the incoming write lands at the post-move location.  [compose_write_path]
   partially evaluates this walk for the common pipeline shapes so the
   hot write path pays no per-stage dispatch when no stage wants hooks. *)
let compose_write_path (stages : Translate.stage array) : int -> int =
  match stages with
  | [||] -> Fun.id
  | [| s |] when s.Translate.on_write == Translate.nop_write -> s.Translate.translate
  | _ ->
      let n = Array.length stages in
      fun logical ->
        let rec go i l =
          if i >= n then l
          else begin
            let s = Array.unsafe_get stages i in
            s.Translate.on_write l;
            go (i + 1) (s.Translate.translate l)
          end
        in
        go 0 logical

let translate_for_write (t : t) (logical : int) : int = t.write_path logical

(* translation below the wear-leveling stage (used by its data movers):
   slot domain -> physical, i.e. just the redirect maps *)
let downstream (t : t) (m : int) : int =
  if Array.length t.regions = 0 then m
  else
    let r = m / t.region_lines in
    (r * t.region_lines) + Redirect.translate t.regions.(r) (m mod t.region_lines)

(* a physical line became unusable: walk the pipeline in reverse, giving
   each stage a chance to absorb it (clustering swap, leveling freeze),
   and collect the logical lines the OS must now publish *)
let chain_failure (t : t) (physical : int) : int list =
  let rec go i lines =
    if i < 0 then lines
    else
      go (i - 1)
        (List.concat_map (fun q -> t.stages.(i).Translate.on_failure ~physical:q) lines)
  in
  go (Array.length t.stages - 1) [ physical ]

(* ---- arena payload helpers ------------------------------------------- *)

let chunk_for (t : t) (physical : int) : Bytes.t =
  match t.arena.(physical / chunk_lines) with
  | Some c -> c
  | None ->
      let c = Bytes.make (chunk_lines * Geometry.line_bytes) '\000' in
      t.arena.(physical / chunk_lines) <- Some c;
      c

let line_copy_out (t : t) (physical : int) (buf : Bytes.t) : unit =
  match t.arena.(physical / chunk_lines) with
  | Some c ->
      Bytes.blit c (physical mod chunk_lines * Geometry.line_bytes) buf 0 Geometry.line_bytes
  | None -> Bytes.fill buf 0 Geometry.line_bytes '\000'

let line_copy_in (t : t) (physical : int) (buf : Bytes.t) : unit =
  Bytes.blit buf 0 (chunk_for t physical)
    (physical mod chunk_lines * Geometry.line_bytes)
    Geometry.line_bytes

(* ---- wear-leveling stage install / toggle ---------------------------- *)

(* reserve logical line [r] for the leveler (start-gap's gap owner):
   published to the OS exactly like a failed line *)
let reserve_line (t : t) (r : int) : unit =
  Bitset.set t.unusable r;
  if Trace.armed t.tracer then
    Trace.instant t.tracer ~tid:Trace.tid_pcm "wl_reserve" ~args:[ ("line", float_of_int r) ]

(* Install a leveling core as the first pipeline stage.  Pre-existing
   unusable lines are frozen into it (the fresh map is the identity, so
   logical = slot for each).  Returns the lines the stage reserved for
   itself; at boot the caller just publishes them, mid-run it must also
   evacuate them through the failure up-call. *)
let install_wear_stage (t : t) (policy : Wear_level.policy) : int list =
  let w = Wear_level.create ~policy ~nlines:t.nlines ~seed:(t.seed lxor 0x5747a6) () in
  Bitset.iter_set t.unusable (fun l -> Wear_level.freeze_pair w l);
  let scratch_a = Bytes.create Geometry.line_bytes in
  let scratch_b = Bytes.create Geometry.line_bytes in
  Wear_level.set_io w
    {
      Wear_level.copy =
        (fun ~src ~dst ->
          (* one start-gap step: data moves src -> dst (the gap), wearing
             the destination; the outcome is not checked — a worn-out
             destination surfaces on the next data write to it *)
          let ps = downstream t src and pd = downstream t dst in
          line_copy_out t ps scratch_a;
          line_copy_in t pd scratch_a;
          ignore (Wear.write t.rng t.config.wear t.lines.(pd));
          if Trace.armed t.tracer then
            Trace.instant t.tracer ~tid:Trace.tid_pcm "wl_gap_move"
              ~args:[ ("src", float_of_int ps); ("dst", float_of_int pd) ]);
      Wear_level.swap =
        (fun ~a ~b ->
          let pa = downstream t a and pb = downstream t b in
          line_copy_out t pa scratch_a;
          line_copy_out t pb scratch_b;
          line_copy_in t pa scratch_b;
          line_copy_in t pb scratch_a;
          ignore (Wear.write t.rng t.config.wear t.lines.(pa));
          ignore (Wear.write t.rng t.config.wear t.lines.(pb));
          if Trace.armed t.tracer then
            Trace.instant t.tracer ~tid:Trace.tid_pcm "wl_remap"
              ~args:[ ("a", float_of_int pa); ("b", float_of_int pb) ]);
    };
  t.wear_stage <- Some w;
  t.stages <- Array.append [| Translate.wear_stage w |] t.stages;
  t.write_path <- compose_write_path t.stages;
  match Wear_level.ensure_gap w with
  | None -> []
  | Some r ->
      reserve_line t r;
      [ r ]

let create ?(config = default_config) ?(tracer = Trace.null) ~(seed : int) () : t =
  let nlines = config.pages * Geometry.lines_per_page in
  let rng = Xrng.of_seed seed in
  let lines = Array.init nlines (fun _ -> Wear.fresh_line rng config.wear) in
  let regions, region_lines =
    match config.clustering with
    | None -> ([||], nlines)
    | Some region_pages ->
        if config.pages mod region_pages <> 0 then
          invalid_arg "Device.create: pages must be a multiple of the region size";
        let rl = Geometry.lines_per_region ~region_pages in
        ( Array.init (config.pages / region_pages) (fun i ->
              Redirect.create ~region_pages ~region_index:i ()),
          rl )
  in
  let t =
    {
      config;
      nlines;
      seed;
      rng;
      lines;
      arena = Array.make ((nlines + chunk_lines - 1) / chunk_lines) None;
      buffer = Failure_buffer.create ~capacity:config.buffer_capacity ();
      regions;
      region_lines;
      stages =
        (if Array.length regions = 0 then [||]
         else [| Translate.redirect_stage regions ~region_lines |]);
      wear_stage = None;
      write_path = Fun.id;
      unusable = Bitset.create nlines;
      on_line_failed = (fun ~addr:_ ~unusable:_ -> ());
      reads = 0;
      writes = 0;
      failures = 0;
      caram =
        (match config.caram with
        | None -> None
        | Some ways -> Some (Caram.create ~ways ~nlines ()));
      tracer;
    }
  in
  t.write_path <- compose_write_path t.stages;
  (match config.wear_level with
  | None -> ()
  | Some policy -> ignore (install_wear_stage t policy));
  t

(** Pre-install manufacturing-time failures from a bitmap over *physical*
    lines — the boot-time state an OS scan would find.  Each failure
    walks the pipeline in reverse (clustering swaps, leveling freezes),
    so the logically unusable lines land exactly as if the wear process
    had produced them.  No data is buffered and no interrupt fires:
    these lines failed before the machine booted. *)
let preinstall_failures (t : t) (map : Bitset.t) : unit =
  if Bitset.length map > t.nlines then
    invalid_arg "Device.preinstall_failures: map larger than the device";
  Bitset.iter_set map (fun physical ->
      t.lines.(physical).Wear.failed <- true;
      List.iter (fun l -> Bitset.set t.unusable l) (chain_failure t physical));
  (* a boot failure can swallow start-gap's freshly reserved gap — in
     particular the clustering metadata freeze lands on region-start
     slots, and mid-device is a region start.  Re-reserve before the OS
     boot scan: nothing is written yet, so no evacuation is needed. *)
  match t.wear_stage with
  | None -> ()
  | Some w -> (
      match Wear_level.ensure_gap w with None -> () | Some r -> reserve_line t r)

(** Register the OS notification callback, called after a write failure
    with the failing logical address and the logical lines that became
    unusable (the clustered slot plus, on a region's first failure, the
    redirection-map metadata). *)
let on_line_failed (t : t) (f : addr:int -> unusable:int list -> unit) : unit =
  t.on_line_failed <- f

(** Is the logical line currently usable (not failed, not metadata, not
    reserved by the leveler)?  O(1): the pipeline maintains the set
    incrementally. *)
let line_usable (t : t) (logical : int) : bool =
  check_line t logical;
  not (Bitset.get t.unusable logical)

(** Read the 64 B payload of logical line [l].  The failure buffer is
    checked in parallel and forwards the latest value for a line whose
    failure the OS has not yet drained. *)
let read (t : t) (logical : int) : Bytes.t =
  check_line t logical;
  t.reads <- t.reads + 1;
  (* a caram binding is always the line's latest write (an absorbed
     write never reaches the cells or the failure buffer), so it wins
     over both *)
  match
    match t.caram with
    | None -> None
    | Some c -> Caram.read c logical ~line_bytes:Geometry.line_bytes
  with
  | Some data -> data
  | None -> (
      let physical = physical_of_logical t logical in
      match Failure_buffer.forward t.buffer ~addr:logical with
      | Some data -> Bytes.copy data
      | None -> (
          match t.arena.(physical / chunk_lines) with
          | Some chunk ->
              Bytes.sub chunk (physical mod chunk_lines * Geometry.line_bytes) Geometry.line_bytes
          | None -> Bytes.make Geometry.line_bytes '\000'))

type write_result =
  | Stored  (** write succeeded (possibly via an ECP correction) *)
  | Write_failed  (** line permanently failed; data preserved in the buffer *)
  | Stalled  (** device is refusing writes until the OS drains the buffer *)

(** Write a 64 B payload to logical line [l], advancing the wear model.
    On a permanent failure the data goes to the failure buffer, the OS
    callback fires with the newly unusable logical lines, and the result
    is [Write_failed]. *)
let write (t : t) (logical : int) (payload : Bytes.t) : write_result =
  check_line t logical;
  if Bytes.length payload <> Geometry.line_bytes then
    invalid_arg "Device.write: payload must be exactly one line";
  if Failure_buffer.is_stalled t.buffer then Stalled
  else begin
    t.writes <- t.writes + 1;
    match t.caram with
    | Some c when Caram.write c logical payload = Caram.Absorbed ->
        (* content dedup/compression: the cells never see this write *)
        Stored
    | _ ->
    let physical = translate_for_write t logical in
    match Wear.write t.rng t.config.wear t.lines.(physical) with
    | Wear.Ok | Wear.Corrected ->
        line_copy_in t physical payload;
        Stored
    | Wear.Failed ->
        t.failures <- t.failures + 1;
        if Trace.armed t.tracer then
          Trace.instant t.tracer ~tid:Trace.tid_pcm "wear_out"
            ~args:[ ("line", float_of_int logical) ];
        let inserted = Failure_buffer.insert t.buffer ~addr:logical ~data:payload in
        if not inserted then failwith "Device.write: failure buffer overflow (model error)";
        if Trace.armed t.tracer then begin
          Trace.counter t.tracer ~tid:Trace.tid_pcm "fbuf"
            [ ("occupancy", float_of_int (Failure_buffer.occupancy t.buffer)) ];
          if Failure_buffer.is_stalled t.buffer then
            Trace.instant t.tracer ~tid:Trace.tid_pcm "fbuf_stall"
        end;
        let newly_unusable = chain_failure t physical in
        List.iter (fun l -> Bitset.set t.unusable l) newly_unusable;
        (* if the failure swallowed start-gap's gap, re-reserve one so
           leveling keeps running; the new reservation rides the same
           OS notification as the failure itself *)
        let newly_unusable =
          match t.wear_stage with
          | None -> newly_unusable
          | Some w -> (
              match Wear_level.ensure_gap w with
              | None -> newly_unusable
              | Some r ->
                  reserve_line t r;
                  newly_unusable @ [ r ])
        in
        t.on_line_failed ~addr:logical ~unusable:newly_unusable;
        Write_failed
  end

(** Switch the wear-leveling stage mid-run.  [None] pauses the mover
    (the live permutation and every published failure stay put — tearing
    the map down would scramble both data and the OS failure view).
    Enabling a policy installs the stage on first use; a start-gap
    enable that needs a fresh gap reserves a line and retires it through
    the normal failure up-call, so the OS and runtime evacuate it like
    any other dying line. *)
let set_wear_level (t : t) (p : Wear_level.policy option) : unit =
  match t.wear_stage with
  | Some w ->
      Wear_level.set_policy w p;
      (match Wear_level.ensure_gap w with
      | None -> ()
      | Some r ->
          reserve_line t r;
          t.on_line_failed ~addr:r ~unusable:[ r ])
  | None -> (
      match p with
      | None -> ()
      | Some policy ->
          install_wear_stage t policy
          |> List.iter (fun r -> t.on_line_failed ~addr:r ~unusable:[ r ]))

(** The currently configured wear-leveling policy ([None] = identity or
    paused). *)
let wear_level (t : t) : Wear_level.policy option =
  match t.wear_stage with None -> None | Some w -> Wear_level.policy w

(** The leveling core, for property tests. *)
let wear_stage (t : t) : Wear_level.t option = t.wear_stage

(** Switch the CARAM content store mid-run.  Disabling (or changing the
    associativity of) a live store first writes every bound line's
    content through the normal cell path — the store was authoritative
    for those lines, and tearing it down must not lose data.  The
    write-through wears cells and can surface failures, which ride the
    ordinary failure up-call. *)
let set_caram (t : t) (ways : int option) : unit =
  let flush c =
    t.caram <- None;
    List.iter
      (fun (logical, data) ->
        if not (Bitset.get t.unusable logical) then ignore (write t logical data))
      (Caram.flush c ~line_bytes:Geometry.line_bytes)
  in
  match (t.caram, ways) with
  | None, None -> ()
  | None, Some w -> t.caram <- Some (Caram.create ~ways:w ~nlines:t.nlines ())
  | Some c, None -> flush c
  | Some c, Some w ->
      if Caram.(c.ways) <> w then begin
        flush c;
        t.caram <- Some (Caram.create ~ways:w ~nlines:t.nlines ())
      end

(** The content store, for property tests and the verifier. *)
let caram (t : t) : Caram.t option = t.caram

(** CARAM internal-consistency errors (empty when off or consistent);
    touches no counted path. *)
let caram_check (t : t) : string list =
  match t.caram with None -> [] | Some c -> Caram.check c

(** OS drain path: acknowledge (and drop) the buffered failure for the
    failing logical address, after the OS has relocated (or restored)
    the data.  Returns the preserved payload. *)
let drain_failure (t : t) (logical : int) : Bytes.t option =
  check_line t logical;
  match Failure_buffer.forward t.buffer ~addr:logical with
  | None -> None
  | Some data ->
      ignore (Failure_buffer.clear t.buffer ~addr:logical);
      if Trace.armed t.tracer then begin
        Trace.instant t.tracer ~tid:Trace.tid_pcm "fbuf_drain"
          ~args:[ ("line", float_of_int logical) ];
        Trace.counter t.tracer ~tid:Trace.tid_pcm "fbuf"
          [ ("occupancy", float_of_int (Failure_buffer.occupancy t.buffer)) ]
      end;
      Some data

(** Logical indices of all currently unusable lines, ascending. *)
let unusable_lines (t : t) : int list =
  let acc = ref [] in
  Bitset.iter_set t.unusable (fun i -> acc := i :: !acc);
  List.rev !acc

(** Per-stage permutation invariants plus whole-pipeline bijectivity —
    the translation-consistency check {!Holes.Verify} runs each phase.
    Touches no counted path. *)
let check_translation (t : t) : (unit, string) result =
  Translate.check t.stages ~nlines:t.nlines

(** Coefficient of variation of per-line wear (write counts) across the
    module: ~0 under perfect leveling, large when traffic concentrates.
    The paper's Sec. 7.2 ablation reads this as "how level is the
    wear". *)
let wear_cov (t : t) : float =
  let m = Holes_obs.Stats.moments () in
  Array.iter (fun l -> Holes_obs.Stats.accumulate m (float_of_int l.Wear.writes)) t.lines;
  Holes_obs.Stats.cov m

(** Accumulated write count over the physical lines currently backing
    logical page [page] — the wear signal the OS page allocator consults
    when [Config.wear_aware_pools] orders the free perfect pool.  Walks
    the translation pipeline per line, so a leveling stage's remaps are
    reflected. *)
let page_wear (t : t) (page : int) : int =
  if page < 0 || page >= t.config.pages then invalid_arg "Device.page_wear: page out of range";
  let base = page * Geometry.lines_per_page in
  let acc = ref 0 in
  for i = 0 to Geometry.lines_per_page - 1 do
    acc := !acc + t.lines.(physical_of_logical t (base + i)).Wear.writes
  done;
  !acc

type wl_stats = {
  gap_moves : int;  (** start-gap movements *)
  remaps : int;  (** pair swaps (random remap / decoder swap) *)
  copies : int;  (** overhead line copies charged to the device *)
  meta_writes : int;  (** leveling map / decoder reprogram writes *)
}

type stats = {
  reads : int;
  writes : int;
  failures : int;
  buffer : Failure_buffer.stats;
  wl : wl_stats option;  (** present once a leveling stage is installed *)
  caram : Caram.stats option;  (** present while the content store is live *)
}

let stats (t : t) : stats =
  {
    reads = t.reads;
    writes = t.writes;
    failures = t.failures;
    buffer = Failure_buffer.stats t.buffer;
    caram = (match t.caram with None -> None | Some c -> Some (Caram.stats c));
    wl =
      (match t.wear_stage with
      | None -> None
      | Some w ->
          Some
            {
              gap_moves = Wear_level.gap_moves w;
              remaps = Wear_level.remaps w;
              copies = Wear_level.copies w;
              meta_writes = Wear_level.meta_writes w;
            });
  }
