(** The device's composable logical→physical address-translation
    pipeline (DESIGN.md §11).

    Every device access flows through an ordered list of {!stage}s, each
    a bijection from its input line domain onto its output line domain.
    Translation folds the stages left to right; failure reporting walks
    them right to left (a physical line that becomes unusable is mapped
    back through each stage's [on_failure] to the logical lines the OS
    must publish).  Two stages exist today:

    - the {e wear-leveling} stage ({!Wear_level}): a live permutation
      perturbed by a pluggable mover (start-gap / random remap /
      decoder swap), sitting on the logical side — it models a
      controller-side leveler above the memory module;
    - the {e redirect} stage ({!Redirect}): the paper's per-region
      failure-clustering maps (Sec. 3.1.2), sitting on the physical
      side inside the module.

    Stage order is load-bearing: with leveling above clustering,
    failures still cluster in the {e intermediate} domain, but the
    leveler's time-varying permutation scatters them across the logical
    view the OS sees — which is exactly the fragmentation the paper's
    Sec. 7.2 argues makes leveling harmful to failure-aware runtimes. *)

(** Shared no-op write hook.  Stages with no per-write behaviour use
    this exact closure so the device can recognize them (physical
    equality) and partially evaluate the write path. *)
let nop_write : int -> unit = fun _ -> ()

type stage = {
  name : string;
  translate : int -> int;  (** input-domain line -> output-domain line *)
  inverse : int -> int;  (** output-domain line -> input-domain line *)
  on_write : int -> unit;
      (** account one data write to an input-domain line; called before
          [translate] on the write path so a triggered remap relocates
          the old payload and the incoming write lands post-move *)
  on_failure : physical:int -> int list;
      (** an output-domain line became unusable: update internal state
          (clustering swap / freeze) and return the input-domain lines
          newly unusable as a result *)
  overhead_writes : unit -> int;  (** data-copy line writes performed by the stage *)
  meta_writes : unit -> int;  (** map/metadata writes performed by the stage *)
  check : unit -> (unit, string) result;  (** permutation invariant *)
}

(** Wrap a wear-leveling core as a pipeline stage. *)
let wear_stage (w : Wear_level.t) : stage =
  {
    name = "wear-level";
    translate = Wear_level.translate w;
    inverse = Wear_level.inverse w;
    on_write = Wear_level.on_data_write w;
    on_failure =
      (fun ~physical ->
        match Wear_level.on_slot_unusable w ~slot:physical with
        | Some l -> [ l ]
        | None -> []);
    overhead_writes = (fun () -> Wear_level.copies w);
    meta_writes = (fun () -> Wear_level.meta_writes w);
    check = (fun () -> Wear_level.check w);
  }

(** Wrap the per-region redirection maps as a pipeline stage over the
    whole device ([region_lines] lines per region). *)
let redirect_stage (regions : Redirect.t array) ~(region_lines : int) : stage =
  {
    name = "redirect";
    translate =
      (fun l ->
        let r = l / region_lines in
        (r * region_lines) + Redirect.translate regions.(r) (l mod region_lines));
    inverse =
      (fun p ->
        let r = p / region_lines in
        (r * region_lines) + Redirect.inverse regions.(r) (p mod region_lines));
    on_write = nop_write;
    on_failure =
      (fun ~physical ->
        let r = physical / region_lines in
        let base = r * region_lines in
        Redirect.record_failure regions.(r) ~physical:(physical - base)
        |> List.map (fun off -> base + off));
    overhead_writes = (fun () -> 0);
    meta_writes = (fun () -> Array.fold_left (fun a r -> a + Redirect.redirections r) 0 regions);
    check =
      (fun () ->
        let bad = ref None in
        Array.iteri
          (fun i r -> if !bad = None && not (Redirect.is_permutation r) then bad := Some i)
          regions;
        match !bad with
        | None -> Ok ()
        | Some i -> Error (Printf.sprintf "redirect stage: region %d is not a permutation" i));
  }

(** Fold a line forward through the pipeline. *)
let translate (stages : stage array) (l : int) : int =
  let n = Array.length stages in
  let rec go i l = if i >= n then l else go (i + 1) ((Array.unsafe_get stages i).translate l) in
  go 0 l

(** Fold a physical line backward through the pipeline. *)
let inverse (stages : stage array) (p : int) : int =
  let rec go i p = if i < 0 then p else go (i - 1) (stages.(i).inverse p) in
  go (Array.length stages - 1) p

(** Per-stage invariants plus whole-pipeline consistency over [nlines]
    lines: the composition is a bijection and [inverse] really inverts
    [translate]. *)
let check (stages : stage array) ~(nlines : int) : (unit, string) result =
  let rec stages_ok i =
    if i >= Array.length stages then Ok ()
    else match stages.(i).check () with Ok () -> stages_ok (i + 1) | Error _ as e -> e
  in
  match stages_ok 0 with
  | Error _ as e -> e
  | Ok () ->
      let seen = Array.make nlines false in
      let rec lines l =
        if l >= nlines then Ok ()
        else
          let p = translate stages l in
          if p < 0 || p >= nlines then
            Error (Printf.sprintf "pipeline: line %d translates out of range (%d)" l p)
          else if seen.(p) then
            Error (Printf.sprintf "pipeline: physical line %d reached twice" p)
          else if inverse stages p <> l then
            Error (Printf.sprintf "pipeline: inverse(translate %d) = %d" l (inverse stages p))
          else begin
            seen.(p) <- true;
            lines (l + 1)
          end
      in
      lines 0

(* ---- wear-level policy CLI (mirrors Failure_model.of_cli) ------------- *)

let default_psi = 100

(** Parse a wear-level policy: [none], [startgap[:PSI]], [random[:PSI]]
    or [decoder[:PSI]] (PSI = writes between moves, default 100). *)
let of_cli (s : string) : (Wear_level.policy option, string) result =
  let fail () =
    Error
      (Printf.sprintf "expected none | startgap[:PSI] | random[:PSI] | decoder[:PSI], got %S" s)
  in
  let psi_of = function
    | [] -> Ok default_psi
    | [ p ] -> (
        match int_of_string_opt p with
        | Some v when v > 0 -> Ok v
        | _ -> Error (Printf.sprintf "bad psi %S (want a positive integer)" p))
    | _ -> Error "too many ':' fields"
  in
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "none" ] -> Ok None
  | "startgap" :: rest ->
      Result.map (fun psi -> Some (Wear_level.Start_gap { psi })) (psi_of rest)
  | "random" :: rest ->
      Result.map (fun psi -> Some (Wear_level.Random_remap { psi })) (psi_of rest)
  | "decoder" :: rest ->
      Result.map (fun psi -> Some (Wear_level.Decoder_swap { psi })) (psi_of rest)
  | _ -> fail ()

let to_cli (p : Wear_level.policy option) : string =
  match p with
  | None -> "none"
  | Some (Wear_level.Start_gap { psi }) -> Printf.sprintf "startgap:%d" psi
  | Some (Wear_level.Random_remap { psi }) -> Printf.sprintf "random:%d" psi
  | Some (Wear_level.Decoder_swap { psi }) -> Printf.sprintf "decoder:%d" psi

(** Compact policy tag for config names / file paths. *)
let short_name (p : Wear_level.policy option) : string =
  match p with
  | None -> "none"
  | Some (Wear_level.Start_gap { psi }) -> Printf.sprintf "sg%d" psi
  | Some (Wear_level.Random_remap { psi }) -> Printf.sprintf "rr%d" psi
  | Some (Wear_level.Decoder_swap { psi }) -> Printf.sprintf "ds%d" psi
