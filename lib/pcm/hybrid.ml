(** The hybrid DRAM/PCM tiering policy.

    Two composable mechanisms, selectable independently or together
    (DESIGN.md §16–17):

    - {e migrate}: MigrantStore-style virtual-memory-driven hot-page
      migration.  The OS tracks per-page write frequency from the
      device-write charge path and promotes write-hot PCM pages into
      DRAM frames; an epoch counter decays the frequencies and demotes
      pages that went cold, writing their dirty lines back to the
      page's (still reserved) PCM home.  [epoch] is the number of
      charged line writes between decay rounds.
    - {e caram}: CARAM-style content-aware line store.  A [ways]-way
      set-associative fingerprint cache in front of the PCM cells
      dedups lines whose exact content is already stored and absorbs
      trivially compressible (single-byte-pattern) lines, so neither
      consumes cell endurance.

    The policy lives here in [lib/pcm] — next to {!Wear_level} and
    {!Translate} — so both the device (caram) and the OS tier
    (migrate) can consume it without a dependency on [lib/core]. *)

type policy = {
  migrate_epoch : int option;  (** decay epoch in charged line writes; [None] = no migration *)
  caram_ways : int option;  (** content-cache associativity; [None] = no caram *)
}

let none : policy = { migrate_epoch = None; caram_ways = None }
let is_none (p : policy) : bool = p = none

let default_epoch = 2048
let default_ways = 8

(* ------------------------------------------------------------------ *)
(* CLI surface: none | migrate[:epoch] | caram[:ways] | migrate+caram
   (the combined form accepts per-mechanism parameters on either side,
   e.g. "migrate:512+caram:4").                                        *)
(* ------------------------------------------------------------------ *)

let param_of ~(what : string) ~(default : int) (rest : string list) :
    (int, string) result =
  match rest with
  | [] -> Ok default
  | [ v ] -> (
      match int_of_string_opt v with
      | Some n when n > 0 -> Ok n
      | _ -> Error (Printf.sprintf "hybrid: %s must be a positive integer, got %S" what v))
  | _ -> Error (Printf.sprintf "hybrid: too many parameters for %s" what)

let of_cli (s : string) : (policy, string) result =
  let s = String.lowercase_ascii (String.trim s) in
  if s = "none" then Ok none
  else begin
    let merge acc part =
      match acc with
      | Error _ as e -> e
      | Ok p -> (
          match String.split_on_char ':' part with
          | "migrate" :: rest -> (
              if p.migrate_epoch <> None then Error "hybrid: duplicate migrate"
              else
                match param_of ~what:"migrate epoch" ~default:default_epoch rest with
                | Ok e -> Ok { p with migrate_epoch = Some e }
                | Error _ as e -> e)
          | "caram" :: rest -> (
              if p.caram_ways <> None then Error "hybrid: duplicate caram"
              else
                match param_of ~what:"caram ways" ~default:default_ways rest with
                | Ok w -> Ok { p with caram_ways = Some w }
                | Error _ as e -> e)
          | _ -> Error (Printf.sprintf "unknown hybrid policy %S (none|migrate[:N]|caram[:N]|migrate+caram)" part))
    in
    match String.split_on_char '+' s with
    | [] | [ "" ] -> Error "hybrid: empty policy"
    | parts -> List.fold_left merge (Ok none) parts
  end

let to_cli (p : policy) : string =
  match (p.migrate_epoch, p.caram_ways) with
  | None, None -> "none"
  | Some e, None -> Printf.sprintf "migrate:%d" e
  | None, Some w -> Printf.sprintf "caram:%d" w
  | Some e, Some w -> Printf.sprintf "migrate:%d+caram:%d" e w

(** Compact tag for config names and cache keys ("none", "mig2048",
    "car8", "mig2048car8"). *)
let short_name (p : policy) : string =
  match (p.migrate_epoch, p.caram_ways) with
  | None, None -> "none"
  | Some e, None -> Printf.sprintf "mig%d" e
  | None, Some w -> Printf.sprintf "car%d" w
  | Some e, Some w -> Printf.sprintf "mig%dcar%d" e w
