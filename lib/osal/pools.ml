(** The three physical page pools (paper Sec. 3.2.1): DRAM, perfect PCM
    and imperfect PCM.  All PCM pages start perfect; the first line
    failure moves a page to the imperfect pool.  Imperfect pages are
    handed out most-usable-first so early allocations see few holes. *)

type t = {
  pages : Page.t array;  (** all physical pages, indexed by id *)
  mutable free_dram : int list;
  mutable free_perfect : int list;
  mutable free_imperfect : int list;  (** kept sorted by usable lines, desc *)
  mutable allocated : (int, unit) Hashtbl.t;
  mutable wear_rank : (int -> int) option;
      (** wear-aware grant ordering (Config.wear_aware_pools): maps a
          physical page id to its accumulated wear; when installed,
          [alloc_perfect] hands out the least-worn free page instead of
          the free-list head.  Installed by the device backend at boot —
          the OS has no wear counters of its own *)
}

let create ~(dram_pages : int) ~(pcm_pages : int) : t =
  let pages =
    Array.init (dram_pages + pcm_pages) (fun id ->
        if id < dram_pages then Page.create ~id ~kind:Page.Dram
        else Page.create ~id ~kind:Page.Pcm_perfect)
  in
  {
    pages;
    free_dram = List.init dram_pages Fun.id;
    free_perfect = List.init pcm_pages (fun i -> dram_pages + i);
    free_imperfect = [];
    allocated = Hashtbl.create 64;
    wear_rank = None;
  }

(** Install (or clear) the wear-ordering hook consulted by
    [alloc_perfect].  Deterministic: ties keep free-list order. *)
let set_wear_rank (t : t) (rank : (int -> int) option) : unit = t.wear_rank <- rank

let page (t : t) (id : int) : Page.t = t.pages.(id)

let free_dram_count (t : t) : int = List.length t.free_dram
let free_perfect_count (t : t) : int = List.length t.free_perfect
let free_imperfect_count (t : t) : int = List.length t.free_imperfect

(** Is page [id] currently handed out?  (Verifier support: a tier
    resident's PCM home must stay reserved while promoted.) *)
let is_allocated (t : t) (id : int) : bool = Hashtbl.mem t.allocated id

let take_from lst =
  match lst with [] -> None | x :: rest -> Some (x, rest)

(** Allocate a DRAM page, if any remain. *)
let alloc_dram (t : t) : int option =
  match take_from t.free_dram with
  | None -> None
  | Some (id, rest) ->
      t.free_dram <- rest;
      Hashtbl.replace t.allocated id ();
      Some id

(** Allocate a perfect PCM page, if any remain.  With a wear rank
    installed the least-worn free page is granted (first-seen wins
    ties), spreading fresh traffic across the module; otherwise the
    free-list head. *)
let alloc_perfect (t : t) : int option =
  match (t.wear_rank, t.free_perfect) with
  | _, [] -> None
  | None, id :: rest ->
      t.free_perfect <- rest;
      Hashtbl.replace t.allocated id ();
      Some id
  | Some rank, first :: rest ->
      let best, _ =
        List.fold_left
          (fun (b, br) id ->
            let r = rank id in
            if r < br then (id, r) else (b, br))
          (first, rank first) rest
      in
      t.free_perfect <- List.filter (fun x -> x <> best) t.free_perfect;
      Hashtbl.replace t.allocated best ();
      Some best

(** Allocate an imperfect PCM page (most usable lines first). *)
let alloc_imperfect (t : t) : int option =
  match take_from t.free_imperfect with
  | None -> None
  | Some (id, rest) ->
      t.free_imperfect <- rest;
      Hashtbl.replace t.allocated id ();
      Some id

(** Allocate any PCM page, preferring imperfect (conserving the scarce
    perfect pool, as a failure-aware process should). *)
let alloc_pcm_any (t : t) : int option =
  match alloc_imperfect t with Some id -> Some id | None -> alloc_perfect t

let insert_imperfect_sorted (t : t) (id : int) : unit =
  let u = Page.usable_lines t.pages.(id) in
  let rec ins = function
    | [] -> [ id ]
    | x :: rest as l -> if Page.usable_lines t.pages.(x) < u then id :: l else x :: ins rest
  in
  t.free_imperfect <- ins t.free_imperfect

(** Return a page to the appropriate free pool. *)
let free (t : t) (id : int) : unit =
  if not (Hashtbl.mem t.allocated id) then invalid_arg "Pools.free: page not allocated";
  Hashtbl.remove t.allocated id;
  let p = t.pages.(id) in
  match p.Page.kind with
  | Page.Dram -> t.free_dram <- id :: t.free_dram
  | Page.Pcm_perfect -> t.free_perfect <- id :: t.free_perfect
  | Page.Pcm_imperfect -> insert_imperfect_sorted t id

(** Rebuild the free pools from the pages' current kinds — used after a
    bulk failure import (the OS boot scan of a worn device), where the
    incremental [mark_line_failed] migration would cost O(n²) in list
    membership tests.  Allocated pages are untouched; the imperfect list
    is re-sorted most-usable-first in one pass. *)
let renormalize (t : t) : unit =
  let dram = ref [] and perfect = ref [] and imperfect = ref [] in
  for id = Array.length t.pages - 1 downto 0 do
    if not (Hashtbl.mem t.allocated id) then
      match t.pages.(id).Page.kind with
      | Page.Dram -> dram := id :: !dram
      | Page.Pcm_perfect -> perfect := id :: !perfect
      | Page.Pcm_imperfect -> imperfect := id :: !imperfect
  done;
  t.free_dram <- !dram;
  t.free_perfect <- !perfect;
  t.free_imperfect <-
    List.stable_sort
      (fun a b -> compare (Page.usable_lines t.pages.(b)) (Page.usable_lines t.pages.(a)))
      !imperfect

(** Record a line failure on page [id]; if the page was in the free
    perfect pool it migrates to the free imperfect pool. *)
let mark_line_failed (t : t) ~(page : int) ~(line : int) : bool =
  let p = t.pages.(page) in
  let was_free_perfect = List.mem page t.free_perfect in
  let changed = Page.mark_line_failed p ~line in
  if changed && was_free_perfect then begin
    t.free_perfect <- List.filter (fun x -> x <> page) t.free_perfect;
    insert_imperfect_sorted t page
  end;
  changed
