(** The debit–credit cost model for perfect-page requests
    (paper Sec. 5, "Failure map generation and memory accounting").

    Application memory requests fall into two categories: *relaxed*
    allocators can use fragmented (imperfect) pages; *fussy* allocators
    (the large object space and overflow blocks) need perfect pages.  A
    real system would have scarce DRAM backing such requests, so the model
    penalizes them: when a fussy allocator needs a perfect page and none
    is available, it is given one (modeling a borrowed DRAM page) and the
    process incurs one page of *debt*.  The relaxed allocator repays the
    debt: each time it is offered a perfect page while debt is
    outstanding, it declines the page (reducing debt by one) and fetches
    another PCM page instead — so borrowed pages ultimately cost heap
    space, which the garbage-collection space-time trade-off converts
    into time. *)

type t = {
  mutable debt : int;  (** outstanding borrowed pages *)
  mutable total_borrowed : int;  (** lifetime borrows: the Fig. 9(b) metric *)
  mutable total_repaid : int;
  mutable perfect_requests : int;  (** fussy requests for a perfect page *)
  mutable perfect_satisfied : int;  (** served from an actual perfect page *)
  mutable total_closed : int;
      (** loans closed by returning the borrowed page itself (neither
          repaid nor outstanding — the third leg of the debit–credit
          balance [total_borrowed = debt + total_repaid + total_closed],
          which the heap verifier asserts) *)
}

let create () : t =
  {
    debt = 0;
    total_borrowed = 0;
    total_repaid = 0;
    perfect_requests = 0;
    perfect_satisfied = 0;
    total_closed = 0;
  }

let reset (t : t) : unit =
  t.debt <- 0;
  t.total_borrowed <- 0;
  t.total_repaid <- 0;
  t.perfect_requests <- 0;
  t.perfect_satisfied <- 0;
  t.total_closed <- 0

(** A fussy allocator requests [pages] perfect pages; [available] says how
    many real perfect pages the OS could supply.  The shortfall is
    borrowed and becomes debt. *)
let fussy_request (t : t) ~(pages : int) ~(available : int) : unit =
  if pages < 0 || available < 0 then invalid_arg "Accounting.fussy_request: negative";
  t.perfect_requests <- t.perfect_requests + pages;
  let served = min pages available in
  t.perfect_satisfied <- t.perfect_satisfied + served;
  let borrowed = pages - served in
  t.debt <- t.debt + borrowed;
  t.total_borrowed <- t.total_borrowed + borrowed

(** The relaxed allocator was offered a perfect page.  Returns [`Keep] if
    it may use the page, or [`Decline] if it must give the page up to
    repay one page of debt (and fetch another PCM page instead). *)
let relaxed_offer_perfect (t : t) : [ `Keep | `Decline ] =
  if t.debt > 0 then begin
    t.debt <- t.debt - 1;
    t.total_repaid <- t.total_repaid + 1;
    `Decline
  end
  else `Keep

(** A borrowed DRAM page was returned before the relaxed allocator
    repaid it: the loan closes and the outstanding debt shrinks. *)
let loan_closed (t : t) : unit =
  if t.debt > 0 then begin
    t.debt <- t.debt - 1;
    t.total_closed <- t.total_closed + 1
  end

let debt (t : t) : int = t.debt

let total_borrowed (t : t) : int = t.total_borrowed

let total_repaid (t : t) : int = t.total_repaid

let perfect_requests (t : t) : int = t.perfect_requests

let perfect_satisfied (t : t) : int = t.perfect_satisfied

let total_closed (t : t) : int = t.total_closed
