(** The OS failure-interrupt handler (paper Sec. 3.2.2).

    Wired to a {!Holes_pcm.Device}, the handler services write-failure
    interrupts.  Each event carries the logical address whose write
    failed and the logical lines that became unusable; with failure
    clustering these differ — the hardware redirects the failed physical
    line to the cluster end, so the issuing address is re-backed by a
    working line (and the OS simply restores the preserved data there),
    while the boundary slot becomes the unusable line.  For each
    unusable line the handler performs reverse address translation,
    revokes access, updates the failure table and pools, and resolves
    the failure either by up-calling the owning process's registered
    runtime handler (failure-aware) or by copying the page's data to a
    perfect page and remapping (failure-unaware fallback). *)

module Pcm = Holes_pcm
module Trace = Holes_obs.Trace

type resolution =
  | Upcalled of int  (** pid whose runtime handler relocated the data *)
  | Page_copied of { pid : int; old_phys : int; new_phys : int }
  | Data_restored of int  (** clustering re-backed the address; data rewritten *)
  | Unowned  (** the failing page was not mapped; only bookkeeping done *)

type event = { addr : int; unusable : int list }

type t = {
  vmm : Vmm.t;
  device : Pcm.Device.t;
  dram_pages : int;
  mutable queue : event list;  (** oldest first *)
  mutable resolutions : resolution list;  (** most recent first, for tests *)
  mutable page_copies : int;
  mutable upcalls : int;
  mutable restores : int;
  mutable evacuations : int;
      (** retires that arrived with no buffered payload: lines the
          device's translation pipeline reserved for itself (start-gap's
          gap line) and handed back through the failure chain *)
  tracer : Trace.view;  (** osal-lane events: service spans, resolutions *)
}

(** Attach an interrupt handler to [device].  [dram_pages] is the number
    of DRAM physical ids preceding the PCM pages in the VMM's physical
    namespace (device page 0 is VMM physical page [dram_pages]). *)
let attach ?(tracer = Trace.null) ~(vmm : Vmm.t) ~(device : Pcm.Device.t) ~(dram_pages : int) ()
    : t =
  let t =
    {
      vmm;
      device;
      dram_pages;
      queue = [];
      resolutions = [];
      page_copies = 0;
      upcalls = 0;
      restores = 0;
      evacuations = 0;
      tracer;
    }
  in
  Pcm.Device.on_line_failed device (fun ~addr ~unusable ->
      t.queue <- t.queue @ [ { addr; unusable } ]);
  t

let has_pending (t : t) : bool = t.queue <> []

let lines_per_page = Pcm.Geometry.lines_per_page

(* Copy all usable lines of device page [page] to a fresh perfect page and
   remap the process's virtual page (failure-unaware resolution).  The
   destination is chosen by the swap engine's To_perfect policy
   (Sec. 3.2.3); DRAM is the last resort when the perfect pool is dry. *)
let copy_to_perfect (t : t) ~(pid : int) ~(virt : int) ~(device_page : int) : resolution option =
  let pools = Vmm.pools t.vmm in
  let src_map = Failure_table.get (Vmm.failure_table t.vmm) ~page:device_page in
  let target =
    match
      Swap.swap_in pools ~table:(Vmm.failure_table t.vmm) ~dram_pages:t.dram_pages
        ~policy:Swap.To_perfect ~src_map
    with
    | Some o -> Some o.Swap.dest
    | None -> Pools.alloc_dram pools
  in
  match target with
  | None -> None
  | Some new_phys ->
      (* Model the data movement by reading every usable line (a real OS
         would copy the bytes into the new physical frame). *)
      for line = 0 to lines_per_page - 1 do
        let l = (device_page * lines_per_page) + line in
        if Pcm.Device.line_usable t.device l then ignore (Pcm.Device.read t.device l)
      done;
      let p = Option.get (Vmm.find_process t.vmm pid) in
      let old_phys = Option.get (Vmm.translate p ~virt) in
      Vmm.remap t.vmm p ~virt ~new_phys;
      Vmm.record_swap t.vmm;
      t.page_copies <- t.page_copies + 1;
      if Trace.armed t.tracer then
        Trace.instant t.tracer ~tid:Trace.tid_osal "os_page_copy"
          ~args:[ ("old_phys", float_of_int old_phys); ("new_phys", float_of_int new_phys) ];
      Some (Page_copied { pid; old_phys; new_phys })

(* Resolve one newly unusable logical line. *)
let resolve_line (t : t) ~(line : int) ~(data : Bytes.t option) : resolution =
  let device_page = line / lines_per_page in
  let line_in_page = line mod lines_per_page in
  let phys = t.dram_pages + device_page in
  (* 1. prevent further access before the buffer entry disappears *)
  let owner = Vmm.reverse_translate t.vmm ~phys in
  (match owner with
  | Some (pid, virt) ->
      let p = Option.get (Vmm.find_process t.vmm pid) in
      Vmm.set_protection p ~virt Vmm.No_access
  | None -> ());
  (* 2. update OS failure bookkeeping *)
  Failure_table.mark_failed (Vmm.failure_table t.vmm) ~page:device_page ~line:line_in_page;
  ignore (Pools.mark_line_failed (Vmm.pools t.vmm) ~page:phys ~line:line_in_page);
  (* 3. resolve *)
  match owner with
  | None -> Unowned
  | Some (pid, virt) -> (
      let p = Option.get (Vmm.find_process t.vmm pid) in
      match p.Vmm.failure_handler with
      | Some handler ->
          if Trace.armed t.tracer then
            Trace.instant t.tracer ~tid:Trace.tid_osal "os_upcall"
              ~args:[ ("line", float_of_int line); ("virt", float_of_int virt) ];
          handler ~virt_page:virt ~line:line_in_page ~data;
          Vmm.set_protection p ~virt Vmm.Read_write;
          t.upcalls <- t.upcalls + 1;
          Upcalled pid
      | None -> (
          match copy_to_perfect t ~pid ~virt ~device_page with
          | Some r -> r
          | None ->
              (* no perfect page left: leave the page inaccessible *)
              Unowned))

(** Service the interrupt: handle every pending failure event.  Returns
    the resolutions, oldest first. *)
let service (t : t) : resolution list =
  let rec drain acc =
    match t.queue with
    | [] -> List.rev acc
    | { addr; unusable } :: rest ->
        t.queue <- rest;
        (* recover the preserved data, clearing the buffer entry (this
           may un-stall the device) *)
        let data = Pcm.Device.drain_failure t.device addr in
        (* no buffered payload + the address retiring itself = a pipeline
           reservation (e.g. a start-gap enable evacuating its gap line),
           not a wear failure: same resolution path, tracked apart *)
        if data = None && List.mem addr unusable then begin
          t.evacuations <- t.evacuations + 1;
          if Trace.armed t.tracer then
            Trace.instant t.tracer ~tid:Trace.tid_osal "os_line_evacuate"
              ~args:[ ("line", float_of_int addr) ]
        end;
        let results = ref [] in
        (* the failing address itself: if clustering re-backed it with a
           working line, restore the in-flight data in place *)
        if (not (List.mem addr unusable)) && Pcm.Device.line_usable t.device addr then begin
          (match data with
          | Some d -> ignore (Pcm.Device.write t.device addr d)
          | None -> ());
          t.restores <- t.restores + 1;
          if Trace.armed t.tracer then
            Trace.instant t.tracer ~tid:Trace.tid_osal "os_data_restore"
              ~args:[ ("line", float_of_int addr) ];
          results := Data_restored addr :: !results
        end;
        List.iter
          (fun line ->
            let line_data = if line = addr then data else None in
            results := resolve_line t ~line ~data:line_data :: !results)
          unusable;
        let results = List.rev !results in
        t.resolutions <- List.rev_append results t.resolutions;
        drain (List.rev_append results acc)
  in
  if t.queue = [] then []
  else if Trace.armed t.tracer then
    Trace.with_span t.tracer ~tid:Trace.tid_osal "irq_service" (fun () -> drain [])
  else drain []

let upcalls (t : t) : int = t.upcalls

let page_copies (t : t) : int = t.page_copies

let restores (t : t) : int = t.restores

let evacuations (t : t) : int = t.evacuations
