(** Virtual memory manager (paper Secs. 3.2.1–3.2.2).

    Failure-unaware processes allocate perfect memory via the normal
    [mmap]; a failure-aware process uses [mmap_imperfect] to acquire
    imperfect pages (which may contain holes) and [map_failures] to read
    the failure bitmap for a mapped range.  The VMM supports reverse
    translation (physical page -> (process, virtual page)) so the failure
    interrupt handler can revoke access to failing pages. *)

open Holes_stdx
module Trace = Holes_obs.Trace

type prot = No_access | Read_write

type mapping = {
  virt : int;  (** virtual page number *)
  mutable phys : int;  (** physical page id *)
  mutable prot : prot;
}

type process = {
  pid : int;
  page_table : (int, mapping) Hashtbl.t;  (** virtual page -> mapping *)
  mutable next_virt : int;
  mutable failure_handler : (virt_page:int -> line:int -> data:Bytes.t option -> unit) option;
      (** up-call registered by a failure-aware runtime (Sec. 3.2.2) *)
}

type t = {
  pools : Pools.t;
  table : Failure_table.t;
  dram_pages : int;  (** physical ids below this are DRAM *)
  mutable processes : process list;
  mutable next_pid : int;
  reverse : (int, int * int) Hashtbl.t;  (** physical page -> (pid, virtual page) *)
  mutable reverse_translations : int;  (** statistic: the expensive lookups *)
  mutable swap_ins : int;  (** pages moved to a new frame via the swap path *)
  tracer : Trace.view;  (** osal-lane events: map_failures, remaps, swaps *)
}

let create ?(tracer = Trace.null) ~(dram_pages : int) ~(pcm_pages : int) () : t =
  {
    pools = Pools.create ~dram_pages ~pcm_pages;
    table = Failure_table.create ~pcm_pages;
    dram_pages;
    processes = [];
    next_pid = 1;
    reverse = Hashtbl.create 256;
    reverse_translations = 0;
    swap_ins = 0;
    tracer;
  }

let pools (t : t) : Pools.t = t.pools

let failure_table (t : t) : Failure_table.t = t.table

let spawn (t : t) : process =
  let p =
    { pid = t.next_pid; page_table = Hashtbl.create 64; next_virt = 0; failure_handler = None }
  in
  t.next_pid <- t.next_pid + 1;
  t.processes <- p :: t.processes;
  p

(** Register the runtime's dynamic-failure handler; required before a
    process may rely on imperfect memory. *)
let register_failure_handler (p : process)
    (h : virt_page:int -> line:int -> data:Bytes.t option -> unit) : unit =
  p.failure_handler <- Some h

let install_mapping (t : t) (p : process) (phys : int) : mapping =
  let m = { virt = p.next_virt; phys; prot = Read_write } in
  p.next_virt <- p.next_virt + 1;
  Hashtbl.replace p.page_table m.virt m;
  Hashtbl.replace t.reverse phys (p.pid, m.virt);
  m

(** Normal [mmap]: perfect pages only (PCM-perfect first, falling back to
    DRAM).  Returns the virtual page numbers, or [Error `Out_of_memory]
    when neither pool can satisfy the request. *)
let mmap (t : t) (p : process) ~(pages : int) : (int list, [ `Out_of_memory ]) result =
  let rec go n acc =
    if n = 0 then Ok (List.rev acc)
    else
      match Pools.alloc_perfect t.pools with
      | Some phys -> go (n - 1) (install_mapping t p phys :: acc)
      | None -> (
          match Pools.alloc_dram t.pools with
          | Some phys -> go (n - 1) (install_mapping t p phys :: acc)
          | None ->
              (* roll back partial allocation *)
              List.iter
                (fun m ->
                  Hashtbl.remove p.page_table m.virt;
                  Hashtbl.remove t.reverse m.phys;
                  Pools.free t.pools m.phys)
                acc;
              Error `Out_of_memory)
  in
  Result.map (List.map (fun m -> m.virt)) (go pages [])

(** The special mmap variation of Sec. 3.2.1: acquire [pages] pages of
    (possibly) imperfect PCM.  "This call returns the number of pages
    requested, however not all of the allocated memory may be usable." *)
let mmap_imperfect (t : t) (p : process) ~(pages : int) : (int list, [ `Out_of_memory ]) result =
  if Trace.armed t.tracer then
    Trace.instant t.tracer ~tid:Trace.tid_osal "mmap_imperfect"
      ~args:[ ("pages", float_of_int pages) ];
  let rec go n acc =
    if n = 0 then Ok (List.rev acc)
    else
      match Pools.alloc_pcm_any t.pools with
      | Some phys -> go (n - 1) (install_mapping t p phys :: acc)
      | None ->
          List.iter
            (fun m ->
              Hashtbl.remove p.page_table m.virt;
              Hashtbl.remove t.reverse m.phys;
              Pools.free t.pools m.phys)
            acc;
          Error `Out_of_memory
  in
  Result.map (List.map (fun m -> m.virt)) (go pages [])

(** [map_failures t p ~virt] returns the failure bitmap of the physical
    page backing virtual page [virt] (all-clear for DRAM). *)
let map_failures (t : t) (p : process) ~(virt : int) : Bitset.t =
  if Trace.armed t.tracer then
    Trace.instant t.tracer ~tid:Trace.tid_osal "map_failures"
      ~args:[ ("virt", float_of_int virt) ];
  match Hashtbl.find_opt p.page_table virt with
  | None -> invalid_arg "Vmm.map_failures: unmapped virtual page"
  | Some m ->
      if m.phys < t.dram_pages then Bitset.create Page.lines_per_page
      else Bitset.copy (Failure_table.get t.table ~page:(m.phys - t.dram_pages))

let translate (p : process) ~(virt : int) : int option =
  Hashtbl.find_opt p.page_table virt |> Option.map (fun m -> m.phys)

(** Reverse address translation (physical -> (pid, virtual)); "relatively
    expensive, but dynamic failures are very rare" (Sec. 3.2.2). *)
let reverse_translate (t : t) ~(phys : int) : (int * int) option =
  t.reverse_translations <- t.reverse_translations + 1;
  if Trace.armed t.tracer then
    Trace.instant t.tracer ~tid:Trace.tid_osal "reverse_translate"
      ~args:[ ("phys", float_of_int phys) ];
  Hashtbl.find_opt t.reverse phys

let reverse_translations (t : t) : int = t.reverse_translations

(** Account one page swapped into a new physical frame (Sec. 3.2.3). *)
let record_swap (t : t) : unit =
  t.swap_ins <- t.swap_ins + 1;
  if Trace.armed t.tracer then Trace.instant t.tracer ~tid:Trace.tid_osal "swap_in"

let swap_ins (t : t) : int = t.swap_ins

let find_process (t : t) (pid : int) : process option =
  List.find_opt (fun p -> p.pid = pid) t.processes

let set_protection (p : process) ~(virt : int) (prot : prot) : unit =
  match Hashtbl.find_opt p.page_table virt with
  | None -> invalid_arg "Vmm.set_protection: unmapped virtual page"
  | Some m -> m.prot <- prot

let protection (p : process) ~(virt : int) : prot =
  match Hashtbl.find_opt p.page_table virt with
  | None -> invalid_arg "Vmm.protection: unmapped virtual page"
  | Some m -> m.prot

(** Remap virtual page [virt] to a different physical page (used when the
    OS masks a failure by substituting a perfect page). *)
let remap (t : t) (p : process) ~(virt : int) ~(new_phys : int) : unit =
  match Hashtbl.find_opt p.page_table virt with
  | None -> invalid_arg "Vmm.remap: unmapped virtual page"
  | Some m ->
      Hashtbl.remove t.reverse m.phys;
      Pools.free t.pools m.phys;
      m.phys <- new_phys;
      m.prot <- Read_write;
      Hashtbl.replace t.reverse new_phys (p.pid, m.virt)

(** Retarget virtual page [virt] to [new_phys] {e without} freeing the
    old frame — the tiering primitive (DESIGN.md §17).  A promotion
    points the mapping at a DRAM frame while the page's PCM home stays
    reserved (its failure bitmap and wear state must survive the
    round-trip); the matching demotion points it back.  The caller owns
    both frames' lifecycles. *)
let migrate (t : t) (p : process) ~(virt : int) ~(new_phys : int) : unit =
  match Hashtbl.find_opt p.page_table virt with
  | None -> invalid_arg "Vmm.migrate: unmapped virtual page"
  | Some m ->
      Hashtbl.remove t.reverse m.phys;
      m.phys <- new_phys;
      Hashtbl.replace t.reverse new_phys (p.pid, m.virt);
      if Trace.armed t.tracer then
        Trace.instant t.tracer ~tid:Trace.tid_osal "migrate"
          ~args:[ ("virt", float_of_int virt); ("phys", float_of_int new_phys) ]

(** Unmap and free a virtual page. *)
let munmap (t : t) (p : process) ~(virt : int) : unit =
  match Hashtbl.find_opt p.page_table virt with
  | None -> invalid_arg "Vmm.munmap: unmapped virtual page"
  | Some m ->
      Hashtbl.remove p.page_table virt;
      Hashtbl.remove t.reverse m.phys;
      Pools.free t.pools m.phys
