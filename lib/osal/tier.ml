(** MigrantStore-style DRAM/PCM page tiering (DESIGN.md §17).

    The OS watches the device-write charge stream and keeps a decayed
    per-page write-frequency count.  A page whose count crosses the
    promotion threshold is {e promoted}: a free DRAM frame is
    allocated, the mapping is retargeted with {!Vmm.migrate} (the PCM
    home stays reserved — its failure bitmap and wear state must
    survive the round trip), and subsequent writes land in DRAM,
    consuming no PCM endurance.  An epoch counter — one tick per
    charged line write through the node — periodically halves every
    frequency count and {e demotes} residents that went cold: the
    mapping flips back to the PCM home, dirty lines are written back
    through the normal device path (wearing cells, possibly surfacing
    failures through the ordinary up-call chain), and the DRAM frame
    returns to the pool.

    Clean lines never leave the PCM arena, so a demotion writes back
    only the lines dirtied while promoted.  Migration copies are
    charged to the requesting VM's cost model through the
    [charge_copy] callback; the tier itself knows nothing about cost
    weights. *)

open Holes_stdx
module Trace = Holes_obs.Trace
module Geometry = Holes_pcm.Geometry

type resident = {
  r_pid : int;
  r_virt : int;
  r_pcm_phys : int;  (** the reserved PCM home (pool page id) *)
  r_dram_phys : int;  (** the DRAM frame now backing the page *)
  dirty : Bitset.t;  (** lines written while promoted *)
  content : Bytes.t;  (** the DRAM frame: only dirty lines are meaningful *)
  mutable dram_writes : int;  (** writes absorbed since the last epoch *)
}

type t = {
  vmm : Vmm.t;
  device : Holes_pcm.Device.t;
  dram_pages : int;
  epoch : int;  (** charged line writes between decay rounds *)
  promote_threshold : int;
  heat : (int * int, int) Hashtbl.t;  (** (pid, virt) -> decayed write count *)
  by_frame : (int, resident) Hashtbl.t;  (** dram frame id -> resident *)
  mutable tick : int;
  mutable promotes : int;
  mutable demotes : int;
  mutable dram_writes : int;  (** total writes absorbed by promoted pages *)
  mutable promote_skips : int;  (** promotions refused for lack of a frame *)
  mutable epochs : int;
  mutable writeback_failures : int;  (** demotion write-backs that wore a line out *)
  mutable on_stall : unit -> unit;
      (** installed by the backend: drain the device's failure buffer so
          a stalled demotion write-back can retry *)
  tracer : Trace.view;
}

type stats = {
  s_promotes : int;
  s_demotes : int;
  s_dram_writes : int;
  s_promote_skips : int;
  s_epochs : int;
  s_writeback_failures : int;
  s_resident : int;
}

let create ?(tracer = Trace.null) ~(vmm : Vmm.t) ~(device : Holes_pcm.Device.t)
    ~(dram_pages : int) ~(epoch : int) () : t =
  if epoch <= 0 then invalid_arg "Tier.create: epoch must be positive";
  {
    vmm;
    device;
    dram_pages;
    epoch;
    (* hot enough to matter within one decay window: 1/256th of the
       epoch's writes on a single page, floored so tiny epochs still
       demand repeated traffic *)
    promote_threshold = max 4 (epoch / 256);
    heat = Hashtbl.create 64;
    by_frame = Hashtbl.create 16;
    tick = 0;
    promotes = 0;
    demotes = 0;
    dram_writes = 0;
    promote_skips = 0;
    epochs = 0;
    writeback_failures = 0;
    on_stall = (fun () -> ());
    tracer;
  }

let set_on_stall (t : t) (f : unit -> unit) : unit = t.on_stall <- f

let stats (t : t) : stats =
  {
    s_promotes = t.promotes;
    s_demotes = t.demotes;
    s_dram_writes = t.dram_writes;
    s_promote_skips = t.promote_skips;
    s_epochs = t.epochs;
    s_writeback_failures = t.writeback_failures;
    s_resident = Hashtbl.length t.by_frame;
  }

(** Residents as [(pid, virt, dram_phys, pcm_phys)], ascending by frame
    — non-counted accessors only, safe for the paranoid verifier. *)
let residents (t : t) : (int * int * int * int) list =
  Hashtbl.fold (fun _ r acc -> (r.r_pid, r.r_virt, r.r_dram_phys, r.r_pcm_phys) :: acc) t.by_frame []
  |> List.sort (fun (_, _, a, _) (_, _, b, _) -> compare a b)

let resident_count (t : t) : int = Hashtbl.length t.by_frame

(* ---- demotion --------------------------------------------------------- *)

(* per-domain write-back staging line: engine workers run one tier per
   domain, and a module-level buffer shared across domains would let
   parallel demotions corrupt each other's payloads *)
let scratch : Bytes.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Bytes.create Geometry.line_bytes)

(* write one dirty line back to the PCM home, retrying once across a
   buffer stall (the backend's [on_stall] drains the buffer) *)
let write_back (t : t) (logical : int) (data : Bytes.t) : unit =
  match Holes_pcm.Device.write t.device logical data with
  | Holes_pcm.Device.Stored -> ()
  | Holes_pcm.Device.Write_failed -> t.writeback_failures <- t.writeback_failures + 1
  | Holes_pcm.Device.Stalled -> (
      t.on_stall ();
      match Holes_pcm.Device.write t.device logical data with
      | Holes_pcm.Device.Stored -> ()
      | Holes_pcm.Device.Write_failed | Holes_pcm.Device.Stalled ->
          t.writeback_failures <- t.writeback_failures + 1)

let demote (t : t) (r : resident) ~(charge_copy : bytes:int -> unit) : unit =
  (match Vmm.find_process t.vmm r.r_pid with
  | None -> ()  (* process raced away; drop_process handles live exits *)
  | Some proc ->
      Vmm.migrate t.vmm proc ~virt:r.r_virt ~new_phys:r.r_pcm_phys;
      let device_page = r.r_pcm_phys - t.dram_pages in
      let written = ref 0 in
      Bitset.iter_set r.dirty (fun line ->
          let logical = (device_page * Geometry.lines_per_page) + line in
          if Holes_pcm.Device.line_usable t.device logical then begin
            let buf = Domain.DLS.get scratch in
            Bytes.blit r.content (line * Geometry.line_bytes) buf 0 Geometry.line_bytes;
            write_back t logical buf;
            incr written
          end);
      charge_copy ~bytes:(!written * Geometry.line_bytes);
      if Trace.armed t.tracer then
        Trace.instant t.tracer ~tid:Trace.tid_osal "page_demote"
          ~args:
            [
              ("virt", float_of_int r.r_virt);
              ("pcm", float_of_int r.r_pcm_phys);
              ("dirty", float_of_int !written);
            ]);
  Pools.free (Vmm.pools t.vmm) r.r_dram_phys;
  Hashtbl.remove t.by_frame r.r_dram_phys;
  t.demotes <- t.demotes + 1

(** Demote every resident belonging to [pid] — must run before the
    process's pages are unmapped (a munmap of a promoted page would
    free the DRAM frame and leak the reserved PCM home). *)
let drop_process (t : t) ~(pid : int) ~(charge_copy : bytes:int -> unit) : unit =
  let mine =
    Hashtbl.fold (fun _ r acc -> if r.r_pid = pid then r :: acc else acc) t.by_frame []
    |> List.sort (fun a b -> compare a.r_dram_phys b.r_dram_phys)
  in
  List.iter (fun r -> demote t r ~charge_copy) mine

(** Demote every resident (turning migration off mid-run). *)
let drop_all (t : t) ~(charge_copy : bytes:int -> unit) : unit =
  let all =
    Hashtbl.fold (fun _ r acc -> r :: acc) t.by_frame []
    |> List.sort (fun a b -> compare a.r_dram_phys b.r_dram_phys)
  in
  List.iter (fun r -> demote t r ~charge_copy) all

(* ---- promotion -------------------------------------------------------- *)

let promote (t : t) (proc : Vmm.process) ~(virt : int) ~(pcm_phys : int)
    ~(charge_copy : bytes:int -> unit) : unit =
  let pools = Vmm.pools t.vmm in
  (* leave the last frame for the interrupt handler's swap-in fallback *)
  if Pools.free_dram_count pools <= 1 then t.promote_skips <- t.promote_skips + 1
  else
    match Pools.alloc_dram pools with
    | None -> t.promote_skips <- t.promote_skips + 1
    | Some frame ->
        Vmm.migrate t.vmm proc ~virt ~new_phys:frame;
        Hashtbl.replace t.by_frame frame
          {
            r_pid = proc.Vmm.pid;
            r_virt = virt;
            r_pcm_phys = pcm_phys;
            r_dram_phys = frame;
            dirty = Bitset.create Geometry.lines_per_page;
            content = Bytes.make Geometry.page_bytes '\000';
            dram_writes = 0;
          };
        Hashtbl.remove t.heat (proc.Vmm.pid, virt);
        t.promotes <- t.promotes + 1;
        charge_copy ~bytes:Geometry.page_bytes;
        if Trace.armed t.tracer then
          Trace.instant t.tracer ~tid:Trace.tid_osal "page_promote"
            ~args:[ ("virt", float_of_int virt); ("frame", float_of_int frame) ]

(* ---- the epoch clock -------------------------------------------------- *)

let epoch_tick (t : t) ~(charge_copy : bytes:int -> unit) : unit =
  t.tick <- t.tick + 1;
  if t.tick >= t.epoch then begin
    t.tick <- 0;
    t.epochs <- t.epochs + 1;
    Hashtbl.filter_map_inplace
      (fun _ c -> if c / 2 = 0 then None else Some (c / 2))
      t.heat;
    let cold =
      Hashtbl.fold
        (fun _ (r : resident) acc ->
          if r.dram_writes < max 2 (t.promote_threshold / 2) then r :: acc else acc)
        t.by_frame []
      |> List.sort (fun a b -> compare a.r_dram_phys b.r_dram_phys)
    in
    List.iter (fun r -> demote t r ~charge_copy) cold;
    Hashtbl.iter (fun _ (r : resident) -> r.dram_writes <- 0) t.by_frame
  end

(** A charged line write that reached the PCM path: bump the page's
    heat and promote it when it crosses the threshold. *)
let note_pcm_write (t : t) (proc : Vmm.process) ~(virt : int) ~(pcm_phys : int)
    ~(charge_copy : bytes:int -> unit) : unit =
  let key = (proc.Vmm.pid, virt) in
  let c = (match Hashtbl.find_opt t.heat key with Some c -> c | None -> 0) + 1 in
  Hashtbl.replace t.heat key c;
  if c >= t.promote_threshold then promote t proc ~virt ~pcm_phys ~charge_copy;
  epoch_tick t ~charge_copy

(** A charged line write whose translation landed in DRAM.  Returns
    [true] when the frame is a tier resident (the write was absorbed
    by the policy and the line dirtied); [false] for frames the
    interrupt handler swapped in, which the tier does not manage. *)
let note_dram_write (t : t) ~(phys : int) ~(line : int) ~(payload : Bytes.t)
    ~(charge_copy : bytes:int -> unit) : bool =
  match Hashtbl.find_opt t.by_frame phys with
  | None -> false
  | Some r ->
      Bitset.set r.dirty line;
      Bytes.blit payload 0 r.content (line * Geometry.line_bytes) Geometry.line_bytes;
      r.dram_writes <- r.dram_writes + 1;
      t.dram_writes <- t.dram_writes + 1;
      epoch_tick t ~charge_copy;
      true

(* ---- verifier support ------------------------------------------------- *)

(** Corrupt the residency map (tests only: the verifier must catch it). *)
let unsafe_poke (t : t) : unit =
  match
    Hashtbl.fold (fun _ r acc -> match acc with None -> Some r | some -> some) t.by_frame None
  with
  | Some r ->
      (* point the reserved PCM home back into the DRAM range: the
         round-trip invariant (home stays a reserved PCM page) breaks *)
      Hashtbl.remove t.by_frame r.r_dram_phys;
      Hashtbl.replace t.by_frame r.r_dram_phys { r with r_pcm_phys = r.r_dram_phys }
  | None ->
      (* no resident yet: invent one — every invariant fails on it *)
      Hashtbl.replace t.by_frame 0
        {
          r_pid = -1;
          r_virt = -1;
          r_pcm_phys = t.dram_pages;
          r_dram_phys = 0;
          dirty = Bitset.create Geometry.lines_per_page;
          content = Bytes.make Geometry.page_bytes '\000';
          dram_writes = 0;
        }
