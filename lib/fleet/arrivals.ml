(** Open-loop request arrival processes for fleet tenants.

    Serving systems are driven open-loop: requests arrive on their own
    schedule whether or not the server keeps up, which is exactly what
    exposes queueing delay when a tenant's device ages and its GC/retire
    work inflates service times.  Two processes are provided: plain
    Poisson (exponential inter-arrival gaps) and a two-state MMPP
    (Markov-modulated Poisson) that alternates between a calm state at
    the base rate and a burst state at [burst ×] the base rate, with
    exponentially distributed state dwell times — the standard bursty
    open-loop model.

    All sampling draws from an explicit {!Holes_stdx.Xrng.t}, so a
    tenant's arrival schedule is a pure function of its seed. *)

open Holes_stdx

type process =
  | Poisson of { rate : float }  (** requests per second *)
  | Mmpp of { rate : float; burst : float; dwell_ms : float }
      (** calm rate [rate] req/s, burst rate [rate *. burst], exponential
          state dwell with mean [dwell_ms] *)

let validate (p : process) : (unit, string) result =
  match p with
  | Poisson { rate } ->
      if rate <= 0.0 then Error "arrival rate must be positive" else Ok ()
  | Mmpp { rate; burst; dwell_ms } ->
      if rate <= 0.0 then Error "arrival rate must be positive"
      else if burst < 1.0 then Error "burst factor must be >= 1"
      else if dwell_ms <= 0.0 then Error "dwell must be positive"
      else Ok ()

(** Parse a CLI spec: ["poisson:RATE"], ["mmpp:RATE:BURST:DWELL_MS"], or
    a bare number (Poisson).  Inverse of {!to_cli}. *)
let of_cli (s : string) : (process, string) result =
  let num v = float_of_string_opt v in
  let parsed =
    match String.split_on_char ':' s with
    | [ "poisson"; r ] -> Option.map (fun rate -> Poisson { rate }) (num r)
    | [ "mmpp"; r; b; d ] -> (
        match (num r, num b, num d) with
        | Some rate, Some burst, Some dwell_ms -> Some (Mmpp { rate; burst; dwell_ms })
        | _ -> None)
    | [ r ] -> Option.map (fun rate -> Poisson { rate }) (num r)
    | _ -> None
  in
  match parsed with
  | None -> Error (Printf.sprintf "cannot parse arrival process %S" s)
  | Some p -> ( match validate p with Ok () -> Ok p | Error e -> Error e)

let to_cli (p : process) : string =
  match p with
  | Poisson { rate } -> Printf.sprintf "poisson:%g" rate
  | Mmpp { rate; burst; dwell_ms } -> Printf.sprintf "mmpp:%g:%g:%g" rate burst dwell_ms

(** Compact name for configuration labels (no [':'], sink-friendly). *)
let name (p : process) : string =
  match p with
  | Poisson { rate } -> Printf.sprintf "poisson%g" rate
  | Mmpp { rate; burst; dwell_ms } -> Printf.sprintf "mmpp%gx%gd%g" rate burst dwell_ms

(** Time-averaged request rate (req/s); MMPP states have equal mean
    dwell, so the average is the midpoint of the two rates. *)
let mean_rate (p : process) : float =
  match p with
  | Poisson { rate } -> rate
  | Mmpp { rate; burst; _ } -> rate *. (1.0 +. burst) /. 2.0

type t = {
  proc : process;
  rng : Xrng.t;
  mutable bursting : bool;
  mutable dwell_left_ns : float;  (** time left in the current MMPP state *)
}

let make (proc : process) (rng : Xrng.t) : t =
  let dwell_left_ns =
    match proc with
    | Poisson _ -> infinity
    | Mmpp { dwell_ms; _ } -> Dist.exponential rng ~mean:(dwell_ms *. 1e6)
  in
  { proc; rng; bursting = false; dwell_left_ns }

(** Nanoseconds until the next arrival.  For MMPP, a gap that overruns
    the current state's dwell advances to the state boundary, switches
    state and resamples — the exponential is memoryless, so restarting
    the gap at the boundary under the new rate is exact. *)
let rec next_gap_ns (t : t) : float =
  match t.proc with
  | Poisson { rate } -> Dist.exponential t.rng ~mean:(1e9 /. rate)
  | Mmpp { rate; burst; dwell_ms } ->
      let r = if t.bursting then rate *. burst else rate in
      let gap = Dist.exponential t.rng ~mean:(1e9 /. r) in
      if gap <= t.dwell_left_ns then begin
        t.dwell_left_ns <- t.dwell_left_ns -. gap;
        gap
      end
      else begin
        let consumed = t.dwell_left_ns in
        t.bursting <- not t.bursting;
        t.dwell_left_ns <- Dist.exponential t.rng ~mean:(dwell_ms *. 1e6);
        consumed +. next_gap_ns t
      end
