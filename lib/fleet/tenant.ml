(** One serving tenant: the request-level workload driven against a
    tenant VM.

    A tenant alternates between {e sessions} — a block of session state
    allocated up front and kept live for a sampled number of requests —
    and {e requests}: an allocation burst whose objects mostly die at
    request end, with a small retained fraction joining the session
    state (caches, accumulated results).  Mutation wires fresh objects
    into the session graph, exercising the write barrier and remembered
    set exactly as {!Holes_workload.Generator} does.  Object sizes reuse
    the profile's size mix, so the tenant stresses the same
    small/medium/LOS paths as the batch workloads.

    Service time is the VM's cost-model delta across the request — GC
    pauses, hole skips, device retirement work and all — which is what
    the fleet simulator turns into queueing delay. *)

open Holes_stdx
module Generator = Holes_workload.Generator
module Profile = Holes_workload.Profile

type params = {
  profile : Profile.t;  (** size mix and mutation behaviour *)
  req_bytes : int;  (** mean bytes allocated per request *)
  session_requests : int;  (** mean requests per session *)
  session_bytes : int;  (** session state allocated at session start *)
  retain_frac : float;  (** fraction of request objects joining the session *)
}

let default_profile : Profile.t =
  Profile.make ~name:"serving"
    ~description:"session-oriented serving tenant (request bursts over session state)"
    ~live_kb:48 ~immortal_kb:8 ~volume_mb:1 ()

let default : params =
  {
    profile = default_profile;
    req_bytes = 24 * 1024;
    session_requests = 20;
    session_bytes = 8 * 1024;
    retain_frac = 0.05;
  }

(** Compact parameter rendering for fleet cell names (seed/cache-key
    material: every field that changes tenant behaviour appears). *)
let name (p : params) : string =
  Printf.sprintf "%s,rq%d,sr%d,sb%d,rf%g" p.profile.Profile.name p.req_bytes
    p.session_requests p.session_bytes p.retain_frac

type t = {
  params : params;
  rng : Xrng.t;
  dist : Generator.category Dist.Discrete.t;
  mutable session : int list;  (** live session object ids, newest first *)
  mutable session_left : int;  (** requests before the session turns over *)
}

let make (params : params) (rng : Xrng.t) : t =
  {
    params;
    rng;
    dist = Generator.category_dist params.profile;
    session = [];
    session_left = 0;
  }

(** Forget all VM-specific state (object ids die with the VM).  Called
    on eviction, before the tenant is re-placed on a fresh VM. *)
let reset (t : t) : unit =
  t.session <- [];
  t.session_left <- 0

type outcome = { service_ns : float; gc_ns : float }

(* Session turnover: kill the old session state, then allocate the new
   session's base working set. *)
let begin_session (t : t) (vm : Holes.Vm.t) : unit =
  List.iter (Holes.Vm.kill vm) t.session;
  t.session <- [];
  t.session_left <-
    1 + int_of_float (Dist.exponential t.rng ~mean:(float_of_int t.params.session_requests));
  let acc = ref 0 in
  while !acc < t.params.session_bytes do
    let size = Generator.sample_size t.rng t.params.profile t.dist in
    let id = Holes.Vm.alloc vm ~size () in
    t.session <- id :: t.session;
    acc := !acc + size
  done

(** Serve one request on [vm]: session management, then an allocation
    burst of ~[req_bytes] with mutation into the session graph; request
    locals are killed at request end.  Returns the modeled service time
    (cost delta, ≥ 1 ns).  An OOM anywhere aborts the request — the VM
    must be considered unusable and the caller evicts the tenant. *)
let serve (t : t) (vm : Holes.Vm.t) : (outcome, [ `Oom ]) result =
  let cost = Holes.Vm.cost vm in
  let t0 = Holes.Cost.total_ns cost and g0 = Holes.Cost.gc_ns cost in
  match
    if t.session_left <= 0 then begin_session t vm;
    t.session_left <- t.session_left - 1;
    let target =
      1 + int_of_float (Dist.exponential t.rng ~mean:(float_of_int t.params.req_bytes))
    in
    let locals = ref [] in
    let nsession = ref (List.length t.session) in
    let acc = ref 0 in
    while !acc < target do
      let size = Generator.sample_size t.rng t.params.profile t.dist in
      let id = Holes.Vm.alloc vm ~size () in
      if !nsession > 0 && Xrng.float t.rng < t.params.profile.Profile.mutation_rate then begin
        let src = List.nth t.session (Xrng.int t.rng !nsession) in
        Holes.Vm.write_ref vm ~src ~dst:id
      end;
      if Xrng.float t.rng < t.params.retain_frac then begin
        t.session <- id :: t.session;
        incr nsession
      end
      else locals := id :: !locals;
      acc := !acc + size
    done;
    List.iter (Holes.Vm.kill vm) !locals
  with
  | () ->
      Ok
        {
          service_ns = Float.max 1.0 (Holes.Cost.total_ns cost -. t0);
          gc_ns = Holes.Cost.gc_ns cost -. g0;
        }
  | exception Holes.Vm.Out_of_memory -> Error `Oom
