(** One pooled device and the tenant VMs placed on it.

    The pool owns a shared {!Holes.Memory_backend.node} — the PCM
    module, its VMM and interrupt handler — sized for [slots] tenants
    plus placement slack, and a slot per tenant.  Each slot's VM is a
    full failure-aware process attached to the node
    ({!Holes.Vm.create}[ ~node]); tenants therefore share the device's
    pools, wear state and interrupt chain, and a tenant on a dying
    device really does inherit its neighbours' damage.

    End-of-life handling: a request that OOMs marks the tenant for
    eviction — the VM is {!Holes.Memory_backend.detach}ed (its pages
    return to the node's pools; their wear persists) and a fresh VM is
    placed on the same node.  After [max_replacements] placements, or
    when the node can no longer back a heap, the slot is permanently
    dead and its arrivals are dropped.  Cross-device migration is
    deliberately out of scope: devices are the determinism shards
    ({!Sim}), so tenants never leave their device. *)

open Holes_stdx
module Pcm = Holes_pcm
module Osal = Holes_osal
module Trace = Holes_obs.Trace
module Profile = Holes_workload.Profile

type slot = {
  tenant : Tenant.t;
  mutable vm : Holes.Vm.t option;  (** [None] = permanently dead *)
  mutable replacements : int;
}

type t = {
  cfg : Holes.Config.t;
  node : Holes.Memory_backend.node;
  slots : slot array;
  min_heap_bytes : int;
  max_replacements : int;
  srng : Xrng.t;  (** storm injection stream *)
  mutable storm_stamp : int;
      (** monotone content stamp for storm payloads under a caram store
          (identical junk would be absorbed as a single-byte pattern and
          wear nothing); untouched — and unread — when caram is off *)
  mutable evictions : int;
  gc_pause : Holes_obs.Stats.hist;
      (** GC pauses (full + nursery, ns) of tenants already evicted —
          their VMs are detached, so the histograms are harvested here
          before the metrics go away *)
  mutable inc_active : bool;  (** any tenant ran with a GC increment budget *)
}

(* Replicate Vm.create's heap sizing so the device can be provisioned
   before any VM exists: heap_factor × min_heap in pages, grown to
   h/(1-f) under compensation. *)
let pages_per_tenant (cfg : Holes.Config.t) ~(min_heap_bytes : int) : int =
  let page_bytes = Pcm.Geometry.page_bytes in
  let heap_bytes =
    int_of_float (cfg.Holes.Config.heap_factor *. float_of_int min_heap_bytes)
  in
  let base = (heap_bytes + page_bytes - 1) / page_bytes in
  if cfg.Holes.Config.compensate && cfg.Holes.Config.failure_rate > 0.0 then
    int_of_float (ceil (float_of_int base /. (1.0 -. cfg.Holes.Config.failure_rate)))
  else base

let place (t : t) : Holes.Vm.t option =
  match Holes.Vm.create ~cfg:t.cfg ~node:t.node ~min_heap_bytes:t.min_heap_bytes () with
  | vm -> Some vm
  | exception Holes.Vm.Out_of_memory -> None

(** Bring up the device node (sized for [slots] tenants + 25% placement
    slack) and place one VM per tenant.  [rng] seeds the per-tenant
    sampling streams and the storm stream, in slot order. *)
let create ?(tracer = Trace.null) ~(cfg : Holes.Config.t) ~(tenant : Tenant.params)
    ~(slots : int) ?(max_replacements = 3) ~(rng : Xrng.t) () : t =
  let params =
    match cfg.Holes.Config.backend with
    | Holes.Config.Device d -> d
    | Holes.Config.Static -> invalid_arg "Fleet.Pool.create: requires the device backend"
  in
  (* per-tenant DRAM provisioning: a pooled node hosting [slots] tenants
     scales its migration-target DRAM by the tenant count, so each
     tenant sees the same frame budget a dedicated device would give it
     (plus the shared swap-in reserve).  Without migration the node
     keeps the configured frame count — provisioning DRAM nobody can
     use would only change page numbering. *)
  let params =
    if cfg.Holes.Config.hybrid.Pcm.Hybrid.migrate_epoch = None then params
    else { params with Holes.Config.dram_pages = params.Holes.Config.dram_pages * slots }
  in
  let min_heap_bytes = Profile.min_heap tenant.Tenant.profile in
  let ppt = pages_per_tenant cfg ~min_heap_bytes in
  let device_pages = (slots * ppt * 5) / 4 in
  let node = Holes.Memory_backend.create_node ~tracer ~cfg ~params ~device_pages () in
  let t =
    {
      cfg;
      node;
      slots = [||];
      min_heap_bytes;
      max_replacements;
      srng = Xrng.split rng;
      storm_stamp = 0;
      evictions = 0;
      gc_pause = Holes_obs.Stats.hist ();
      inc_active = false;
    }
  in
  let slots =
    Array.init slots (fun _ ->
        let tenant = Tenant.make tenant (Xrng.split rng) in
        { tenant; vm = place t; replacements = 0 })
  in
  { t with slots }

let alive (t : t) (i : int) : bool = t.slots.(i).vm <> None
let dead_tenants (t : t) : int = Array.fold_left (fun n s -> if s.vm = None then n + 1 else n) 0 t.slots
let evictions (t : t) : int = t.evictions
let node (t : t) : Holes.Memory_backend.node = t.node
let tenant (t : t) (i : int) : Tenant.t = t.slots.(i).tenant
let vm (t : t) (i : int) : Holes.Vm.t option = t.slots.(i).vm

(** Evict slot [i]: detach its VM from the node and try to place a
    replacement.  The slot goes permanently dead when its replacement
    budget is spent or the node cannot back another heap. *)
(* Fold one VM's pause histograms (and its incremental flag) into the
   pool accumulator.  Called at eviction and again for the survivors at
   harvest time. *)
let absorb_pauses (t : t) (vm : Holes.Vm.t) : unit =
  let m = Holes.Vm.metrics vm in
  Holes_obs.Stats.merge t.gc_pause m.Holes.Metrics.pause_hist;
  Holes_obs.Stats.merge t.gc_pause m.Holes.Metrics.nursery_pause_hist;
  if m.Holes.Metrics.inc_active then t.inc_active <- true

let evict (t : t) (i : int) : unit =
  let s = t.slots.(i) in
  match s.vm with
  | None -> ()
  | Some vm ->
      absorb_pauses t vm;
      (match Holes.Vm.device_state vm with
      | Some st -> Holes.Memory_backend.detach st
      | None -> ());
      s.vm <- None;
      Tenant.reset s.tenant;
      t.evictions <- t.evictions + 1;
      s.replacements <- s.replacements + 1;
      if s.replacements <= t.max_replacements then s.vm <- place t

(** Serve one request on slot [i].  An OOM evicts the tenant and fails
    the request: [`Evicted] if a replacement VM was placed (the next
    request will be served fresh), [`Dead] if the slot is out of
    lives. *)
let serve (t : t) (i : int) : (Tenant.outcome, [ `Evicted | `Dead ]) result =
  let s = t.slots.(i) in
  match s.vm with
  | None -> Error `Dead
  | Some vm -> (
      match Tenant.serve s.tenant vm with
      | Ok o -> Ok o
      | Error `Oom ->
          evict t i;
          if s.vm = None then Error `Dead else Error `Evicted)

(* A retirement upcall during a storm can drive a tenant VM out of
   memory (evacuating the failed line's objects needs space).  The
   raiser sets its metrics flag before raising, so after swallowing the
   exception the damaged slot is found by flag sweep and evicted. *)
let sweep_oom (t : t) : unit =
  Array.iteri
    (fun i s ->
      match s.vm with
      | Some vm when (Holes.Vm.metrics vm).Holes.Metrics.out_of_memory -> evict t i
      | _ -> ())
    t.slots

(** A failure storm: [writes] junk line-stores sprayed uniformly over
    the device's usable lines, wearing them toward failure; the
    interrupt chain is drained so retirements reach the owning tenants
    before the next event.  Models background damage — scrubbing
    traffic, a failing controller, a noisy neighbour outside the
    fleet. *)
let storm (t : t) ~(writes : int) : unit =
  let dev = t.node.Holes.Memory_backend.n_device in
  let irq = t.node.Holes.Memory_backend.n_interrupts in
  let nlines = Pcm.Device.nlines dev in
  let payload = Bytes.make Pcm.Geometry.line_bytes '\xEE' in
  let caram_on = Pcm.Device.caram dev <> None in
  (try
     for _ = 1 to writes do
       let l = Xrng.int t.srng nlines in
       (* under a content store, constant junk compresses to a pattern
          binding and wears nothing; stamp each store unique so the
          storm keeps its wear pressure (no extra RNG draws, and the
          payload is untouched when caram is off) *)
       if caram_on then begin
         t.storm_stamp <- t.storm_stamp + 1;
         Bytes.set_int64_le payload 0 (Int64.of_int t.storm_stamp);
         Bytes.set_int64_le payload 8 (Int64.of_int l)
       end;
       if Pcm.Device.line_usable dev l then
         match Pcm.Device.write dev l payload with
         | Pcm.Device.Stored | Pcm.Device.Write_failed -> ()
         | Pcm.Device.Stalled ->
             (* failure-buffer pressure: drain and drop this store *)
             ignore (Osal.Interrupts.service irq)
     done;
     ignore (Osal.Interrupts.service irq)
   with Holes.Vm.Out_of_memory -> ());
  sweep_oom t

(** GC-pause histogram (full + nursery, ns) across every tenant the
    device has hosted: VMs harvested at eviction plus the current
    residents.  Returns a fresh histogram; the pool is unchanged, so
    calling this mid-run is safe. *)
let gc_pause_hist (t : t) : Holes_obs.Stats.hist =
  let h = Holes_obs.Stats.copy t.gc_pause in
  Array.iter
    (fun s ->
      match s.vm with
      | Some vm ->
          let m = Holes.Vm.metrics vm in
          Holes_obs.Stats.merge h m.Holes.Metrics.pause_hist;
          Holes_obs.Stats.merge h m.Holes.Metrics.nursery_pause_hist
      | None -> ())
    t.slots;
  h

(** Whether any tenant (evicted or resident) ran with a GC increment
    budget — gates the pause fields in the fleet JSONL so stop-the-world
    runs keep their historical record shape. *)
let inc_active (t : t) : bool =
  t.inc_active
  || Array.exists
       (fun s ->
         match s.vm with
         | Some vm -> (Holes.Vm.metrics vm).Holes.Metrics.inc_active
         | None -> false)
       t.slots

(** Wear statistics of the pooled device at this instant. *)
let wear_cov (t : t) : float = Pcm.Device.wear_cov t.node.Holes.Memory_backend.n_device

let device_stats (t : t) : Pcm.Device.stats =
  Pcm.Device.stats t.node.Holes.Memory_backend.n_device

(** Whether the node runs any tiering mechanism — gates the hybrid
    fields in the fleet JSONL, like {!inc_active} for pauses. *)
let hybrid_active (t : t) : bool =
  not (Pcm.Hybrid.is_none t.node.Holes.Memory_backend.n_hybrid)

(** Hot-page migration counters of the node's tier, when migration is on. *)
let tier_stats (t : t) : Osal.Tier.stats option =
  Option.map Osal.Tier.stats t.node.Holes.Memory_backend.n_tier

(** Content-store counters of the node's device, when caram is on. *)
let caram_stats (t : t) : Pcm.Caram.stats option =
  Option.map Pcm.Caram.stats (Pcm.Device.caram t.node.Holes.Memory_backend.n_device)
