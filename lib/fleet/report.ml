(** Fleet-run reporting: per-device partial results and their
    order-stable merge into the fleet-wide report.

    A fleet run shards by device ({!Sim}); each shard accumulates a
    [partial] — request counts, the request-latency histogram (whole run
    and per age epoch), device wear and tenant-lifecycle counters — and
    the driver folds the partials in device-index order, so the merged
    report is bit-identical at any [-j].  Latencies are recorded in
    virtual nanoseconds ({!Holes_obs.Stats.hist} log₂ buckets) and
    reported in milliseconds. *)

module Stats = Holes_obs.Stats

type partial = {
  device_index : int;
  mutable arrived : int;  (** requests generated for live tenants *)
  mutable completed : int;  (** requests served to completion *)
  mutable good : int;  (** completed within the SLO *)
  mutable dropped : int;  (** arrivals to permanently dead tenants *)
  mutable failed : int;  (** requests aborted by OOM/eviction *)
  latency : Stats.hist;  (** completion latency, ns *)
  epoch : Stats.hist array;  (** latency split by completion-time epoch *)
  mutable gc_ns : float;  (** collector time across the device's tenants *)
  gc_pause : Stats.hist;
      (** individual GC pauses (full/increment + nursery, ns) across the
          device's tenants, evicted and surviving *)
  mutable inc_active : bool;
      (** any tenant ran with a GC increment budget; gates the pause
          fields so stop-the-world records keep their historical shape *)
  mutable wear_cov : float;  (** within-device wear CoV at run end *)
  mutable device_writes : int;
  mutable device_failures : int;
  mutable evictions : int;
  mutable dead_tenants : int;  (** slots with no replacement left *)
  mutable end_ns : int;  (** virtual time when the device's queue drained *)
  mutable hybrid_active : bool;
      (** the node runs a tiering mechanism; gates the hyb_* fields so
          untiered records keep their historical shape *)
  mutable hyb_promotes : int;
  mutable hyb_demotes : int;
  mutable hyb_dram_writes : int;  (** writes absorbed by promoted DRAM frames *)
  mutable hyb_dedup_hits : int;  (** writes absorbed by content dedup *)
  mutable hyb_compressed : int;  (** writes absorbed as single-byte patterns *)
}

let partial ~(device_index : int) ~(epochs : int) : partial =
  {
    device_index;
    arrived = 0;
    completed = 0;
    good = 0;
    dropped = 0;
    failed = 0;
    latency = Stats.hist ();
    epoch = Array.init (max 1 epochs) (fun _ -> Stats.hist ());
    gc_ns = 0.0;
    gc_pause = Stats.hist ();
    inc_active = false;
    wear_cov = 0.0;
    device_writes = 0;
    device_failures = 0;
    evictions = 0;
    dead_tenants = 0;
    end_ns = 0;
    hybrid_active = false;
    hyb_promotes = 0;
    hyb_demotes = 0;
    hyb_dram_writes = 0;
    hyb_dedup_hits = 0;
    hyb_compressed = 0;
  }

let ns_to_ms (ns : float) : float = ns /. 1e6

let quantiles_ms (h : Stats.hist) : float * float * float =
  (ns_to_ms (Stats.quantile h 0.50), ns_to_ms (Stats.quantile h 0.99), ns_to_ms (Stats.quantile h 0.999))

(** Flat metrics for the JSONL sink, one record per device shard. *)
let partial_fields (p : partial) : (string * float) list =
  let p50, p99, p999 = quantiles_ms p.latency in
  let per_epoch =
    List.concat
      (List.mapi
         (fun i h ->
           [
             (Printf.sprintf "epoch%d_p99_ms" i, ns_to_ms (Stats.quantile h 0.99));
             (Printf.sprintf "epoch%d_count" i, float_of_int (Stats.count h));
           ])
         (Array.to_list p.epoch))
  in
  [
    ("arrived", float_of_int p.arrived);
    ("completed", float_of_int p.completed);
    ("good", float_of_int p.good);
    ("dropped", float_of_int p.dropped);
    ("failed", float_of_int p.failed);
    ("lat_mean_ms", ns_to_ms (Stats.mean p.latency));
    ("lat_p50_ms", p50);
    ("lat_p99_ms", p99);
    ("lat_p999_ms", p999);
    ("lat_max_ms", ns_to_ms (Stats.max_value p.latency));
    ("gc_ms", ns_to_ms p.gc_ns);
    ("wear_cov", p.wear_cov);
    ("device_writes", float_of_int p.device_writes);
    ("device_failures", float_of_int p.device_failures);
    ("evictions", float_of_int p.evictions);
    ("dead_tenants", float_of_int p.dead_tenants);
    ("end_ms", ns_to_ms (float_of_int p.end_ns));
  ]
  @ (if not p.inc_active then []
     else
       [
         ("gc_pause_p99_ms", ns_to_ms (Stats.quantile ~interp:true p.gc_pause 0.99));
         ("gc_pause_max_ms", ns_to_ms (Stats.max_value p.gc_pause));
         ("gc_pause_count", float_of_int (Stats.count p.gc_pause));
       ])
  @ (if not p.hybrid_active then []
     else
       [
         ("hyb_promotes", float_of_int p.hyb_promotes);
         ("hyb_demotes", float_of_int p.hyb_demotes);
         ("hyb_dram_writes", float_of_int p.hyb_dram_writes);
         ("hyb_dedup_hits", float_of_int p.hyb_dedup_hits);
         ("hyb_compressed", float_of_int p.hyb_compressed);
       ])
  @ per_epoch

type t = {
  devices : int;
  tenants : int;
  duration_ms : float;
  arrived : int;
  completed : int;
  good : int;
  dropped : int;
  failed : int;
  latency : Stats.hist;
  epoch : Stats.hist array;
  throughput_rps : float;  (** completions per second of arrival window *)
  goodput_rps : float;  (** SLO-meeting completions per second *)
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  wear_cov_mean : float;  (** mean within-device wear CoV *)
  wear_cov_max : float;
  evictions : int;
  dead_tenants : int;
  device_writes : int;
  device_failures : int;
  gc_ms : float;
  gc_pause : Stats.hist;  (** individual GC pauses across the fleet, ns *)
  gc_pause_p99_ms : float;  (** interpolated p99 of [gc_pause] *)
  gc_pause_max_ms : float;  (** worst single mutator stall anywhere *)
  inc_active : bool;  (** any tenant ran incrementally *)
  hybrid_active : bool;  (** any device ran a tiering mechanism *)
  hyb_promotes : int;
  hyb_demotes : int;
  hyb_dram_writes : int;
  hyb_dedup_hits : int;
  hyb_compressed : int;
  hyb_absorption : float;
      (** fraction of the fleet's charged writes that never wore a PCM
          cell: (DRAM-absorbed + dedup + compressed)
          / (device writes + DRAM-absorbed) *)
}

(** Fold per-device partials (callers pass them in device-index order;
    every reduction here is order-insensitive anyway, so the merge is
    deterministic under any scheduling). *)
let merge ~(duration_ms : float) ~(tenants : int) (parts : partial list) : t =
  let devices = List.length parts in
  let sum (f : partial -> int) = List.fold_left (fun acc p -> acc + f p) 0 parts in
  let sumf (f : partial -> float) = List.fold_left (fun acc p -> acc +. f p) 0.0 parts in
  let latency = Stats.merged (List.map (fun (p : partial) -> p.latency) parts) in
  let epochs =
    List.fold_left (fun acc (p : partial) -> max acc (Array.length p.epoch)) 1 parts
  in
  let epoch =
    Array.init epochs (fun i ->
        Stats.merged
          (List.filter_map
             (fun (p : partial) -> if i < Array.length p.epoch then Some p.epoch.(i) else None)
             parts))
  in
  let completed = sum (fun p -> p.completed) in
  let good = sum (fun p -> p.good) in
  let dur_s = duration_ms /. 1e3 in
  let p50_ms, p99_ms, p999_ms = quantiles_ms latency in
  let gc_pause = Stats.merged (List.map (fun (p : partial) -> p.gc_pause) parts) in
  let hyb_dram_writes = sum (fun p -> p.hyb_dram_writes) in
  let hyb_dedup_hits = sum (fun p -> p.hyb_dedup_hits) in
  let hyb_compressed = sum (fun p -> p.hyb_compressed) in
  let device_writes = sum (fun p -> p.device_writes) in
  let charged = device_writes + hyb_dram_writes in
  {
    devices;
    tenants;
    duration_ms;
    arrived = sum (fun p -> p.arrived);
    completed;
    good;
    dropped = sum (fun p -> p.dropped);
    failed = sum (fun p -> p.failed);
    latency;
    epoch;
    throughput_rps = (if dur_s > 0.0 then float_of_int completed /. dur_s else 0.0);
    goodput_rps = (if dur_s > 0.0 then float_of_int good /. dur_s else 0.0);
    p50_ms;
    p99_ms;
    p999_ms;
    wear_cov_mean =
      (if devices = 0 then 0.0 else sumf (fun p -> p.wear_cov) /. float_of_int devices);
    wear_cov_max =
      List.fold_left (fun acc (p : partial) -> Float.max acc p.wear_cov) 0.0 parts;
    evictions = sum (fun p -> p.evictions);
    dead_tenants = sum (fun p -> p.dead_tenants);
    device_writes;
    device_failures = sum (fun p -> p.device_failures);
    gc_ms = ns_to_ms (sumf (fun p -> p.gc_ns));
    gc_pause;
    gc_pause_p99_ms = ns_to_ms (Stats.quantile ~interp:true gc_pause 0.99);
    gc_pause_max_ms = ns_to_ms (Stats.max_value gc_pause);
    inc_active = List.exists (fun (p : partial) -> p.inc_active) parts;
    hybrid_active = List.exists (fun (p : partial) -> p.hybrid_active) parts;
    hyb_promotes = sum (fun p -> p.hyb_promotes);
    hyb_demotes = sum (fun p -> p.hyb_demotes);
    hyb_dram_writes;
    hyb_dedup_hits;
    hyb_compressed;
    hyb_absorption =
      (if charged = 0 then 0.0
       else
         float_of_int (hyb_dram_writes + hyb_dedup_hits + hyb_compressed)
         /. float_of_int charged);
  }

(** Flat metrics of the merged report (figure rows, tests). *)
let fields (t : t) : (string * float) list =
  [
    ("devices", float_of_int t.devices);
    ("tenants", float_of_int t.tenants);
    ("arrived", float_of_int t.arrived);
    ("completed", float_of_int t.completed);
    ("good", float_of_int t.good);
    ("dropped", float_of_int t.dropped);
    ("failed", float_of_int t.failed);
    ("throughput_rps", t.throughput_rps);
    ("goodput_rps", t.goodput_rps);
    ("lat_p50_ms", t.p50_ms);
    ("lat_p99_ms", t.p99_ms);
    ("lat_p999_ms", t.p999_ms);
    ("wear_cov_mean", t.wear_cov_mean);
    ("wear_cov_max", t.wear_cov_max);
    ("evictions", float_of_int t.evictions);
    ("dead_tenants", float_of_int t.dead_tenants);
    ("device_writes", float_of_int t.device_writes);
    ("device_failures", float_of_int t.device_failures);
    ("gc_ms", t.gc_ms);
  ]
  @ (if not t.inc_active then []
     else
       [
         ("gc_pause_p99_ms", t.gc_pause_p99_ms);
         ("gc_pause_max_ms", t.gc_pause_max_ms);
         ("gc_pause_count", float_of_int (Stats.count t.gc_pause));
       ])
  @ (if not t.hybrid_active then []
     else
       [
         ("hyb_promotes", float_of_int t.hyb_promotes);
         ("hyb_demotes", float_of_int t.hyb_demotes);
         ("hyb_dram_writes", float_of_int t.hyb_dram_writes);
         ("hyb_dedup_hits", float_of_int t.hyb_dedup_hits);
         ("hyb_compressed", float_of_int t.hyb_compressed);
         ("hyb_absorption", t.hyb_absorption);
       ])
  @ List.concat
      (List.mapi
         (fun i h -> [ (Printf.sprintf "epoch%d_p99_ms" i, ns_to_ms (Stats.quantile h 0.99)) ])
         (Array.to_list t.epoch))

let pp (ppf : Format.formatter) (t : t) : unit =
  let pauses ppf =
    if Stats.count t.gc_pause > 0 then
      Format.fprintf ppf "@,gc pauses: %d recorded, p99 %.3f ms, max %.3f ms"
        (Stats.count t.gc_pause) t.gc_pause_p99_ms t.gc_pause_max_ms;
    if t.hybrid_active then
      Format.fprintf ppf
        "@,hybrid: %d promotes, %d demotes; absorbed %d DRAM + %d dedup + %d compressed \
         (%.1f%% of writes)"
        t.hyb_promotes t.hyb_demotes t.hyb_dram_writes t.hyb_dedup_hits t.hyb_compressed
        (100.0 *. t.hyb_absorption)
  in
  Format.fprintf ppf
    "@[<v>fleet: %d tenants over %d devices, %.0f ms window@,\
     requests: %d arrived, %d completed, %d good (SLO), %d failed, %d dropped@,\
     throughput: %.1f req/s (goodput %.1f)@,\
     latency: p50 %.3f ms, p99 %.3f ms, p999 %.3f ms@,\
     wear CoV: mean %.4f, max %.4f@,\
     lifecycle: %d evictions, %d dead tenants@,\
     device: %d writes, %d wear failures; gc %.2f ms%t@]" t.tenants t.devices t.duration_ms
    t.arrived t.completed t.good t.failed t.dropped t.throughput_rps t.goodput_rps t.p50_ms
    t.p99_ms t.p999_ms t.wear_cov_mean t.wear_cov_max t.evictions t.dead_tenants
    t.device_writes t.device_failures t.gc_ms pauses
