(** A trial-job specification: one point of an experiment grid.

    The job carries everything a worker needs to run the trial — the
    collector configuration, the workload profile, the volume scale and
    the trial's index within its multi-seed group — and derives the
    trial's random seed *from the spec alone*.  Scheduling (which domain,
    in what order, alongside what) can therefore never influence a
    trial's result: [-j 1] and [-j 8] produce bit-identical outcomes. *)

type spec = {
  cfg : Holes.Config.t;
  profile : Holes_workload.Profile.t;
  scale : float;  (** workload volume scale (1.0 = full) *)
  seed_index : int;  (** trial number within the (cfg × profile) group *)
}

(* FNV-1a, 64-bit: a stable string hash — [Hashtbl.hash] truncates long
   strings and its value is not contractually stable across versions. *)
let fnv1a64 (s : string) : int64 =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

(* SplitMix64 finalizer: diffuses the hash so nearby seed indices do not
   produce correlated xoshiro streams. *)
let mix64 (z : int64) : int64 =
  let z = Int64.add z 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Deterministic per-trial seed: a hash of configuration name × profile
    name × base seed × seed index.  Depends only on the spec, never on
    scheduling. *)
let seed (s : spec) : int =
  let key =
    Printf.sprintf "%s|%s|%d|%d" (Holes.Config.name s.cfg)
      s.profile.Holes_workload.Profile.name s.cfg.Holes.Config.seed s.seed_index
  in
  (* mask to 62 bits so the result is a non-negative OCaml int *)
  Int64.to_int (Int64.logand (mix64 (fnv1a64 key)) 0x3FFFFFFFFFFFFFFFL)

(** Human-readable label for progress and error reporting. *)
let label (s : spec) : string =
  Printf.sprintf "%s/%s#%d" (Holes.Config.name s.cfg) s.profile.Holes_workload.Profile.name
    s.seed_index
