(** A fixed-size pool of worker domains fed by a mutex/condition work
    queue.

    The experiment grids are embarrassingly parallel — thousands of
    independent trials, each owning its VM outright — so the pool is
    deliberately simple: [create] spawns the workers once, [run_all]
    pushes a batch and blocks until every job has finished, [shutdown]
    drains and joins.  Exceptions raised by a job are captured per job
    ([Failed]) so one crashed trial never takes down a sweep or poisons
    the pool for later batches. *)

type task = { run : worker:int -> unit }

type t = {
  mutex : Mutex.t;
  has_work : Condition.t;
  queue : task Queue.t;
  mutable accepting : bool;
  mutable workers : unit Domain.t array;
}

(** One worker per spare core by default: the orchestrating domain keeps
    a core for planning, folding and the sink. *)
let default_domains () : int = max 1 (Domain.recommended_domain_count () - 1)

let domains (t : t) : int = Array.length t.workers

let worker_loop (t : t) (wid : int) : unit =
  let rec take () =
    match Queue.take_opt t.queue with
    | Some task -> Some task
    | None ->
        if t.accepting then begin
          Condition.wait t.has_work t.mutex;
          take ()
        end
        else None
  in
  let rec loop () =
    Mutex.lock t.mutex;
    let task = take () in
    Mutex.unlock t.mutex;
    match task with
    | None -> ()
    | Some task ->
        task.run ~worker:wid;
        loop ()
  in
  loop ()

let create ?(domains = default_domains ()) () : t =
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let t =
    {
      mutex = Mutex.create ();
      has_work = Condition.create ();
      queue = Queue.create ();
      accepting = true;
      workers = [||];
    }
  in
  t.workers <- Array.init domains (fun wid -> Domain.spawn (fun () -> worker_loop t wid));
  t

(** Submit one task.  Tasks must never raise: [run_all] wraps its jobs;
    raw submitters must do their own capture (an escaping exception would
    kill the worker domain). *)
let submit (t : t) (run : worker:int -> unit) : unit =
  Mutex.lock t.mutex;
  if not t.accepting then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push { run } t.queue;
  Condition.signal t.has_work;
  Mutex.unlock t.mutex

(** Outcome of one job: the value, or the captured exception. *)
type 'a outcome = Done of 'a | Failed of { exn : string; backtrace : string }

type 'a result = {
  value : 'a outcome;
  worker : int;  (** index of the domain that ran the job *)
  duration_s : float;  (** wall-clock seconds the job took *)
}

(** Run [f 0 .. f (n-1)] on the pool and block until all have finished.
    Results come back indexed by job — scheduling order never leaks into
    the result array.  [on_done i r] (if given) fires on the worker as
    each job completes, concurrently with other jobs; it must be
    thread-safe. *)
let run_all ?(on_done : (int -> 'a result -> unit) option) (t : t) ~(n : int)
    ~(f : int -> 'a) : 'a result array =
  if n < 0 then invalid_arg "Pool.run_all: negative job count";
  if n = 0 then [||]
  else begin
    let results : 'a result option array = Array.make n None in
    let batch_mutex = Mutex.create () in
    let batch_done = Condition.create () in
    let remaining = ref n in
    for i = 0 to n - 1 do
      submit t (fun ~worker ->
          let t0 = Unix.gettimeofday () in
          let value =
            match f i with
            | v -> Done v
            | exception e ->
                Failed { exn = Printexc.to_string e; backtrace = Printexc.get_backtrace () }
          in
          let r = { value; worker; duration_s = Unix.gettimeofday () -. t0 } in
          (match on_done with Some k -> k i r | None -> ());
          Mutex.lock batch_mutex;
          results.(i) <- Some r;
          decr remaining;
          if !remaining = 0 then Condition.signal batch_done;
          Mutex.unlock batch_mutex)
    done;
    Mutex.lock batch_mutex;
    while !remaining > 0 do
      Condition.wait batch_done batch_mutex
    done;
    Mutex.unlock batch_mutex;
    Array.map (function Some r -> r | None -> assert false) results
  end

(** Stop accepting work, drain the queue, join every worker.  Idempotent. *)
let shutdown (t : t) : unit =
  Mutex.lock t.mutex;
  let was_accepting = t.accepting in
  t.accepting <- false;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  if was_accepting then Array.iter Domain.join t.workers
