(** A trial-job specification: one point of an experiment grid.

    The job carries everything a worker needs to run the trial — the
    collector configuration, the workload profile, the volume scale and
    the trial's index within its multi-seed group — and derives the
    trial's random seed {e from the spec alone}.  Scheduling (which
    domain, in what order, alongside what) can therefore never influence
    a trial's result: [-j 1] and [-j 8] produce bit-identical
    outcomes. *)

type spec = {
  cfg : Holes.Config.t;  (** collector / failure configuration *)
  profile : Holes_workload.Profile.t;  (** workload profile *)
  scale : float;  (** workload volume scale (1.0 = full) *)
  seed_index : int;  (** trial number within the (cfg × profile) group *)
}
(** One planned trial.  Specs are plain data: they can be compared,
    hashed and shipped across domains freely. *)

val seed : spec -> int
(** Deterministic per-trial seed: a 62-bit non-negative hash of
    configuration name × profile name × base seed × seed index (FNV-1a
    diffused through a SplitMix64 finalizer).  Depends only on the spec,
    never on scheduling — the cornerstone of the engine's determinism
    contract. *)

val label : spec -> string
(** Human-readable ["config/profile#index"] label for progress lines,
    error reporting and trace process names. *)
