(** A fixed-size pool of worker domains fed by a mutex/condition work
    queue.

    The experiment grids are embarrassingly parallel — thousands of
    independent trials, each owning its VM outright — so the pool is
    deliberately simple: {!create} spawns the workers once, {!run_all}
    pushes a batch and blocks until every job has finished, {!shutdown}
    drains and joins.  Exceptions raised by a job are captured per job
    ({!constructor:Failed}) so one crashed trial never takes down a
    sweep or poisons the pool for later batches. *)

type t
(** A pool of worker domains.  Create with {!create}; the workers live
    until {!shutdown}. *)

val default_domains : unit -> int
(** One worker per spare core: [recommended_domain_count () - 1]
    (minimum 1).  The orchestrating domain keeps a core for planning,
    folding and the sink. *)

val create : ?domains:int -> unit -> t
(** [create ?domains ()] spawns [domains] worker domains (default
    {!default_domains}) that block on the shared queue.

    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int
(** Number of worker domains the pool was created with. *)

val submit : t -> (worker:int -> unit) -> unit
(** [submit t run] enqueues one raw task; [run] is called on some worker
    with that worker's index.  Tasks must never raise — {!run_all} wraps
    its jobs, but raw submitters must do their own capture (an escaping
    exception would kill the worker domain).

    @raise Invalid_argument if the pool has been {!shutdown}. *)

type 'a outcome =
  | Done of 'a  (** the job returned normally *)
  | Failed of { exn : string; backtrace : string }
      (** the job raised; the exception is rendered to strings so
          outcomes cross domains safely *)

(** Outcome of one job: the value, or the captured exception. *)

type 'a result = {
  value : 'a outcome;
  worker : int;  (** index of the domain that ran the job *)
  duration_s : float;  (** wall-clock seconds the job took *)
}
(** One job's outcome plus its scheduling facts (which never influence
    the value — see the determinism contract in [Engine]). *)

val run_all :
  ?on_done:(int -> 'a result -> unit) -> t -> n:int -> f:(int -> 'a) -> 'a result array
(** [run_all t ~n ~f] runs [f 0 .. f (n-1)] on the pool and blocks until
    all have finished.  Results come back indexed by job — scheduling
    order never leaks into the result array.  [on_done i r] (if given)
    fires on the worker as each job completes, concurrently with other
    jobs; it must be thread-safe.

    @raise Invalid_argument if [n < 0]. *)

val shutdown : t -> unit
(** Stop accepting work, drain the queue, join every worker.
    Idempotent. *)
