(** Thread-safe results sink: one JSONL record per completed trial plus
    a live completed/total progress line on stderr.

    Workers call {!record} concurrently as trials finish; a mutex orders
    the writes so every record lands on its own line.  Record order is
    completion order (scheduling-dependent); consumers that need the
    deterministic order sort by (config, profile, seed_index).  The JSON
    is emitted by hand — records are flat and the repo takes no JSON
    dependency.

    Record shape (one line each):
    {v
{"config":"...","profile":"...","seed":N,"seed_index":N,
 "worker":N,"duration_s":S,"outcome":"ok|oom|error","metrics":{...}}
    v}
    The [metrics] object carries the full metrics snapshot of the trial
    (see [Holes.Metrics.to_fields]) — every counter and histogram
    summary, not a verbosity-dependent subset. *)

type t
(** A sink.  Create with {!create}, feed with {!record}, finish with
    {!close}. *)

val create : ?path:string -> ?progress:bool -> unit -> t
(** [create ?path ?progress ()] opens [path] for JSONL output (no file
    is written when [path] is omitted) and enables the stderr progress
    line unless [progress] is [false]. *)

val plan : t -> int -> unit
(** Announce [n] more jobs (a newly planned grid), growing the progress
    denominator.  Thread-safe. *)

val completed : t -> int
(** Number of trials recorded so far.  Thread-safe. *)

val record :
  t ->
  config:string ->
  profile:string ->
  seed:int ->
  seed_index:int ->
  worker:int ->
  duration_s:float ->
  outcome:string ->
  metrics:(string * float) list ->
  unit
(** Record one finished trial as a single JSONL line and bump the
    progress counters.  Thread-safe; called from worker domains.
    Non-finite metric values are emitted as JSON [null]. *)

val close : t -> unit
(** Finish the progress line and close the JSONL channel. *)
