(** The experiment engine: plans a (configuration × profile × seed)
    grid, shards it across a {!Pool} of worker domains, and streams each
    completed trial to a {!Sink}.

    {b Determinism contract.}  A trial's result is a function of its
    {!Job.spec} alone — the seed comes from {!Job.seed}, every trial
    owns its VM/device/VMM outright, and results are returned indexed by
    spec regardless of scheduling — so any [-j] produces bit-identical
    outcomes and only wall-clock changes.  The sink's {e line order} is
    completion order; everything folded from the returned array is
    order-stable.  Event traces inherit the same property: trace process
    ids derive from the spec (see [Holes_obs.Trace]), so a sorted trace
    is identical at any [-j]. *)

type 'a trial = {
  spec : Job.spec;  (** the planned point this trial executed *)
  seed : int;  (** the derived seed the trial ran with *)
  outcome : 'a Pool.outcome;  (** value or captured exception *)
  worker : int;  (** domain that ran it (informational) *)
  duration_s : float;  (** wall-clock seconds (informational) *)
}
(** One executed trial, indexed by its spec. *)

val default_jobs : unit -> int
(** Default parallelism: one worker per spare core
    ({!Pool.default_domains}). *)

val plan_pairs :
  pairs:(Holes.Config.t * Holes_workload.Profile.t) list ->
  scale:float ->
  seeds:int ->
  Job.spec array
(** One job per (cfg × profile) pair × seed index.  Seed indices are
    contiguous per pair, so a pair's trials occupy a contiguous slice of
    the returned array.

    @raise Invalid_argument if [seeds < 1]. *)

val plan :
  cfgs:Holes.Config.t list ->
  profiles:Holes_workload.Profile.t list ->
  scale:float ->
  seeds:int ->
  Job.spec array
(** Full cross product of [cfgs] × [profiles] × seed indices. *)

val run :
  ?jobs:int ->
  ?sink:Sink.t ->
  ?metrics:('a -> (string * float) list) ->
  ?outcome_label:('a -> string) ->
  f:(Job.spec -> seed:int -> 'a) ->
  Job.spec array ->
  'a trial array
(** [run ~f specs] executes every spec through [f] on [jobs] worker
    domains (default {!default_jobs}; [jobs <= 1] runs inline on the
    calling domain — no spawn, same capture).  Each finished trial is
    recorded to [sink] as it completes, with [metrics] and
    [outcome_label] supplying the record's payload for successful jobs
    (failed jobs record outcome ["error"] and no metrics). *)
