(** The experiment engine: plans a (configuration × profile × seed)
    grid, shards it across a {!Pool} of worker domains, and streams each
    completed trial to a {!Sink}.

    Determinism contract: a trial's result is a function of its
    {!Job.spec} alone — the seed comes from {!Job.seed}, every trial owns
    its VM/device/VMM outright, and results are returned indexed by spec
    regardless of scheduling — so any [-j] produces bit-identical
    outcomes and only wall-clock changes.  The sink's *line order* is
    completion order; everything folded from the returned array is
    order-stable. *)

type 'a trial = {
  spec : Job.spec;
  seed : int;  (** the derived seed the trial ran with *)
  outcome : 'a Pool.outcome;
  worker : int;
  duration_s : float;
}

(** Default parallelism: one worker per spare core. *)
let default_jobs () : int = Pool.default_domains ()

(** One job per (cfg × profile) pair × seed index.  Seed indices are
    contiguous per pair, so a pair's trials occupy a contiguous slice of
    the returned array. *)
let plan_pairs ~(pairs : (Holes.Config.t * Holes_workload.Profile.t) list) ~(scale : float)
    ~(seeds : int) : Job.spec array =
  if seeds < 1 then invalid_arg "Engine.plan_pairs: seeds must be >= 1";
  pairs
  |> List.concat_map (fun (cfg, profile) ->
         List.init seeds (fun seed_index -> { Job.cfg; profile; scale; seed_index }))
  |> Array.of_list

(** Full cross product of [cfgs] × [profiles] × seed indices. *)
let plan ~(cfgs : Holes.Config.t list) ~(profiles : Holes_workload.Profile.t list)
    ~(scale : float) ~(seeds : int) : Job.spec array =
  plan_pairs
    ~pairs:(List.concat_map (fun cfg -> List.map (fun p -> (cfg, p)) profiles) cfgs)
    ~scale ~seeds

(** Run every spec through [f] on [jobs] worker domains ([jobs <= 1]
    runs inline on the calling domain — no spawn, same capture).  Each
    finished trial is recorded to [sink] as it completes, with [metrics]
    and [outcome_label] supplying the record's payload for successful
    jobs (failed jobs record outcome ["error"] and no metrics). *)
let run ?(jobs = default_jobs ()) ?(sink : Sink.t option)
    ?(metrics : ('a -> (string * float) list) option)
    ?(outcome_label : ('a -> string) option) ~(f : Job.spec -> seed:int -> 'a)
    (specs : Job.spec array) : 'a trial array =
  let n = Array.length specs in
  (match sink with Some s -> Sink.plan s n | None -> ());
  let to_sink i (r : 'a Pool.result) : unit =
    match sink with
    | None -> ()
    | Some s ->
        let spec = specs.(i) in
        let outcome, metrics =
          match r.Pool.value with
          | Pool.Done v ->
              ( (match outcome_label with Some l -> l v | None -> "ok"),
                match metrics with Some m -> m v | None -> [] )
          | Pool.Failed _ -> ("error", [])
        in
        Sink.record s ~config:(Holes.Config.name spec.Job.cfg)
          ~profile:spec.Job.profile.Holes_workload.Profile.name ~seed:(Job.seed spec)
          ~seed_index:spec.Job.seed_index ~worker:r.Pool.worker ~duration_s:r.Pool.duration_s
          ~outcome ~metrics
  in
  let job i =
    let spec = specs.(i) in
    f spec ~seed:(Job.seed spec)
  in
  let results =
    if n = 0 then [||]
    else if jobs <= 1 || n = 1 then
      (* inline: same per-job capture and sink protocol, no domains *)
      Array.init n (fun i ->
          let t0 = Unix.gettimeofday () in
          let value =
            match job i with
            | v -> Pool.Done v
            | exception e ->
                Pool.Failed
                  { exn = Printexc.to_string e; backtrace = Printexc.get_backtrace () }
          in
          let r = { Pool.value; worker = 0; duration_s = Unix.gettimeofday () -. t0 } in
          to_sink i r;
          r)
    else begin
      let pool = Pool.create ~domains:(min jobs n) () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () -> Pool.run_all ~on_done:to_sink pool ~n ~f:job)
    end
  in
  Array.mapi
    (fun i (r : 'a Pool.result) ->
      {
        spec = specs.(i);
        seed = Job.seed specs.(i);
        outcome = r.Pool.value;
        worker = r.Pool.worker;
        duration_s = r.Pool.duration_s;
      })
    results
