(** Thread-safe results sink: one JSONL record per completed trial plus
    a live completed/total progress line on stderr.

    Workers call [record] concurrently as trials finish; a mutex orders
    the writes so every record lands on its own line.  Record order is
    completion order (scheduling-dependent); consumers that need the
    deterministic order sort by (config, profile, seed_index).  The JSON
    is emitted by hand — records are flat and the repo takes no JSON
    dependency. *)

type t = {
  mutex : Mutex.t;
  oc : out_channel option;  (** JSONL output, if requested *)
  progress : bool;  (** render completed/total to stderr *)
  mutable planned : int;  (** grows as grids are planned *)
  mutable completed : int;
  mutable failed : int;
}

let create ?(path : string option) ?(progress = true) () : t =
  {
    mutex = Mutex.create ();
    oc = Option.map open_out path;
    progress;
    planned = 0;
    completed = 0;
    failed = 0;
  }

(** Announce [n] more jobs (a newly planned grid), growing the progress
    denominator. *)
let plan (t : t) (n : int) : unit =
  Mutex.lock t.mutex;
  t.planned <- t.planned + n;
  Mutex.unlock t.mutex

let completed (t : t) : int =
  Mutex.lock t.mutex;
  let c = t.completed in
  Mutex.unlock t.mutex;
  c

(* ---- hand-rolled JSON ------------------------------------------------ *)

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON has no NaN/inf literals; map them to null. *)
let json_float (f : float) : string =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

(* ---------------------------------------------------------------------- *)

let render_progress (t : t) : unit =
  (* caller holds the mutex *)
  if t.progress then
    Printf.eprintf "\r[engine] %d/%d trials%s%!" t.completed t.planned
      (if t.failed > 0 then Printf.sprintf " (%d failed)" t.failed else "")

(** Record one finished trial.  Thread-safe; called from worker domains. *)
let record (t : t) ~(config : string) ~(profile : string) ~(seed : int) ~(seed_index : int)
    ~(worker : int) ~(duration_s : float) ~(outcome : string)
    ~(metrics : (string * float) list) : unit =
  Mutex.lock t.mutex;
  t.completed <- t.completed + 1;
  if outcome = "error" then t.failed <- t.failed + 1;
  (match t.oc with
  | None -> ()
  | Some oc ->
      let b = Buffer.create 256 in
      Buffer.add_string b
        (Printf.sprintf
           "{\"config\":\"%s\",\"profile\":\"%s\",\"seed\":%d,\"seed_index\":%d,\"worker\":%d,\"duration_s\":%s,\"outcome\":\"%s\",\"metrics\":{"
           (escape config) (escape profile) seed seed_index worker (json_float duration_s)
           (escape outcome));
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "\"%s\":%s" (escape k) (json_float v)))
        metrics;
      Buffer.add_string b "}}\n";
      Buffer.output_buffer oc b;
      flush oc);
  render_progress t;
  Mutex.unlock t.mutex

(** Finish the progress line and close the JSONL channel. *)
let close (t : t) : unit =
  Mutex.lock t.mutex;
  if t.progress && t.planned > 0 then prerr_newline ();
  (match t.oc with Some oc -> close_out oc | None -> ());
  Mutex.unlock t.mutex
