(** Collector and experiment configuration.

    Mirrors the paper's configuration axes: collector algorithm (MS, IX
    and sticky variants — Fig. 3), Immix logical line size (64/128/256 B —
    Figs. 6/7), PCM failure rate and distribution (uniform, 2^N-clustered
    limit study, or hardware 1-/2-page clustering — Figs. 4, 8, 9), and
    heap compensation (Fig. 5). *)

type collector = Mark_sweep | Immix | Sticky_ms | Sticky_immix

type failure_dist =
  | Uniform  (** wear-leveled PCM: failures uniformly over 64 B lines *)
  | Granule of int
      (** limit study: failures arrive in aligned clusters of this many
          64 B lines (Sec. 6.4, Fig. 8) *)
  | Hw_cluster of int
      (** proposed hardware: uniform failures moved to region ends, with
          the region size in pages (1 = 1CL, 2 = 2CL) *)

(** Adversarial failure-model selection (DESIGN.md §10).  [From_dist]
    keeps the paper's generators selected by [failure_dist]; [Model]
    switches to one of the {!Holes_pcm.Failure_model} adversaries
    (spatial correlation, endurance variation, failure storms, worst-case
    placement). *)
type failure_model = From_dist | Model of Holes_pcm.Failure_model.spec

(** Parameters of the simulated PCM module behind the device backend. *)
type device_params = {
  wear : Holes_pcm.Wear.params;  (** per-line endurance model *)
  clustering : int option;
      (** hardware failure-clustering region size in pages; [None] takes
          it from [failure_dist] ([Hw_cluster] enables it, anything else
          runs unclustered) *)
  buffer_capacity : int;  (** failure-buffer slots (Sec. 3.1.1) *)
  dram_pages : int;  (** DRAM frames in front of the PCM namespace *)
  wear_aware_pools : bool;
      (** OS page-allocator leveling: the free perfect pool hands out the
          least-worn page instead of the head of the free list, so fresh
          grants spread traffic across the module (the PR-6 follow-on
          above the device's own leveling stages) *)
}

type backend =
  | Static
      (** fault-injection: a generated failure map handed straight to the
          page stock (fast, reproducible figure runs) *)
  | Device of device_params
      (** the full cooperative pipeline: pages acquired from the OS pools
          via [mmap_imperfect], heap line writes charged through
          [Device.write] with wear accrual, and dynamic failures
          delivered by the genuine device → failure buffer → interrupt →
          VMM up-call chain *)

let default_device : device_params =
  {
    wear = Holes_pcm.Wear.fast_params;
    clustering = None;
    buffer_capacity = 32;
    dram_pages = 16;
    wear_aware_pools = false;
  }

type t = {
  collector : collector;
  line_size : int;  (** Immix logical line size in bytes *)
  failure_rate : float;  (** fraction of 64 B PCM lines failed *)
  failure_dist : failure_dist;
  compensate : bool;  (** grow the heap to h/(1-f) to hold usable memory constant *)
  heap_factor : float;  (** heap size as a multiple of the workload's minimum *)
  defrag : bool;  (** evacuate sparse blocks during full collections *)
  defrag_occupancy : float;  (** evacuation candidate threshold (live fraction) *)
  nursery_copy : bool;  (** sticky: opportunistically copy nursery survivors *)
  arraylets : bool;
      (** allocate large arrays as discontiguous arraylets (Z-rays,
          Sartor et al. — paper Sec. 3.3.3) instead of page-grained LOS
          objects: no perfect pages needed, at an access-indirection
          cost *)
  backend : backend;  (** how heap pages are granted and failures arrive *)
  wear_level : Holes_pcm.Wear_level.policy option;
      (** wear-leveling stage in the device's address-translation
          pipeline ([None] = identity; see {!Holes_pcm.Translate}).
          Parsed/printed by [Holes_pcm.Translate.of_cli]/[to_cli] *)
  failure_model : failure_model;
      (** which adversary generates (and, for dynamic models, keeps
          injecting) line failures *)
  verify : bool;
      (** run the paranoid heap verifier ([Verify]) after every GC phase;
          expensive, and guaranteed not to change results — only the
          (non-serialized) verifier pass counters *)
  gc_slice : int;
      (** incremental collection work budget per mutator slice, in
          mark-queue entries processed (0 = stop-the-world, the
          default).  When positive, full collections run as
          snapshot-at-the-beginning increments: each allocation advances
          the cycle by at most this much marking work (sweeping and
          evacuation are budgeted proportionally), so the recorded pause
          is per-slice rather than per-cycle.  Total GC work is
          unchanged — only its interleaving with the mutator. *)
  hybrid : Holes_pcm.Hybrid.policy;
      (** DRAM/PCM tiering policy (DESIGN.md §17): MigrantStore-style
          hot-page migration into DRAM frames and/or a CARAM-style
          content-aware line store in front of the cells.
          {!Holes_pcm.Hybrid.none} (the default) is byte-identical to
          the untiered system.  Parsed/printed by
          [Holes_pcm.Hybrid.of_cli]/[to_cli] *)
  seed : int;
}

let default : t =
  {
    collector = Sticky_immix;
    line_size = Holes_heap.Units.default_line_size;
    failure_rate = 0.0;
    failure_dist = Uniform;
    compensate = true;
    heap_factor = 2.0;
    defrag = true;
    defrag_occupancy = 0.30;
    nursery_copy = true;
    arraylets = false;
    backend = Static;
    wear_level = None;
    failure_model = From_dist;
    verify = false;
    gc_slice = 0;
    hybrid = Holes_pcm.Hybrid.none;
    seed = 42;
  }

let collector_name (c : collector) : string =
  match c with
  | Mark_sweep -> "MS"
  | Immix -> "IX"
  | Sticky_ms -> "S-MS"
  | Sticky_immix -> "S-IX"

let dist_name (d : failure_dist) : string =
  match d with
  | Uniform -> "uniform"
  | Granule n -> Printf.sprintf "granule-%dB" (n * Holes_pcm.Geometry.line_bytes)
  | Hw_cluster pages -> Printf.sprintf "%dCL" pages

let name (t : t) : string =
  let base = collector_name t.collector in
  let base = if t.arraylets then base ^ "-zray" else base in
  let base =
    match t.backend with
    | Static -> base
    | Device d ->
        (* the -wa tag only appears when the flag is on, so every
           pre-existing configuration keeps its name (cache keys, seeds
           and result paths derive from it) *)
        Printf.sprintf "%s-dev-e%.0f%s" base d.wear.Holes_pcm.Wear.mean_endurance
          (if d.wear_aware_pools then "-wa" else "")
  in
  (* identity pipeline keeps the pre-refactor name (cache keys, seeds and
     result paths derive from it); a leveling stage tags itself on *)
  let base =
    match t.wear_level with
    | None -> base
    | Some _ -> base ^ "-wl" ^ Holes_pcm.Translate.short_name t.wear_level
  in
  (* like -wa and -wl, the -hyb tag only appears when a tiering policy
     is on: untiered configurations keep their names *)
  let base =
    if Holes_pcm.Hybrid.is_none t.hybrid then base
    else base ^ "-hyb" ^ Holes_pcm.Hybrid.short_name t.hybrid
  in
  (* like -wa and -wl, the -inc tag only appears when incremental
     collection is on: stop-the-world configurations keep their names *)
  let base = if t.gc_slice > 0 then Printf.sprintf "%s-inc%d" base t.gc_slice else base in
  let line = Printf.sprintf "L%d" t.line_size in
  match t.failure_model with
  | Model m ->
      (* Adversarial models name themselves (the spec rendering includes
         the parameters); the rate still matters for the static part. *)
      Printf.sprintf "%s-PCM-%s-%s-%.0f%%%s" base line
        (Holes_pcm.Failure_model.name m)
        (t.failure_rate *. 100.0)
        (if t.compensate then "" else "-nocomp")
  | From_dist ->
      if t.failure_rate = 0.0 then Printf.sprintf "%s-%s" base line
      else
        Printf.sprintf "%s-PCM-%s-%s-%.0f%%%s" base line (dist_name t.failure_dist)
          (t.failure_rate *. 100.0)
          (if t.compensate then "" else "-nocomp")

let is_generational (c : collector) : bool =
  match c with Sticky_ms | Sticky_immix -> true | Mark_sweep | Immix -> false

let is_immix (c : collector) : bool =
  match c with Immix | Sticky_immix -> true | Mark_sweep | Sticky_ms -> false

let validate (t : t) : (unit, string) result =
  if not (Holes_heap.Units.valid_line_size t.line_size) then
    Error (Printf.sprintf "invalid Immix line size %d" t.line_size)
  else if t.failure_rate < 0.0 || t.failure_rate > 0.95 then
    Error "failure rate must be in [0, 0.95]"
  else if t.heap_factor < 1.0 then Error "heap factor must be >= 1"
  else if t.gc_slice < 0 then Error "gc_slice must be non-negative (0 = stop-the-world)"
  else
    let model_ok =
      match t.failure_model with
      | From_dist -> Ok ()
      | Model m -> (
          match Holes_pcm.Failure_model.validate m with
          | Error e -> Error e
          | Ok () ->
              if Holes_pcm.Failure_model.is_dynamic m && not (is_immix t.collector) then
                Error "dynamic failure models require a failure-aware Immix collector"
              else if Holes_pcm.Failure_model.is_dynamic m && t.backend <> Static then
                Error
                  "dynamic failure models drive the static backend's injector; the device \
                   backend generates its own dynamic failures through wear"
              else Ok ())
    in
    match model_ok with
    | Error _ as e -> e
    | Ok () -> (
        match t.backend with
        | Static ->
            if t.wear_level <> None then
              Error
                "wear_level stages live in the device pipeline; the static backend bakes any \
                 leveling into its failure map"
            else if not (Holes_pcm.Hybrid.is_none t.hybrid) then
              Error
                "hybrid tiering needs the device backend: the static backend has no DRAM \
                 frames or content store to absorb writes"
            else Ok ()
        | Device d ->
            if not (is_immix t.collector) then
              Error "the device backend requires a failure-aware Immix collector"
            else if d.buffer_capacity <= 0 then Error "device buffer capacity must be positive"
            else if d.dram_pages < 0 then Error "device dram_pages must be non-negative"
            else if t.hybrid.Holes_pcm.Hybrid.migrate_epoch <> None && d.dram_pages <= 0 then
              Error "hybrid migration needs at least one DRAM frame (dram_pages > 0)"
            else Ok ())
