(** Mark-Sweep and Sticky Mark-Sweep baselines (Fig. 3).

    A segregated-fits free-list allocator in the style the paper
    discusses for native runtimes (Sec. 3.3.1): blocks are carved on
    demand into same-sized cells; allocation pops a free cell;
    collection marks live objects and sweeps cells back onto the free
    lists.  No copying, so no defragmentation.  The sticky variant
    collects the logical nursery from the remembered set.

    These collectors are evaluated only without failures (the paper's
    Fig. 3 motivates Immix as the baseline; Sec. 3.3.1 explains why
    free-lists tolerate failures poorly), so they refuse configurations
    with a non-zero failure rate. *)

open Holes_stdx
open Holes_heap

exception Out_of_memory = Immix.Out_of_memory

(** Size classes (bytes).  Everything above the last class is a large
    object and goes to the LOS. *)
let size_classes =
  [| 16; 24; 32; 48; 64; 96; 128; 192; 256; 384; 512; 768; 1024; 1536; 2048; 3072; 4096; 6144; 8192 |]

let class_of_size (size : int) : int option =
  let n = Array.length size_classes in
  let rec go i = if i >= n then None else if size <= size_classes.(i) then Some i else go (i + 1) in
  go 0

type ms_block = {
  index : int;
  base : int;
  klass : int;
  cell_size : int;
  ncells : int;
  cells : int array;  (** object id occupying each cell, or -1 *)
  pages : int array;
  mutable free_cells : int;
}

type t = {
  cfg : Config.t;
  cost : Cost.t;
  metrics : Metrics.t;
  stock : Page_stock.t;
  objects : Object_table.t;
  los : Los.t;
  blocks : (int, ms_block) Hashtbl.t;
  mutable next_block_index : int;
  free_lists : Intvec.t array;
      (** per class: a LIFO of free cells packed as
          [(block index lsl cell_bits) lor cell] — the cons list it
          replaces, stored reversed (push/pop at the vector's end), so
          pop order and therefore every object address is unchanged *)
  remset : Remset.t;
  nursery : Intvec.t;
  mutable want_full : bool;
  mutable gc_slice : int;
      (** incremental work budget per recorded slice (0 = stop-the-world).
          The free-list baseline has no mutator-interleaved marking: a
          sliced collection still runs to completion within one call, but
          brackets its mark and sweep work into budgeted chunks so every
          recorded pause is bounded — the honest comparison point for the
          Immix incremental mode's pause figures. *)
}

let block_bytes = Units.block_bytes

(* cell indices fit [cell_bits]: the smallest class carves
   [block_bytes / 16] cells per block *)
let cell_bits = 16
let cell_mask = (1 lsl cell_bits) - 1

let () = assert (block_bytes / size_classes.(0) <= cell_mask)

let create ~(cfg : Config.t) ~(cost : Cost.t) ~(metrics : Metrics.t) ~(stock : Page_stock.t)
    ~(objects : Object_table.t) ~(los : Los.t) : t =
  if cfg.Config.failure_rate > 0.0 then
    invalid_arg "Mark_sweep.create: the free-list baselines run only without failures";
  if cfg.Config.gc_slice > 0 then metrics.Metrics.inc_active <- true;
  {
    cfg;
    cost;
    metrics;
    stock;
    objects;
    los;
    blocks = Hashtbl.create 256;
    next_block_index = 0;
    free_lists = Array.init (Array.length size_classes) (fun _ -> Intvec.create ());
    remset = Remset.create ();
    nursery = Intvec.create ();
    want_full = false;
    gc_slice = cfg.Config.gc_slice;
  }

let weights (t : t) : Cost.weights = t.cost.Cost.weights

(* Carve a fresh block for size class [k]; false when the stock is dry. *)
let carve_block (t : t) (k : int) : bool =
  let pages = Array.make Units.pages_per_block (-2) in
  let rec take i =
    if i = Units.pages_per_block then true
    else
      match Page_stock.take_relaxed t.stock with
      | Some p ->
          pages.(i) <- p;
          take (i + 1)
      | None ->
          for j = 0 to i - 1 do
            Page_stock.return_page t.stock pages.(j)
          done;
          false
  in
  if not (take 0) then false
  else begin
    let index = t.next_block_index in
    t.next_block_index <- t.next_block_index + 1;
    let cell_size = size_classes.(k) in
    let ncells = block_bytes / cell_size in
    let b =
      {
        index;
        base = index * block_bytes;
        klass = k;
        cell_size;
        ncells;
        cells = Array.make ncells (-1);
        pages;
        free_cells = ncells;
      }
    in
    Hashtbl.replace t.blocks index b;
    (* descending cells so cell 0 sits at the LIFO head, exactly as the
       cons-prepend loop left it *)
    for c = ncells - 1 downto 0 do
      Intvec.push t.free_lists.(k) ((index lsl cell_bits) lor c)
    done;
    Cost.charge t.cost (weights t).Cost.block_assemble;
    t.metrics.Metrics.blocks_assembled <- t.metrics.Metrics.blocks_assembled + 1;
    true
  end

let dissolve_block (t : t) (b : ms_block) : unit =
  Array.iter (fun id -> Page_stock.return_page t.stock id) b.pages;
  Hashtbl.remove t.blocks b.index;
  (* purge its cells from the class free list *)
  Intvec.filter_in_place t.free_lists.(b.klass) (fun v -> v lsr cell_bits <> b.index)

let alloc_nogc (t : t) ~(size : int) : (int * int * int) option =
  match class_of_size size with
  | None -> invalid_arg "Mark_sweep.alloc: large objects belong to the LOS"
  | Some k -> (
      let w = weights t in
      let place v =
        let bi = v lsr cell_bits and c = v land cell_mask in
        let b = Hashtbl.find t.blocks bi in
        b.free_cells <- b.free_cells - 1;
        Cost.charge t.cost
          (w.Cost.alloc_fast +. w.Cost.free_list_alloc
          +. ((w.Cost.alloc_byte +. w.Cost.ms_byte) *. float_of_int size));
        (bi, c, b.base + (c * b.cell_size))
      in
      let v = Intvec.pop_or t.free_lists.(k) ~default:(-1) in
      if v >= 0 then Some (place v)
      else if carve_block t k then
        Some (place (Intvec.pop_or t.free_lists.(k) ~default:(-1)))
      else None)

(* Record the object occupying a cell (after the object id is known). *)
let register_cell (t : t) ~(block : int) ~(cell : int) ~(id : int) : unit =
  (Hashtbl.find t.blocks block).cells.(cell) <- id

let addr_to_cell (t : t) (addr : int) : ms_block * int =
  let b = Hashtbl.find t.blocks (addr / block_bytes) in
  (b, (addr - b.base) / b.cell_size)

(** Full mark-sweep collection. *)
let full_gc (t : t) : unit =
  let w = weights t in
  Cost.begin_gc t.cost;
  Cost.charge t.cost w.Cost.gc_fixed;
  (* mark *)
  Object_table.iter_slots t.objects (fun id ->
      if Object_table.is_alive t.objects id then begin
        let nrefs = Object_table.nrefs t.objects id in
        Cost.charge t.cost (w.Cost.mark_obj +. (w.Cost.mark_edge *. float_of_int nrefs));
        Object_table.clear_nursery_flag t.objects id
      end);
  (* sweep: rebuild free lists; release dead objects *)
  Array.iter Intvec.clear t.free_lists;
  let empties = ref [] in
  Hashtbl.iter
    (fun _ b ->
      Cost.charge t.cost (w.Cost.sweep_cell *. float_of_int b.ncells);
      b.free_cells <- 0;
      for c = b.ncells - 1 downto 0 do
        let id = b.cells.(c) in
        let live = id >= 0 && Object_table.is_alive t.objects id in
        if not live then begin
          if id >= 0 then begin
            if Object_table.is_los t.objects id then
              Los.free t.los ~addr:(Object_table.addr t.objects id);
            Object_table.release t.objects id;
            b.cells.(c) <- -1
          end;
          b.free_cells <- b.free_cells + 1;
          Intvec.push t.free_lists.(b.klass) ((b.index lsl cell_bits) lor c)
        end
      done;
      if b.free_cells = b.ncells then empties := b :: !empties)
    t.blocks;
  (* release dead LOS-only objects (they occupy no cell) *)
  Object_table.iter_slots t.objects (fun id ->
      if (not (Object_table.is_alive t.objects id)) && Object_table.is_los t.objects id then begin
        Los.free t.los ~addr:(Object_table.addr t.objects id);
        Object_table.release t.objects id
      end);
  List.iter (dissolve_block t) !empties;
  Intvec.clear t.nursery;
  Remset.clear t.remset;
  t.want_full <- false;
  let pause = Cost.end_gc t.cost in
  t.metrics.Metrics.full_gcs <- t.metrics.Metrics.full_gcs + 1;
  t.metrics.Metrics.pauses_ns <- pause :: t.metrics.Metrics.pauses_ns;
  let live = Object_table.live_bytes t.objects in
  if live > t.metrics.Metrics.peak_live_bytes then t.metrics.Metrics.peak_live_bytes <- live

(* The sliced variant of [full_gc]: identical work and charge totals,
   but bracketed into budgeted [Cost.begin_gc]/[end_gc] chunks so every
   recorded pause is bounded by the work budget.  The heap is untouched
   between chunks (nothing runs in the gaps), so the end state is
   bit-identical to [full_gc]'s — only the pause records differ. *)
let full_gc_sliced (t : t) : unit =
  let w = weights t in
  let record pause =
    t.metrics.Metrics.gc_increments <- t.metrics.Metrics.gc_increments + 1;
    t.metrics.Metrics.pauses_ns <- pause :: t.metrics.Metrics.pauses_ns
  in
  let budget = max 1 t.gc_slice in
  (* mark, in budgeted chunks over a scratch of the slot ids (the scratch
     preserves [iter_slots]' ascending order, so charges are identical) *)
  let ids = Intvec.create ~capacity:1024 () in
  Object_table.iter_slots t.objects (fun id -> Intvec.push ids id);
  let n = Intvec.length ids in
  let i = ref 0 in
  let first = ref true in
  while !i < n || !first do
    Cost.begin_gc t.cost;
    if !first then begin
      Cost.charge t.cost w.Cost.gc_fixed;
      first := false
    end;
    let stop = min n (!i + budget) in
    while !i < stop do
      let id = Intvec.unsafe_get ids !i in
      if Object_table.is_alive t.objects id then begin
        let nrefs = Object_table.nrefs t.objects id in
        Cost.charge t.cost (w.Cost.mark_obj +. (w.Cost.mark_edge *. float_of_int nrefs));
        Object_table.clear_nursery_flag t.objects id
      end;
      incr i
    done;
    record (Cost.end_gc t.cost)
  done;
  (* sweep: rebuild free lists block by block, a budgeted number per
     chunk (the same [Hashtbl.iter]-order block sequence, materialized
     so it can be chunked) *)
  Array.iter Intvec.clear t.free_lists;
  let blocks = ref [] in
  Hashtbl.iter (fun _ b -> blocks := b :: !blocks) t.blocks;
  let blocks = ref (List.rev !blocks) in
  let per_chunk = max 1 (budget / 128) in
  let empties = ref [] in
  while !blocks <> [] do
    Cost.begin_gc t.cost;
    let k = ref 0 in
    while !k < per_chunk && !blocks <> [] do
      (match !blocks with
      | [] -> ()
      | b :: rest ->
          blocks := rest;
          Cost.charge t.cost (w.Cost.sweep_cell *. float_of_int b.ncells);
          b.free_cells <- 0;
          for c = b.ncells - 1 downto 0 do
            let id = b.cells.(c) in
            let live = id >= 0 && Object_table.is_alive t.objects id in
            if not live then begin
              if id >= 0 then begin
                if Object_table.is_los t.objects id then
                  Los.free t.los ~addr:(Object_table.addr t.objects id);
                Object_table.release t.objects id;
                b.cells.(c) <- -1
              end;
              b.free_cells <- b.free_cells + 1;
              Intvec.push t.free_lists.(b.klass) ((b.index lsl cell_bits) lor c)
            end
          done;
          if b.free_cells = b.ncells then empties := b :: !empties);
      incr k
    done;
    record (Cost.end_gc t.cost)
  done;
  (* finish: dead LOS-only objects, empty-block dissolution, nursery and
     remset reset — one final chunk *)
  Cost.begin_gc t.cost;
  Object_table.iter_slots t.objects (fun id ->
      if (not (Object_table.is_alive t.objects id)) && Object_table.is_los t.objects id then begin
        Los.free t.los ~addr:(Object_table.addr t.objects id);
        Object_table.release t.objects id
      end);
  List.iter (dissolve_block t) !empties;
  Intvec.clear t.nursery;
  Remset.clear t.remset;
  t.want_full <- false;
  record (Cost.end_gc t.cost);
  t.metrics.Metrics.full_gcs <- t.metrics.Metrics.full_gcs + 1;
  let live = Object_table.live_bytes t.objects in
  if live > t.metrics.Metrics.peak_live_bytes then t.metrics.Metrics.peak_live_bytes <- live

(* Dispatch on the incremental budget. *)
let full_gc_auto (t : t) : unit = if t.gc_slice > 0 then full_gc_sliced t else full_gc t

(** Set the incremental work budget (0 = stop-the-world).  The baseline
    has no cycle state to finish: the next collection simply uses the
    new bracketing. *)
let set_gc_slice (t : t) (budget : int) : unit =
  t.gc_slice <- max 0 budget;
  if budget > 0 then t.metrics.Metrics.inc_active <- true

(** Nursery collection (sticky mark bits over the free list). *)
let nursery_gc (t : t) : unit =
  let w = weights t in
  Cost.begin_gc t.cost;
  Cost.charge t.cost w.Cost.gc_nursery_fixed;
  Cost.charge t.cost (w.Cost.remset_entry *. float_of_int (Remset.size t.remset));
  Remset.clear t.remset;
  let freed = ref 0 in
  Intvec.iter t.nursery (fun id ->
      if not (Object_table.is_alive t.objects id) then begin
        let addr = Object_table.addr t.objects id in
        if addr >= 0 then begin
          if Object_table.is_los t.objects id then Los.free t.los ~addr
          else begin
            let b, c = addr_to_cell t addr in
            b.cells.(c) <- -1;
            b.free_cells <- b.free_cells + 1;
            Intvec.push t.free_lists.(b.klass) ((b.index lsl cell_bits) lor c);
            freed := !freed + b.cell_size
          end;
          Object_table.release t.objects id
        end
      end
      else begin
        let nrefs = Object_table.nrefs t.objects id in
        Cost.charge t.cost (w.Cost.mark_obj +. (w.Cost.mark_edge *. float_of_int nrefs));
        Object_table.clear_nursery_flag t.objects id
      end);
  Intvec.clear t.nursery;
  let heap_bytes = Page_stock.npages t.stock * Holes_pcm.Geometry.page_bytes in
  if float_of_int !freed < 0.12 *. float_of_int heap_bytes then t.want_full <- true;
  let pause = Cost.end_gc t.cost in
  t.metrics.Metrics.nursery_gcs <- t.metrics.Metrics.nursery_gcs + 1;
  t.metrics.Metrics.nursery_pauses_ns <- pause :: t.metrics.Metrics.nursery_pauses_ns

(** Allocate with the collection-retry ladder; raises [Out_of_memory]. *)
let alloc (t : t) ~(size : int) : int * int * int =
  let size = Units.aligned_size size in
  let generational = Config.is_generational t.cfg.Config.collector in
  let rec attempt n =
    match alloc_nogc t ~size with
    | Some slot -> slot
    | None ->
        if n = 0 && generational && not t.want_full then begin
          nursery_gc t;
          attempt 1
        end
        else if n <= 1 then begin
          full_gc_auto t;
          attempt 2
        end
        else begin
          t.metrics.Metrics.out_of_memory <- true;
          t.metrics.Metrics.oom_request <- size;
          raise Out_of_memory
        end
  in
  attempt 0

let register (t : t) ~(id : int) : unit = Intvec.push t.nursery id

let write_barrier (t : t) ~(src : int) : unit =
  Cost.charge t.cost (weights t).Cost.write_barrier;
  if Config.is_generational t.cfg.Config.collector && not (Object_table.is_nursery t.objects src)
  then ignore (Remset.record t.remset ~src)

let collect (t : t) ~(full : bool) : unit = if full then full_gc_auto t else nursery_gc t
