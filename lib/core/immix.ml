(** Failure-aware Immix and Sticky Immix (paper Secs. 4.1–4.2).

    Immix manages memory as 32 KB blocks of logical lines.  A bump
    pointer allocates into contiguous runs of free lines and *skips over
    unavailable lines* — which is precisely why failure awareness is a
    minimal extension: failed lines are a fourth line state that the
    allocator skips exactly like live lines.  Medium objects (larger than
    a line) that do not fit the current run go to a dedicated overflow
    block; the failure-aware version searches the remainder of the
    overflow block and only then falls back to requesting a perfect
    block.  Sticky Immix adds generational behaviour via sticky mark
    bits: objects allocated since the last collection form the logical
    nursery, collected from the remembered set without touching old
    objects.  Dynamic failures reuse the defragmentation machinery:
    affected blocks are flagged and their live objects evacuated by a
    full collection. *)

open Holes_stdx
open Holes_heap
module Trace = Holes_obs.Trace
module Stats = Holes_obs.Stats

exception Out_of_memory = Oom.Out_of_memory

type t = {
  cfg : Config.t;
  cost : Cost.t;
  metrics : Metrics.t;
  stock : Page_stock.t;
  objects : Object_table.t;
  los : Los.t;
  mutable table : Block.t option array;
      (** block index -> block, dense.  Indices are monotonic (a
          dissolved block's slot stays [None]), so the allocation fast
          path is one array load instead of a hash probe, and iteration
          is ascending-index — the deterministic order every sweep and
          defrag pass uses. *)
  btbl : Block.table;
      (** the struct-of-arrays per-block metadata (free/failed counts,
          hole bounds, flags), shared by every block and indexed by
          block id — sweep and defrag selection stream over it *)
  mutable nblocks : int;  (** live (assembled, not dissolved) blocks *)
  page_owner : int array;
      (** stock page id -> owning block index, -1 when unassembled: the
          O(1) reverse index behind [find_page_owner], replacing the
          all-blocks × all-pages scan the OS failure up-call used to
          pay *)
  mutable next_block_index : int;
  recyclable : Intvec.t;
      (** block indices with free lines, address order; consumed front
          to back through [recyclable_pos] (a cursor into a flat vector
          instead of popping list cells) *)
  mutable recyclable_pos : int;
  mark_queue : Intvec.t;
      (** the flat mark deque: slot ids are enqueued in ascending-id
          order and drained in fixed-size batches, so the trace loop
          runs over a dense int array (see [full_gc]) *)
  (* bump-pointer state: main cursor *)
  mutable cur_block : int;  (** -1 = none *)
  mutable cursor : int;
  mutable limit : int;
  (* overflow allocation state *)
  mutable ovf_block : int;
  mutable ovf_cursor : int;
  mutable ovf_limit : int;
  (* generational state *)
  remset : Remset.t;
  nursery : Intvec.t;
  mutable want_full : bool;  (** last nursery collection yielded too little *)
  mutable defrag_requested : bool;
      (** defragment at the next full collection (Immix defragments on
          demand: set by allocation failures and dynamic failures) *)
  mutable post_gc_check : unit -> unit;
      (** paranoid-verifier hook, run at the end of every collection
          (installed by [Vm] when [Config.verify] is set; [ignore]
          otherwise, so the disabled cost is one closure call) *)
  tracer : Trace.view;  (** gc/alloc-lane events: phase spans, slow paths *)
}

let block_bytes = Units.block_bytes

let create ?(tracer = Trace.null) ~(cfg : Config.t) ~(cost : Cost.t) ~(metrics : Metrics.t)
    ~(stock : Page_stock.t) ~(objects : Object_table.t) ~(los : Los.t) () : t =
  let t =
    {
    cfg;
    cost;
    metrics;
    stock;
    objects;
    los;
    table = Array.make 256 None;
    btbl = Block.table_create ();
    nblocks = 0;
    page_owner = Array.make (Page_stock.npages stock) (-1);
    next_block_index = 0;
    recyclable = Intvec.create ();
    recyclable_pos = 0;
    mark_queue = Intvec.create ~capacity:256 ();
    cur_block = -1;
    cursor = 0;
    limit = 0;
    ovf_block = -1;
    ovf_cursor = 0;
    ovf_limit = 0;
      remset = Remset.create ();
      (* pre-sized: the nursery absorbs every mutator allocation between
         collections, and doubling it up from 16 re-copies the whole
         vector log n times on the hottest path *)
      nursery = Intvec.create ~capacity:1024 ();
      want_full = false;
      defrag_requested = false;
      post_gc_check = ignore;
      tracer;
    }
  in
  (* the "has sufficient memory" test for DRAM borrowing must see the
     free lines held inside partially used blocks, not just free stock
     pages *)
  Page_stock.set_extra_free stock (fun () ->
      let acc = ref 0 in
      for i = 0 to t.next_block_index - 1 do
        match Array.unsafe_get t.table i with
        | Some b -> acc := !acc + Block.free_bytes b
        | None -> ()
      done;
      !acc);
  t

let weights (t : t) : Cost.weights = t.cost.Cost.weights

(* ascending-index iteration over live blocks — the single deterministic
   order used by every collection pass *)
let iter_blocks (t : t) (f : Block.t -> unit) : unit =
  for i = 0 to t.next_block_index - 1 do
    match Array.unsafe_get t.table i with Some b -> f b | None -> ()
  done

let block_opt (t : t) (index : int) : Block.t option =
  if index < 0 || index >= t.next_block_index then None else t.table.(index)

let block (t : t) (index : int) : Block.t =
  match block_opt t index with Some b -> b | None -> raise Not_found

let block_of_addr (t : t) (addr : int) : Block.t = block t (addr / block_bytes)

let is_medium (t : t) ~(size : int) : bool = size > t.cfg.Config.line_size

(* ------------------------------------------------------------------ *)
(* Block acquisition                                                   *)
(* ------------------------------------------------------------------ *)

(* Install a block built from [pages] (stock ids; -1 = borrowed DRAM). *)
let install_block (t : t) ~(pages : int array) : int =
  let w = weights t in
  let index = t.next_block_index in
  t.next_block_index <- t.next_block_index + 1;
  let empty_bitmap = Bitset.create Holes_pcm.Geometry.lines_per_page in
  let b =
    Block.create ~tbl:t.btbl ~index ~base:(index * block_bytes)
      ~line_size:t.cfg.Config.line_size ~pages
      ~page_bitmap:(fun id ->
        if id = -1 then empty_bitmap else (Page_stock.page t.stock id).Page_stock.bitmap)
  in
  if index >= Array.length t.table then begin
    let grown = Array.make (max 16 (2 * Array.length t.table)) None in
    Array.blit t.table 0 grown 0 (Array.length t.table);
    t.table <- grown
  end;
  t.table.(index) <- Some b;
  t.nblocks <- t.nblocks + 1;
  Array.iter (fun id -> if id >= 0 then t.page_owner.(id) <- index) pages;
  Cost.charge t.cost w.Cost.block_assemble;
  t.metrics.Metrics.blocks_assembled <- t.metrics.Metrics.blocks_assembled + 1;
  index

(* Assemble a fresh block from eight relaxed stock pages.  Returns the
   block index, or None when the stock cannot supply a block. *)
let assemble_block (t : t) : int option =
  let pages = Array.make Units.pages_per_block (-2) in
  let rec take i =
    if i = Units.pages_per_block then true
    else
      match Page_stock.take_relaxed t.stock with
      | Some p ->
          pages.(i) <- p;
          take (i + 1)
      | None ->
          (* roll back *)
          for j = 0 to i - 1 do
            Page_stock.return_page t.stock pages.(j)
          done;
          false
  in
  if not (take 0) then None else Some (install_block t ~pages)

(* Assemble a perfect block for the overflow fallback: eight perfect
   pages, borrowing DRAM where the perfect pool is dry (Sec. 3.3.3).
   None when both the perfect pool and the borrow budget are exhausted. *)
let assemble_perfect_block (t : t) : int option =
  let w = weights t in
  let pages = Array.make Units.pages_per_block (-2) in
  let rec take i =
    if i = Units.pages_per_block then true
    else begin
      Cost.charge t.cost w.Cost.perfect_request;
      match Page_stock.take_perfect t.stock with
      | Page_stock.Perfect id ->
          pages.(i) <- id;
          take (i + 1)
      | Page_stock.Borrowed ->
          Cost.charge t.cost w.Cost.dram_borrow;
          pages.(i) <- -1;
          take (i + 1)
      | Page_stock.Exhausted ->
          for j = 0 to i - 1 do
            if pages.(j) = -1 then Page_stock.return_borrowed t.stock
            else Page_stock.return_page t.stock pages.(j)
          done;
          false
    end
  in
  if not (take 0) then None
  else begin
    let bi = install_block t ~pages in
    Block.set_perfect_grant (block t bi) true;
    Some bi
  end

(* Dissolve a completely free block, returning its pages to the stock. *)
let dissolve_block (t : t) (b : Block.t) : unit =
  Array.iter
    (fun id ->
      if id = -1 then Page_stock.return_borrowed t.stock
      else begin
        t.page_owner.(id) <- -1;
        Page_stock.return_page t.stock id
      end)
    b.Block.pages;
  t.table.(b.Block.index) <- None;
  t.nblocks <- t.nblocks - 1

(* ------------------------------------------------------------------ *)
(* Bump allocation                                                     *)
(* ------------------------------------------------------------------ *)

let[@inline] charge_alloc (t : t) ~(size : int) : unit =
  let w = weights t in
  Cost.charge t.cost (w.Cost.alloc_fast +. (w.Cost.alloc_byte *. float_of_int size))

(* Place an object at the main cursor (caller guarantees fit).  This is
   the true bump fast path: bump, account the touched lines, charge —
   no option boxing, no closure, no search. *)
let place_at_cursor (t : t) ~(size : int) : int =
  let addr = t.cursor in
  t.cursor <- t.cursor + size;
  let b = block t t.cur_block in
  Block.add_object_lines b ~addr ~size;
  charge_alloc t ~size;
  addr

let place_at_ovf (t : t) ~(size : int) : int =
  let addr = t.ovf_cursor in
  t.ovf_cursor <- t.ovf_cursor + size;
  let b = block t t.ovf_block in
  Block.add_object_lines b ~addr ~size;
  charge_alloc t ~size;
  addr

(* Point the main cursor at a hole of [b]; true on success. *)
let set_cursor_to_hole (t : t) (b : Block.t) ~(from_line : int) ~(min_bytes : int) : bool =
  let enc = Block.find_hole_enc b ~from_line ~min_bytes in
  if enc < 0 then false
  else begin
      let s = enc lsr 30 and e = enc land 0x3FFFFFFF in
      let examined = e - (if from_line > 0 then from_line else 0) in
      let w = weights t in
      Cost.charge t.cost (w.Cost.line_scan *. float_of_int examined);
      t.metrics.Metrics.lines_scanned <- t.metrics.Metrics.lines_scanned + examined;
      Stats.observe t.metrics.Metrics.hole_search_hist (float_of_int examined);
      t.cur_block <- b.Block.index;
      t.cursor <- b.Block.base + (s * b.Block.line_size);
      t.limit <- b.Block.base + (e * b.Block.line_size);
      true
  end

(* Small-object allocation without triggering collection.  Returns the
   address, or -1 when the heap is exhausted at this instant.  The fast
   path is a single compare against the bump limit; [find_hole] is only
   re-entered on hole exhaustion (the slow path below). *)
let rec alloc_small_nogc (t : t) ~(size : int) : int =
  if t.cur_block >= 0 && t.cursor + size <= t.limit then place_at_cursor t ~size
  else alloc_small_slow t ~size

and alloc_small_slow (t : t) ~(size : int) : int =
  let w = weights t in
  (* advance to the next hole in the current block *)
  let advanced =
    t.cur_block >= 0
    &&
    let b = block t t.cur_block in
    let from_line = (t.limit - b.Block.base) / b.Block.line_size in
    let ok = set_cursor_to_hole t b ~from_line ~min_bytes:size in
    if ok then begin
      Cost.charge t.cost w.Cost.hole_skip;
      t.metrics.Metrics.hole_skips <- t.metrics.Metrics.hole_skips + 1;
      if Trace.armed t.tracer then
        Trace.instant t.tracer ~tid:Trace.tid_alloc "hole_skip"
    end;
    ok
  in
  if advanced then place_at_cursor t ~size
  else begin
    (* recycled blocks first (Immix allocation order, Sec. 4.1): walk
       the flat recyclable vector through its cursor *)
    let rec try_recyclable () =
      if t.recyclable_pos >= Intvec.length t.recyclable then false
      else begin
        let bi = Intvec.unsafe_get t.recyclable t.recyclable_pos in
        t.recyclable_pos <- t.recyclable_pos + 1;
        let b = block t bi in
        Block.set_recyclable b false;
        Cost.charge t.cost w.Cost.block_open;
        if set_cursor_to_hole t b ~from_line:0 ~min_bytes:size then true else try_recyclable ()
      end
    in
    if try_recyclable () then place_at_cursor t ~size
    else
      (* then completely free blocks from the global pool *)
      match assemble_block t with
      | None -> -1
      | Some bi ->
          Cost.charge t.cost w.Cost.block_open;
          let b = block t bi in
          if set_cursor_to_hole t b ~from_line:0 ~min_bytes:size then place_at_cursor t ~size
          else begin
            (* an extremely damaged block can lack any usable hole;
               return its pages immediately and try the next one *)
            dissolve_block t b;
            alloc_small_nogc t ~size
          end
  end

(* Medium-object overflow allocation (Sec. 4.1 "overflow allocation",
   failure-aware re-search per Sec. 4.2).  Returns the address, or one
   of two negative sentinels (no variant boxing on the alloc path):
   [needs_gc] — memory genuinely exhausted: collect and retry;
   [needs_perfect] — free memory exists but is too fragmented for this
   object: request a perfect block (no collection would change the
   static holes).

   The 2–8 line medium fast path: a medium object whose size fits the
   current bump run is placed directly at the cursor — it never touches
   the overflow state, the LOS table, or a hole search. *)
let needs_gc = -1
let needs_perfect = -2

let alloc_medium_nogc (t : t) ~(size : int) : int =
  let w = weights t in
  (* fits the current bump run? then no overflow needed *)
  if t.cur_block >= 0 && t.cursor + size <= t.limit then place_at_cursor t ~size
  else begin
    t.metrics.Metrics.overflow_allocs <- t.metrics.Metrics.overflow_allocs + 1;
    if t.ovf_block >= 0 && t.ovf_cursor + size <= t.ovf_limit then place_at_ovf t ~size
    else begin
      (* failure-aware change: search the remainder of the overflow block
         for a suitably sized hole before giving up on it *)
      let search_ovf () =
        t.ovf_block >= 0
        &&
        let b = block t t.ovf_block in
        t.metrics.Metrics.overflow_searches <- t.metrics.Metrics.overflow_searches + 1;
        if Trace.armed t.tracer then
          Trace.instant t.tracer ~tid:Trace.tid_alloc "overflow_search"
            ~args:[ ("size", float_of_int size) ];
        let enc = Block.find_hole_enc b ~from_line:0 ~min_bytes:size in
        if enc < 0 then false
        else begin
            let s = enc lsr 30 and e = enc land 0x3FFFFFFF in
            let examined = e in
            Cost.charge t.cost
              (w.Cost.hole_skip +. (w.Cost.line_scan *. float_of_int examined));
            t.metrics.Metrics.lines_scanned <- t.metrics.Metrics.lines_scanned + examined;
            Stats.observe t.metrics.Metrics.hole_search_hist (float_of_int examined);
            t.metrics.Metrics.hole_skips <- t.metrics.Metrics.hole_skips + 1;
            t.ovf_cursor <- b.Block.base + (s * b.Block.line_size);
            t.ovf_limit <- b.Block.base + (e * b.Block.line_size);
            true
        end
      in
      if search_ovf () then place_at_ovf t ~size
      else
        match assemble_block t with
        | Some bi -> (
            Cost.charge t.cost w.Cost.block_open;
            let b = block t bi in
            let enc = Block.find_hole_enc b ~from_line:0 ~min_bytes:size in
            if enc >= 0 then begin
                let s = enc lsr 30 and e = enc land 0x3FFFFFFF in
                let examined = e in
                Cost.charge t.cost (w.Cost.line_scan *. float_of_int examined);
                t.metrics.Metrics.lines_scanned <- t.metrics.Metrics.lines_scanned + examined;
                Stats.observe t.metrics.Metrics.hole_search_hist (float_of_int examined);
                t.ovf_block <- bi;
                t.ovf_cursor <- b.Block.base + (s * b.Block.line_size);
                t.ovf_limit <- b.Block.base + (e * b.Block.line_size);
                place_at_ovf t ~size
            end
            else begin
                (* even a completely fresh block has no big-enough hole:
                   the *static* failure pattern, not garbage, is the
                   obstacle.  A collection cannot help; hand the block's
                   pages back and request a perfect block. *)
                dissolve_block t b;
                needs_perfect
            end)
        | None -> needs_gc
    end
  end

(* Perfect-block fallback for medium objects that cannot be placed in
   imperfect memory (Sec. 3.3.3 / 4.2).  Returns -1 when the perfect
   pool and the DRAM borrow budget are both exhausted (caller
   collects/fails). *)
let alloc_medium_perfect (t : t) ~(size : int) : int =
  t.metrics.Metrics.perfect_block_fallbacks <- t.metrics.Metrics.perfect_block_fallbacks + 1;
  if Trace.armed t.tracer then
    Trace.instant t.tracer ~tid:Trace.tid_alloc "perfect_fallback"
      ~args:[ ("size", float_of_int size) ];
  match assemble_perfect_block t with
  | None -> -1
  | Some bi ->
      Cost.charge t.cost (weights t).Cost.block_open;
      t.ovf_block <- bi;
      let b = block t bi in
      t.ovf_cursor <- b.Block.base;
      t.ovf_limit <- b.Block.base + block_bytes;
      place_at_ovf t ~size

(* Allocation attempt without collection, dispatching on size class:
   the address, or -1.  Used by evacuation and nursery copying, which
   must neither recurse into a collection nor consume perfect blocks. *)
let alloc_nogc (t : t) ~(size : int) : int =
  if is_medium t ~size then
    let r = alloc_medium_nogc t ~size in
    if r >= 0 then r else -1
  else alloc_small_nogc t ~size

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)
(* ------------------------------------------------------------------ *)

let total_free_bytes (t : t) : int =
  let blocks_free = ref 0 in
  iter_blocks t (fun b -> blocks_free := !blocks_free + Block.free_bytes b);
  Page_stock.free_usable_bytes t.stock + !blocks_free

let reset_cursors (t : t) : unit =
  t.cur_block <- -1;
  t.cursor <- 0;
  t.limit <- 0;
  t.ovf_block <- -1;
  t.ovf_cursor <- 0;
  t.ovf_limit <- 0

(* The fused sweep: one ascending pass over the blocks that (per block,
   via [Block.sweep]) recomputes the exact hole bound from the packed
   free map, clears the recyclable flag, and reads the free-line count
   — then rebuilds the recyclable vector in address order (excluding
   [except]).  The sweep charge is per line-mark word scanned, exactly
   as before the fusion. *)
let rebuild_recyclable (t : t) ~(except : Block.t -> bool) : unit =
  let w = weights t in
  Intvec.clear t.recyclable;
  t.recyclable_pos <- 0;
  (* ascending-index iteration: the vector is built already sorted *)
  iter_blocks t (fun b ->
      Cost.charge t.cost (w.Cost.sweep_line *. float_of_int b.Block.nlines);
      let free = Block.sweep b in
      if free > 0 && (not (except b)) && b.Block.index <> t.cur_block
         && b.Block.index <> t.ovf_block
      then begin
        Block.set_recyclable b true;
        Intvec.push t.recyclable b.Block.index
      end)

(* Evacuate the live, unpinned objects of [b] using the normal allocator
   (no collection recursion).  Evacuation is opportunistic, as in Immix:
   an object that cannot be placed right now (e.g. a medium object with
   no overflow space) simply stays where it is.  Returns the number of
   objects left behind. *)
let evacuate_block (t : t) (b : Block.t) : int =
  let w = weights t in
  let left = ref 0 in
  let ids = Intvec.to_list b.Block.objs in
  List.iter
    (fun id ->
      if Object_table.is_alive t.objects id && (not (Object_table.is_pinned t.objects id))
         && not (Object_table.is_los t.objects id)
      then begin
        let addr = Object_table.addr t.objects id in
        if addr / block_bytes = b.Block.index then begin
          let size = Object_table.size t.objects id in
          let new_addr = alloc_nogc t ~size in
          if new_addr < 0 then incr left
          else begin
            Block.remove_object_lines b ~addr ~size;
            Object_table.relocate t.objects id ~new_addr;
            Intvec.push (block_of_addr t new_addr).Block.objs id;
            Cost.charge t.cost (w.Cost.copy_byte *. float_of_int size);
            t.metrics.Metrics.bytes_copied <- t.metrics.Metrics.bytes_copied + size;
            t.metrics.Metrics.objects_evacuated <- t.metrics.Metrics.objects_evacuated + 1
          end
        end
      end)
    ids;
  Block.set_evacuate b false;
  !left

(* Select the blocks a full collection will evacuate: blocks flagged by
   a dynamic failure always; when defragmentation was requested, also
   the sparsest half of the blocks under the occupancy threshold.
   Returns the candidates with their count — sizes are tallied during
   the single selection pass, never by re-measuring the lists. *)
let prepare_defrag (t : t) : Block.t list * int =
  let flagged = ref [] and sparse = ref [] in
  let n_flagged = ref 0 and n_sparse = ref 0 in
  (* On-demand defragmentation consolidates much more aggressively than
     the steady-state threshold: it exists to turn scattered free lines
     back into whole free pages (for the LOS and overflow fallback). *)
  let threshold =
    if t.defrag_requested then Float.max t.cfg.Config.defrag_occupancy 0.90
    else t.cfg.Config.defrag_occupancy
  in
  iter_blocks t (fun b ->
      let usable = b.Block.nlines - Block.failed_lines b in
      if usable > 0 then begin
        let live_lines = usable - Block.free_lines b in
        let ratio = float_of_int live_lines /. float_of_int usable in
        if Block.evacuate b then begin
          flagged := b :: !flagged;
          incr n_flagged
        end
        else if t.cfg.Config.defrag && t.defrag_requested && ratio > 0.0 && ratio < threshold
        then begin
          sparse := (ratio, b) :: !sparse;
          incr n_sparse
        end
      end);
  let flagged = List.rev !flagged and sparse = List.rev !sparse in
  let n_flagged = !n_flagged and n_sparse = !n_sparse in
  if Sys.getenv_opt "HOLES_DEBUG_DEFRAG" <> None then
    Printf.eprintf "[defrag] requested=%b flagged=%d sparse=%d blocks=%d\n%!" t.defrag_requested
      n_flagged n_sparse t.nblocks;
  (* When most blocks are sparse (common under heavy failures), all of
     them would be candidates and evacuation would have no destination.
     Evacuate the sparsest half into the denser half: consolidation
     still converges, and destinations always exist. *)
  let sparse_sorted = List.sort (fun (a, _) (b, _) -> compare a b) sparse in
  let evacuated = List.filteri (fun i _ -> i <= n_sparse / 2) sparse_sorted |> List.map snd in
  let n_evacuated = if n_sparse = 0 then 0 else (n_sparse / 2) + 1 in
  (flagged @ evacuated, n_flagged + n_evacuated)

(* Trace or reclaim one slot — the body of the mark loop.  Liveness is
   oracle-driven ([Object_table.is_alive]); live objects charge their
   mark costs and rebuild line accounting, dead ones are released (LOS
   entries free their pages).  The two interleave in ascending-id
   order: that single order is what makes the figures bit-identical
   across runs, so batching below preserves it exactly. *)
let mark_slot (t : t) (w : Cost.weights) (id : int) : unit =
  if Object_table.is_alive t.objects id then begin
    let nrefs = Object_table.nrefs t.objects id in
    Cost.charge t.cost (w.Cost.mark_obj +. (w.Cost.mark_edge *. float_of_int nrefs));
    let addr = Object_table.addr t.objects id in
    if not (Object_table.is_los t.objects id) then begin
      let b = block_of_addr t addr in
      Block.add_object_lines b ~addr ~size:(Object_table.size t.objects id);
      Intvec.push b.Block.objs id
    end;
    Object_table.clear_nursery_flag t.objects id
  end
  else begin
    if Object_table.is_los t.objects id then
      Los.free t.los ~addr:(Object_table.addr t.objects id);
    Object_table.release t.objects id
  end

(* Drain the mark deque: a dense loop over the queued slot ids. *)
let drain_mark_queue (t : t) (w : Cost.weights) : unit =
  let q = t.mark_queue in
  let n = Intvec.length q in
  for i = 0 to n - 1 do
    mark_slot t w (Intvec.unsafe_get q i)
  done;
  Intvec.clear q

let mark_batch_size = 256

(** A full-heap collection: trace all live objects, rebuild line marks,
    reclaim dead objects (Immix + LOS), dissolve empty blocks, then
    optionally defragment sparse or failure-hit blocks by evacuation. *)
let full_gc (t : t) : unit =
  let w = weights t in
  let armed = Trace.armed t.tracer in
  Cost.begin_gc t.cost;
  if armed then Trace.begin_span t.tracer ~tid:Trace.tid_gc "full_gc";
  Cost.charge t.cost w.Cost.gc_fixed;
  reset_cursors t;
  iter_blocks t Block.clear_marks;
  (* trace live objects; reclaim dead ones.  Slot ids stream through
     the flat mark deque and are popped in batches: the scan that
     filters occupied slots runs ahead of the processing loop, which
     then works over a dense, prefetch-friendly id array.  Batches
     drain in enqueue order, so the charge sequence is exactly the
     per-slot loop's. *)
  if armed then Trace.begin_span t.tracer ~tid:Trace.tid_gc "mark";
  Object_table.iter_slots t.objects (fun id ->
      Intvec.push t.mark_queue id;
      if Intvec.length t.mark_queue >= mark_batch_size then drain_mark_queue t w);
  drain_mark_queue t w;
  if armed then Trace.end_span t.tracer ~tid:Trace.tid_gc "mark";
  (* sweep: dissolve empty blocks — a single ascending pass over the
     block table (dissolving only blanks the slot, so iterating while
     dissolving is safe) *)
  if armed then Trace.begin_span t.tracer ~tid:Trace.tid_gc "sweep";
  iter_blocks t (fun b -> if Block.is_empty b then dissolve_block t b);
  if armed then Trace.end_span t.tracer ~tid:Trace.tid_gc "sweep";
  (* defragmentation / dynamic-failure evacuation: blocks flagged by a
     dynamic failure are always evacuated; sparse blocks additionally
     when defragmentation is enabled *)
  let candidates, n_candidates = prepare_defrag t in
  if candidates <> [] then begin
    if armed then
      Trace.begin_span t.tracer ~tid:Trace.tid_gc "defrag"
        ~args:[ ("candidates", float_of_int n_candidates) ];
    let is_candidate =
      let set = Hashtbl.create 16 in
      List.iter (fun b -> Hashtbl.replace set b.Block.index ()) candidates;
      fun (b : Block.t) -> Hashtbl.mem set b.Block.index
    in
    rebuild_recyclable t ~except:is_candidate;
    let left_behind = ref 0 in
    List.iter (fun b -> left_behind := !left_behind + evacuate_block t b) candidates;
    (* dissolve blocks the evacuation emptied: single ascending pass *)
    let dissolved = ref 0 in
    iter_blocks t (fun b ->
        if Block.is_empty b && b.Block.index <> t.cur_block && b.Block.index <> t.ovf_block
        then begin
          dissolve_block t b;
          incr dissolved
        end);
    (if Sys.getenv_opt "HOLES_DEBUG_DEFRAG" <> None then
       Printf.eprintf "[defrag] evac done left=%d dissolved=%d evacuated=%d\n%!" !left_behind
         !dissolved t.metrics.Metrics.objects_evacuated);
    if armed then Trace.end_span t.tracer ~tid:Trace.tid_gc "defrag"
  end;
  rebuild_recyclable t ~except:(fun _ -> false);
  Intvec.clear t.nursery;
  Remset.clear t.remset;
  t.want_full <- false;
  t.defrag_requested <- false;
  let pause = Cost.end_gc t.cost in
  t.metrics.Metrics.full_gcs <- t.metrics.Metrics.full_gcs + 1;
  t.metrics.Metrics.pauses_ns <- pause :: t.metrics.Metrics.pauses_ns;
  Stats.observe t.metrics.Metrics.pause_hist pause;
  if armed then
    Trace.end_span t.tracer ~tid:Trace.tid_gc "full_gc" ~args:[ ("pause_ns", pause) ];
  let live = Object_table.live_bytes t.objects in
  if live > t.metrics.Metrics.peak_live_bytes then t.metrics.Metrics.peak_live_bytes <- live;
  t.post_gc_check ()

(** A nursery (sticky mark bits) collection: only objects allocated since
    the last collection are examined; survivors are opportunistically
    copied into available holes (Sec. 4.1 "Sticky Immix"). *)
let nursery_gc (t : t) : unit =
  let w = weights t in
  let armed = Trace.armed t.tracer in
  Cost.begin_gc t.cost;
  if armed then Trace.begin_span t.tracer ~tid:Trace.tid_gc "nursery_gc";
  Cost.charge t.cost w.Cost.gc_nursery_fixed;
  let free_before = total_free_bytes t in
  Cost.charge t.cost (w.Cost.remset_entry *. float_of_int (Remset.size t.remset));
  Remset.clear t.remset;
  Intvec.iter t.nursery (fun id ->
      if not (Object_table.is_alive t.objects id) then begin
        let addr = Object_table.addr t.objects id in
        if addr >= 0 then begin
          if Object_table.is_los t.objects id then Los.free t.los ~addr
          else
            Block.remove_object_lines (block_of_addr t addr) ~addr
              ~size:(Object_table.size t.objects id);
          Object_table.release t.objects id
        end
      end
      else begin
        let size = Object_table.size t.objects id in
        let nrefs = Object_table.nrefs t.objects id in
        Cost.charge t.cost (w.Cost.mark_obj +. (w.Cost.mark_edge *. float_of_int nrefs));
        (if t.cfg.Config.nursery_copy && (not (Object_table.is_pinned t.objects id))
            && not (Object_table.is_los t.objects id)
         then
           let addr = Object_table.addr t.objects id in
           let new_addr = alloc_nogc t ~size in
           if new_addr >= 0 then begin
             Block.remove_object_lines (block_of_addr t addr) ~addr ~size;
             Object_table.relocate t.objects id ~new_addr;
             Intvec.push (block_of_addr t new_addr).Block.objs id;
             Cost.charge t.cost (w.Cost.copy_byte *. float_of_int size);
             t.metrics.Metrics.bytes_copied <- t.metrics.Metrics.bytes_copied + size
           end);
        Object_table.clear_nursery_flag t.objects id
      end);
  Intvec.clear t.nursery;
  (* dissolve empty blocks (single ascending pass) and refresh the
     recycled list *)
  iter_blocks t (fun b ->
      if Block.is_empty b && b.Block.index <> t.cur_block && b.Block.index <> t.ovf_block then
        dissolve_block t b);
  rebuild_recyclable t ~except:(fun _ -> false);
  let freed = total_free_bytes t - free_before in
  let heap_bytes = Page_stock.npages t.stock * Holes_pcm.Geometry.page_bytes in
  if float_of_int freed < 0.12 *. float_of_int heap_bytes then t.want_full <- true;
  let pause = Cost.end_gc t.cost in
  t.metrics.Metrics.nursery_gcs <- t.metrics.Metrics.nursery_gcs + 1;
  t.metrics.Metrics.nursery_pauses_ns <- pause :: t.metrics.Metrics.nursery_pauses_ns;
  Stats.observe t.metrics.Metrics.nursery_pause_hist pause;
  if armed then
    Trace.end_span t.tracer ~tid:Trace.tid_gc "nursery_gc" ~args:[ ("pause_ns", pause) ];
  let live = Object_table.live_bytes t.objects in
  if live > t.metrics.Metrics.peak_live_bytes then t.metrics.Metrics.peak_live_bytes <- live;
  t.post_gc_check ()

(* ------------------------------------------------------------------ *)
(* Public mutator interface                                            *)
(* ------------------------------------------------------------------ *)

let oom (t : t) ~(size : int) : 'a =
  t.metrics.Metrics.out_of_memory <- true;
  t.metrics.Metrics.oom_request <- size;
  raise Out_of_memory

(* The collection-retry ladder, as top-level recursion (the previous
   inner closures allocated four environments per call — on the hottest
   path in the system). *)
let rec alloc_attempt (t : t) ~(size : int) ~(generational : bool) (n : int) : int =
  let r =
    if is_medium t ~size then begin
      let r = alloc_medium_nogc t ~size in
      if r = needs_perfect then begin
        (* static fragmentation, not garbage: go straight to a perfect
           block (Sec. 4.2); escalate to collection only if even the
           perfect grant is exhausted *)
        let a = alloc_medium_perfect t ~size in
        if a >= 0 then a else needs_gc
      end
      else r
    end
    else alloc_small_nogc t ~size
  in
  if r >= 0 then r else alloc_escalate t ~size ~generational n

and alloc_escalate (t : t) ~(size : int) ~(generational : bool) (n : int) : int =
  (* a medium that could not be placed signals fragmentation: ask the
     next full collection to defragment *)
  if is_medium t ~size then t.defrag_requested <- true;
  if n = 0 && generational && not t.want_full then begin
    nursery_gc t;
    alloc_attempt t ~size ~generational 1
  end
  else if n <= 1 then begin
    full_gc t;
    alloc_attempt t ~size ~generational 2
  end
  else if is_medium t ~size then begin
    let a = alloc_medium_perfect t ~size in
    if a >= 0 then a else oom t ~size
  end
  else oom t ~size

(** Allocate [size] bytes (pre-alignment) with the collection-retry
    ladder: nursery collection (sticky), then full collection, then the
    perfect-block fallback for medium objects; raises [Out_of_memory]
    when all fail. *)
let alloc (t : t) ~(size : int) : int =
  let size = Units.aligned_size size in
  alloc_attempt t ~size ~generational:(Config.is_generational t.cfg.Config.collector) 0

(** Register a freshly allocated object id with its block and the
    nursery. *)
let register (t : t) ~(id : int) ~(addr : int) : unit =
  if not (Los.is_los_addr addr) then Intvec.push (block_of_addr t addr).Block.objs id;
  Intvec.push t.nursery id

(** The generational write barrier: [src] (an old object) now references
    a nursery object. *)
let write_barrier (t : t) ~(src : int) : unit =
  Cost.charge t.cost (weights t).Cost.write_barrier;
  if Config.is_generational t.cfg.Config.collector && not (Object_table.is_nursery t.objects src)
  then ignore (Remset.record t.remset ~src)

(** Handle a dynamic line failure at byte address [addr] (Sec. 4.2).

    The affected block is flagged for evacuation and a full (copying)
    collection relocates any objects that overlap the failing line; only
    then is the logical line marked failed — the failure buffer holds the
    data in the interim, so no information is lost.  A pinned object on
    the failing line cannot move: the OS instead remaps the page to a
    perfect page (Sec. 3.3.3 "Pinning support"), so the software-visible
    line never fails; we charge the page copy and a perfect-page grant.
    Dynamic failures also update the backing page's bitmap in the stock,
    so a reassembled block later sees the hole. *)
let rec dynamic_failure (t : t) ~(addr : int) : unit =
  t.metrics.Metrics.dynamic_failures <- t.metrics.Metrics.dynamic_failures + 1;
  if Trace.armed t.tracer then
    Trace.instant t.tracer ~tid:Trace.tid_gc "dynamic_failure"
      ~args:[ ("addr", float_of_int addr) ];
  let bi = addr / block_bytes in
  match block_opt t bi with
  | None ->
      (* the address is not backed by an assembled block (stale address
         or dissolved block): nothing lives there, only OS bookkeeping
         would apply *)
      ()
  | Some b -> dynamic_failure_in_block t ~addr ~bi ~b

and dynamic_failure_in_block (t : t) ~(addr : int) ~(bi : int) ~(b : Block.t) : unit =
  let w = weights t in
  let line = Block.line_of_offset b (addr - b.Block.base) in
  let line_lo = b.Block.base + (line * b.Block.line_size) in
  let line_hi = line_lo + b.Block.line_size in
  (* close bump cursors whose run overlaps the failing line *)
  let overlaps_cursor ~(cur_block : int) ~(cursor : int) ~(limit : int) =
    cur_block = bi && cursor < line_hi && line_lo < limit
  in
  if overlaps_cursor ~cur_block:t.cur_block ~cursor:t.cursor ~limit:t.limit then begin
    t.cur_block <- -1;
    t.cursor <- 0;
    t.limit <- 0
  end;
  if overlaps_cursor ~cur_block:t.ovf_block ~cursor:t.ovf_cursor ~limit:t.ovf_limit then begin
    t.ovf_block <- -1;
    t.ovf_cursor <- 0;
    t.ovf_limit <- 0
  end;
  (* objects overlapping the failing line; dead-but-uncollected objects
     also hold the line until a collection reclaims them *)
  let overlapping ~(alive_only : bool) =
    let acc = ref [] in
    Intvec.iter b.Block.objs (fun id ->
        if ((not alive_only) || Object_table.is_alive t.objects id)
           && Object_table.addr t.objects id >= 0
           && not (Object_table.is_los t.objects id)
        then begin
          let oa = Object_table.addr t.objects id in
          let oe = oa + Object_table.size t.objects id in
          if oa / block_bytes = bi && oa < line_hi && line_lo < oe then acc := id :: !acc
        end);
    !acc
  in
  let affected = overlapping ~alive_only:false in
  let pinned =
    List.filter
      (fun id -> Object_table.is_alive t.objects id && Object_table.is_pinned t.objects id)
      affected
  in
  if pinned <> [] then begin
    (* OS masks the failure: copy the page to a perfect page and remap *)
    Cost.charge t.cost
      (w.Cost.perfect_request +. w.Cost.dram_borrow
      +. (w.Cost.copy_byte *. float_of_int Holes_pcm.Geometry.page_bytes));
    t.metrics.Metrics.bytes_copied <-
      t.metrics.Metrics.bytes_copied + Holes_pcm.Geometry.page_bytes
  end
  else begin
    (if affected <> [] then begin
       Block.set_evacuate b true;
       full_gc t
     end);
    (* the block may have been dissolved by the collection *)
    (match block_opt t bi with
    | None -> ()
    | Some b -> (
        (* evacuation is opportunistic and leaves behind objects it
           cannot place in imperfect memory (at 64 B lines every
           multi-line object is "medium", and a long contiguous hole may
           simply not exist).  A leftover is static fragmentation, not
           garbage: relocate it through the perfect-block fallback, and
           only if even that fails is the heap genuinely full. *)
        let relocate_leftover (id : int) : unit =
          let size = Object_table.size t.objects id in
          let oa = Object_table.addr t.objects id in
          let new_addr =
            let a = alloc_nogc t ~size in
            if a >= 0 then a else alloc_medium_perfect t ~size
          in
          if new_addr < 0 then begin
            t.metrics.Metrics.out_of_memory <- true;
            t.metrics.Metrics.oom_request <- size;
            raise Out_of_memory
          end
          else begin
            Block.remove_object_lines b ~addr:oa ~size;
            Object_table.relocate t.objects id ~new_addr;
            Intvec.push (block_of_addr t new_addr).Block.objs id;
            Cost.charge t.cost (w.Cost.copy_byte *. float_of_int size);
            t.metrics.Metrics.bytes_copied <- t.metrics.Metrics.bytes_copied + size;
            t.metrics.Metrics.objects_evacuated <- t.metrics.Metrics.objects_evacuated + 1
          end
        in
        List.iter relocate_leftover (overlapping ~alive_only:true);
        match Block.fail_line b ~line with
        | `Already_failed | `Was_free -> ()
        | `Was_live -> assert false));
    (* persist the hole on the backing page (64 B PCM granularity) *)
    let off = addr - b.Block.base in
    let page_idx = off / Holes_pcm.Geometry.page_bytes in
    let page_id = b.Block.pages.(page_idx) in
    if page_id >= 0 then
      Page_stock.mark_line_failed t.stock ~id:page_id
        ~line:(off mod Holes_pcm.Geometry.page_bytes / Holes_pcm.Geometry.line_bytes)
  end

(** The assembled block (and page index within it) backed by stock page
    [page], if any — the reverse lookup the OS failure up-call needs to
    turn a page/line pair back into a heap address. *)
let find_page_owner (t : t) ~(page : int) : (Block.t * int) option =
  if page < 0 || page >= Array.length t.page_owner then None
  else
    match block_opt t t.page_owner.(page) with
    | None -> None
    | Some b ->
        (* position within the block's eight pages *)
        let rec pos i =
          if i >= Array.length b.Block.pages then None
          else if b.Block.pages.(i) = page then Some (b, i)
          else pos (i + 1)
        in
        pos 0

(** Stock page id and 64 B PCM line backing heap byte [addr], if the
    address lies in an assembled block ([None] for DRAM-borrowed pages
    and unassembled addresses). *)
let page_backing (t : t) ~(addr : int) : (int * int) option =
  match block_opt t (addr / block_bytes) with
  | None -> None
  | Some b ->
      let off = addr - b.Block.base in
      let pg = b.Block.pages.(off / Holes_pcm.Geometry.page_bytes) in
      if pg < 0 then None
      else Some (pg, off mod Holes_pcm.Geometry.page_bytes / Holes_pcm.Geometry.line_bytes)

(** Request defragmentation at the next full collection (used by the
    VM when the LOS runs short of pages: consolidation dissolves sparse
    blocks back into stock pages). *)
let request_defrag (t : t) : unit = t.defrag_requested <- true

(** Force a collection (used by the VM's LOS retry path). *)
let collect (t : t) ~(full : bool) : unit = if full then full_gc t else nursery_gc t

let live_blocks (t : t) : int = t.nblocks

(** Install the paranoid-verifier hook run at the end of every
    collection (replaces the previous hook). *)
let set_post_gc_check (t : t) (f : unit -> unit) : unit = t.post_gc_check <- f

(** The heap address the bump allocator will hand out next, if a bump
    run is open (main cursor first, then overflow) — the target of the
    adversarial worst-case-placement failure model. *)
let bump_target (t : t) : int option =
  if t.cur_block >= 0 && t.cursor < t.limit then Some t.cursor
  else if t.ovf_block >= 0 && t.ovf_cursor < t.ovf_limit then Some t.ovf_cursor
  else None

(** A uniformly drawn logical-line address within the assembled blocks
    (a failure storm's victim), [None] when no block is assembled. *)
let random_line_addr (t : t) (rng : Xrng.t) : int option =
  if t.nblocks = 0 then None
  else begin
    let k = Xrng.int rng t.nblocks in
    let found = ref None and seen = ref 0 in
    (try
       iter_blocks t (fun b ->
           if !seen = k then begin
             found := Some b;
             raise Exit
           end;
           incr seen)
     with Exit -> ());
    Option.map
      (fun (b : Block.t) ->
        b.Block.base + (Xrng.int rng b.Block.nlines * b.Block.line_size))
      !found
  end

(** Invariant checks (valid at any point, not just after a collection):
    no *live* object overlaps a failed line, and per-line live counts
    match the object table exactly — dead objects awaiting collection
    legitimately still hold their lines. *)
let check_invariants (t : t) : (unit, string) result =
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  (* recompute per-line expected counts over every uncollected object *)
  let expected : (int, int array) Hashtbl.t = Hashtbl.create 64 in
  iter_blocks t (fun b -> Hashtbl.replace expected b.Block.index (Array.make b.Block.nlines 0));
  Object_table.iter_slots t.objects (fun id ->
      if not (Object_table.is_los t.objects id) then begin
        let alive = Object_table.is_alive t.objects id in
        let addr = Object_table.addr t.objects id in
        let size = Object_table.size t.objects id in
        match block_opt t (addr / block_bytes) with
        | None -> if alive then fail (Printf.sprintf "object %d at %d not in any block" id addr)
        | Some b ->
            let lo, hi = Block.lines_of_object b ~addr ~size in
            for l = lo to hi do
              if alive && Block.is_failed_line b l then
                fail (Printf.sprintf "object %d overlaps failed line %d of block %d" id l b.Block.index);
              (Hashtbl.find expected b.Block.index).(l) <-
                (Hashtbl.find expected b.Block.index).(l) + 1
            done
      end);
  iter_blocks t (fun b ->
      let i = b.Block.index in
      let exp = Hashtbl.find expected i in
      for l = 0 to b.Block.nlines - 1 do
        if b.Block.live.(l) <> exp.(l) then
          fail
            (Printf.sprintf "block %d line %d: live count %d, expected %d" i l b.Block.live.(l)
               exp.(l))
      done);
  match !err with None -> Ok () | Some m -> Error m
