(** Failure-aware Immix and Sticky Immix (paper Secs. 4.1–4.2).

    Immix manages memory as 32 KB blocks of logical lines.  A bump
    pointer allocates into contiguous runs of free lines and *skips over
    unavailable lines* — which is precisely why failure awareness is a
    minimal extension: failed lines are a fourth line state that the
    allocator skips exactly like live lines.  Medium objects (larger than
    a line) that do not fit the current run go to a dedicated overflow
    block; the failure-aware version searches the remainder of the
    overflow block and only then falls back to requesting a perfect
    block.  Sticky Immix adds generational behaviour via sticky mark
    bits: objects allocated since the last collection form the logical
    nursery, collected from the remembered set without touching old
    objects.  Dynamic failures reuse the defragmentation machinery:
    affected blocks are flagged and their live objects evacuated by a
    full collection. *)

open Holes_stdx
open Holes_heap
module Trace = Holes_obs.Trace
module Stats = Holes_obs.Stats

exception Out_of_memory = Oom.Out_of_memory

type t = {
  cfg : Config.t;
  cost : Cost.t;
  metrics : Metrics.t;
  stock : Page_stock.t;
  objects : Object_table.t;
  los : Los.t;
  mutable table : Block.t option array;
      (** block index -> block, dense.  Indices are monotonic (a
          dissolved block's slot stays [None]), so the allocation fast
          path is one array load instead of a hash probe, and iteration
          is ascending-index — the deterministic order every sweep and
          defrag pass uses. *)
  btbl : Block.table;
      (** the struct-of-arrays per-block metadata (free/failed counts,
          hole bounds, flags), shared by every block and indexed by
          block id — sweep and defrag selection stream over it *)
  mutable nblocks : int;  (** live (assembled, not dissolved) blocks *)
  page_owner : int array;
      (** stock page id -> owning block index, -1 when unassembled: the
          O(1) reverse index behind [find_page_owner], replacing the
          all-blocks × all-pages scan the OS failure up-call used to
          pay *)
  mutable next_block_index : int;
  recyclable : Intvec.t;
      (** block indices with free lines, address order; consumed front
          to back through [recyclable_pos] (a cursor into a flat vector
          instead of popping list cells) *)
  mutable recyclable_pos : int;
  mark_queue : Intvec.t;
      (** the flat mark deque: slot ids are enqueued in ascending-id
          order and drained in fixed-size batches, so the trace loop
          runs over a dense int array (see [full_gc]) *)
  (* bump-pointer state: main cursor *)
  mutable cur_block : int;  (** -1 = none *)
  mutable cursor : int;
  mutable limit : int;
  (* overflow allocation state *)
  mutable ovf_block : int;
  mutable ovf_cursor : int;
  mutable ovf_limit : int;
  (* generational state *)
  remset : Remset.t;
  nursery : Intvec.t;
  mutable want_full : bool;  (** last nursery collection yielded too little *)
  mutable defrag_requested : bool;
      (** defragment at the next full collection (Immix defragments on
          demand: set by allocation failures and dynamic failures) *)
  mutable post_gc_check : unit -> unit;
      (** paranoid-verifier hook, run at the end of every collection
          (installed by [Vm] when [Config.verify] is set; [ignore]
          otherwise, so the disabled cost is one closure call) *)
  (* incremental (snapshot-at-the-beginning) collection state.  A cycle
     is the same full collection as [full_gc] — same mark charges, same
     sweep passes, same evacuation — cut into budgeted slices driven
     from the allocation path.  [mark_queue] doubles as the persistent
     snapshot work-list: entries are slot ids, sign-encoded with
     liveness at snapshot time (id = live, lnot id = dead). *)
  mutable gc_slice : int;
      (** work budget per slice in mark-queue entries; 0 = stop-the-world
          (mutable so the torture driver can toggle mid-run) *)
  satb : Remset.t;
      (** the SATB mutation log: sources of reference stores executed
          while marking is in progress and the source is already black;
          drained (and charged like remset entries) at mark end *)
  mutable inc_phase : int;  (** 0 idle / 1 mark / 2 sweep / 3 defrag *)
  mutable inc_pos : int;
      (** resume cursor: next [mark_queue] entry (mark phase) or next
          block-table index (sweep phase) *)
  mutable inc_epoch : int;  (** current mark epoch ("black" = marked in it) *)
  inc_recyclable : Intvec.t;
      (** recyclable vector under construction by the sweep phase,
          installed wholesale when the pass completes *)
  mutable inc_candidates : int list;  (** defrag candidates (block indices) left to evacuate *)
  mutable inc_snapshot_len : int;  (** mark-queue length at snapshot *)
  mutable inc_nursery_len : int;  (** nursery length at snapshot *)
  mutable inc_marked : int;  (** cycle work counter: snapshot-live processed *)
  mutable inc_released : int;  (** cycle work counter: snapshot-dead released *)
  mutable pending_retire : (int * int * int) list;
      (** deferred dynamic-failure line retirements, newest first:
          (heap addr, stock page id or -1, 64 B line within the page) —
          completed by the defrag phase, so a failure storm never forces
          a monolithic evacuation pause *)
  mutable inc_trigger : int;  (** allocations since the last proactive-start check *)
  tracer : Trace.view;  (** gc/alloc-lane events: phase spans, slow paths *)
}

let block_bytes = Units.block_bytes

let create ?(tracer = Trace.null) ~(cfg : Config.t) ~(cost : Cost.t) ~(metrics : Metrics.t)
    ~(stock : Page_stock.t) ~(objects : Object_table.t) ~(los : Los.t) () : t =
  let t =
    {
    cfg;
    cost;
    metrics;
    stock;
    objects;
    los;
    table = Array.make 256 None;
    btbl = Block.table_create ();
    nblocks = 0;
    page_owner = Array.make (Page_stock.npages stock) (-1);
    next_block_index = 0;
    recyclable = Intvec.create ();
    recyclable_pos = 0;
    mark_queue = Intvec.create ~capacity:256 ();
    cur_block = -1;
    cursor = 0;
    limit = 0;
    ovf_block = -1;
    ovf_cursor = 0;
    ovf_limit = 0;
      remset = Remset.create ();
      (* pre-sized: the nursery absorbs every mutator allocation between
         collections, and doubling it up from 16 re-copies the whole
         vector log n times on the hottest path *)
      nursery = Intvec.create ~capacity:1024 ();
      want_full = false;
      defrag_requested = false;
      post_gc_check = ignore;
      gc_slice = cfg.Config.gc_slice;
      satb = Remset.create ();
      inc_phase = 0;
      inc_pos = 0;
      inc_epoch = 0;
      inc_recyclable = Intvec.create ();
      inc_candidates = [];
      inc_snapshot_len = 0;
      inc_nursery_len = 0;
      inc_marked = 0;
      inc_released = 0;
      pending_retire = [];
      inc_trigger = 0;
      tracer;
    }
  in
  if cfg.Config.gc_slice > 0 then metrics.Metrics.inc_active <- true;
  (* the "has sufficient memory" test for DRAM borrowing must see the
     free lines held inside partially used blocks, not just free stock
     pages *)
  Page_stock.set_extra_free stock (fun () ->
      let acc = ref 0 in
      for i = 0 to t.next_block_index - 1 do
        match Array.unsafe_get t.table i with
        | Some b -> acc := !acc + Block.free_bytes b
        | None -> ()
      done;
      !acc);
  t

let weights (t : t) : Cost.weights = t.cost.Cost.weights

(* ascending-index iteration over live blocks — the single deterministic
   order used by every collection pass *)
let iter_blocks (t : t) (f : Block.t -> unit) : unit =
  for i = 0 to t.next_block_index - 1 do
    match Array.unsafe_get t.table i with Some b -> f b | None -> ()
  done

let block_opt (t : t) (index : int) : Block.t option =
  if index < 0 || index >= t.next_block_index then None else t.table.(index)

let block (t : t) (index : int) : Block.t =
  match block_opt t index with Some b -> b | None -> raise Not_found

let block_of_addr (t : t) (addr : int) : Block.t = block t (addr / block_bytes)

let is_medium (t : t) ~(size : int) : bool = size > t.cfg.Config.line_size

(* ------------------------------------------------------------------ *)
(* Block acquisition                                                   *)
(* ------------------------------------------------------------------ *)

(* Install a block built from [pages] (stock ids; -1 = borrowed DRAM). *)
let install_block (t : t) ~(pages : int array) : int =
  let w = weights t in
  let index = t.next_block_index in
  t.next_block_index <- t.next_block_index + 1;
  let empty_bitmap = Bitset.create Holes_pcm.Geometry.lines_per_page in
  let b =
    Block.create ~tbl:t.btbl ~index ~base:(index * block_bytes)
      ~line_size:t.cfg.Config.line_size ~pages
      ~page_bitmap:(fun id ->
        if id = -1 then empty_bitmap else (Page_stock.page t.stock id).Page_stock.bitmap)
  in
  if index >= Array.length t.table then begin
    let grown = Array.make (max 16 (2 * Array.length t.table)) None in
    Array.blit t.table 0 grown 0 (Array.length t.table);
    t.table <- grown
  end;
  t.table.(index) <- Some b;
  t.nblocks <- t.nblocks + 1;
  Array.iter (fun id -> if id >= 0 then t.page_owner.(id) <- index) pages;
  Cost.charge t.cost w.Cost.block_assemble;
  t.metrics.Metrics.blocks_assembled <- t.metrics.Metrics.blocks_assembled + 1;
  index

(* Assemble a fresh block from eight relaxed stock pages.  Returns the
   block index, or None when the stock cannot supply a block. *)
let assemble_block (t : t) : int option =
  let pages = Array.make Units.pages_per_block (-2) in
  let rec take i =
    if i = Units.pages_per_block then true
    else
      match Page_stock.take_relaxed t.stock with
      | Some p ->
          pages.(i) <- p;
          take (i + 1)
      | None ->
          (* roll back *)
          for j = 0 to i - 1 do
            Page_stock.return_page t.stock pages.(j)
          done;
          false
  in
  if not (take 0) then None else Some (install_block t ~pages)

(* Assemble a perfect block for the overflow fallback: eight perfect
   pages, borrowing DRAM where the perfect pool is dry (Sec. 3.3.3).
   None when both the perfect pool and the borrow budget are exhausted. *)
let assemble_perfect_block (t : t) : int option =
  let w = weights t in
  let pages = Array.make Units.pages_per_block (-2) in
  let rec take i =
    if i = Units.pages_per_block then true
    else begin
      Cost.charge t.cost w.Cost.perfect_request;
      match Page_stock.take_perfect t.stock with
      | Page_stock.Perfect id ->
          pages.(i) <- id;
          take (i + 1)
      | Page_stock.Borrowed ->
          Cost.charge t.cost w.Cost.dram_borrow;
          pages.(i) <- -1;
          take (i + 1)
      | Page_stock.Exhausted ->
          for j = 0 to i - 1 do
            if pages.(j) = -1 then Page_stock.return_borrowed t.stock
            else Page_stock.return_page t.stock pages.(j)
          done;
          false
    end
  in
  if not (take 0) then None
  else begin
    let bi = install_block t ~pages in
    Block.set_perfect_grant (block t bi) true;
    Some bi
  end

(* Dissolve a completely free block, returning its pages to the stock. *)
let dissolve_block (t : t) (b : Block.t) : unit =
  Array.iter
    (fun id ->
      if id = -1 then Page_stock.return_borrowed t.stock
      else begin
        t.page_owner.(id) <- -1;
        Page_stock.return_page t.stock id
      end)
    b.Block.pages;
  t.table.(b.Block.index) <- None;
  t.nblocks <- t.nblocks - 1

(* ------------------------------------------------------------------ *)
(* Bump allocation                                                     *)
(* ------------------------------------------------------------------ *)

let[@inline] charge_alloc (t : t) ~(size : int) : unit =
  let w = weights t in
  Cost.charge t.cost (w.Cost.alloc_fast +. (w.Cost.alloc_byte *. float_of_int size))

(* Place an object at the main cursor (caller guarantees fit).  This is
   the true bump fast path: bump, account the touched lines, charge —
   no option boxing, no closure, no search. *)
let place_at_cursor (t : t) ~(size : int) : int =
  let addr = t.cursor in
  t.cursor <- t.cursor + size;
  let b = block t t.cur_block in
  Block.add_object_lines b ~addr ~size;
  charge_alloc t ~size;
  addr

let place_at_ovf (t : t) ~(size : int) : int =
  let addr = t.ovf_cursor in
  t.ovf_cursor <- t.ovf_cursor + size;
  let b = block t t.ovf_block in
  Block.add_object_lines b ~addr ~size;
  charge_alloc t ~size;
  addr

(* Point the main cursor at a hole of [b]; true on success. *)
let set_cursor_to_hole (t : t) (b : Block.t) ~(from_line : int) ~(min_bytes : int) : bool =
  let enc = Block.find_hole_enc b ~from_line ~min_bytes in
  if enc < 0 then false
  else begin
      let s = enc lsr 30 and e = enc land 0x3FFFFFFF in
      let examined = e - (if from_line > 0 then from_line else 0) in
      let w = weights t in
      Cost.charge t.cost (w.Cost.line_scan *. float_of_int examined);
      t.metrics.Metrics.lines_scanned <- t.metrics.Metrics.lines_scanned + examined;
      Stats.observe t.metrics.Metrics.hole_search_hist (float_of_int examined);
      t.cur_block <- b.Block.index;
      t.cursor <- b.Block.base + (s * b.Block.line_size);
      t.limit <- b.Block.base + (e * b.Block.line_size);
      true
  end

(* Small-object allocation without triggering collection.  Returns the
   address, or -1 when the heap is exhausted at this instant.  The fast
   path is a single compare against the bump limit; [find_hole] is only
   re-entered on hole exhaustion (the slow path below). *)
let rec alloc_small_nogc (t : t) ~(size : int) : int =
  if t.cur_block >= 0 && t.cursor + size <= t.limit then place_at_cursor t ~size
  else alloc_small_slow t ~size

and alloc_small_slow (t : t) ~(size : int) : int =
  let w = weights t in
  (* advance to the next hole in the current block *)
  let advanced =
    t.cur_block >= 0
    &&
    let b = block t t.cur_block in
    let from_line = (t.limit - b.Block.base) / b.Block.line_size in
    let ok = set_cursor_to_hole t b ~from_line ~min_bytes:size in
    if ok then begin
      Cost.charge t.cost w.Cost.hole_skip;
      t.metrics.Metrics.hole_skips <- t.metrics.Metrics.hole_skips + 1;
      if Trace.armed t.tracer then
        Trace.instant t.tracer ~tid:Trace.tid_alloc "hole_skip"
    end;
    ok
  in
  if advanced then place_at_cursor t ~size
  else begin
    (* recycled blocks first (Immix allocation order, Sec. 4.1): walk
       the flat recyclable vector through its cursor *)
    let rec try_recyclable () =
      if t.recyclable_pos >= Intvec.length t.recyclable then false
      else begin
        let bi = Intvec.unsafe_get t.recyclable t.recyclable_pos in
        t.recyclable_pos <- t.recyclable_pos + 1;
        (* an incremental sweep slice may have dissolved a listed block
           since the vector was built; skip the stale entry *)
        match block_opt t bi with
        | None -> try_recyclable ()
        | Some b ->
            Block.set_recyclable b false;
            Cost.charge t.cost w.Cost.block_open;
            if set_cursor_to_hole t b ~from_line:0 ~min_bytes:size then true
            else try_recyclable ()
      end
    in
    if try_recyclable () then place_at_cursor t ~size
    else
      (* then completely free blocks from the global pool *)
      match assemble_block t with
      | None -> -1
      | Some bi ->
          Cost.charge t.cost w.Cost.block_open;
          let b = block t bi in
          if set_cursor_to_hole t b ~from_line:0 ~min_bytes:size then place_at_cursor t ~size
          else begin
            (* an extremely damaged block can lack any usable hole;
               return its pages immediately and try the next one *)
            dissolve_block t b;
            alloc_small_nogc t ~size
          end
  end

(* Medium-object overflow allocation (Sec. 4.1 "overflow allocation",
   failure-aware re-search per Sec. 4.2).  Returns the address, or one
   of two negative sentinels (no variant boxing on the alloc path):
   [needs_gc] — memory genuinely exhausted: collect and retry;
   [needs_perfect] — free memory exists but is too fragmented for this
   object: request a perfect block (no collection would change the
   static holes).

   The 2–8 line medium fast path: a medium object whose size fits the
   current bump run is placed directly at the cursor — it never touches
   the overflow state, the LOS table, or a hole search. *)
let needs_gc = -1
let needs_perfect = -2

let alloc_medium_nogc (t : t) ~(size : int) : int =
  let w = weights t in
  (* fits the current bump run? then no overflow needed *)
  if t.cur_block >= 0 && t.cursor + size <= t.limit then place_at_cursor t ~size
  else begin
    t.metrics.Metrics.overflow_allocs <- t.metrics.Metrics.overflow_allocs + 1;
    if t.ovf_block >= 0 && t.ovf_cursor + size <= t.ovf_limit then place_at_ovf t ~size
    else begin
      (* failure-aware change: search the remainder of the overflow block
         for a suitably sized hole before giving up on it *)
      let search_ovf () =
        t.ovf_block >= 0
        &&
        let b = block t t.ovf_block in
        t.metrics.Metrics.overflow_searches <- t.metrics.Metrics.overflow_searches + 1;
        if Trace.armed t.tracer then
          Trace.instant t.tracer ~tid:Trace.tid_alloc "overflow_search"
            ~args:[ ("size", float_of_int size) ];
        let enc = Block.find_hole_enc b ~from_line:0 ~min_bytes:size in
        if enc < 0 then false
        else begin
            let s = enc lsr 30 and e = enc land 0x3FFFFFFF in
            let examined = e in
            Cost.charge t.cost
              (w.Cost.hole_skip +. (w.Cost.line_scan *. float_of_int examined));
            t.metrics.Metrics.lines_scanned <- t.metrics.Metrics.lines_scanned + examined;
            Stats.observe t.metrics.Metrics.hole_search_hist (float_of_int examined);
            t.metrics.Metrics.hole_skips <- t.metrics.Metrics.hole_skips + 1;
            t.ovf_cursor <- b.Block.base + (s * b.Block.line_size);
            t.ovf_limit <- b.Block.base + (e * b.Block.line_size);
            true
        end
      in
      if search_ovf () then place_at_ovf t ~size
      else
        match assemble_block t with
        | Some bi -> (
            Cost.charge t.cost w.Cost.block_open;
            let b = block t bi in
            let enc = Block.find_hole_enc b ~from_line:0 ~min_bytes:size in
            if enc >= 0 then begin
                let s = enc lsr 30 and e = enc land 0x3FFFFFFF in
                let examined = e in
                Cost.charge t.cost (w.Cost.line_scan *. float_of_int examined);
                t.metrics.Metrics.lines_scanned <- t.metrics.Metrics.lines_scanned + examined;
                Stats.observe t.metrics.Metrics.hole_search_hist (float_of_int examined);
                t.ovf_block <- bi;
                t.ovf_cursor <- b.Block.base + (s * b.Block.line_size);
                t.ovf_limit <- b.Block.base + (e * b.Block.line_size);
                place_at_ovf t ~size
            end
            else begin
                (* even a completely fresh block has no big-enough hole:
                   the *static* failure pattern, not garbage, is the
                   obstacle.  A collection cannot help; hand the block's
                   pages back and request a perfect block. *)
                dissolve_block t b;
                needs_perfect
            end)
        | None -> needs_gc
    end
  end

(* Perfect-block fallback for medium objects that cannot be placed in
   imperfect memory (Sec. 3.3.3 / 4.2).  Returns -1 when the perfect
   pool and the DRAM borrow budget are both exhausted (caller
   collects/fails). *)
let alloc_medium_perfect (t : t) ~(size : int) : int =
  t.metrics.Metrics.perfect_block_fallbacks <- t.metrics.Metrics.perfect_block_fallbacks + 1;
  if Trace.armed t.tracer then
    Trace.instant t.tracer ~tid:Trace.tid_alloc "perfect_fallback"
      ~args:[ ("size", float_of_int size) ];
  match assemble_perfect_block t with
  | None -> -1
  | Some bi ->
      Cost.charge t.cost (weights t).Cost.block_open;
      t.ovf_block <- bi;
      let b = block t bi in
      t.ovf_cursor <- b.Block.base;
      t.ovf_limit <- b.Block.base + block_bytes;
      place_at_ovf t ~size

(* Allocation attempt without collection, dispatching on size class:
   the address, or -1.  Used by evacuation and nursery copying, which
   must neither recurse into a collection nor consume perfect blocks. *)
let alloc_nogc (t : t) ~(size : int) : int =
  if is_medium t ~size then
    let r = alloc_medium_nogc t ~size in
    if r >= 0 then r else -1
  else alloc_small_nogc t ~size

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)
(* ------------------------------------------------------------------ *)

let total_free_bytes (t : t) : int =
  let blocks_free = ref 0 in
  iter_blocks t (fun b -> blocks_free := !blocks_free + Block.free_bytes b);
  Page_stock.free_usable_bytes t.stock + !blocks_free

let reset_cursors (t : t) : unit =
  t.cur_block <- -1;
  t.cursor <- 0;
  t.limit <- 0;
  t.ovf_block <- -1;
  t.ovf_cursor <- 0;
  t.ovf_limit <- 0

(* The fused sweep: one ascending pass over the blocks that (per block,
   via [Block.sweep]) recomputes the exact hole bound from the packed
   free map, clears the recyclable flag, and reads the free-line count
   — then rebuilds the recyclable vector in address order (excluding
   [except]).  The sweep charge is per line-mark word scanned, exactly
   as before the fusion. *)
let rebuild_recyclable (t : t) ~(except : Block.t -> bool) : unit =
  let w = weights t in
  Intvec.clear t.recyclable;
  t.recyclable_pos <- 0;
  (* ascending-index iteration: the vector is built already sorted *)
  iter_blocks t (fun b ->
      Cost.charge t.cost (w.Cost.sweep_line *. float_of_int b.Block.nlines);
      let free = Block.sweep b in
      if free > 0 && (not (except b)) && b.Block.index <> t.cur_block
         && b.Block.index <> t.ovf_block
      then begin
        Block.set_recyclable b true;
        Intvec.push t.recyclable b.Block.index
      end)

(* Evacuate the live, unpinned objects of [b] using the normal allocator
   (no collection recursion).  Evacuation is opportunistic, as in Immix:
   an object that cannot be placed right now (e.g. a medium object with
   no overflow space) simply stays where it is.  Returns the number of
   objects left behind. *)
let evacuate_block (t : t) (b : Block.t) : int =
  let w = weights t in
  let left = ref 0 in
  let ids = Intvec.to_list b.Block.objs in
  List.iter
    (fun id ->
      if Object_table.is_alive t.objects id && (not (Object_table.is_pinned t.objects id))
         && not (Object_table.is_los t.objects id)
      then begin
        let addr = Object_table.addr t.objects id in
        if addr / block_bytes = b.Block.index then begin
          let size = Object_table.size t.objects id in
          let new_addr = alloc_nogc t ~size in
          if new_addr < 0 then incr left
          else begin
            Block.remove_object_lines b ~addr ~size;
            Object_table.relocate t.objects id ~new_addr;
            Intvec.push (block_of_addr t new_addr).Block.objs id;
            Cost.charge t.cost (w.Cost.copy_byte *. float_of_int size);
            t.metrics.Metrics.bytes_copied <- t.metrics.Metrics.bytes_copied + size;
            t.metrics.Metrics.objects_evacuated <- t.metrics.Metrics.objects_evacuated + 1
          end
        end
      end)
    ids;
  Block.set_evacuate b false;
  !left

(* Select the blocks a full collection will evacuate: blocks flagged by
   a dynamic failure always; when defragmentation was requested, also
   the sparsest half of the blocks under the occupancy threshold.
   Returns the candidates with their count — sizes are tallied during
   the single selection pass, never by re-measuring the lists. *)
let prepare_defrag (t : t) : Block.t list * int =
  let flagged = ref [] and sparse = ref [] in
  let n_flagged = ref 0 and n_sparse = ref 0 in
  (* On-demand defragmentation consolidates much more aggressively than
     the steady-state threshold: it exists to turn scattered free lines
     back into whole free pages (for the LOS and overflow fallback). *)
  let threshold =
    if t.defrag_requested then Float.max t.cfg.Config.defrag_occupancy 0.90
    else t.cfg.Config.defrag_occupancy
  in
  iter_blocks t (fun b ->
      let usable = b.Block.nlines - Block.failed_lines b in
      if usable > 0 then begin
        let live_lines = usable - Block.free_lines b in
        let ratio = float_of_int live_lines /. float_of_int usable in
        if Block.evacuate b then begin
          flagged := b :: !flagged;
          incr n_flagged
        end
        else if t.cfg.Config.defrag && t.defrag_requested && ratio > 0.0 && ratio < threshold
        then begin
          sparse := (ratio, b) :: !sparse;
          incr n_sparse
        end
      end);
  let flagged = List.rev !flagged and sparse = List.rev !sparse in
  let n_flagged = !n_flagged and n_sparse = !n_sparse in
  if Sys.getenv_opt "HOLES_DEBUG_DEFRAG" <> None then
    Printf.eprintf "[defrag] requested=%b flagged=%d sparse=%d blocks=%d\n%!" t.defrag_requested
      n_flagged n_sparse t.nblocks;
  (* When most blocks are sparse (common under heavy failures), all of
     them would be candidates and evacuation would have no destination.
     Evacuate the sparsest half into the denser half: consolidation
     still converges, and destinations always exist. *)
  let sparse_sorted = List.sort (fun (a, _) (b, _) -> compare a b) sparse in
  let evacuated = List.filteri (fun i _ -> i <= n_sparse / 2) sparse_sorted |> List.map snd in
  let n_evacuated = if n_sparse = 0 then 0 else (n_sparse / 2) + 1 in
  (flagged @ evacuated, n_flagged + n_evacuated)

(* Trace or reclaim one slot — the body of the mark loop.  Liveness is
   oracle-driven ([Object_table.is_alive]); live objects charge their
   mark costs and rebuild line accounting, dead ones are released (LOS
   entries free their pages).  The two interleave in ascending-id
   order: that single order is what makes the figures bit-identical
   across runs, so batching below preserves it exactly. *)
let mark_slot (t : t) (w : Cost.weights) (id : int) : unit =
  if Object_table.is_alive t.objects id then begin
    let nrefs = Object_table.nrefs t.objects id in
    Cost.charge t.cost (w.Cost.mark_obj +. (w.Cost.mark_edge *. float_of_int nrefs));
    let addr = Object_table.addr t.objects id in
    if not (Object_table.is_los t.objects id) then begin
      let b = block_of_addr t addr in
      Block.add_object_lines b ~addr ~size:(Object_table.size t.objects id);
      Intvec.push b.Block.objs id
    end;
    Object_table.clear_nursery_flag t.objects id
  end
  else begin
    if Object_table.is_los t.objects id then
      Los.free t.los ~addr:(Object_table.addr t.objects id);
    Object_table.release t.objects id
  end

(* Drain the mark deque: a dense loop over the queued slot ids. *)
let drain_mark_queue (t : t) (w : Cost.weights) : unit =
  let q = t.mark_queue in
  let n = Intvec.length q in
  for i = 0 to n - 1 do
    mark_slot t w (Intvec.unsafe_get q i)
  done;
  Intvec.clear q

let mark_batch_size = 256

(** A full-heap collection: trace all live objects, rebuild line marks,
    reclaim dead objects (Immix + LOS), dissolve empty blocks, then
    optionally defragment sparse or failure-hit blocks by evacuation. *)
let full_gc (t : t) : unit =
  let w = weights t in
  let armed = Trace.armed t.tracer in
  Cost.begin_gc t.cost;
  if armed then Trace.begin_span t.tracer ~tid:Trace.tid_gc "full_gc";
  Cost.charge t.cost w.Cost.gc_fixed;
  reset_cursors t;
  iter_blocks t Block.clear_marks;
  (* trace live objects; reclaim dead ones.  Slot ids stream through
     the flat mark deque and are popped in batches: the scan that
     filters occupied slots runs ahead of the processing loop, which
     then works over a dense, prefetch-friendly id array.  Batches
     drain in enqueue order, so the charge sequence is exactly the
     per-slot loop's. *)
  if armed then Trace.begin_span t.tracer ~tid:Trace.tid_gc "mark";
  Object_table.iter_slots t.objects (fun id ->
      Intvec.push t.mark_queue id;
      if Intvec.length t.mark_queue >= mark_batch_size then drain_mark_queue t w);
  drain_mark_queue t w;
  if armed then Trace.end_span t.tracer ~tid:Trace.tid_gc "mark";
  (* sweep: dissolve empty blocks — a single ascending pass over the
     block table (dissolving only blanks the slot, so iterating while
     dissolving is safe) *)
  if armed then Trace.begin_span t.tracer ~tid:Trace.tid_gc "sweep";
  iter_blocks t (fun b -> if Block.is_empty b then dissolve_block t b);
  if armed then Trace.end_span t.tracer ~tid:Trace.tid_gc "sweep";
  (* defragmentation / dynamic-failure evacuation: blocks flagged by a
     dynamic failure are always evacuated; sparse blocks additionally
     when defragmentation is enabled *)
  let candidates, n_candidates = prepare_defrag t in
  if candidates <> [] then begin
    if armed then
      Trace.begin_span t.tracer ~tid:Trace.tid_gc "defrag"
        ~args:[ ("candidates", float_of_int n_candidates) ];
    let is_candidate =
      let set = Hashtbl.create 16 in
      List.iter (fun b -> Hashtbl.replace set b.Block.index ()) candidates;
      fun (b : Block.t) -> Hashtbl.mem set b.Block.index
    in
    rebuild_recyclable t ~except:is_candidate;
    let left_behind = ref 0 in
    List.iter (fun b -> left_behind := !left_behind + evacuate_block t b) candidates;
    (* dissolve blocks the evacuation emptied: single ascending pass *)
    let dissolved = ref 0 in
    iter_blocks t (fun b ->
        if Block.is_empty b && b.Block.index <> t.cur_block && b.Block.index <> t.ovf_block
        then begin
          dissolve_block t b;
          incr dissolved
        end);
    (if Sys.getenv_opt "HOLES_DEBUG_DEFRAG" <> None then
       Printf.eprintf "[defrag] evac done left=%d dissolved=%d evacuated=%d\n%!" !left_behind
         !dissolved t.metrics.Metrics.objects_evacuated);
    if armed then Trace.end_span t.tracer ~tid:Trace.tid_gc "defrag"
  end;
  rebuild_recyclable t ~except:(fun _ -> false);
  Intvec.clear t.nursery;
  Remset.clear t.remset;
  t.want_full <- false;
  t.defrag_requested <- false;
  let pause = Cost.end_gc t.cost in
  t.metrics.Metrics.full_gcs <- t.metrics.Metrics.full_gcs + 1;
  t.metrics.Metrics.pauses_ns <- pause :: t.metrics.Metrics.pauses_ns;
  Stats.observe t.metrics.Metrics.pause_hist pause;
  if armed then
    Trace.end_span t.tracer ~tid:Trace.tid_gc "full_gc" ~args:[ ("pause_ns", pause) ];
  let live = Object_table.live_bytes t.objects in
  if live > t.metrics.Metrics.peak_live_bytes then t.metrics.Metrics.peak_live_bytes <- live;
  t.post_gc_check ()

(** A nursery (sticky mark bits) collection: only objects allocated since
    the last collection are examined; survivors are opportunistically
    copied into available holes (Sec. 4.1 "Sticky Immix"). *)
let nursery_gc (t : t) : unit =
  let w = weights t in
  let armed = Trace.armed t.tracer in
  Cost.begin_gc t.cost;
  if armed then Trace.begin_span t.tracer ~tid:Trace.tid_gc "nursery_gc";
  Cost.charge t.cost w.Cost.gc_nursery_fixed;
  let free_before = total_free_bytes t in
  Cost.charge t.cost (w.Cost.remset_entry *. float_of_int (Remset.size t.remset));
  Remset.clear t.remset;
  Intvec.iter t.nursery (fun id ->
      if not (Object_table.is_alive t.objects id) then begin
        let addr = Object_table.addr t.objects id in
        if addr >= 0 then begin
          if Object_table.is_los t.objects id then Los.free t.los ~addr
          else
            Block.remove_object_lines (block_of_addr t addr) ~addr
              ~size:(Object_table.size t.objects id);
          Object_table.release t.objects id
        end
      end
      else begin
        let size = Object_table.size t.objects id in
        let nrefs = Object_table.nrefs t.objects id in
        Cost.charge t.cost (w.Cost.mark_obj +. (w.Cost.mark_edge *. float_of_int nrefs));
        (if t.cfg.Config.nursery_copy && (not (Object_table.is_pinned t.objects id))
            && not (Object_table.is_los t.objects id)
         then
           let addr = Object_table.addr t.objects id in
           let new_addr = alloc_nogc t ~size in
           if new_addr >= 0 then begin
             Block.remove_object_lines (block_of_addr t addr) ~addr ~size;
             Object_table.relocate t.objects id ~new_addr;
             Intvec.push (block_of_addr t new_addr).Block.objs id;
             Cost.charge t.cost (w.Cost.copy_byte *. float_of_int size);
             t.metrics.Metrics.bytes_copied <- t.metrics.Metrics.bytes_copied + size
           end);
        Object_table.clear_nursery_flag t.objects id
      end);
  Intvec.clear t.nursery;
  (* dissolve empty blocks (single ascending pass) and refresh the
     recycled list *)
  iter_blocks t (fun b ->
      if Block.is_empty b && b.Block.index <> t.cur_block && b.Block.index <> t.ovf_block then
        dissolve_block t b);
  rebuild_recyclable t ~except:(fun _ -> false);
  let freed = total_free_bytes t - free_before in
  let heap_bytes = Page_stock.npages t.stock * Holes_pcm.Geometry.page_bytes in
  if float_of_int freed < 0.12 *. float_of_int heap_bytes then t.want_full <- true;
  let pause = Cost.end_gc t.cost in
  t.metrics.Metrics.nursery_gcs <- t.metrics.Metrics.nursery_gcs + 1;
  t.metrics.Metrics.nursery_pauses_ns <- pause :: t.metrics.Metrics.nursery_pauses_ns;
  Stats.observe t.metrics.Metrics.nursery_pause_hist pause;
  if armed then
    Trace.end_span t.tracer ~tid:Trace.tid_gc "nursery_gc" ~args:[ ("pause_ns", pause) ];
  let live = Object_table.live_bytes t.objects in
  if live > t.metrics.Metrics.peak_live_bytes then t.metrics.Metrics.peak_live_bytes <- live;
  t.post_gc_check ()

(* ------------------------------------------------------------------ *)
(* Incremental (snapshot-at-the-beginning) collection                  *)
(*                                                                     *)
(* The cycle performs exactly [full_gc]'s work — the same mark charge  *)
(* per snapshot object, the same sweep passes, the same evacuation —   *)
(* but cut into budgeted slices driven from the allocation path, each  *)
(* bracketed by [Cost.begin_gc]/[end_gc] so the recorded pause is the  *)
(* slice, not the cycle.  Instead of clearing line marks and           *)
(* re-adding live objects (which the mutator, running between slices,  *)
(* could not tolerate), the snapshot encodes liveness in the sign of   *)
(* each queue entry: live entries are charged and blackened in place,  *)
(* dead entries have their lines removed and their slots released.     *)
(* Per-line live counts therefore equal the coverage of all            *)
(* uncollected objects at every instant — the exact invariant the      *)
(* verifier checks — and the end state matches stop-the-world's.       *)
(*                                                                     *)
(* SATB details: an object killed after the snapshot is still charged  *)
(* and blackened (floating garbage, reclaimed next cycle); objects     *)
(* allocated during marking are born black ([register] stamps the      *)
(* epoch); stores whose source is already black log the source into    *)
(* [satb], drained and charged like remset entries at mark end.        *)
(* ------------------------------------------------------------------ *)

let inc_idle = 0
let inc_mark = 1
let inc_sweep = 2
let inc_defrag = 3

let incremental_active (t : t) : bool = t.inc_phase <> inc_idle

(* Complete the retirement of the 64 B line behind [addr]: close bump
   cursors over the line, relocate every object still overlapping it
   (alive ones move — through the perfect-block fallback if imperfect
   memory cannot hold them; dead-uncollected ones are simply released,
   exactly as the collection that precedes this in the stop-the-world
   path would have done), fail the logical line, and persist the hole
   on the backing stock page.  Idempotent: re-retiring an already
   failed line is a no-op.  [stock_page]/[line64] were captured when
   the failure arrived, so a block dissolved in the interim still gets
   its hole recorded in the stock. *)
let complete_line_retirement (t : t) ~(addr : int) ~(stock_page : int) ~(line64 : int) : unit =
  let w = weights t in
  (* set when a pinned object turns up on the line: the OS masks the
     failure by page remap instead, so the logical line never fails *)
  let masked = ref false in
  (match block_opt t (addr / block_bytes) with
  | None -> ()
  | Some b ->
      let bi = b.Block.index in
      let line = Block.line_of_offset b (addr - b.Block.base) in
      let line_lo = b.Block.base + (line * b.Block.line_size) in
      let line_hi = line_lo + b.Block.line_size in
      if t.cur_block = bi && t.cursor < line_hi && line_lo < t.limit then begin
        t.cur_block <- -1;
        t.cursor <- 0;
        t.limit <- 0
      end;
      if t.ovf_block = bi && t.ovf_cursor < line_hi && line_lo < t.ovf_limit then begin
        t.ovf_block <- -1;
        t.ovf_cursor <- 0;
        t.ovf_limit <- 0
      end;
      let overlapping = ref [] in
      Intvec.iter b.Block.objs (fun id ->
          let oa = Object_table.addr t.objects id in
          if oa >= 0 && not (Object_table.is_los t.objects id) then begin
            let oe = oa + Object_table.size t.objects id in
            if oa / block_bytes = bi && oa < line_hi && line_lo < oe then
              overlapping := id :: !overlapping
          end);
      (* an object pinned since the failure was deferred cannot move:
         the OS masks the failure exactly as the synchronous path would
         (page copy to a perfect page + remap) and the heap line stays *)
      if
        List.exists
          (fun id ->
            Object_table.is_alive t.objects id && Object_table.is_pinned t.objects id)
          !overlapping
      then begin
        masked := true;
        Cost.charge t.cost
          (w.Cost.perfect_request +. w.Cost.dram_borrow
          +. (w.Cost.copy_byte *. float_of_int Holes_pcm.Geometry.page_bytes));
        t.metrics.Metrics.bytes_copied <-
          t.metrics.Metrics.bytes_copied + Holes_pcm.Geometry.page_bytes
      end
      else begin
      List.iter
        (fun id ->
          (* re-resolve: an earlier relocation in this loop may have
             moved it already, and ids can repeat in [objs] *)
          let oa = Object_table.addr t.objects id in
          if oa >= 0 && oa / block_bytes = bi && oa < line_hi
             && line_lo < oa + Object_table.size t.objects id
          then
            if Object_table.is_alive t.objects id then begin
              let size = Object_table.size t.objects id in
              let new_addr =
                let a = alloc_nogc t ~size in
                if a >= 0 then a else alloc_medium_perfect t ~size
              in
              if new_addr < 0 then begin
                t.metrics.Metrics.out_of_memory <- true;
                t.metrics.Metrics.oom_request <- size;
                raise Out_of_memory
              end
              else begin
                Block.remove_object_lines b ~addr:oa ~size;
                Object_table.relocate t.objects id ~new_addr;
                Intvec.push (block_of_addr t new_addr).Block.objs id;
                Cost.charge t.cost (w.Cost.copy_byte *. float_of_int size);
                t.metrics.Metrics.bytes_copied <- t.metrics.Metrics.bytes_copied + size;
                t.metrics.Metrics.objects_evacuated <- t.metrics.Metrics.objects_evacuated + 1
              end
            end
            else begin
              (* dead-but-uncollected: reclaim it now, as the collection
                 preceding a stop-the-world retirement would have *)
              Block.remove_object_lines b ~addr:oa
                ~size:(Object_table.size t.objects id);
              Object_table.release t.objects id
            end)
        (List.rev !overlapping);
      match Block.fail_line b ~line with
      | `Already_failed | `Was_free -> ()
      | `Was_live -> assert false
      end);
  if (not !masked) && stock_page >= 0 then
    Page_stock.mark_line_failed t.stock ~id:stock_page ~line:line64

(* One increment of the mark phase: process up to [gc_slice] snapshot
   entries from the persistent work-list.  Charges are per entry,
   identical to [mark_slot]'s for the same object. *)
let mark_slice (t : t) (w : Cost.weights) : unit =
  let q = t.mark_queue in
  let len = Intvec.length q in
  let stop = min len (t.inc_pos + max 1 t.gc_slice) in
  let i = ref t.inc_pos in
  while !i < stop do
    let enc = Intvec.unsafe_get q !i in
    if enc >= 0 then begin
      (* snapshot-live: charged and blackened even if killed since the
         snapshot (SATB floating garbage, reclaimed next cycle) *)
      let id = enc in
      let nrefs = Object_table.nrefs t.objects id in
      Cost.charge t.cost (w.Cost.mark_obj +. (w.Cost.mark_edge *. float_of_int nrefs));
      Object_table.set_mark t.objects id t.inc_epoch;
      Object_table.clear_nursery_flag t.objects id;
      t.inc_marked <- t.inc_marked + 1
    end
    else begin
      (* snapshot-dead: reclaim.  Nothing can release the slot between
         snapshot and here (nursery collections are suppressed during a
         cycle), so the lines are still accounted and the release is
         exactly [mark_slot]'s. *)
      let id = lnot enc in
      let addr = Object_table.addr t.objects id in
      if addr >= 0 then begin
        if Object_table.is_los t.objects id then Los.free t.los ~addr
        else
          Block.remove_object_lines (block_of_addr t addr) ~addr
            ~size:(Object_table.size t.objects id);
        Object_table.release t.objects id
      end;
      t.inc_released <- t.inc_released + 1
    end;
    incr i
  done;
  t.inc_pos <- !i;
  if t.inc_pos >= len then begin
    (* mark phase complete: drain the SATB log (charged like remset
       entries — the barrier's slow-path work), select evacuation
       candidates, and hand over to the sweep *)
    Cost.charge t.cost (w.Cost.remset_entry *. float_of_int (Remset.size t.satb));
    Remset.clear t.satb;
    Intvec.clear q;
    assert (t.inc_marked + t.inc_released = t.inc_snapshot_len);
    let candidates, _ = prepare_defrag t in
    t.inc_candidates <- List.map (fun (b : Block.t) -> b.Block.index) candidates;
    Intvec.clear t.inc_recyclable;
    t.inc_phase <- inc_sweep;
    t.inc_pos <- 0
  end

(* Cycle completion: conservation asserts, nursery snapshot-prefix drop,
   and the same end-of-collection bookkeeping as [full_gc].  The pause
   record itself is per-slice, emitted by [gc_increment]. *)
let finish_cycle_end (t : t) : unit =
  assert (t.inc_marked + t.inc_released = t.inc_snapshot_len);
  assert (t.inc_candidates = []);
  assert (t.pending_retire = []);
  (* snapshot-prefix nursery entries were all processed (un-flagged or
     released); entries pushed mid-cycle stay for the next nursery
     collection, as do their remset records *)
  Intvec.drop_prefix t.nursery t.inc_nursery_len;
  t.inc_nursery_len <- 0;
  t.want_full <- false;
  t.defrag_requested <- false;
  t.inc_phase <- inc_idle;
  t.metrics.Metrics.full_gcs <- t.metrics.Metrics.full_gcs + 1;
  let live = Object_table.live_bytes t.objects in
  if live > t.metrics.Metrics.peak_live_bytes then t.metrics.Metrics.peak_live_bytes <- live

(* One increment of the sweep phase: a budgeted run of the ascending
   block pass that [rebuild_recyclable] performs in one go — same
   per-block charge, same dissolve rule, same recyclable selection —
   accumulating into [inc_recyclable], installed when the pass ends. *)
let sweep_slice (t : t) (w : Cost.weights) : unit =
  let per_slice = max 1 (t.gc_slice / 128) in
  let is_candidate bi = List.mem bi t.inc_candidates in
  let swept = ref 0 in
  while !swept < per_slice && t.inc_pos < t.next_block_index do
    (match Array.unsafe_get t.table t.inc_pos with
    | None -> ()
    | Some b ->
        let bi = b.Block.index in
        if Block.is_empty b && bi <> t.cur_block && bi <> t.ovf_block
           && not (is_candidate bi)
        then dissolve_block t b
        else begin
          Cost.charge t.cost (w.Cost.sweep_line *. float_of_int b.Block.nlines);
          let free = Block.sweep b in
          (* drop stale ids (released or relocated away) so the per-block
             object list cannot grow without bound across cycles *)
          Intvec.filter_in_place b.Block.objs (fun id ->
              let a = Object_table.addr t.objects id in
              a >= 0
              && (not (Object_table.is_los t.objects id))
              && a / block_bytes = bi);
          if free > 0 && (not (is_candidate bi)) && bi <> t.cur_block
             && bi <> t.ovf_block
          then begin
            Block.set_recyclable b true;
            Intvec.push t.inc_recyclable bi
          end
        end);
    t.inc_pos <- t.inc_pos + 1;
    incr swept
  done;
  if t.inc_pos >= t.next_block_index then begin
    (* install the fresh vector (built in ascending order) *)
    Intvec.clear t.recyclable;
    Intvec.iter t.inc_recyclable (fun bi -> Intvec.push t.recyclable bi);
    Intvec.clear t.inc_recyclable;
    t.recyclable_pos <- 0;
    if t.inc_candidates = [] && t.pending_retire = [] then finish_cycle_end t
    else t.inc_phase <- inc_defrag
  end

(* One increment of the defrag phase: evacuate one candidate block per
   slice; once the candidates are drained, complete the deferred line
   retirements — a bounded batch per slice, each one may relocate a
   line's worth of survivors — and end with the same final dissolve +
   charged rebuild pass stop-the-world defragmentation ends with. *)
let defrag_slice (t : t) (_w : Cost.weights) : unit =
  match t.inc_candidates with
  | bi :: rest ->
      t.inc_candidates <- rest;
      (match block_opt t bi with
      | None -> ()
      | Some b -> ignore (evacuate_block t b))
  | [] when t.pending_retire <> [] ->
      (* oldest first; retirements arriving mid-slice (a relocation
         store wearing out another line) are re-queued behind the
         unprocessed remainder *)
      let pending = List.rev t.pending_retire in
      t.pending_retire <- [];
      let rec drain n = function
        | (addr, stock_page, line64) :: rest when n > 0 ->
            complete_line_retirement t ~addr ~stock_page ~line64;
            drain (n - 1) rest
        | rest -> rest
      in
      let rest = drain (max 1 (t.gc_slice / 128)) pending in
      t.pending_retire <- t.pending_retire @ List.rev rest
  | [] ->
      iter_blocks t (fun b ->
          if Block.is_empty b && b.Block.index <> t.cur_block
             && b.Block.index <> t.ovf_block
          then dissolve_block t b);
      rebuild_recyclable t ~except:(fun _ -> false);
      finish_cycle_end t

(* Run one bounded increment of the active cycle, bracketed as its own
   recorded pause; no-op when no cycle is active. *)
let gc_increment (t : t) : unit =
  if incremental_active t then begin
    let w = weights t in
    let armed = Trace.armed t.tracer in
    Cost.begin_gc t.cost;
    if armed then
      Trace.begin_span t.tracer ~tid:Trace.tid_gc "gc_increment"
        ~args:[ ("phase", float_of_int t.inc_phase) ];
    (match t.inc_phase with
    | 1 -> mark_slice t w
    | 2 -> sweep_slice t w
    | 3 -> defrag_slice t w
    | _ -> ());
    let pause = Cost.end_gc t.cost in
    t.metrics.Metrics.gc_increments <- t.metrics.Metrics.gc_increments + 1;
    t.metrics.Metrics.pauses_ns <- pause :: t.metrics.Metrics.pauses_ns;
    Stats.observe t.metrics.Metrics.pause_hist pause;
    if armed then
      Trace.end_span t.tracer ~tid:Trace.tid_gc "gc_increment"
        ~args:[ ("pause_ns", pause) ];
    t.post_gc_check ()
  end

(* Open a cycle: take the snapshot.  Its own recorded slice — the
   enqueue pass is uncharged exactly as [full_gc]'s is; the fixed
   collection cost lands here. *)
let start_cycle (t : t) : unit =
  let w = weights t in
  let armed = Trace.armed t.tracer in
  Cost.begin_gc t.cost;
  if armed then Trace.begin_span t.tracer ~tid:Trace.tid_gc "gc_snapshot";
  Cost.charge t.cost w.Cost.gc_fixed;
  t.inc_epoch <- t.inc_epoch + 1;
  Intvec.clear t.mark_queue;
  Object_table.iter_slots t.objects (fun id ->
      Intvec.push t.mark_queue
        (if Object_table.is_alive t.objects id then id else lnot id));
  t.inc_pos <- 0;
  t.inc_snapshot_len <- Intvec.length t.mark_queue;
  t.inc_nursery_len <- Intvec.length t.nursery;
  t.inc_marked <- 0;
  t.inc_released <- 0;
  Remset.clear t.satb;
  (* pre-snapshot remset records aim at nursery objects this cycle will
     process out of the nursery: clear now (stop-the-world clears at
     cycle end); records logged mid-cycle survive for the next nursery
     collection *)
  Remset.clear t.remset;
  t.inc_phase <- inc_mark;
  let pause = Cost.end_gc t.cost in
  t.metrics.Metrics.gc_increments <- t.metrics.Metrics.gc_increments + 1;
  t.metrics.Metrics.pauses_ns <- pause :: t.metrics.Metrics.pauses_ns;
  Stats.observe t.metrics.Metrics.pause_hist pause;
  if armed then
    Trace.end_span t.tracer ~tid:Trace.tid_gc "gc_snapshot" ~args:[ ("pause_ns", pause) ];
  t.post_gc_check ()

(* Drive the active cycle to completion (each slice still individually
   bounded, bracketed and verified). *)
let finish_cycle (t : t) : unit =
  while incremental_active t do
    gc_increment t
  done

(* A full collection under the incremental regime: finish the cycle in
   flight, or run a whole fresh one. *)
let incremental_full_gc (t : t) : unit =
  if not (incremental_active t) then start_cycle t;
  finish_cycle t

(* The allocation-path pulse: advance the active cycle by one slice, or
   check (every 64 allocations) whether free memory has fallen low
   enough to open one proactively — starting before exhaustion is what
   keeps forced back-to-back completions rare. *)
let incremental_pulse (t : t) : unit =
  if incremental_active t then gc_increment t
  else begin
    t.inc_trigger <- t.inc_trigger + 1;
    if t.inc_trigger land 63 = 0 then begin
      let heap_bytes = Page_stock.npages t.stock * Holes_pcm.Geometry.page_bytes in
      if total_free_bytes t * 4 < heap_bytes then start_cycle t
    end
  end

(** Set the incremental work budget (0 = stop-the-world).  Toggling
    increments off mid-cycle finishes the cycle first, so the
    stop-the-world machinery never observes a half-run cycle. *)
let set_gc_slice (t : t) (budget : int) : unit =
  if budget <= 0 && incremental_active t then finish_cycle t;
  t.gc_slice <- max 0 budget;
  if budget > 0 then t.metrics.Metrics.inc_active <- true

(* ------------------------------------------------------------------ *)
(* Public mutator interface                                            *)
(* ------------------------------------------------------------------ *)

let oom (t : t) ~(size : int) : 'a =
  t.metrics.Metrics.out_of_memory <- true;
  t.metrics.Metrics.oom_request <- size;
  raise Out_of_memory

(* The collection-retry ladder, as top-level recursion (the previous
   inner closures allocated four environments per call — on the hottest
   path in the system). *)
let rec alloc_attempt (t : t) ~(size : int) ~(generational : bool) (n : int) : int =
  let r =
    if is_medium t ~size then begin
      let r = alloc_medium_nogc t ~size in
      if r = needs_perfect then begin
        (* static fragmentation, not garbage: go straight to a perfect
           block (Sec. 4.2); escalate to collection only if even the
           perfect grant is exhausted *)
        let a = alloc_medium_perfect t ~size in
        if a >= 0 then a else needs_gc
      end
      else r
    end
    else alloc_small_nogc t ~size
  in
  if r >= 0 then r else alloc_escalate t ~size ~generational n

and alloc_escalate (t : t) ~(size : int) ~(generational : bool) (n : int) : int =
  (* a medium that could not be placed signals fragmentation: ask the
     next full collection to defragment *)
  if is_medium t ~size then t.defrag_requested <- true;
  if t.gc_slice > 0 then begin
    (* incremental regime: a forced full collection finishes the cycle
       in flight (or runs a whole fresh one) — still slice-bracketed,
       so every recorded pause stays bounded.  Nursery collections are
       suppressed while a cycle is active: they would release objects
       the snapshot still references. *)
    if n = 0 && generational && (not t.want_full) && not (incremental_active t) then begin
      nursery_gc t;
      alloc_attempt t ~size ~generational 1
    end
    else if n <= 1 then begin
      incremental_full_gc t;
      alloc_attempt t ~size ~generational 2
    end
    else if is_medium t ~size then begin
      let a = alloc_medium_perfect t ~size in
      if a >= 0 then a else oom t ~size
    end
    else oom t ~size
  end
  else if n = 0 && generational && not t.want_full then begin
    nursery_gc t;
    alloc_attempt t ~size ~generational 1
  end
  else if n <= 1 then begin
    full_gc t;
    alloc_attempt t ~size ~generational 2
  end
  else if is_medium t ~size then begin
    let a = alloc_medium_perfect t ~size in
    if a >= 0 then a else oom t ~size
  end
  else oom t ~size

(** Allocate [size] bytes (pre-alignment) with the collection-retry
    ladder: nursery collection (sticky), then full collection, then the
    perfect-block fallback for medium objects; raises [Out_of_memory]
    when all fail. *)
let alloc (t : t) ~(size : int) : int =
  let size = Units.aligned_size size in
  (* incremental regime: each allocation advances the active cycle by
     one budgeted slice (or checks whether to open one) before the
     allocation itself proceeds *)
  if t.gc_slice > 0 then incremental_pulse t;
  alloc_attempt t ~size ~generational:(Config.is_generational t.cfg.Config.collector) 0

(** Register a freshly allocated object id with its block and the
    nursery. *)
let register (t : t) ~(id : int) ~(addr : int) : unit =
  if not (Los.is_los_addr addr) then Intvec.push (block_of_addr t addr).Block.objs id;
  Intvec.push t.nursery id;
  (* allocate black: an object born while marking is in progress is not
     in the snapshot and must survive this cycle *)
  if t.inc_phase = inc_mark then Object_table.set_mark t.objects id t.inc_epoch

(** The generational write barrier: [src] (an old object) now references
    a nursery object. *)
let write_barrier (t : t) ~(src : int) : unit =
  Cost.charge t.cost (weights t).Cost.write_barrier;
  (* SATB leg: a store whose source is already black would hide the old
     target from a concurrent marker — log the source so mark end can
     account for it.  With the liveness oracle the log is bookkeeping
     (and charge) rather than re-traversal, but the trigger condition is
     the real barrier's. *)
  if t.inc_phase = inc_mark && Object_table.marked t.objects src t.inc_epoch then
    ignore (Remset.record t.satb ~src);
  if Config.is_generational t.cfg.Config.collector && not (Object_table.is_nursery t.objects src)
  then ignore (Remset.record t.remset ~src)

(** Handle a dynamic line failure at byte address [addr] (Sec. 4.2).

    The affected block is flagged for evacuation and a full (copying)
    collection relocates any objects that overlap the failing line; only
    then is the logical line marked failed — the failure buffer holds the
    data in the interim, so no information is lost.  A pinned object on
    the failing line cannot move: the OS instead remaps the page to a
    perfect page (Sec. 3.3.3 "Pinning support"), so the software-visible
    line never fails; we charge the page copy and a perfect-page grant.
    Dynamic failures also update the backing page's bitmap in the stock,
    so a reassembled block later sees the hole. *)
let rec dynamic_failure (t : t) ~(addr : int) : unit =
  t.metrics.Metrics.dynamic_failures <- t.metrics.Metrics.dynamic_failures + 1;
  if Trace.armed t.tracer then
    Trace.instant t.tracer ~tid:Trace.tid_gc "dynamic_failure"
      ~args:[ ("addr", float_of_int addr) ];
  let bi = addr / block_bytes in
  match block_opt t bi with
  | None ->
      (* the address is not backed by an assembled block (stale address
         or dissolved block): nothing lives there, only OS bookkeeping
         would apply *)
      ()
  | Some b -> dynamic_failure_in_block t ~addr ~bi ~b

and dynamic_failure_in_block (t : t) ~(addr : int) ~(bi : int) ~(b : Block.t) : unit =
  let w = weights t in
  let line = Block.line_of_offset b (addr - b.Block.base) in
  let line_lo = b.Block.base + (line * b.Block.line_size) in
  let line_hi = line_lo + b.Block.line_size in
  (* close bump cursors whose run overlaps the failing line *)
  let overlaps_cursor ~(cur_block : int) ~(cursor : int) ~(limit : int) =
    cur_block = bi && cursor < line_hi && line_lo < limit
  in
  if overlaps_cursor ~cur_block:t.cur_block ~cursor:t.cursor ~limit:t.limit then begin
    t.cur_block <- -1;
    t.cursor <- 0;
    t.limit <- 0
  end;
  if overlaps_cursor ~cur_block:t.ovf_block ~cursor:t.ovf_cursor ~limit:t.ovf_limit then begin
    t.ovf_block <- -1;
    t.ovf_cursor <- 0;
    t.ovf_limit <- 0
  end;
  (* objects overlapping the failing line; dead-but-uncollected objects
     also hold the line until a collection reclaims them *)
  let overlapping ~(alive_only : bool) =
    let acc = ref [] in
    Intvec.iter b.Block.objs (fun id ->
        if ((not alive_only) || Object_table.is_alive t.objects id)
           && Object_table.addr t.objects id >= 0
           && not (Object_table.is_los t.objects id)
        then begin
          let oa = Object_table.addr t.objects id in
          let oe = oa + Object_table.size t.objects id in
          if oa / block_bytes = bi && oa < line_hi && line_lo < oe then acc := id :: !acc
        end);
    !acc
  in
  let affected = overlapping ~alive_only:false in
  let pinned =
    List.filter
      (fun id -> Object_table.is_alive t.objects id && Object_table.is_pinned t.objects id)
      affected
  in
  if pinned <> [] then begin
    (* OS masks the failure: copy the page to a perfect page and remap *)
    Cost.charge t.cost
      (w.Cost.perfect_request +. w.Cost.dram_borrow
      +. (w.Cost.copy_byte *. float_of_int Holes_pcm.Geometry.page_bytes));
    t.metrics.Metrics.bytes_copied <-
      t.metrics.Metrics.bytes_copied + Holes_pcm.Geometry.page_bytes
  end
  else if t.gc_slice > 0 && affected <> [] then begin
    (* incremental regime: flag the block for evacuation and defer the
       line retirement to the active cycle's defrag phase (opening a
       cycle if none is running), so a failure storm produces a stream
       of bounded slices instead of one monolithic evacuation pause.
       The failure buffer holds the line's data until the retirement
       completes, exactly as it does across the synchronous window.
       The backing page id is captured now: the block may be dissolved
       before the completion runs, but the hole must still reach the
       stock. *)
    Block.set_evacuate b true;
    let off = addr - b.Block.base in
    let page_id = b.Block.pages.(off / Holes_pcm.Geometry.page_bytes) in
    let line64 = off mod Holes_pcm.Geometry.page_bytes / Holes_pcm.Geometry.line_bytes in
    t.pending_retire <- (addr, page_id, line64) :: t.pending_retire;
    if not (incremental_active t) then start_cycle t
  end
  else begin
    (if affected <> [] then begin
       Block.set_evacuate b true;
       full_gc t
     end);
    (* the block may have been dissolved by the collection *)
    (match block_opt t bi with
    | None -> ()
    | Some b -> (
        (* evacuation is opportunistic and leaves behind objects it
           cannot place in imperfect memory (at 64 B lines every
           multi-line object is "medium", and a long contiguous hole may
           simply not exist).  A leftover is static fragmentation, not
           garbage: relocate it through the perfect-block fallback, and
           only if even that fails is the heap genuinely full. *)
        let relocate_leftover (id : int) : unit =
          let size = Object_table.size t.objects id in
          let oa = Object_table.addr t.objects id in
          let new_addr =
            let a = alloc_nogc t ~size in
            if a >= 0 then a else alloc_medium_perfect t ~size
          in
          if new_addr < 0 then begin
            t.metrics.Metrics.out_of_memory <- true;
            t.metrics.Metrics.oom_request <- size;
            raise Out_of_memory
          end
          else begin
            Block.remove_object_lines b ~addr:oa ~size;
            Object_table.relocate t.objects id ~new_addr;
            Intvec.push (block_of_addr t new_addr).Block.objs id;
            Cost.charge t.cost (w.Cost.copy_byte *. float_of_int size);
            t.metrics.Metrics.bytes_copied <- t.metrics.Metrics.bytes_copied + size;
            t.metrics.Metrics.objects_evacuated <- t.metrics.Metrics.objects_evacuated + 1
          end
        in
        List.iter relocate_leftover (overlapping ~alive_only:true);
        match Block.fail_line b ~line with
        | `Already_failed | `Was_free -> ()
        | `Was_live -> assert false));
    (* persist the hole on the backing page (64 B PCM granularity) *)
    let off = addr - b.Block.base in
    let page_idx = off / Holes_pcm.Geometry.page_bytes in
    let page_id = b.Block.pages.(page_idx) in
    if page_id >= 0 then
      Page_stock.mark_line_failed t.stock ~id:page_id
        ~line:(off mod Holes_pcm.Geometry.page_bytes / Holes_pcm.Geometry.line_bytes)
  end

(** The assembled block (and page index within it) backed by stock page
    [page], if any — the reverse lookup the OS failure up-call needs to
    turn a page/line pair back into a heap address. *)
let find_page_owner (t : t) ~(page : int) : (Block.t * int) option =
  if page < 0 || page >= Array.length t.page_owner then None
  else
    match block_opt t t.page_owner.(page) with
    | None -> None
    | Some b ->
        (* position within the block's eight pages *)
        let rec pos i =
          if i >= Array.length b.Block.pages then None
          else if b.Block.pages.(i) = page then Some (b, i)
          else pos (i + 1)
        in
        pos 0

(** Stock page id and 64 B PCM line backing heap byte [addr], if the
    address lies in an assembled block ([None] for DRAM-borrowed pages
    and unassembled addresses). *)
let page_backing (t : t) ~(addr : int) : (int * int) option =
  match block_opt t (addr / block_bytes) with
  | None -> None
  | Some b ->
      let off = addr - b.Block.base in
      let pg = b.Block.pages.(off / Holes_pcm.Geometry.page_bytes) in
      if pg < 0 then None
      else Some (pg, off mod Holes_pcm.Geometry.page_bytes / Holes_pcm.Geometry.line_bytes)

(** Request defragmentation at the next full collection (used by the
    VM when the LOS runs short of pages: consolidation dissolves sparse
    blocks back into stock pages). *)
let request_defrag (t : t) : unit = t.defrag_requested <- true

(** Force a collection (used by the VM's LOS retry path).  Under the
    incremental regime a full collection drives the cycle to completion
    in bounded, individually recorded slices. *)
let collect (t : t) ~(full : bool) : unit =
  if t.gc_slice > 0 then
    if full || incremental_active t then incremental_full_gc t else nursery_gc t
  else if full then full_gc t
  else nursery_gc t

let live_blocks (t : t) : int = t.nblocks

(** Install the paranoid-verifier hook run at the end of every
    collection (replaces the previous hook). *)
let set_post_gc_check (t : t) (f : unit -> unit) : unit = t.post_gc_check <- f

(** The heap address the bump allocator will hand out next, if a bump
    run is open (main cursor first, then overflow) — the target of the
    adversarial worst-case-placement failure model. *)
let bump_target (t : t) : int option =
  if t.cur_block >= 0 && t.cursor < t.limit then Some t.cursor
  else if t.ovf_block >= 0 && t.ovf_cursor < t.ovf_limit then Some t.ovf_cursor
  else None

(** A uniformly drawn logical-line address within the assembled blocks
    (a failure storm's victim), [None] when no block is assembled. *)
let random_line_addr (t : t) (rng : Xrng.t) : int option =
  if t.nblocks = 0 then None
  else begin
    let k = Xrng.int rng t.nblocks in
    let found = ref None and seen = ref 0 in
    (try
       iter_blocks t (fun b ->
           if !seen = k then begin
             found := Some b;
             raise Exit
           end;
           incr seen)
     with Exit -> ());
    Option.map
      (fun (b : Block.t) ->
        b.Block.base + (Xrng.int rng b.Block.nlines * b.Block.line_size))
      !found
  end

(** Invariant checks (valid at any point, not just after a collection):
    no *live* object overlaps a failed line, and per-line live counts
    match the object table exactly — dead objects awaiting collection
    legitimately still hold their lines. *)
let check_invariants (t : t) : (unit, string) result =
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  (* recompute per-line expected counts over every uncollected object *)
  let expected : (int, int array) Hashtbl.t = Hashtbl.create 64 in
  iter_blocks t (fun b -> Hashtbl.replace expected b.Block.index (Array.make b.Block.nlines 0));
  Object_table.iter_slots t.objects (fun id ->
      if not (Object_table.is_los t.objects id) then begin
        let alive = Object_table.is_alive t.objects id in
        let addr = Object_table.addr t.objects id in
        let size = Object_table.size t.objects id in
        match block_opt t (addr / block_bytes) with
        | None -> if alive then fail (Printf.sprintf "object %d at %d not in any block" id addr)
        | Some b ->
            let lo, hi = Block.lines_of_object b ~addr ~size in
            for l = lo to hi do
              if alive && Block.is_failed_line b l then
                fail (Printf.sprintf "object %d overlaps failed line %d of block %d" id l b.Block.index);
              (Hashtbl.find expected b.Block.index).(l) <-
                (Hashtbl.find expected b.Block.index).(l) + 1
            done
      end);
  iter_blocks t (fun b ->
      let i = b.Block.index in
      let exp = Hashtbl.find expected i in
      for l = 0 to b.Block.nlines - 1 do
        if b.Block.live.(l) <> exp.(l) then
          fail
            (Printf.sprintf "block %d line %d: live count %d, expected %d" i l b.Block.live.(l)
               exp.(l))
      done);
  match !err with None -> Ok () | Some m -> Error m
