(** Failure-aware Immix and Sticky Immix (paper Secs. 4.1–4.2).

    Immix manages memory as 32 KB blocks of logical lines.  A bump
    pointer allocates into contiguous runs of free lines and {e skips
    over unavailable lines} — which is precisely why failure awareness
    is a minimal extension: failed lines are a fourth line state that
    the allocator skips exactly like live lines.  Medium objects (larger
    than a line) that do not fit the current run go to a dedicated
    overflow block; the failure-aware version searches the remainder of
    the overflow block and only then falls back to requesting a perfect
    block.  Sticky Immix adds generational behaviour via sticky mark
    bits: objects allocated since the last collection form the logical
    nursery, collected from the remembered set without touching old
    objects.  Dynamic failures reuse the defragmentation machinery:
    affected blocks are flagged and their live objects evacuated by a
    full collection.

    The heap-layout and fast-path design — the dense block table, the
    struct-of-arrays block metadata, the bump cursors, and the flat
    batched mark deque below — is documented in DESIGN.md §13.  The
    record is exposed for the heap verifier and the adversarial failure
    models, which inspect cursors and blocks directly. *)

open Holes_stdx
open Holes_heap

exception Out_of_memory

type t = {
  cfg : Config.t;
  cost : Cost.t;
  metrics : Metrics.t;
  stock : Page_stock.t;
  objects : Object_table.t;
  los : Los.t;
  mutable table : Block.t option array;
      (** block index -> block, dense.  Indices are monotonic (a
          dissolved block's slot stays [None]), so the allocation fast
          path is one array load instead of a hash probe, and iteration
          is ascending-index — the deterministic order every sweep and
          defrag pass uses. *)
  btbl : Block.table;
      (** the struct-of-arrays per-block metadata (free/failed counts,
          hole bounds, flags), shared by every block and indexed by
          block id — sweep and defrag selection stream over it *)
  mutable nblocks : int;  (** live (assembled, not dissolved) blocks *)
  page_owner : int array;
      (** stock page id -> owning block index, -1 when unassembled: the
          O(1) reverse index behind [find_page_owner] *)
  mutable next_block_index : int;
  recyclable : Intvec.t;
      (** block indices with free lines, address order; consumed front
          to back through [recyclable_pos] *)
  mutable recyclable_pos : int;
  mark_queue : Intvec.t;
      (** the flat mark deque: slot ids are enqueued in ascending-id
          order and drained in fixed-size batches, so the trace loop
          runs over a dense int array *)
  mutable cur_block : int;  (** main bump cursor's block; -1 = none *)
  mutable cursor : int;
  mutable limit : int;
  mutable ovf_block : int;  (** overflow (medium-object) bump state *)
  mutable ovf_cursor : int;
  mutable ovf_limit : int;
  remset : Remset.t;
  nursery : Intvec.t;
  mutable want_full : bool;  (** last nursery collection yielded too little *)
  mutable defrag_requested : bool;
      (** defragment at the next full collection (Immix defragments on
          demand: set by allocation failures and dynamic failures) *)
  mutable post_gc_check : unit -> unit;
      (** paranoid-verifier hook, run at the end of every collection *)
  (* incremental (snapshot-at-the-beginning) collection state.  A cycle
     is the same full collection as the stop-the-world one — same mark
     charges, same sweep passes, same evacuation — cut into budgeted
     slices driven from the allocation path.  [mark_queue] doubles as
     the persistent snapshot work-list: entries are slot ids,
     sign-encoded with liveness at snapshot time (id = live,
     [lnot id] = dead).  Exposed for the heap verifier's SATB checks
     and the torture driver. *)
  mutable gc_slice : int;
      (** work budget per slice in mark-queue entries; 0 = stop-the-world
          (mutable so the torture driver can toggle mid-run) *)
  satb : Remset.t;
      (** the SATB mutation log: sources of reference stores executed
          while marking is in progress and the source is already black;
          drained (and charged like remset entries) at mark end *)
  mutable inc_phase : int;  (** 0 idle / 1 mark / 2 sweep / 3 defrag *)
  mutable inc_pos : int;
      (** resume cursor: next [mark_queue] entry (mark phase) or next
          block-table index (sweep phase) *)
  mutable inc_epoch : int;  (** current mark epoch ("black" = marked in it) *)
  inc_recyclable : Intvec.t;
      (** recyclable vector under construction by the sweep phase,
          installed wholesale when the pass completes *)
  mutable inc_candidates : int list;  (** defrag candidates (block indices) left to evacuate *)
  mutable inc_snapshot_len : int;  (** mark-queue length at snapshot *)
  mutable inc_nursery_len : int;  (** nursery length at snapshot *)
  mutable inc_marked : int;  (** cycle work counter: snapshot-live processed *)
  mutable inc_released : int;  (** cycle work counter: snapshot-dead released *)
  mutable pending_retire : (int * int * int) list;
      (** deferred dynamic-failure line retirements, newest first:
          (heap addr, stock page id or -1, 64 B line within the page) —
          completed by the defrag phase, so a failure storm never forces
          a monolithic evacuation pause *)
  mutable inc_trigger : int;  (** allocations since the last proactive-start check *)
  tracer : Holes_obs.Trace.view;
}

val block_bytes : int

val create :
  ?tracer:Holes_obs.Trace.view ->
  cfg:Config.t ->
  cost:Cost.t ->
  metrics:Metrics.t ->
  stock:Page_stock.t ->
  objects:Object_table.t ->
  los:Los.t ->
  unit ->
  t

val iter_blocks : t -> (Block.t -> unit) -> unit
(** Ascending-index iteration over live blocks — the single
    deterministic order used by every collection pass. *)

val block_opt : t -> int -> Block.t option
val block : t -> int -> Block.t
val block_of_addr : t -> int -> Block.t

val is_medium : t -> size:int -> bool
(** Larger than one logical line (goes through overflow allocation)? *)

val total_free_bytes : t -> int
(** Free bytes in stock pages plus free lines inside assembled blocks. *)

val alloc : t -> size:int -> int
(** Allocate [size] bytes (pre-alignment) with the collection-retry
    ladder: nursery collection (sticky), then full collection, then the
    perfect-block fallback for medium objects; raises [Out_of_memory]
    when all fail.  The fast path is a single compare against the bump
    limit; the hole search runs only on hole exhaustion. *)

val register : t -> id:int -> addr:int -> unit
(** Register a freshly allocated object id with its block and the
    nursery. *)

val write_barrier : t -> src:int -> unit
(** The generational write barrier: [src] (an old object) now references
    a nursery object. *)

val collect : t -> full:bool -> unit
(** Force a collection (used by the VM's LOS retry path).  Under the
    incremental regime ([gc_slice > 0]) a full collection drives the
    cycle to completion in bounded, individually recorded slices. *)

(** {2 Incremental collection}

    With [Config.gc_slice > 0] full collections run as
    snapshot-at-the-beginning increments: each allocation advances the
    active cycle by at most the budget's worth of marking work
    (sweeping and evacuation are budgeted proportionally), so the
    recorded pause is per-slice rather than per-cycle.  Total GC work
    is unchanged — only its interleaving with the mutator. *)

val inc_idle : int
(** [inc_phase] value: no cycle in flight. *)

val inc_mark : int
(** [inc_phase] value: marking — the window the SATB barrier covers. *)

val inc_sweep : int
(** [inc_phase] value: budgeted sweep of the block table. *)

val inc_defrag : int
(** [inc_phase] value: per-slice evacuation and deferred line
    retirements. *)

val incremental_active : t -> bool
(** A collection cycle is in flight (some slice work remains). *)

val gc_increment : t -> unit
(** Run one bounded increment of the active cycle, bracketed as its own
    recorded pause; no-op when no cycle is active.  Normally driven
    from [alloc]; exposed for tests and the torture driver. *)

val set_gc_slice : t -> int -> unit
(** Set the incremental work budget (0 = stop-the-world).  Toggling
    increments off mid-cycle finishes the cycle first, so the
    stop-the-world machinery never observes a half-run cycle. *)

val dynamic_failure : t -> addr:int -> unit
(** Handle a dynamic line failure at byte address [addr] (Sec. 4.2).

    The affected block is flagged for evacuation and a full (copying)
    collection relocates any objects that overlap the failing line; only
    then is the logical line marked failed — the failure buffer holds the
    data in the interim, so no information is lost.  A pinned object on
    the failing line cannot move: the OS instead remaps the page to a
    perfect page (Sec. 3.3.3 "Pinning support"), so the software-visible
    line never fails; we charge the page copy and a perfect-page grant.
    Dynamic failures also update the backing page's bitmap in the stock,
    so a reassembled block later sees the hole. *)

val find_page_owner : t -> page:int -> (Block.t * int) option
(** The assembled block (and page index within it) backed by stock page
    [page], if any — the reverse lookup the OS failure up-call needs to
    turn a page/line pair back into a heap address. *)

val page_backing : t -> addr:int -> (int * int) option
(** Stock page id and 64 B PCM line backing heap byte [addr], if the
    address lies in an assembled block ([None] for DRAM-borrowed pages
    and unassembled addresses). *)

val request_defrag : t -> unit
(** Request defragmentation at the next full collection (used by the
    VM when the LOS runs short of pages: consolidation dissolves sparse
    blocks back into stock pages). *)

val live_blocks : t -> int

val set_post_gc_check : t -> (unit -> unit) -> unit
(** Install the paranoid-verifier hook run at the end of every
    collection (replaces the previous hook). *)

val bump_target : t -> int option
(** The heap address the bump allocator will hand out next, if a bump
    run is open (main cursor first, then overflow) — the target of the
    adversarial worst-case-placement failure model. *)

val random_line_addr : t -> Xrng.t -> int option
(** A uniformly drawn logical-line address within the assembled blocks
    (a failure storm's victim), [None] when no block is assembled. *)

val check_invariants : t -> (unit, string) result
(** Invariant checks (valid at any point, not just after a collection):
    no {e live} object overlaps a failed line, and per-line live counts
    match the object table exactly — dead objects awaiting collection
    legitimately still hold their lines. *)
