(** The failure-aware virtual machine: the public facade tying together
    the failure map, OS page stock, object model, LOS and the selected
    collector.  Workloads drive a [Vm.t] through {!alloc}, {!write_ref}
    and {!kill}; every paper experiment is a function of the metrics and
    cost accumulated here.

    Heap sizing follows the paper's methodology (Sec. 5): the heap is a
    multiple of the workload's minimum, and under failures the VM
    *compensates* — requests [h / (1 - f)] bytes of (imperfect) memory so
    the usable budget is held constant (Sec. 6.2). *)

open Holes_stdx
open Holes_heap
module Trace = Holes_obs.Trace

exception Out_of_memory = Immix.Out_of_memory

type space = Ix of Immix.t | Ms of Mark_sweep.t

(** The dynamic-failure injector behind the [Storm] and [Adversarial]
    failure models (static backend only; the device backend generates
    its own failures through wear).  Failures are scheduled on the
    allocation clock ([Metrics.bytes_allocated]) and staged through a
    private failure buffer, modeling device-side buffer pressure:
    bursts larger than the buffer stall until the OS drains, exactly
    the overflow regime the Storm model exists to stress. *)
type injector = {
  spec : Holes_pcm.Failure_model.spec;
  irng : Xrng.t;  (** split off the map rng: deterministic per seed *)
  fbuf : Holes_pcm.Failure_buffer.t;
  mutable next_at : int;  (** bytes_allocated threshold of the next event *)
}

type t = {
  cfg : Config.t;
  cost : Cost.t;
  metrics : Metrics.t;
  objects : Object_table.t;
  stock : Page_stock.t;
  los : Los.t;
  space : space;
  backend : Memory_backend.t;
  injector : injector option;  (** dynamic failure-model driver *)
  heap_pages : int;  (** pages granted (after compensation) *)
  arraylet_spines : (int, int list) Hashtbl.t;
      (** spine object id -> arraylet piece ids (Z-rays mode) *)
  tracer : Trace.view;
      (** trace destination for every layer below; its clock is this
          VM's cost model, so timestamps are virtual (deterministic) *)
}

let page_bytes = Holes_pcm.Geometry.page_bytes
let lines_per_page = Holes_pcm.Geometry.lines_per_page

(** Build the static failure map for a heap of [npages] pages under the
    configured failure distribution (the fault-injection module of
    Sec. 5, sitting between the OS allocator and the VM allocator). *)
let generate_failure_map (cfg : Config.t) ~(rng : Xrng.t) ~(npages : int) : Bitset.t * int =
  let round_pages_to mult = (npages + mult - 1) / mult * mult in
  match cfg.Config.failure_model with
  | Config.Model m ->
      let nlines = npages * lines_per_page in
      ( Holes_pcm.Failure_model.static_map m rng ~nlines ~rate:cfg.Config.failure_rate,
        npages )
  | Config.From_dist -> (
  match cfg.Config.failure_dist with
  | Config.Uniform ->
      let nlines = npages * lines_per_page in
      (Holes_pcm.Failure_map.uniform rng ~nlines ~rate:cfg.Config.failure_rate, npages)
  | Config.Granule g ->
      (* granules larger than a page require whole-multiple sizing *)
      let pages = round_pages_to (max 1 (g / lines_per_page)) in
      let nlines = pages * lines_per_page in
      ( Holes_pcm.Failure_map.clustered rng ~nlines ~rate:cfg.Config.failure_rate ~granule_lines:g,
        pages )
  | Config.Hw_cluster region_pages ->
      let pages = round_pages_to region_pages in
      let nlines = pages * lines_per_page in
      let base = Holes_pcm.Failure_map.uniform rng ~nlines ~rate:cfg.Config.failure_rate in
      (Holes_pcm.Failure_map.cluster_transform base ~region_pages, pages))

(** Trigger a collection explicitly. *)
let collect (t : t) ~(full : bool) : unit =
  match t.space with Ix s -> Immix.collect s ~full | Ms s -> Mark_sweep.collect s ~full

(* LOS allocation with the collection-retry ladder. *)
let alloc_los (t : t) ~(size : int) : int =
  let generational = Config.is_generational t.cfg.Config.collector in
  let try_once () =
    if Los.can_allocate t.los ~size then Los.alloc t.los ~size else None
  in
  let rec attempt n =
    match try_once () with
    | Some addr -> addr
    | None ->
        (* page shortage: a defragmenting collection can dissolve sparse
           blocks back into stock pages *)
        (match t.space with Ix s -> Immix.request_defrag s | Ms _ -> ());
        if n = 0 && generational then begin
          collect t ~full:false;
          attempt 1
        end
        else if n <= 1 then begin
          collect t ~full:true;
          attempt 2
        end
        else begin
          t.metrics.Metrics.out_of_memory <- true;
          t.metrics.Metrics.oom_request <- size;
          raise Out_of_memory
        end
  in
  attempt 0

(* Relocate the live LOS object whose pages contain heap address [addr]
   to fresh perfect pages — the LOS response to a line failure.  The
   victim is found through the page→object index (constant time), not a
   live-set scan. *)
let relocate_los_victim (t : t) ~(addr : int) : unit =
  t.metrics.Metrics.dynamic_failures <- t.metrics.Metrics.dynamic_failures + 1;
  match Object_table.los_object_at t.objects ~page:(addr / page_bytes) with
  | None -> ()
  | Some id when not (Object_table.is_alive t.objects id) -> ()
  | Some id ->
      let size = Object_table.size t.objects id in
      let old_addr = Object_table.addr t.objects id in
      Los.free t.los ~addr:old_addr;
      let new_addr = alloc_los t ~size in
      Object_table.relocate t.objects id ~new_addr;
      let w = t.cost.Cost.weights in
      Cost.charge t.cost (w.Cost.copy_byte *. float_of_int size);
      t.metrics.Metrics.bytes_copied <- t.metrics.Metrics.bytes_copied + size

(* The runtime's end of the OS failure up-call (Sec. 3.2.2): stock page
   [stock_page] lost 64 B line [line].  A line inside an assembled Immix
   block is retired through the evacuation machinery; a LOS line
   relocates the whole large object; a line on a free page is only
   marked, so later grants see the hole.  [data] was preserved by the
   failure buffer — relocation re-reads live data through the heap
   model, so the payload is not consumed here. *)
let handle_line_retired (t : t) ~(stock_page : int) ~(line : int) ~(data : Bytes.t option) :
    unit =
  ignore data;
  if Trace.armed t.tracer then
    Trace.instant t.tracer ~tid:Trace.tid_gc "line_retired"
      ~args:[ ("stock_page", float_of_int stock_page); ("line", float_of_int line) ];
  match t.space with
  | Ms _ -> ()
  | Ix s -> (
      match Immix.find_page_owner s ~page:stock_page with
      | Some (b, page_idx) ->
          let addr =
            b.Block.base + (page_idx * page_bytes) + (line * Holes_pcm.Geometry.line_bytes)
          in
          Immix.dynamic_failure s ~addr
      | None -> (
          Page_stock.mark_line_failed t.stock ~id:stock_page ~line;
          match Los.addr_backed_by t.los ~page:stock_page with
          | Some base -> relocate_los_victim t ~addr:base
          | None -> ()))

(* Charge the device writes behind materializing object [id]: one 64 B
   line store per line it spans.  A store may wear its line out
   mid-loop; the failure chain then retires the line (possibly
   relocating the object), so the backing address is re-resolved every
   iteration. *)
let charge_device_writes (t : t) ~(id : int) : unit =
  match t.backend with
  | Memory_backend.Static -> ()
  | Memory_backend.Device st ->
      let line64 = Holes_pcm.Geometry.line_bytes in
      let nlines = (Object_table.size t.objects id + line64 - 1) / line64 in
      let i = ref 0 in
      while !i < nlines && Object_table.is_alive t.objects id do
        let addr = Object_table.addr t.objects id in
        let off = !i * line64 in
        let backing =
          if Los.is_los_addr addr then Los.page_backing t.los ~base:addr ~off
          else
            match t.space with
            | Ix s -> Immix.page_backing s ~addr:(addr + off)
            | Ms _ -> None
        in
        (match backing with
        | None -> ()
        | Some (stock_page, line) ->
            ignore (Memory_backend.device_write st ~stock_page ~line));
        incr i
      done

(** Run the paranoid heap verifier over the whole VM: blocks, cursors,
    LOS, page stock, accounting, device/OS agreement and failure
    buffers (see {!Verify}).  Valid at any point; free of side effects
    beyond the non-serialized [verify_*] counters. *)
let verify (t : t) : Verify.report =
  Verify.run ~metrics:t.metrics ~objects:t.objects ~stock:t.stock ~los:t.los
    ~immix:(match t.space with Ix s -> Some s | Ms _ -> None)
    ~backend:t.backend
    ?fbuf:(Option.map (fun inj -> inj.fbuf) t.injector)
    ()

(* ---- the dynamic failure-model injector (Storm / Adversarial) ---- *)

(* OS response: drain the staged failures oldest-first, retiring each
   line through the collector's dynamic-failure machinery (which may
   collect, evacuate, or raise Out_of_memory — a legitimate outcome). *)
let drain_injector (t : t) (inj : injector) : unit =
  let rec go () =
    match Holes_pcm.Failure_buffer.peek inj.fbuf with
    | None -> ()
    | Some e ->
        let addr = e.Holes_pcm.Failure_buffer.addr in
        ignore (Holes_pcm.Failure_buffer.clear inj.fbuf ~addr);
        (match t.space with Ix s -> Immix.dynamic_failure s ~addr | Ms _ -> ());
        go ()
  in
  go ()

(* One scheduled event: a burst of line failures (Storm: geometric
   size; Adversarial: exactly the line under the bump cursor).  Each
   failing line is staged in the private failure buffer first — when
   the buffer is full the device stalls and the OS must drain before
   the next failure can be recorded — then the whole burst is drained. *)
let inject_event (t : t) (s : Immix.t) (inj : injector) : unit =
  let n = Holes_pcm.Failure_model.burst_size inj.spec inj.irng in
  let payload = Bytes.create 8 in
  for _ = 1 to n do
    let victim =
      match inj.spec with
      | Holes_pcm.Failure_model.Adversarial _ -> (
          match Immix.bump_target s with
          | Some addr -> Some addr
          | None -> Immix.random_line_addr s inj.irng)
      | _ -> Immix.random_line_addr s inj.irng
    in
    match victim with
    | None -> ()
    | Some addr ->
        Bytes.set_int64_le payload 0 (Int64.of_int addr);
        if not (Holes_pcm.Failure_buffer.insert inj.fbuf ~addr ~data:payload) then begin
          drain_injector t inj;
          ignore (Holes_pcm.Failure_buffer.insert inj.fbuf ~addr ~data:payload)
        end
  done;
  drain_injector t inj

(* Fire every event whose allocation-clock deadline has passed (called
   after each mutator allocation; never re-enters itself because the
   collector allocates through its own internal paths). *)
let service_injector (t : t) : unit =
  match (t.injector, t.space) with
  | None, _ | _, Ms _ -> ()
  | Some inj, Ix s ->
      while t.metrics.Metrics.bytes_allocated >= inj.next_at do
        inject_event t s inj;
        inj.next_at <-
          inj.next_at + Holes_pcm.Failure_model.next_interval inj.spec inj.irng
      done

(** Create a VM with a heap of [heap_factor × min_heap_bytes] usable
    bytes (compensated for the failure rate when configured).
    [device_map] overrides the generated failure map (used by the
    wear-leveling ablation and by tests that inject hand-built maps); it
    receives the page count and must return a bitmap of
    [npages * 64] lines.  [node] attaches the VM to an existing shared
    device node (the fleet's pooled-device path) instead of creating a
    private device; placement on a full or dying node raises
    {!Out_of_memory} without leaking pages. *)
let create ?(cfg = Config.default) ?(device_map : (npages:int -> Bitset.t) option)
    ?(node : Memory_backend.node option) ?(tracer = Trace.null) ~(min_heap_bytes : int) () : t
    =
  (match Config.validate cfg with Ok () -> () | Error m -> invalid_arg ("Vm.create: " ^ m));
  (match (node, cfg.Config.backend) with
  | Some _, Config.Static ->
      invalid_arg "Vm.create: a device node requires the device backend"
  | _ -> ());
  let heap_bytes =
    int_of_float (cfg.Config.heap_factor *. float_of_int min_heap_bytes)
  in
  let base_pages = (heap_bytes + page_bytes - 1) / page_bytes in
  let pages =
    if cfg.Config.compensate && cfg.Config.failure_rate > 0.0 then
      int_of_float (ceil (float_of_int base_pages /. (1.0 -. cfg.Config.failure_rate)))
    else base_pages
  in
  let cost = Cost.create () in
  (* virtual clock: trace timestamps are modeled nanoseconds, so traces
     are deterministic and independent of host speed or -j parallelism *)
  Trace.set_clock tracer (fun () -> Cost.total_ns cost);
  let metrics = Metrics.create () in
  let backend, stock, heap_pages, injector =
    match cfg.Config.backend with
    | Config.Static ->
        let rng = Xrng.of_seed cfg.Config.seed in
        let device_map, heap_pages =
          match device_map with
          | Some f -> (f ~npages:pages, pages)
          | None -> generate_failure_map cfg ~rng ~npages:pages
        in
        let stock =
          Page_stock.create ~line_size:cfg.Config.line_size ~device_map ~npages:heap_pages ()
        in
        let injector =
          match cfg.Config.failure_model with
          | Config.Model m when Holes_pcm.Failure_model.is_dynamic m ->
              let irng = Xrng.split rng in
              Some
                {
                  spec = m;
                  irng;
                  fbuf = Holes_pcm.Failure_buffer.create ();
                  next_at = Holes_pcm.Failure_model.next_interval m irng;
                }
          | Config.Model _ | Config.From_dist -> None
        in
        (Memory_backend.Static, stock, heap_pages, injector)
    | Config.Device params ->
        if device_map <> None then
          invalid_arg "Vm.create: device_map overrides apply to the static backend only";
        let st, bitmaps =
          match node with
          | None -> Memory_backend.create_device ~tracer ~cfg ~params ~metrics ~npages:pages ()
          | Some node -> (
              match Memory_backend.attach ~node ~metrics ~npages:pages () with
              | Ok r -> r
              | Error `Out_of_memory ->
                  metrics.Metrics.out_of_memory <- true;
                  raise Out_of_memory)
        in
        let stock = Page_stock.create_of_bitmaps ~line_size:cfg.Config.line_size ~bitmaps () in
        (Memory_backend.Device st, stock, Array.length bitmaps, None)
  in
  let objects = Object_table.create () in
  let los = Los.create ~stock ~cost ~metrics in
  let space =
    if Config.is_immix cfg.Config.collector then
      Ix (Immix.create ~tracer ~cfg ~cost ~metrics ~stock ~objects ~los ())
    else Ms (Mark_sweep.create ~cfg ~cost ~metrics ~stock ~objects ~los)
  in
  let t =
    { cfg; cost; metrics; objects; stock; los; space; backend; injector; heap_pages;
      arraylet_spines = Hashtbl.create 64; tracer }
  in
  (match backend with
  | Memory_backend.Static -> ()
  | Memory_backend.Device st ->
      st.Memory_backend.line_retired <-
        (fun ~stock_page ~line ~data -> handle_line_retired t ~stock_page ~line ~data);
      (* hybrid-tiering migration copies are charged to the VM whose
         write triggered them (requestor pays), at the same per-byte
         rate as collector copies *)
      st.Memory_backend.charge_copy <-
        (fun ~bytes ->
          Cost.charge cost (cost.Cost.weights.Cost.copy_byte *. float_of_int bytes)));
  if cfg.Config.verify then
    (match space with
    | Ix s -> Immix.set_post_gc_check s (fun () -> Verify.raise_on_errors (verify t))
    | Ms _ -> ());
  t

let cfg (t : t) : Config.t = t.cfg
let cost (t : t) : Cost.t = t.cost
let metrics (t : t) : Metrics.t = t.metrics
let objects (t : t) : Object_table.t = t.objects
let stock (t : t) : Page_stock.t = t.stock

(** Ask the next full collection to defragment (evacuate sparse blocks).
    The collector also requests this itself on allocation pressure;
    Immix defragments on demand, not on every collection. *)
let request_defrag (t : t) : unit =
  match t.space with Ix s -> Immix.request_defrag s | Ms _ -> ()

(* a small/medium allocation through the configured collector *)
let alloc_in_space (t : t) ~(size : int) ~(pinned : bool) : int =
  match t.space with
  | Ix s ->
      let addr = Immix.alloc s ~size in
      let id = Object_table.alloc t.objects ~addr ~size ~pinned ~los:false in
      Immix.register s ~id ~addr;
      charge_device_writes t ~id;
      id
  | Ms s ->
      let block, cell, addr = Mark_sweep.alloc s ~size in
      let id = Object_table.alloc t.objects ~addr ~size ~pinned ~los:false in
      Mark_sweep.register_cell s ~block ~cell ~id;
      Mark_sweep.register s ~id;
      id

(* Discontiguous arrays (Z-rays, Sartor et al. — paper Sec. 3.3.3): a
   large array becomes fixed-size arraylets plus a spine of pointers,
   all allocated as ordinary (relaxed) objects — no perfect pages
   needed.  Arraylets are line-sized ("arraylets as small as 256
   bytes"), so they take the small-object hole-skipping path and fit
   any imperfect page.  The spine indirection is charged per byte. *)
let alloc_arraylets (t : t) ~(size : int) ~(pinned : bool) : int =
  let arraylet_bytes = t.cfg.Config.line_size in
  let npieces = (size + arraylet_bytes - 1) / arraylet_bytes in
  let pieces = ref [] in
  for i = 0 to npieces - 1 do
    let psize = min arraylet_bytes (size - (i * arraylet_bytes)) in
    pieces := alloc_in_space t ~size:(max 16 psize) ~pinned:false :: !pieces
  done;
  let spine = alloc_in_space t ~size:(max 16 (npieces * 8)) ~pinned in
  List.iter (fun p -> Object_table.add_ref t.objects ~src:spine ~dst:p) !pieces;
  Hashtbl.replace t.arraylet_spines spine !pieces;
  let w = t.cost.Cost.weights in
  Cost.charge t.cost (w.Cost.arraylet_byte *. float_of_int size);
  t.metrics.Metrics.arraylet_arrays <- t.metrics.Metrics.arraylet_arrays + 1;
  t.metrics.Metrics.arraylet_pieces <- t.metrics.Metrics.arraylet_pieces + npieces;
  spine

(** Allocate an object of [size] bytes; returns its object id.  May run
    collections; raises {!Out_of_memory} when the heap cannot hold the
    live set.  Large objects go to the page-grained LOS, or — in Z-rays
    mode — are split into discontiguous arraylets. *)
let alloc (t : t) ?(pinned = false) ~(size : int) () : int =
  let asize = Units.aligned_size size in
  t.metrics.Metrics.objects_allocated <- t.metrics.Metrics.objects_allocated + 1;
  t.metrics.Metrics.bytes_allocated <- t.metrics.Metrics.bytes_allocated + asize;
  let id =
    if asize > Units.los_threshold && t.cfg.Config.arraylets then
      alloc_arraylets t ~size:asize ~pinned
    else if asize > Units.los_threshold then begin
      let addr = alloc_los t ~size:asize in
      let id = Object_table.alloc t.objects ~addr ~size:asize ~pinned ~los:true in
      (match t.space with
      | Ix s -> Immix.register s ~id ~addr
      | Ms s -> Mark_sweep.register s ~id);
      charge_device_writes t ~id;
      id
    end
    else alloc_in_space t ~size:asize ~pinned
  in
  service_injector t;
  id

(** Store a reference from [src] to [dst] (fires the write barrier).
    On the device backend the pointer store itself is a 64 B line write
    and is charged through the device (it can wear the line out). *)
let write_ref (t : t) ~(src : int) ~(dst : int) : unit =
  Object_table.add_ref t.objects ~src ~dst;
  (match t.backend with
  | Memory_backend.Static -> ()
  | Memory_backend.Device st -> (
      let addr = Object_table.addr t.objects src in
      let backing =
        if Los.is_los_addr addr then Los.page_backing t.los ~base:addr ~off:0
        else match t.space with Ix s -> Immix.page_backing s ~addr | Ms _ -> None
      in
      match backing with
      | None -> ()
      | Some (stock_page, line) -> ignore (Memory_backend.device_write st ~stock_page ~line)));
  match t.space with Ix s -> Immix.write_barrier s ~src | Ms s -> Mark_sweep.write_barrier s ~src

(** The object becomes unreachable; its space is reclaimed by a later
    collection.  Killing an arraylet spine kills its pieces. *)
let kill (t : t) (id : int) : unit =
  Object_table.kill t.objects id;
  match Hashtbl.find_opt t.arraylet_spines id with
  | None -> ()
  | Some pieces ->
      List.iter (Object_table.kill t.objects) pieces;
      Hashtbl.remove t.arraylet_spines id

(** Inject a dynamic PCM line failure at the heap address of object
    [id] (or an arbitrary address via [dynamic_failure_at]).  LOS
    failures relocate the whole large object to fresh perfect pages.
    Static backend only: on the device backend failures arise from wear
    and arrive through the interrupt chain, so direct injection is
    rejected. *)
let dynamic_failure_at (t : t) ~(addr : int) : unit =
  (match t.backend with
  | Memory_backend.Device _ ->
      invalid_arg
        "Vm.dynamic_failure_at: the device backend delivers failures through the interrupt \
         chain"
  | Memory_backend.Static -> ());
  if Los.is_los_addr addr then relocate_los_victim t ~addr
  else
    match t.space with
    | Ix s -> Immix.dynamic_failure s ~addr
    | Ms _ -> invalid_arg "Vm.dynamic_failure_at: mark-sweep runs without failures"

let dynamic_failure (t : t) ~(id : int) : unit =
  if Object_table.is_alive t.objects id then
    dynamic_failure_at t ~addr:(Object_table.addr t.objects id)

(** Switch the device's wear-leveling stage mid-run (device backend
    only): pauses, resumes or installs a leveling policy in the
    address-translation pipeline.  Any line the stage reserves for
    itself is retired through the normal failure chain before this
    returns, so the heap stays consistent for the next verify pass. *)
let set_wear_level (t : t) (p : Holes_pcm.Wear_level.policy option) : unit =
  match t.backend with
  | Memory_backend.Device st -> Memory_backend.set_wear_level st p
  | Memory_backend.Static ->
      invalid_arg "Vm.set_wear_level: wear-leveling stages live in the device pipeline"

(** Switch the hybrid DRAM/PCM tiering policy mid-run (device backend
    only; DESIGN.md §17).  Turning migration off demotes every DRAM
    resident back to its PCM home (dirty lines written back through
    the charged device path); turning the content store off flushes
    its bound lines through the cells.  The torture driver flips this
    both ways under load. *)
let set_hybrid (t : t) (p : Holes_pcm.Hybrid.policy) : unit =
  match t.backend with
  | Memory_backend.Device st -> Memory_backend.set_hybrid st p
  | Memory_backend.Static ->
      invalid_arg "Vm.set_hybrid: hybrid tiering needs the device backend"

(** Switch the incremental-collection work budget mid-run (0 =
    stop-the-world).  On Immix, toggling increments off finishes any
    cycle in flight first, so the heap the stop-the-world machinery
    next sees is a completed-collection state — the torture driver
    flips this both ways under load. *)
let set_gc_slice (t : t) (budget : int) : unit =
  match t.space with
  | Ix s -> Immix.set_gc_slice s budget
  | Ms s -> Mark_sweep.set_gc_slice s budget

(** Total modeled execution time so far, in milliseconds. *)
let elapsed_ms (t : t) : float = Cost.total_ms t.cost

(** The VM's memory backend (tests inspect the device pipeline here). *)
let backend (t : t) : Memory_backend.t = t.backend

(** The device pipeline state, when running on the device backend. *)
let device_state (t : t) : Memory_backend.device_state option =
  match t.backend with Memory_backend.Static -> None | Memory_backend.Device st -> Some st

(** Pull the device/OS pipeline counters into {!metrics} (no-op on the
    static backend).  Call at run end, before reading metrics. *)
let sync_backend_stats (t : t) : unit =
  match t.backend with
  | Memory_backend.Static -> (
      (* the injector's private failure buffer plays the device's role
         under the Storm/Adversarial models: publish its pressure *)
      match t.injector with
      | None -> ()
      | Some inj ->
          let st = Holes_pcm.Failure_buffer.stats inj.fbuf in
          t.metrics.Metrics.fbuf_peak_occupancy <- st.Holes_pcm.Failure_buffer.max_occupancy;
          t.metrics.Metrics.fbuf_stall_events <- st.Holes_pcm.Failure_buffer.stall_events)
  | Memory_backend.Device st -> Memory_backend.sync st

(** Post-collection heap invariants (valid immediately after a full
    collection): live objects never overlap failed lines or each other's
    line accounting. *)
let check_invariants (t : t) : (unit, string) result =
  match t.space with Ix s -> Immix.check_invariants s | Ms _ -> Ok ()

(** Snapshot of headline counters, for examples and debugging output.
    On the device backend this also reports the device/OS pipeline:
    device traffic, failure-buffer pressure, interrupt-chain activity. *)
let pp_summary (ppf : Format.formatter) (t : t) : unit =
  sync_backend_stats t;
  let m = t.metrics in
  Format.fprintf ppf
    "@[<v>time: %.2f ms (mutator %.2f, gc %.2f)@,\
     allocated: %d objects, %.2f MB@,\
     collections: %d full, %d nursery@,\
     copied: %.2f MB; hole skips: %d; perfect-block fallbacks: %d@,\
     LOS: %d objects, %d pages; borrowed pages: %d@]"
    (Cost.total_ms t.cost)
    (Cost.mutator_ns t.cost /. 1e6)
    (Cost.gc_ns t.cost /. 1e6)
    m.Metrics.objects_allocated
    (float_of_int m.Metrics.bytes_allocated /. 1048576.0)
    m.Metrics.full_gcs m.Metrics.nursery_gcs
    (float_of_int m.Metrics.bytes_copied /. 1048576.0)
    m.Metrics.hole_skips m.Metrics.perfect_block_fallbacks m.Metrics.los_objects
    m.Metrics.los_pages
    (Holes_osal.Accounting.total_borrowed (Page_stock.accounting t.stock));
  match t.backend with
  | Memory_backend.Static -> ()
  | Memory_backend.Device _ ->
      Format.fprintf ppf
        "@,@[<v>device: %d reads, %d writes, %d wear failures@,\
         fbuf: peak occupancy %d, %d stalls@,\
         OS: %d up-calls, %d page copies, %d data restores@,\
         VMM: %d reverse translations, %d swap-ins; dynamic failures: %d@]"
        m.Metrics.device_reads m.Metrics.device_writes m.Metrics.device_line_failures
        m.Metrics.fbuf_peak_occupancy m.Metrics.fbuf_stall_events m.Metrics.os_upcalls
        m.Metrics.os_page_copies m.Metrics.os_data_restores m.Metrics.reverse_translations
        m.Metrics.swap_ins m.Metrics.dynamic_failures
