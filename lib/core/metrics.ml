(** Per-run metrics gathered by the VM — the raw material for every
    figure and table in the evaluation. *)

type t = {
  mutable objects_allocated : int;
  mutable bytes_allocated : int;
  mutable full_gcs : int;
  mutable nursery_gcs : int;
  mutable pauses_ns : float list;  (** full-heap collection pauses *)
  mutable nursery_pauses_ns : float list;
  mutable bytes_copied : int;
  mutable objects_evacuated : int;
  mutable hole_skips : int;  (** bump-pointer hole transitions *)
  mutable lines_scanned : int;  (** hole-search line examinations *)
  mutable blocks_assembled : int;
  mutable overflow_allocs : int;
  mutable overflow_searches : int;  (** FA re-searches of the overflow block *)
  mutable perfect_block_fallbacks : int;
  mutable los_objects : int;
  mutable los_pages : int;
  mutable arraylet_arrays : int;  (** large arrays split into arraylets *)
  mutable arraylet_pieces : int;
  mutable dynamic_failures : int;
  mutable peak_live_bytes : int;
  mutable out_of_memory : bool;
  mutable oom_request : int;  (** size of the allocation that hit OOM (0 = none) *)
  (* device backend: the cooperative pipeline's counters, synced from the
     PCM module / OS layers after a run (all zero on the static backend) *)
  mutable device_reads : int;
  mutable device_writes : int;
  mutable device_line_failures : int;  (** wear-driven write failures *)
  mutable fbuf_peak_occupancy : int;  (** failure-buffer high-water mark *)
  mutable fbuf_stall_events : int;  (** watermark crossings that stalled writes *)
  mutable os_upcalls : int;  (** interrupt resolutions via the runtime handler *)
  mutable os_page_copies : int;  (** failure-unaware page-copy resolutions *)
  mutable os_data_restores : int;  (** clustering re-backed the failing address *)
  mutable reverse_translations : int;
  mutable swap_ins : int;
}

let create () : t =
  {
    objects_allocated = 0;
    bytes_allocated = 0;
    full_gcs = 0;
    nursery_gcs = 0;
    pauses_ns = [];
    nursery_pauses_ns = [];
    bytes_copied = 0;
    objects_evacuated = 0;
    hole_skips = 0;
    lines_scanned = 0;
    blocks_assembled = 0;
    overflow_allocs = 0;
    overflow_searches = 0;
    perfect_block_fallbacks = 0;
    los_objects = 0;
    los_pages = 0;
    arraylet_arrays = 0;
    arraylet_pieces = 0;
    dynamic_failures = 0;
    peak_live_bytes = 0;
    out_of_memory = false;
    oom_request = 0;
    device_reads = 0;
    device_writes = 0;
    device_line_failures = 0;
    fbuf_peak_occupancy = 0;
    fbuf_stall_events = 0;
    os_upcalls = 0;
    os_page_copies = 0;
    os_data_restores = 0;
    reverse_translations = 0;
    swap_ins = 0;
  }

let gcs (t : t) : int = t.full_gcs + t.nursery_gcs

let mean_full_pause_ms (t : t) : float option =
  match t.pauses_ns with
  | [] -> None
  | ps -> Some (Holes_stdx.Stats.mean ps /. 1.0e6)

let max_full_pause_ms (t : t) : float option =
  match t.pauses_ns with [] -> None | ps -> Some (Holes_stdx.Stats.maximum ps /. 1.0e6)
