(** Per-run metrics gathered by the VM — the raw material for every
    figure and table in the evaluation. *)

type t = {
  mutable objects_allocated : int;
  mutable bytes_allocated : int;
  mutable full_gcs : int;
  mutable nursery_gcs : int;
  mutable pauses_ns : float list;  (** full-heap collection pauses *)
  mutable nursery_pauses_ns : float list;
  mutable bytes_copied : int;
  mutable objects_evacuated : int;
  mutable hole_skips : int;  (** bump-pointer hole transitions *)
  mutable lines_scanned : int;  (** hole-search line examinations *)
  mutable blocks_assembled : int;
  mutable overflow_allocs : int;
  mutable overflow_searches : int;  (** FA re-searches of the overflow block *)
  mutable perfect_block_fallbacks : int;
  mutable los_objects : int;
  mutable los_pages : int;
  mutable arraylet_arrays : int;  (** large arrays split into arraylets *)
  mutable arraylet_pieces : int;
  mutable dynamic_failures : int;
  mutable peak_live_bytes : int;
  mutable out_of_memory : bool;
  mutable oom_request : int;  (** size of the allocation that hit OOM (0 = none) *)
  (* device backend: the cooperative pipeline's counters, synced from the
     PCM module / OS layers after a run (all zero on the static backend) *)
  mutable device_reads : int;
  mutable device_writes : int;
  mutable device_line_failures : int;  (** wear-driven write failures *)
  mutable fbuf_peak_occupancy : int;  (** failure-buffer high-water mark *)
  mutable fbuf_stall_events : int;  (** watermark crossings that stalled writes *)
  mutable os_upcalls : int;  (** interrupt resolutions via the runtime handler *)
  mutable os_page_copies : int;  (** failure-unaware page-copy resolutions *)
  mutable os_data_restores : int;  (** clustering re-backed the failing address *)
  mutable reverse_translations : int;
  mutable swap_ins : int;
  (* wear-leveling stage (Translate pipeline): overhead counters, synced
     from the device.  Serialized only when a leveling stage is active
     ([wl_active]) so identity-pipeline records stay byte-identical to
     the pre-pipeline schema. *)
  mutable wl_active : bool;  (** a leveling stage is installed on the device *)
  mutable wl_gap_moves : int;  (** start-gap movements *)
  mutable wl_remaps : int;  (** pair swaps (random remap / decoder swap) *)
  mutable wl_remap_copies : int;  (** overhead line copies charged to the device *)
  mutable wl_meta_writes : int;  (** leveling map / decoder reprogram writes *)
  mutable wear_cov : float;
      (** coefficient of variation of per-line wear across the module
          (synced on the device backend whether or not leveling is on;
          serialized only when it is) *)
  (* incremental collection (Config.gc_slice > 0): slice counter,
     serialized only when the mode was ever on ([inc_active]) so
     stop-the-world records stay byte-identical to the existing schema *)
  mutable inc_active : bool;  (** incremental collection was enabled at some point *)
  mutable gc_increments : int;  (** collection slices executed (snapshot/mark/sweep/defrag) *)
  (* hybrid DRAM/PCM tiering (Config.hybrid, DESIGN.md §17): absorption
     counters, synced from the tier and the device's content store.
     Serialized only when a tiering mechanism was ever on
     ([hybrid_active]) so untiered records stay byte-identical. *)
  mutable hybrid_active : bool;  (** a tiering mechanism was enabled at some point *)
  mutable hyb_promotes : int;  (** PCM pages promoted into DRAM frames *)
  mutable hyb_demotes : int;  (** promoted pages demoted back to their PCM home *)
  mutable hyb_dram_writes : int;  (** charged line writes absorbed by promoted frames *)
  mutable hyb_resident : int;  (** pages resident in DRAM at sync time *)
  mutable hyb_dedup_hits : int;  (** writes absorbed by content dedup *)
  mutable hyb_compressed : int;  (** writes absorbed as single-byte patterns *)
  mutable hyb_meta_writes : int;  (** content-store metadata writes *)
  (* paranoid heap verifier (Verify): pass/check counters.  Deliberately
     NOT serialized by [to_fields] — JSONL records must be bit-identical
     with the verifier on and off, and these are the only counters the
     verifier is allowed to touch. *)
  mutable verify_passes : int;  (** clean verifier runs *)
  mutable verify_checks : int;  (** individual invariant checks performed *)
  (* always-on phase histograms (Obs.Stats): populated by the collector
     and the device write path regardless of tracing, so they are part of
     the deterministic outcome rather than an observability side channel *)
  pause_hist : Holes_obs.Stats.hist;  (** full-heap pause, ns *)
  nursery_pause_hist : Holes_obs.Stats.hist;  (** nursery pause, ns *)
  hole_search_hist : Holes_obs.Stats.hist;  (** lines examined per hole search *)
  fbuf_occupancy_hist : Holes_obs.Stats.hist;
      (** failure-buffer occupancy sampled at each charged device write *)
}

let create () : t =
  {
    objects_allocated = 0;
    bytes_allocated = 0;
    full_gcs = 0;
    nursery_gcs = 0;
    pauses_ns = [];
    nursery_pauses_ns = [];
    bytes_copied = 0;
    objects_evacuated = 0;
    hole_skips = 0;
    lines_scanned = 0;
    blocks_assembled = 0;
    overflow_allocs = 0;
    overflow_searches = 0;
    perfect_block_fallbacks = 0;
    los_objects = 0;
    los_pages = 0;
    arraylet_arrays = 0;
    arraylet_pieces = 0;
    dynamic_failures = 0;
    peak_live_bytes = 0;
    out_of_memory = false;
    oom_request = 0;
    device_reads = 0;
    device_writes = 0;
    device_line_failures = 0;
    fbuf_peak_occupancy = 0;
    fbuf_stall_events = 0;
    os_upcalls = 0;
    os_page_copies = 0;
    os_data_restores = 0;
    reverse_translations = 0;
    swap_ins = 0;
    wl_active = false;
    wl_gap_moves = 0;
    wl_remaps = 0;
    wl_remap_copies = 0;
    wl_meta_writes = 0;
    wear_cov = 0.0;
    inc_active = false;
    gc_increments = 0;
    hybrid_active = false;
    hyb_promotes = 0;
    hyb_demotes = 0;
    hyb_dram_writes = 0;
    hyb_resident = 0;
    hyb_dedup_hits = 0;
    hyb_compressed = 0;
    hyb_meta_writes = 0;
    verify_passes = 0;
    verify_checks = 0;
    pause_hist = Holes_obs.Stats.hist ();
    nursery_pause_hist = Holes_obs.Stats.hist ();
    hole_search_hist = Holes_obs.Stats.hist ();
    fbuf_occupancy_hist = Holes_obs.Stats.hist ();
  }

let gcs (t : t) : int = t.full_gcs + t.nursery_gcs

let mean_full_pause_ms (t : t) : float option =
  match t.pauses_ns with
  | [] -> None
  | ps -> Some (Holes_stdx.Stats.mean ps /. 1.0e6)

let max_full_pause_ms (t : t) : float option =
  match t.pauses_ns with [] -> None | ps -> Some (Holes_stdx.Stats.maximum ps /. 1.0e6)

(** The full snapshot as flat key/value fields — every counter plus the
    histogram summaries — for the engine's JSONL sink (one record per
    trial must carry the whole pipeline, not a hand-picked subset). *)
let to_fields (t : t) : (string * float) list =
  let f = float_of_int in
  [
    ("objects_allocated", f t.objects_allocated);
    ("bytes_allocated", f t.bytes_allocated);
    ("full_gcs", f t.full_gcs);
    ("nursery_gcs", f t.nursery_gcs);
    ("bytes_copied", f t.bytes_copied);
    ("objects_evacuated", f t.objects_evacuated);
    ("hole_skips", f t.hole_skips);
    ("lines_scanned", f t.lines_scanned);
    ("blocks_assembled", f t.blocks_assembled);
    ("overflow_allocs", f t.overflow_allocs);
    ("overflow_searches", f t.overflow_searches);
    ("perfect_block_fallbacks", f t.perfect_block_fallbacks);
    ("los_objects", f t.los_objects);
    ("los_pages", f t.los_pages);
    ("arraylet_arrays", f t.arraylet_arrays);
    ("arraylet_pieces", f t.arraylet_pieces);
    ("dynamic_failures", f t.dynamic_failures);
    ("peak_live_bytes", f t.peak_live_bytes);
    ("out_of_memory", if t.out_of_memory then 1.0 else 0.0);
    ("oom_request", f t.oom_request);
    ("device_reads", f t.device_reads);
    ("device_writes", f t.device_writes);
    ("device_line_failures", f t.device_line_failures);
    ("fbuf_peak_occupancy", f t.fbuf_peak_occupancy);
    ("fbuf_stall_events", f t.fbuf_stall_events);
    ("os_upcalls", f t.os_upcalls);
    ("os_page_copies", f t.os_page_copies);
    ("os_data_restores", f t.os_data_restores);
    ("reverse_translations", f t.reverse_translations);
    ("swap_ins", f t.swap_ins);
  ]
  @ (if not t.wl_active then []
     else
       [
         ("wl_gap_moves", f t.wl_gap_moves);
         ("wl_remaps", f t.wl_remaps);
         ("wl_remap_copies", f t.wl_remap_copies);
         ("wl_meta_writes", f t.wl_meta_writes);
         ("wear_cov", t.wear_cov);
       ])
  @ (if not t.inc_active then [] else [ ("gc_increments", f t.gc_increments) ])
  @ (if not t.hybrid_active then []
     else
       [
         ("hyb_promotes", f t.hyb_promotes);
         ("hyb_demotes", f t.hyb_demotes);
         ("hyb_dram_writes", f t.hyb_dram_writes);
         ("hyb_resident", f t.hyb_resident);
         ("hyb_dedup_hits", f t.hyb_dedup_hits);
         ("hyb_compressed", f t.hyb_compressed);
         ("hyb_meta_writes", f t.hyb_meta_writes);
       ])
  @ Holes_obs.Stats.to_fields ~prefix:"pause_ns" t.pause_hist
  @ Holes_obs.Stats.to_fields ~prefix:"nursery_pause_ns" t.nursery_pause_hist
  @ Holes_obs.Stats.to_fields ~prefix:"hole_search_lines" t.hole_search_hist
  @ Holes_obs.Stats.to_fields ~prefix:"fbuf_occupancy" t.fbuf_occupancy_hist
