(** Mark-Sweep and Sticky Mark-Sweep baselines (Fig. 3).

    A segregated-fits free-list allocator in the style the paper
    discusses for native runtimes (Sec. 3.3.1): blocks are carved on
    demand into same-sized cells; allocation pops a free cell;
    collection marks live objects and sweeps cells back onto the free
    lists.  No copying, so no defragmentation.  The sticky variant
    collects the logical nursery from the remembered set.

    These collectors are evaluated only without failures (the paper's
    Fig. 3 motivates Immix as the baseline; Sec. 3.3.1 explains why
    free-lists tolerate failures poorly), so they refuse configurations
    with a non-zero failure rate. *)

open Holes_stdx
open Holes_heap

exception Out_of_memory

val size_classes : int array
(** Size classes (bytes).  Everything above the last class is a large
    object and goes to the LOS. *)

val class_of_size : int -> int option
(** Smallest size class that fits the request; [None] above the last
    class (the LOS boundary). *)

type ms_block = {
  index : int;
  base : int;
  klass : int;
  cell_size : int;
  ncells : int;
  cells : int array;  (** object id occupying each cell, or -1 *)
  pages : int array;
  mutable free_cells : int;
}

type t = {
  cfg : Config.t;
  cost : Cost.t;
  metrics : Metrics.t;
  stock : Page_stock.t;
  objects : Object_table.t;
  los : Los.t;
  blocks : (int, ms_block) Hashtbl.t;
  mutable next_block_index : int;
  free_lists : Intvec.t array;
      (** per class: a LIFO of free cells packed as
          [(block index lsl cell_bits) lor cell] — the cons list it
          replaces, stored reversed (push/pop at the vector's end), so
          pop order and therefore every object address is unchanged *)
  remset : Remset.t;
  nursery : Intvec.t;
  mutable want_full : bool;
  mutable gc_slice : int;
      (** incremental work budget per recorded slice (0 = stop-the-world).
          The free-list baseline has no mutator-interleaved marking: a
          sliced collection still runs to completion within one call, but
          brackets its mark and sweep work into budgeted chunks so every
          recorded pause is bounded — the honest comparison point for the
          Immix incremental mode's pause figures. *)
}

val create :
  cfg:Config.t ->
  cost:Cost.t ->
  metrics:Metrics.t ->
  stock:Page_stock.t ->
  objects:Object_table.t ->
  los:Los.t ->
  t
(** Raises [Invalid_argument] on a configuration with a non-zero failure
    rate: the free-list baselines run only without failures. *)

val alloc : t -> size:int -> int * int * int
(** Allocate from the class free list, carving a fresh block on a miss
    and falling back to collection, then [Out_of_memory].  Returns
    [(block index, cell, address)]; the caller registers the object id
    with {!register_cell} once known. *)

val register_cell : t -> block:int -> cell:int -> id:int -> unit
(** Record the object occupying a cell (after the object id is known). *)

val register : t -> id:int -> unit
(** Track a freshly allocated object in the logical nursery. *)

val write_barrier : t -> src:int -> unit
(** The generational write barrier for the sticky variant. *)

val collect : t -> full:bool -> unit
(** Run a full mark-sweep collection, or a sticky nursery collection.
    With [gc_slice > 0] the full collection records its pauses in
    budgeted chunks (identical end state and charge totals). *)

val set_gc_slice : t -> int -> unit
(** Set the incremental work budget (0 = stop-the-world).  The baseline
    has no cycle state to finish: the next collection simply uses the
    new bracketing. *)
