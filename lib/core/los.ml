(** The large object space (paper Secs. 3.3.3 and 4.1).

    Objects above the LOS threshold (8 KB) are allocated page-grained and
    contiguous, so they cannot skip over holes: the LOS is a *fussy*
    allocator that demands perfect pages.  When the perfect pool is dry
    it borrows DRAM pages through the debit–credit accounting
    (Sec. 5); two-page hardware clustering keeps this rare by
    manufacturing logically perfect pages (Sec. 6.4, Fig. 9(b)). *)

open Holes_heap

type entry = {
  pages : int array;
      (** page-stock ids backing the object, in address order;
          -1 = borrowed DRAM *)
  bytes : int;
}

type t = {
  stock : Page_stock.t;
  cost : Cost.t;
  metrics : Metrics.t;
  entries : (int, entry) Hashtbl.t;  (** object id -> backing pages *)
  mutable next_addr : int;
  mutable pages_in_use : int;
}

(** LOS addresses live in their own range so [Vm] can distinguish them
    from Immix block addresses. *)
let address_base = 1 lsl 40

let create ~(stock : Page_stock.t) ~(cost : Cost.t) ~(metrics : Metrics.t) : t =
  {
    stock;
    cost;
    metrics;
    entries = Hashtbl.create 64;
    next_addr = address_base;
    pages_in_use = 0;
  }

let is_los_addr (addr : int) : bool = addr >= address_base

let pages_needed (size : int) : int =
  (size + Holes_pcm.Geometry.page_bytes - 1) / Holes_pcm.Geometry.page_bytes

(** Would allocating [size] bytes stay within the heap budget?  The LOS
    only proceeds when the stock could cover the request (otherwise the
    caller must collect first); the perfect/borrowed distinction is then
    resolved page by page. *)
let can_allocate (t : t) ~(size : int) : bool =
  let npages = pages_needed size in
  Page_stock.free_pages t.stock >= npages

(** Allocate [size] bytes page-grained.  The caller must have ensured
    {!can_allocate}; pages are drawn perfect-first, with DRAM borrowing
    as a *bounded* fallback (DRAM is scarce).  Returns the fresh LOS
    address, or [None] when the perfect pool and the borrow budget are
    both exhausted — the caller should collect and retry. *)
let alloc (t : t) ~(size : int) : int option =
  let w = t.cost.Cost.weights in
  let npages = pages_needed size in
  let pages = Array.make npages (-2) in
  let taken = ref 0 in
  let exhausted = ref false in
  while (not !exhausted) && !taken < npages do
    Cost.charge t.cost w.Cost.perfect_request;
    (match Page_stock.take_perfect t.stock with
    | Page_stock.Perfect id ->
        pages.(!taken) <- id;
        incr taken
    | Page_stock.Borrowed ->
        Cost.charge t.cost w.Cost.dram_borrow;
        pages.(!taken) <- -1;
        incr taken
    | Page_stock.Exhausted -> exhausted := true)
  done;
  if !exhausted then begin
    (* roll back the pages already taken *)
    for i = 0 to !taken - 1 do
      if pages.(i) = -1 then Page_stock.return_borrowed t.stock
      else Page_stock.return_page t.stock pages.(i)
    done;
    None
  end
  else begin
    Cost.charge t.cost (w.Cost.los_page *. float_of_int npages);
    let addr = t.next_addr in
    t.next_addr <- t.next_addr + (npages * Holes_pcm.Geometry.page_bytes);
    t.pages_in_use <- t.pages_in_use + npages;
    t.metrics.Metrics.los_objects <- t.metrics.Metrics.los_objects + 1;
    t.metrics.Metrics.los_pages <- t.metrics.Metrics.los_pages + npages;
    (* keyed by address until the object id is known; pages in address
       order, so offset / page_bytes indexes the backing page *)
    Hashtbl.replace t.entries addr { pages; bytes = size };
    Some addr
  end

(** Release the LOS allocation at [addr], returning its pages. *)
let free (t : t) ~(addr : int) : unit =
  match Hashtbl.find_opt t.entries addr with
  | None -> invalid_arg "Los.free: unknown LOS address"
  | Some e ->
      let w = t.cost.Cost.weights in
      let npages = Array.length e.pages in
      Cost.charge t.cost (w.Cost.los_page *. float_of_int npages);
      Array.iter
        (fun id ->
          if id = -1 then Page_stock.return_borrowed t.stock else Page_stock.return_page t.stock id)
        e.pages;
      t.pages_in_use <- t.pages_in_use - npages;
      Hashtbl.remove t.entries addr

(** Stock page id and 64 B PCM line backing byte [base + off] of the LOS
    object at [base]; [None] for borrowed DRAM slots and unknown
    addresses. *)
let page_backing (t : t) ~(base : int) ~(off : int) : (int * int) option =
  match Hashtbl.find_opt t.entries base with
  | None -> None
  | Some e ->
      let pb = Holes_pcm.Geometry.page_bytes in
      let i = off / pb in
      if i < 0 || i >= Array.length e.pages then None
      else
        let pg = e.pages.(i) in
        if pg >= 0 then Some (pg, off mod pb / Holes_pcm.Geometry.line_bytes) else None

(** The LOS base address whose backing pages include stock page [page] —
    the reverse lookup for an OS-reported line failure.  Linear in the
    number of LOS entries; dynamic failures are rare. *)
let addr_backed_by (t : t) ~(page : int) : int option =
  Hashtbl.fold
    (fun a e acc ->
      match acc with Some _ -> acc | None -> if Array.exists (( = ) page) e.pages then Some a else None)
    t.entries None

(** Pages currently backing live LOS objects. *)
let pages_in_use (t : t) : int = t.pages_in_use

(** Live LOS allocations (addresses). *)
let live_addrs (t : t) : int list = Hashtbl.fold (fun a _ acc -> a :: acc) t.entries []
