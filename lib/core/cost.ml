(** The deterministic cost model.

    The paper measures wall-clock on a Core i7; we run a simulator, so
    "execution time" is a weighted sum of allocator/collector events.
    One cost unit models one nanosecond.  Weights are calibrated against
    the paper's absolute anchors (Sec. 4.2: a full-heap collection of a
    DaCapo benchmark averages ≈7 ms; average total execution 1817 ms with
    ≈14.7 collections) and against the relative shapes of Figs. 3–10.
    Every weight is documented with the mechanism it charges; figures are
    reported normalized, so only relative magnitudes matter for shape. *)

type weights = {
  alloc_fast : float;  (** bump-pointer fast path, per allocation *)
  alloc_byte : float;  (** per allocated byte (zeroing, header init) *)
  hole_skip : float;
      (** per bump-cursor hole transition: the slow path plus the locality
          penalty of scattering consecutively allocated objects *)
  line_scan : float;  (** per line examined while searching for holes *)
  block_open : float;  (** per block the allocator starts allocating into *)
  block_assemble : float;  (** per block assembled from / dissolved to OS pages *)
  free_list_alloc : float;  (** mark-sweep free-list pop, per allocation (extra) *)
  ms_byte : float;  (** mark-sweep extra per-byte mutator cost (locality) *)
  write_barrier : float;  (** per barrier slow path *)
  gc_fixed : float;  (** fixed cost per full collection (roots, rendezvous) *)
  gc_nursery_fixed : float;  (** fixed cost per nursery collection *)
  mark_obj : float;  (** per live object traced *)
  mark_edge : float;  (** per reference edge scanned *)
  copy_byte : float;  (** per byte copied (evacuation, nursery copy) *)
  sweep_line : float;  (** per line-mark byte scanned during sweep *)
  sweep_cell : float;  (** per free-list cell examined during MS sweep *)
  remset_entry : float;  (** per remembered-set entry processed *)
  los_page : float;  (** per page allocated or freed in the LOS *)
  arraylet_byte : float;
      (** per byte of a discontiguous array: the amortized spine
          indirection cost on accesses (Sartor et al. report <13%
          average overhead; the weight models that against the
          combined allocation+access cost of an array byte) *)
  perfect_request : float;  (** per fussy request for a perfect page *)
  dram_borrow : float;  (** per borrowed DRAM page (OS round trip) *)
}

(** Calibrated default weights (units: ns). *)
let default : weights =
  {
    alloc_fast = 9.0;
    alloc_byte = 0.55;
    hole_skip = 110.0;
    line_scan = 1.6;
    block_open = 300.0;
    block_assemble = 700.0;
    free_list_alloc = 7.0;
    ms_byte = 0.08;
    write_barrier = 3.0;
    gc_fixed = 120_000.0;
    gc_nursery_fixed = 40_000.0;
    mark_obj = 52.0;
    mark_edge = 9.0;
    copy_byte = 1.1;
    sweep_line = 1.1;
    sweep_cell = 2.4;
    remset_entry = 22.0;
    los_page = 350.0;
    arraylet_byte = 0.09;
    perfect_request = 600.0;
    dram_borrow = 1200.0;
  }

(** A cost accumulator.  Mutator and collector time are tracked
    separately; [total] is their sum.  [pause] isolates the cost of the
    collection currently in progress so per-GC pauses can be recorded.

    The accumulators live in a flat [float array] rather than mutable
    record fields: OCaml stores float-array elements unboxed, whereas a
    mutable [float] field in a mixed record boxes every store — and
    [charge] runs several times per allocation on the hottest path in
    the system. *)
type t = {
  weights : weights;
  acc : float array;  (* 0 = mutator_ns, 1 = gc_ns, 2 = pause_ns *)
  mutable in_gc : bool;
}

let create ?(weights = default) () : t = { weights; acc = [| 0.0; 0.0; 0.0 |]; in_gc = false }

let[@inline] charge (t : t) (ns : float) : unit =
  let acc = t.acc in
  if t.in_gc then begin
    Array.unsafe_set acc 1 (Array.unsafe_get acc 1 +. ns);
    Array.unsafe_set acc 2 (Array.unsafe_get acc 2 +. ns)
  end
  else Array.unsafe_set acc 0 (Array.unsafe_get acc 0 +. ns)

(** Enter collection context; subsequent charges count as pause time.
    The bracketing unit is one {e recorded pause}: a whole
    stop-the-world collection, or a single increment under a
    [gc_slice] budget — each slice of an incremental cycle opens and
    closes its own bracket, so [end_gc] returns the mutator stall for
    that slice alone while [gc_ns] keeps accumulating across the
    cycle. *)
let begin_gc (t : t) : unit =
  t.in_gc <- true;
  t.acc.(2) <- 0.0

(** Leave collection context, returning the pause in ns. *)
let end_gc (t : t) : float =
  t.in_gc <- false;
  t.acc.(2)

let mutator_ns (t : t) : float = t.acc.(0)
let gc_ns (t : t) : float = t.acc.(1)
let total_ns (t : t) : float = t.acc.(0) +. t.acc.(1)
let total_ms (t : t) : float = total_ns t /. 1.0e6
