(** The paranoid heap verifier (DESIGN.md §10).

    Recomputes every cross-layer invariant of the failure-aware heap
    from first principles and compares it against the incremental state
    the hot paths maintain.  Callable after each GC phase (installed as
    [Immix]'s post-collection hook when [Config.verify] is set) and on
    demand via [Vm.verify]; the torture driver ([bin/torture.exe]) runs
    it between every fuzz step.

    Invariant families, each checked in full:

    - {b Blocks}: the free/live/failed line maps partition every block's
      lines; the cached [free_lines]/[failed_lines] counters and the
      [hole_bound] fast-reject match a per-line recount; no live object
      overlaps a failed line and the per-line live counts equal a
      recount from the object table (delegated to
      [Immix.check_invariants]).
    - {b Cursors}: open bump runs (main and overflow) lie inside their
      block and cover only free lines; the overflow block came from a
      perfect grant.
    - {b LOS}: entries and uncollected LOS objects correspond one to
      one; live large objects sit only on perfect (or borrowed DRAM)
      pages; [pages_in_use] matches the entry table.
    - {b Stock}: per-page failed-line counts and usable-logical counts
      match the bitmaps; the perfect/imperfect/dead pools contain
      exactly the pages they claim to; every page is owned exactly once
      (a pool, an assembled block, or a live LOS entry).
    - {b Accounting}: the debit–credit ledger balances
      ([total_borrowed = debt + total_repaid + total_closed]) and
      borrowed-page counts agree between the ledger and the heap.
    - {b Device/OS} (device backend): the stock's failure bitmaps never
      claim more than the OS failure table knows, and every failed line
      is genuinely unusable on the device.
    - {b Failure buffer}: every pending entry is reachable by the
      read-forwarding path with exactly the preserved payload.

    The verifier never mutates heap state and never touches a counted
    path (no [Device.read], no [Vmm.reverse_translate], no trace
    events), so enabling it cannot change any serialized metric — only
    the two non-serialized [verify_*] counters. *)

open Holes_stdx
open Holes_heap
module Osal = Holes_osal
module Pcm = Holes_pcm

type report = { checks : int;  (** individual assertions evaluated *) errors : string list }

exception Violation of string

let max_reported = 20

type ctx = { mutable checks : int; mutable rev_errors : string list; mutable nerrors : int }

let check (c : ctx) (cond : bool) (msg : unit -> string) : unit =
  c.checks <- c.checks + 1;
  if not cond then begin
    c.nerrors <- c.nerrors + 1;
    if c.nerrors <= max_reported then c.rev_errors <- msg () :: c.rev_errors
  end

let page_bytes = Pcm.Geometry.page_bytes
let pcm_line = Pcm.Geometry.line_bytes
let pcm_lines_per_page = Pcm.Geometry.lines_per_page

(* ------------------------------------------------------------------ *)
(* Blocks                                                              *)

let longest_free_run (b : Block.t) : int =
  let best = ref 0 and run = ref 0 in
  for l = 0 to b.Block.nlines - 1 do
    if Bitset.get b.Block.free l then begin
      incr run;
      if !run > !best then best := !run
    end
    else run := 0
  done;
  !best

(* Is a failed mark on logical line [l] justified by the backing pages'
   64 B bitmaps (the false-failure widening of Block.create)? *)
let widened_failed (stock : Page_stock.t) (b : Block.t) (l : int) : bool =
  let pcm_per_logical = b.Block.line_size / pcm_line in
  let rec any i =
    i < pcm_per_logical
    &&
    let pcm_idx = (l * pcm_per_logical) + i in
    let pg = pcm_idx / pcm_lines_per_page and off = pcm_idx mod pcm_lines_per_page in
    let page_id = b.Block.pages.(pg) in
    (page_id >= 0 && Bitset.get stock.Page_stock.pages.(page_id).Page_stock.bitmap off)
    || any (i + 1)
  in
  any 0

(* The backing page (stock id, or -1 for borrowed DRAM) of logical line
   [l] — lines never span pages (line sizes divide the page size). *)
let line_page (b : Block.t) (l : int) : int =
  b.Block.pages.(l * b.Block.line_size / page_bytes)

let check_block (c : ctx) (stock : Page_stock.t) (b : Block.t) : unit =
  let i = b.Block.index in
  let free = ref 0 and failed = ref 0 and live = ref 0 in
  for l = 0 to b.Block.nlines - 1 do
    let f = Bitset.get b.Block.free l and x = Bitset.get b.Block.failed l in
    check c
      (not (f && x))
      (fun () -> Printf.sprintf "block %d line %d both free and failed" i l);
    check c
      (not (x && b.Block.live.(l) > 0))
      (fun () -> Printf.sprintf "block %d line %d failed but live count %d" i l b.Block.live.(l));
    check c
      (f = (b.Block.live.(l) = 0 && not x))
      (fun () ->
        Printf.sprintf "block %d line %d free=%b live=%d failed=%b" i l f b.Block.live.(l) x);
    if x then incr failed else if f then incr free else incr live;
    (* the failed map must be exactly the widening of the backing pages'
       bitmaps — except lines on borrowed DRAM, which only a directly
       injected failure can mark (there is no backing bitmap to agree
       with) *)
    let w = widened_failed stock b l in
    check c
      (if w then x else (not x) || line_page b l < 0)
      (fun () ->
        Printf.sprintf "block %d line %d failed=%b but page bitmaps widen to %b" i l x w)
  done;
  check c
    (!free = Block.free_lines b)
    (fun () -> Printf.sprintf "block %d free_lines=%d, recount %d" i (Block.free_lines b) !free);
  check c
    (!failed = Block.failed_lines b)
    (fun () ->
      Printf.sprintf "block %d failed_lines=%d, recount %d" i (Block.failed_lines b) !failed);
  check c
    (!free + !failed + !live = b.Block.nlines)
    (fun () ->
      Printf.sprintf "block %d lines do not sum: %d free + %d failed + %d live <> %d" i !free
        !failed !live b.Block.nlines);
  check c
    (longest_free_run b <= Block.hole_bound b)
    (fun () ->
      Printf.sprintf "block %d hole_bound %d below longest free run %d" i (Block.hole_bound b)
        (longest_free_run b))

let check_cursor (c : ctx) (s : Immix.t) ~(what : string) ~(bi : int) ~(cursor : int)
    ~(limit : int) : unit =
  if bi >= 0 then begin
    match Immix.block_opt s bi with
    | None -> check c false (fun () -> Printf.sprintf "%s cursor block %d not assembled" what bi)
    | Some b ->
        let base = b.Block.base in
        check c
          (base <= cursor && cursor <= limit && limit <= base + Units.block_bytes)
          (fun () ->
            Printf.sprintf "%s cursor run [%d,%d) outside block %d [%d,%d)" what cursor limit bi
              base (base + Units.block_bytes));
        let ls = b.Block.line_size in
        let first = (cursor - base + ls - 1) / ls and last = ((limit - base) / ls) - 1 in
        for l = first to last do
          check c
            (Block.line_state b l = Block.Free)
            (fun () ->
              Printf.sprintf "%s cursor run covers non-free line %d of block %d" what l bi)
        done
  end

(* ------------------------------------------------------------------ *)

(** Verify the heap built from these components.  [immix] is [None]
    under the mark-sweep collector (which ignores failures; only the
    stock, LOS and accounting families apply).  [fbuf] is any private
    injector failure buffer to audit alongside the device's own. *)
let run ~(metrics : Metrics.t) ~(objects : Object_table.t) ~(stock : Page_stock.t)
    ~(los : Los.t) ~(immix : Immix.t option) ~(backend : Memory_backend.t)
    ?(fbuf : Pcm.Failure_buffer.t option) () : report =
  let c = { checks = 0; rev_errors = []; nerrors = 0 } in
  let npages = Page_stock.npages stock in
  (* page ownership: every stock page must be claimed exactly once *)
  let owners = Array.make npages 0 in
  let claim id = if id >= 0 && id < npages then owners.(id) <- owners.(id) + 1 in
  let borrowed_in_heap = ref 0 in

  (* -- blocks + cursors (Immix only) -------------------------------- *)
  (match immix with
  | None -> ()
  | Some s ->
      (match Immix.check_invariants s with
      | Ok () -> c.checks <- c.checks + 1
      | Error m -> check c false (fun () -> "immix: " ^ m));
      Immix.iter_blocks s (fun b ->
          check_block c stock b;
          Array.iter (fun id -> if id = -1 then incr borrowed_in_heap else claim id) b.Block.pages);
      check_cursor c s ~what:"main" ~bi:s.Immix.cur_block ~cursor:s.Immix.cursor
        ~limit:s.Immix.limit;
      check_cursor c s ~what:"overflow" ~bi:s.Immix.ovf_block ~cursor:s.Immix.ovf_cursor
        ~limit:s.Immix.ovf_limit;
      (* fussy placement: blocks from a perfect grant (the overflow /
         medium-object fallback) sit on perfect or borrowed-DRAM pages.
         Only a dynamic failure may puncture them afterwards, so the
         strong form holds exactly while none has occurred. *)
      if metrics.Metrics.dynamic_failures = 0 then
        Immix.iter_blocks s (fun b ->
            if Block.perfect_grant b then
              check c
                (Block.failed_lines b = 0)
                (fun () ->
                  Printf.sprintf "perfect-grant block %d has %d failed lines" b.Block.index
                    (Block.failed_lines b)));
      (* incremental (SATB) cycle consistency: runs after every slice
         when the verifier hook is installed, so a barrier bug surfaces
         at the increment that loses the object, not at cycle end *)
      let phase = s.Immix.inc_phase in
      check c
        (phase >= Immix.inc_idle && phase <= Immix.inc_defrag)
        (fun () -> Printf.sprintf "incremental phase %d out of range" phase);
      if phase = Immix.inc_idle then begin
        check c
          (s.Immix.pending_retire = [])
          (fun () ->
            Printf.sprintf "%d pending line retirements with no cycle in flight"
              (List.length s.Immix.pending_retire));
        check c
          (s.Immix.inc_candidates = [])
          (fun () ->
            Printf.sprintf "%d defrag candidates with no cycle in flight"
              (List.length s.Immix.inc_candidates))
      end
      else if phase = Immix.inc_mark then begin
        let q = s.Immix.mark_queue in
        let len = Intvec.length q in
        let pos = s.Immix.inc_pos in
        check c
          (0 <= pos && pos <= len && len = s.Immix.inc_snapshot_len)
          (fun () ->
            Printf.sprintf "mark cursor %d / queue %d / snapshot %d inconsistent" pos len
              s.Immix.inc_snapshot_len);
        check c
          (s.Immix.inc_marked + s.Immix.inc_released = pos)
          (fun () ->
            Printf.sprintf "mark work counters %d+%d do not cover %d processed entries"
              s.Immix.inc_marked s.Immix.inc_released pos);
        (* pending snapshot entries: live ones awaited, dead ones must
           still be dead (nothing resurrects) *)
        let pending_live = Hashtbl.create 64 in
        for i = pos to len - 1 do
          let enc = Intvec.unsafe_get q i in
          if enc >= 0 then Hashtbl.replace pending_live enc ()
          else
            check c
              (not (Object_table.is_alive objects (lnot enc)))
              (fun () -> Printf.sprintf "snapshot-dead object %d is alive" (lnot enc))
        done;
        (* the SATB tri-color invariant, oracle form: every alive object
           is black (marked in the current epoch — processed from the
           snapshot, or allocated black) or grey (still pending in the
           snapshot work-list).  A white alive object is precisely what
           an unlogged black→white store would strand. *)
        Object_table.iter_slots objects (fun id ->
            if Object_table.is_alive objects id then
              check c
                (Object_table.marked objects id s.Immix.inc_epoch
                || Hashtbl.mem pending_live id)
                (fun () ->
                  Printf.sprintf
                    "alive object %d neither marked in epoch %d nor pending in the snapshot" id
                    s.Immix.inc_epoch));
        (* every SATB-logged source was black when logged and stays so *)
        Remset.iter s.Immix.satb (fun src ->
            check c
              (Object_table.marked objects src s.Immix.inc_epoch)
              (fun () ->
                Printf.sprintf "SATB log holds source %d that is not black in epoch %d" src
                  s.Immix.inc_epoch))
      end
      else
        check c
          (s.Immix.inc_marked + s.Immix.inc_released = s.Immix.inc_snapshot_len)
          (fun () ->
            Printf.sprintf "cycle processed %d+%d of %d snapshot entries past mark end"
              s.Immix.inc_marked s.Immix.inc_released s.Immix.inc_snapshot_len));

  (* -- LOS ----------------------------------------------------------- *)
  let los_pages = ref 0 in
  Hashtbl.iter
    (fun addr (e : Los.entry) ->
      Array.iter
        (fun id ->
          incr los_pages;
          if id = -1 then incr borrowed_in_heap else claim id)
        e.Los.pages;
      let needed = max 1 ((e.Los.bytes + page_bytes - 1) / page_bytes) in
      check c
        (Array.length e.Los.pages = needed)
        (fun () ->
          Printf.sprintf "LOS entry %d: %d pages backing %d bytes (need %d)" addr
            (Array.length e.Los.pages) e.Los.bytes needed))
    los.Los.entries;
  check c
    (!los_pages = Los.pages_in_use los)
    (fun () ->
      Printf.sprintf "LOS pages_in_use=%d, entries hold %d" (Los.pages_in_use los) !los_pages);
  (* entries <-> uncollected LOS objects, and live LOS on perfect pages
     only (a dead large object may keep a page a dynamic failure already
     punctured — relocation skips the dead) *)
  let los_slots = ref 0 in
  Object_table.iter_slots objects (fun id ->
      if Object_table.is_los objects id then begin
        incr los_slots;
        let addr = Object_table.addr objects id in
        match Hashtbl.find_opt los.Los.entries addr with
        | None ->
            check c false (fun () -> Printf.sprintf "LOS object %d at %d has no entry" id addr)
        | Some e ->
            check c
              (e.Los.bytes = Object_table.size objects id)
              (fun () ->
                Printf.sprintf "LOS object %d: entry %d bytes, object %d" id e.Los.bytes
                  (Object_table.size objects id));
            if Object_table.is_alive objects id then
              Array.iter
                (fun pg ->
                  if pg >= 0 then
                    check c
                      (stock.Page_stock.pages.(pg).Page_stock.failed_lines = 0)
                      (fun () ->
                        Printf.sprintf "live LOS object %d on imperfect page %d" id pg))
                e.Los.pages
      end);
  check c
    (!los_slots = Hashtbl.length los.Los.entries)
    (fun () ->
      Printf.sprintf "%d LOS entries for %d uncollected LOS objects"
        (Hashtbl.length los.Los.entries) !los_slots);

  (* -- page stock ---------------------------------------------------- *)
  Array.iter
    (fun (p : Page_stock.page) ->
      check c
        (p.Page_stock.failed_lines = Bitset.count p.Page_stock.bitmap)
        (fun () ->
          Printf.sprintf "page %d failed_lines=%d, bitmap holds %d" p.Page_stock.id
            p.Page_stock.failed_lines
            (Bitset.count p.Page_stock.bitmap));
      check c
        (p.Page_stock.usable_logical
        = Page_stock.count_usable_logical ~line_size:stock.Page_stock.line_size
            p.Page_stock.bitmap)
        (fun () ->
          Printf.sprintf "page %d usable_logical=%d stale" p.Page_stock.id
            p.Page_stock.usable_logical))
    stock.Page_stock.pages;
  let pool_check name ids pred =
    List.iter
      (fun id ->
        claim id;
        check c
          (pred stock.Page_stock.pages.(id))
          (fun () -> Printf.sprintf "page %d misfiled in %s pool" id name))
      ids
  in
  pool_check "perfect" stock.Page_stock.free_perfect (fun p -> p.Page_stock.failed_lines = 0);
  pool_check "imperfect" stock.Page_stock.free_imperfect (fun p ->
      p.Page_stock.failed_lines > 0 && p.Page_stock.usable_logical > 0);
  pool_check "dead" stock.Page_stock.dead (fun p -> p.Page_stock.usable_logical = 0);
  (* pages surrendered to repay DRAM debt went back to the OS: they are
     legitimately owned by nobody for the rest of the run *)
  pool_check "repaid" stock.Page_stock.repaid (fun _ -> true);
  check c
    (List.length stock.Page_stock.repaid = Page_stock.repaid_pages stock)
    (fun () ->
      Printf.sprintf "repaid list holds %d pages but repaid_pages=%d"
        (List.length stock.Page_stock.repaid)
        (Page_stock.repaid_pages stock));
  (* full ownership only holds when the Immix heap claimed its blocks;
     under mark-sweep its blocks are invisible here, so only require
     that no page is claimed twice *)
  let exact = immix <> None in
  Array.iteri
    (fun id n ->
      check c
        (if exact then n = 1 else n <= 1)
        (fun () -> Printf.sprintf "page %d claimed %d times" id n))
    owners;

  (* -- accounting ---------------------------------------------------- *)
  let acc = Page_stock.accounting stock in
  let debt = Osal.Accounting.debt acc in
  check c (debt >= 0) (fun () -> Printf.sprintf "negative debt %d" debt);
  check c
    (Osal.Accounting.total_borrowed acc
    = debt + Osal.Accounting.total_repaid acc + Osal.Accounting.total_closed acc)
    (fun () ->
      Printf.sprintf "ledger unbalanced: borrowed %d <> debt %d + repaid %d + closed %d"
        (Osal.Accounting.total_borrowed acc)
        debt
        (Osal.Accounting.total_repaid acc)
        (Osal.Accounting.total_closed acc));
  check c
    (Page_stock.borrowed_in_use stock >= 0)
    (fun () -> Printf.sprintf "negative borrowed_in_use %d" (Page_stock.borrowed_in_use stock));
  if exact then
    check c
      (!borrowed_in_heap = Page_stock.borrowed_in_use stock)
      (fun () ->
        Printf.sprintf "borrowed_in_use=%d, heap holds %d borrowed pages"
          (Page_stock.borrowed_in_use stock)
          !borrowed_in_heap);

  (* -- device/OS agreement + failure buffer ------------------------- *)
  let check_fbuf what (fb : Pcm.Failure_buffer.t) =
    List.iter
      (fun (e : Pcm.Failure_buffer.entry) ->
        check c
          (match Pcm.Failure_buffer.forward fb ~addr:e.Pcm.Failure_buffer.addr with
          | Some data -> Bytes.equal data e.Pcm.Failure_buffer.data
          | None -> false)
          (fun () ->
            Printf.sprintf "%s failure buffer: entry for line %d not read-forwarded" what
              e.Pcm.Failure_buffer.addr))
      (Pcm.Failure_buffer.pending fb)
  in
  (match backend with
  | Memory_backend.Static -> ()
  | Memory_backend.Device st ->
      let table = Osal.Vmm.failure_table st.Memory_backend.vmm in
      let dram = st.Memory_backend.dram_pages in
      Array.iteri
        (fun stock_page virt ->
          match Osal.Vmm.translate st.Memory_backend.proc ~virt with
          | None ->
              check c false (fun () -> Printf.sprintf "stock page %d unmapped (virt %d)" stock_page virt)
          | Some phys when phys < dram -> () (* DRAM frame: no failure state to agree on *)
          | Some phys ->
              let dev_page = phys - dram in
              let os = Osal.Failure_table.get table ~page:dev_page in
              let sb = stock.Page_stock.pages.(stock_page).Page_stock.bitmap in
              (* the OS may know strictly more (masked pinned-page
                 failures), never less *)
              check c (Bitset.subset sb os) (fun () ->
                  Printf.sprintf "stock page %d claims failures the OS table lacks (phys %d)"
                    stock_page phys);
              Bitset.iter_set os (fun off ->
                  check c
                    (not
                       (Pcm.Device.line_usable st.Memory_backend.device
                          ((dev_page * pcm_lines_per_page) + off)))
                    (fun () ->
                      Printf.sprintf "OS table marks line %d of device page %d the device calls usable"
                        off dev_page)))
        st.Memory_backend.virt_of_stock;
      (* translation-consistency: every pipeline stage is a permutation
         and the composed logical->physical map is a bijection whose
         inverse chain really inverts it (DESIGN.md §11) *)
      check c
        (Pcm.Device.check_translation st.Memory_backend.device = Ok ())
        (fun () ->
          match Pcm.Device.check_translation st.Memory_backend.device with
          | Ok () -> assert false
          | Error e -> e);
      check_fbuf "device" (Pcm.Device.buffer st.Memory_backend.device);
      (* hybrid tiering residency (DESIGN.md §17): every promoted page's
         mapping points at its DRAM frame, the frame really is DRAM, and
         both the frame and the reserved PCM home are held allocated —
         all through non-counted accessors *)
      (match st.Memory_backend.node.Memory_backend.n_tier with
      | None -> ()
      | Some tier ->
          let pools = Osal.Vmm.pools st.Memory_backend.vmm in
          List.iter
            (fun (pid, virt, dram_phys, pcm_phys) ->
              check c
                (dram_phys >= 0 && dram_phys < dram)
                (fun () ->
                  Printf.sprintf "tier resident (pid %d, virt %d) on non-DRAM frame %d" pid virt
                    dram_phys);
              check c (pcm_phys >= dram) (fun () ->
                  Printf.sprintf "tier resident (pid %d, virt %d) PCM home %d is a DRAM frame"
                    pid virt pcm_phys);
              check c
                (Osal.Pools.is_allocated pools dram_phys)
                (fun () ->
                  Printf.sprintf "tier resident DRAM frame %d not held allocated" dram_phys);
              check c
                (Osal.Pools.is_allocated pools pcm_phys)
                (fun () ->
                  Printf.sprintf "tier resident PCM home %d not held allocated (leak on demote)"
                    pcm_phys);
              match Osal.Vmm.find_process st.Memory_backend.vmm pid with
              | None ->
                  check c false (fun () ->
                      Printf.sprintf "tier resident pid %d has no process" pid)
              | Some proc ->
                  check c
                    (Osal.Vmm.translate proc ~virt = Some dram_phys)
                    (fun () ->
                      Printf.sprintf
                        "tier resident (pid %d, virt %d): mapping disagrees with frame %d" pid
                        virt dram_phys))
            (Osal.Tier.residents tier));
      (* content-store self-audit: refcounts and bindings agree *)
      List.iter
        (fun e -> check c false (fun () -> "caram: " ^ e))
        (Pcm.Device.caram_check st.Memory_backend.device);
      c.checks <- c.checks + 1 (* the caram audit itself counts once *));
  Option.iter (fun fb -> check_fbuf "injector" fb) fbuf;

  metrics.Metrics.verify_checks <- metrics.Metrics.verify_checks + c.checks;
  if c.nerrors = 0 then metrics.Metrics.verify_passes <- metrics.Metrics.verify_passes + 1;
  { checks = c.checks; errors = List.rev c.rev_errors }

(** [raise_on_errors r] turns a failed report into a {!Violation}
    carrying every recorded error (the post-GC hook's behavior). *)
let raise_on_errors (r : report) : unit =
  match r.errors with
  | [] -> ()
  | es -> raise (Violation (String.concat "; " es))
