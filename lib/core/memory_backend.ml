(** The VM's memory backend seam: where heap pages come from and how
    line failures reach the runtime.

    Two implementations exist.  The *static* backend is the paper's
    fault-injection methodology (Sec. 5): a failure map generated up
    front and handed straight to the page stock — fast and exactly
    reproducible, so every figure run uses it.  The *device* backend
    wires the full cooperative pipeline of Secs. 3.1–3.3 end to end: the
    VM acquires pages from the OS pools via [Vmm.mmap_imperfect], reads
    the live failure bitmaps via [Vmm.map_failures], and every heap line
    store is charged through [Device.write], accruing real wear.  When a
    write wears a line out, the event travels the genuine chain —
    [Device.on_line_failed] → {!Holes_pcm.Failure_buffer} →
    {!Holes_osal.Interrupts} → [Vmm] up-call — and lands in the
    [line_retired] hook the VM installs, which retires the line through
    [Immix.dynamic_failure] or LOS relocation.  No side channel remains:
    the device backend rejects [Vm.dynamic_failure_at]. *)

open Holes_stdx
module Pcm = Holes_pcm
module Osal = Holes_osal
module Trace = Holes_obs.Trace
module Stats = Holes_obs.Stats

(** A device node: the shareable part of the pipeline — the PCM module,
    its VMM (pools + failure table) and the interrupt handler.  A
    standalone VM owns its node outright ({!create_device}); the fleet
    simulator creates one node per pooled device and {!attach}es many
    tenant VMs to it, each as its own failure-aware OS process. *)
type node = {
  n_device : Pcm.Device.t;
  n_vmm : Osal.Vmm.t;
  n_interrupts : Osal.Interrupts.t;
  n_dram_pages : int;  (** physical ids below this are DRAM frames *)
  n_seed : int;  (** the creating config's seed (per-VM derived rngs) *)
  mutable n_hybrid : Pcm.Hybrid.policy;  (** live tiering policy (DESIGN.md §17) *)
  mutable n_tier : Osal.Tier.t option;  (** hot-page migration engine, when on *)
}

type device_state = {
  device : Pcm.Device.t;
  vmm : Osal.Vmm.t;
  proc : Osal.Vmm.process;
  interrupts : Osal.Interrupts.t;
  node : node;  (** the shared node (tier and policy live here) *)
  dram_pages : int;  (** physical ids below this are DRAM frames *)
  virt_of_stock : int array;  (** stock page id -> mapped virtual page *)
  stock_of_virt : (int, int) Hashtbl.t;
  metrics : Metrics.t;
  payload : Bytes.t;  (** reusable one-line write payload *)
  mutable content_rng : Xrng.t option;
      (** content synthesizer for the CARAM store: dedup/compression is
          meaningless against the constant scrub payload, so with caram
          on each charged line write draws a content class (zero /
          recurring pattern / unique).  [None] while caram is off — no
          extra rng draws, keeping hybrid=none bit-identical *)
  mutable content_ctr : int;  (** unique-content stamp for the synthesizer *)
  mutable charge_copy : bytes:int -> unit;
      (** installed by the VM: charge migration copy traffic to its
          cost model (tier promotions/demotions triggered by this VM's
          writes) *)
  mutable line_retired : stock_page:int -> line:int -> data:Bytes.t option -> unit;
      (** installed by the VM once the heap exists: retire 64 B line
          [line] of [stock_page]; [data] is the payload preserved by the
          failure buffer when the retired line was the one being
          written *)
}

type t = Static | Device of device_state

let lines_per_page = Pcm.Geometry.lines_per_page

(* The boot-time physical failure map for a device of [nlines] lines.
   Unlike the static backend's map this is over *physical* lines: with
   hardware clustering the device's own redirection maps move the
   failures to cluster ends, so [Hw_cluster] needs no transform here. *)
let physical_failure_map (cfg : Config.t) ~(rng : Xrng.t) ~(nlines : int) : Bitset.t =
  match cfg.Config.failure_model with
  | Config.Model m ->
      (* dynamic models are rejected by Config.validate on this backend,
         so this only sees the static adversaries *)
      Pcm.Failure_model.static_map m rng ~nlines ~rate:cfg.Config.failure_rate
  | Config.From_dist -> (
      match cfg.Config.failure_dist with
      | Config.Uniform | Config.Hw_cluster _ ->
          Pcm.Failure_map.uniform rng ~nlines ~rate:cfg.Config.failure_rate
      | Config.Granule g ->
          Pcm.Failure_map.clustered rng ~nlines ~rate:cfg.Config.failure_rate ~granule_lines:g)

(** Bring up the shareable half of the pipeline for a module of (at
    least) [device_pages] pages: create the worn device (page count
    rounded up to the clustering region), pre-install the configured
    boot-time failures, boot-scan them into the OS failure table and
    pools, and attach the interrupt handler.  No process exists yet —
    callers {!attach} one per VM. *)
let create_node ?(tracer = Trace.null) ~(cfg : Config.t) ~(params : Config.device_params)
    ~(device_pages : int) () : node =
  let clustering =
    match cfg.Config.failure_dist with
    | Config.Hw_cluster region_pages -> Some region_pages
    | Config.Uniform | Config.Granule _ -> params.Config.clustering
  in
  let region_pages = match clustering with Some rp -> rp | None -> 1 in
  let device_pages = (device_pages + region_pages - 1) / region_pages * region_pages in
  let device =
    Pcm.Device.create
      ~config:
        {
          Pcm.Device.pages = device_pages;
          wear = params.Config.wear;
          clustering;
          buffer_capacity = params.Config.buffer_capacity;
          wear_level = cfg.Config.wear_level;
          caram = cfg.Config.hybrid.Pcm.Hybrid.caram_ways;
        }
      ~tracer ~seed:cfg.Config.seed ()
  in
  let rng = Xrng.of_seed cfg.Config.seed in
  if cfg.Config.failure_rate > 0.0 then
    Pcm.Device.preinstall_failures device
      (physical_failure_map cfg ~rng ~nlines:(device_pages * lines_per_page));
  let dram_pages = params.Config.dram_pages in
  let vmm = Osal.Vmm.create ~tracer ~dram_pages ~pcm_pages:device_pages () in
  (* OS boot scan: publish the device's unusable lines in the failure
     table and page descriptors, then rebuild the free pools in one pass *)
  let table = Osal.Vmm.failure_table vmm in
  let pools = Osal.Vmm.pools vmm in
  List.iter
    (fun l ->
      let page = l / lines_per_page and line = l mod lines_per_page in
      Osal.Failure_table.mark_failed table ~page ~line;
      ignore (Osal.Page.mark_line_failed (Osal.Pools.page pools (dram_pages + page)) ~line))
    (Pcm.Device.unusable_lines device);
  Osal.Pools.renormalize pools;
  if params.Config.wear_aware_pools then
    Osal.Pools.set_wear_rank pools
      (Some (fun phys -> if phys < dram_pages then 0 else Pcm.Device.page_wear device (phys - dram_pages)));
  let interrupts = Osal.Interrupts.attach ~tracer ~vmm ~device ~dram_pages () in
  let tier =
    match cfg.Config.hybrid.Pcm.Hybrid.migrate_epoch with
    | None -> None
    | Some epoch ->
        let t = Osal.Tier.create ~tracer ~vmm ~device ~dram_pages ~epoch () in
        (* a stalled demotion write-back drains the failure buffer the
           same way the VM's own write path does *)
        Osal.Tier.set_on_stall t (fun () -> ignore (Osal.Interrupts.service interrupts));
        Some t
  in
  {
    n_device = device;
    n_vmm = vmm;
    n_interrupts = interrupts;
    n_dram_pages = dram_pages;
    n_seed = cfg.Config.seed;
    n_hybrid = cfg.Config.hybrid;
    n_tier = tier;
  }

(** Spawn a failure-aware process on [node] and map an [npages]-page
    heap with [mmap_imperfect].  Returns the per-VM backend state and
    the per-page failure bitmaps read back through [map_failures] — the
    grants the page stock is built over — or [Error `Out_of_memory] when
    the node's pools cannot back the heap (a full or dying pooled
    device; placement fails, nothing is leaked). *)
let attach ~(node : node) ~(metrics : Metrics.t) ~(npages : int) () :
    (device_state * Bitset.t array, [ `Out_of_memory ]) result =
  let proc = Osal.Vmm.spawn node.n_vmm in
  match Osal.Vmm.mmap_imperfect node.n_vmm proc ~pages:npages with
  | Error `Out_of_memory -> Error `Out_of_memory
  | Ok virts ->
      let virt_of_stock = Array.of_list virts in
      let stock_of_virt = Hashtbl.create (Array.length virt_of_stock) in
      Array.iteri (fun sp v -> Hashtbl.replace stock_of_virt v sp) virt_of_stock;
      let st =
        {
          device = node.n_device;
          vmm = node.n_vmm;
          proc;
          interrupts = node.n_interrupts;
          node;
          dram_pages = node.n_dram_pages;
          virt_of_stock;
          stock_of_virt;
          metrics;
          payload = Bytes.make Pcm.Geometry.line_bytes '\xAB';
          content_rng =
            (match node.n_hybrid.Pcm.Hybrid.caram_ways with
            | None -> None
            | Some _ ->
                Some (Xrng.of_seed (node.n_seed lxor 0xCA4A77 lxor (proc.Osal.Vmm.pid * 0x9E3779))));
          content_ctr = 0;
          charge_copy = (fun ~bytes:_ -> ());
          line_retired = (fun ~stock_page:_ ~line:_ ~data:_ -> ());
        }
      in
      (* the Sec. 3.2.2 up-call: virtual page + line -> the VM's retire hook *)
      Osal.Vmm.register_failure_handler proc (fun ~virt_page ~line ~data ->
          match Hashtbl.find_opt st.stock_of_virt virt_page with
          | Some stock_page -> st.line_retired ~stock_page ~line ~data
          | None -> ());
      let bitmaps =
        Array.map (fun virt -> Osal.Vmm.map_failures node.n_vmm proc ~virt) virt_of_stock
      in
      Ok (st, bitmaps)

(** Bring up the device → OS → process pipeline for a heap of [npages]
    pages: a private node sized to the heap plus one attached process
    mapping all of it — the standalone-VM path every figure run uses. *)
let create_device ?(tracer = Trace.null) ~(cfg : Config.t) ~(params : Config.device_params)
    ~(metrics : Metrics.t) ~(npages : int) () : device_state * Bitset.t array =
  let node = create_node ~tracer ~cfg ~params ~device_pages:npages () in
  (* the node rounded its page count up to the clustering region; a
     private device is mapped whole, exactly as before the node split *)
  match attach ~node ~metrics ~npages:(Pcm.Device.npages node.n_device) () with
  | Ok r -> r
  | Error `Out_of_memory ->
      invalid_arg "Memory_backend.create_device: device cannot back the requested heap"

(** Drain pending failure interrupts (OS side).  Returns the number of
    resolutions performed. *)
let service (st : device_state) : int =
  List.length (Osal.Interrupts.service st.interrupts)

(** Evict a VM from its (shared) node: drain pending interrupts, silence
    the retire hook, and unmap every heap page — the pages return to the
    node's pools (their wear and failure state persist on the device)
    for the next placement.  The VM object must not be used afterwards;
    its remaining device writes fall into the [Skipped] path. *)
let detach (st : device_state) : unit =
  ignore (service st);
  st.line_retired <- (fun ~stock_page:_ ~line:_ ~data:_ -> ());
  (* demote this process's promoted pages first: a munmap of a page
     mapped to a DRAM frame would free the frame and leak its reserved
     PCM home *)
  (match st.node.n_tier with
  | Some tier ->
      Osal.Tier.drop_process tier ~pid:st.proc.Osal.Vmm.pid ~charge_copy:st.charge_copy
  | None -> ());
  Array.iter
    (fun virt ->
      match Osal.Vmm.translate st.proc ~virt with
      | None -> ()
      | Some _ -> Osal.Vmm.munmap st.vmm st.proc ~virt)
    st.virt_of_stock

type write_outcome =
  | Stored  (** the line took the write *)
  | Line_failed  (** wear-out: the failure chain ran (up-call included) *)
  | Skipped  (** unusable / DRAM-backed / unmapped line: no device write *)

(* Synthesize the line content for a charged write.  The scrub payload
   is a constant, which would make content-aware dedup trivially
   perfect; with caram live each write instead draws a content class
   from the paper-adjacent mix CARAM evaluates against: ~30% zero
   lines (compressible), ~15% from a small pool of recurring patterns
   (dedupable), the rest unique.  Returns [st.payload], filled in
   place. *)
let content_for_write (st : device_state) : Bytes.t =
  (match st.content_rng with
  | None -> ()  (* caram off: the constant scrub payload, zero rng draws *)
  | Some rng ->
      let r = Xrng.int rng 100 in
      if r < 30 then Bytes.fill st.payload 0 (Bytes.length st.payload) '\x00'
      else if r < 45 then begin
        let k = Xrng.int rng 12 in
        for i = 0 to Bytes.length st.payload - 1 do
          Bytes.unsafe_set st.payload i (Char.unsafe_chr (((k * 37) + (i * 11)) land 0xff))
        done
      end
      else begin
        (* unique content: a counter stamp over the scrub pattern *)
        Bytes.fill st.payload 0 (Bytes.length st.payload) '\xAB';
        st.content_ctr <- st.content_ctr + 1;
        let c = st.content_ctr in
        for i = 0 to 7 do
          Bytes.unsafe_set st.payload i (Char.unsafe_chr ((c lsr (i * 8)) land 0xff))
        done
      end);
  st.payload

(** Charge one 64 B line store on [stock_page]/[line] through the device
    write path.  A wear failure fires the device callback, and the
    interrupt is serviced immediately — by the time this returns, the
    runtime's [line_retired] hook has run and the line is retired.  A
    stalled device (failure-buffer pressure) is drained and the write
    retried once.  With tiering on, writes whose translation lands on
    a promoted DRAM frame are absorbed by the tier (dirty-line
    tracking, no device write), and PCM writes feed the tier's
    hot-page counters. *)
let device_write (st : device_state) ~(stock_page : int) ~(line : int) : write_outcome =
  Stats.observe st.metrics.Metrics.fbuf_occupancy_hist
    (float_of_int (Pcm.Device.buffer_occupancy st.device));
  let virt = st.virt_of_stock.(stock_page) in
  match Osal.Vmm.translate st.proc ~virt with
  | None -> Skipped
  | Some phys when phys < st.dram_pages ->
      (match st.node.n_tier with
      | Some tier ->
          ignore
            (Osal.Tier.note_dram_write tier ~phys ~line ~payload:(content_for_write st)
               ~charge_copy:st.charge_copy)
      | None -> ());
      Skipped
  | Some phys -> (
      let logical = ((phys - st.dram_pages) * lines_per_page) + line in
      if not (Pcm.Device.line_usable st.device logical) then Skipped
      else begin
        let payload = content_for_write st in
        let note () =
          match st.node.n_tier with
          | Some tier ->
              Osal.Tier.note_pcm_write tier st.proc ~virt ~pcm_phys:phys
                ~charge_copy:st.charge_copy
          | None -> ()
        in
        let write () = Pcm.Device.write st.device logical payload in
        match write () with
        | Pcm.Device.Stored ->
            note ();
            Stored
        | Pcm.Device.Write_failed ->
            ignore (service st);
            note ();
            Line_failed
        | Pcm.Device.Stalled -> (
            ignore (service st);
            match write () with
            | Pcm.Device.Stored ->
                note ();
                Stored
            | Pcm.Device.Write_failed ->
                ignore (service st);
                note ();
                Line_failed
            | Pcm.Device.Stalled -> Skipped)
      end)

(** Copy the pipeline's counters into the VM metrics (idempotent
    assignment, called at run end and before printing summaries). *)
let sync (st : device_state) : unit =
  let s = Pcm.Device.stats st.device in
  let m = st.metrics in
  m.Metrics.device_reads <- s.Pcm.Device.reads;
  m.Metrics.device_writes <- s.Pcm.Device.writes;
  m.Metrics.device_line_failures <- s.Pcm.Device.failures;
  m.Metrics.fbuf_peak_occupancy <- s.Pcm.Device.buffer.Pcm.Failure_buffer.max_occupancy;
  m.Metrics.fbuf_stall_events <- s.Pcm.Device.buffer.Pcm.Failure_buffer.stall_events;
  m.Metrics.os_upcalls <- Osal.Interrupts.upcalls st.interrupts;
  m.Metrics.os_page_copies <- Osal.Interrupts.page_copies st.interrupts;
  m.Metrics.os_data_restores <- Osal.Interrupts.restores st.interrupts;
  m.Metrics.reverse_translations <- Osal.Vmm.reverse_translations st.vmm;
  m.Metrics.swap_ins <- Osal.Vmm.swap_ins st.vmm;
  m.Metrics.wear_cov <- Pcm.Device.wear_cov st.device;
  (match s.Pcm.Device.caram with
  | None -> ()
  | Some cs ->
      m.Metrics.hybrid_active <- true;
      m.Metrics.hyb_dedup_hits <- cs.Pcm.Caram.s_dedup_hits;
      m.Metrics.hyb_compressed <- cs.Pcm.Caram.s_compressed;
      m.Metrics.hyb_meta_writes <- cs.Pcm.Caram.s_meta_writes);
  (match st.node.n_tier with
  | None -> ()
  | Some tier ->
      let ts = Osal.Tier.stats tier in
      m.Metrics.hybrid_active <- true;
      m.Metrics.hyb_promotes <- ts.Osal.Tier.s_promotes;
      m.Metrics.hyb_demotes <- ts.Osal.Tier.s_demotes;
      m.Metrics.hyb_dram_writes <- ts.Osal.Tier.s_dram_writes;
      m.Metrics.hyb_resident <- ts.Osal.Tier.s_resident);
  match s.Pcm.Device.wl with
  | None -> ()
  | Some wl ->
      m.Metrics.wl_active <- true;
      m.Metrics.wl_gap_moves <- wl.Pcm.Device.gap_moves;
      m.Metrics.wl_remaps <- wl.Pcm.Device.remaps;
      m.Metrics.wl_remap_copies <- wl.Pcm.Device.copies;
      m.Metrics.wl_meta_writes <- wl.Pcm.Device.meta_writes

(** Switch the device's wear-leveling stage mid-run.  Pending failure
    interrupts are drained first (a stage install freezes the current
    unusable set into its permutation), and any line the new stage
    reserves for itself is evacuated through the normal failure chain
    and resolved before this returns. *)
let set_wear_level (st : device_state) (p : Pcm.Wear_level.policy option) : unit =
  ignore (service st);
  Pcm.Device.set_wear_level st.device p;
  ignore (service st)

(** Switch the node's tiering policy mid-run.  Pending interrupts are
    drained on both sides.  Turning migration off demotes every
    resident first (dirty lines write back through the normal path);
    turning caram off writes every bound line's content through the
    cells.  Both directions leave the data intact — only who absorbs
    future writes changes. *)
let set_hybrid (st : device_state) (p : Pcm.Hybrid.policy) : unit =
  ignore (service st);
  (match (st.node.n_tier, p.Pcm.Hybrid.migrate_epoch) with
  | Some tier, None ->
      Osal.Tier.drop_all tier ~charge_copy:st.charge_copy;
      st.node.n_tier <- None
  | None, Some epoch ->
      let tier =
        Osal.Tier.create ~vmm:st.vmm ~device:st.device ~dram_pages:st.dram_pages ~epoch ()
      in
      let interrupts = st.interrupts in
      Osal.Tier.set_on_stall tier (fun () -> ignore (Osal.Interrupts.service interrupts));
      st.node.n_tier <- Some tier
  | Some _, Some _ | None, None -> ());
  Pcm.Device.set_caram st.device p.Pcm.Hybrid.caram_ways;
  (match (st.content_rng, p.Pcm.Hybrid.caram_ways) with
  | None, Some _ ->
      st.content_rng <-
        Some
          (Xrng.of_seed
             (st.node.n_seed lxor 0xCA4A77 lxor (st.proc.Osal.Vmm.pid * 0x9E3779)))
  | _ -> ());
  st.node.n_hybrid <- p;
  ignore (service st)
