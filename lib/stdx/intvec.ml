(** Growable int vectors — the workhorse container of the heap simulator
    (per-block object lists, nursery lists, remembered sets).  Amortized
    O(1) push; no boxing. *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () : t = { data = Array.make (max 1 capacity) 0; len = 0 }

let length (t : t) : int = t.len

let is_empty (t : t) : bool = t.len = 0

let clear (t : t) : unit = t.len <- 0

let push (t : t) (x : int) : unit =
  if t.len = Array.length t.data then begin
    let d = Array.make (2 * Array.length t.data) 0 in
    Array.blit t.data 0 d 0 t.len;
    t.data <- d
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get (t : t) (i : int) : int =
  if i < 0 || i >= t.len then invalid_arg "Intvec.get: out of bounds";
  t.data.(i)

let set (t : t) (i : int) (x : int) : unit =
  if i < 0 || i >= t.len then invalid_arg "Intvec.set: out of bounds";
  t.data.(i) <- x

let pop (t : t) : int option =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some t.data.(t.len)
  end

(** [pop_or t ~default] removes and returns the last element, or
    [default] when empty — the allocation-free pop for hot paths (no
    option box). *)
let[@inline] pop_or (t : t) ~(default : int) : int =
  if t.len = 0 then default
  else begin
    t.len <- t.len - 1;
    Array.unsafe_get t.data t.len
  end

(** Unchecked read — callers guarantee [0 <= i < length t]. *)
let[@inline] unsafe_get (t : t) (i : int) : int = Array.unsafe_get t.data i

(** Iterate without bounds-check overhead. *)
let iter (t : t) (f : int -> unit) : unit =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

(** Drop the first [n] elements, shifting the rest down (order kept).
    [n] is clamped to the length. *)
let drop_prefix (t : t) (n : int) : unit =
  if n > 0 then begin
    let n = min n t.len in
    let keep = t.len - n in
    Array.blit t.data n t.data 0 keep;
    t.len <- keep
  end

(** Keep only elements satisfying [p], preserving order. *)
let filter_in_place (t : t) (p : int -> bool) : unit =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    if p t.data.(i) then begin
      t.data.(!j) <- t.data.(i);
      incr j
    end
  done;
  t.len <- !j

let to_list (t : t) : int list =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.len - 1) []
