(** Deterministic, splittable pseudo-random number generation.

    Every stochastic component in the reproduction (failure-map generation,
    workload object sizes and lifetimes, wear process variation) draws from
    one of these generators so that experiments are exactly reproducible
    from a seed.  The implementation is SplitMix64 (Steele et al., OOPSLA
    2014) for stream derivation plus xoshiro256** (Blackman & Vigna, 2018)
    for the bulk stream.

    Representation: the four 64-bit xoshiro words are stored as pairs of
    32-bit native-int halves.  OCaml boxes every [Int64] intermediate and
    every mutable [int64] record store (this build has no flambda), which
    made the previous [Int64]-based stepper allocate ~7 boxed words per
    draw — enough to dominate failure-map generation, which draws once
    per sampled line.  xoshiro256** needs only xors, shifts, rotations
    and multiplications by 5 and 9, all exactly expressible in 32-bit
    halves with native-int arithmetic, so the hot stepper now allocates
    nothing.  The cold paths ([of_seed], [split]) keep the original
    SplitMix64 over [Int64] — bit-for-bit the same streams as before (a
    test in [test_stdx.ml] pins this against an [Int64] reference
    stepper). *)

type t = {
  mutable s0l : int;
  mutable s0h : int;
  mutable s1l : int;
  mutable s1h : int;
  mutable s2l : int;
  mutable s2h : int;
  mutable s3l : int;
  mutable s3h : int;
  mutable rl : int;  (** low half of the last result *)
  mutable rh : int;  (** high half of the last result *)
}

let m32 = 0xFFFFFFFF

let golden = 0x9E3779B97F4A7C15L

(* SplitMix64 step: used for seeding and for [split] (cold paths). *)
let splitmix_next (state : int64 ref) : int64 =
  state := Int64.add !state golden;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let lo32 (x : int64) : int = Int64.to_int (Int64.logand x 0xFFFFFFFFL)
let hi32 (x : int64) : int = Int64.to_int (Int64.shift_right_logical x 32)

let of_words (s0 : int64) (s1 : int64) (s2 : int64) (s3 : int64) : t =
  {
    s0l = lo32 s0;
    s0h = hi32 s0;
    s1l = lo32 s1;
    s1h = hi32 s1;
    s2l = lo32 s2;
    s2h = hi32 s2;
    s3l = lo32 s3;
    s3h = hi32 s3;
    rl = 0;
    rh = 0;
  }

let of_seed (seed : int) : t =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  (* xoshiro must not be seeded with all zeros; seed 0 through splitmix is
     fine, but guard anyway. *)
  let s3 = if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then 1L else s3 in
  of_words s0 s1 s2 s3

(* xoshiro256** next, over 32-bit halves.  The result lands in
   [t.rl]/[t.rh] (immediate-int stores: no allocation, no write
   barrier). *)
let step (t : t) : unit =
  (* x = s1 * 5: the half-products are < 5 * 2^32, inside a native int *)
  let al = t.s1l * 5 in
  let xh = ((t.s1h * 5) + (al lsr 32)) land m32 in
  let xl = al land m32 in
  (* r = rotl (x, 7) *)
  let rl = ((xl lsl 7) lor (xh lsr 25)) land m32 in
  let rh = ((xh lsl 7) lor (xl lsr 25)) land m32 in
  (* result = r * 9 *)
  let bl = rl * 9 in
  t.rh <- ((rh * 9) + (bl lsr 32)) land m32;
  t.rl <- bl land m32;
  (* t17 = s1 lsl 17 *)
  let t17l = (t.s1l lsl 17) land m32 in
  let t17h = ((t.s1h lsl 17) lor (t.s1l lsr 15)) land m32 in
  (* the xor cascade *)
  let s2l = t.s2l lxor t.s0l and s2h = t.s2h lxor t.s0h in
  let s3l = t.s3l lxor t.s1l and s3h = t.s3h lxor t.s1h in
  let s1l = t.s1l lxor s2l and s1h = t.s1h lxor s2h in
  let s0l = t.s0l lxor s3l and s0h = t.s0h lxor s3h in
  let s2l = s2l lxor t17l and s2h = s2h lxor t17h in
  t.s0l <- s0l;
  t.s0h <- s0h;
  t.s1l <- s1l;
  t.s1h <- s1h;
  t.s2l <- s2l;
  t.s2h <- s2h;
  (* s3 = rotl (s3, 45): swap halves (rotl 32), then rotl 13 *)
  t.s3l <- ((s3h lsl 13) lor (s3l lsr 19)) land m32;
  t.s3h <- ((s3l lsl 13) lor (s3h lsr 19)) land m32

(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each benchmark trial / page / component its own stream. *)
let split (t : t) : t =
  step t;
  let result = Int64.logor (Int64.shift_left (Int64.of_int t.rh) 32) (Int64.of_int t.rl) in
  let st = ref result in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  let s3 = if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then 1L else s3 in
  of_words s0 s1 s2 s3

(** [bits53 t] returns a non-negative int uniform in [0, 2^53) — the top
    53 bits of the 64-bit xoshiro result, exactly the [Int64] stepper's
    [result lsr 11]. *)
let bits53 (t : t) : int =
  step t;
  (t.rh lsl 21) lor (t.rl lsr 11)

(** [float t] is uniform in [0, 1). *)
let float (t : t) : float = Stdlib.float_of_int (bits53 t) *. 0x1p-53

(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] on a
    non-positive bound. *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Xrng.int: bound must be positive";
  (* Rejection-free for our purposes: bias is negligible for bound << 2^53. *)
  bits53 t mod bound

(** [bool t] is a fair coin flip. *)
let bool (t : t) : bool =
  step t;
  t.rl land 1 = 1

(** [range t lo hi] is uniform in [lo, hi] inclusive. *)
let range (t : t) (lo : int) (hi : int) : int =
  if hi < lo then invalid_arg "Xrng.range: hi < lo";
  lo + int t (hi - lo + 1)

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
let shuffle (t : t) (a : 'a array) : unit =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
