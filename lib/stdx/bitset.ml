(** Compact fixed-size bitsets over 63-bit [int] words.

    Used for per-page failure bitmaps (one bit per 64 B PCM line: a 4 KB
    page needs 64 bits, cf. paper Sec. 3.2.1), for line-level masks in
    the failure-map generator, and — since the hot-path overhaul — for
    the packed free/failed line maps inside Immix blocks.

    The representation is an [int array] of 63-bit words.  Every scan
    (population count, next set/clear bit, run extraction, subset test)
    works a word at a time: a whole word of uninteresting bits is
    skipped in one compare, and bit positions inside an interesting word
    come from table-driven popcount/ctz rather than per-bit loops.  All
    bounds checks live in the public wrappers; the word loops underneath
    use unsafe accessors.

    Invariant: bits at positions >= [len] in the last word are always
    zero, so word-level [count]/[next_clear]/[equal] need no per-call
    masking. *)

type t = { len : int; words : int array }

let bits_per_word = 63

(* all 63 bits set: OCaml [int]s are exactly 63 bits wide on 64-bit
   platforms, so the all-ones word is -1 and [lnot]/[lsl] already
   truncate to the word width with no extra masking *)
let word_mask = -1

(* [i / 63] and [i mod 63] without hardware division: ocamlopt emits a
   real [idiv] for division by a non-power-of-two constant, which would
   dominate the one-word fast path of every index operation.  The
   multiply-shift is exact for 0 <= i < 2^30 (0x82082083 = ceil(2^37/63);
   the error term 63*0x82082083 - 2^37 = 61 first matters near 2^31, and
   the product stays clear of the 63-bit range below 2^30) — [create]
   rejects longer sets. *)
let div63 (i : int) : int = (i * 0x82082083) lsr 37

let mod63 (i : int) : int = i - (div63 i * 63)

let nwords_for (len : int) : int = div63 (len + bits_per_word - 1)

(* mask of the valid bits in the last word of a [len]-bit set *)
let tail_mask (len : int) : int =
  let r = mod63 len in
  if r = 0 then word_mask else (1 lsl r) - 1

let create (len : int) : t =
  if len < 0 || len >= 0x40000000 then invalid_arg "Bitset.create: length out of range";
  { len; words = Array.make (nwords_for len) 0 }

let length (t : t) : int = t.len

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Bitset: index out of bounds"

(* -------------------- word-level building blocks -------------------- *)

(* popcount of a 16-bit chunk, precomputed once (64 KB of bytes) *)
let popc16 : Bytes.t =
  let b = Bytes.create 65536 in
  for i = 0 to 65535 do
    let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
    Bytes.unsafe_set b i (Char.unsafe_chr (go i 0))
  done;
  b

let popcount (w : int) : int =
  Char.code (Bytes.unsafe_get popc16 (w land 0xFFFF))
  + Char.code (Bytes.unsafe_get popc16 ((w lsr 16) land 0xFFFF))
  + Char.code (Bytes.unsafe_get popc16 ((w lsr 32) land 0xFFFF))
  + Char.code (Bytes.unsafe_get popc16 (w lsr 48))

(* ctz of a 16-bit chunk (tz16[0] = 16, so chunks cascade) *)
let tz16 : Bytes.t =
  let b = Bytes.create 65536 in
  Bytes.unsafe_set b 0 (Char.unsafe_chr 16);
  for i = 1 to 65535 do
    let rec go n acc = if n land 1 = 1 then acc else go (n lsr 1) (acc + 1) in
    Bytes.unsafe_set b i (Char.unsafe_chr (go i 0))
  done;
  b

(* index of the lowest set bit of [w]; 63 for 0.  Usually one table
   load: the cascade only continues while the low chunks are zero. *)
let ctz (w : int) : int =
  let x = w land 0xFFFF in
  if x <> 0 then Char.code (Bytes.unsafe_get tz16 x)
  else
    let x = (w lsr 16) land 0xFFFF in
    if x <> 0 then 16 + Char.code (Bytes.unsafe_get tz16 x)
    else
      let x = (w lsr 32) land 0xFFFF in
      if x <> 0 then 32 + Char.code (Bytes.unsafe_get tz16 x)
      else
        let x = w lsr 48 in
        if x <> 0 then 48 + Char.code (Bytes.unsafe_get tz16 x) else 63

(* unsafe single-bit accessors: the checked public wrappers below are
   the only callers that take indices from outside this module *)
let unsafe_get (t : t) (i : int) : bool =
  Array.unsafe_get t.words (div63 i) land (1 lsl mod63 i) <> 0

let unsafe_set (t : t) (i : int) : unit =
  let w = div63 i in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w lor (1 lsl mod63 i))

let unsafe_clear (t : t) (i : int) : unit =
  let w = div63 i in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w land lnot (1 lsl mod63 i))

(* ------------------------- checked wrappers ------------------------- *)

let get (t : t) (i : int) : bool =
  check t i;
  unsafe_get t i

let set (t : t) (i : int) : unit =
  check t i;
  unsafe_set t i

let clear (t : t) (i : int) : unit =
  check t i;
  unsafe_clear t i

let assign (t : t) (i : int) (v : bool) : unit = if v then set t i else clear t i

(** Number of set bits. *)
let count (t : t) : int =
  let n = ref 0 in
  for w = 0 to Array.length t.words - 1 do
    n := !n + popcount (Array.unsafe_get t.words w)
  done;
  !n

let copy (t : t) : t = { len = t.len; words = Array.copy t.words }

let fill (t : t) (v : bool) : unit =
  let nw = Array.length t.words in
  Array.fill t.words 0 nw (if v then word_mask else 0);
  (* keep the trailing bits beyond [len] zero so [count] stays exact *)
  if v && nw > 0 then t.words.(nw - 1) <- t.words.(nw - 1) land tail_mask t.len

(** [blit_complement ~src ~dst] sets [dst] to the bitwise complement of
    [src] (same length required): one word operation per 63 bits.  The
    packed block line maps use this to rebuild the free map from the
    failed map ahead of a full collection. *)
let blit_complement ~(src : t) ~(dst : t) : unit =
  if src.len <> dst.len then invalid_arg "Bitset.blit_complement: length mismatch";
  let nw = Array.length src.words in
  for w = 0 to nw - 1 do
    Array.unsafe_set dst.words w (lnot (Array.unsafe_get src.words w) land word_mask)
  done;
  if nw > 0 then dst.words.(nw - 1) <- dst.words.(nw - 1) land tail_mask dst.len

(** [iter_set t f] calls [f i] for every set bit index, ascending.  Words
    with no set bits cost one load; set bits are extracted by ctz. *)
let iter_set (t : t) (f : int -> unit) : unit =
  for wi = 0 to Array.length t.words - 1 do
    let w = ref (Array.unsafe_get t.words wi) in
    let base = wi * bits_per_word in
    while !w <> 0 do
      f (base + ctz !w);
      w := !w land (!w - 1)
    done
  done

(** [group_mask t ~shift] collapses the set into groups of [2^shift]
    consecutive bit positions, returning the bitmask of groups that
    contain at least one set bit.  Requires [length t <= 63 * 2^shift]
    so the mask fits one word.  The page stock uses this to count
    logical lines poisoned by any of their PCM lines without a closure
    call per failure. *)
let group_mask (t : t) ~(shift : int) : int =
  if shift < 1 || t.len > bits_per_word lsl shift then
    invalid_arg "Bitset.group_mask: groups do not fit one word";
  let m = ref 0 in
  for wi = 0 to Array.length t.words - 1 do
    let w = ref (Array.unsafe_get t.words wi) in
    let base = wi * bits_per_word in
    while !w <> 0 do
      m := !m lor (1 lsl ((base + ctz !w) lsr shift));
      w := !w land (!w - 1)
    done
  done;
  !m

(** [subset a b] is true when every bit set in [a] is also set in [b].
    The OS swap policy (paper Sec. 3.2.3) uses this to test whether a
    destination page's failures are a subset of the source page's.
    Early-exits on the first violating word. *)
let subset (a : t) (b : t) : bool =
  if a.len <> b.len then invalid_arg "Bitset.subset: length mismatch";
  let nw = Array.length a.words in
  let rec go w =
    w >= nw
    || (Array.unsafe_get a.words w land lnot (Array.unsafe_get b.words w) = 0 && go (w + 1))
  in
  go 0

let equal (a : t) (b : t) : bool =
  a.len = b.len
  &&
  let nw = Array.length a.words in
  let rec go w =
    w >= nw || (Array.unsafe_get a.words w = Array.unsafe_get b.words w && go (w + 1))
  in
  go 0

(** First index >= [from] whose bit is set; [None] if none.  Whole clear
    words are skipped with one compare each. *)
let next_set (t : t) (from : int) : int option =
  let from = max 0 from in
  if from >= t.len then None
  else begin
    let nw = Array.length t.words in
    let wi0 = div63 from in
    (* mask off bits below [from] in its word *)
    let first = Array.unsafe_get t.words wi0 land lnot ((1 lsl mod63 from) - 1) in
    let rec go wi w =
      if w <> 0 then Some ((wi * bits_per_word) + ctz w)
      else if wi + 1 >= nw then None
      else go (wi + 1) (Array.unsafe_get t.words (wi + 1))
    in
    go wi0 first
  end

(** First index >= [from] whose bit is clear; [None] if none.  Works on
    complemented words, so a fully set word is skipped in one compare. *)
let next_clear (t : t) (from : int) : int option =
  let from = max 0 from in
  if from >= t.len then None
  else begin
    let nw = Array.length t.words in
    let wi0 = div63 from in
    let inv wi = lnot (Array.unsafe_get t.words wi) land word_mask in
    let first = inv wi0 land lnot ((1 lsl mod63 from) - 1) in
    let rec go wi w =
      if w <> 0 then
        let i = (wi * bits_per_word) + ctz w in
        if i < t.len then Some i else None
      else if wi + 1 >= nw then None
      else go (wi + 1) (inv (wi + 1))
    in
    go wi0 first
  end

(** [next_set_run t from] is the next maximal run of set bits starting
    at or after [from], as [Some (s, e)] with the run spanning
    [s .. e - 1]; [None] when no set bit remains.  One [next_set] to
    find the run and one [next_clear] to end it — both word-level. *)
let next_set_run (t : t) (from : int) : (int * int) option =
  match next_set t from with
  | None -> None
  | Some s -> (
      match next_clear t (s + 1) with
      | None -> Some (s, t.len)
      | Some e -> Some (s, e))

(* positions in [w] that begin [n] consecutive set bits (n <= 63),
   by logarithmic shift-doubling: [y_k land (y_k lsr s)] marks positions
   starting [k + s] consecutive ones *)
let rec run_starts_from (y : int) (k : int) (n : int) : int =
  if k >= n || y = 0 then y
  else
    let s = if k < n - k then k else n - k in
    run_starts_from (y land (y lsr s)) (k + s) n

let run_starts (w : int) (n : int) : int = run_starts_from w 1 n

(* count of leading (high-order) set bits of a 63-bit word *)
let rec clo_hi (c : int) (h : int) (step : int) : int =
  if step = 0 then h
  else if c lsr (h + step) <> 0 then clo_hi c (h + step) (step lsr 1)
  else clo_hi c h (step lsr 1)

let clo (w : int) : int =
  let c = lnot w land word_mask in
  if c = 0 then bits_per_word else bits_per_word - 1 - clo_hi c 0 32

(** [find_set_run t ~from ~min_len] is the first maximal run of set bits
    [s .. e - 1] with [s >= from] (a run straddling [from] is truncated
    to start there) and [e - s >= min_len]; [None] when no such run
    remains.  This is the hole search underneath the Immix bump
    allocator: the whole scan runs word-at-a-time — a word whose
    internal runs are all too short is rejected with a few shift-ands
    (no per-run work), runs crossing word boundaries are stitched by a
    carried (start, length) pair, and nothing is allocated until the
    final result. *)
(* The scan loop of [find_set_run], as top-level tail recursion with
   explicit parameters returning a packed int: this compiler does not
   unbox local [ref]s or avoid closure allocation for capturing local
   functions, and per-call allocations would cost more than the scan
   itself.  The result is [(s lsl 30) lor e] (-1 when no run) — [create]
   caps lengths below 2^30, so both fields fit.  [rs]/[rl] carry a run
   of set bits continuing across a word boundary. *)
let rec fsr_word words nw min_len len wi rs rl : int =
  if wi >= nw then if rl >= min_len then (rs lsl 30) lor len else -1
  else begin
    let w = Array.unsafe_get words wi in
    let base = wi * bits_per_word in
    if rl > 0 && w = word_mask then
      (* the carried run continues through the whole word *)
      fsr_word words nw min_len len (wi + 1) rs (rl + bits_per_word)
    else if rl > 0 then begin
      (* the carried run ends at this word's first clear bit *)
      let k = ctz (lnot w land word_mask) in
      if rl + k >= min_len then (rs lsl 30) lor (base + k)
      else
        let wr = if k > 0 then w land lnot ((1 lsl k) - 1) else w in
        fsr_inword words nw min_len len wi base wr
    end
    else fsr_inword words nw min_len len wi base w
  end

and fsr_inword words nw min_len len wi base wr : int =
  let m =
    (* run-start positions; the generic shift-doubling is specialised
       for the two dominant cases (single line, two lines) *)
    if min_len = 1 then wr
    else if min_len = 2 then wr land (wr lsr 1)
    else if min_len > bits_per_word then 0
    else run_starts wr min_len
  in
  if m <> 0 then begin
    (* lowest adequate start; its maximal run cannot begin earlier (the
       bit below it is clear or already consumed) *)
    let p = ctz m in
    let ones = ctz (lnot (wr lsr p) land word_mask) in
    if p + ones >= bits_per_word then
      (* the run reaches the top of the word: carry it *)
      fsr_word words nw min_len len (wi + 1) (base + p) (bits_per_word - p)
    else ((base + p) lsl 30) lor (base + p + ones)
  end
  else if wr >= 0 then
    (* bit 62 (the sign bit) is clear: no leading ones, nothing carries *)
    fsr_word words nw min_len len (wi + 1) (-1) 0
  else begin
    (* only the word's leading ones can seed a run that continues into
       the next word *)
    let lead = clo wr in
    fsr_word words nw min_len len (wi + 1) (base + (bits_per_word - lead)) lead
  end

(** Allocation-free variant of [find_set_run] for hot paths: the result
    is [(s lsl 30) lor e], or -1 when no adequate run remains. *)
let find_set_run_enc (t : t) ~(from : int) ~(min_len : int) : int =
  if min_len <= 0 then invalid_arg "Bitset.find_set_run: min_len must be positive";
  let from = if from < 0 then 0 else from in
  if from >= t.len then -1
  else begin
    let words = t.words in
    let wi0 = div63 from in
    let base0 = wi0 * bits_per_word in
    (* mask bits below [from]; later words enter the loop unmasked *)
    let w0 = Array.unsafe_get words wi0 land lnot ((1 lsl (from - base0)) - 1) in
    fsr_inword words (Array.length words) min_len t.len wi0 base0 w0
  end

let find_set_run (t : t) ~(from : int) ~(min_len : int) : (int * int) option =
  let enc = find_set_run_enc t ~from ~min_len in
  if enc < 0 then None else Some (enc lsr 30, enc land 0x3FFFFFFF)

(** Number of maximal runs of set bits — word-level: a run starts at
    every set bit whose predecessor (previous bit, carrying across word
    boundaries) is clear. *)
let count_runs (t : t) : int =
  let runs = ref 0 in
  let carry = ref 0 in
  (* the last bit of the previous word *)
  for wi = 0 to Array.length t.words - 1 do
    let w = Array.unsafe_get t.words wi in
    let shifted = ((w lsl 1) lor !carry) land word_mask in
    runs := !runs + popcount (w land lnot shifted);
    carry := (w lsr (bits_per_word - 1)) land 1
  done;
  !runs

(** [sub t ~pos ~len] extracts bits [pos .. pos + len - 1] into a fresh
    bitset.  Word-level: each destination word gathers from at most two
    source words, so slicing a 64-bit page bitmap out of a device-sized
    failure map costs two loads instead of 64 per-bit get/set pairs. *)
let sub (t : t) ~(pos : int) ~(len : int) : t =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Bitset.sub: range out of bounds";
  let dst = create len in
  let src = t.words in
  let nws = Array.length src in
  let ndw = Array.length dst.words in
  let wi = div63 pos in
  let off = mod63 pos in
  for j = 0 to ndw - 1 do
    let w = wi + j in
    let lo = if w < nws then Array.unsafe_get src w lsr off else 0 in
    let hi =
      if off = 0 || w + 1 >= nws then 0
      else (Array.unsafe_get src (w + 1) lsl (bits_per_word - off)) land word_mask
    in
    Array.unsafe_set dst.words j (lo lor hi)
  done;
  if ndw > 0 then dst.words.(ndw - 1) <- dst.words.(ndw - 1) land tail_mask len;
  dst

(** [longest_run t] is the length of the longest maximal run of set
    bits (0 when no bit is set).  All-ones and all-zero words cost one
    compare each; runs crossing word boundaries are stitched by a
    carried length.  The fused sweep uses this to recompute each
    block's exact hole bound in one pass over the free map. *)
let longest_run (t : t) : int =
  let words = t.words in
  let best = ref 0 in
  let carry = ref 0 in
  (* length of the set-run ending at the top of the previous word *)
  for wi = 0 to Array.length words - 1 do
    let w = Array.unsafe_get words wi in
    if w = word_mask then carry := !carry + bits_per_word
    else begin
      (* the word's low ones extend the carried run, which ends here *)
      let low = ctz (lnot w land word_mask) in
      let ext = !carry + low in
      if ext > !best then best := ext;
      (* interior runs; one that reaches bit 62 seeds the next carry *)
      let x = ref (w lsr low) in
      let rem = ref (bits_per_word - low) in
      let nextcarry = ref 0 in
      while !x <> 0 do
        let z = ctz !x in
        x := !x lsr z;
        rem := !rem - z;
        let ones = ctz (lnot !x land word_mask) in
        if ones >= !rem then nextcarry := ones else if ones > !best then best := ones;
        x := !x lsr ones;
        rem := !rem - ones
      done;
      carry := !nextcarry
    end
  done;
  if !carry > !best then best := !carry;
  !best

let to_bool_array (t : t) : bool array = Array.init t.len (get t)

let of_bool_array (a : bool array) : t =
  let t = create (Array.length a) in
  Array.iteri (fun i v -> if v then set t i) a;
  t

let pp (ppf : Format.formatter) (t : t) : unit =
  for i = 0 to t.len - 1 do
    Format.pp_print_char ppf (if get t i then '1' else '.')
  done
