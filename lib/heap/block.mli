(** Immix blocks: 32 KB regions divided into logical lines
    (paper Sec. 4.1, Fig. 2).

    Line states follow failure-aware Immix (Sec. 4.2): lines are free,
    live, or — the added fourth category — {e failed}.  A failed 64 B PCM
    line widens to its enclosing logical line (a {e false failure} when the
    logical line is larger, Sec. 6.2).

    The line map is stored as two packed bitmaps ([free] and [failed];
    live = neither) instead of one byte per line, so the hot operations
    — [find_hole], [clear_marks], [count_holes], and the false-failure
    widening in [create] — are word operations over 63-bit words.  The
    cost model is representation-independent: [find_hole] reports the
    exact [lines_examined] count the byte-at-a-time scan charged, because
    that scan touched every line from the scan start to the end of the
    returned run (or the end of the block) exactly once, which is a
    subtraction here (see DESIGN.md §9 and §13).

    The bitmaps and per-line live counts are exposed because the heap
    verifier rebuilds them from the object table and compares. *)

type line_state = Free | Live | Failed

(** The struct-of-arrays block-metadata table (one per heap).

    The mutable per-block scalars — free/failed line counts, the hole
    bound, and the recyclable/evacuate/perfect-grant flags — live in
    flat [int array]s indexed by block id rather than as mutable fields
    of each block record.  Collection passes that visit every block
    (sweep, defrag selection, recyclable rebuild) then stream over
    dense arrays instead of chasing a pointer per block, and the
    allocation fast path reads its metadata from one cache line.  The
    arrays grow monotonically with the block index; a dissolved block's
    entries simply go stale, exactly like its [None] slot in the
    allocator's block table. *)
type table = {
  mutable t_free_lines : int array;
  mutable t_failed_lines : int array;
  mutable t_hole_bound : int array;
  mutable t_flags : int array;
}

val table_create : unit -> table

type t = {
  index : int;
  base : int;  (** first byte address of the block *)
  pages : int array;  (** page-stock ids backing the block, in order *)
  line_size : int;
  line_shift : int;
      (** log2 [line_size]: line sizes are powers of two, so
          offset->line is a shift, not a division *)
  nlines : int;
  free : Holes_stdx.Bitset.t;  (** lines holding no live data and not failed *)
  failed : Holes_stdx.Bitset.t;  (** lines widened from failed PCM lines *)
  live : int array;  (** per-line count of live objects touching the line *)
  objs : Holes_stdx.Intvec.t;
      (** ids of objects allocated in this block (may be stale) *)
  tbl : table;  (** the heap's struct-of-arrays metadata, indexed by [index] *)
}

(** {2 Struct-of-arrays metadata accessors} *)

val free_lines : t -> int
val set_free_lines : t -> int -> unit
val failed_lines : t -> int
val set_failed_lines : t -> int -> unit

val hole_bound : t -> int
(** Upper bound on the longest free run, in lines: a failed whole-block
    hole search for [n] lines proves every run is shorter, so later
    searches for >= [n] lines can answer without rescanning.  The fused
    sweep recomputes it exactly; between sweeps it decays conservatively
    (freeing a line resets it to [free_lines]). *)

val set_hole_bound : t -> int -> unit

val recyclable : t -> bool
(** Queued on the allocator's recycled list. *)

val set_recyclable : t -> bool -> unit

val evacuate : t -> bool
(** Selected for defragmentation / dynamic failure. *)

val set_evacuate : t -> bool -> unit

val perfect_grant : t -> bool
(** Assembled from a perfect-page grant (overflow / perfect-block
    fallback): the block had no failed lines when built — though a later
    dynamic failure may legitimately puncture it.  The heap verifier
    uses this to check fussy placement. *)

val set_perfect_grant : t -> bool -> unit

(** {2 Construction and line queries} *)

val create :
  tbl:table ->
  index:int ->
  base:int ->
  line_size:int ->
  pages:int array ->
  page_bitmap:(int -> Holes_stdx.Bitset.t) ->
  t
(** Create a block over [pages] (backing page-stock ids), importing each
    page's 64 B failure bitmap into logical-line failed marks.  The
    import iterates only the {e set} bits of each page bitmap (word-level
    extraction), so an undamaged page costs one word compare. *)

val line_state : t -> int -> line_state
val is_failed_line : t -> int -> bool

val is_empty : t -> bool
(** Is the block free of any live data? *)

val is_perfect : t -> bool
(** Is the block perfect (no failed lines)? *)

val free_bytes : t -> int
(** Usable bytes remaining (free lines × line size). *)

val line_of_offset : t -> int -> int

val lines_of_object : t -> addr:int -> size:int -> int * int
(** Lines spanned by an object at [addr] of [size] bytes: inclusive line
    index range.  Allocates a tuple — diagnostic use; the hot paths
    below inline the computation. *)

(** {2 Line accounting (allocation / mark / sweep)} *)

val add_object_lines : t -> addr:int -> size:int -> unit
(** Account a newly placed object: bump per-line live counts, flip free
    lines to live.  Consuming free lines only shrinks runs, so the
    cached [hole_bound] stays valid.  Raises [Invalid_argument] if the
    object overlaps a failed line. *)

val remove_object_lines : t -> addr:int -> size:int -> unit
(** Account a reclaimed object: drop per-line live counts, freeing lines
    whose count reaches zero (runs can grow: the hole bound resets). *)

val clear_marks : t -> unit
(** Reset all line marks to free (preserving failed lines) ahead of a
    full-collection rebuild: the free map becomes the word-level
    complement of the failed map. *)

val sweep : t -> int
(** The per-block half of the fused sweep: one word-level pass over the
    packed free map recomputes the {e exact} hole bound (the longest free
    run) and drops the recyclable flag, returning the free-line count.
    Charge-neutral versus the conservative bound — failed hole searches
    never charge, the exact bound only lets them answer without
    scanning. *)

(** {2 Hole search} *)

val find_hole_enc : t -> from_line:int -> min_bytes:int -> int
(** Scan the line map for the next maximal run of free lines, at or
    after [from_line], spanning at least [min_bytes] — the hole search
    underneath every bump-cursor refill.  The result is
    [(start_line lsl 30) lor limit_line] (the hole is lines
    [start_line .. limit_line - 1]), or [-1] when no such hole remains:
    the hot path allocates nothing.

    The cost model charges [lines_examined = limit_line - max 0
    from_line], exactly what the per-byte scan charged.  A [-1] result
    examined every remaining line — but no caller charges for a failed
    search, which is what lets the [hole_bound] fast path skip provably
    hopeless scans without perturbing the cost model. *)

val find_hole : t -> from_line:int -> min_bytes:int -> (int * int * int) option
(** Decoded form of [find_hole_enc]:
    [Some (start_line, limit_line, lines_examined)] or [None]. *)

val count_holes : t -> int
(** Number of holes (maximal free runs) — the fragmentation statistic. *)

val fail_line : t -> line:int -> [ `Was_free | `Was_live | `Already_failed ]
(** Record a dynamic line failure discovered at runtime: logical line
    [line] becomes failed.  Returns the object-displacing information:
    whether the line previously held live data. *)
