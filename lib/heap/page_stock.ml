(** The VM's stock of OS-granted pages, with the fussy/relaxed
    discipline and debit–credit accounting of paper Sec. 5.

    The VM acquires pages via [mmap_imperfect]-style grants; each page
    carries a failure bitmap (one bit per 64 B PCM line).  Virtual
    address translation lets the OS compose any set of physical pages
    into a contiguous virtual range, so *perfect* pages are a fungible
    resource: what matters is how many remain, not where they sit
    ("virtual address translation transparently removes any problem of
    page-level fragmentation", Sec. 6.1).

    - Relaxed allocators (Immix blocks) draw imperfect pages first,
      conserving perfect ones; a perfect page offered to a relaxed
      allocator while debt is outstanding is surrendered to repay one
      page of debt.
    - Fussy allocators (LOS, overflow fallback) demand perfect pages;
      when none remain they receive a borrowed DRAM page and the process
      goes one page into debt. *)

open Holes_stdx

type page = {
  id : int;
  bitmap : Bitset.t;
  mutable failed_lines : int;  (** failed 64 B PCM lines *)
  mutable usable_logical : int;
      (** logical (collector-line-size) lines with no failed PCM line;
          a page with none is *dead* for this run and never circulates *)
}

type t = {
  pages : page array;
  line_size : int;  (** collector logical line size, for deadness *)
  mutable free_perfect : int list;  (** ascending address order *)
  mutable free_imperfect : int list;  (** ascending address order *)
  mutable dead : int list;  (** pages with no usable logical line *)
  mutable n_free_perfect : int;  (** [List.length free_perfect], O(1) *)
  mutable n_free_imperfect : int;  (** [List.length free_imperfect], O(1) *)
  mutable n_dead : int;  (** [List.length dead], O(1) *)
  mutable free_usable_lines : int;
      (** sum over free (perfect + imperfect) pages of their non-failed
          PCM lines — kept incrementally so [free_usable_bytes], which
          the LOS consults on every allocation, is O(1) instead of a
          fold over both pools *)
  accounting : Holes_osal.Accounting.t;
  mutable borrowed_in_use : int;
  mutable repaid_pages : int;  (** pages surrendered to repay debt *)
  mutable repaid : int list;
      (** ids of the surrendered pages: back with the OS, out of
          circulation for the rest of the run (the verifier accounts
          for them as a fourth page-ownership class) *)
  mutable max_borrowed : int;  (** DRAM borrow cap (DRAM is scarce, Sec. 2.3) *)
  mutable extra_free_bytes : unit -> int;
      (** free bytes held outside the stock (e.g. inside partially used
          collector blocks); part of the "has sufficient memory" test *)
}

let lines_per_page = Holes_pcm.Geometry.lines_per_page

(* logical lines per page with no failed PCM line.  At the default
   logical size (one PCM line) this is one word-level popcount; larger
   logical lines accumulate a <=32-bit mask of tainted logical lines
   from the set failure bits only. *)
let count_usable_logical ~(line_size : int) (bitmap : Bitset.t) : int =
  let pcm_per_logical = line_size / Holes_pcm.Geometry.line_bytes in
  let nlogical = Holes_pcm.Geometry.page_bytes / line_size in
  if pcm_per_logical = 1 then nlogical - Bitset.count bitmap
  else begin
    (* logical lines poisoned by any of their PCM lines, word-level *)
    let shift = ref 0 in
    while 1 lsl !shift < pcm_per_logical do
      incr shift
    done;
    nlogical - Bitset.popcount (Bitset.group_mask bitmap ~shift:!shift)
  end

(** Build a stock from per-page failure bitmaps — one [Bitset.t] of 64
    bits per granted page, exactly the shape [Vmm.map_failures] returns
    for each mapped virtual page.  [line_size] is the collector's
    logical line size: pages without a single usable logical line are
    quarantined as dead — they still count against the budget, exactly
    like the paper's unusable memory, but never circulate through the
    allocator. *)
let create_of_bitmaps ?(line_size = Holes_pcm.Geometry.line_bytes)
    ~(bitmaps : Bitset.t array) () : t =
  let npages = Array.length bitmaps in
  let pages =
    Array.init npages (fun p ->
        let bitmap = bitmaps.(p) in
        if Bitset.length bitmap <> lines_per_page then
          invalid_arg "Page_stock.create_of_bitmaps: bitmap is not one page";
        {
          id = p;
          bitmap;
          failed_lines = Bitset.count bitmap;
          usable_logical = count_usable_logical ~line_size bitmap;
        })
  in
  let perfect = ref [] and imperfect = ref [] and dead = ref [] in
  let n_perfect = ref 0 and n_imperfect = ref 0 and n_dead = ref 0 in
  let usable = ref 0 in
  for p = npages - 1 downto 0 do
    if pages.(p).failed_lines = 0 then begin
      perfect := p :: !perfect;
      incr n_perfect;
      usable := !usable + lines_per_page
    end
    else if pages.(p).usable_logical = 0 then begin
      dead := p :: !dead;
      incr n_dead
    end
    else begin
      imperfect := p :: !imperfect;
      incr n_imperfect;
      usable := !usable + lines_per_page - pages.(p).failed_lines
    end
  done;
  {
    pages;
    line_size;
    free_perfect = !perfect;
    free_imperfect = !imperfect;
    dead = !dead;
    n_free_perfect = !n_perfect;
    n_free_imperfect = !n_imperfect;
    n_dead = !n_dead;
    free_usable_lines = !usable;
    accounting = Holes_osal.Accounting.create ();
    borrowed_in_use = 0;
    repaid_pages = 0;
    repaid = [];
    max_borrowed = max 16 npages;
    extra_free_bytes = (fun () -> 0);
  }

(** Build a stock of [npages] pages whose line failures come from
    [device_map] (a bitmap over [npages * 64] PCM lines) — the static
    fault-injection grant path. *)
let create ?(line_size = Holes_pcm.Geometry.line_bytes) ~(device_map : Bitset.t)
    ~(npages : int) () : t =
  if Bitset.length device_map < npages * lines_per_page then
    invalid_arg "Page_stock.create: failure map too small";
  let bitmaps =
    Array.init npages (fun p ->
        Bitset.sub device_map ~pos:(p * lines_per_page) ~len:lines_per_page)
  in
  create_of_bitmaps ~line_size ~bitmaps ()

(** Register the collector's view of free bytes held outside the stock
    (inside partially used blocks). *)
let set_extra_free (t : t) (f : unit -> int) : unit = t.extra_free_bytes <- f

(** Override the DRAM borrow cap (default: npages/8, min 16). *)
let set_max_borrowed (t : t) (cap : int) : unit = t.max_borrowed <- cap

let page (t : t) (id : int) : page = t.pages.(id)

let npages (t : t) : int = Array.length t.pages

let free_perfect_count (t : t) : int = t.n_free_perfect

let free_imperfect_count (t : t) : int = t.n_free_imperfect

let free_pages (t : t) : int = t.n_free_perfect + t.n_free_imperfect

let accounting (t : t) : Holes_osal.Accounting.t = t.accounting

(** Total usable (non-failed) lines across free pages — the allocator's
    view of how much memory a collection could still yield.  O(1): the
    line total is maintained incrementally as pages enter and leave the
    free pools. *)
let free_usable_bytes (t : t) : int = t.free_usable_lines * Holes_pcm.Geometry.line_bytes

(** Draw one page for a relaxed allocator.  Imperfect pages first; a
    perfect page is kept only if no debt is outstanding, otherwise it is
    surrendered as repayment and the next page is drawn. *)
let rec take_relaxed (t : t) : int option =
  match t.free_imperfect with
  | p :: rest ->
      t.free_imperfect <- rest;
      t.n_free_imperfect <- t.n_free_imperfect - 1;
      t.free_usable_lines <- t.free_usable_lines - (lines_per_page - t.pages.(p).failed_lines);
      Some p
  | [] -> (
      match t.free_perfect with
      | [] -> None
      | p :: rest -> (
          t.free_perfect <- rest;
          t.n_free_perfect <- t.n_free_perfect - 1;
          t.free_usable_lines <- t.free_usable_lines - lines_per_page;
          match Holes_osal.Accounting.relaxed_offer_perfect t.accounting with
          | `Keep -> Some p
          | `Decline ->
              t.repaid_pages <- t.repaid_pages + 1;
              t.repaid <- p :: t.repaid;
              take_relaxed t))

type perfect_grant = Perfect of int | Borrowed | Exhausted

(** Draw one perfect page for a fussy allocator; borrows DRAM (debt)
    when the perfect pool is empty.  Borrowing follows the paper's
    "allocator has sufficient memory" condition: each page of
    outstanding debt docks one page of the process's budget, so a
    borrow is granted only while the debt is covered by free stock
    pages (and within the hard DRAM cap).  Otherwise the grant is
    [Exhausted] and the caller must collect or fail. *)
let take_perfect (t : t) : perfect_grant =
  match t.free_perfect with
  | p :: rest ->
      t.free_perfect <- rest;
      t.n_free_perfect <- t.n_free_perfect - 1;
      t.free_usable_lines <- t.free_usable_lines - lines_per_page;
      Holes_osal.Accounting.fussy_request t.accounting ~pages:1 ~available:1;
      Perfect p
  | [] ->
      let free_budget_pages =
        free_pages t + (t.extra_free_bytes () / Holes_pcm.Geometry.page_bytes)
      in
      if
        t.borrowed_in_use >= t.max_borrowed
        || Holes_osal.Accounting.debt t.accounting >= free_budget_pages
      then Exhausted
      else begin
        Holes_osal.Accounting.fussy_request t.accounting ~pages:1 ~available:0;
        t.borrowed_in_use <- t.borrowed_in_use + 1;
        Borrowed
      end

(** Return a stock page to its pool (dead pages are quarantined). *)
let return_page (t : t) (id : int) : unit =
  let p = t.pages.(id) in
  if p.failed_lines = 0 then begin
    t.free_perfect <- id :: t.free_perfect;
    t.n_free_perfect <- t.n_free_perfect + 1;
    t.free_usable_lines <- t.free_usable_lines + lines_per_page
  end
  else if p.usable_logical = 0 then begin
    t.dead <- id :: t.dead;
    t.n_dead <- t.n_dead + 1
  end
  else begin
    t.free_imperfect <- id :: t.free_imperfect;
    t.n_free_imperfect <- t.n_free_imperfect + 1;
    t.free_usable_lines <- t.free_usable_lines + (lines_per_page - p.failed_lines)
  end

(** Pages quarantined as fully unusable. *)
let dead_count (t : t) : int = t.n_dead

(** Return a borrowed DRAM page (it leaves the process; debt remains
    until the relaxed allocator repays it). *)
let return_borrowed (t : t) : unit =
  if t.borrowed_in_use <= 0 then invalid_arg "Page_stock.return_borrowed: none in use";
  t.borrowed_in_use <- t.borrowed_in_use - 1;
  Holes_osal.Accounting.loan_closed t.accounting

let borrowed_in_use (t : t) : int = t.borrowed_in_use

let repaid_pages (t : t) : int = t.repaid_pages

(** Record a *dynamic* failure of 64 B PCM line [line] on page [id], so
    that future users of the page (reassembled blocks, swap decisions)
    see the hole.  A free perfect page that gains its first failure
    migrates to the imperfect pool. *)
let mark_line_failed (t : t) ~(id : int) ~(line : int) : unit =
  let p = t.pages.(id) in
  if not (Bitset.get p.bitmap line) then begin
    let was_perfect = p.failed_lines = 0 in
    let in_perfect = was_perfect && List.mem id t.free_perfect in
    let in_imperfect = (not was_perfect) && List.mem id t.free_imperfect in
    let old_usable = lines_per_page - p.failed_lines in
    Bitset.set p.bitmap line;
    p.failed_lines <- p.failed_lines + 1;
    p.usable_logical <- count_usable_logical ~line_size:t.line_size p.bitmap;
    if in_perfect then begin
      t.free_perfect <- List.filter (fun x -> x <> id) t.free_perfect;
      t.n_free_perfect <- t.n_free_perfect - 1;
      t.free_usable_lines <- t.free_usable_lines - old_usable;
      (* return_page pushes it to the right pool and recredits *)
      return_page t id
    end
    else if in_imperfect then begin
      if p.usable_logical = 0 then begin
        t.free_imperfect <- List.filter (fun x -> x <> id) t.free_imperfect;
        t.n_free_imperfect <- t.n_free_imperfect - 1;
        t.free_usable_lines <- t.free_usable_lines - old_usable;
        t.dead <- id :: t.dead;
        t.n_dead <- t.n_dead + 1
      end
      else t.free_usable_lines <- t.free_usable_lines - 1
    end
  end
