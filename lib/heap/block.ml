(** Immix blocks: 32 KB regions divided into logical lines
    (paper Sec. 4.1, Fig. 2).

    Line states follow failure-aware Immix (Sec. 4.2): lines are free,
    live, or — the added fourth category — *failed*.  A failed 64 B PCM
    line widens to its enclosing logical line (a *false failure* when the
    logical line is larger, Sec. 6.2).

    The line map is stored as two packed bitmaps ([free] and [failed];
    live = neither) instead of one byte per line, so the hot operations
    — [find_hole], [clear_marks], [count_holes], and the false-failure
    widening in [create] — are word operations over 63-bit words.  The
    cost model is representation-independent: [find_hole] reports the
    exact [lines_examined] count the byte-at-a-time scan charged, because
    that scan touched every line from the scan start to the end of the
    returned run (or the end of the block) exactly once, which is a
    subtraction here (see DESIGN.md §9). *)

open Holes_stdx

type line_state = Free | Live | Failed

type t = {
  index : int;
  base : int;  (** first byte address of the block *)
  pages : int array;  (** page-stock ids backing the block, in order *)
  line_size : int;
  line_shift : int;  (** log2 [line_size]: line sizes are powers of two,
                         so offset->line is a shift, not a division *)
  nlines : int;
  free : Bitset.t;  (** lines holding no live data and not failed *)
  failed : Bitset.t;  (** lines widened from failed PCM lines *)
  live : int array;  (** per-line count of live objects touching the line *)
  objs : Intvec.t;  (** ids of objects allocated in this block (may be stale) *)
  mutable free_lines : int;
  mutable failed_lines : int;
  mutable hole_bound : int;
      (** upper bound on the longest free run, in lines: a failed
          whole-block hole search for [n] lines proves every run is
          shorter, so later searches for >= [n] lines can answer [None]
          without rescanning.  Conservative: growing a run (freeing a
          line) resets it to [free_lines]. *)
  mutable recyclable : bool;  (** queued on the allocator's recycled list *)
  mutable evacuate : bool;  (** selected for defragmentation / dynamic failure *)
  mutable perfect_grant : bool;
      (** assembled from a perfect-page grant (overflow / perfect-block
          fallback): the block had no failed lines when built — though a
          later dynamic failure may legitimately puncture it.  The heap
          verifier uses this to check fussy placement. *)
}

let pcm_line = Holes_pcm.Geometry.line_bytes
let pcm_lines_per_page = Holes_pcm.Geometry.lines_per_page

(** Create a block over [pages] (backing page-stock ids), importing each
    page's 64 B failure bitmap into logical-line failed marks.  The
    import iterates only the *set* bits of each page bitmap (word-level
    extraction), so an undamaged page costs one word compare. *)
let create ~(index : int) ~(base : int) ~(line_size : int) ~(pages : int array)
    ~(page_bitmap : int -> Bitset.t) : t =
  if not (Units.valid_line_size line_size) then invalid_arg "Block.create: bad line size";
  if Array.length pages <> Units.pages_per_block then
    invalid_arg "Block.create: wrong page count";
  let nlines = Units.lines_per_block ~line_size in
  let free = Bitset.create nlines in
  Bitset.fill free true;
  let failed = Bitset.create nlines in
  (* false-failure widening: any failed 64 B PCM line inside a logical
     line fails the whole logical line *)
  let pcm_per_logical = line_size / pcm_line in
  Array.iteri
    (fun pg id ->
      Bitset.iter_set (page_bitmap id) (fun off ->
          let pcm_idx = (pg * pcm_lines_per_page) + off in
          let l = pcm_idx / pcm_per_logical in
          if not (Bitset.get failed l) then begin
            Bitset.set failed l;
            Bitset.clear free l
          end))
    pages;
  let nfailed = Bitset.count failed in
  let line_shift =
    let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1) in
    log2 line_size
  in
  {
    index;
    base;
    pages;
    line_size;
    line_shift;
    nlines;
    free;
    failed;
    live = Array.make nlines 0;
    objs = Intvec.create ();
    free_lines = nlines - nfailed;
    failed_lines = nfailed;
    hole_bound = nlines - nfailed;
    recyclable = false;
    evacuate = false;
    perfect_grant = false;
  }

let line_state (t : t) (l : int) : line_state =
  if Bitset.get t.failed l then Failed else if Bitset.get t.free l then Free else Live

let is_failed_line (t : t) (l : int) : bool = Bitset.get t.failed l

(** Is the block free of any live data? *)
let is_empty (t : t) : bool = t.free_lines = t.nlines - t.failed_lines

(** Is the block perfect (no failed lines)? *)
let is_perfect (t : t) : bool = t.failed_lines = 0

(** Usable bytes remaining (free lines × line size). *)
let free_bytes (t : t) : int = t.free_lines * t.line_size

let line_of_offset (t : t) (offset : int) : int = offset lsr t.line_shift

(** Lines spanned by an object at [addr] (block-relative) of [size]
    bytes: inclusive line index range. *)
let lines_of_object (t : t) ~(addr : int) ~(size : int) : int * int =
  let off = addr - t.base in
  (off lsr t.line_shift, (off + size - 1) lsr t.line_shift)

(** Account a newly placed object: bump per-line live counts, flip free
    lines to live.  Consuming free lines only shrinks runs, so the
    cached [hole_bound] stays valid. *)
let add_object_lines (t : t) ~(addr : int) ~(size : int) : unit =
  let lo, hi = lines_of_object t ~addr ~size in
  for l = lo to hi do
    if Bitset.get t.failed l then
      invalid_arg "Block.add_object_lines: allocation overlaps a failed line";
    if t.live.(l) = 0 then begin
      Bitset.clear t.free l;
      t.free_lines <- t.free_lines - 1
    end;
    t.live.(l) <- t.live.(l) + 1
  done

(** Account a reclaimed object: drop per-line live counts, freeing lines
    whose count reaches zero (runs can grow: the hole bound resets). *)
let remove_object_lines (t : t) ~(addr : int) ~(size : int) : unit =
  let lo, hi = lines_of_object t ~addr ~size in
  for l = lo to hi do
    if t.live.(l) <= 0 then invalid_arg "Block.remove_object_lines: line not live";
    t.live.(l) <- t.live.(l) - 1;
    if t.live.(l) = 0 then begin
      Bitset.set t.free l;
      t.free_lines <- t.free_lines + 1
    end
  done;
  t.hole_bound <- t.free_lines

(** Reset all line marks to free (preserving failed lines) ahead of a
    full-collection rebuild: the free map becomes the word-level
    complement of the failed map. *)
let clear_marks (t : t) : unit =
  Bitset.blit_complement ~src:t.failed ~dst:t.free;
  Array.fill t.live 0 t.nlines 0;
  t.free_lines <- t.nlines - t.failed_lines;
  t.hole_bound <- t.free_lines;
  Intvec.clear t.objs

(** [find_hole_enc t ~from_line ~min_bytes] scans the line map for the
    next maximal run of free lines, at or after [from_line], spanning at
    least [min_bytes] — the hole search underneath every bump-cursor
    refill.  The result is [(start_line lsl 30) lor limit_line] (the
    hole is lines [start_line .. limit_line - 1]), or -1 when no such
    hole remains: the hot path allocates nothing.

    The cost model charges [lines_examined = limit_line - max 0
    from_line], exactly what the per-byte scan charged: every line from
    the scan start through the end of the returned run, counted once.
    Callers compute it from the fields they already decode (see
    [find_hole]).  A -1 result examined every remaining line — but no
    caller charges for a failed search, which is what lets the
    [hole_bound] fast path below skip provably hopeless scans without
    perturbing the cost model. *)
let find_hole_enc (t : t) ~(from_line : int) ~(min_bytes : int) : int =
  let needed_lines = (min_bytes + t.line_size - 1) lsr t.line_shift in
  let start = if from_line > 0 then from_line else 0 in
  if start <= 0 && needed_lines > t.hole_bound then -1
  else begin
    let enc = Bitset.find_set_run_enc t.free ~from:start ~min_len:needed_lines in
    (* a failed whole-block search proves no run reaches [needed_lines] *)
    if enc < 0 && start <= 0 then t.hole_bound <- min t.hole_bound (needed_lines - 1);
    enc
  end

(** Decoded form of [find_hole_enc]:
    [Some (start_line, limit_line, lines_examined)] or [None]. *)
let find_hole (t : t) ~(from_line : int) ~(min_bytes : int) : (int * int * int) option =
  let enc = find_hole_enc t ~from_line ~min_bytes in
  if enc < 0 then None
  else
    let s = enc lsr 30 and e = enc land 0x3FFFFFFF in
    Some (s, e, e - max 0 from_line)

(** Number of holes (maximal free runs) — the fragmentation statistic. *)
let count_holes (t : t) : int = Bitset.count_runs t.free

(** Record a dynamic line failure discovered at runtime: the logical line
    containing block-relative [offset] becomes failed.  Returns the
    object-displacing information: whether the line previously held live
    data. *)
let fail_line (t : t) ~(line : int) : [ `Was_free | `Was_live | `Already_failed ] =
  if Bitset.get t.failed line then `Already_failed
  else if Bitset.get t.free line then begin
    Bitset.clear t.free line;
    Bitset.set t.failed line;
    t.failed_lines <- t.failed_lines + 1;
    t.free_lines <- t.free_lines - 1;
    t.hole_bound <- min t.hole_bound t.free_lines;
    `Was_free
  end
  else begin
    Bitset.set t.failed line;
    t.failed_lines <- t.failed_lines + 1;
    t.live.(line) <- 0;
    `Was_live
  end
