(** Immix blocks: 32 KB regions divided into logical lines
    (paper Sec. 4.1, Fig. 2).

    Line states follow failure-aware Immix (Sec. 4.2): lines are free,
    live, or — the added fourth category — *failed*.  A failed 64 B PCM
    line widens to its enclosing logical line (a *false failure* when the
    logical line is larger, Sec. 6.2).

    The line map is stored as two packed bitmaps ([free] and [failed];
    live = neither) instead of one byte per line, so the hot operations
    — [find_hole], [clear_marks], [count_holes], and the false-failure
    widening in [create] — are word operations over 63-bit words.  The
    cost model is representation-independent: [find_hole] reports the
    exact [lines_examined] count the byte-at-a-time scan charged, because
    that scan touched every line from the scan start to the end of the
    returned run (or the end of the block) exactly once, which is a
    subtraction here (see DESIGN.md §9). *)

open Holes_stdx

type line_state = Free | Live | Failed

(** The struct-of-arrays block-metadata table (one per heap).

    The mutable per-block scalars — free/failed line counts, the hole
    bound, and the recyclable/evacuate/perfect-grant flags — live in
    flat [int array]s indexed by block id rather than as mutable fields
    of each block record.  Collection passes that visit every block
    (sweep, defrag selection, recyclable rebuild) then stream over
    dense arrays instead of chasing a pointer per block, and the
    allocation fast path reads its metadata from one cache line.  The
    arrays grow monotonically with the block index; a dissolved block's
    entries simply go stale, exactly like its [None] slot in the
    allocator's block table. *)
type table = {
  mutable t_free_lines : int array;
  mutable t_failed_lines : int array;
  mutable t_hole_bound : int array;
  mutable t_flags : int array;  (* bit 0 recyclable, bit 1 evacuate, bit 2 perfect_grant *)
}

let table_create () : table =
  { t_free_lines = [||]; t_failed_lines = [||]; t_hole_bound = [||]; t_flags = [||] }

let table_ensure (tbl : table) (n : int) : unit =
  if n > Array.length tbl.t_free_lines then begin
    let cap = max 64 (max n (2 * Array.length tbl.t_free_lines)) in
    let grow a =
      let g = Array.make cap 0 in
      Array.blit a 0 g 0 (Array.length a);
      g
    in
    tbl.t_free_lines <- grow tbl.t_free_lines;
    tbl.t_failed_lines <- grow tbl.t_failed_lines;
    tbl.t_hole_bound <- grow tbl.t_hole_bound;
    tbl.t_flags <- grow tbl.t_flags
  end

type t = {
  index : int;
  base : int;  (** first byte address of the block *)
  pages : int array;  (** page-stock ids backing the block, in order *)
  line_size : int;
  line_shift : int;  (** log2 [line_size]: line sizes are powers of two,
                         so offset->line is a shift, not a division *)
  nlines : int;
  free : Bitset.t;  (** lines holding no live data and not failed *)
  failed : Bitset.t;  (** lines widened from failed PCM lines *)
  live : int array;  (** per-line count of live objects touching the line *)
  objs : Intvec.t;  (** ids of objects allocated in this block (may be stale) *)
  tbl : table;  (** the heap's struct-of-arrays metadata, indexed by [index] *)
}

(* ------------------ struct-of-arrays field accessors ------------------ *)

(* [table_ensure] ran for this index in [create], so the unsafe accesses
   are in bounds by construction *)

let[@inline] free_lines (b : t) : int = Array.unsafe_get b.tbl.t_free_lines b.index
let[@inline] set_free_lines (b : t) (v : int) : unit =
  Array.unsafe_set b.tbl.t_free_lines b.index v

let[@inline] failed_lines (b : t) : int = Array.unsafe_get b.tbl.t_failed_lines b.index
let[@inline] set_failed_lines (b : t) (v : int) : unit =
  Array.unsafe_set b.tbl.t_failed_lines b.index v

(** Upper bound on the longest free run, in lines: a failed whole-block
    hole search for [n] lines proves every run is shorter, so later
    searches for >= [n] lines can answer without rescanning.  The fused
    sweep recomputes it exactly; between sweeps it decays conservatively
    (freeing a line resets it to [free_lines]). *)
let[@inline] hole_bound (b : t) : int = Array.unsafe_get b.tbl.t_hole_bound b.index
let[@inline] set_hole_bound (b : t) (v : int) : unit =
  Array.unsafe_set b.tbl.t_hole_bound b.index v

let[@inline] flag_get (b : t) (bit : int) : bool =
  Array.unsafe_get b.tbl.t_flags b.index land bit <> 0

let[@inline] flag_assign (b : t) (bit : int) (v : bool) : unit =
  let f = Array.unsafe_get b.tbl.t_flags b.index in
  Array.unsafe_set b.tbl.t_flags b.index (if v then f lor bit else f land lnot bit)

(** Queued on the allocator's recycled list. *)
let[@inline] recyclable (b : t) : bool = flag_get b 1
let[@inline] set_recyclable (b : t) (v : bool) : unit = flag_assign b 1 v

(** Selected for defragmentation / dynamic failure. *)
let[@inline] evacuate (b : t) : bool = flag_get b 2
let[@inline] set_evacuate (b : t) (v : bool) : unit = flag_assign b 2 v

(** Assembled from a perfect-page grant (overflow / perfect-block
    fallback): the block had no failed lines when built — though a later
    dynamic failure may legitimately puncture it.  The heap verifier
    uses this to check fussy placement. *)
let[@inline] perfect_grant (b : t) : bool = flag_get b 4
let[@inline] set_perfect_grant (b : t) (v : bool) : unit = flag_assign b 4 v

let pcm_line = Holes_pcm.Geometry.line_bytes
let pcm_lines_per_page = Holes_pcm.Geometry.lines_per_page

(** Create a block over [pages] (backing page-stock ids), importing each
    page's 64 B failure bitmap into logical-line failed marks.  The
    import iterates only the *set* bits of each page bitmap (word-level
    extraction), so an undamaged page costs one word compare. *)
let create ~(tbl : table) ~(index : int) ~(base : int) ~(line_size : int)
    ~(pages : int array) ~(page_bitmap : int -> Bitset.t) : t =
  if not (Units.valid_line_size line_size) then invalid_arg "Block.create: bad line size";
  if index < 0 then invalid_arg "Block.create: negative index";
  table_ensure tbl (index + 1);
  if Array.length pages <> Units.pages_per_block then
    invalid_arg "Block.create: wrong page count";
  let nlines = Units.lines_per_block ~line_size in
  let free = Bitset.create nlines in
  Bitset.fill free true;
  let failed = Bitset.create nlines in
  (* false-failure widening: any failed 64 B PCM line inside a logical
     line fails the whole logical line *)
  let pcm_per_logical = line_size / pcm_line in
  Array.iteri
    (fun pg id ->
      Bitset.iter_set (page_bitmap id) (fun off ->
          let pcm_idx = (pg * pcm_lines_per_page) + off in
          let l = pcm_idx / pcm_per_logical in
          if not (Bitset.get failed l) then begin
            Bitset.set failed l;
            Bitset.clear free l
          end))
    pages;
  let nfailed = Bitset.count failed in
  let line_shift =
    let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1) in
    log2 line_size
  in
  tbl.t_free_lines.(index) <- nlines - nfailed;
  tbl.t_failed_lines.(index) <- nfailed;
  tbl.t_hole_bound.(index) <- nlines - nfailed;
  tbl.t_flags.(index) <- 0;
  {
    index;
    base;
    pages;
    line_size;
    line_shift;
    nlines;
    free;
    failed;
    live = Array.make nlines 0;
    objs = Intvec.create ~capacity:64 ();
    tbl;
  }

let line_state (t : t) (l : int) : line_state =
  if Bitset.get t.failed l then Failed else if Bitset.get t.free l then Free else Live

let is_failed_line (t : t) (l : int) : bool = Bitset.get t.failed l

(** Is the block free of any live data? *)
let is_empty (t : t) : bool = free_lines t = t.nlines - failed_lines t

(** Is the block perfect (no failed lines)? *)
let is_perfect (t : t) : bool = failed_lines t = 0

(** Usable bytes remaining (free lines × line size). *)
let free_bytes (t : t) : int = free_lines t * t.line_size

let line_of_offset (t : t) (offset : int) : int = offset lsr t.line_shift

(** Lines spanned by an object at [addr] (block-relative) of [size]
    bytes: inclusive line index range. *)
let lines_of_object (t : t) ~(addr : int) ~(size : int) : int * int =
  let off = addr - t.base in
  (off lsr t.line_shift, (off + size - 1) lsr t.line_shift)

(** Account a newly placed object: bump per-line live counts, flip free
    lines to live.  Consuming free lines only shrinks runs, so the
    cached [hole_bound] stays valid. *)
let add_object_lines (t : t) ~(addr : int) ~(size : int) : unit =
  (* [lines_of_object] inlined by hand: the tuple return would allocate
     on every allocation and every mark *)
  let off = addr - t.base in
  let lo = off lsr t.line_shift and hi = (off + size - 1) lsr t.line_shift in
  for l = lo to hi do
    if Bitset.get t.failed l then
      invalid_arg "Block.add_object_lines: allocation overlaps a failed line";
    if t.live.(l) = 0 then begin
      Bitset.clear t.free l;
      set_free_lines t (free_lines t - 1)
    end;
    t.live.(l) <- t.live.(l) + 1
  done

(** Account a reclaimed object: drop per-line live counts, freeing lines
    whose count reaches zero (runs can grow: the hole bound resets). *)
let remove_object_lines (t : t) ~(addr : int) ~(size : int) : unit =
  let off = addr - t.base in
  let lo = off lsr t.line_shift and hi = (off + size - 1) lsr t.line_shift in
  for l = lo to hi do
    if t.live.(l) <= 0 then invalid_arg "Block.remove_object_lines: line not live";
    t.live.(l) <- t.live.(l) - 1;
    if t.live.(l) = 0 then begin
      Bitset.set t.free l;
      set_free_lines t (free_lines t + 1)
    end
  done;
  set_hole_bound t (free_lines t)

(** Reset all line marks to free (preserving failed lines) ahead of a
    full-collection rebuild: the free map becomes the word-level
    complement of the failed map. *)
let clear_marks (t : t) : unit =
  Bitset.blit_complement ~src:t.failed ~dst:t.free;
  Array.fill t.live 0 t.nlines 0;
  set_free_lines t (t.nlines - failed_lines t);
  set_hole_bound t (free_lines t);
  Intvec.clear t.objs

(** The per-block half of the fused sweep: one word-level pass over the
    packed free map recomputes the *exact* hole bound (the longest free
    run) and drops the recyclable flag, returning the free-line count.
    Charge-neutral versus the conservative bound — failed hole searches
    never charge, the exact bound only lets them answer without
    scanning — and [Verify] checks [longest_free_run <= hole_bound], so
    exactness is the strongest bound the invariant admits. *)
let sweep (t : t) : int =
  set_hole_bound t (Bitset.longest_run t.free);
  set_recyclable t false;
  free_lines t

(** [find_hole_enc t ~from_line ~min_bytes] scans the line map for the
    next maximal run of free lines, at or after [from_line], spanning at
    least [min_bytes] — the hole search underneath every bump-cursor
    refill.  The result is [(start_line lsl 30) lor limit_line] (the
    hole is lines [start_line .. limit_line - 1]), or -1 when no such
    hole remains: the hot path allocates nothing.

    The cost model charges [lines_examined = limit_line - max 0
    from_line], exactly what the per-byte scan charged: every line from
    the scan start through the end of the returned run, counted once.
    Callers compute it from the fields they already decode (see
    [find_hole]).  A -1 result examined every remaining line — but no
    caller charges for a failed search, which is what lets the
    [hole_bound] fast path below skip provably hopeless scans without
    perturbing the cost model. *)
let find_hole_enc (t : t) ~(from_line : int) ~(min_bytes : int) : int =
  let needed_lines = (min_bytes + t.line_size - 1) lsr t.line_shift in
  let start = if from_line > 0 then from_line else 0 in
  if start <= 0 && needed_lines > hole_bound t then -1
  else begin
    let enc = Bitset.find_set_run_enc t.free ~from:start ~min_len:needed_lines in
    (* a failed whole-block search proves no run reaches [needed_lines] *)
    if enc < 0 && start <= 0 then set_hole_bound t (min (hole_bound t) (needed_lines - 1));
    enc
  end

(** Decoded form of [find_hole_enc]:
    [Some (start_line, limit_line, lines_examined)] or [None]. *)
let find_hole (t : t) ~(from_line : int) ~(min_bytes : int) : (int * int * int) option =
  let enc = find_hole_enc t ~from_line ~min_bytes in
  if enc < 0 then None
  else
    let s = enc lsr 30 and e = enc land 0x3FFFFFFF in
    Some (s, e, e - max 0 from_line)

(** Number of holes (maximal free runs) — the fragmentation statistic. *)
let count_holes (t : t) : int = Bitset.count_runs t.free

(** Record a dynamic line failure discovered at runtime: the logical line
    containing block-relative [offset] becomes failed.  Returns the
    object-displacing information: whether the line previously held live
    data. *)
let fail_line (t : t) ~(line : int) : [ `Was_free | `Was_live | `Already_failed ] =
  if Bitset.get t.failed line then `Already_failed
  else if Bitset.get t.free line then begin
    Bitset.clear t.free line;
    Bitset.set t.failed line;
    set_failed_lines t (failed_lines t + 1);
    set_free_lines t (free_lines t - 1);
    set_hole_bound t (min (hole_bound t) (free_lines t));
    `Was_free
  end
  else begin
    Bitset.set t.failed line;
    set_failed_lines t (failed_lines t + 1);
    t.live.(line) <- 0;
    `Was_live
  end
