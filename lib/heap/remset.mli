(** The remembered set for generational (sticky mark bits) collection.

    The write barrier logs stores that create old→young references; a
    nursery collection treats the logged sources as additional roots.
    Duplicate-filtering is approximated with a coarse hash filter, as
    production barriers do. *)

type t = {
  entries : Holes_stdx.Intvec.t;  (** source object ids *)
  mutable filter : int array;  (** coarse duplicate filter *)
  mutable barrier_hits : int;  (** total barrier slow-path executions *)
}

val create : unit -> t

val record : t -> src:int -> bool
(** Log a store of a reference to a nursery object into [src].  Returns
    [true] when a new entry was recorded (slow path taken). *)

val size : t -> int
(** Logged entries (after duplicate filtering). *)

val iter : t -> (int -> unit) -> unit
(** Iterate the logged source ids in record order. *)

val clear : t -> unit
(** Empty the set and reset the duplicate filter (end of collection). *)

val barrier_hits : t -> int
(** Total barrier slow-path executions since creation. *)
