(** The simulated object model.

    The reproduction does not run Java bytecode; workloads allocate
    {e simulated} objects through the VM.  Each object carries the fields
    the memory manager cares about: its heap address, size, pin state,
    reference edges into the live graph (driving trace costs and the
    remembered set), a mark epoch, and liveness (decided by the
    workload's death clock — see DESIGN.md).  Storage is
    structure-of-arrays with id recycling so multi-million-object runs
    stay cheap. *)

type t

val max_refs : int
(** Fan-out cap per object: keeps trace costs bounded and realistic, and
    makes the flat edge store a fixed stride. *)

val create : unit -> t

val alloc : t -> addr:int -> size:int -> pinned:bool -> los:bool -> int
(** Allocate a fresh object id (recycled where possible). *)

val addr : t -> int -> int
(** Heap address of the object, or [-1] once its slot was released. *)

val size : t -> int -> int

val is_alive : t -> int -> bool
(** The liveness oracle the collector traces by. *)

val is_pinned : t -> int -> bool
val is_los : t -> int -> bool

val is_nursery : t -> int -> bool
(** Allocated since the last (full or nursery) collection? *)

val nrefs : t -> int -> int
(** Outgoing edge count — the O(1) read the mark loop charges by. *)

val refs : t -> int -> int list
(** Outgoing edges as a list, newest first (the [add_ref] prepend
    order).  Builds a fresh list: diagnostic/test use only. *)

val kill : t -> int -> unit
(** The mutator's death: the object becomes unreachable.  Space is
    reclaimed later, by a collection. *)

val release : t -> int -> unit
(** Collector bookkeeping: recycle a dead object's slot once its space
    has been reclaimed.  Raises [Invalid_argument] on a live object. *)

val relocate : t -> int -> new_addr:int -> unit
(** Object relocation (evacuation / nursery copy). *)

val los_object_at : t -> page:int -> int option
(** The LOS object occupying heap page [page] (address / 4 KB), dead or
    alive, if any — the constant-time victim lookup for dynamic
    failures. *)

val clear_nursery_flag : t -> int -> unit

val add_ref : t -> src:int -> dst:int -> unit
(** Record an outgoing edge (dropped silently past [max_refs]). *)

val set_mark : t -> int -> int -> unit
(** [set_mark t id epoch] stamps the object's mark epoch. *)

val marked : t -> int -> int -> bool
(** [marked t id epoch] — was the object marked in [epoch]? *)

val live_count : t -> int
val live_bytes : t -> int

val iter_slots : t -> (int -> unit) -> unit
(** Iterate, in ascending id order, over every slot that currently holds
    an object (alive or dead-awaiting-collection).  This single order is
    what keeps collection charge sequences bit-identical across runs. *)
