(** The VM's stock of OS-granted pages, with the fussy/relaxed
    discipline and debit–credit accounting of paper Sec. 5.

    The VM acquires pages via [mmap_imperfect]-style grants; each page
    carries a failure bitmap (one bit per 64 B PCM line).  Virtual
    address translation lets the OS compose any set of physical pages
    into a contiguous virtual range, so {e perfect} pages are a fungible
    resource: what matters is how many remain, not where they sit
    ("virtual address translation transparently removes any problem of
    page-level fragmentation", Sec. 6.1).

    - Relaxed allocators (Immix blocks) draw imperfect pages first,
      conserving perfect ones; a perfect page offered to a relaxed
      allocator while debt is outstanding is surrendered to repay one
      page of debt.
    - Fussy allocators (LOS, overflow fallback) demand perfect pages;
      when none remain they receive a borrowed DRAM page and the process
      goes one page into debt.

    The record fields are exposed for the heap verifier, which replays
    the pool discipline and accounting from scratch; allocators go
    through the functions below. *)

type page = {
  id : int;
  bitmap : Holes_stdx.Bitset.t;
  mutable failed_lines : int;  (** failed 64 B PCM lines *)
  mutable usable_logical : int;
      (** logical (collector-line-size) lines with no failed PCM line;
          a page with none is {e dead} for this run and never circulates *)
}

type t = {
  pages : page array;
  line_size : int;  (** collector logical line size, for deadness *)
  mutable free_perfect : int list;  (** ascending address order *)
  mutable free_imperfect : int list;  (** ascending address order *)
  mutable dead : int list;  (** pages with no usable logical line *)
  mutable n_free_perfect : int;  (** [List.length free_perfect], O(1) *)
  mutable n_free_imperfect : int;  (** [List.length free_imperfect], O(1) *)
  mutable n_dead : int;  (** [List.length dead], O(1) *)
  mutable free_usable_lines : int;
      (** sum over free (perfect + imperfect) pages of their non-failed
          PCM lines — kept incrementally so [free_usable_bytes], which
          the LOS consults on every allocation, is O(1) instead of a
          fold over both pools *)
  accounting : Holes_osal.Accounting.t;
  mutable borrowed_in_use : int;
  mutable repaid_pages : int;  (** pages surrendered to repay debt *)
  mutable repaid : int list;
      (** ids of the surrendered pages: back with the OS, out of
          circulation for the rest of the run (the verifier accounts
          for them as a fourth page-ownership class) *)
  mutable max_borrowed : int;  (** DRAM borrow cap (DRAM is scarce, Sec. 2.3) *)
  mutable extra_free_bytes : unit -> int;
      (** free bytes held outside the stock (e.g. inside partially used
          collector blocks); part of the "has sufficient memory" test *)
}

val count_usable_logical : line_size:int -> Holes_stdx.Bitset.t -> int
(** Logical lines per page with no failed PCM line, from the page's 64-bit
    failure bitmap — one word-level pass (the verifier recomputes this
    per page to cross-check the cached [usable_logical]). *)

val create_of_bitmaps : ?line_size:int -> bitmaps:Holes_stdx.Bitset.t array -> unit -> t
(** Build a stock from per-page failure bitmaps — one [Bitset.t] of 64
    bits per granted page, exactly the shape [Vmm.map_failures] returns
    for each mapped virtual page.  [line_size] is the collector's
    logical line size: pages without a single usable logical line are
    quarantined as dead — they still count against the budget, exactly
    like the paper's unusable memory, but never circulate through the
    allocator. *)

val create : ?line_size:int -> device_map:Holes_stdx.Bitset.t -> npages:int -> unit -> t
(** Build a stock of [npages] pages whose line failures come from
    [device_map] (a bitmap over [npages * 64] PCM lines) — the static
    fault-injection grant path. *)

val set_extra_free : t -> (unit -> int) -> unit
(** Register the collector's view of free bytes held outside the stock
    (inside partially used blocks). *)

val set_max_borrowed : t -> int -> unit
(** Override the DRAM borrow cap. *)

val page : t -> int -> page
val npages : t -> int
val free_perfect_count : t -> int
val free_imperfect_count : t -> int
val free_pages : t -> int
val accounting : t -> Holes_osal.Accounting.t

val free_usable_bytes : t -> int
(** Total usable (non-failed) bytes across free pages — the allocator's
    view of how much memory a collection could still yield.  O(1): the
    line total is maintained incrementally as pages enter and leave the
    free pools. *)

val take_relaxed : t -> int option
(** Draw one page for a relaxed allocator.  Imperfect pages first; a
    perfect page is kept only if no debt is outstanding, otherwise it is
    surrendered as repayment and the next page is drawn. *)

type perfect_grant = Perfect of int | Borrowed | Exhausted

val take_perfect : t -> perfect_grant
(** Draw one perfect page for a fussy allocator; borrows DRAM (debt)
    when the perfect pool is empty.  Borrowing follows the paper's
    "allocator has sufficient memory" condition: each page of
    outstanding debt docks one page of the process's budget, so a
    borrow is granted only while the debt is covered by free stock
    pages (and within the hard DRAM cap).  Otherwise the grant is
    [Exhausted] and the caller must collect or fail. *)

val return_page : t -> int -> unit
(** Return a stock page to its pool (dead pages are quarantined). *)

val dead_count : t -> int
(** Pages quarantined as fully unusable. *)

val return_borrowed : t -> unit
(** Return a borrowed DRAM page (it leaves the process; debt remains
    until the relaxed allocator repays it). *)

val borrowed_in_use : t -> int
val repaid_pages : t -> int

val mark_line_failed : t -> id:int -> line:int -> unit
(** Record a {e dynamic} failure of 64 B PCM line [line] on page [id], so
    that future users of the page (reassembled blocks, swap decisions)
    see the hole.  A free perfect page that gains its first failure
    migrates to the imperfect pool. *)
