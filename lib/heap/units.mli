(** Heap geometry shared by every collector.

    The paper's configuration (Sec. 5): Immix blocks of 32 KB, logical
    lines of 64–256 B (256 B default), 4 KB OS pages, 64 B PCM lines. *)

val block_bytes : int
(** Immix block size in bytes (paper default 32 KB). *)

val pages_per_block : int
(** OS pages per Immix block: 8. *)

val align : int
(** Object alignment in bytes. *)

val los_threshold : int
(** Objects strictly larger than this go to the large object space.
    Immix delegates objects above 8 KB to the page-grained LOS. *)

val default_line_size : int
(** Default Immix logical line size (bytes); the paper also evaluates 64
    and 128. *)

val valid_line_size : int -> bool
(** Valid Immix line sizes: multiples of the 64 B PCM line that divide
    the block size. *)

val lines_per_block : line_size:int -> int
(** Logical lines per 32 KB block at the given line size. *)

val round_up : int -> int -> int
(** [round_up n to_] rounds [n] up to a multiple of [to_]. *)

val aligned_size : int -> int
(** Size of an allocation request after alignment. *)
