(** The simulated object model.

    The reproduction does not run Java bytecode; workloads allocate
    *simulated* objects through the VM.  Each object carries the fields
    the memory manager cares about: its heap address, size, pin state,
    reference edges into the live graph (driving trace costs and the
    remembered set), a mark epoch, and liveness (decided by the
    workload's death clock — see DESIGN.md).  Storage is
    structure-of-arrays with id recycling so multi-million-object runs
    stay cheap. *)

open Holes_stdx

type t = {
  mutable addr : int array;
  mutable size : int array;
  mutable flags : int array;
  mutable mark : int array;  (** epoch of last mark *)
  mutable ref_store : int array;
      (** outgoing edges (object ids), flat with stride [max_refs] per
          object — no list cells, and the per-object edge count the
          mark loop charges by is an O(1) read of [nref] *)
  mutable nref : int array;  (** per-object edge count (<= [max_refs]) *)
  mutable cap : int;
  mutable next_fresh : int;
  free_ids : Intvec.t;
  mutable live_count : int;
  mutable live_bytes : int;
  los_pages : (int, int) Hashtbl.t;
      (** heap page number (addr / 4 KB) -> LOS object id occupying it;
          LOS objects are page-grained and page-aligned, so the map is a
          bijection over occupied pages.  Replaces the O(live-set)
          [iter_slots] victim scans on the dynamic-failure and
          relocation paths. *)
}

let flag_alive = 1
let flag_pinned = 2
let flag_nursery = 4  (* allocated since the last (full or nursery) collection *)
let flag_los = 8

(* fan-out cap: keeps trace costs bounded and realistic, and makes the
   flat edge store a fixed stride *)
let max_refs = 8

let create () : t =
  let cap = 1024 in
  {
    addr = Array.make cap (-1);
    size = Array.make cap 0;
    flags = Array.make cap 0;
    mark = Array.make cap (-1);
    ref_store = Array.make (cap * max_refs) 0;
    nref = Array.make cap 0;
    cap;
    next_fresh = 0;
    free_ids = Intvec.create ();
    live_count = 0;
    live_bytes = 0;
    los_pages = Hashtbl.create 64;
  }

let grow (t : t) : unit =
  let cap = t.cap * 2 in
  let extend a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 t.cap;
    b
  in
  t.addr <- extend t.addr (-1);
  t.size <- extend t.size 0;
  t.flags <- extend t.flags 0;
  t.mark <- extend t.mark (-1);
  (let b = Array.make (cap * max_refs) 0 in
   Array.blit t.ref_store 0 b 0 (t.cap * max_refs);
   t.ref_store <- b);
  t.nref <- extend t.nref 0;
  t.cap <- cap

let page_bytes = Holes_pcm.Geometry.page_bytes

(* Pages spanned by a page-aligned LOS allocation (page-granular sizing,
   matching Los.pages_needed). *)
let los_page_range ~(addr : int) ~(size : int) : int * int =
  let first = addr / page_bytes in
  let npages = (size + page_bytes - 1) / page_bytes in
  (first, first + max 1 npages - 1)

let index_los_pages (t : t) ~(addr : int) ~(size : int) ~(id : int) : unit =
  let lo, hi = los_page_range ~addr ~size in
  for p = lo to hi do
    Hashtbl.replace t.los_pages p id
  done

let deindex_los_pages (t : t) ~(addr : int) ~(size : int) : unit =
  let lo, hi = los_page_range ~addr ~size in
  for p = lo to hi do
    Hashtbl.remove t.los_pages p
  done

(** Allocate a fresh object id (recycled where possible). *)
let alloc (t : t) ~(addr : int) ~(size : int) ~(pinned : bool) ~(los : bool) : int =
  let id =
    let id = Intvec.pop_or t.free_ids ~default:(-1) in
    if id >= 0 then id
    else begin
      if t.next_fresh = t.cap then grow t;
      let id = t.next_fresh in
      t.next_fresh <- t.next_fresh + 1;
      id
    end
  in
  t.addr.(id) <- addr;
  t.size.(id) <- size;
  t.flags.(id) <-
    flag_alive lor flag_nursery lor (if pinned then flag_pinned else 0)
    lor (if los then flag_los else 0);
  t.mark.(id) <- -1;
  t.nref.(id) <- 0;
  t.live_count <- t.live_count + 1;
  t.live_bytes <- t.live_bytes + size;
  if los then index_los_pages t ~addr ~size ~id;
  id

let addr (t : t) (id : int) : int = t.addr.(id)
let size (t : t) (id : int) : int = t.size.(id)
let is_alive (t : t) (id : int) : bool = t.flags.(id) land flag_alive <> 0
let is_pinned (t : t) (id : int) : bool = t.flags.(id) land flag_pinned <> 0
let is_nursery (t : t) (id : int) : bool = t.flags.(id) land flag_nursery <> 0
let is_los (t : t) (id : int) : bool = t.flags.(id) land flag_los <> 0

(** Outgoing edge count — the O(1) read the mark loop charges by. *)
let[@inline] nrefs (t : t) (id : int) : int = Array.unsafe_get t.nref id

(** Outgoing edges as a list, newest first (the [add_ref] prepend
    order).  Builds a fresh list: diagnostic/test use only. *)
let refs (t : t) (id : int) : int list =
  let n = t.nref.(id) in
  let base = id * max_refs in
  let rec go i acc = if i >= n then acc else go (i + 1) (t.ref_store.(base + i) :: acc) in
  go 0 []

(** The mutator's death: the object becomes unreachable.  Space is
    reclaimed later, by a collection. *)
let kill (t : t) (id : int) : unit =
  if is_alive t id then begin
    t.flags.(id) <- t.flags.(id) land lnot flag_alive;
    t.nref.(id) <- 0;
    t.live_count <- t.live_count - 1;
    t.live_bytes <- t.live_bytes - t.size.(id)
  end

(** Collector bookkeeping: recycle a dead object's slot once its space
    has been reclaimed. *)
let release (t : t) (id : int) : unit =
  if is_alive t id then invalid_arg "Object_table.release: object still alive";
  if t.addr.(id) >= 0 then begin
    if is_los t id then deindex_los_pages t ~addr:t.addr.(id) ~size:t.size.(id);
    t.addr.(id) <- -1;
    Intvec.push t.free_ids id
  end

(** Object relocation (evacuation / nursery copy). *)
let relocate (t : t) (id : int) ~(new_addr : int) : unit =
  if is_los t id && t.addr.(id) >= 0 then begin
    deindex_los_pages t ~addr:t.addr.(id) ~size:t.size.(id);
    index_los_pages t ~addr:new_addr ~size:t.size.(id) ~id
  end;
  t.addr.(id) <- new_addr

(** The LOS object occupying heap page [page] (address / 4 KB), dead or
    alive, if any — the constant-time victim lookup for dynamic
    failures. *)
let los_object_at (t : t) ~(page : int) : int option = Hashtbl.find_opt t.los_pages page

let clear_nursery_flag (t : t) (id : int) : unit =
  t.flags.(id) <- t.flags.(id) land lnot flag_nursery

let add_ref (t : t) ~(src : int) ~(dst : int) : unit =
  let n = t.nref.(src) in
  if n < max_refs then begin
    t.ref_store.((src * max_refs) + n) <- dst;
    t.nref.(src) <- n + 1
  end

let set_mark (t : t) (id : int) (epoch : int) : unit = t.mark.(id) <- epoch
let marked (t : t) (id : int) (epoch : int) : bool = t.mark.(id) = epoch

let live_count (t : t) : int = t.live_count
let live_bytes (t : t) : int = t.live_bytes

(** Iterate over every slot that currently holds an object (alive or
    dead-awaiting-collection). *)
let iter_slots (t : t) (f : int -> unit) : unit =
  for id = 0 to t.next_fresh - 1 do
    if t.addr.(id) >= 0 then f id
  done
