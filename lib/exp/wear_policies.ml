(** The Sec. 7.2 ablation, live: wear-leveling *stages* in the device's
    translation pipeline versus the failure-aware runtime.

    Unlike the retired synthetic version (which compared hand-built
    leveled/unleveled failure maps, see {!Wear_ablation.wear_map}), this
    experiment runs the actual pipeline end to end on the device
    backend: every heap line store flows logical → wear-leveling stage →
    clustering redirect → cells, lines wear out under the configured
    leveling policy, and each failure travels the device → failure
    buffer → interrupt → up-call chain back into the runtime.

    The grid is {none, start-gap, random-remap, decoder-swap} ×
    {uniform, correlated, variation} boot-failure models.  The paper's
    claim (wear leveling considered harmful, Sec. 7.2) shows up as
    direction, not as a single number:

    - start-gap buys no lifetime at all — it reaches end-of-life in the
      same number of rounds as hole tolerance alone while issuing ~6%
      more device writes (gap copies) and costing ~10% more time per
      round, because the heap's own allocation rotation already levels
      the traffic the rotation would have leveled;
    - the remapping policies (random-remap / decoder-swap) defer the
      wear cliff, but they do it by scattering the deaths: the mean
      contiguous dead-line run collapses from hundreds of lines to
      single digits (the [frag] column), which is exactly the failure
      shape hole tolerance handles worst — every block ends up
      perforated, and whole-life time per round rises 10–20% over
      [none] even though fewer lines have died.

    Quick runs cap the round count for CI; [--full] runs every cell to
    device end-of-life, which is where the whole-life overhead ratios
    are meaningful. *)

open Holes_stdx
module Cfg = Holes.Config
module Wl = Holes_pcm.Wear_level
module Fm = Holes_pcm.Failure_model

let psi = 64

let policies : (string * Wl.policy option) list =
  [
    ("none", None);
    ("start-gap", Some (Wl.Start_gap { psi }));
    ("random-remap", Some (Wl.Random_remap { psi }));
    ("decoder-swap", Some (Wl.Decoder_swap { psi }));
  ]

(** Boot-failure models: the state the module is in when the workload
    starts.  Uniform is the paper's map; correlated and variation are
    the PR-5 adversaries (static maps, so they compose with any
    wear-leveling stage). *)
let models : (string * Cfg.failure_model) list =
  [
    ("uniform", Cfg.From_dist);
    ("correlated", Cfg.Model (Fm.Correlated { mean_cluster = 4.0; region_lines = 64 }));
    ("variation", Cfg.Model (Fm.Variation { cov = 0.3; shape = Holes_pcm.Wear.Lognormal }));
  ]

let cell_cfg ~(model : Cfg.failure_model) ~(policy : Wl.policy option) : Cfg.t =
  let d = Cfg.default_device in
  (* endurance low enough that lines die mid-run; clustering on (the
     paper's proposed hardware), so the redirect stage is live and the
     leveling stage composes above it *)
  let wear = { d.Cfg.wear with Holes_pcm.Wear.mean_endurance = 12.0 } in
  {
    Figures.base_six with
    Cfg.backend = Cfg.Device { d with Cfg.wear; clustering = Some 2 };
    failure_rate = 0.10;
    failure_model = model;
    wear_level = policy;
  }

exception Worn_out

(** What one cell measured: lifetime in workload rounds, the accumulated
    cost-model time of the completed rounds, and a postmortem of the
    dead logical lines — how many, and in how many contiguous runs.
    [dead_lines /. dead_runs] is the mean dead-run length, the
    fragmentation signal: clustered deaths retire whole blocks, while
    scattered deaths perforate every block. *)
type outcome = {
  rounds : int;
  elapsed_ms : float;
  dead_lines : int;
  dead_runs : int;
  m : Holes.Metrics.t;
}

(** Like {!Wear_lifetime.rounds_until_wearout}, but also accumulates the
    cost-model time of the completed rounds so cells can report
    time-per-round (the GC-overhead signal) next to lifetime.  Both are
    virtual quantities — deterministic for a given config at any [-j]. *)
let lifetime_run ~(cfg : Cfg.t) ~(profile : Holes_workload.Profile.t) ~(scale : float)
    ~(max_rounds : int) : outcome =
  let profile = Holes_workload.Profile.scaled profile scale in
  let vm = Holes.Vm.create ~cfg ~min_heap_bytes:(Holes_workload.Profile.min_heap profile) () in
  let rounds = ref 0 in
  let elapsed = ref 0.0 in
  (try
     while !rounds < max_rounds do
       let rng = Xrng.of_seed (cfg.Cfg.seed + (31 * !rounds)) in
       let res = Holes_workload.Generator.run ~rng vm profile in
       if not res.Holes_workload.Generator.completed then raise Worn_out;
       incr rounds;
       elapsed := !elapsed +. res.Holes_workload.Generator.elapsed_ms;
       let objs = Holes.Vm.objects vm in
       Holes_heap.Object_table.iter_slots objs (fun id ->
           if Holes_heap.Object_table.is_alive objs id then Holes.Vm.kill vm id);
       Holes.Vm.collect vm ~full:true
     done
   with Worn_out | Holes.Vm.Out_of_memory -> ());
  Holes.Vm.sync_backend_stats vm;
  let dead_lines = ref 0 and dead_runs = ref 0 in
  (match Holes.Vm.device_state vm with
  | None -> ()
  | Some st ->
      let dev = st.Holes.Memory_backend.device in
      let prev = ref false in
      for l = 0 to Holes_pcm.Device.nlines dev - 1 do
        let dead = not (Holes_pcm.Device.line_usable dev l) in
        if dead then incr dead_lines;
        if dead && not !prev then incr dead_runs;
        prev := dead
      done);
  {
    rounds = !rounds;
    elapsed_ms = !elapsed;
    dead_lines = !dead_lines;
    dead_runs = !dead_runs;
    m = Holes.Vm.metrics vm;
  }

type cell = {
  rounds : int;
  ms_per_round : float option;
  frag : float option;  (** mean contiguous dead-run length *)
  m : Holes.Metrics.t option;
}

(** Rounds survived and time-per-round for every policy × model cell,
    plus the leveling stage's own activity under the uniform model.
    One engine job per cell; a cell depends only on its config, so the
    table is bit-identical at any [-j]. *)
let table ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create
      ~title:
        "Sec. 7.2 live — wear-leveling stages vs the failure-aware runtime (S-IX L256, \
         device backend, clustering on, low endurance)"
      ~headers:
        [ "policy"; "uniform"; "correlated"; "variation"; "frag"; "wear CoV"; "remaps+moves" ]
      ~aligns:
        [
          Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right;
        ]
      ()
  in
  let profile = Holes_workload.Dacapo.pmd in
  (* full runs every cell to device end-of-life (the remapping policies
     take ~5x longer to die than [none]); quick caps the rounds for CI *)
  let max_rounds = if Runner.is_full params then 40 else 8 in
  let grid =
    List.concat_map
      (fun (_, policy) -> List.map (fun (_, model) -> (policy, model)) models)
      policies
  in
  let specs =
    Array.of_list
      (List.map
         (fun (policy, model) ->
           {
             Holes_engine.Job.cfg = cell_cfg ~model ~policy;
             profile;
             (* fixed scale: the wear operating point (endurance versus
                per-round traffic) must be the same in quick and full
                runs — full only extends the round cap to end-of-life *)
             scale = 0.125;
             seed_index = 0;
           })
         grid)
  in
  let results =
    Holes_engine.Engine.run ~jobs:params.Runner.jobs
      ?sink:(Runner.current_sink ())
      ~metrics:(fun (o : outcome) ->
        [
          ("rounds", float_of_int o.rounds);
          ("round_ms", o.elapsed_ms);
          ("dead_lines", float_of_int o.dead_lines);
          ("dead_runs", float_of_int o.dead_runs);
          ("device_writes", float_of_int o.m.Holes.Metrics.device_writes);
          ("device_line_failures", float_of_int o.m.Holes.Metrics.device_line_failures);
          ("wear_cov", o.m.Holes.Metrics.wear_cov);
          ("wl_gap_moves", float_of_int o.m.Holes.Metrics.wl_gap_moves);
          ("wl_remaps", float_of_int o.m.Holes.Metrics.wl_remaps);
        ])
      ~f:(fun spec ~seed:_ ->
        (* like wear_lifetime: the round RNG derives from cfg.seed, so a
           cell is a pure function of its spec *)
        lifetime_run ~cfg:spec.Holes_engine.Job.cfg ~profile:spec.Holes_engine.Job.profile
          ~scale:spec.Holes_engine.Job.scale ~max_rounds)
      specs
  in
  let cell_of i =
    match results.(i).Holes_engine.Engine.outcome with
    | Holes_engine.Pool.Done o ->
        {
          rounds = o.rounds;
          ms_per_round =
            (if o.rounds > 0 then Some (o.elapsed_ms /. float_of_int o.rounds) else None);
          frag =
            (if o.dead_runs > 0 then
               Some (float_of_int o.dead_lines /. float_of_int o.dead_runs)
             else None);
          m = Some o.m;
        }
    | Holes_engine.Pool.Failed _ ->
        { rounds = 0; ms_per_round = None; frag = None; m = None }
  in
  let nmodels = List.length models in
  let cells = Array.init (Array.length specs) cell_of in
  (* time-per-round baselines: the [none] row, per model *)
  let base = Array.init nmodels (fun mi -> cells.(mi).ms_per_round) in
  List.iteri
    (fun pi (pname, _) ->
      let fmt_cell mi =
        let c = cells.((pi * nmodels) + mi) in
        let rounds =
          if c.rounds >= max_rounds then Printf.sprintf ">=%d" c.rounds
          else string_of_int c.rounds
        in
        match (c.ms_per_round, base.(mi)) with
        | Some ms, Some b when b > 0.0 -> Printf.sprintf "%s rd @ %.2fx" rounds (ms /. b)
        | Some _, _ -> Printf.sprintf "%s rd" rounds
        | None, _ -> "DNF"
      in
      (* fragmentation + pipeline activity from the uniform-model cell *)
      let u = cells.(pi * nmodels) in
      let frag = match u.frag with Some f -> Printf.sprintf "%.1f" f | None -> "-" in
      let cov, activity =
        match u.m with
        | Some m ->
            ( Printf.sprintf "%.3f" m.Holes.Metrics.wear_cov,
              string_of_int (m.Holes.Metrics.wl_remaps + m.Holes.Metrics.wl_gap_moves) )
        | None -> ("-", "-")
      in
      Table.add_row t
        [ pname; fmt_cell 0; fmt_cell 1; fmt_cell 2; frag; cov; activity ])
    policies;
  t
