(** Synthetic wear-out failure maps (test-only cross-check).

    This used to be the Sec. 7.2 "Wear Leveling Considered Harmful"
    ablation.  The headline result now comes from {!Wear_policies},
    which runs actual leveling stages in the device's translation
    pipeline; what remains here is the closed-form wear model it is
    cross-checked against: a live start-gap stage should reproduce the
    uniform-scatter failure pattern of [wear_map ~leveled:true]
    (statistically, on failure-location dispersion — see
    [test/test_translate.ml]), while unleveled traffic concentrates
    failures into hot pages.

    Model: per-line endurance is lognormal (process variation); write
    traffic is Zipf-distributed over 4 KB pages (unleveled) or uniform
    (leveled).  A line fails when its accumulated writes exceed its
    endurance, so for a target failure count k the k lines with the
    smallest endurance/traffic ratio fail — no time-stepping needed. *)

open Holes_stdx

(** Build a wear-out failure map with exactly [round (rate*nlines)]
    failures.  [leveled] selects uniform (wear-leveled) vs Zipf
    page-local (unleveled) write traffic. *)
let wear_map (rng : Xrng.t) ~(nlines : int) ~(rate : float) ~(leveled : bool) : Bitset.t =
  let lpp = Holes_pcm.Geometry.lines_per_page in
  let npages = (nlines + lpp - 1) / lpp in
  let page_weight =
    if leveled then fun _ -> 1.0
    else begin
      (* Zipf traffic over pages, shuffled so hot pages are scattered *)
      let order = Array.init npages Fun.id in
      Xrng.shuffle rng order;
      let w = Array.make npages 0.0 in
      Array.iteri (fun rank page -> w.(page) <- 1.0 /. ((float_of_int rank +. 1.0) ** 0.9)) order;
      fun p -> w.(p)
    end
  in
  (* failure order: ascending endurance / traffic *)
  let score =
    Array.init nlines (fun i ->
        let endurance = Dist.lognormal rng ~mu:0.0 ~sigma:0.25 in
        let traffic = page_weight (i / lpp) in
        (endurance /. traffic, i))
  in
  Array.sort compare score;
  let k = int_of_float (Float.round (rate *. float_of_int nlines)) in
  let map = Bitset.create nlines in
  for j = 0 to k - 1 do
    Bitset.set map (snd score.(j))
  done;
  map

(** Failure-location dispersion of a map: mean run length of contiguous
    failed lines.  Clustered wear produces long runs; uniform scatter
    drives it toward 1/(1-rate).  The live-vs-synthetic cross-check in
    [test/test_translate.ml] compares this statistic directly. *)
let mean_failed_run (map : Bitset.t) : float =
  let n = Bitset.length map in
  let runs = ref 0 and failed = ref 0 in
  let in_run = ref false in
  for i = 0 to n - 1 do
    if Bitset.get map i then begin
      incr failed;
      if not !in_run then incr runs;
      in_run := true
    end
    else in_run := false
  done;
  if !runs = 0 then 0.0 else float_of_int !failed /. float_of_int !runs

(** Human-readable fragmentation statistic of a map. *)
let describe (map : Bitset.t) : string =
  Printf.sprintf "mean failed-run %.2f lines, %d perfect pages" (mean_failed_run map)
    (Holes_pcm.Failure_map.perfect_pages map)
