(** Drivers reproducing every figure and table of the paper's evaluation
    (Sec. 6).  Each function runs the necessary configurations through
    {!Runner} (memoized) and renders a {!Holes_stdx.Table}; shapes — who
    wins, by what factor, where crossovers fall — are the reproduction
    target (see EXPERIMENTS.md for the paper-vs-measured record).

    Every figure first {!Runner.prefetch}es its *whole* grid, so with
    [params.jobs > 1] all trials of the figure shard across the engine's
    domain pool at once; the per-cell {!Runner.run} calls below then hit
    the memo cache.  Cell values are independent of [jobs]. *)

open Holes_stdx
module Cfg = Holes.Config
module W = Holes_workload

let suite = W.Dacapo.suite
let suite_buggy = W.Dacapo.suite_with_buggy

(* Heap factors swept in heap-size figures (the paper sweeps 1–6× min). *)
let heap_factors = [ 1.33; 1.5; 2.0; 2.5; 3.0; 4.0; 6.0 ]

let base_six = { Cfg.default with Cfg.collector = Cfg.Sticky_immix; line_size = 256 }

let fmt_ratio = function None -> "DNF" | Some r -> Printf.sprintf "%.3f" r

(* per-benchmark normalized time of cfg vs base; None on DNF *)
let ratio ~params ~cfg ~base profile =
  let o = Runner.run ~params ~cfg ~profile () in
  let b = Runner.run ~params ~cfg:base ~profile () in
  match (Runner.time_if_all_completed o, Runner.time_if_all_completed b) with
  | Some t, Some tb when tb > 0.0 -> Some (t /. tb)
  | _ -> None

let geo ~params ~cfg ~base profiles =
  Runner.geomean_normalized ~params ~cfg ~base ~profiles ()

(* run a figure's full grid through the engine before rendering *)
let prefetch ~params ?(profiles = suite) (cfgs : Cfg.t list) : unit =
  Runner.prefetch ~params ~cfgs ~profiles ()

(* ------------------------------------------------------------------ *)

(** Fig. 3: total time of MS, IX, S-MS, S-IX across heap sizes (no
    failures) — motivates Sticky Immix as the baseline. *)
let fig3 ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create ~title:"Fig. 3 — collector comparison, geomean time normalized to S-IX @ 6x"
      ~headers:[ "heap"; "MS"; "IX"; "S-MS"; "S-IX" ] ()
  in
  let base = { base_six with Cfg.heap_factor = 6.0 } in
  let collectors = [ Cfg.Mark_sweep; Cfg.Immix; Cfg.Sticky_ms; Cfg.Sticky_immix ] in
  let cell_cfg coll h = { base_six with Cfg.collector = coll; heap_factor = h } in
  prefetch ~params
    (base :: List.concat_map (fun h -> List.map (fun c -> cell_cfg c h) collectors) heap_factors);
  List.iter
    (fun h ->
      let cell coll = fmt_ratio (geo ~params ~cfg:(cell_cfg coll h) ~base suite) in
      Table.add_row t
        [ Printf.sprintf "%.2fx" h; cell Cfg.Mark_sweep; cell Cfg.Immix; cell Cfg.Sticky_ms;
          cell Cfg.Sticky_immix ])
    heap_factors;
  t

(** Fig. 4: per-benchmark overhead of failure-aware S-IX with two-page
    clustering at 0/10/25/50% failures, 2x heap, normalized to
    unmodified S-IX.  The buggy lusearch is reported but excluded from
    the geomean, as in the paper. *)
let fig4 ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create ~title:"Fig. 4 — S-IX^PCM_2CL overhead vs failure rate (2x heap)"
      ~headers:[ "benchmark"; "0%"; "10%"; "25%"; "50%" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ] ()
  in
  let cfg_at f =
    if f = 0.0 then base_six
    else { base_six with Cfg.failure_rate = f; failure_dist = Cfg.Hw_cluster 2 }
  in
  let rates = [ 0.0; 0.10; 0.25; 0.50 ] in
  prefetch ~params ~profiles:suite_buggy (base_six :: List.map cfg_at rates);
  List.iter
    (fun p ->
      let cells = List.map (fun f -> fmt_ratio (ratio ~params ~cfg:(cfg_at f) ~base:base_six p)) rates in
      let name = p.W.Profile.name in
      let name = if name = "lusearch" then "lusearch (buggy)" else name in
      Table.add_row t (name :: cells))
    suite_buggy;
  let geos = List.map (fun f -> fmt_ratio (geo ~params ~cfg:(cfg_at f) ~base:base_six suite)) rates in
  Table.add_row t ("geomean" :: geos);
  t

(** Fig. 5: the compensation study at 10% failures (no clustering unless
    stated), across heap sizes; normalized to the no-failure baseline at
    6x. *)
let fig5 ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create ~title:"Fig. 5 — memory reduction vs fragmentation (10% failures)"
      ~headers:[ "heap"; "S-IX^PCM (0%)"; "10% NoComp"; "10% Comp"; "10% 2CL Comp" ] ()
  in
  let base = { base_six with Cfg.heap_factor = 6.0 } in
  let cfgs_at h =
    [
      { base_six with Cfg.heap_factor = h };
      { base_six with Cfg.heap_factor = h; failure_rate = 0.10; compensate = false };
      { base_six with Cfg.heap_factor = h; failure_rate = 0.10 };
      { base_six with Cfg.heap_factor = h; failure_rate = 0.10; failure_dist = Cfg.Hw_cluster 2 };
    ]
  in
  prefetch ~params (base :: List.concat_map cfgs_at heap_factors);
  List.iter
    (fun h ->
      let at cfg = fmt_ratio (geo ~params ~cfg ~base suite) in
      match cfgs_at h with
      | [ f0; nocomp; comp; cl2 ] ->
          Table.add_row t [ Printf.sprintf "%.2fx" h; at f0; at nocomp; at comp; at cl2 ]
      | _ -> assert false)
    heap_factors;
  t

(** Fig. 6(a): Immix line size on the failure-free baseline across heap
    sizes. *)
let fig6a ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create ~title:"Fig. 6a — line size effect, no failures (normalized to L256 @ 6x)"
      ~headers:[ "heap"; "S-IX L64"; "S-IX L128"; "S-IX L256" ] ()
  in
  let base = { base_six with Cfg.heap_factor = 6.0 } in
  let cell_cfg l h = { base_six with Cfg.line_size = l; heap_factor = h } in
  prefetch ~params
    (base
    :: List.concat_map (fun h -> List.map (fun l -> cell_cfg l h) [ 64; 128; 256 ]) heap_factors);
  List.iter
    (fun h ->
      let at l = fmt_ratio (geo ~params ~cfg:(cell_cfg l h) ~base suite) in
      Table.add_row t [ Printf.sprintf "%.2fx" h; at 64; at 128; at 256 ])
    heap_factors;
  t

(** Fig. 6(b): the same three line sizes at 10% uniform failures, no
    clustering — false failures penalize large lines. *)
let fig6b ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create ~title:"Fig. 6b — line size effect at 10% failures (normalized to S-IX L256 @ 6x)"
      ~headers:[ "heap"; "S-IX (L256,0%)"; "PCM L64"; "PCM L128"; "PCM L256" ] ()
  in
  let base = { base_six with Cfg.heap_factor = 6.0 } in
  let pcm_cfg l h = { base_six with Cfg.line_size = l; heap_factor = h; failure_rate = 0.10 } in
  prefetch ~params
    (base
    :: List.concat_map
         (fun h ->
           { base_six with Cfg.heap_factor = h }
           :: List.map (fun l -> pcm_cfg l h) [ 64; 128; 256 ])
         heap_factors);
  List.iter
    (fun h ->
      let at l = fmt_ratio (geo ~params ~cfg:(pcm_cfg l h) ~base suite) in
      let f0 = fmt_ratio (geo ~params ~cfg:{ base_six with Cfg.heap_factor = h } ~base suite) in
      Table.add_row t [ Printf.sprintf "%.2fx" h; f0; at 64; at 128; at 256 ])
    heap_factors;
  t

(** Fig. 7: failure-rate sweep at a fixed 2x heap for the three line
    sizes (no clustering): the false-failure crossover. *)
let fig7 ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create ~title:"Fig. 7 — failure sweep at 2x heap (normalized to S-IX L256, 0%)"
      ~headers:[ "failures"; "L64"; "L128"; "L256" ] ()
  in
  let rates = [ 0.0; 0.05; 0.10; 0.15; 0.20; 0.25; 0.30; 0.35; 0.40; 0.45; 0.50 ] in
  let cell_cfg l f = { base_six with Cfg.line_size = l; failure_rate = f } in
  prefetch ~params
    (base_six :: List.concat_map (fun f -> List.map (fun l -> cell_cfg l f) [ 64; 128; 256 ]) rates);
  List.iter
    (fun f ->
      let at l = fmt_ratio (geo ~params ~cfg:(cell_cfg l f) ~base:base_six suite) in
      Table.add_row t [ Printf.sprintf "%.0f%%" (f *. 100.0); at 64; at 128; at 256 ])
    rates;
  t

(** Fig. 8: the failure-clustering limit study — failures arrive in
    aligned 2^N clusters from 64 B to 16 KB. *)
let fig8 ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create ~title:"Fig. 8 — clustered-failure limit study, L256 @ 2x (normalized to S-IX)"
      ~headers:[ "cluster"; "10%"; "25%"; "50%" ] ()
  in
  let granules = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ] in
  let rates = [ 0.10; 0.25; 0.50 ] in
  let cell_cfg g f = { base_six with Cfg.failure_rate = f; failure_dist = Cfg.Granule g } in
  prefetch ~params
    (base_six :: List.concat_map (fun g -> List.map (fun f -> cell_cfg g f) rates) granules);
  List.iter
    (fun g ->
      let at f = fmt_ratio (geo ~params ~cfg:(cell_cfg g f) ~base:base_six suite) in
      let label =
        let bytes = g * Holes_pcm.Geometry.line_bytes in
        if bytes >= 1024 then Printf.sprintf "%dKB" (bytes / 1024) else Printf.sprintf "%dB" bytes
      in
      Table.add_row t [ label; at 0.10; at 0.25; at 0.50 ])
    granules;
  t

let clustering_configs =
  [ ("none", Cfg.Uniform); ("1CL", Cfg.Hw_cluster 1); ("2CL", Cfg.Hw_cluster 2) ]

(* the fig9 grid (shared by 9a and 9b): clustering × line size × rate *)
let fig9_cfg dist l f =
  if f = 0.0 then { base_six with Cfg.line_size = l }
  else { base_six with Cfg.line_size = l; failure_rate = f; failure_dist = dist }

let fig9_grid () : Cfg.t list =
  base_six
  :: List.concat_map
       (fun (_, dist) ->
         List.concat_map
           (fun l -> List.map (fun f -> fig9_cfg dist l f) [ 0.0; 0.10; 0.25; 0.50 ])
           [ 64; 128; 256 ])
       clustering_configs

(** Fig. 9(a): proposed clustering hardware — performance for line sizes
    × clustering × failure rate. *)
let fig9a ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create ~title:"Fig. 9a — hardware clustering: geomean time (normalized to S-IX)"
      ~headers:[ "config"; "0%"; "10%"; "25%"; "50%" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ] ()
  in
  prefetch ~params (fig9_grid ());
  List.iter
    (fun (cname, dist) ->
      List.iter
        (fun l ->
          let at f = fmt_ratio (geo ~params ~cfg:(fig9_cfg dist l f) ~base:base_six suite) in
          Table.add_row t
            [ Printf.sprintf "%s L%d" cname l; at 0.0; at 0.10; at 0.25; at 0.50 ])
        [ 64; 128; 256 ])
    clustering_configs;
  t

(** Fig. 9(b): demand for perfect pages (borrowed DRAM pages per run,
    mean over benchmarks). *)
let fig9b ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create ~title:"Fig. 9b — borrowed (perfect-page) demand, mean pages per run"
      ~headers:[ "config"; "0%"; "10%"; "25%"; "50%" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ] ()
  in
  prefetch ~params (fig9_grid ());
  List.iter
    (fun (cname, dist) ->
      List.iter
        (fun l ->
          let at f =
            let cfg = fig9_cfg dist l f in
            let vals =
              List.filter_map
                (fun p ->
                  let o = Runner.run ~params ~cfg ~profile:p () in
                  if o.Runner.completed > 0 then Some o.Runner.mean_borrowed else None)
                suite
            in
            match vals with [] -> "DNF" | _ -> Printf.sprintf "%.1f" (Stats.mean vals)
          in
          Table.add_row t
            [ Printf.sprintf "%s L%d" cname l; at 0.0; at 0.10; at 0.25; at 0.50 ])
        [ 64; 128; 256 ])
    clustering_configs;
  t

(** Fig. 10: per-benchmark results for one- and two-page clustering. *)
let fig10 ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create ~title:"Fig. 10 — per-benchmark, 1CL vs 2CL (normalized to S-IX)"
      ~headers:
        [ "benchmark"; "1CL 10%"; "1CL 25%"; "1CL 50%"; "2CL 10%"; "2CL 25%"; "2CL 50%" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  let cell_cfg pages f =
    { base_six with Cfg.failure_rate = f; failure_dist = Cfg.Hw_cluster pages }
  in
  prefetch ~params
    (base_six
    :: List.concat_map (fun pages -> List.map (cell_cfg pages) [ 0.10; 0.25; 0.50 ]) [ 1; 2 ]);
  let cell pages f p = fmt_ratio (ratio ~params ~cfg:(cell_cfg pages f) ~base:base_six p) in
  List.iter
    (fun p ->
      Table.add_row t
        [ p.W.Profile.name; cell 1 0.10 p; cell 1 0.25 p; cell 1 0.50 p; cell 2 0.10 p;
          cell 2 0.25 p; cell 2 0.50 p ])
    suite;
  t

(** Sec. 4.2 pause table: full-heap collection cost at 2x heap (the
    paper: 7 ms average, 44 ms worst case for hsqldb, 14.7 GCs and
    1817 ms total on average). *)
let pauses ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create ~title:"Sec. 4.2 — full-heap collection cost (S-IX, 2x heap)"
      ~headers:[ "benchmark"; "total ms"; "GCs"; "mean full pause ms"; "max full pause ms" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ] ()
  in
  prefetch ~params [ base_six ];
  let totals = ref [] and gcs = ref [] and pause_means = ref [] in
  List.iter
    (fun p ->
      let o = Runner.run ~params ~cfg:base_six ~profile:p () in
      let total = match o.Runner.time_ms with Some s -> s.Stats.mean | None -> nan in
      let n = o.Runner.mean_full_gcs +. o.Runner.mean_nursery_gcs in
      totals := total :: !totals;
      gcs := n :: !gcs;
      if o.Runner.mean_full_pause_ms > 0.0 then pause_means := o.Runner.mean_full_pause_ms :: !pause_means;
      Table.add_row t
        [ p.W.Profile.name; Printf.sprintf "%.1f" total; Printf.sprintf "%.1f" n;
          Printf.sprintf "%.2f" o.Runner.mean_full_pause_ms;
          Printf.sprintf "%.2f" o.Runner.max_full_pause_ms ])
    suite;
  Table.add_row t
    [ "mean"; Printf.sprintf "%.1f" (Stats.mean !totals); Printf.sprintf "%.1f" (Stats.mean !gcs);
      (match !pause_means with [] -> "-" | l -> Printf.sprintf "%.2f" (Stats.mean l)); "-" ];
  t

(** Sec. 8 headline numbers: overhead with and without clustering at 10%
    and 50% failures. *)
let headline ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create ~title:"Headline — geomean overhead vs S-IX (2x heap)"
      ~headers:[ "config"; "10% failures"; "50% failures" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ] ()
  in
  let cell_cfg dist f = { base_six with Cfg.failure_rate = f; failure_dist = dist } in
  prefetch ~params
    (base_six
    :: List.concat_map
         (fun dist -> List.map (cell_cfg dist) [ 0.10; 0.50 ])
         [ Cfg.Uniform; Cfg.Hw_cluster 2 ]);
  let over dist f =
    match geo ~params ~cfg:(cell_cfg dist f) ~base:base_six suite with
    | None -> "DNF"
    | Some r -> Printf.sprintf "%+.1f%%" ((r -. 1.0) *. 100.0)
  in
  Table.add_row t [ "no clustering (uniform)"; over Cfg.Uniform 0.10; over Cfg.Uniform 0.50 ];
  Table.add_row t [ "2-page clustering"; over (Cfg.Hw_cluster 2) 0.10; over (Cfg.Hw_cluster 2) 0.50 ];
  t

(** Sensitivity of the failure-tolerance overhead to spatial correlation:
    geomean overhead under the {!Holes_pcm.Failure_model.Correlated}
    model as its mean cluster size sweeps 1 (uniform-like) to 16 lines,
    at 10% and 50% failed lines.  The paper's hardware clusters failures
    within a region; this sweep shows how much of the tolerance story
    depends on that clustering actually happening. *)
let sensitivity ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create
      ~title:"Sensitivity — geomean overhead vs mean failure-cluster size (S-IX, 2x heap)"
      ~headers:[ "mean cluster (64 B lines)"; "10% failures"; "50% failures" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ] ()
  in
  let clusters = [ 1.0; 2.0; 4.0; 8.0; 16.0 ] in
  let cell_cfg mc f =
    {
      base_six with
      Cfg.failure_rate = f;
      failure_model =
        Cfg.Model
          (Holes_pcm.Failure_model.Correlated { mean_cluster = mc; region_lines = 64 });
    }
  in
  prefetch ~params
    (base_six :: List.concat_map (fun mc -> List.map (cell_cfg mc) [ 0.10; 0.50 ]) clusters);
  let over mc f =
    match geo ~params ~cfg:(cell_cfg mc f) ~base:base_six suite with
    | None -> "DNF"
    | Some r -> Printf.sprintf "%+.1f%%" ((r -. 1.0) *. 100.0)
  in
  List.iter
    (fun mc -> Table.add_row t [ Printf.sprintf "%.0f" mc; over mc 0.10; over mc 0.50 ])
    clusters;
  t

(** Design-choice ablations (DESIGN.md §5): the Z-rays alternative to
    perfect-page large objects (paper Sec. 3.3.3), opportunistic nursery
    copying, and on-demand defragmentation. *)
let ablation ?(params = Runner.quick) () : Table.t =
  let t =
    Table.create ~title:"Ablations — geomean time vs S-IX and borrowed pages (2x heap)"
      ~headers:[ "config"; "time"; "borrowed pages" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ] ()
  in
  let u25 = { base_six with Cfg.failure_rate = 0.25 } in
  let cl50 = { base_six with Cfg.failure_rate = 0.50; failure_dist = Cfg.Hw_cluster 2 } in
  let rows =
    [
      ("LOS, 25% uniform", u25);
      ("Z-rays, 25% uniform", { u25 with Cfg.arraylets = true });
      ("LOS, 50% 2CL", cl50);
      ("Z-rays, 50% 2CL", { cl50 with Cfg.arraylets = true });
      ( "no nursery copy, 25% 2CL",
        { base_six with Cfg.failure_rate = 0.25; failure_dist = Cfg.Hw_cluster 2; nursery_copy = false } );
      ( "no defrag, 25% 2CL",
        { base_six with Cfg.failure_rate = 0.25; failure_dist = Cfg.Hw_cluster 2; defrag = false } );
    ]
  in
  prefetch ~params (base_six :: List.map snd rows);
  let borrowed cfg =
    let vals =
      List.filter_map
        (fun p ->
          let o = Runner.run ~params ~cfg ~profile:p () in
          if o.Runner.completed > 0 then Some o.Runner.mean_borrowed else None)
        suite
    in
    match vals with [] -> "DNF" | _ -> Printf.sprintf "%.1f" (Stats.mean vals)
  in
  List.iter
    (fun (label, cfg) ->
      Table.add_row t [ label; fmt_ratio (geo ~params ~cfg ~base:base_six suite); borrowed cfg ])
    rows;
  t

(** All figures in order. *)
let all ?(params = Runner.quick) () : Table.t list =
  [ fig3 ~params (); fig4 ~params (); fig5 ~params (); fig6a ~params (); fig6b ~params ();
    fig7 ~params (); fig8 ~params (); fig9a ~params (); fig9b ~params (); fig10 ~params ();
    pauses ~params (); headline ~params () ]
