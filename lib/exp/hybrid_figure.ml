(** Hybrid DRAM/PCM tiering (DESIGN.md §17): what a small DRAM tier in
    front of the aging module buys, measured end to end on the device
    backend.

    The grid is {none, migrate, caram, migrate+caram} × DRAM
    provisioning {8, 32 frames}, at the same operating point as the
    wear-leveling ablation (S-IX L256, endurance 12, 10% boot failures,
    hardware clustering on) so the rows compose with that table.  Three
    signals per policy:

    - {b absorption} — the fraction of charged line writes that never
      wore a PCM cell: landed in a promoted DRAM frame
      ([hyb_dram_writes]), deduplicated against an identical resident
      line ([hyb_dedup_hits]), or compressed to a pattern binding
      ([hyb_compressed]);
    - {b write extension} — the modeled endurance stretch
      [1 / (1 - absorption)]: how much longer the module's write budget
      lasts when that traffic is absorbed (MigrantStore and CARAM both
      report in this currency);
    - {b lifetime rounds} — workload rounds survived before the device
      can no longer back the heap, the same end-of-life measure as the
      wear tables ([>=] marks the quick-mode round cap).

    The expected direction (and the CI gate on the streamed rows):
    migration alone absorbs the write-hot pages, caram alone absorbs
    the redundant content, and migrate+caram compounds — its absorption
    must clear 30% in this scenario. *)

module Cfg = Holes.Config
module Hybrid = Holes_pcm.Hybrid

(* small epoch: at figure scale a workload round charges ~10^5 writes,
   so promotion/demotion must turn over well within one round *)
let migrate_epoch = 512
let caram_ways = 8

let policies : (string * Hybrid.policy) list =
  [
    ("none", Hybrid.none);
    ("migrate", { Hybrid.migrate_epoch = Some migrate_epoch; caram_ways = None });
    ("caram", { Hybrid.migrate_epoch = None; caram_ways = Some caram_ways });
    ( "migrate+caram",
      { Hybrid.migrate_epoch = Some migrate_epoch; caram_ways = Some caram_ways } );
  ]

let dram_levels : int list = [ 8; 32 ]

let cell_cfg ~(hybrid : Hybrid.policy) ~(dram_pages : int) : Cfg.t =
  let d = Cfg.default_device in
  let wear = { d.Cfg.wear with Holes_pcm.Wear.mean_endurance = 12.0 } in
  {
    Figures.base_six with
    Cfg.backend = Cfg.Device { d with Cfg.wear; clustering = Some 2; dram_pages };
    failure_rate = 0.10;
    hybrid;
  }

(* absorbed / charged, from a cell's synced metrics.  [device_writes]
   counts every write that reached the device (including the ones the
   content store then absorbed); DRAM-tier writes never reach it, so
   the charged total is their sum. *)
let absorption (m : Holes.Metrics.t) : float =
  let absorbed =
    m.Holes.Metrics.hyb_dram_writes + m.Holes.Metrics.hyb_dedup_hits
    + m.Holes.Metrics.hyb_compressed
  in
  let charged = m.Holes.Metrics.device_writes + m.Holes.Metrics.hyb_dram_writes in
  if charged = 0 then 0.0 else float_of_int absorbed /. float_of_int charged

(** One row per policy: lifetime rounds at each provisioning level,
    then absorption and the write-extension factor at the provisioned
    (32-frame) level.  One engine job per cell, each a pure function of
    its config — bit-identical at any [-j]. *)
let table ?(params = Runner.quick) () : Holes_stdx.Table.t =
  let t =
    Holes_stdx.Table.create
      ~title:
        "Hybrid DRAM/PCM tiering — write traffic absorbed and lifetime vs DRAM provisioning \
         (S-IX L256, device backend, clustering on, low endurance)"
      ~headers:[ "policy"; "8 frames"; "32 frames"; "absorbed"; "write ext"; "promotes" ]
      ~aligns:
        [
          Holes_stdx.Table.Left; Holes_stdx.Table.Right; Holes_stdx.Table.Right;
          Holes_stdx.Table.Right; Holes_stdx.Table.Right; Holes_stdx.Table.Right;
        ]
      ()
  in
  let profile = Holes_workload.Dacapo.pmd in
  let max_rounds = if Runner.is_full params then 40 else 8 in
  let grid =
    List.concat_map
      (fun (_, hybrid) -> List.map (fun dram -> (hybrid, dram)) dram_levels)
      policies
  in
  let specs =
    Array.of_list
      (List.map
         (fun (hybrid, dram_pages) ->
           {
             Holes_engine.Job.cfg = cell_cfg ~hybrid ~dram_pages;
             profile;
             (* fixed scale, like the wearlevel table: the wear operating
                point must match between quick and full runs *)
             scale = 0.125;
             seed_index = 0;
           })
         grid)
  in
  let results =
    Holes_engine.Engine.run ~jobs:params.Runner.jobs
      ?sink:(Runner.current_sink ())
      ~metrics:(fun (o : Wear_policies.outcome) ->
        [
          ("rounds", float_of_int o.Wear_policies.rounds);
          ("round_ms", o.Wear_policies.elapsed_ms);
          ("dead_lines", float_of_int o.Wear_policies.dead_lines);
          ("device_writes", float_of_int o.Wear_policies.m.Holes.Metrics.device_writes);
          ( "device_line_failures",
            float_of_int o.Wear_policies.m.Holes.Metrics.device_line_failures );
          ("hyb_promotes", float_of_int o.Wear_policies.m.Holes.Metrics.hyb_promotes);
          ("hyb_demotes", float_of_int o.Wear_policies.m.Holes.Metrics.hyb_demotes);
          ("hyb_dram_writes", float_of_int o.Wear_policies.m.Holes.Metrics.hyb_dram_writes);
          ("hyb_dedup_hits", float_of_int o.Wear_policies.m.Holes.Metrics.hyb_dedup_hits);
          ("hyb_compressed", float_of_int o.Wear_policies.m.Holes.Metrics.hyb_compressed);
          ("hyb_absorption", absorption o.Wear_policies.m);
        ])
      ~f:(fun spec ~seed:_ ->
        Wear_policies.lifetime_run ~cfg:spec.Holes_engine.Job.cfg
          ~profile:spec.Holes_engine.Job.profile ~scale:spec.Holes_engine.Job.scale
          ~max_rounds)
      specs
  in
  let cell_of i : Wear_policies.outcome option =
    match results.(i).Holes_engine.Engine.outcome with
    | Holes_engine.Pool.Done o -> Some o
    | Holes_engine.Pool.Failed _ -> None
  in
  let nlevels = List.length dram_levels in
  List.iteri
    (fun pi (pname, _) ->
      let fmt_rounds li =
        match cell_of ((pi * nlevels) + li) with
        | Some o when o.Wear_policies.rounds >= max_rounds ->
            Printf.sprintf ">=%d rd" o.Wear_policies.rounds
        | Some o -> Printf.sprintf "%d rd" o.Wear_policies.rounds
        | None -> "DNF"
      in
      (* absorption / extension / promotion activity at the provisioned
         (last) DRAM level *)
      let abs_s, ext_s, promotes_s =
        match cell_of ((pi * nlevels) + nlevels - 1) with
        | Some o ->
            let a = absorption o.Wear_policies.m in
            ( Printf.sprintf "%.1f%%" (100.0 *. a),
              (if a < 1.0 then Printf.sprintf "%.2fx" (1.0 /. (1.0 -. a)) else "inf"),
              string_of_int o.Wear_policies.m.Holes.Metrics.hyb_promotes )
        | None -> ("-", "-", "-")
      in
      Holes_stdx.Table.add_row t
        [ pname; fmt_rounds 0; fmt_rounds 1; abs_s; ext_s; promotes_s ])
    policies;
  t
