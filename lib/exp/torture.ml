(** Seeded torture schedules for the failure-aware collector.

    Each seed deterministically selects a configuration (collector,
    line size, failure rate, failure model, backend) and a fuzz
    schedule that interleaves mutator work (allocation, deaths,
    reference stores), dynamic failure injection, forced collections
    and explicit runs of the paranoid heap verifier ({!Holes.Verify}).
    The VM is created with [verify = true], so the verifier also runs
    after every GC phase.

    Outcomes distinguish three cases: a clean run, a run that
    legitimately exhausted the heap (torture heaps are small; OOM is an
    expected outcome, not a bug), and an invariant violation.  For a
    violation the caller can print {!repro_command}, which re-runs
    exactly that seed and schedule.

    Used by [bin/torture.exe], the CI torture job, and
    [test/test_verify.ml]. *)

open Holes_stdx
module Cfg = Holes.Config
module Vm = Holes.Vm
module Verify = Holes.Verify
module Metrics = Holes.Metrics
module Fm = Holes_pcm.Failure_model

type outcome = {
  seed : int;
  config : string;  (** [Config.name] of the seed-selected configuration *)
  steps_run : int;
  allocs : int;
  injections : int;  (** direct dynamic-failure strikes on live objects *)
  wl_toggles : int;  (** mid-run wear-leveling stage toggles (device seeds) *)
  hyb_toggles : int;  (** mid-run DRAM/PCM tiering policy toggles (device seeds) *)
  inc_toggles : int;  (** mid-run incremental-collection budget toggles *)
  churns : int;  (** mid-run tenant spawn/verify/detach cycles (device seeds) *)
  gcs : int;  (** nursery + full collections *)
  explicit_verifies : int;  (** verifier runs outside the post-GC hook *)
  verify_passes : int;  (** clean verifier runs, including post-GC hooks *)
  verify_checks : int;  (** individual invariant checks performed *)
  completed : bool;  (** [false]: the schedule ran the heap out of memory *)
  violation : string option;  (** an invariant violation or unexpected exception *)
}

let default_steps = 1200

(* Torture heaps are deliberately tiny so that schedules reach GC,
   evacuation, overflow and perfect-block fallback within ~1k steps. *)
let min_heap_bytes = 256 * 1024

(* Heap of the short-lived neighbour VM a churn op places on the same
   device node (device seeds only). *)
let churn_heap_bytes = 64 * 1024

let repro_command ~(seed : int) ~(steps : int) : string =
  if steps = default_steps then
    Printf.sprintf "dune exec bin/torture.exe -- --seeds %d" seed
  else Printf.sprintf "dune exec bin/torture.exe -- --seeds %d --steps %d" seed steps

(** The configuration exercised by [seed].  Purely a function of the
    seed: the 0..99 CI bucket sweeps collectors, line sizes, rates and
    every failure model, including the device backend's wear chain. *)
let config_of_seed (seed : int) : Cfg.t =
  let rng = Xrng.of_seed (0x70AC + (seed * 0x9E3779B9)) in
  let collector = if Xrng.int rng 4 = 0 then Cfg.Immix else Cfg.Sticky_immix in
  let line_size = [| 64; 128; 256 |].(Xrng.int rng 3) in
  let failure_rate = [| 0.10; 0.25; 0.50 |].(Xrng.int rng 3) in
  let arraylets = Xrng.int rng 5 = 0 in
  let heap_factor = 1.6 +. (0.2 *. float_of_int (Xrng.int rng 8)) in
  (* one seed in eight runs the full device -> OS -> runtime wear
     pipeline; dynamic models are injector-driven and Static-only, so
     the device seeds fall back to the paper's distributions *)
  let device = seed mod 8 = 7 in
  let backend = if device then Cfg.Device Cfg.default_device else Cfg.Static in
  let failure_model =
    if device then Cfg.From_dist
    else
      match Xrng.int rng 8 with
      | 0 -> Cfg.From_dist (* uniform *)
      | 1 -> Cfg.From_dist
      | 2 ->
          Cfg.Model
            (Fm.Correlated
               { mean_cluster = float_of_int (2 + Xrng.int rng 6); region_lines = 64 })
      | 3 ->
          Cfg.Model
            (Fm.Variation
               {
                 cov = 0.2 +. (0.1 *. float_of_int (Xrng.int rng 3));
                 shape = (if Xrng.int rng 2 = 0 then Holes_pcm.Wear.Lognormal else Holes_pcm.Wear.Gaussian);
               })
      | 4 | 5 ->
          Cfg.Model
            (Fm.Storm
               {
                 mean_burst = float_of_int (2 + Xrng.int rng 6);
                 period_bytes = 32768 + Xrng.int rng 32768;
               })
      | _ -> Cfg.Model (Fm.Adversarial { period_bytes = 16384 + Xrng.int rng 16384 })
  in
  let failure_dist =
    match Xrng.int rng 4 with
    | 0 -> Cfg.Granule 4
    | 1 -> Cfg.Hw_cluster 1
    | _ -> Cfg.Uniform
  in
  (* device seeds also draw a boot wear-leveling stage for the
     translation pipeline (drawn last so the other fields keep their
     pre-pipeline values for any given seed) *)
  let wear_level =
    if not device then None
    else
      let psi = 24 + Xrng.int rng 96 in
      match Xrng.int rng 4 with
      | 0 -> None
      | 1 -> Some (Holes_pcm.Wear_level.Start_gap { psi })
      | 2 -> Some (Holes_pcm.Wear_level.Random_remap { psi })
      | _ -> Some (Holes_pcm.Wear_level.Decoder_swap { psi })
  in
  (* incremental marking budget — drawn last for the same reason as
     wear_level, so pre-existing seeds keep their other field values:
     half the seeds stay stop-the-world, the rest split between tight
     and generous slice budgets *)
  let gc_slice =
    match Xrng.int rng 4 with
    | 0 | 1 -> 0
    | 2 -> 32 + Xrng.int rng 96
    | _ -> 256 + Xrng.int rng 512
  in
  (* device seeds also draw a boot DRAM/PCM tiering policy — again
     drawn last so earlier fields keep their per-seed values: a quarter
     of the device seeds boot untiered (the schedule may still toggle
     tiering on mid-run), the rest split across migration, the content
     store, and both combined *)
  let hybrid =
    if not device then Holes_pcm.Hybrid.none
    else
      let epoch = 256 + Xrng.int rng 512 in
      let ways = [| 2; 4; 8 |].(Xrng.int rng 3) in
      match Xrng.int rng 4 with
      | 0 -> Holes_pcm.Hybrid.none
      | 1 -> { Holes_pcm.Hybrid.migrate_epoch = Some epoch; caram_ways = None }
      | 2 -> { Holes_pcm.Hybrid.migrate_epoch = None; caram_ways = Some ways }
      | _ -> { Holes_pcm.Hybrid.migrate_epoch = Some epoch; caram_ways = Some ways }
  in
  {
    Cfg.default with
    Cfg.collector;
    line_size;
    failure_rate;
    failure_dist;
    arraylets;
    heap_factor;
    backend;
    failure_model;
    wear_level;
    gc_slice;
    hybrid;
    verify = true;
    seed = 0xBEEF + seed;
  }

let run_one ?(steps = default_steps) ~(seed : int) () : outcome =
  let cfg = config_of_seed seed in
  let rng = Xrng.of_seed (0x5EED + (seed * 0x61C88647)) in
  (* Device seeds bring up the node explicitly — sized for the main VM
     plus a couple of churn neighbours — so the schedule can attach and
     detach tenant VMs on the shared node mid-run, the way the fleet
     pool does at eviction time. *)
  let node =
    match cfg.Cfg.backend with
    | Cfg.Static -> None
    | Cfg.Device params ->
        let page_bytes = Holes_pcm.Geometry.page_bytes in
        let pages_for heap =
          let heap_bytes = int_of_float (cfg.Cfg.heap_factor *. float_of_int heap) in
          let base = (heap_bytes + page_bytes - 1) / page_bytes in
          if cfg.Cfg.compensate && cfg.Cfg.failure_rate > 0.0 then
            int_of_float (ceil (float_of_int base /. (1.0 -. cfg.Cfg.failure_rate)))
          else base
        in
        let device_pages = pages_for min_heap_bytes + (2 * pages_for churn_heap_bytes) in
        Some (Holes.Memory_backend.create_node ~cfg ~params ~device_pages ())
  in
  let vm = Vm.create ~cfg ?node ~min_heap_bytes () in
  let static = Option.is_none node in
  (* live set with O(1) random removal (swap with the last slot) *)
  let live = Array.make 8192 0 in
  let nlive = ref 0 in
  let push id =
    if !nlive = Array.length live then begin
      let i = Xrng.int rng !nlive in
      decr nlive;
      Vm.kill vm live.(i);
      live.(i) <- live.(!nlive)
    end;
    live.(!nlive) <- id;
    incr nlive
  in
  let remove i =
    let id = live.(i) in
    decr nlive;
    live.(i) <- live.(!nlive);
    id
  in
  (* Large objects live on perfect pages (or borrowed DRAM), which a
     tiny torture heap exhausts fast; cap the live large set so the
     schedule exercises LOS churn rather than OOMing at once. *)
  let larges = ref [] in
  let push_large id =
    larges := id :: !larges;
    match !larges with
    | _ :: _ :: oldest :: _ ->
        Vm.kill vm oldest;
        larges := List.filteri (fun i _ -> i < 2) !larges
    | _ -> ()
  in
  let allocs = ref 0 in
  let injections = ref 0 in
  let wl_toggles = ref 0 in
  let hyb_toggles = ref 0 in
  let inc_toggles = ref 0 in
  let churns = ref 0 in
  let explicit_verifies = ref 0 in
  let steps_run = ref 0 in
  let completed = ref true in
  let violation = ref None in
  let verify_now () =
    incr explicit_verifies;
    Verify.raise_on_errors (Vm.verify vm)
  in
  (* Tenant churn (device seeds): attach a short-lived neighbour VM to
     the shared node, run it through allocation, deaths, a full
     collection and the verifier, then detach it — the fleet pool's
     place/evict cycle interleaved with the main schedule.  Placement
     failure and a churn-VM OOM are legitimate on a crowded node; either
     way the neighbour is detached and the *surviving* main VM must
     still verify. *)
  let churn (node : Holes.Memory_backend.node) =
    incr churns;
    match Vm.create ~cfg ~node ~min_heap_bytes:churn_heap_bytes () with
    | exception Vm.Out_of_memory -> ()
    | vm2 ->
        Fun.protect
          ~finally:(fun () ->
            match Vm.device_state vm2 with
            | Some st -> Holes.Memory_backend.detach st
            | None -> ())
          (fun () ->
            (try
               let ids =
                 Array.init 24 (fun _ -> Vm.alloc vm2 ~size:(16 + Xrng.int rng 480) ())
               in
               Array.iteri (fun i id -> if i land 1 = 0 then Vm.kill vm2 id) ids;
               Vm.collect vm2 ~full:true
             with Vm.Out_of_memory -> ());
            Verify.raise_on_errors (Vm.verify vm2));
        verify_now ()
  in
  (* Out_of_memory ends the schedule (legitimately: the heap is tiny);
     Verify.Violation and anything else unexpected is a finding. *)
  (try
     let i = ref 0 in
     while !i < steps do
       incr i;
       incr steps_run;
       let r0 = Xrng.int rng 100 in
       if Sys.getenv_opt "HOLES_TORTURE_DEBUG" <> None then
         Printf.eprintf "step %d r=%d nlive=%d\n%!" !i r0 !nlive;
       (match r0 with
       | r when r < 45 ->
           let size =
             match Xrng.int rng 100 with
             | s when s < 70 -> 16 + Xrng.int rng 288
             | s when s < 96 -> Xrng.range rng 320 4096
             | _ -> Xrng.range rng 8300 20000
           in
           let pinned = Xrng.int rng 20 = 0 in
           incr allocs;
           let id = Vm.alloc vm ~pinned ~size () in
           if size > Holes_heap.Units.los_threshold then push_large id else push id
       | r when r < 75 -> if !nlive > 0 then Vm.kill vm (remove (Xrng.int rng !nlive))
       | r when r < 85 ->
           if !nlive >= 2 then
             let src = live.(Xrng.int rng !nlive) in
             let dst = live.(Xrng.int rng !nlive) in
             Vm.write_ref vm ~src ~dst
       | r when r < 91 ->
           if static then begin
             if !nlive > 0 then begin
               incr injections;
               Vm.dynamic_failure vm ~id:live.(Xrng.int rng !nlive)
             end
           end
           else begin
             (* device seeds split the injection slot three ways:
                tenant churn, toggling the wear-leveling stage, and
                toggling the DRAM/PCM tiering policy mid-run.  The
                wear-level toggle stresses on_failure re-translation
                and the gap-line evacuate/re-reserve path; the hybrid
                toggle stresses demote-all writeback (tiering off
                flushes every DRAM resident home through the charged
                path) and content-store flushes, with the paranoid
                verifier checking the residency map after each step. *)
             match Xrng.int rng 3 with
             | 0 -> churn (Option.get node)
             | 1 ->
                 incr wl_toggles;
                 let psi = 24 + Xrng.int rng 96 in
                 let next =
                   match Xrng.int rng 4 with
                   | 0 -> None
                   | 1 -> Some (Holes_pcm.Wear_level.Start_gap { psi })
                   | 2 -> Some (Holes_pcm.Wear_level.Random_remap { psi })
                   | _ -> Some (Holes_pcm.Wear_level.Decoder_swap { psi })
                 in
                 Vm.set_wear_level vm next
             | _ ->
                 incr hyb_toggles;
                 let epoch = 256 + Xrng.int rng 512 in
                 let ways = [| 2; 4; 8 |].(Xrng.int rng 3) in
                 let next =
                   match Xrng.int rng 4 with
                   | 0 -> Holes_pcm.Hybrid.none
                   | 1 -> { Holes_pcm.Hybrid.migrate_epoch = Some epoch; caram_ways = None }
                   | 2 -> { Holes_pcm.Hybrid.migrate_epoch = None; caram_ways = Some ways }
                   | _ ->
                       { Holes_pcm.Hybrid.migrate_epoch = Some epoch; caram_ways = Some ways }
                 in
                 Vm.set_hybrid vm next
           end
       | r when r < 96 -> Vm.collect vm ~full:(Xrng.int rng 4 = 0)
       | r when r < 98 ->
           (* toggle incremental collection mid-run: switching to 0
              finishes any in-flight cycle synchronously, switching on
              lets the next allocation pulse start one.  The VM runs
              with [verify = true], so the verifier checks the SATB
              invariant after every subsequent increment. *)
           incr inc_toggles;
           let budget = if Xrng.int rng 2 = 0 then 0 else 32 + Xrng.int rng 224 in
           Vm.set_gc_slice vm budget
       | _ -> verify_now ());
       if Sys.getenv_opt "HOLES_TORTURE_DEBUG" <> None then verify_now ();
       if !i mod 128 = 0 then verify_now ()
     done;
     verify_now ()
   with
  | Vm.Out_of_memory -> (
      if Sys.getenv_opt "HOLES_DEBUG_OOM" <> None then
        Printf.eprintf "OOM backtrace:\n%s\n%!" (Printexc.get_backtrace ());
      completed := false;
      (* the heap must still be consistent after an aborted request *)
      try verify_now ()
      with Verify.Violation msg -> violation := Some ("after OOM: " ^ msg))
  | Verify.Violation msg ->
      if Sys.getenv_opt "HOLES_TORTURE_DEBUG" <> None then
        Printf.eprintf "violation backtrace:\n%s\n%!" (Printexc.get_backtrace ());
      violation := Some msg
  | exn -> violation := Some ("unexpected exception: " ^ Printexc.to_string exn));
  Vm.sync_backend_stats vm;
  let m = Vm.metrics vm in
  {
    seed;
    config = Cfg.name cfg;
    steps_run = !steps_run;
    allocs = !allocs;
    injections = !injections;
    wl_toggles = !wl_toggles;
    hyb_toggles = !hyb_toggles;
    inc_toggles = !inc_toggles;
    churns = !churns;
    gcs = m.Metrics.full_gcs + m.Metrics.nursery_gcs;
    explicit_verifies = !explicit_verifies;
    verify_passes = m.Metrics.verify_passes;
    verify_checks = m.Metrics.verify_checks;
    completed = !completed;
    violation = !violation;
  }
