(** The experiment runner: configuration × workload × heap factor →
    summarized metrics, with memoization (many figures share
    configurations) and multi-seed trials with 95% confidence intervals,
    mirroring the paper's 20-invocation methodology (Sec. 5). *)

open Holes_stdx

type params = {
  scale : float;  (** workload volume scale (1.0 = full) *)
  seeds : int;  (** trials per configuration *)
}

let quick = { scale = 0.25; seeds = 2 }
let full = { scale = 0.6; seeds = 5 }

type outcome = {
  profile : string;
  cfg : Holes.Config.t;
  completed : int;  (** trials that finished *)
  trials : int;
  time_ms : Stats.summary option;  (** over completed trials *)
  mean_full_pause_ms : float;
  max_full_pause_ms : float;
  mean_full_gcs : float;
  mean_nursery_gcs : float;
  mean_borrowed : float;  (** borrowed DRAM pages (lifetime) per trial *)
  mean_perfect_requests : float;
  mean_hole_skips : float;
  mean_bytes_copied : float;
  (* device-backend pipeline activity (all zero on the static backend) *)
  mean_device_writes : float;
  mean_device_failures : float;  (** wear-induced line failures per trial *)
  mean_upcalls : float;  (** OS → runtime failure up-calls per trial *)
  mean_reverse_translations : float;
  mean_swap_ins : float;
  mean_fbuf_peak : float;  (** peak failure-buffer occupancy *)
}

(* memo table: one entry per (config, profile, params) *)
let cache : (string, outcome) Hashtbl.t = Hashtbl.create 256

let cache_key (cfg : Holes.Config.t) (profile : Holes_workload.Profile.t) (p : params) : string =
  Printf.sprintf "%s|h%.3f|d%b|n%b|%s|s%.4f|n%d|seed%d" (Holes.Config.name cfg)
    cfg.Holes.Config.heap_factor cfg.Holes.Config.defrag cfg.Holes.Config.nursery_copy
    profile.Holes_workload.Profile.name p.scale p.seeds cfg.Holes.Config.seed

type raw_trial = {
  r_completed : bool;
  r_time : float;
  r_metrics : Holes.Metrics.t;
  r_borrowed : int;
  r_perfect_requests : int;
}

let run_trial ~(cfg : Holes.Config.t) ~(profile : Holes_workload.Profile.t) ~(scale : float)
    ~(seed : int) : raw_trial =
  let cfg = { cfg with Holes.Config.seed } in
  let profile = Holes_workload.Profile.scaled profile scale in
  let vm = Holes.Vm.create ~cfg ~min_heap_bytes:(Holes_workload.Profile.min_heap profile) () in
  let rng = Xrng.of_seed (seed lxor 0x5eed) in
  let res = Holes_workload.Generator.run ~rng vm profile in
  let acct = Holes_heap.Page_stock.accounting (Holes.Vm.stock vm) in
  {
    r_completed = res.Holes_workload.Generator.completed;
    r_time = res.Holes_workload.Generator.elapsed_ms;
    r_metrics = res.Holes_workload.Generator.metrics;
    r_borrowed = Holes_osal.Accounting.total_borrowed acct;
    r_perfect_requests = Holes_osal.Accounting.perfect_requests acct;
  }

(** Run (or fetch from cache) all trials of [cfg] × [profile]. *)
let run ?(params = quick) ~(cfg : Holes.Config.t) ~(profile : Holes_workload.Profile.t) () :
    outcome =
  let key = cache_key cfg profile params in
  match Hashtbl.find_opt cache key with
  | Some o -> o
  | None ->
      let trials =
        List.init params.seeds (fun i ->
            run_trial ~cfg ~profile ~scale:params.scale ~seed:(41 + (1009 * i)))
      in
      let done_ = List.filter (fun t -> t.r_completed) trials in
      let meanf f = match trials with [] -> 0.0 | _ -> Stats.mean (List.map f trials) in
      let pauses =
        List.concat_map (fun t -> t.r_metrics.Holes.Metrics.pauses_ns) done_
        |> List.map (fun ns -> ns /. 1.0e6)
      in
      let o =
        {
          profile = profile.Holes_workload.Profile.name;
          cfg;
          completed = List.length done_;
          trials = List.length trials;
          time_ms =
            (match done_ with
            | [] -> None
            | _ -> Some (Stats.summarize (List.map (fun t -> t.r_time) done_)));
          mean_full_pause_ms = (match pauses with [] -> 0.0 | _ -> Stats.mean pauses);
          max_full_pause_ms = (match pauses with [] -> 0.0 | _ -> Stats.maximum pauses);
          mean_full_gcs = meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.full_gcs);
          mean_nursery_gcs = meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.nursery_gcs);
          mean_borrowed = meanf (fun t -> float_of_int t.r_borrowed);
          mean_perfect_requests = meanf (fun t -> float_of_int t.r_perfect_requests);
          mean_hole_skips = meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.hole_skips);
          mean_bytes_copied = meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.bytes_copied);
          mean_device_writes =
            meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.device_writes);
          mean_device_failures =
            meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.device_line_failures);
          mean_upcalls = meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.os_upcalls);
          mean_reverse_translations =
            meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.reverse_translations);
          mean_swap_ins = meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.swap_ins);
          mean_fbuf_peak =
            meanf (fun t -> float_of_int t.r_metrics.Holes.Metrics.fbuf_peak_occupancy);
        }
      in
      Hashtbl.replace cache key o;
      o

(** Mean time of a completed outcome, or None if any trial failed (a DNF
    point, dropped from aggregate curves as in the paper). *)
let time_if_all_completed (o : outcome) : float option =
  if o.completed = o.trials then Option.map (fun s -> s.Stats.mean) o.time_ms else None

(** Geometric-mean normalized time of [cfgf cfg_base] over [profiles],
    each benchmark normalized to its own [base] outcome.  None when any
    benchmark DNFs (curve termination). *)
let geomean_normalized ?(params = quick) ~(cfg : Holes.Config.t) ~(base : Holes.Config.t)
    ~(profiles : Holes_workload.Profile.t list) () : float option =
  let ratios =
    List.map
      (fun p ->
        let o = run ~params ~cfg ~profile:p () in
        let b = run ~params ~cfg:base ~profile:p () in
        match (time_if_all_completed o, time_if_all_completed b) with
        | Some t, Some tb when tb > 0.0 -> Some (t /. tb)
        | _ -> None)
      profiles
  in
  if List.exists (fun r -> r = None) ratios then None
  else Some (Stats.geomean (List.map Option.get ratios))
